// Package dve is a from-scratch reproduction of "Dvé: Improving DRAM
// Reliability and Performance On-Demand via Coherent Replication" (Patil,
// Nagarajan, Balasubramonian, Oswald — ISCA 2021).
//
// Dvé replicates memory blocks across the two sockets of a cache-coherent
// NUMA system. The coherence protocol keeps the replicas strongly
// consistent (so a detected memory error is corrected by reading the other
// copy) and additionally serves fault-free reads from the nearer replica,
// turning a reliability mechanism into a performance win.
//
// The package exposes the user-facing API over the internal substrates:
//
//   - Simulate runs a workload on the cycle-approximate 2-socket NUMA
//     simulator under any protocol (baseline, allow, deny, dynamic,
//     Intel-mirroring++).
//   - Workloads returns the 20-benchmark Table III suite.
//   - Reliability evaluates the Section IV analytical DUE/SDC model.
//   - VerifyProtocol model-checks the Coherent Replication protocols.
//   - NewOnDemand manages flexible, runtime-switchable replication (RMT).
//
// See cmd/dvebench for regenerating every table and figure of the paper,
// and examples/ for runnable walkthroughs.
package dve

import (
	"dve/internal/coherence"
	idve "dve/internal/dve"
	"dve/internal/mcheck"
	"dve/internal/reliability"
	"dve/internal/rmt"
	"dve/internal/stats"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Protocol selects the memory system organization.
type Protocol = topology.Protocol

// Protocols.
const (
	Baseline    = topology.ProtoBaseline
	Allow       = topology.ProtoAllow
	Deny        = topology.ProtoDeny
	Dynamic     = topology.ProtoDynamic
	IntelMirror = topology.ProtoIntelMirror
)

// Config is the simulated system configuration (paper Table II defaults).
type Config = topology.Config

// DefaultConfig returns the Table II configuration for a protocol.
func DefaultConfig(p Protocol) Config { return topology.Default(p) }

// Workload parameterises a synthetic benchmark.
type Workload = workload.Spec

// Workloads returns the 20 Table III benchmarks for a 16-core system.
func Workloads() []Workload { return workload.Suite(16) }

// WorkloadByName looks up a Table III benchmark.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name, 16) }

// Result is the outcome of one simulation.
type Result = idve.Result

// Counters are the per-run statistics.
type Counters = stats.Counters

// SimOptions control a simulation run.
type SimOptions struct {
	// WarmupOps and MeasureOps set the run length (memory operations summed
	// over the 16 threads); MeasureOps must be positive.
	WarmupOps, MeasureOps uint64
	// Classify enables Fig 7 sharing-pattern classification.
	Classify bool
	// Faults, when non-nil, injects component failures (see package-level
	// fault helpers or use OnDemand for RMT-scoped replication).
	Faults func(socket int, addr uint64) bool
	// OnDemand, when non-nil, replaces full fixed-function replication with
	// the flexible RMT: only pages mapped in the manager are replicated.
	OnDemand *OnDemand
}

// Simulate runs one workload under one configuration.
func Simulate(w Workload, cfg Config, opts SimOptions) (*Result, error) {
	rc := idve.RunConfig{
		Cfg:        cfg,
		WarmupOps:  opts.WarmupOps,
		MeasureOps: opts.MeasureOps,
		Classify:   opts.Classify,
	}
	if opts.Faults != nil {
		f := opts.Faults
		rc.FaultFn = func(socket int, a topology.Addr) bool { return f(socket, uint64(a)) }
	}
	if opts.OnDemand != nil {
		rc.ReplicaMap = opts.OnDemand.mgr.Table
	}
	return idve.Run(w, rc)
}

// Speedup returns baseline.Cycles / candidate.Cycles.
func Speedup(baseline, candidate *Result) float64 {
	return stats.Speedup(baseline.Cycles, candidate.Cycles)
}

// OnDemand manages flexible replication: an OS-style replica map table plus
// a per-socket idle-page allocator (Section V-D). Zero or more page ranges
// can be replicated or released at runtime; unmapped pages transparently use
// a single copy.
type OnDemand struct {
	mgr *rmt.Manager
	cfg Config
}

// NewOnDemand creates a manager whose replica pages are carved from the
// given idle pages (page numbers; their socket follows the interleaving).
func NewOnDemand(cfg Config, idlePages []uint64) *OnDemand {
	return &OnDemand{mgr: rmt.NewManager(&cfg, idlePages), cfg: cfg}
}

// Replicate enables replication for nPages starting at firstPage. It
// returns how many pages are now replicated in the range; the error reports
// idle-memory exhaustion.
func (o *OnDemand) Replicate(firstPage uint64, nPages int) (int, error) {
	return o.mgr.Replicate(firstPage, nPages)
}

// Release disables replication for a page range, returning replica pages to
// the idle pool ("hot-plugged back to system visible capacity").
func (o *OnDemand) Release(firstPage uint64, nPages int) int {
	return o.mgr.Release(firstPage, nPages)
}

// ReplicatedPages returns the number of pages currently replicated.
func (o *OnDemand) ReplicatedPages() int { return o.mgr.Table.Len() }

// IdlePages returns the free replica-candidate pages on a socket.
func (o *OnDemand) IdlePages(socket int) int { return o.mgr.Alloc.FreePages(socket) }

// ReliabilityModel is the Section IV analytical model.
type ReliabilityModel = reliability.Model

// ReliabilityRates are DUE/SDC rates per billion hours.
type ReliabilityRates = reliability.Rates

// Reliability returns the Table I model (FIT 66.1, 32 DIMMs x 9 chips).
func Reliability() ReliabilityModel { return reliability.Default() }

// VerifyProtocol model-checks a Coherent Replication protocol family
// ("allow" or "deny") and returns a human-readable verdict plus ok.
func VerifyProtocol(family string) (string, bool) {
	m := mcheck.Allow
	if family == "deny" {
		m = mcheck.Deny
	}
	r := mcheck.Check(m, mcheck.Options{})
	return r.String(), r.OK()
}

// interface conformance: the RMT table plugs into the coherence layer.
var _ coherence.ReplicaMapper = (*rmt.Table)(nil)
