// Package stats collects simulation counters and provides the aggregate
// statistics used in the paper's evaluation (geometric-mean speedups over the
// top-10 / top-15 / all-20 benchmark groups, normalized traffic, sharing-class
// distributions).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters accumulates the per-run statistics reported by the simulator.
type Counters struct {
	Cycles uint64 // total simulated cycles for the region of interest
	Ops    uint64 // memory + compute operations retired

	Reads, Writes uint64

	L1Hits, L1Misses   uint64
	LLCHits, LLCMisses uint64

	// Inter-socket link accounting (Fig 8).
	LinkMsgs, LinkBytes uint64

	// Sharing-pattern classification at the home directory (Fig 7).
	PrivateRead, ReadOnly, ReadWrite, PrivateReadWrite uint64

	// Replica behaviour.
	ReplicaDirHits, ReplicaDirMisses uint64
	ReplicaReads                     uint64 // reads served by the local replica
	HomeReads                        uint64 // reads served by home memory
	SpecIssued, SpecSquashed         uint64
	DualWritebacks                   uint64

	// MissLatency is the LLC-miss service-time distribution.
	MissLatency Histogram

	// DRAM events (for the energy model).
	DRAMReads, DRAMWrites   uint64
	RowHits, RowMisses      uint64
	DRAMBusyCycles          uint64
	DRAMChannels            int
	MemLatencySum, MemCount uint64 // average memory latency

	// Reliability events during simulation with fault injection.
	CorrectedErrors   uint64
	DetectedUncorrect uint64
	Recoveries        uint64 // recoveries via replica
	DegradedLines     uint64

	// RAS escalation-ladder events (retry → replica → repair-verify →
	// retire) and graceful-degradation accounting.
	RetriedReads      uint64 // local re-reads after a detected error
	RetrySuccesses    uint64 // errors that cleared on a local re-read
	RepairWrites      uint64 // repair writes of recovered data
	RepairVerifyFails uint64 // repair writes whose verify re-read still failed
	PagesRetired      uint64 // pages retired after persistent repair failure
	DegradedReads     uint64 // reads funneled straight to the surviving copy
	SocketKills       uint64 // memory controllers lost mid-run
	DemotedLines      uint64 // lines demoted to unreplicated mode by a kill
	SilentCorruptions uint64 // undetected corrupt reads (CodeNone only)

	// Adversarial RowHammer campaign accounting (attack pressure vs. the
	// replica + scrub/repair defense ladder).
	HammerCrossings     uint64 // rows whose activation count crossed the threshold in a window
	HammerFlips         uint64 // bitflips injected into victim rows
	HammerDetected      uint64 // injected flips first detected by a read or scrub
	HammerDetectLatency uint64 // summed inject-to-first-detect cycles over detected flips
	HammerCorruptReads  uint64 // detected-uncorrectable reads of hammer-flipped lines (served corrupt when unreplicated)
	HammerRepairs       uint64 // hammer-flipped lines healed by a verified repair write

	// Dynamic protocol profile decisions.
	EpochsAllow, EpochsDeny uint64

	// Parallel-engine accounting. Both are pure functions of the event
	// trace (independent of how many worker goroutines executed it), so
	// they are safe in deterministic, byte-compared statistics: epochs is
	// the number of lookahead windows executed; barrier stalls counts
	// partition-epochs that had no event inside the window (the
	// load-imbalance signal). Zero on the legacy single-queue engine.
	EngineEpochs        uint64
	EngineBarrierStalls uint64

	// Instrumentation health. Both are observations *about* the telemetry
	// layer, stamped into the result after the run completes: TraceDropped
	// counts span events discarded by lane exhaustion (a nonzero value
	// means the trace is a sample, never silently); FlightDumps counts
	// flight-recorder linearisations — each one marks an invariant
	// violation or socket-kill report. Zero in every healthy run, so
	// traced-vs-untraced byte-identity is preserved.
	TraceDropped uint64
	FlightDumps  uint64
}

// Merge accumulates o into c. Every scalar event counter adds; the miss
// latency histogram merges; DRAMChannels is a configuration echo (not an
// event count) and is adopted from o when c has none. The per-socket
// partitioned run uses this to fold socket-local counter shards into one
// run-level view — always folding in ascending socket order, so the result
// is deterministic.
func (c *Counters) Merge(o *Counters) {
	c.Cycles += o.Cycles
	c.Ops += o.Ops
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.L1Hits += o.L1Hits
	c.L1Misses += o.L1Misses
	c.LLCHits += o.LLCHits
	c.LLCMisses += o.LLCMisses
	c.LinkMsgs += o.LinkMsgs
	c.LinkBytes += o.LinkBytes
	c.PrivateRead += o.PrivateRead
	c.ReadOnly += o.ReadOnly
	c.ReadWrite += o.ReadWrite
	c.PrivateReadWrite += o.PrivateReadWrite
	c.ReplicaDirHits += o.ReplicaDirHits
	c.ReplicaDirMisses += o.ReplicaDirMisses
	c.ReplicaReads += o.ReplicaReads
	c.HomeReads += o.HomeReads
	c.SpecIssued += o.SpecIssued
	c.SpecSquashed += o.SpecSquashed
	c.DualWritebacks += o.DualWritebacks
	c.MissLatency.Merge(&o.MissLatency)
	c.DRAMReads += o.DRAMReads
	c.DRAMWrites += o.DRAMWrites
	c.RowHits += o.RowHits
	c.RowMisses += o.RowMisses
	c.DRAMBusyCycles += o.DRAMBusyCycles
	if c.DRAMChannels == 0 {
		c.DRAMChannels = o.DRAMChannels
	}
	c.MemLatencySum += o.MemLatencySum
	c.MemCount += o.MemCount
	c.CorrectedErrors += o.CorrectedErrors
	c.DetectedUncorrect += o.DetectedUncorrect
	c.Recoveries += o.Recoveries
	c.DegradedLines += o.DegradedLines
	c.RetriedReads += o.RetriedReads
	c.RetrySuccesses += o.RetrySuccesses
	c.RepairWrites += o.RepairWrites
	c.RepairVerifyFails += o.RepairVerifyFails
	c.PagesRetired += o.PagesRetired
	c.DegradedReads += o.DegradedReads
	c.SocketKills += o.SocketKills
	c.DemotedLines += o.DemotedLines
	c.SilentCorruptions += o.SilentCorruptions
	c.HammerCrossings += o.HammerCrossings
	c.HammerFlips += o.HammerFlips
	c.HammerDetected += o.HammerDetected
	c.HammerDetectLatency += o.HammerDetectLatency
	c.HammerCorruptReads += o.HammerCorruptReads
	c.HammerRepairs += o.HammerRepairs
	c.EpochsAllow += o.EpochsAllow
	c.EpochsDeny += o.EpochsDeny
	c.EngineEpochs += o.EngineEpochs
	c.EngineBarrierStalls += o.EngineBarrierStalls
	c.TraceDropped += o.TraceDropped
	c.FlightDumps += o.FlightDumps
}

// MPKI returns LLC misses per thousand operations, the paper's workload
// ordering metric ("descending order of L2 MPKI").
func (c *Counters) MPKI() float64 {
	if c.Ops == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.Ops) * 1000
}

// AvgMemLatency returns the mean LLC-miss service latency in cycles.
func (c *Counters) AvgMemLatency() float64 {
	if c.MemCount == 0 {
		return 0
	}
	return float64(c.MemLatencySum) / float64(c.MemCount)
}

// SharingMix returns the Fig 7 class fractions in order: private-read,
// read-only, read/write, private-read/write. Fractions sum to 1 when any
// requests were classified.
func (c *Counters) SharingMix() [4]float64 {
	tot := c.PrivateRead + c.ReadOnly + c.ReadWrite + c.PrivateReadWrite
	if tot == 0 {
		return [4]float64{}
	}
	return [4]float64{
		float64(c.PrivateRead) / float64(tot),
		float64(c.ReadOnly) / float64(tot),
		float64(c.ReadWrite) / float64(tot),
		float64(c.PrivateReadWrite) / float64(tot),
	}
}

// Geomean returns the geometric mean of xs, skipping non-positive and
// non-finite values (a degenerate cell — a zero-cycle run, a NaN ratio —
// must not crash report generation). It returns 0 for an empty slice and
// NaN when every value was skipped, so a fully degenerate group is visible
// in the output rather than rendered as a plausible number. Callers that
// want to warn about skips use GeomeanSkipped.
func Geomean(xs []float64) float64 {
	g, _ := GeomeanSkipped(xs)
	return g
}

// GeomeanSkipped is Geomean plus the count of values it had to skip, so
// report formatters can flag partially degenerate aggregates.
func GeomeanSkipped(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, 0
	}
	s, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 || math.IsInf(x, 1) || math.IsNaN(x) {
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return math.NaN(), len(xs)
	}
	return math.Exp(s / float64(n)), len(xs) - n
}

// Speedup returns baselineCycles/cycles: >1 means faster than baseline.
// Either side being zero marks a degenerate run (an empty ROI); the result
// is NaN so tables show the breakage instead of a false 0x.
func Speedup(baselineCycles, cycles uint64) float64 {
	if cycles == 0 || baselineCycles == 0 {
		return math.NaN()
	}
	return float64(baselineCycles) / float64(cycles)
}

// Row is one benchmark's results across schemes, used by report tables.
type Row struct {
	Name   string
	MPKI   float64
	Values map[string]float64 // scheme -> value (speedup, traffic, ...)
}

// Table formats rows with a fixed scheme column order plus geomean summary
// rows for the top-N groups (rows must already be sorted by descending MPKI).
type Table struct {
	Title   string
	Schemes []string
	Rows    []Row
}

// SortByMPKI orders rows by descending MPKI, matching the paper's x-axis.
func (t *Table) SortByMPKI() {
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i].MPKI > t.Rows[j].MPKI })
}

// GeomeanTop returns per-scheme geometric means over the first n rows.
func (t *Table) GeomeanTop(n int) map[string]float64 {
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	out := make(map[string]float64, len(t.Schemes))
	for _, s := range t.Schemes {
		vals := make([]float64, 0, n)
		for _, r := range t.Rows[:n] {
			if v, ok := r.Values[s]; ok {
				vals = append(vals, v)
			}
		}
		out[s] = Geomean(vals)
	}
	return out
}

// String renders the table in a fixed-width layout with geomean rows for
// top-10, top-15 and all benchmarks, mirroring the paper's reporting.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-16s %8s", "benchmark", "MPKI")
	for _, s := range t.Schemes {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %8.2f", r.Name, r.MPKI)
		for _, s := range t.Schemes {
			fmt.Fprintf(&b, " %14.3f", r.Values[s])
		}
		b.WriteByte('\n')
	}
	skipped := 0
	for _, n := range []int{10, 15, len(t.Rows)} {
		if n > len(t.Rows) {
			continue
		}
		fmt.Fprintf(&b, "%-16s %8s", fmt.Sprintf("geomean-top%d", n), "")
		for _, s := range t.Schemes {
			vals := make([]float64, 0, n)
			for _, r := range t.Rows[:n] {
				if v, ok := r.Values[s]; ok {
					vals = append(vals, v)
				}
			}
			gm, sk := GeomeanSkipped(vals)
			skipped += sk
			fmt.Fprintf(&b, " %14.3f", gm)
		}
		b.WriteByte('\n')
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "warning: %d degenerate (non-positive or non-finite) cells skipped in geomeans\n", skipped)
	}
	return b.String()
}
