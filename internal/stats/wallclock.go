package stats

import "time"

// Stopwatch measures host wall-clock time for CLI reporting. It exists so
// that wall-clock access has exactly one sanctioned home: the determinism
// analyzer (dvelint) bans time.Now/Since in every simulation package and
// allowlists only this package, keeping "how long did the run take on this
// machine" cleanly separated from simulated time, which always comes from
// sim.Engine. Nothing simulation-visible may ever depend on a Stopwatch.
type Stopwatch struct {
	start time.Time
}

// StartWallClock starts a stopwatch at the current host time.
func StartWallClock() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the host time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// ElapsedRounded returns the elapsed host time rounded to the given unit,
// ready for human-facing output.
func (s Stopwatch) ElapsedRounded(unit time.Duration) time.Duration {
	return s.Elapsed().Round(unit)
}
