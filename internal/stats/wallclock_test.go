package stats

import (
	"testing"
	"time"
)

func TestStopwatch(t *testing.T) {
	sw := StartWallClock()
	e1 := sw.Elapsed()
	if e1 < 0 {
		t.Fatalf("Elapsed went backwards: %v", e1)
	}
	if e2 := sw.Elapsed(); e2 < e1 {
		t.Fatalf("Elapsed not monotonic: %v then %v", e1, e2)
	}
	// A freshly started watch rounds to zero at coarse units.
	if got := StartWallClock().ElapsedRounded(time.Hour); got != 0 {
		t.Fatalf("ElapsedRounded(Hour) on a fresh stopwatch = %v, want 0", got)
	}
}
