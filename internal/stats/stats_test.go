package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil) != 0")
	}
}

func TestGeomeanSkipsNonPositive(t *testing.T) {
	// A degenerate cell (zero, negative, NaN, +Inf) is skipped, not fatal:
	// one broken run must not crash a whole report.
	g, skipped := GeomeanSkipped([]float64{1, 0, 4, -3, math.NaN(), math.Inf(1)})
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean over valid subset = %v, want 2", g)
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
	if got := Geomean([]float64{1, 0, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean(1,0,4) = %v, want 2", got)
	}
	// All-degenerate input surfaces as NaN, never a plausible number.
	g, skipped = GeomeanSkipped([]float64{0, -1})
	if !math.IsNaN(g) || skipped != 2 {
		t.Fatalf("all-degenerate geomean = (%v, %d), want (NaN, 2)", g, skipped)
	}
}

// Property: geomean lies between min and max, and is scale-equivariant.
func TestGeomeanProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/16 + 0.5 // in (0, ~16.5]
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return math.Abs(Geomean(scaled)-3*g) < 1e-9*math.Max(1, g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Fatal("Speedup(200,100) != 2")
	}
	// A zero-cycle run is degenerate on either side: NaN, not a false 0x.
	if !math.IsNaN(Speedup(100, 0)) {
		t.Fatal("Speedup with zero cycles should be NaN")
	}
	if !math.IsNaN(Speedup(0, 100)) {
		t.Fatal("Speedup with zero baseline cycles should be NaN")
	}
}

func TestTableWarnsOnDegenerateGeomeanCells(t *testing.T) {
	tab := Table{
		Title:   "degenerate",
		Schemes: []string{"a"},
		Rows: []Row{
			{Name: "good", MPKI: 2, Values: map[string]float64{"a": 1.5}},
			{Name: "bad", MPKI: 1, Values: map[string]float64{"a": math.NaN()}},
		},
	}
	out := tab.String()
	if !strings.Contains(out, "warning:") {
		t.Fatalf("degenerate cell not flagged:\n%s", out)
	}
}

func TestSharingMixSumsToOne(t *testing.T) {
	c := Counters{PrivateRead: 10, ReadOnly: 20, ReadWrite: 30, PrivateReadWrite: 40}
	mix := c.SharingMix()
	sum := mix[0] + mix[1] + mix[2] + mix[3]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mix sums to %v, want 1", sum)
	}
	if mix[3] != 0.4 {
		t.Fatalf("private-RW fraction = %v, want 0.4", mix[3])
	}
	var empty Counters
	if empty.SharingMix() != [4]float64{} {
		t.Fatal("empty counters should give zero mix")
	}
}

func TestMPKI(t *testing.T) {
	c := Counters{LLCMisses: 50, Ops: 10000}
	if c.MPKI() != 5 {
		t.Fatalf("MPKI = %v, want 5", c.MPKI())
	}
	var empty Counters
	if empty.MPKI() != 0 {
		t.Fatal("MPKI of empty counters should be 0")
	}
}

func TestAvgMemLatency(t *testing.T) {
	c := Counters{MemLatencySum: 1000, MemCount: 10}
	if c.AvgMemLatency() != 100 {
		t.Fatalf("AvgMemLatency = %v, want 100", c.AvgMemLatency())
	}
}

func TestTable(t *testing.T) {
	tab := Table{
		Title:   "test",
		Schemes: []string{"a", "b"},
	}
	for i := 0; i < 12; i++ {
		tab.Rows = append(tab.Rows, Row{
			Name:   "w" + string(rune('a'+i)),
			MPKI:   float64(i),
			Values: map[string]float64{"a": 1.0 + float64(i)/10, "b": 2.0},
		})
	}
	tab.SortByMPKI()
	if tab.Rows[0].MPKI != 11 {
		t.Fatalf("not sorted by descending MPKI: first=%v", tab.Rows[0].MPKI)
	}
	gm := tab.GeomeanTop(10)
	if gm["b"] != 2.0 {
		t.Fatalf("geomean of constant 2.0 = %v", gm["b"])
	}
	s := tab.String()
	if !strings.Contains(s, "geomean-top10") || !strings.Contains(s, "geomean-top12") {
		t.Fatalf("table output missing geomean rows:\n%s", s)
	}
	// GeomeanTop with n beyond length clamps.
	if _, ok := tab.GeomeanTop(100)["a"]; !ok {
		t.Fatal("GeomeanTop(100) missing scheme")
	}
}

// TestMergeCoversEveryField fills every Counters field with a distinct
// value via reflection and checks Merge into a zero target reproduces it
// exactly — so adding a field without teaching Merge about it fails here
// instead of silently dropping a socket shard's counts.
func TestMergeCoversEveryField(t *testing.T) {
	var src Counters
	v := reflect.ValueOf(&src).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Int:
			f.SetInt(int64(i + 1))
		case reflect.Struct: // MissLatency
			src.MissLatency.Add(uint64(i + 1))
			src.MissLatency.Add(3)
		default:
			t.Fatalf("Counters field %s has kind %s: teach this test (and Merge) about it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	var dst Counters
	dst.Merge(&src)
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("Merge into zero differs from source:\n got %+v\nwant %+v", dst, src)
	}

	// Merging twice must double every event counter but keep the
	// DRAMChannels configuration echo.
	dst.Merge(&src)
	if dst.DRAMChannels != src.DRAMChannels {
		t.Fatalf("DRAMChannels = %d after second merge, want %d", dst.DRAMChannels, src.DRAMChannels)
	}
	if dst.Ops != 2*src.Ops || dst.EngineEpochs != 2*src.EngineEpochs {
		t.Fatal("second merge did not accumulate")
	}
}
