package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log2-bucketed latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)). It supports percentile estimation, which the evaluation
// uses to characterise the LLC-miss service-time distribution (mean latency
// alone hides the bimodal local/remote split that Dvé collapses).
type Histogram struct {
	buckets [40]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

func bucketOf(v uint64) int {
	b := 0
	for v > 1 && b < len(Histogram{}.buckets)-1 {
		v >>= 1
		b++
	}
	return b
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile estimates the p-quantile (0 < p <= 1) assuming uniform
// distribution within a bucket.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := math.Exp2(float64(i))
			hi := math.Exp2(float64(i + 1))
			if i == 0 {
				lo = 0
			}
			frac := (target - cum) / float64(c)
			v := lo + frac*(hi-lo)
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		cum = next
	}
	return float64(h.max)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders a compact summary with a sparkline over non-empty buckets.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	lo, hi := -1, 0
	var peak uint64
	for i, c := range h.buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var bar strings.Builder
	for i := lo; i <= hi; i++ {
		g := int(float64(h.buckets[i]) / float64(peak) * float64(len(glyphs)-1))
		bar.WriteRune(glyphs[g])
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d [2^%d..2^%d) %s",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99),
		h.max, lo, hi+1, bar.String())
}

// histogramJSON is the exported wire form of Histogram, used by the result
// cache: a cached run's latency distribution must survive a JSON round trip
// bit-for-bit or repeated reports would silently diverge.
type histogramJSON struct {
	Buckets [40]uint64 `json:"buckets"`
	Count   uint64     `json:"count"`
	Sum     uint64     `json:"sum"`
	Max     uint64     `json:"max"`
}

// MarshalJSON encodes the histogram's full state.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Buckets: h.buckets, Count: h.count, Sum: h.sum, Max: h.max,
	})
}

// UnmarshalJSON restores a histogram encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	h.buckets, h.count, h.sum, h.max = w.Buckets, w.Count, w.Sum, w.Max
	return nil
}

// Buckets returns the non-empty (bucketLowBound, count) pairs, ascending.
func (h *Histogram) Buckets() [][2]uint64 {
	var out [][2]uint64
	for i, c := range h.buckets {
		if c > 0 {
			out = append(out, [2]uint64{uint64(math.Exp2(float64(i))), c})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
