package stats

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.String() != "histogram: empty" {
		t.Fatalf("empty String = %q", h.String())
	}
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Mean() != (1+2+3+100+1000)/5.0 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

// Percentiles are monotone, bounded by max, and p100 == max.
func TestHistogramPercentileProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(uint64(v) + 1)
		}
		prev := 0.0
		for _, p := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1.0} {
			v := h.Percentile(p)
			if v < prev-1e-9 {
				return false
			}
			if v > float64(h.Max())+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.Add(uint64(r.Intn(1024)))
	}
	p50 := h.Percentile(0.5)
	if p50 < 300 || p50 > 750 {
		t.Fatalf("p50 of U[0,1024) = %v, want ~512 within log2-bucket error", p50)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(10)
	a.Add(20)
	b.Add(1000)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 1000 {
		t.Fatalf("merged count=%d max=%d", a.Count(), a.Max())
	}
}

func TestHistogramEdge(t *testing.T) {
	var h Histogram
	h.Add(0)
	if h.Percentile(0.5) > 1 {
		t.Fatalf("p50 of {0} = %v", h.Percentile(0.5))
	}
	if h.Percentile(0) != 0 {
		t.Fatal("p0 != 0")
	}
	if h.Percentile(2) > 1 {
		t.Fatal("p>1 not clamped")
	}
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(3)
	h.Add(100)
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %v", bs)
	}
	if bs[0][0] != 2 || bs[0][1] != 2 {
		t.Fatalf("first bucket = %v", bs[0])
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 7, 100, 5000, 1 << 30} {
		h.Add(v)
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mutated histogram:\ngot  %s\nwant %s", got.String(), h.String())
	}
	// Re-encoding is byte-stable (the cache's determinism contract).
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("histogram JSON is not byte-stable")
	}
}

func TestHistogramJSONRejectsGarbage(t *testing.T) {
	var h Histogram
	if err := json.Unmarshal([]byte(`{"buckets": "nope"}`), &h); err == nil {
		t.Fatal("bad histogram JSON accepted")
	}
}
