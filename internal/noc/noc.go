// Package noc models the on-chip and inter-socket interconnect: a 2x4 mesh
// per socket with single-cycle hops and static shortest-path routing, and a
// point-to-point inter-socket link with configurable latency (Table II). The
// inter-socket link counts messages and bytes for the Fig 8 traffic analysis
// and models serialization so that bandwidth effects are visible.
package noc

import (
	"fmt"

	"dve/internal/sim"
	"dve/internal/telemetry"
)

// Message sizes in bytes: a control message carries an 8-byte header; a data
// message additionally carries a 64-byte cache line.
const (
	CtrlBytes = 8
	DataBytes = 72
)

// LinkBytesPerCycle is the inter-socket link bandwidth used for
// serialization: 16 bytes/cycle (~48 GB/s at 3 GHz, UPI-class).
const LinkBytesPerCycle = 16

// Mesh computes intra-socket distances between tiles of an R x C mesh.
// Tiles are numbered row-major. Cores occupy tiles 0..n-1; the LLC/directory
// "home" tile is the mesh center by convention.
type Mesh struct {
	rows, cols int
	hopCyc     int
}

// NewMesh returns a mesh with the given geometry and per-hop latency.
func NewMesh(rows, cols, hopCyc int) *Mesh {
	return &Mesh{rows: rows, cols: cols, hopCyc: hopCyc}
}

// Tiles returns the number of tiles in the mesh.
func (m *Mesh) Tiles() int { return m.rows * m.cols }

// Hops returns the Manhattan distance between two tiles (XY routing).
func (m *Mesh) Hops(a, b int) int {
	ar, ac := a/m.cols, a%m.cols
	br, bc := b/m.cols, b%m.cols
	dr, dc := ar-br, ac-bc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Latency returns the cycles to traverse from tile a to tile b.
func (m *Mesh) Latency(a, b int) sim.Cycle {
	return sim.Cycle(m.Hops(a, b) * m.hopCyc)
}

// CoreTile returns the tile index for a core within its socket.
func (m *Mesh) CoreTile(core int) int { return core % m.Tiles() }

// HomeTile is the tile hosting the LLC slice/directory/memory controller.
func (m *Mesh) HomeTile() int { return m.Tiles() / 2 }

// Link is the inter-socket point-to-point interconnect. It is full duplex:
// each direction serializes independently. All sends are delivered; the link
// never drops or reorders within a direction ("all links are ordered").
//
// The link is partition-aware: it holds one engine per socket and, when the
// sockets run on separate partitions of a sim.ParallelEngine, routes every
// delivery through the cross-partition mailbox instead of scheduling on the
// destination engine directly. In the single-engine case both slots alias
// one engine and delivery degenerates to the classic direct schedule. The
// minimum one-way cost of any message is one serialization cycle plus the
// propagation latency, which is exactly the conservative lookahead window
// the parallel engine synchronizes on (see Link.MinLatency).
type Link struct {
	engs    [2]*sim.Engine
	pe      *sim.ParallelEngine
	latency sim.Cycle
	// nextFree[d] is the earliest cycle direction d (0: s0->s1, 1: s1->s0)
	// can start serializing a new message.
	nextFree [2]sim.Cycle

	// Traffic counters, split by sending socket so each partition's worker
	// touches only its own slot; Msgs/Bytes report the totals.
	msgs  [2]uint64
	bytes [2]uint64

	// Trace, when non-nil, records every message as a complete interval
	// [serialization start, delivery) on the sending socket's link track.
	// Per-direction starts are monotone (nextFree only advances), so the
	// track's timestamps are monotone by construction. Tracing binds a
	// single engine, so it is only ever attached in single-engine mode.
	Trace *telemetry.Tracer
}

// NewLink creates the inter-socket link. engs holds the per-socket engines
// (both slots may alias one engine for a serial run); pe, when non-nil, is
// the parallel engine whose mailbox carries cross-socket deliveries. The
// latency must be at least one cycle: a zero-latency link would make the
// lookahead window degenerate (and models no physical interconnect).
func NewLink(engs [2]*sim.Engine, pe *sim.ParallelEngine, latency sim.Cycle) (*Link, error) {
	if engs[0] == nil || engs[1] == nil {
		return nil, fmt.Errorf("noc: link needs an engine per socket")
	}
	if latency < 1 {
		return nil, fmt.Errorf("noc: link latency %d cycles is below the 1-cycle minimum", latency)
	}
	return &Link{engs: engs, pe: pe, latency: latency}, nil
}

// Latency returns the configured one-way propagation latency.
func (l *Link) Latency() sim.Cycle { return l.latency }

// MinLatency returns the minimum sender-to-delivery distance of any message:
// one serialization cycle plus the propagation latency. This is the bound
// the parallel engine may use as its epoch lookahead window.
func (l *Link) MinLatency() sim.Cycle { return l.latency + 1 }

// deliveryTime reserves the src->dst direction for the message and returns
// its delivery cycle: serialization (bandwidth) + propagation latency, with
// per-direction queuing when the link is busy. Serialization is clamped to
// at least one cycle so every delivery respects MinLatency.
func (l *Link) deliveryTime(src, bytes int) sim.Cycle {
	dir := src & 1
	start := l.engs[dir].Now()
	if l.nextFree[dir] > start {
		start = l.nextFree[dir]
	}
	ser := sim.Cycle((bytes + LinkBytesPerCycle - 1) / LinkBytesPerCycle)
	if ser < 1 {
		ser = 1
	}
	l.nextFree[dir] = start + ser
	l.msgs[dir]++
	l.bytes[dir] += uint64(bytes)
	if l.Trace != nil {
		l.Trace.Complete(telemetry.CompLink, src, "xfer", "bytes", uint64(bytes),
			start, ser+l.latency)
	}
	return start + ser + l.latency
}

// Send transmits bytes from socket src to the other socket and invokes fn on
// delivery. Scheduling a prebuilt func() is allocation-free; callers that
// would otherwise build a closure per message can use SendFn instead.
func (l *Link) Send(src int, bytes int, fn func()) {
	when := l.deliveryTime(src, bytes)
	if l.pe != nil {
		l.pe.CrossAt(src&1, (src&1)^1, when, fn)
		return
	}
	l.engs[(src&1)^1].At(when, fn)
}

// SendFn is the typed fast path of Send: h(arg, v) runs on delivery. With a
// package-level Handler and a pooled (pointer-shaped) arg the whole send is
// allocation-free.
func (l *Link) SendFn(src, bytes int, h sim.Handler, arg any, v uint64) {
	when := l.deliveryTime(src, bytes)
	if l.pe != nil {
		l.pe.CrossAtFn(src&1, (src&1)^1, when, h, arg, v)
		return
	}
	l.engs[(src&1)^1].AtFn(when, h, arg, v)
}

// Msgs returns the total messages sent in both directions.
func (l *Link) Msgs() uint64 { return l.msgs[0] + l.msgs[1] }

// Bytes returns the total bytes sent in both directions.
func (l *Link) Bytes() uint64 { return l.bytes[0] + l.bytes[1] }

// Reset clears the traffic counters (the queue state is left alone).
func (l *Link) Reset() {
	l.msgs[0], l.msgs[1] = 0, 0
	l.bytes[0], l.bytes[1] = 0, 0
}

// ResetDir clears one sending direction's traffic counters. Partitioned
// runs reset each socket's direction from that socket's own partition when
// its region of interest starts.
func (l *Link) ResetDir(dir int) {
	l.msgs[dir&1], l.bytes[dir&1] = 0, 0
}
