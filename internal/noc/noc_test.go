package noc

import (
	"testing"
	"testing/quick"

	"dve/internal/sim"
	"dve/internal/topology"
)

func TestMeshHops(t *testing.T) {
	m := NewMesh(2, 4, 1)
	if m.Tiles() != 8 {
		t.Fatalf("Tiles = %d, want 8", m.Tiles())
	}
	// tile 0 = (0,0), tile 7 = (1,3): distance 1+3 = 4.
	if m.Hops(0, 7) != 4 {
		t.Fatalf("Hops(0,7) = %d, want 4", m.Hops(0, 7))
	}
	if m.Hops(3, 3) != 0 {
		t.Fatal("Hops to self != 0")
	}
	if m.Latency(0, 7) != 4 {
		t.Fatalf("Latency(0,7) = %d, want 4", m.Latency(0, 7))
	}
}

// Property: mesh distance is a metric (symmetric, zero iff equal, triangle
// inequality).
func TestMeshMetricProperty(t *testing.T) {
	m := NewMesh(2, 4, 1)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%8, int(b)%8, int(c)%8
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if (m.Hops(x, y) == 0) != (x == y) {
			return false
		}
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sharedLink builds a single-engine link (both socket slots aliased), the
// serial-mode shape every pre-partitioning caller used.
func sharedLink(t *testing.T, eng *sim.Engine, latency sim.Cycle) *Link {
	t.Helper()
	l, err := NewLink([2]*sim.Engine{eng, eng}, nil, latency)
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	return l
}

func TestLinkDeliveryAndAccounting(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 150)
	var arrived sim.Cycle
	l.Send(0, CtrlBytes, func() { arrived = eng.Now() })
	eng.Run()
	// 8 bytes -> 1 serialization cycle + 150 latency.
	if arrived != 151 {
		t.Fatalf("ctrl delivered at %d, want 151", arrived)
	}
	if l.Msgs() != 1 || l.Bytes() != CtrlBytes {
		t.Fatalf("accounting: msgs=%d bytes=%d", l.Msgs(), l.Bytes())
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 100)
	var first, second sim.Cycle
	// Two back-to-back data messages in the same direction must serialize.
	l.Send(0, DataBytes, func() { first = eng.Now() })
	l.Send(0, DataBytes, func() { second = eng.Now() })
	eng.Run()
	ser := sim.Cycle((DataBytes + LinkBytesPerCycle - 1) / LinkBytesPerCycle)
	if first != ser+100 {
		t.Fatalf("first delivered at %d, want %d", first, ser+100)
	}
	if second != 2*ser+100 {
		t.Fatalf("second delivered at %d, want %d (serialized)", second, 2*ser+100)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 100)
	var a, b sim.Cycle
	l.Send(0, DataBytes, func() { a = eng.Now() })
	l.Send(1, DataBytes, func() { b = eng.Now() })
	eng.Run()
	if a != b {
		t.Fatalf("opposite directions should not serialize: %d vs %d", a, b)
	}
}

func TestLinkReset(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 10)
	l.Send(0, CtrlBytes, func() {})
	eng.Run()
	l.Reset()
	if l.Msgs() != 0 || l.Bytes() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestLinkResetDir(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 10)
	l.Send(0, CtrlBytes, func() {})
	l.Send(1, DataBytes, func() {})
	eng.Run()
	l.ResetDir(0)
	if l.Msgs() != 1 || l.Bytes() != DataBytes {
		t.Fatalf("after ResetDir(0): msgs=%d bytes=%d, want the socket-1 send only", l.Msgs(), l.Bytes())
	}
}

func TestLinkRejectsDegenerateLatency(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewLink([2]*sim.Engine{eng, eng}, nil, 0); err == nil {
		t.Fatal("zero-cycle link latency accepted; the lookahead window would be degenerate")
	}
	if _, err := NewLink([2]*sim.Engine{eng, nil}, nil, 10); err == nil {
		t.Fatal("nil per-socket engine accepted")
	}
}

func TestLinkMinLatency(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 150)
	// Minimum delivery distance = 1 serialization cycle + propagation.
	if got := l.MinLatency(); got != 151 {
		t.Fatalf("MinLatency = %d, want 151", got)
	}
	var arrived sim.Cycle
	l.Send(0, CtrlBytes, func() { arrived = eng.Now() })
	eng.Run()
	if arrived < l.MinLatency() {
		t.Fatalf("delivery at %d beat MinLatency %d", arrived, l.MinLatency())
	}
}

// TestLinkCrossPartitionDelivery drives the mailbox path: two partitions,
// a send from each side, deliveries land on the destination partition at
// the same cycles the serial link would produce.
func TestLinkCrossPartitionDelivery(t *testing.T) {
	pe := sim.NewParallelEngine(2, 151)
	l, err := NewLink([2]*sim.Engine{pe.Part(0), pe.Part(1)}, pe, 150)
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	var at0, at1 sim.Cycle
	pe.Part(0).Schedule(0, func() {
		l.Send(0, CtrlBytes, func() { at1 = pe.Part(1).Now() })
	})
	pe.Part(1).Schedule(0, func() {
		l.Send(1, CtrlBytes, func() { at0 = pe.Part(0).Now() })
	})
	pe.Run()
	if at0 != 151 || at1 != 151 {
		t.Fatalf("cross deliveries at %d/%d, want 151/151", at0, at1)
	}
	if l.Msgs() != 2 {
		t.Fatalf("msgs = %d, want 2", l.Msgs())
	}
}

// countHandler is the typed-path delivery handler; package-level so that
// SendFn calls with it are allocation-free.
func countHandler(arg any, v uint64) { *arg.(*uint64) += v }

// TestLinkSendFnDisabledProbeAllocs pins the telemetry contract on the link
// hot path: with Trace nil (the default) SendFn costs one nil check and
// zero allocations. Each batch schedules an alignment event exactly one
// ring revolution (4096 cycles) after its start so every batch reuses the
// same calendar buckets and the warm-up batch grows all needed capacity.
func TestLinkSendFnDisabledProbeAllocs(t *testing.T) {
	eng := sim.NewEngine()
	l := sharedLink(t, eng, 150)
	if l.Trace != nil {
		t.Fatal("fresh link has a tracer attached")
	}
	var delivered uint64
	nop := func() {}
	batch := func() {
		start := eng.Now()
		for i := 0; i < 64; i++ {
			// 64 data messages one way: 64 serialization slots + latency
			// stay well inside one ring revolution.
			l.SendFn(0, DataBytes, countHandler, &delivered, 1)
		}
		eng.At(start+4096, nop)
		eng.Run()
	}
	batch()
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("SendFn with nil tracer allocated %.2f times per batch, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no deliveries ran")
	}
}

func TestLinkLatencyFromConfig(t *testing.T) {
	c := topology.Default(topology.ProtoDeny)
	eng := sim.NewEngine()
	l := sharedLink(t, eng, sim.Cycle(c.InterSocketCyc()))
	if l.Latency() != 150 {
		t.Fatalf("link latency = %d, want 150", l.Latency())
	}
}
