package noc

import (
	"testing"
	"testing/quick"

	"dve/internal/sim"
	"dve/internal/topology"
)

func TestMeshHops(t *testing.T) {
	m := NewMesh(2, 4, 1)
	if m.Tiles() != 8 {
		t.Fatalf("Tiles = %d, want 8", m.Tiles())
	}
	// tile 0 = (0,0), tile 7 = (1,3): distance 1+3 = 4.
	if m.Hops(0, 7) != 4 {
		t.Fatalf("Hops(0,7) = %d, want 4", m.Hops(0, 7))
	}
	if m.Hops(3, 3) != 0 {
		t.Fatal("Hops to self != 0")
	}
	if m.Latency(0, 7) != 4 {
		t.Fatalf("Latency(0,7) = %d, want 4", m.Latency(0, 7))
	}
}

// Property: mesh distance is a metric (symmetric, zero iff equal, triangle
// inequality).
func TestMeshMetricProperty(t *testing.T) {
	m := NewMesh(2, 4, 1)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%8, int(b)%8, int(c)%8
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if (m.Hops(x, y) == 0) != (x == y) {
			return false
		}
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDeliveryAndAccounting(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 150)
	var arrived sim.Cycle
	l.Send(0, CtrlBytes, func() { arrived = eng.Now() })
	eng.Run()
	// 8 bytes -> 1 serialization cycle + 150 latency.
	if arrived != 151 {
		t.Fatalf("ctrl delivered at %d, want 151", arrived)
	}
	if l.Msgs != 1 || l.Bytes != CtrlBytes {
		t.Fatalf("accounting: msgs=%d bytes=%d", l.Msgs, l.Bytes)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 100)
	var first, second sim.Cycle
	// Two back-to-back data messages in the same direction must serialize.
	l.Send(0, DataBytes, func() { first = eng.Now() })
	l.Send(0, DataBytes, func() { second = eng.Now() })
	eng.Run()
	ser := sim.Cycle((DataBytes + LinkBytesPerCycle - 1) / LinkBytesPerCycle)
	if first != ser+100 {
		t.Fatalf("first delivered at %d, want %d", first, ser+100)
	}
	if second != 2*ser+100 {
		t.Fatalf("second delivered at %d, want %d (serialized)", second, 2*ser+100)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 100)
	var a, b sim.Cycle
	l.Send(0, DataBytes, func() { a = eng.Now() })
	l.Send(1, DataBytes, func() { b = eng.Now() })
	eng.Run()
	if a != b {
		t.Fatalf("opposite directions should not serialize: %d vs %d", a, b)
	}
}

func TestLinkReset(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 10)
	l.Send(0, CtrlBytes, func() {})
	eng.Run()
	l.Reset()
	if l.Msgs != 0 || l.Bytes != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

// countHandler is the typed-path delivery handler; package-level so that
// SendFn calls with it are allocation-free.
func countHandler(arg any, v uint64) { *arg.(*uint64) += v }

// TestLinkSendFnDisabledProbeAllocs pins the telemetry contract on the link
// hot path: with Trace nil (the default) SendFn costs one nil check and
// zero allocations. Each batch schedules an alignment event exactly one
// ring revolution (4096 cycles) after its start so every batch reuses the
// same calendar buckets and the warm-up batch grows all needed capacity.
func TestLinkSendFnDisabledProbeAllocs(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 150)
	if l.Trace != nil {
		t.Fatal("fresh link has a tracer attached")
	}
	var delivered uint64
	nop := func() {}
	batch := func() {
		start := eng.Now()
		for i := 0; i < 64; i++ {
			// 64 data messages one way: 64 serialization slots + latency
			// stay well inside one ring revolution.
			l.SendFn(0, DataBytes, countHandler, &delivered, 1)
		}
		eng.At(start+4096, nop)
		eng.Run()
	}
	batch()
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("SendFn with nil tracer allocated %.2f times per batch, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no deliveries ran")
	}
}

func TestLinkLatencyFromConfig(t *testing.T) {
	c := topology.Default(topology.ProtoDeny)
	eng := sim.NewEngine()
	l := NewLink(eng, sim.Cycle(c.InterSocketCyc()))
	if l.Latency() != 150 {
		t.Fatalf("link latency = %d, want 150", l.Latency())
	}
}
