package sim

import (
	"reflect"
	"testing"
)

// traceRec is one dispatched test event: which partition, when, and a
// caller-chosen id. Each partition appends only to its own slice, so the
// recording itself is race-free under parallel execution.
type traceRec struct {
	Part int
	When Cycle
	ID   uint64
}

// xorshift is a tiny deterministic PRNG (no math/rand: the determinism
// analyzer treats its global state as a nondeterminism source).
func xorshift(s *uint64) uint64 {
	*s ^= *s << 13
	*s ^= *s >> 7
	*s ^= *s << 17
	return *s
}

const testWindow = 151

// pingPongTrace runs a deterministic two-partition workload — local event
// chains that occasionally fire cross-partition messages at or beyond the
// lookahead window — and returns the per-partition dispatch traces plus the
// epoch/stall counters.
func pingPongTrace(workers int) (trace [2][]traceRec, epochs, stalls uint64) {
	pe := NewParallelEngine(2, testWindow)
	pe.SetWorkers(workers)
	rng := [2]uint64{0x9e3779b97f4a7c15, 0xdeadbeefcafef00d}

	var step func(p int, ttl int, id uint64)
	step = func(p int, ttl int, id uint64) {
		trace[p] = append(trace[p], traceRec{Part: p, When: pe.Part(p).Now(), ID: id})
		if ttl == 0 {
			return
		}
		r := xorshift(&rng[p])
		next := id*7 + uint64(ttl)
		if r%5 == 0 {
			// Cross send: at least window away, with a jittered extra leg.
			delay := Cycle(testWindow + r%97)
			pe.CrossSchedule(p, p^1, delay, func() { step(p^1, ttl-1, next) })
			return
		}
		pe.Part(p).Schedule(Cycle(1+r%40), func() { step(p, ttl-1, next) })
	}

	for p := 0; p < 2; p++ {
		p := p
		pe.Part(p).Schedule(Cycle(p), func() { step(p, 300, uint64(p)) })
	}
	pe.Run()
	return trace, pe.Epochs(), pe.BarrierStalls()
}

// TestParallelMatchesSerialPartitioned pins the core equivalence claim:
// running the partitions on worker goroutines produces exactly the event
// trace (and epoch accounting) of the single-goroutine epoch loop.
func TestParallelMatchesSerialPartitioned(t *testing.T) {
	st, sEpochs, sStalls := pingPongTrace(1)
	pt, pEpochs, pStalls := pingPongTrace(2)
	if !reflect.DeepEqual(st, pt) {
		t.Fatalf("parallel trace diverged from serial: %d/%d vs %d/%d events",
			len(pt[0]), len(pt[1]), len(st[0]), len(st[1]))
	}
	if sEpochs != pEpochs || sStalls != pStalls {
		t.Fatalf("epoch accounting diverged: serial %d/%d, parallel %d/%d",
			sEpochs, sStalls, pEpochs, pStalls)
	}
	if sEpochs == 0 {
		t.Fatal("workload executed no epochs")
	}
}

// TestParallelRunTwiceDeterminism reruns the parallel (worker-goroutine)
// workload and requires identical traces — under -race this also exercises
// the mailbox/barrier synchronization for data races.
func TestParallelRunTwiceDeterminism(t *testing.T) {
	a, aE, aS := pingPongTrace(2)
	b, bE, bS := pingPongTrace(2)
	if !reflect.DeepEqual(a, b) || aE != bE || aS != bS {
		t.Fatal("parallel engine is not deterministic across runs")
	}
}

// TestCrossAtEnforcesLookahead: a cross message inside the window would
// break conservative synchronization and must panic loudly.
func TestCrossAtEnforcesLookahead(t *testing.T) {
	pe := NewParallelEngine(2, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("CrossAt inside the lookahead window did not panic")
		}
	}()
	pe.CrossAt(0, 1, 99, func() {})
}

// TestCrossAtFnOrderingTies: simultaneous deliveries from both sources
// merge in (when, src, send order) — the documented mailbox ordering rule.
func TestCrossAtFnOrderingTies(t *testing.T) {
	pe := NewParallelEngine(2, 10)
	var order []uint64
	rec := func(_ any, v uint64) { order = append(order, v) }
	// Partition 1 sends first in wall order, but ties at cycle 20 must
	// resolve by source index, then send order within the source.
	pe.Part(1).Schedule(0, func() {
		pe.CrossAtFn(1, 0, 20, rec, nil, 10)
		pe.CrossAtFn(1, 0, 20, rec, nil, 11)
		pe.CrossAtFn(1, 0, 15, rec, nil, 12)
	})
	pe.Part(0).Schedule(0, func() {
		pe.CrossAtFn(0, 0, 20, rec, nil, 0)
	})
	pe.SetWorkers(1)
	pe.Run()
	want := []uint64{12, 0, 10, 11}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("merge order = %v, want %v", order, want)
	}
}

// TestParallelEngineValidation pins the constructor contract.
func TestParallelEngineValidation(t *testing.T) {
	for _, tc := range []struct{ parts, window int }{{0, 5}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewParallelEngine(%d, %d) did not panic", tc.parts, tc.window)
				}
			}()
			NewParallelEngine(tc.parts, Cycle(tc.window))
		}()
	}
}

// TestParallelEngineDrainsDaemons: daemon events (refresh-style self-
// rescheduling ticks) must not keep the epoch loop alive once demanded
// work is gone — mirroring Engine.Run's demand contract.
func TestParallelEngineDrainsDaemons(t *testing.T) {
	pe := NewParallelEngine(2, 50)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		pe.Part(0).ScheduleDaemon(10, tick)
	}
	pe.Part(0).ScheduleDaemon(10, tick)
	done := false
	pe.Part(1).Schedule(500, func() { done = true })
	pe.Run()
	if !done {
		t.Fatal("demanded work did not run")
	}
	if ticks == 0 {
		t.Fatal("daemon never ticked inside the demanded horizon")
	}
}

// crossBatcher drives TestParallelSteadyStateAllocs through package-level
// handlers so the scheduling itself allocates nothing.
type crossBatcher struct {
	pe        *ParallelEngine
	delivered uint64
}

func countCross(arg any, v uint64) { *arg.(*uint64) += v }

func sendCrossBatch(arg any, _ uint64) {
	b := arg.(*crossBatcher)
	when := b.pe.Part(0).Now() + 16
	for i := 0; i < 32; i++ {
		b.pe.CrossAtFn(0, 1, when, countCross, &b.delivered, 1)
	}
}

func nopAlign(any, uint64) {}

// TestParallelSteadyStateAllocs pins the mailbox's zero-alloc contract in
// the serial epoch loop: after a warm-up epoch batch has grown the lanes,
// repeated batches of typed cross sends allocate nothing. Each batch ends
// on an alignment event exactly one ring revolution (4096 cycles) after
// its start, so every batch reuses the same calendar buckets and only the
// warm-up batch grows capacity (the same trick the noc alloc test uses);
// the window-1 engine makes the final epoch end exactly on the alignment
// cycle, keeping batch starts congruent mod 4096.
func TestParallelSteadyStateAllocs(t *testing.T) {
	b := &crossBatcher{pe: NewParallelEngine(2, 1)}
	b.pe.SetWorkers(1)
	batch := func() {
		start := b.pe.Part(0).Now()
		b.pe.Part(0).ScheduleFn(0, sendCrossBatch, b, 0)
		b.pe.Part(0).AtFn(start+4096, nopAlign, nil, 0)
		b.pe.Run()
	}
	batch()
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("steady-state cross batch allocated %.2f times, want 0", allocs)
	}
	if b.delivered == 0 {
		t.Fatal("no deliveries ran")
	}
}
