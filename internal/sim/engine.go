// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of events ordered by (time, sequence
// number). Events scheduled for the same cycle fire in the order they were
// scheduled, which makes every simulation run fully reproducible.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type event struct {
	when   Cycle
	seq    uint64
	fn     func()
	daemon bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	// demand counts queued non-daemon events; Run returns when it reaches
	// zero even if daemon events (refresh ticks, monitors) remain.
	demand int
	// Stopped reports whether Stop was called during the current Run.
	stopped bool
}

// NewEngine returns an engine with an empty event queue at cycle 0.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles. A delay of 0 runs fn later in the
// current cycle, after all previously scheduled events for this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	e.demand++
	heap.Push(&e.events, &event{when: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleDaemon schedules a background event: daemon events fire like
// normal ones but do not keep Run alive — the run ends when only daemons
// remain (periodic refresh, monitors, heartbeats).
func (e *Engine) ScheduleDaemon(delay Cycle, fn func()) {
	e.seq++
	heap.Push(&e.events, &event{when: e.now + delay, seq: e.seq, fn: fn, daemon: true})
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	e.demand++
	heap.Push(&e.events, &event{when: when, seq: e.seq, fn: fn})
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.events.Len() }

// Stop makes the current Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the cycle of the last executed event.
func (e *Engine) Run() Cycle {
	e.stopped = false
	for e.events.Len() > 0 && e.demand > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if !ev.daemon {
			e.demand--
		}
		e.now = ev.when
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with time <= limit. Events beyond the limit stay
// queued. It returns the current cycle (== limit unless the queue drained or
// Stop was called first).
func (e *Engine) RunUntil(limit Cycle) Cycle {
	e.stopped = false
	for e.events.Len() > 0 && !e.stopped {
		if e.events[0].when > limit {
			e.now = limit
			return e.now
		}
		ev := heap.Pop(&e.events).(*event)
		if !ev.daemon {
			e.demand--
		}
		e.now = ev.when
		ev.fn()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}
