// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a pending-event set ordered by (time, sequence
// number). Events scheduled for the same cycle fire in the order they were
// scheduled, which makes every simulation run fully reproducible.
//
// # Pending-event structure
//
// The pending set is a two-level calendar queue tuned for the delay mix this
// simulator actually produces (cache/directory latencies of tens of cycles,
// link crossings of ~150, DRAM legs in between, and rare far-future daemon
// ticks like refresh):
//
//   - a near-future ring of ringSize one-cycle buckets covering the window
//     [ringBase, ringBase+ringSize); an event for cycle c lives in bucket
//     c&ringMask, and because the window is exactly ringSize cycles wide a
//     bucket only ever holds one cycle's events at a time;
//   - a far-future overflow min-heap (ordered by (when, seq)) for events
//     beyond the window; they migrate into the ring as the window advances,
//     before any same-cycle event can be scheduled directly, so bucket
//     insertion order always equals sequence order.
//
// Events are stored by value in the bucket slices and the heap; the slices
// retain their capacity across drain/refill cycles (a per-bucket free list),
// so in steady state Schedule and Run perform no heap allocations. An
// occupancy bitmap over the buckets makes "find the next non-empty bucket" a
// handful of word scans instead of a per-cycle walk.
package sim

import "math/bits"

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle uint64

// Handler is the typed fast-path callback: it receives the arg and scalar
// value it was scheduled with. Scheduling a package-level Handler with a
// pointer-shaped arg (pointer, func value, ...) is allocation-free, unlike
// a capturing closure, which the caller must allocate per event.
type Handler func(arg any, v uint64)

const (
	ringBits  = 12
	ringSize  = 1 << ringBits // one-cycle buckets in the near-future window
	ringMask  = ringSize - 1
	ringWords = ringSize / 64 // occupancy bitmap words
)

// event is one queue entry, stored by value. The closure API (Schedule et
// al.) is expressed on top of the typed form: the func() rides in arg and a
// shared adapter invokes it, so both APIs share one representation.
type event struct {
	when   Cycle
	seq    uint64
	h      Handler
	arg    any
	v      uint64
	daemon bool
}

func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// runClosure adapts the closure API onto the typed representation.
func runClosure(arg any, _ uint64) { arg.(func())() }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now  Cycle
	seq  uint64
	size int // pending events across ring and overflow

	// Near-future calendar ring. Invariants: ringBase <= now whenever
	// control is outside pop; every ring event has when in
	// [ringBase, ringBase+ringSize); bucket s is either active
	// (head[s] < len(ring[s]), occupancy bit set) or empty
	// (len == head == 0, bit clear).
	ringBase  Cycle
	ringCount int
	ring      [][]event
	head      []int
	occ       [ringWords]uint64

	// Far-future overflow min-heap on (when, seq). Invariant: no overflow
	// event has when < ringBase+ringSize (eligible events migrate the
	// moment the window advances, keeping bucket order = seq order).
	overflow []event

	// demand counts queued non-daemon events; Run returns when it reaches
	// zero even if daemon events (refresh ticks, monitors) remain.
	demand int
	// stopped reports whether Stop was called during the current Run.
	stopped bool

	// OnDispatch, when non-nil, observes every dispatched event just before
	// its handler runs: the advanced clock and the remaining queue depth.
	// It is a plain func field (not an interface) so the disabled path is a
	// single nil check per event, and it must only observe — an OnDispatch
	// that schedules events or mutates engine state breaks the determinism
	// contract (telemetry's no-perturbation rule).
	OnDispatch func(now Cycle, pending int)
}

// NewEngine returns an engine with an empty event queue at cycle 0.
func NewEngine() *Engine {
	return &Engine{
		ring: make([][]event, ringSize),
		head: make([]int, ringSize),
	}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles. A delay of 0 runs fn later in the
// current cycle, after all previously scheduled events for this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.demand++
	e.push(e.now+delay, runClosure, fn, 0, false)
}

// ScheduleFn is the allocation-free fast path of Schedule: h(arg, v) runs
// after delay cycles. Use a package-level Handler and a pointer-shaped arg
// to avoid the per-event closure allocation of Schedule.
func (e *Engine) ScheduleFn(delay Cycle, h Handler, arg any, v uint64) {
	e.demand++
	e.push(e.now+delay, h, arg, v, false)
}

// ScheduleDaemon schedules a background event: daemon events fire like
// normal ones but do not keep Run alive — the run ends when only daemons
// remain (periodic refresh, monitors, heartbeats).
func (e *Engine) ScheduleDaemon(delay Cycle, fn func()) {
	e.push(e.now+delay, runClosure, fn, 0, true)
}

// ScheduleDaemonFn is the allocation-free fast path of ScheduleDaemon.
func (e *Engine) ScheduleDaemonFn(delay Cycle, h Handler, arg any, v uint64) {
	e.push(e.now+delay, h, arg, v, true)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("sim: scheduling event in the past")
	}
	e.demand++
	e.push(when, runClosure, fn, 0, false)
}

// AtFn is the allocation-free fast path of At.
func (e *Engine) AtFn(when Cycle, h Handler, arg any, v uint64) {
	if when < e.now {
		panic("sim: scheduling event in the past")
	}
	e.demand++
	e.push(when, h, arg, v, false)
}

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.size }

// NextEventTime returns the cycle of the earliest pending event, or
// ok=false on an empty queue. The parallel engine uses it to size epochs:
// the global minimum across partitions anchors the lookahead window.
func (e *Engine) NextEventTime() (Cycle, bool) {
	if e.size == 0 {
		return 0, false
	}
	if e.ringCount == 0 {
		// Ring idle: the heap minimum is the global minimum.
		return e.overflow[0].when, true
	}
	// Ring events all precede the overflow horizon (ringBase+ringSize),
	// so the earliest ring event is the global minimum.
	return e.nextEventCycle(), true
}

// Stop makes the current Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the cycle of the last executed event.
func (e *Engine) Run() Cycle {
	e.stopped = false
	for e.size > 0 && e.demand > 0 && !e.stopped {
		ev, _ := e.pop(0, false)
		if !ev.daemon {
			e.demand--
		}
		e.now = ev.when
		if e.OnDispatch != nil {
			e.OnDispatch(e.now, e.size)
		}
		ev.h(ev.arg, ev.v)
	}
	return e.now
}

// RunUntil executes events with time <= limit. Events beyond the limit stay
// queued. It returns the current cycle (== limit unless the queue drained or
// Stop was called first).
func (e *Engine) RunUntil(limit Cycle) Cycle {
	e.stopped = false
	for e.size > 0 && !e.stopped {
		ev, ok := e.pop(limit, true)
		if !ok {
			e.now = limit
			return e.now
		}
		if !ev.daemon {
			e.demand--
		}
		e.now = ev.when
		if e.OnDispatch != nil {
			e.OnDispatch(e.now, e.size)
		}
		ev.h(ev.arg, ev.v)
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// push enqueues an event, assigning the next sequence number. Callers
// guarantee when >= e.now, which (with the ringBase <= now invariant) means
// the event is never earlier than the window start.
func (e *Engine) push(when Cycle, h Handler, arg any, v uint64, daemon bool) {
	if e.size == 0 && e.now > e.ringBase {
		// Empty queue: re-anchor the window at the present so the new
		// event (and its successors) land in the ring, not the heap.
		e.ringBase = e.now
	}
	e.seq++
	ev := event{when: when, seq: e.seq, h: h, arg: arg, v: v, daemon: daemon}
	e.size++
	if when < e.ringBase+ringSize {
		e.ringPut(ev)
	} else {
		e.heapPush(ev)
	}
}

// ringPut appends the event to its one-cycle bucket.
func (e *Engine) ringPut(ev event) {
	s := int(ev.when) & ringMask
	if e.head[s] == len(e.ring[s]) {
		// Bucket empty: (re)start it and mark it occupied.
		e.ring[s] = e.ring[s][:0]
		e.head[s] = 0
		e.occ[s>>6] |= 1 << uint(s&63)
	}
	e.ring[s] = append(e.ring[s], ev)
	e.ringCount++
}

// pop removes and returns the earliest pending event in (when, seq) order.
// When bounded, events with when > limit stay queued and ok=false is
// returned (with the window advanced to limit so later pushes keep the ring
// invariants).
func (e *Engine) pop(limit Cycle, bounded bool) (ev event, ok bool) {
	if e.size == 0 {
		return event{}, false
	}
	if e.ringCount == 0 {
		// Ring idle: jump the window straight to the earliest far-future
		// event instead of scanning empty buckets.
		if bounded && e.overflow[0].when > limit {
			e.advanceBase(limit)
			return event{}, false
		}
		e.ringBase = e.overflow[0].when
		e.migrate()
	}
	c := e.nextEventCycle()
	if bounded && c > limit {
		e.advanceBase(limit)
		return event{}, false
	}
	e.advanceBase(c)
	s := int(c) & ringMask
	h := e.head[s]
	ev = e.ring[s][h]
	e.ring[s][h] = event{} // release arg/handler references
	e.head[s] = h + 1
	if e.head[s] == len(e.ring[s]) {
		e.ring[s] = e.ring[s][:0]
		e.head[s] = 0
		e.occ[s>>6] &^= 1 << uint(s&63)
	}
	e.ringCount--
	e.size--
	return ev, true
}

// advanceBase moves the window start forward to c and migrates any overflow
// events that the wider window now covers. Migration must happen on every
// advance — before the next push — so that a directly scheduled event can
// never land in a bucket ahead of an earlier-sequence overflow event for
// the same cycle.
func (e *Engine) advanceBase(c Cycle) {
	if c > e.ringBase {
		e.ringBase = c
		e.migrate()
	}
}

// migrate drains overflow events that fit the current window into the ring.
// Heap order is (when, seq), so same-cycle events arrive in sequence order.
func (e *Engine) migrate() {
	horizon := e.ringBase + ringSize
	for len(e.overflow) > 0 && e.overflow[0].when < horizon {
		e.ringPut(e.heapPop())
	}
}

// nextEventCycle returns the cycle of the earliest ring event (callers
// ensure ringCount > 0). It scans the occupancy bitmap from the window
// start, wrapping once; bucket distance from ringBase is bucket-index
// distance modulo ringSize because the window is exactly ringSize wide.
func (e *Engine) nextEventCycle() Cycle {
	start := int(e.ringBase) & ringMask
	w := start >> 6
	if b := e.occ[w] >> uint(start&63); b != 0 {
		return e.ringBase + Cycle(bits.TrailingZeros64(b))
	}
	for i := 1; i <= ringWords; i++ {
		wi := (w + i) & (ringWords - 1)
		if b := e.occ[wi]; b != 0 {
			s := wi<<6 + bits.TrailingZeros64(b)
			return e.ringBase + Cycle((s-start)&ringMask)
		}
	}
	panic("sim: ring occupancy accounting corrupted")
}

// heapPush inserts the event into the overflow min-heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.overflow = h
}

// heapPop removes and returns the overflow minimum.
func (e *Engine) heapPop() event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release references
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(&h[r], &h[l]) {
			m = r
		}
		if !eventLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.overflow = h
	return top
}
