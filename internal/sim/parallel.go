// Conservative parallel discrete-event simulation over engine partitions.
//
// A ParallelEngine owns one Engine per partition (one per socket in this
// simulator) and runs them in lockstepped epochs. The lookahead invariant
// that makes this safe is the inter-partition link latency: a message sent
// from partition p at cycle t cannot be delivered to another partition
// before t+window, where window = min link latency + 1 (every link message
// pays at least one serialization cycle before the latency leg). So all
// partitions may freely execute the half-open window [T, T+window) without
// observing each other, where T is the global minimum pending-event time.
//
// Cross-partition messages are not scheduled directly on the destination
// engine (that would race); they accumulate in per-(src,dst) mailbox lanes
// during the epoch and are merged at the barrier. The merge rule makes the
// destination order deterministic regardless of worker interleaving: lanes
// are concatenated in source order and stable-sorted by delivery time, so
// ties break by (delivery time, source partition, send order within the
// source). Destination sequence numbers are assigned in merge order, which
// is identical whether the epoch ran on one goroutine or many — parallel
// and serial partitioned runs are byte-identical by construction.
package sim

import "sync"

// crossEvent is one mailbox entry: an absolute-time event bound for another
// partition. Closure sends ride in fn; the typed fast path rides in (h,
// arg, v) with fn nil — mirroring the Engine event representation.
type crossEvent struct {
	when Cycle
	h    Handler
	arg  any
	v    uint64
	fn   func()
}

// ParallelEngine coordinates nparts calendar-queue partitions that may only
// interact through CrossAt/CrossAtFn messages delayed by at least the
// lookahead window.
type ParallelEngine struct {
	parts   []*Engine
	window  Cycle
	workers int

	// lanes[src*n+dst] is the mailbox from src to dst. Each lane has a
	// single writer (the goroutine running partition src) during an epoch
	// and is drained by the coordinator at the barrier; the slices keep
	// their capacity so the steady state appends without allocating.
	lanes   [][]crossEvent
	scratch []crossEvent

	epochs uint64
	stalls uint64

	// Worker machinery for Run with workers > 1: one persistent goroutine
	// per partition, fed epoch end times over its channel; closing the
	// channels at the end of Run stops them (no goroutine outlives Run).
	start []chan Cycle
	wg    sync.WaitGroup
}

// NewParallelEngine returns a parallel engine with nparts fresh partitions
// and the given lookahead window in cycles. The window must be at least 1
// — a degenerate window means the config's link latency cannot bound
// cross-partition visibility and the caller should fall back to a single
// shared engine. Workers defaults to nparts; SetWorkers(1) forces the
// serial epoch loop (same results by construction).
func NewParallelEngine(nparts int, window Cycle) *ParallelEngine {
	if nparts < 1 {
		panic("sim: parallel engine needs at least one partition")
	}
	if window < 1 {
		panic("sim: lookahead window must be at least one cycle")
	}
	pe := &ParallelEngine{
		parts:   make([]*Engine, nparts),
		window:  window,
		workers: nparts,
		lanes:   make([][]crossEvent, nparts*nparts),
	}
	for i := range pe.parts {
		pe.parts[i] = NewEngine()
	}
	return pe
}

// Part returns partition i's engine. All intra-partition scheduling goes
// straight to it; only cross-partition messages go through the mailbox.
func (pe *ParallelEngine) Part(i int) *Engine { return pe.parts[i] }

// Parts returns the number of partitions.
func (pe *ParallelEngine) Parts() int { return len(pe.parts) }

// Window returns the lookahead window in cycles: the minimum scheduling
// distance CrossAt accepts.
func (pe *ParallelEngine) Window() Cycle { return pe.window }

// SetWorkers bounds the goroutines Run uses: n <= 1 selects the in-place
// serial epoch loop, anything larger runs one goroutine per partition.
// Results are identical either way; only wall-clock changes.
func (pe *ParallelEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	pe.workers = n
}

// Epochs returns how many barrier-to-barrier windows Run executed. The
// count is a pure function of the event trace (it does not depend on the
// worker count), so it is safe to fold into deterministic statistics.
func (pe *ParallelEngine) Epochs() uint64 { return pe.epochs }

// BarrierStalls counts partition-epochs in which a partition had no event
// inside the window and idled at the barrier — the deterministic
// load-imbalance signal (again independent of the worker count).
func (pe *ParallelEngine) BarrierStalls() uint64 { return pe.stalls }

// CrossAt enqueues fn for partition dst at absolute cycle when, sent from
// partition src. when must respect the lookahead window relative to src's
// clock; violating it means the configured link latency did not actually
// bound the message, i.e. the conservative synchronization would be wrong.
func (pe *ParallelEngine) CrossAt(src, dst int, when Cycle, fn func()) {
	pe.checkLookahead(src, when)
	lane := &pe.lanes[src*len(pe.parts)+dst]
	*lane = append(*lane, crossEvent{when: when, fn: fn})
}

// CrossAtFn is the allocation-free fast path of CrossAt, mirroring
// Engine.AtFn: a package-level Handler plus pointer-shaped arg avoids the
// per-message closure.
func (pe *ParallelEngine) CrossAtFn(src, dst int, when Cycle, h Handler, arg any, v uint64) {
	pe.checkLookahead(src, when)
	lane := &pe.lanes[src*len(pe.parts)+dst]
	*lane = append(*lane, crossEvent{when: when, h: h, arg: arg, v: v})
}

// CrossSchedule is the relative-delay form of CrossAt; delay must be at
// least the lookahead window.
func (pe *ParallelEngine) CrossSchedule(src, dst int, delay Cycle, fn func()) {
	pe.CrossAt(src, dst, pe.parts[src].now+delay, fn)
}

func (pe *ParallelEngine) checkLookahead(src int, when Cycle) {
	if when < pe.parts[src].now+pe.window {
		panic("sim: cross-partition event inside the lookahead window")
	}
}

// nextEpoch computes the next epoch's inclusive end, or ok=false when all
// demanded work (everywhere) has drained or a partition was stopped. Cross
// events merged at the previous barrier are already in their destination
// queues, so the demand sum sees in-flight link messages.
func (pe *ParallelEngine) nextEpoch() (end Cycle, ok bool) {
	demand := 0
	for _, p := range pe.parts {
		if p.stopped {
			return 0, false
		}
		demand += p.demand
	}
	if demand == 0 {
		return 0, false
	}
	var t Cycle
	have := false
	for _, p := range pe.parts {
		if c, ok := p.NextEventTime(); ok && (!have || c < t) {
			t, have = c, true
		}
	}
	if !have {
		return 0, false
	}
	return t + pe.window - 1, true
}

// countStalls records partitions with nothing to do before end. Purely a
// function of queue state at the barrier, so deterministic.
func (pe *ParallelEngine) countStalls(end Cycle) {
	for _, p := range pe.parts {
		if c, ok := p.NextEventTime(); !ok || c > end {
			pe.stalls++
		}
	}
}

// Run executes epochs until every partition's demanded work drains. With
// workers > 1 each epoch runs the partitions on their own goroutines; the
// mailbox merge happens at the barrier either way. It returns the largest
// partition clock.
func (pe *ParallelEngine) Run() Cycle {
	if pe.workers > 1 && len(pe.parts) > 1 {
		pe.runParallel()
	} else {
		for {
			end, ok := pe.nextEpoch()
			if !ok {
				break
			}
			pe.epochs++
			pe.countStalls(end)
			for _, p := range pe.parts {
				p.RunUntil(end)
			}
			pe.merge()
		}
	}
	var max Cycle
	for _, p := range pe.parts {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

// runParallel is the worker-goroutine epoch loop. Lane writes happen on
// worker goroutines during RunUntil and are read by the coordinator only
// after wg.Wait, so the channel send / WaitGroup pair carries all the
// happens-before edges the race detector needs.
func (pe *ParallelEngine) runParallel() {
	pe.start = make([]chan Cycle, len(pe.parts))
	for i := range pe.parts {
		ch := make(chan Cycle, 1)
		pe.start[i] = ch
		go func(p *Engine) {
			for end := range ch {
				p.RunUntil(end)
				pe.wg.Done()
			}
		}(pe.parts[i])
	}
	for {
		end, ok := pe.nextEpoch()
		if !ok {
			break
		}
		pe.epochs++
		pe.countStalls(end)
		pe.wg.Add(len(pe.start))
		for _, ch := range pe.start {
			ch <- end
		}
		pe.wg.Wait()
		pe.merge()
	}
	for _, ch := range pe.start {
		close(ch)
	}
	pe.start = nil
}

// merge drains every mailbox lane into its destination engine. For each
// destination the lanes are concatenated in source order and stable-sorted
// by delivery time (insertion sort: lanes are tiny and mostly sorted), so
// the destination sequence order is (when, src, send order) — independent
// of how the epoch was executed.
func (pe *ParallelEngine) merge() {
	n := len(pe.parts)
	for dst := 0; dst < n; dst++ {
		buf := pe.scratch[:0]
		for src := 0; src < n; src++ {
			li := src*n + dst
			buf = append(buf, pe.lanes[li]...)
			clear(pe.lanes[li]) // release arg/handler references
			pe.lanes[li] = pe.lanes[li][:0]
		}
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && buf[j].when < buf[j-1].when; j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
		p := pe.parts[dst]
		for i := range buf {
			ev := &buf[i]
			if ev.fn != nil {
				p.At(ev.when, ev.fn)
			} else {
				p.AtFn(ev.when, ev.h, ev.arg, ev.v)
			}
		}
		clear(buf)
		pe.scratch = buf[:0]
	}
}
