package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same cycle: FIFO by seq
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []Cycle{1, 2, 3, 10, 20} {
		e.Schedule(d, func() { fired++ })
	}
	e.RunUntil(5)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if fired != 5 || e.Now() != 20 {
		t.Fatalf("after Run: fired=%d now=%d", fired, e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt)", fired)
	}
	// A later Run resumes.
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after resume", fired)
	}
}

func TestAtPanicsOnPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

// Property: events always fire in non-decreasing time order, and equal-time
// events fire in scheduling order, for any set of delays.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		type firing struct {
			time Cycle
			idx  int
		}
		var fired []firing
		for i, d := range delays {
			i, d := i, Cycle(d)
			e.Schedule(d, func() { fired = append(fired, firing{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].time < fired[i-1].time {
				return false
			}
			if fired[i].time == fired[i-1].time && fired[i].idx < fired[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonEventsDoNotKeepRunAlive(t *testing.T) {
	e := NewEngine()
	daemonFires := 0
	var tick func()
	tick = func() {
		daemonFires++
		e.ScheduleDaemon(10, tick)
	}
	e.ScheduleDaemon(10, tick)
	e.Schedule(35, func() {})
	e.Run() // must terminate despite the perpetual daemon
	if e.Now() != 35 {
		t.Fatalf("Run ended at %d, want 35", e.Now())
	}
	if daemonFires != 3 {
		t.Fatalf("daemon fired %d times before the last demand event, want 3", daemonFires)
	}
	// RunUntil drives daemons past the demand horizon.
	e.RunUntil(100)
	if daemonFires < 9 {
		t.Fatalf("daemon fired %d times by cycle 100", daemonFires)
	}
}
