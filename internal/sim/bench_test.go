package sim

import "testing"

// benchDelays approximates the simulator's real delay mix: directory and
// LLC latencies (20), DRAM access legs (~40-130), link crossings (~150-160),
// zero-delay continuations, retry backoffs, and the occasional far-future
// event (scrub ticks) that lands in the overflow structure.
var benchDelays = [...]Cycle{0, 1, 20, 20, 43, 60, 10, 130, 150, 0, 16, 2500}

// BenchmarkEngineSchedule measures the enqueue path alone: events are
// scheduled in batches and drained off the timer.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; {
		k := batch
		if b.N-n < k {
			k = b.N - n
		}
		for i := 0; i < k; i++ {
			e.Schedule(benchDelays[i%len(benchDelays)], fn)
		}
		b.StopTimer()
		e.Run()
		b.StartTimer()
		n += k
	}
}

// BenchmarkEngineRun measures the full schedule+dispatch round trip per
// event, the cost every simulated transaction pays several times over.
func BenchmarkEngineRun(b *testing.B) {
	e := NewEngine()
	fired := 0
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; {
		k := batch
		if b.N-n < k {
			k = b.N - n
		}
		for i := 0; i < k; i++ {
			e.Schedule(benchDelays[i%len(benchDelays)], fn)
		}
		e.Run()
		n += k
	}
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// BenchmarkEngineRunChained measures dispatch under the simulator's actual
// shape: a fixed population of self-rescheduling actors (like cores issuing
// back-to-back operations), so the pending set stays small and hot.
func BenchmarkEngineRunChained(b *testing.B) {
	e := NewEngine()
	const actors = 16
	fired, budget := 0, b.N
	b.ReportAllocs()
	b.ResetTimer()
	var step func()
	step = func() {
		fired++
		if budget > 0 {
			budget--
			e.Schedule(benchDelays[fired%len(benchDelays)], step)
		}
	}
	for i := 0; i < actors && budget > 0; i++ {
		budget--
		e.Schedule(Cycle(i), step)
	}
	e.Run()
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}
