package sim

import "testing"

// The engine's zero-alloc contract: once bucket and free-list capacity has
// grown to the working set, scheduling and dispatching events allocates
// nothing. These tests pin that with testing.AllocsPerRun so a regression
// (say, reintroducing per-event boxing) fails loudly instead of quietly
// slowing every experiment.
//
// Each batch ends with an event exactly one ring revolution after its start,
// so every batch lands in the same calendar buckets and the single warm-up
// batch grows all the capacity the measured batches need. (A real simulation
// reaches the same steady state by warming buckets as time wraps the ring.)

func TestScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	batch := func() {
		for i := 0; i < 4096; i++ {
			e.Schedule(benchDelays[i%len(benchDelays)], fn)
		}
		e.Schedule(ringSize, fn) // align the next batch to the same buckets
		e.Run()
	}
	batch() // grow bucket/heap capacity to the working set
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("steady-state Schedule+Run allocated %.2f times per batch, want 0", allocs)
	}
}

// addHandler is the typed-path handler under test; package-level so that
// scheduling it is allocation-free.
func addHandler(arg any, v uint64) { *arg.(*uint64) += v }

func TestScheduleFnSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var total uint64
	batch := func() {
		for i := 0; i < 4096; i++ {
			e.ScheduleFn(benchDelays[i%len(benchDelays)], addHandler, &total, 1)
		}
		e.ScheduleFn(ringSize, addHandler, &total, 0)
		e.Run()
	}
	batch()
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("steady-state ScheduleFn+Run allocated %.2f times per batch, want 0", allocs)
	}
	if total == 0 {
		t.Fatal("handler never ran")
	}
}

// TestDispatchProbeDisabledAllocs pins the telemetry contract on the hot
// path: with OnDispatch nil (the default — no tracer attached) the dispatch
// loop pays one predictable nil check and allocates nothing. A regression
// here would tax every untraced experiment for an observability feature it
// did not ask for.
func TestDispatchProbeDisabledAllocs(t *testing.T) {
	e := NewEngine()
	if e.OnDispatch != nil {
		t.Fatal("fresh engine has a dispatch probe attached")
	}
	var total uint64
	batch := func() {
		for i := 0; i < 4096; i++ {
			e.ScheduleFn(benchDelays[i%len(benchDelays)], addHandler, &total, 1)
		}
		e.ScheduleFn(ringSize, addHandler, &total, 0)
		e.Run()
	}
	batch()
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("dispatch with nil probe allocated %.2f times per batch, want 0", allocs)
	}
}

func TestDaemonScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var ticks uint64
	batch := func() {
		// A daemon heartbeat plus the demand events that keep Run alive.
		e.ScheduleDaemonFn(1, addHandler, &ticks, 1)
		for i := 0; i < 256; i++ {
			e.ScheduleFn(benchDelays[i%len(benchDelays)], addHandler, &ticks, 0)
		}
		e.ScheduleFn(ringSize, addHandler, &ticks, 0)
		e.Run()
	}
	batch()
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("steady-state daemon scheduling allocated %.2f times per batch, want 0", allocs)
	}
}
