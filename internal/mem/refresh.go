package mem

import (
	"dve/internal/sim"
	"dve/internal/topology"
)

// Refresh and row-hammer modeling. DDR4 devices must receive a refresh
// command every tREFI on average, and each refresh blocks the rank for
// tRFC (Section II: "more frequent memory refresh ... could cause
// performance degradation"). The controller also tracks per-row activation
// counts within a refresh window to flag row-hammer risk (Kim et al., the
// paper's [38]); Dvé mitigates the hammer by routing reads to the replica
// of a hammered row, which the replica directory already does for free.

// Refresh timing for 8Gb DDR4 at normal temperature. A full retention
// period (tREFW, 64 ms) spans 8192 tREFI ticks; each row is refreshed once
// per tREFW, which is therefore the row-hammer accumulation window.
const (
	tREFIns      = 7800.0
	tRFCns       = 350.0
	ticksPerREFW = 8192
)

// RowHammerThreshold is the default per-row activation count within one
// refresh window beyond which the row is flagged (a deliberately low,
// simulation-friendly analogue of the ~50K real-device threshold).
// topology.Config.RowHammerThreshold overrides it per run.
const RowHammerThreshold = 2048

// hammerThreshold returns the active threshold: the config override, or the
// package default.
func (mc *Controller) hammerThreshold() uint32 {
	if t := mc.cfg.RowHammerThreshold; t > 0 {
		return t
	}
	return RowHammerThreshold
}

// EnableRefresh starts periodic refresh on every channel: every tREFI the
// controller stalls all banks of the channel for tRFC and clears the
// row-hammer window counters.
func (mc *Controller) EnableRefresh() {
	if mc.refreshOn {
		return
	}
	mc.refreshOn = true
	// Pre-size each channel's hammer map for the distinct rows the footprint
	// spans on this socket (activations cluster on touched rows, so this is
	// the steady-state population).
	rowHint := 0
	if h := mc.cfg.FootprintHintLines; h > 0 {
		rowHint = h * mc.cfg.LineSizeBytes / mc.cfg.RowBufferBytes / mc.cfg.Sockets
	}
	mc.hammer = make([]map[uint64]uint32, len(mc.channels))
	for i := range mc.hammer {
		mc.hammer[i] = make(map[uint64]uint32, rowHint)
	}
	interval := sim.Cycle(mc.cfg.Cycles(tREFIns))
	blocked := sim.Cycle(mc.cfg.Cycles(tRFCns))
	var tick func()
	tick = func() {
		for ci := range mc.channels {
			ch := mc.channels[ci]
			from := mc.eng.Now()
			until := from + blocked
			for b := range ch.banks {
				if ch.banks[b].nextFree < until {
					ch.banks[b].nextFree = until
				}
				// Refresh closes the row buffers.
				ch.banks[b].hasOpen = false
			}
			if ch.bus < until {
				ch.bus = until
			}
			mc.Refreshes++
		}
		// A full retention window ends: hammer counters restart (each row
		// has been refreshed once). clear keeps the maps' capacity, so a
		// steady-state window allocates nothing.
		mc.refreshTicks++
		if mc.refreshTicks%ticksPerREFW == 0 {
			for ci := range mc.hammer {
				clear(mc.hammer[ci])
			}
		}
		mc.eng.ScheduleDaemon(interval, tick)
	}
	mc.eng.ScheduleDaemon(interval, tick)
}

// noteActivate records a row activation for row-hammer tracking. It reports
// whether the row has crossed the hammer threshold in this refresh window.
// The exact-equality crossing fires OnHammer at most once per row per
// refresh window: further activations keep counting but do not re-fire, and
// the window clear in the refresh tick re-arms the row.
func (mc *Controller) noteActivate(ch int, co topology.DRAMCoord) bool {
	if !mc.refreshOn || mc.hammer == nil {
		return false
	}
	key := uint64(co.Bank)<<48 | co.Row
	mc.hammer[ch][key]++
	if mc.hammer[ch][key] == mc.hammerThreshold() {
		mc.HammeredRows++
		if mc.OnHammer != nil {
			co.Channel = ch
			mc.OnHammer(co)
		}
		return true
	}
	return mc.hammer[ch][key] > mc.hammerThreshold()
}

// ActivationsInWindow returns a row's activation count so far in the
// current refresh window (0 when refresh tracking is off). Campaign tests
// use it to audit where aggressor activations actually landed.
func (mc *Controller) ActivationsInWindow(co topology.DRAMCoord) uint32 {
	if !mc.refreshOn || mc.hammer == nil {
		return 0
	}
	return mc.hammer[co.Channel][uint64(co.Bank)<<48|co.Row]
}

// HammerRisk reports whether an address's row is currently beyond the
// hammer threshold; Dvé-aware callers can divert such reads to the replica.
func (mc *Controller) HammerRisk(a topology.Addr) bool {
	if !mc.refreshOn || mc.hammer == nil {
		return false
	}
	co := mc.amap.Decode(a)
	key := uint64(co.Bank)<<48 | co.Row
	return mc.hammer[co.Channel][key] >= mc.hammerThreshold()
}
