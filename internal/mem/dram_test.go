package mem

import (
	"testing"

	"dve/internal/sim"
	"dve/internal/topology"
)

func setup(p topology.Protocol) (*sim.Engine, *Controller, *topology.Config) {
	cfg := topology.Default(p)
	eng := sim.NewEngine()
	amap := topology.NewAddrMap(&cfg)
	mc := NewController(eng, &cfg, amap, 0)
	return eng, mc, &cfg
}

func TestReadTimingClosedThenHit(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	tCL := sim.Cycle(cfg.Cycles(cfg.TCLns))
	tRCD := sim.Cycle(cfg.Cycles(cfg.TRCDns))

	var first, second sim.Cycle
	mc.Read(0, func(bool) { first = eng.Now() })
	eng.Run()
	if first != tRCD+tCL+burstCycles {
		t.Fatalf("closed-bank read at %d, want %d", first, tRCD+tCL+burstCycles)
	}
	// Same row again: row-buffer hit, only tCL (+burst), measured from now.
	base := eng.Now()
	mc.Read(64, func(bool) { second = eng.Now() })
	eng.Run()
	if second-base != tCL+burstCycles {
		t.Fatalf("row hit took %d, want %d", second-base, tCL+burstCycles)
	}
	if mc.RowHits != 1 || mc.RowMisses != 1 {
		t.Fatalf("rowHits=%d rowMisses=%d, want 1/1", mc.RowHits, mc.RowMisses)
	}
}

func TestRowConflictCostsPrecharge(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	// Two addresses in the same bank, different rows: second access pays
	// tRP + tRCD + tCL. Global stride = local row stride x sockets (the
	// socket-interleave bit is stripped before bank decode).
	rowBytes := uint64(cfg.RowBufferBytes) * uint64(cfg.BanksPerRank) * uint64(cfg.Sockets)
	a := topology.Addr(0)
	b := topology.Addr(rowBytes) // same bank 0, next row
	ca, cb := topology.NewAddrMap(cfg).Decode(a), topology.NewAddrMap(cfg).Decode(b)
	if ca.Bank != cb.Bank || ca.Row == cb.Row {
		t.Fatalf("test addresses wrong: %+v vs %+v", ca, cb)
	}
	mc.Read(a, func(bool) {})
	eng.Run()
	base := eng.Now()
	var done sim.Cycle
	mc.Read(b, func(bool) { done = eng.Now() })
	eng.Run()
	want := sim.Cycle(cfg.Cycles(cfg.TRPns)+cfg.Cycles(cfg.TRCDns)+cfg.Cycles(cfg.TCLns)) + burstCycles
	if done-base != want {
		t.Fatalf("conflict read took %d, want %d", done-base, want)
	}
}

func TestBankSerialization(t *testing.T) {
	eng, mc, _ := setup(topology.ProtoBaseline)
	var t1, t2 sim.Cycle
	// Same bank, same row: second read must wait for the first.
	mc.Read(0, func(bool) { t1 = eng.Now() })
	mc.Read(64, func(bool) { t2 = eng.Now() })
	eng.Run()
	if t2 <= t1 {
		t.Fatalf("same-bank reads did not serialize: %d then %d", t1, t2)
	}
}

func TestBankParallelismAcrossBanks(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	var t1, t2 sim.Cycle
	// Different banks: overlap except for the shared data bus.
	mc.Read(0, func(bool) { t1 = eng.Now() })
	mc.Read(topology.Addr(cfg.RowBufferBytes*cfg.Sockets), func(bool) { t2 = eng.Now() })
	eng.Run()
	if t2-t1 != burstCycles {
		t.Fatalf("bank-parallel reads gap = %d, want %d (bus only)", t2-t1, burstCycles)
	}
}

func TestTwoChannelsParallel(t *testing.T) {
	eng, mc, _ := setup(topology.ProtoDeny) // 2 channels
	var t1, t2 sim.Cycle
	// Adjacent lines stripe across channels: full overlap.
	mc.Read(0, func(bool) { t1 = eng.Now() })
	mc.Read(64, func(bool) { t2 = eng.Now() })
	eng.Run()
	if t1 != t2 {
		t.Fatalf("cross-channel reads should fully overlap: %d vs %d", t1, t2)
	}
}

func TestMirrorWriteBothChannels(t *testing.T) {
	eng, mc, _ := setup(topology.ProtoIntelMirror)
	mc.Mirror = true
	mc.Write(0, func() {})
	eng.Run()
	if mc.Writes != 2 {
		t.Fatalf("mirror write hit %d channels, want 2", mc.Writes)
	}
}

func TestMirrorReadLoadBalances(t *testing.T) {
	eng, mc, _ := setup(topology.ProtoIntelMirror)
	mc.Mirror = true
	// Many reads to the same bank: with load balancing both channels serve.
	for i := 0; i < 8; i++ {
		mc.Read(0, func(bool) {})
	}
	eng.Run()
	if mc.channels[0].banks[0].nextFree == 0 || mc.channels[1].banks[0].nextFree == 0 {
		t.Fatal("mirror reads did not use both channels")
	}
}

func TestMirrorReadsFasterThanSingleChannel(t *testing.T) {
	// The bandwidth benefit that Intel-mirroring++ gets: N same-bank reads
	// complete sooner with two mirrored channels than with one.
	run := func(mirror bool) sim.Cycle {
		eng, mc, _ := setup(topology.ProtoIntelMirror)
		mc.Mirror = mirror
		var last sim.Cycle
		for i := 0; i < 16; i++ {
			mc.Read(0, func(bool) { last = eng.Now() })
		}
		eng.Run()
		return last
	}
	if m, s := run(true), run(false); m >= s {
		t.Fatalf("mirrored reads (%d) not faster than single-channel (%d)", m, s)
	}
}

func TestFaultFn(t *testing.T) {
	eng, mc, _ := setup(topology.ProtoBaseline)
	mc.FaultFn = func(a topology.Addr) bool { return a == 128 }
	results := map[topology.Addr]bool{}
	for _, a := range []topology.Addr{0, 128} {
		a := a
		mc.Read(a, func(failed bool) { results[a] = failed })
	}
	eng.Run()
	if results[0] || !results[128] {
		t.Fatalf("fault outcomes wrong: %v", results)
	}
	if mc.FailedReads != 1 {
		t.Fatalf("FailedReads = %d, want 1", mc.FailedReads)
	}
}

func TestResetStats(t *testing.T) {
	eng, mc, _ := setup(topology.ProtoBaseline)
	mc.Read(0, func(bool) {})
	mc.Write(64, func() {})
	eng.Run()
	mc.ResetStats()
	if mc.Reads != 0 || mc.Writes != 0 || mc.RowHits != 0 || mc.RowMisses != 0 || mc.BusyCycles != 0 {
		t.Fatal("ResetStats left nonzero counters")
	}
}

func TestRefreshBlocksBanks(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	mc.EnableRefresh()
	// Run past one refresh interval; a read issued right at the refresh
	// boundary must wait out tRFC.
	eng.RunUntil(sim.Cycle(cfg.Cycles(tREFIns)) + 1)
	if mc.Refreshes == 0 {
		t.Fatal("no refresh fired within tREFI")
	}
	var done sim.Cycle
	base := eng.Now()
	mc.Read(0, func(bool) { done = eng.Now() })
	eng.Run()
	minLat := sim.Cycle(cfg.Cycles(cfg.TRCDns)+cfg.Cycles(cfg.TCLns)) + burstCycles
	if done-base < minLat {
		t.Fatalf("read during refresh took %d, want >= %d", done-base, minLat)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	mc.EnableRefresh()
	mc.Read(0, func(bool) {})
	eng.Run()
	eng.RunUntil(eng.Now() + sim.Cycle(cfg.Cycles(tREFIns)) + sim.Cycle(cfg.Cycles(tRFCns)) + 10)
	mc.Read(64, func(bool) {}) // same row, but refresh closed it
	eng.Run()
	if mc.RowMisses < 2 {
		t.Fatalf("row survived refresh: misses=%d", mc.RowMisses)
	}
}

func TestRowHammerDetection(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	mc.EnableRefresh()
	// Alternate two rows of the same bank so every access activates.
	rowStride := topology.Addr(uint64(cfg.RowBufferBytes) * uint64(cfg.BanksPerRank) *
		uint64(cfg.ChannelsPerSkt) * uint64(cfg.Sockets))
	for i := 0; i < 2*RowHammerThreshold+10; i++ {
		a := topology.Addr(0)
		if i%2 == 1 {
			a = rowStride
		}
		mc.Read(a, func(bool) {})
	}
	eng.Run()
	if mc.HammeredRows == 0 {
		t.Fatal("hammered row not flagged")
	}
	if !mc.HammerRisk(0) && !mc.HammerRisk(rowStride) {
		t.Fatal("HammerRisk false for a hammered row")
	}
	if mc.HammerRisk(topology.Addr(2 * uint64(rowStride))) {
		t.Fatal("HammerRisk true for an untouched row")
	}
}

func TestHammerWindowResetsOnRefresh(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	mc.EnableRefresh()
	rowStride := topology.Addr(uint64(cfg.RowBufferBytes) * uint64(cfg.BanksPerRank) *
		uint64(cfg.ChannelsPerSkt) * uint64(cfg.Sockets))
	for i := 0; i < 2*RowHammerThreshold+10; i++ {
		a := topology.Addr(0)
		if i%2 == 1 {
			a = rowStride
		}
		mc.Read(a, func(bool) {})
	}
	eng.Run()
	// After a full retention window (tREFW) the counters restart.
	eng.RunUntil(eng.Now() + sim.Cycle(cfg.Cycles(tREFIns))*ticksPerREFW + 10)
	if mc.HammerRisk(0) {
		t.Fatal("hammer window not cleared by refresh")
	}
}
