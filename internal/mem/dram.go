// Package mem models the per-socket DRAM subsystem: memory controllers,
// channels, banks with open-page row buffers, and the DDR4-2400 timing from
// Table II. It supports the Intel-mirroring++ mode (replica on a second
// channel of the same controller with actively load-balanced reads) and
// exposes fault hooks so injected component failures surface as failed reads
// that Dvé recovers through the replica.
package mem

import (
	"dve/internal/sim"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// burstCycles is the data-bus occupancy of one 64-byte cache line transfer
// on a DDR4-2400 x64 channel (~3.3 ns) expressed in 3 GHz core cycles.
const burstCycles = 10

type bank struct {
	openRow  uint64
	hasOpen  bool
	nextFree sim.Cycle
}

type channel struct {
	banks []bank
	bus   sim.Cycle // earliest cycle the data bus is free
}

// Controller is one socket's memory controller.
type Controller struct {
	eng    *sim.Engine
	cfg    *topology.Config
	amap   *topology.AddrMap
	Socket int

	channels []*channel

	// Mirror enables Intel-mirroring++: channel 1 mirrors channel 0; reads
	// load-balance between the two, writes go to both.
	Mirror    bool
	mirrorRot int

	// FaultFn, when set, is consulted on every read: it returns true when
	// the local ECC check fails for the address (detected error). The
	// directory then diverts the request to the replica (Section V-B2).
	FaultFn func(a topology.Addr) bool

	// Timing derived from config (cycles).
	tCL, tRCD, tRP sim.Cycle

	// Refresh / row-hammer state (see refresh.go).
	refreshOn    bool
	refreshTicks uint64
	hammer       []map[uint64]uint32

	// OnHammer, when set, fires the first time a row's activation count
	// crosses the hammer threshold within a refresh window (once per row
	// per window; the window clear re-arms it). The coordinate's Channel is
	// the channel that actually served the activation. Adversarial
	// campaigns subscribe here to inject bitflips into adjacent rows.
	OnHammer func(co topology.DRAMCoord)

	// dead marks a killed controller (socket-level RAS event): every read
	// fails its ECC check and writes are acknowledged but dropped.
	dead bool

	// Trace, when non-nil, records each access as a complete interval on
	// the socket's mem track. Intervals are stamped at issue time (ts =
	// now, dur = completion - now) rather than at bank start, because bank
	// start times regress across banks and would break per-track
	// timestamp monotonicity.
	Trace *telemetry.Tracer

	// Stats.
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	FailedReads        uint64
	BusyCycles         uint64
	Refreshes          uint64
	HammeredRows       uint64
	DeadReads          uint64
	DroppedWrites      uint64
}

// Kill marks the controller dead: subsequent reads fail their local ECC
// check unconditionally and writes complete without landing, modeling the
// loss of a whole memory controller (the largest blast radius of Fig 2).
func (mc *Controller) Kill() { mc.dead = true }

// Dead reports whether the controller has been killed.
func (mc *Controller) Dead() bool { return mc.dead }

// NewController builds the memory controller for a socket.
func NewController(eng *sim.Engine, cfg *topology.Config, amap *topology.AddrMap, socket int) *Controller {
	mc := &Controller{
		eng:    eng,
		cfg:    cfg,
		amap:   amap,
		Socket: socket,
		tCL:    sim.Cycle(cfg.Cycles(cfg.TCLns)),
		tRCD:   sim.Cycle(cfg.Cycles(cfg.TRCDns)),
		tRP:    sim.Cycle(cfg.Cycles(cfg.TRPns)),
	}
	for c := 0; c < cfg.ChannelsPerSkt; c++ {
		ch := &channel{banks: make([]bank, cfg.BanksPerRank)}
		mc.channels = append(mc.channels, ch)
	}
	return mc
}

// access performs the timing computation for one access on a channel and
// returns its completion cycle.
func (mc *Controller) access(chIdx int, co topology.DRAMCoord, isWrite bool) sim.Cycle {
	ch := mc.channels[chIdx]
	bk := &ch.banks[co.Bank]
	now := mc.eng.Now()

	start := now
	if bk.nextFree > start {
		start = bk.nextFree
	}

	var lat sim.Cycle
	if bk.hasOpen && bk.openRow == co.Row {
		lat = mc.tCL // row-buffer hit
		mc.RowHits++
	} else {
		if bk.hasOpen {
			lat = mc.tRP + mc.tRCD + mc.tCL // conflict: precharge + activate
		} else {
			lat = mc.tRCD + mc.tCL // closed: activate
		}
		mc.RowMisses++
		bk.openRow = co.Row
		bk.hasOpen = true
		mc.noteActivate(chIdx, co)
	}

	dataReady := start + lat
	// Serialize on the channel data bus.
	if ch.bus > dataReady {
		dataReady = ch.bus
	}
	done := dataReady + burstCycles
	ch.bus = done
	bk.nextFree = start + lat + burstCycles

	mc.BusyCycles += uint64(done - now)
	if isWrite {
		mc.Writes++
	} else {
		mc.Reads++
	}
	return done
}

// readReply adapts a read completion onto the engine's typed fast path:
// arg is the caller's func(failed bool) and v != 0 means the local ECC
// check failed. Func values are pointer-shaped, so scheduling this way
// allocates nothing per read.
func readReply(arg any, v uint64) { arg.(func(bool))(v != 0) }

// Read issues a DRAM read for the address and invokes fn when data (and its
// local ECC check) would be available. failed=true means the local ECC
// check detected an error it cannot correct, so the caller must recover via
// the replica.
func (mc *Controller) Read(a topology.Addr, fn func(failed bool)) {
	if mc.dead {
		// A dead controller answers with an error after the CAS latency; no
		// bank or bus is occupied.
		mc.DeadReads++
		mc.FailedReads++
		if mc.Trace != nil {
			mc.Trace.Complete(telemetry.CompMem, mc.Socket, "dram-read-dead",
				"addr", uint64(a), mc.eng.Now(), mc.tCL)
		}
		mc.eng.ScheduleFn(mc.tCL, readReply, fn, 1)
		return
	}
	co := mc.amap.Decode(a)
	ch := co.Channel
	if mc.Mirror {
		// Actively load-balance reads between the primary and mirror
		// channels — the "improved (hypothetical) version of Intel's memory
		// mirroring scheme" from Section VII.
		ch = mc.pickMirrorChannel(co)
	}
	done := mc.access(ch, co, false)
	failed := uint64(0)
	if mc.FaultFn != nil && mc.FaultFn(a) {
		failed = 1
		mc.FailedReads++
	}
	if mc.Trace != nil {
		now := mc.eng.Now()
		mc.Trace.Complete(telemetry.CompMem, mc.Socket, "dram-read",
			"addr", uint64(a), now, done-now)
	}
	mc.eng.AtFn(done, readReply, fn, failed)
}

// pickMirrorChannel chooses the mirror copy whose bank frees earliest.
func (mc *Controller) pickMirrorChannel(co topology.DRAMCoord) int {
	if len(mc.channels) < 2 {
		return 0
	}
	b0 := mc.channels[0].banks[co.Bank].nextFree
	b1 := mc.channels[1].banks[co.Bank].nextFree
	switch {
	case b0 < b1:
		return 0
	case b1 < b0:
		return 1
	default:
		mc.mirrorRot ^= 1
		return mc.mirrorRot
	}
}

// Write issues a DRAM write and invokes fn at completion. In mirror mode the
// write is performed on both channels and completes when both finish.
func (mc *Controller) Write(a topology.Addr, fn func()) {
	if mc.dead {
		mc.DroppedWrites++
		if mc.Trace != nil {
			mc.Trace.Complete(telemetry.CompMem, mc.Socket, "dram-write-dropped",
				"addr", uint64(a), mc.eng.Now(), mc.tCL)
		}
		mc.eng.Schedule(mc.tCL, fn)
		return
	}
	co := mc.amap.Decode(a)
	if mc.Mirror && len(mc.channels) >= 2 {
		d0 := mc.access(0, co, true)
		d1 := mc.access(1, co, true)
		done := d0
		if d1 > done {
			done = d1
		}
		if mc.Trace != nil {
			now := mc.eng.Now()
			mc.Trace.Complete(telemetry.CompMem, mc.Socket, "dram-write",
				"addr", uint64(a), now, done-now)
		}
		mc.eng.At(done, fn)
		return
	}
	done := mc.access(co.Channel, co, true)
	if mc.Trace != nil {
		now := mc.eng.Now()
		mc.Trace.Complete(telemetry.CompMem, mc.Socket, "dram-write",
			"addr", uint64(a), now, done-now)
	}
	mc.eng.At(done, fn)
}

// ResetStats zeroes the counters (bank state is preserved).
func (mc *Controller) ResetStats() {
	mc.Reads, mc.Writes = 0, 0
	mc.RowHits, mc.RowMisses = 0, 0
	mc.FailedReads, mc.BusyCycles = 0, 0
}
