package mem

import (
	"testing"

	"dve/internal/sim"
	"dve/internal/topology"
)

// alternate issues n reads alternating between rows 0 and 1 of bank 0, so
// every access is a row-buffer conflict and therefore an activation.
func alternate(mc *Controller, cfg *topology.Config, n int) {
	rowStride := topology.Addr(uint64(cfg.RowBufferBytes) * uint64(cfg.BanksPerRank) *
		uint64(cfg.ChannelsPerSkt) * uint64(cfg.Sockets))
	for i := 0; i < n; i++ {
		a := topology.Addr(0)
		if i%2 == 1 {
			a = rowStride
		}
		mc.Read(a, func(bool) {})
	}
}

func refreshWindow(cfg *topology.Config) sim.Cycle {
	return sim.Cycle(cfg.Cycles(tREFIns)) * ticksPerREFW
}

// TestHammerFiresOncePerWindow: activations far beyond the threshold within
// one refresh window fire OnHammer exactly once per row — the crossing is an
// edge, not a level.
func TestHammerFiresOncePerWindow(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	cfg.RowHammerThreshold = 8
	mc.EnableRefresh()
	fired := map[uint64]int{}
	mc.OnHammer = func(co topology.DRAMCoord) { fired[co.Row]++ }
	alternate(mc, cfg, 10*8)
	eng.Run()
	if len(fired) != 2 {
		t.Fatalf("OnHammer saw %d rows, want both alternating rows", len(fired))
	}
	for row, n := range fired {
		if n != 1 {
			t.Fatalf("row %d fired OnHammer %d times in one window, want 1", row, n)
		}
	}
	if mc.HammeredRows != 2 {
		t.Fatalf("HammeredRows=%d, want 2", mc.HammeredRows)
	}
}

// TestHammerWindowClearRearms: after a full retention window the counters
// restart, so a row hammered past the threshold again fires OnHammer again
// — one firing per window, not one per run.
func TestHammerWindowClearRearms(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	cfg.RowHammerThreshold = 8
	mc.EnableRefresh()
	fired := 0
	mc.OnHammer = func(topology.DRAMCoord) { fired++ }

	alternate(mc, cfg, 2*8+2)
	eng.Run()
	if fired != 2 {
		t.Fatalf("first window fired %d, want 2", fired)
	}
	if mc.ActivationsInWindow(topology.DRAMCoord{}) == 0 {
		t.Fatal("activation count invisible before the window clears")
	}

	eng.RunUntil(eng.Now() + refreshWindow(cfg) + 10)
	if got := mc.ActivationsInWindow(topology.DRAMCoord{}); got != 0 {
		t.Fatalf("window clear left %d activations on row 0", got)
	}
	alternate(mc, cfg, 2*8+2)
	eng.Run()
	if fired != 4 {
		t.Fatalf("re-armed window fired %d total, want 4", fired)
	}
}

// TestHammerNoCarryAcrossWindowBoundary: activations below the threshold do
// not accumulate across a refresh-window clear. A row parked one activation
// short re-starts from zero in the next window, so the same sub-threshold
// dose again stays silent.
func TestHammerNoCarryAcrossWindowBoundary(t *testing.T) {
	eng, mc, cfg := setup(topology.ProtoBaseline)
	cfg.RowHammerThreshold = 8
	mc.EnableRefresh()
	fired := 0
	mc.OnHammer = func(topology.DRAMCoord) { fired++ }

	// 7 activations per row: one short of the threshold.
	alternate(mc, cfg, 2*7)
	eng.Run()
	if fired != 0 {
		t.Fatalf("sub-threshold dose fired OnHammer %d times", fired)
	}
	eng.RunUntil(eng.Now() + refreshWindow(cfg) + 10)
	// Another sub-threshold dose in the fresh window. If the boundary leaked
	// the old count, 7+7 = 14 >= 8 would fire.
	alternate(mc, cfg, 2*7)
	eng.Run()
	if fired != 0 {
		t.Fatalf("activation count leaked across window boundary: fired=%d", fired)
	}
	// The dose genuinely arms the row: one more activation per row crosses.
	alternate(mc, cfg, 2)
	eng.Run()
	if fired != 2 {
		t.Fatalf("threshold dose in one window fired %d, want 2", fired)
	}
}

// TestHammerCrossingsDeterministic: the same access sequence replayed on a
// fresh controller reproduces the same crossing set at the same cycles —
// the determinism the campaign's flip injection relies on.
func TestHammerCrossingsDeterministic(t *testing.T) {
	type firing struct {
		row uint64
		at  sim.Cycle
	}
	run := func() []firing {
		eng, mc, cfg := setup(topology.ProtoBaseline)
		cfg.RowHammerThreshold = 8
		mc.EnableRefresh()
		var fired []firing
		mc.OnHammer = func(co topology.DRAMCoord) {
			fired = append(fired, firing{co.Row, eng.Now()})
		}
		alternate(mc, cfg, 4*8)
		eng.Run()
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no crossings fired")
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
