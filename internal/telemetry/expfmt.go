package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text exposition (format 0.0.4)
// document — the contract /metrics/prom promises scrapers. CI pipes a live
// scrape of the chaos fabric through it so a malformed metric line (bad
// name, broken label quoting, unparsable value, interleaved families,
// duplicate TYPE) fails the build instead of silently breaking dashboards.
//
// Checked per line:
//   - "# HELP <name> <text>" and "# TYPE <name> <type>" comment syntax,
//     with TYPE one of counter|gauge|histogram|summary|untyped;
//   - sample lines "<name>[{label="value",...}] <value> [<timestamp>]"
//     with a valid metric name, properly quoted/escaped label values, and
//     a float-parsable value (+Inf/-Inf/NaN allowed);
//   - TYPE/HELP declared at most once per family, before its samples;
//   - a family's lines are contiguous (no interleaving — Prometheus
//     ingestion requires grouped families).
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	seenFamily := make(map[string]bool) // family -> closed (another family started since)
	typed := make(map[string]bool)
	helped := make(map[string]bool)
	current := ""
	lineNo := 0

	enter := func(family string) error {
		if family == current {
			return nil
		}
		if seenFamily[family] {
			return fmt.Errorf("family %q interleaved with other families", family)
		}
		if current != "" {
			seenFamily[current] = true
		}
		current = family
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseExpComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if kind == "" {
				continue // plain comment
			}
			if err := enter(name); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "HELP":
				if helped[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helped[name] = true
			case "TYPE":
				if typed[name] {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q for %q", lineNo, rest, name)
				}
				typed[name] = true
			}
			continue
		}
		name, err := parseExpSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if err := enter(expFamily(name)); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	if lineNo == 0 {
		return fmt.Errorf("empty exposition document")
	}
	return nil
}

// expFamily strips histogram/summary series suffixes so _bucket/_sum/_count
// samples group under their declared family.
func expFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// parseExpComment parses a "#" line. kind is "HELP", "TYPE" or "" for a
// plain comment.
func parseExpComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	if !strings.HasPrefix(body, " ") {
		return "", "", "", nil // "#foo" is a plain comment
	}
	fields := strings.SplitN(strings.TrimPrefix(body, " "), " ", 3)
	if fields[0] != "HELP" && fields[0] != "TYPE" {
		return "", "", "", nil
	}
	if len(fields) < 2 || fields[1] == "" {
		return "", "", "", fmt.Errorf("%s comment missing metric name", fields[0])
	}
	if !validName(fields[1]) {
		return "", "", "", fmt.Errorf("%s comment has invalid metric name %q", fields[0], fields[1])
	}
	if len(fields) == 3 {
		rest = fields[2]
	}
	if fields[0] == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("TYPE comment for %q missing type", fields[1])
	}
	return fields[0], fields[1], rest, nil
}

// parseExpSample parses one sample line and returns the metric name.
func parseExpSample(line string) (string, error) {
	i := 0
	for i < len(line) && (line[i] == '_' ||
		line[i] >= 'a' && line[i] <= 'z' || line[i] >= 'A' && line[i] <= 'Z' ||
		(i > 0 && line[i] >= '0' && line[i] <= '9') || line[i] == ':') {
		i++
	}
	name := line[:i]
	if !validExpName(name) {
		return "", fmt.Errorf("invalid metric name at %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return "", fmt.Errorf("metric %q: %v", name, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", fmt.Errorf("metric %q: want value [timestamp], got %q", name, rest)
	}
	if !validExpValue(fields[0]) {
		return "", fmt.Errorf("metric %q: unparsable value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("metric %q: unparsable timestamp %q", name, fields[1])
		}
	}
	return name, nil
}

// validExpName is validName plus the colon namespace separator the
// exposition format allows (recording rules).
func validExpName(name string) bool {
	if name == "" {
		return false
	}
	stripped := strings.ReplaceAll(name, ":", "_")
	return validName(stripped)
}

func validExpValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN", "nan":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// scanLabels consumes a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		// Allow a trailing comma before '}' and an empty label set.
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && (s[i] == '_' ||
			s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z' ||
			(i > start && s[i] >= '0' && s[i] <= '9')) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("bad label name in %q", s)
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label missing '=' in %q", s)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c in %q", s[i+1], s)
				}
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // past closing quote
	}
}
