// Package telemetry is the simulator's zero-cost-when-disabled
// instrumentation layer. It provides three pillars:
//
//   - transaction spans: typed probe points at the protocol hot spots
//     (LLC miss -> directory transaction -> grant -> fill -> release, plus
//     scrub/repair and RAS escalation steps), emitted as Chrome trace-event
//     JSON that opens directly in Perfetto with simulated time as the
//     timeline (1 cycle = 1 µs) and one track per socket and component;
//   - a metrics registry of named counters/gauges/histograms over
//     stats.Counters, snapshotted into result-cache envelopes and served by
//     dveserve in Prometheus text exposition format (registry.go);
//   - a flight recorder: a fixed-size ring of recent protocol events per
//     socket, dumped in deterministic order when a coherence invariant
//     fails or a campaign kills a socket (flight.go).
//
// # The no-perturbation rule
//
// A Tracer only ever *observes*: it never schedules events, never mutates
// protocol or queue state, and derives every timestamp from sim.Engine
// cycles. A run with tracing enabled is therefore byte-identical (same
// event order, same statistics) to the same run with tracing disabled —
// internal/dve pins this with a run-twice test. The only sanctioned
// wall-clock access anywhere near the simulation is stats.Stopwatch; the
// determinism analyzer (dvelint) enforces that for this package too.
//
// # Zero cost when disabled
//
// Every probe site guards on a nil Tracer pointer: disabled instrumentation
// is a single predictable branch and 0 allocs/op on the hot paths
// (sim.Engine dispatch, cache.Sequencer, noc.Link.SendFn, mem reads) —
// pinned by AllocsPerRun tests in those packages.
package telemetry

import (
	"dve/internal/sim"
)

// Component identifies the simulated unit a probe fires in; together with
// the socket it selects the trace track.
type Component uint8

const (
	CompEngine     Component = iota // event-core dispatch (queue-depth counter)
	CompLLC                         // last-level cache miss path
	CompHomeDir                     // home directory transactions
	CompReplicaDir                  // Dvé replica directory transactions
	CompMem                         // DRAM controller accesses
	CompLink                        // inter-socket link messages
	CompScrub                       // patrol scrubber
	CompRAS                         // recovery escalation ladder events
	compCount
)

// compNames is indexed by Component (array lookup, not a switch, so there is
// no enum-coverage hole for the statecover analyzer to guard).
var compNames = [compCount]string{
	"engine", "llc", "homedir", "replicadir", "mem", "link", "scrub", "ras",
}

// String returns the component's track name.
func (c Component) String() string {
	if int(c) < len(compNames) {
		return compNames[c]
	}
	return "unknown"
}

// SpanID identifies an open span returned by Begin. The zero value is a
// dropped span: End(0) is a no-op, so probe sites never need to branch on
// whether Begin succeeded.
type SpanID uint64

// Options configures a Tracer. The zero value records nothing (every sink
// disabled) but is still safe to wire through the system.
type Options struct {
	// TraceEvents buffers Chrome trace events for WriteTrace.
	TraceEvents bool
	// FlightRecorderLines sizes the per-socket ring of recent protocol
	// events (0 disables the recorder).
	FlightRecorderLines int
	// Sockets sizes the per-socket structures; 0 means 2 (the simulated
	// machine). Higher sockets observed at runtime grow the state lazily.
	Sockets int
	// QueueDepthStrideCyc subsamples the engine's pending-event counter
	// track: one counter event per stride of simulated time. 0 means 1024.
	QueueDepthStrideCyc uint64
}

// laneState tracks one virtual lane of a track. Directory transactions on
// different lines overlap freely at one component, but Chrome trace B/E
// events must nest per thread; lanes split each (component, socket) track
// into enough threads that concurrent spans never share one. busyUntil is
// the first cycle the lane may host a new event; an open span holds the
// lane with busyUntil == openSpan until End releases it.
type laneState struct {
	busyUntil sim.Cycle
	name      string // open span's name (repeated on the E event)
}

// openSpan marks a lane held by an un-Ended span.
const openSpan = sim.Cycle(^uint64(0))

// laneCap bounds lanes per track; allocation past it drops the span (the
// drop is counted, never silent — see Dropped).
const laneCap = 256

// instantLane is the pseudo-lane instant events and counters share; it is
// outside the span-lane range so instants never block span allocation.
const instantLane = laneCap + 1

// Tracer is the probe sink wired through the system (coherence.System,
// noc.Link, mem.Controller, cache.Sequencer). All methods derive time from
// the attached sim.Engine and never feed anything back into the simulation.
type Tracer struct {
	eng  *sim.Engine
	opts Options

	events []traceEvent
	// trackOrder lists pid<<32|tid keys in first-emission order; the writer
	// sorts a copy for metadata emission (no map iteration anywhere).
	trackOrder []uint64
	trackSeen  map[uint64]bool

	// lanes[trackIdx] holds the track's lane states; trackIdx is
	// comp*sockets + socket.
	lanes [][]laneState

	rec     *FlightRecorder
	dropped uint64

	nextDepth sim.Cycle
}

// NewTracer builds a tracer; Attach binds it to the run's engine (done by
// coherence.(*System).SetTracer).
func NewTracer(opts Options) *Tracer {
	if opts.Sockets <= 0 {
		opts.Sockets = 2
	}
	if opts.QueueDepthStrideCyc == 0 {
		opts.QueueDepthStrideCyc = 1024
	}
	t := &Tracer{
		opts:      opts,
		trackSeen: make(map[uint64]bool),
		lanes:     make([][]laneState, int(compCount)*opts.Sockets),
	}
	if opts.FlightRecorderLines > 0 {
		t.rec = NewFlightRecorder(opts.Sockets, opts.FlightRecorderLines)
	}
	return t
}

// Attach binds the tracer to the engine that provides simulated time.
// Attaching to a fresh engine mid-life would rewind the timeline, so a
// tracer must be used for exactly one run.
func (t *Tracer) Attach(eng *sim.Engine) { t.eng = eng }

// Recorder returns the flight recorder, or nil when disabled.
func (t *Tracer) Recorder() *FlightRecorder { return t.rec }

// Dropped returns how many events were discarded because a track exhausted
// its lanes (never silent: a nonzero value means the trace is a sample).
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns how many trace events have been buffered.
func (t *Tracer) Events() int { return len(t.events) }

func (t *Tracer) now() sim.Cycle {
	if t.eng == nil {
		return 0
	}
	return t.eng.Now()
}

// trackIdx maps (component, socket) to a lane-table index, growing the
// table if the run observes more sockets than configured.
func (t *Tracer) trackIdx(c Component, socket int) int {
	if socket < 0 {
		socket = 0
	}
	if socket >= t.opts.Sockets {
		grown := make([][]laneState, int(compCount)*(socket+1))
		for comp := 0; comp < int(compCount); comp++ {
			copy(grown[comp*(socket+1):], t.lanes[comp*t.opts.Sockets:(comp+1)*t.opts.Sockets])
		}
		t.lanes = grown
		t.opts.Sockets = socket + 1
	}
	return int(c)*t.opts.Sockets + socket
}

// allocLane finds the lowest lane of the track free at cycle from and
// reserves it until busyUntil. The scan is a deterministic slice walk, so
// lane assignment is a pure function of the event order. Returns -1 when
// the track is saturated.
func (t *Tracer) allocLane(tr int, from, busyUntil sim.Cycle) int {
	lanes := t.lanes[tr]
	for i := range lanes {
		if lanes[i].busyUntil <= from {
			lanes[i].busyUntil = busyUntil
			return i
		}
	}
	if len(lanes) >= laneCap {
		return -1
	}
	t.lanes[tr] = append(lanes, laneState{busyUntil: busyUntil})
	return len(lanes)
}

// tidOf packs a component and lane into a Chrome thread id. The socket is
// the process id, so tids only need to separate components and lanes.
func tidOf(c Component, lane int) int {
	return (int(c)+1)*1000 + lane
}

// Begin opens a span for a named transaction on a (component, socket)
// track and returns its id; End closes it. line rides in the event args so
// Perfetto can filter by cache line.
func (t *Tracer) Begin(c Component, socket int, name string, line uint64) SpanID {
	now := t.now()
	if t.rec != nil {
		t.rec.Note(uint64(now), socket, c, name, line)
	}
	if !t.opts.TraceEvents {
		return 0
	}
	tr := t.trackIdx(c, socket)
	lane := t.allocLane(tr, now, openSpan)
	if lane < 0 {
		t.dropped++
		return 0
	}
	t.lanes[tr][lane].name = name
	t.emit(traceEvent{
		name: name, ph: 'B', ts: uint64(now),
		pid: socket, tid: tidOf(c, lane),
		argKey: "line", argVal: line,
	})
	return SpanID(uint64(tr+1)<<32 | uint64(lane+1))
}

// End closes a span opened by Begin. End(0) — a dropped or disabled span —
// is a no-op, so callers never branch.
func (t *Tracer) End(id SpanID) {
	if id == 0 {
		return
	}
	tr := int(id>>32) - 1
	lane := int(uint32(id)) - 1
	now := t.now()
	ls := &t.lanes[tr][lane]
	c := Component(tr / t.opts.Sockets)
	socket := tr % t.opts.Sockets
	t.emit(traceEvent{
		name: ls.name, ph: 'E', ts: uint64(now),
		pid: socket, tid: tidOf(c, lane),
	})
	ls.busyUntil = now // lane reusable from this cycle on
	ls.name = ""
}

// Point records an instant protocol event (a grant, a fill, a deferred
// dispatch, a RAS ladder step). Instants share a per-track pseudo-lane and
// never consume span lanes.
func (t *Tracer) Point(c Component, socket int, name string, line uint64) {
	now := t.now()
	if t.rec != nil {
		t.rec.Note(uint64(now), socket, c, name, line)
	}
	if !t.opts.TraceEvents {
		return
	}
	t.emit(traceEvent{
		name: name, ph: 'i', ts: uint64(now),
		pid: socket, tid: tidOf(c, instantLane),
		argKey: "line", argVal: line,
	})
}

// Complete records a self-contained interval [start, start+dur) — DRAM
// accesses and link messages, whose duration is known at issue time. start
// must be >= the previous Complete's start on the same track (true for the
// link's per-direction serialization and for controllers stamping at the
// current cycle), which keeps every lane's timestamps monotone.
func (t *Tracer) Complete(c Component, socket int, name string, argKey string, argVal uint64, start, dur sim.Cycle) {
	if t.rec != nil {
		t.rec.Note(uint64(start), socket, c, name, argVal)
	}
	if !t.opts.TraceEvents {
		return
	}
	tr := t.trackIdx(c, socket)
	lane := t.allocLane(tr, start, start+dur)
	if lane < 0 {
		t.dropped++
		return
	}
	t.emit(traceEvent{
		name: name, ph: 'X', ts: uint64(start), dur: uint64(dur), hasDur: true,
		pid: socket, tid: tidOf(c, lane),
		argKey: argKey, argVal: argVal,
	})
}

// EngineDispatch is the sim.Engine.OnDispatch hook: it subsamples the
// pending-event count into a Perfetto counter track. It reads queue state
// and writes only telemetry buffers — nothing flows back into the engine.
func (t *Tracer) EngineDispatch(now sim.Cycle, pending int) {
	if !t.opts.TraceEvents || now < t.nextDepth {
		return
	}
	t.nextDepth = now + sim.Cycle(t.opts.QueueDepthStrideCyc)
	t.emit(traceEvent{
		name: "pending_events", ph: 'C', ts: uint64(now),
		pid: 0, tid: tidOf(CompEngine, 0),
		argKey: "pending", argVal: uint64(pending),
	})
}
