package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"dve/internal/stats"
)

func renderBuilder(t *testing.T, b *TraceBuilder) []ParsedEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := b.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestBuilderRoundTripAndDomain(t *testing.T) {
	b := NewTraceBuilder(DomainWall, 0)
	b.ProcessName(0, "fabric")
	b.ThreadName(0, 1, "queue")
	b.ThreadName(0, 100, "worker-a")

	b.Instant(0, 1, "enqueued", 10, map[string]any{"cell": "s1/c0"})
	b.Begin(0, 100, "s1/c0", 20, map[string]any{"worker": "a"})
	b.End(0, 100, 50, nil)

	evs := renderBuilder(t, b)
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("builder emitted invalid trace: %v", err)
	}
	if err := ValidateTraceDomain(evs, DomainWall); err != nil {
		t.Fatal(err)
	}
	if got := TraceDomain(evs); got != "wall" {
		t.Errorf("TraceDomain = %q, want wall", got)
	}
	var b1, e1 *ParsedEvent
	for i := range evs {
		switch evs[i].Ph {
		case "B":
			b1 = &evs[i]
		case "E":
			e1 = &evs[i]
		}
	}
	if b1 == nil || e1 == nil || b1.Name != "s1/c0" || e1.Name != "s1/c0" {
		t.Fatalf("span not round-tripped: B=%+v E=%+v", b1, e1)
	}
	if b1.Ts != 20 || e1.Ts != 50 {
		t.Errorf("span timestamps %d..%d, want 20..50", b1.Ts, e1.Ts)
	}
}

// The tracer's own WriteTrace must now declare the sim domain, so domain
// validation can tell fabric traces and simulator traces apart.
func TestTracerDeclaresSimDomain(t *testing.T) {
	tr := NewTracer(Options{TraceEvents: true})
	tr.Point(CompLLC, 0, "fill", 1)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceDomain(evs, DomainSim); err != nil {
		t.Error(err)
	}
	if err := ValidateTraceDomain(evs, DomainWall); err == nil {
		t.Error("sim trace accepted as wall domain")
	}
}

func TestBuilderClampsRegressingTimestamps(t *testing.T) {
	b := NewTraceBuilder(DomainWall, 0)
	b.Instant(0, 1, "a", 100, nil)
	b.Instant(0, 1, "b", 40, nil) // wall clock jitter: must clamp, not regress
	b.Begin(0, 1, "span", 30, nil)
	b.End(0, 1, 20, nil)
	evs := renderBuilder(t, b)
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("clamping failed, trace invalid: %v", err)
	}
}

func TestBuilderClosesOpenSpansInOutputOnly(t *testing.T) {
	b := NewTraceBuilder(DomainWall, 0)
	b.Begin(0, 7, "outer", 1, nil)
	b.Begin(0, 7, "inner", 2, nil)

	evs := renderBuilder(t, b)
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("open spans not closed in output: %v", err)
	}
	// The builder itself still has both spans open: ending them later must
	// produce a valid trace again, not unmatched E records.
	b.End(0, 7, 5, nil)
	b.End(0, 7, 6, nil)
	if b.Dropped() != 0 {
		t.Fatalf("ends after WriteTrace counted as drops: %d", b.Dropped())
	}
	evs = renderBuilder(t, b)
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("second render invalid: %v", err)
	}
}

func TestBuilderUnmatchedEndCountsAsDrop(t *testing.T) {
	b := NewTraceBuilder(DomainWall, 0)
	b.End(0, 1, 5, nil)
	if got := b.Dropped(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	if b.Events() != 0 {
		t.Errorf("unmatched End buffered an event")
	}
}

func TestBuilderEventCap(t *testing.T) {
	b := NewTraceBuilder(DomainWall, 4)
	for i := 0; i < 10; i++ {
		b.Instant(0, 1, "x", uint64(i), nil)
	}
	if b.Events() != 4 {
		t.Errorf("Events = %d, want 4 (capped)", b.Events())
	}
	if b.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", b.Dropped())
	}
	// B admitted at cap-1 must still get its E past the cap.
	b2 := NewTraceBuilder(DomainWall, 1)
	b2.Begin(0, 1, "span", 1, nil)
	b2.End(0, 1, 2, nil)
	evs := renderBuilder(t, b2)
	if err := ValidateTrace(evs); err != nil {
		t.Errorf("capped builder trace invalid: %v", err)
	}
}

// TestBuilderConcurrent exercises the mutex under -race: handlers and
// worker goroutines hammer one builder.
func TestBuilderConcurrent(t *testing.T) {
	b := NewTraceBuilder(DomainWall, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tid := 100 + g
			for i := 0; i < 100; i++ {
				ts := uint64(i * 10)
				b.Begin(0, tid, "cell", ts, nil)
				b.Instant(0, 1, "transition", ts, nil)
				b.End(0, tid, ts+5, nil)
			}
		}(g)
	}
	wg.Wait()
	evs := renderBuilder(t, b)
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("concurrent build produced invalid trace: %v", err)
	}
	if err := ValidateTraceDomain(evs, DomainWall); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderDumpCount(t *testing.T) {
	r := NewFlightRecorder(1, 4)
	r.Note(1, 0, CompRAS, "detect", 9)
	if r.Dumps() != 0 {
		t.Fatalf("Dumps = %d before any dump", r.Dumps())
	}
	r.Dump()
	r.Dump()
	if r.Dumps() != 2 {
		t.Errorf("Dumps = %d, want 2", r.Dumps())
	}
}

func TestLabeledGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	reg.LabeledGauge("dve_test_node_depth", "per-node depth", "node",
		func() []LabeledValue {
			return []LabeledValue{
				{Label: "w1", Value: 3},
				{Label: `odd"name\n`, Value: 1},
			}
		})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dve_test_node_depth gauge",
		`dve_test_node_depth{node="w1"} 3`,
		`dve_test_node_depth{node="odd\"name\\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled gauge exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("labeled gauge exposition fails validation: %v", err)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Get(`dve_test_node_depth{node="w1"}`); !ok || v != 3 {
		t.Errorf("snapshot sample = %v,%v want 3,true", v, ok)
	}
}

func TestValidateExposition(t *testing.T) {
	valid := strings.Join([]string{
		"# HELP up whether the target is up",
		"# TYPE up gauge",
		"up 1",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 9.5",
		"lat_count 4",
		`reqs_total{node="a",path="/run"} 17 1712345678`,
		"free_form:rule 2",
		"nanv NaN",
	}, "\n")
	if err := ValidateExposition(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}

	cases := map[string]string{
		"bad name":       "9up 1",
		"bad value":      "up one",
		"unquoted label": "up{node=a} 1",
		"unclosed label": `up{node="a 1`,
		"bad escape":     `up{node="a\q"} 1`,
		"bad type":       "# TYPE up wibble\nup 1",
		"duplicate type": "# TYPE up gauge\n# TYPE up gauge\nup 1",
		"interleaved":    "a 1\nb 2\na 3",
		"missing value":  "up",
		"empty":          "",
		"bad timestamp":  "up 1 not_a_ts",
	}
	for name, doc := range cases {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: invalid exposition accepted:\n%s", name, doc)
		}
	}
}

// The real registries this repo serves must pass their own validator.
func TestOwnExpositionsValidate(t *testing.T) {
	var c stats.Counters
	c.Ops = 10
	c.MissLatency.Add(7)
	var buf bytes.Buffer
	if err := CountersRegistry(&c).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("CountersRegistry exposition invalid: %v", err)
	}
}
