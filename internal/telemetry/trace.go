package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"dve/internal/sim"
)

// traceEvent is one buffered Chrome trace event. Events are buffered in
// emission order (which, by the no-perturbation rule, is a pure function of
// the simulated run) and serialised by WriteTrace.
type traceEvent struct {
	name   string
	ph     byte
	ts     uint64
	dur    uint64
	hasDur bool
	pid    int
	tid    int
	argKey string
	argVal uint64
}

// trackKey packs (pid, tid) into the writer's dedup key.
func trackKey(pid, tid int) uint64 {
	return uint64(uint32(pid))<<32 | uint64(uint32(tid))
}

func (t *Tracer) emit(ev traceEvent) {
	k := trackKey(ev.pid, ev.tid)
	if !t.trackSeen[k] {
		t.trackSeen[k] = true
		t.trackOrder = append(t.trackOrder, k)
	}
	t.events = append(t.events, ev)
}

// closeDanglingSpans emits E events for every still-open span so the trace
// always has matched B/E pairs even when the run was cut off mid-transaction
// (RunUntil, socket kill). Lanes are walked in index order: deterministic.
func (t *Tracer) closeDanglingSpans() {
	now := uint64(t.now())
	for tr := range t.lanes {
		c := Component(tr / t.opts.Sockets)
		socket := tr % t.opts.Sockets
		for lane := range t.lanes[tr] {
			ls := &t.lanes[tr][lane]
			if ls.busyUntil != openSpan {
				continue
			}
			t.emit(traceEvent{
				name: ls.name, ph: 'E', ts: now,
				pid: socket, tid: tidOf(c, lane),
			})
			ls.busyUntil = sim.Cycle(now)
			ls.name = ""
		}
	}
}

// wireEvent is the JSON shape of one trace record — a strict subset of the
// Chrome trace-event format that Perfetto accepts. Sim cycles map 1:1 to
// microseconds on the Perfetto timeline.
type wireEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object.
type traceFile struct {
	TraceEvents     []wireEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit,omitempty"`
}

// writeTraceFile serialises a trace document — the one encoder both the
// Tracer and the TraceBuilder write through.
func writeTraceFile(w io.Writer, f *traceFile) error {
	return json.NewEncoder(w).Encode(f)
}

// Clock domains name the timeline a trace's timestamps live on. A sim
// trace's microseconds are simulated cycles (1 cycle = 1 µs); a wall trace's
// microseconds are host time. Traces declare their domain in a clock_domain
// metadata record so tooling (and CI validation) can refuse to aggregate
// across domains.
const (
	DomainSim  = "sim"  // timestamps are sim.Engine cycles
	DomainWall = "wall" // timestamps are host microseconds
)

// domainMeta builds the clock_domain metadata record.
func domainMeta(domain string) wireEvent {
	return wireEvent{
		Name: "clock_domain", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"domain": domain},
	}
}

// TraceDomain returns the clock domain a parsed trace declares, or "" when
// the trace predates domain stamping.
func TraceDomain(events []ParsedEvent) string {
	for i := range events {
		ev := &events[i]
		if ev.Ph == "M" && ev.Name == "clock_domain" {
			if d, ok := ev.Args["domain"].(string); ok {
				return d
			}
		}
	}
	return ""
}

// ValidateTraceDomain checks that the trace declares exactly the wanted
// clock domain — the fabric trace must say "wall", a simulator trace "sim".
func ValidateTraceDomain(events []ParsedEvent, want string) error {
	got := TraceDomain(events)
	if got == "" {
		return fmt.Errorf("trace declares no clock_domain metadata (want %q)", want)
	}
	if got != want {
		return fmt.Errorf("trace clock domain is %q, want %q", got, want)
	}
	return nil
}

// trackThreadName renders a tid back into a human-readable Perfetto thread
// name ("homedir/lane3", "llc/instant").
func trackThreadName(tid int) string {
	comp := Component(tid/1000 - 1)
	lane := tid % 1000
	if lane == instantLane {
		return comp.String() + "/instant"
	}
	return fmt.Sprintf("%s/lane%d", comp, lane)
}

// WriteTrace closes dangling spans and serialises the buffered events as
// Chrome trace-event JSON. Metadata (process/thread names) is emitted first
// in sorted track order, then the events in emission order; both orders are
// deterministic, so traces of identical runs are byte-identical.
func (t *Tracer) WriteTrace(w io.Writer) error {
	t.closeDanglingSpans()

	tracks := make([]uint64, len(t.trackOrder))
	copy(tracks, t.trackOrder)
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })

	out := traceFile{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, domainMeta(DomainSim))
	lastPid := -1
	for _, k := range tracks {
		pid := int(k >> 32)
		tid := int(uint32(k))
		if pid != lastPid {
			lastPid = pid
			out.TraceEvents = append(out.TraceEvents, wireEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("socket%d", pid)},
			})
		}
		out.TraceEvents = append(out.TraceEvents, wireEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": trackThreadName(tid)},
		})
	}

	for i := range t.events {
		ev := &t.events[i]
		we := wireEvent{
			Name: ev.name, Ph: string(ev.ph), Ts: ev.ts,
			Pid: ev.pid, Tid: ev.tid,
		}
		if ev.hasDur {
			d := ev.dur
			we.Dur = &d
		}
		if ev.argKey != "" {
			we.Args = map[string]any{ev.argKey: ev.argVal}
		}
		out.TraceEvents = append(out.TraceEvents, we)
	}

	return writeTraceFile(w, &out)
}

// WriteTraceFile writes the trace to path (the dvesim -trace-events sink).
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParsedEvent is one record read back from a trace file.
type ParsedEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// ParseTrace reads a Chrome trace-event JSON document.
func ParseTrace(r io.Reader) ([]ParsedEvent, error) {
	var f struct {
		TraceEvents []ParsedEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	if f.TraceEvents == nil {
		return nil, fmt.Errorf("telemetry: trace has no traceEvents array")
	}
	return f.TraceEvents, nil
}

// trackCheck is ValidateTrace's per-(pid,tid) state.
type trackCheck struct {
	lastTs uint64
	sawTs  bool
	// open is the stack of unclosed B event names.
	open []string
}

// ValidateTrace checks the structural contract WriteTrace promises:
// every record has a known phase; timestamps are monotone non-decreasing
// per (pid, tid) track; and every B has a matching E (same track, same
// name, properly nested). Returns the first violation in event order.
func ValidateTrace(events []ParsedEvent) error {
	state := make(map[uint64]*trackCheck)
	var order []uint64
	for i := range events {
		ev := &events[i]
		switch ev.Ph {
		case "M":
			continue // metadata carries no timeline position
		case "B", "E", "X", "i", "C":
		default:
			return fmt.Errorf("event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		k := trackKey(ev.Pid, ev.Tid)
		tc := state[k]
		if tc == nil {
			tc = &trackCheck{}
			state[k] = tc
			order = append(order, k)
		}
		if tc.sawTs && ev.Ts < tc.lastTs {
			return fmt.Errorf("event %d (%q): ts %d < previous ts %d on track pid=%d tid=%d",
				i, ev.Name, ev.Ts, tc.lastTs, ev.Pid, ev.Tid)
		}
		tc.lastTs, tc.sawTs = ev.Ts, true
		switch ev.Ph {
		case "B":
			tc.open = append(tc.open, ev.Name)
		case "E":
			if len(tc.open) == 0 {
				return fmt.Errorf("event %d (%q): E without open B on track pid=%d tid=%d",
					i, ev.Name, ev.Pid, ev.Tid)
			}
			top := tc.open[len(tc.open)-1]
			if top != ev.Name {
				return fmt.Errorf("event %d: E %q does not match open B %q on track pid=%d tid=%d",
					i, ev.Name, top, ev.Pid, ev.Tid)
			}
			tc.open = tc.open[:len(tc.open)-1]
		}
	}
	for _, k := range order {
		if tc := state[k]; len(tc.open) > 0 {
			return fmt.Errorf("track pid=%d tid=%d: %d unclosed B event(s), first %q",
				int(k>>32), int(uint32(k)), len(tc.open), tc.open[0])
		}
	}
	return nil
}
