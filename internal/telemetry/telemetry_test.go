package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dve/internal/sim"
	"dve/internal/stats"
)

// tracerAt returns a tracing-enabled tracer bound to a fresh engine, plus
// the engine for advancing simulated time.
func tracerAt(t *testing.T) (*Tracer, *sim.Engine) {
	t.Helper()
	tr := NewTracer(Options{TraceEvents: true, FlightRecorderLines: 8})
	eng := sim.NewEngine()
	tr.Attach(eng)
	return tr, eng
}

// advance moves the engine clock to the given cycle via a scheduled no-op.
func advance(eng *sim.Engine, to sim.Cycle) {
	eng.At(to, func() {})
	eng.Run()
}

func TestSpanRoundTrip(t *testing.T) {
	tr, eng := tracerAt(t)
	sp := tr.Begin(CompHomeDir, 0, "GETS", 42)
	if sp == 0 {
		t.Fatal("Begin returned the dropped-span id with tracing enabled")
	}
	advance(eng, 10)
	tr.End(sp)

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatal(err)
	}
	var b, e *ParsedEvent
	for i := range evs {
		switch evs[i].Ph {
		case "B":
			b = &evs[i]
		case "E":
			e = &evs[i]
		}
	}
	if b == nil || e == nil {
		t.Fatalf("missing B/E pair in %d events", len(evs))
	}
	if b.Name != "GETS" || b.Ts != 0 || e.Ts != 10 {
		t.Errorf("span B=%+v E=%+v, want GETS over [0,10]", b, e)
	}
	if got := b.Args["line"]; got != float64(42) {
		t.Errorf("span line arg = %v, want 42", got)
	}
}

// Concurrent spans on one track must land on distinct lanes (distinct
// tids), and a freed lane must be reused — that is what keeps per-track
// timestamps monotone and B/E properly nested.
func TestLaneAssignment(t *testing.T) {
	tr, eng := tracerAt(t)
	a := tr.Begin(CompHomeDir, 0, "a", 1)
	b := tr.Begin(CompHomeDir, 0, "b", 2)
	if a == b {
		t.Fatal("concurrent spans share a SpanID")
	}
	advance(eng, 5)
	tr.End(a)
	tr.End(b)
	advance(eng, 6)
	c := tr.Begin(CompHomeDir, 0, "c", 3)
	if c != a {
		t.Errorf("freed lane not reused: first=%#x reuse=%#x", uint64(a), uint64(c))
	}
	tr.End(c)

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatal(err)
	}
}

func TestEndZeroIsNoOp(t *testing.T) {
	tr := NewTracer(Options{}) // everything disabled
	sp := tr.Begin(CompLLC, 0, "miss", 7)
	if sp != 0 {
		t.Fatalf("disabled Begin = %#x, want 0", uint64(sp))
	}
	tr.End(sp) // must not panic
	tr.End(0)
	if tr.Events() != 0 {
		t.Errorf("disabled tracer buffered %d events", tr.Events())
	}
}

func TestDanglingSpansClosedAtWrite(t *testing.T) {
	tr, eng := tracerAt(t)
	tr.Begin(CompReplicaDir, 1, "LocalGETX", 9) // never Ended
	advance(eng, 20)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Errorf("dangling span not closed: %v", err)
	}
}

func TestLaneExhaustionDropsNotPanics(t *testing.T) {
	tr, _ := tracerAt(t)
	spans := make([]SpanID, 0, laneCap+10)
	for i := 0; i < laneCap+10; i++ {
		spans = append(spans, tr.Begin(CompMem, 0, "x", uint64(i)))
	}
	if tr.Dropped() != 10 {
		t.Errorf("Dropped = %d, want 10", tr.Dropped())
	}
	for _, sp := range spans {
		tr.End(sp) // dropped spans are End(0) no-ops
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Error(err)
	}
}

func TestCompleteAndInstantEvents(t *testing.T) {
	tr, eng := tracerAt(t)
	tr.Complete(CompLink, 0, "xfer", "bytes", 72, 0, 15)
	tr.Complete(CompLink, 0, "xfer", "bytes", 8, 5, 10) // overlaps: second lane
	tr.Point(CompLLC, 1, "fill", 33)
	advance(eng, 50)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatal(err)
	}
	var xs, is int
	for _, ev := range evs {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Dur == 0 {
				t.Errorf("X event lost its dur: %+v", ev)
			}
		case "i":
			is++
		}
	}
	if xs != 2 || is != 1 {
		t.Errorf("got %d X + %d i events, want 2 + 1", xs, is)
	}
}

// Identical emission sequences must serialise to identical bytes — traces
// inherit the simulator's determinism contract.
func TestTraceBytesDeterministic(t *testing.T) {
	render := func() []byte {
		tr, eng := tracerAt(t)
		sp := tr.Begin(CompHomeDir, 0, "GETS", 1)
		tr.Point(CompRAS, 1, "detect", 2)
		tr.Complete(CompMem, 1, "dram-read", "addr", 64, 0, 24)
		advance(eng, 12)
		tr.End(sp)
		var buf bytes.Buffer
		if err := tr.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("two identical runs produced different trace bytes")
	}
}

func TestValidateTraceRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		evs  []ParsedEvent
		want string
	}{
		{"regressing ts", []ParsedEvent{
			{Name: "a", Ph: "i", Ts: 10, Pid: 0, Tid: 1},
			{Name: "b", Ph: "i", Ts: 9, Pid: 0, Tid: 1},
		}, "ts 9 < previous ts 10"},
		{"unmatched E", []ParsedEvent{
			{Name: "a", Ph: "E", Ts: 1, Pid: 0, Tid: 1},
		}, "E without open B"},
		{"mismatched names", []ParsedEvent{
			{Name: "a", Ph: "B", Ts: 1, Pid: 0, Tid: 1},
			{Name: "b", Ph: "E", Ts: 2, Pid: 0, Tid: 1},
		}, "does not match open B"},
		{"unclosed B", []ParsedEvent{
			{Name: "a", Ph: "B", Ts: 1, Pid: 0, Tid: 1},
		}, "unclosed B"},
		{"unknown phase", []ParsedEvent{
			{Name: "a", Ph: "Q", Ts: 1, Pid: 0, Tid: 1},
		}, "unknown phase"},
	}
	for _, tc := range cases {
		err := ValidateTrace(tc.evs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(2, 4)
	for i := 0; i < 10; i++ {
		r.Note(uint64(i), i%2, CompHomeDir, "GETS", uint64(i))
	}
	d := r.Dump()
	if len(d) != 8 {
		t.Fatalf("dump has %d events, want 8 (2 sockets x ring of 4)", len(d))
	}
	// Oldest entries (cycles 0 and 1) were overwritten.
	for _, ev := range d {
		if ev.Cycle < 2 {
			t.Errorf("overwritten event survived: %+v", ev)
		}
	}
	// Dump is globally ordered by (cycle, seq).
	for i := 1; i < len(d); i++ {
		if d[i].Cycle < d[i-1].Cycle ||
			(d[i].Cycle == d[i-1].Cycle && d[i].Seq < d[i-1].Seq) {
			t.Errorf("dump out of order at %d: %+v then %+v", i, d[i-1], d[i])
		}
	}
	// Two identical recorders dump identical slices.
	r2 := NewFlightRecorder(2, 4)
	for i := 0; i < 10; i++ {
		r2.Note(uint64(i), i%2, CompHomeDir, "GETS", uint64(i))
	}
	if !reflect.DeepEqual(d, r2.Dump()) {
		t.Error("identical recorders dumped different slices")
	}
}

func TestFlightRecorderSocketGrowth(t *testing.T) {
	r := NewFlightRecorder(1, 2)
	r.Note(1, 3, CompRAS, "socket-kill", 0) // socket beyond initial size
	d := r.Dump()
	if len(d) != 1 || d[0].Socket != 3 || d[0].Comp != "ras" {
		t.Errorf("dump = %+v, want one ras event at socket 3", d)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	var hits uint64 = 7
	reg.Counter("dve_test_hits_total", "test hits", func() float64 { return float64(hits) })
	reg.Gauge("dve_test_depth", "queue depth", func() float64 { return 3 })
	var h stats.Histogram
	h.Add(1)
	h.Add(3)
	h.Add(100)
	reg.Histogram("dve_test_latency", "latency", func() *stats.Histogram { return &h })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dve_test_hits_total test hits",
		"# TYPE dve_test_hits_total counter",
		"dve_test_hits_total 7",
		"# TYPE dve_test_depth gauge",
		"dve_test_depth 3",
		"# TYPE dve_test_latency histogram",
		`dve_test_latency_bucket{le="+Inf"} 3`,
		"dve_test_latency_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "dve_test_latency_bucket") {
			continue
		}
		var v int
		if _, err := fmtSscanfTail(line, &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
}

// fmtSscanfTail parses the trailing integer of a metrics line.
func fmtSscanfTail(line string, v *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := json.Number(strings.TrimSpace(line[i+1:])).Int64()
	*v = int(n)
	return 1, err
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted, want panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "", func() float64 { return 0 })
		}()
	}
	// Duplicates panic too.
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration accepted, want panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "", func() float64 { return 0 })
	r.Counter("dup", "", func() float64 { return 0 })
}

func TestCountersSnapshotDeterministic(t *testing.T) {
	c := &stats.Counters{Ops: 100, Reads: 60, Writes: 40, LLCMisses: 5}
	c.MissLatency.Add(120)
	s1 := CountersSnapshot(c)
	s2 := CountersSnapshot(c)
	if !reflect.DeepEqual(s1, s2) {
		t.Error("two snapshots of the same counters differ")
	}
	if v, ok := s1.Get("dve_ops_total"); !ok || v != 100 {
		t.Errorf("dve_ops_total = %v,%v want 100,true", v, ok)
	}
	if v, ok := s1.Get("dve_miss_latency_cycles_count"); !ok || v != 1 {
		t.Errorf("histogram count sample = %v,%v want 1,true", v, ok)
	}
	// The snapshot JSON round-trips (the result-cache envelope shape).
	b, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, back) {
		t.Error("snapshot does not JSON round-trip")
	}
}

func TestComponentString(t *testing.T) {
	if CompHomeDir.String() != "homedir" || CompRAS.String() != "ras" {
		t.Errorf("component names wrong: %s %s", CompHomeDir, CompRAS)
	}
	if Component(200).String() != "unknown" {
		t.Errorf("out-of-range component = %s", Component(200))
	}
}

func TestEngineDispatchSubsampling(t *testing.T) {
	tr := NewTracer(Options{TraceEvents: true, QueueDepthStrideCyc: 100})
	eng := sim.NewEngine()
	tr.Attach(eng)
	eng.OnDispatch = tr.EngineDispatch
	for i := 0; i < 500; i++ {
		eng.At(sim.Cycle(i), func() {})
	}
	eng.Run()
	counters := 0
	for _, ev := range tr.events {
		if ev.ph == 'C' {
			counters++
		}
	}
	// 500 cycles at stride 100 -> 5 counter samples, not 500.
	if counters != 5 {
		t.Errorf("counter events = %d, want 5", counters)
	}
}
