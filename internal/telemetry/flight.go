package telemetry

import "sort"

// FlightEvent is one entry of a flight-recorder dump: a recent protocol
// event in the lead-up to an invariant violation or socket kill.
type FlightEvent struct {
	Cycle  uint64 `json:"cycle"`
	Seq    uint64 `json:"seq"` // global emission order, breaks same-cycle ties
	Socket int    `json:"socket"`
	Comp   string `json:"comp"`
	Kind   string `json:"kind"`
	Line   uint64 `json:"line"`
}

// flightRec is the in-ring representation (Component kept numeric so a Note
// on the hot path never formats strings).
type flightRec struct {
	cycle uint64
	seq   uint64
	comp  Component
	kind  string
	line  uint64
}

// FlightRecorder keeps a fixed-size ring of the most recent protocol events
// per socket. Recording is append-into-ring only — no allocation after
// construction, no feedback into the simulation — so it can stay armed for
// whole campaigns. Dump linearises the rings into one deterministic
// timeline.
type FlightRecorder struct {
	rings [][]flightRec // rings[socket], len == cap == size once warm
	pos   []int         // next write index per socket
	size  int
	seq   uint64
	dumps uint64
}

// Dumps returns how many times the ring was linearised — each dump marks an
// invariant violation or socket kill that triggered a failure report, so
// the count is surfaced in the metrics registry (dve_flight_dumps_total).
func (r *FlightRecorder) Dumps() uint64 { return r.dumps }

// NewFlightRecorder builds a recorder with `lines` entries per socket.
func NewFlightRecorder(sockets, lines int) *FlightRecorder {
	if sockets <= 0 {
		sockets = 2
	}
	if lines <= 0 {
		lines = 256
	}
	r := &FlightRecorder{
		rings: make([][]flightRec, sockets),
		pos:   make([]int, sockets),
		size:  lines,
	}
	for s := range r.rings {
		r.rings[s] = make([]flightRec, 0, lines)
	}
	return r
}

// grow extends the per-socket state when a higher socket id shows up.
func (r *FlightRecorder) grow(socket int) {
	for len(r.rings) <= socket {
		r.rings = append(r.rings, make([]flightRec, 0, r.size))
		r.pos = append(r.pos, 0)
	}
}

// Note records one protocol event, overwriting the socket's oldest entry
// once the ring is full.
func (r *FlightRecorder) Note(cycle uint64, socket int, c Component, kind string, line uint64) {
	if socket < 0 {
		socket = 0
	}
	if socket >= len(r.rings) {
		r.grow(socket)
	}
	rec := flightRec{cycle: cycle, seq: r.seq, comp: c, kind: kind, line: line}
	r.seq++
	ring := r.rings[socket]
	if len(ring) < r.size {
		r.rings[socket] = append(ring, rec)
		return
	}
	ring[r.pos[socket]] = rec
	r.pos[socket] = (r.pos[socket] + 1) % r.size
}

// Dump merges every socket's ring into one slice ordered by (cycle, seq) —
// the exact emission order, reconstructed — ready for JSON serialisation in
// a failure report. The recorder keeps recording afterwards.
func (r *FlightRecorder) Dump() []FlightEvent {
	r.dumps++
	var out []FlightEvent
	for socket := range r.rings {
		for i := range r.rings[socket] {
			rec := &r.rings[socket][i]
			out = append(out, FlightEvent{
				Cycle: rec.cycle, Seq: rec.seq, Socket: socket,
				Comp: rec.comp.String(), Kind: rec.kind, Line: rec.line,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
