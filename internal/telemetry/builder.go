package telemetry

import (
	"io"
	"sync"
)

// TraceBuilder assembles a Chrome trace-event document from explicit
// timestamps — the wall-clock counterpart of the Tracer, which derives time
// from sim.Engine. The sweep fabric uses one to record cell lifecycles
// (enqueue → lease → run → complete) across coordinator and workers, with
// host microseconds on the timeline and the clock domain declared in the
// same metadata record WriteTrace emits.
//
// Unlike the Tracer it is safe for concurrent use: fabric events arrive
// from HTTP handlers and worker goroutines, so every method locks. It
// enforces the ValidateTrace contract at build time — per-track timestamps
// are clamped monotone (wall clocks jitter; the trace must not), E events
// close the innermost open B by name, and WriteTrace synthesises closing E
// records for still-open spans into the output only, so a live server can
// serve /trace mid-sweep and keep building.
type TraceBuilder struct {
	mu     sync.Mutex
	domain string

	meta   []wireEvent // process/thread name records, registration order
	events []wireEvent

	tracks map[uint64]*builderTrack
	max    int
	drops  uint64
}

// builderTrack is per-(pid,tid) build state.
type builderTrack struct {
	lastTs uint64
	sawTs  bool
	open   []string // stack of open B names
}

// NewTraceBuilder returns a builder for the given clock domain (DomainWall
// for fabric traces). maxEvents bounds the buffered event count so a
// long-lived server cannot grow without bound; 0 means 65536. Events past
// the cap are dropped and counted (E events are always admitted so spans
// stay matched).
func NewTraceBuilder(domain string, maxEvents int) *TraceBuilder {
	if maxEvents <= 0 {
		maxEvents = 65536
	}
	return &TraceBuilder{
		domain: domain,
		tracks: make(map[uint64]*builderTrack),
		max:    maxEvents,
	}
}

// ProcessName names a pid's row in the trace UI.
func (b *TraceBuilder) ProcessName(pid int, name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.meta = append(b.meta, wireEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": name},
	})
}

// ThreadName names a (pid, tid) track.
func (b *TraceBuilder) ThreadName(pid, tid int, name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.meta = append(b.meta, wireEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// track returns (creating if needed) the state for (pid, tid), and clamps
// ts monotone against it. Callers hold b.mu.
func (b *TraceBuilder) track(pid, tid int, ts uint64) (*builderTrack, uint64) {
	k := trackKey(pid, tid)
	tc := b.tracks[k]
	if tc == nil {
		tc = &builderTrack{}
		b.tracks[k] = tc
	}
	if tc.sawTs && ts < tc.lastTs {
		ts = tc.lastTs
	}
	tc.lastTs, tc.sawTs = ts, true
	return tc, ts
}

// Begin opens a span on (pid, tid) at ts microseconds. args may be nil; the
// builder takes ownership of the map.
func (b *TraceBuilder) Begin(pid, tid int, name string, ts uint64, args map[string]any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) >= b.max {
		b.drops++
		return
	}
	tc, ts := b.track(pid, tid, ts)
	tc.open = append(tc.open, name)
	b.events = append(b.events, wireEvent{
		Name: name, Ph: "B", Ts: ts, Pid: pid, Tid: tid, Args: args,
	})
}

// End closes the innermost open span on (pid, tid) at ts. Ending a track
// with no open span is counted as a drop (the matching B was itself dropped
// or never emitted), never an invalid record.
func (b *TraceBuilder) End(pid, tid int, ts uint64, args map[string]any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := trackKey(pid, tid)
	tc := b.tracks[k]
	if tc == nil || len(tc.open) == 0 {
		b.drops++
		return
	}
	_, ts = b.track(pid, tid, ts)
	name := tc.open[len(tc.open)-1]
	tc.open = tc.open[:len(tc.open)-1]
	// E events are admitted past the cap: a capped trace must still have
	// every admitted B matched.
	b.events = append(b.events, wireEvent{
		Name: name, Ph: "E", Ts: ts, Pid: pid, Tid: tid, Args: args,
	})
}

// Instant records a point event on (pid, tid) at ts.
func (b *TraceBuilder) Instant(pid, tid int, name string, ts uint64, args map[string]any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) >= b.max {
		b.drops++
		return
	}
	_, ts = b.track(pid, tid, ts)
	b.events = append(b.events, wireEvent{
		Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, Args: args,
	})
}

// Counter records a counter sample (Perfetto renders a stepped area chart).
func (b *TraceBuilder) Counter(pid, tid int, name string, ts uint64, key string, val uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) >= b.max {
		b.drops++
		return
	}
	_, ts = b.track(pid, tid, ts)
	b.events = append(b.events, wireEvent{
		Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: tid,
		Args: map[string]any{key: val},
	})
}

// Events returns how many trace records are buffered.
func (b *TraceBuilder) Events() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped returns how many records were discarded at the event cap or as
// unmatched E events — a nonzero value means the trace is a sample.
func (b *TraceBuilder) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// WriteTrace serialises the current state as Chrome trace-event JSON: the
// clock_domain record, then metadata in registration order, then events in
// emission order, then synthesised E records (at each track's last
// timestamp) for spans still open — in the output only, so the builder
// keeps running and a later WriteTrace sees the spans still open.
func (b *TraceBuilder) WriteTrace(w io.Writer) error {
	b.mu.Lock()
	out := traceFile{DisplayTimeUnit: "ms"}
	out.TraceEvents = make([]wireEvent, 0, 1+len(b.meta)+len(b.events))
	out.TraceEvents = append(out.TraceEvents, domainMeta(b.domain))
	out.TraceEvents = append(out.TraceEvents, b.meta...)
	out.TraceEvents = append(out.TraceEvents, b.events...)
	// Deterministic closing order: walk events backwards and close each
	// track's open spans at first (reverse) encounter — no map iteration.
	closedPer := make(map[uint64]int, len(b.tracks))
	for i := len(b.events) - 1; i >= 0; i-- {
		ev := &b.events[i]
		k := trackKey(ev.Pid, ev.Tid)
		tc := b.tracks[k]
		if tc == nil {
			continue
		}
		if closedPer[k] < len(tc.open) {
			closedPer[k]++
			name := tc.open[len(tc.open)-closedPer[k]]
			out.TraceEvents = append(out.TraceEvents, wireEvent{
				Name: name, Ph: "E", Ts: tc.lastTs, Pid: ev.Pid, Tid: ev.Tid,
			})
		}
	}
	b.mu.Unlock()
	return writeTraceFile(w, &out)
}
