package telemetry

import (
	"fmt"
	"io"
	"sort"

	"dve/internal/stats"
)

// The metrics registry is a *named view* over the simulator's counter
// fields: registration binds a metric name to a closure reading the live
// value, so one registry built around a stats.Counters (or a serve.Server)
// can be snapshotted repeatedly without copying state around. Names follow
// Prometheus conventions ([a-zA-Z_][a-zA-Z0-9_]*, unit-suffixed).

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
	labeledGaugeKind
)

// kindNames is indexed by metricKind (array lookup keeps statecover quiet).
// A labeled gauge is still TYPE gauge on the wire — the label rides on each
// sample line, not on the type.
var kindNames = [4]string{"counter", "gauge", "histogram", "gauge"}

// LabeledValue is one sample of a labeled gauge: the per-node breakdown of
// a fleet metric (queue depth by worker, inflight by node).
type LabeledValue struct {
	Label string
	Value float64
}

type metric struct {
	name    string
	help    string
	kind    metricKind
	val     func() float64          // counterKind, gaugeKind
	hist    func() *stats.Histogram // histogramKind
	label   string                  // labeledGaugeKind: the label name
	labeled func() []LabeledValue   // labeledGaugeKind
}

// Registry holds named metrics in registration order (which is therefore
// the exposition and snapshot order — deterministic by construction).
type Registry struct {
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) add(m metric) {
	if !validName(m.name) {
		panic("telemetry: invalid metric name " + m.name)
	}
	if r.names[m.name] {
		panic("telemetry: duplicate metric " + m.name)
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a monotonically non-decreasing metric.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: counterKind, val: fn})
}

// Gauge registers a metric that can move both ways.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(metric{name: name, help: help, kind: gaugeKind, val: fn})
}

// Histogram registers a stats.Histogram-backed distribution. fn may return
// nil (exposed as an empty histogram).
func (r *Registry) Histogram(name, help string, fn func() *stats.Histogram) {
	r.add(metric{name: name, help: help, kind: histogramKind, hist: fn})
}

// LabeledGauge registers a gauge broken down by one label (per-node queue
// depth, per-worker inflight). fn returns the current sample set; its order
// is the exposition order, so callers return sorted slices for
// deterministic scrapes.
func (r *Registry) LabeledGauge(name, help, label string, fn func() []LabeledValue) {
	if !validName(label) {
		panic("telemetry: invalid label name " + label)
	}
	r.add(metric{name: name, help: help, kind: labeledGaugeKind, label: label, labeled: fn})
}

// escapeLabelValue applies Prometheus label-value escaping (backslash,
// double quote, newline).
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Histograms expose cumulative power-of-two
// buckets derived from stats.Histogram.Buckets().
func (r *Registry) WritePrometheus(w io.Writer) error {
	for i := range r.metrics {
		m := &r.metrics[i]
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, kindNames[m.kind]); err != nil {
			return err
		}
		if m.kind == labeledGaugeKind {
			for _, lv := range m.labeled() {
				if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %g\n",
					m.name, m.label, escapeLabelValue(lv.Label), lv.Value); err != nil {
					return err
				}
			}
			continue
		}
		if m.kind != histogramKind {
			if _, err := fmt.Fprintf(w, "%s %g\n", m.name, m.val()); err != nil {
				return err
			}
			continue
		}
		h := m.hist()
		var count, cum uint64
		var mean float64
		if h != nil {
			count = h.Count()
			mean = h.Mean()
			for _, b := range h.Buckets() {
				cum += b[1]
				// Buckets are [2^i, 2^(i+1)) — the upper edge is the le label.
				le := b[0] * 2
				if b[0] == 0 {
					le = 1
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m.name, le, cum); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", m.name, mean*float64(count), m.name, count); err != nil {
			return err
		}
	}
	return nil
}

// Sample is one snapshotted metric value.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time reading of a whole registry, in registration
// order — the shape embedded in result-cache envelopes.
type Snapshot []Sample

// Snapshot reads every metric. Histograms flatten to _count, _mean, _p50,
// _p99 and _max samples (the aggregate the sweep tables already consume).
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, 0, len(r.metrics))
	for i := range r.metrics {
		m := &r.metrics[i]
		if m.kind == labeledGaugeKind {
			for _, lv := range m.labeled() {
				out = append(out, Sample{
					Name:  fmt.Sprintf("%s{%s=%q}", m.name, m.label, lv.Label),
					Value: lv.Value,
				})
			}
			continue
		}
		if m.kind != histogramKind {
			out = append(out, Sample{Name: m.name, Value: m.val()})
			continue
		}
		h := m.hist()
		if h == nil {
			out = append(out, Sample{Name: m.name + "_count"})
			continue
		}
		out = append(out,
			Sample{Name: m.name + "_count", Value: float64(h.Count())},
			Sample{Name: m.name + "_mean", Value: h.Mean()},
			Sample{Name: m.name + "_p50", Value: float64(h.Percentile(50))},
			Sample{Name: m.name + "_p99", Value: float64(h.Percentile(99))},
			Sample{Name: m.name + "_max", Value: float64(h.Max())},
		)
	}
	return out
}

// Get returns the sample with the given name, or false. Linear scan — the
// snapshot is small and this is a test/reporting helper.
func (s Snapshot) Get(name string) (float64, bool) {
	for i := range s {
		if s[i].Name == name {
			return s[i].Value, true
		}
	}
	return 0, false
}

// Sorted returns a name-ordered copy (for table rendering).
func (s Snapshot) Sorted() Snapshot {
	out := make(Snapshot, len(s))
	copy(out, s)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CountersRegistry builds the standard named view over a run's
// stats.Counters. The closures read c live, so the registry can be built
// before the run and snapshotted after it.
func CountersRegistry(c *stats.Counters) *Registry {
	r := NewRegistry()
	u := func(p *uint64) func() float64 { return func() float64 { return float64(*p) } }

	r.Counter("dve_cycles_total", "simulated cycles in the measured ROI", u(&c.Cycles))
	r.Counter("dve_ops_total", "completed memory operations", u(&c.Ops))
	r.Counter("dve_reads_total", "read operations", u(&c.Reads))
	r.Counter("dve_writes_total", "write operations", u(&c.Writes))
	r.Counter("dve_l1_hits_total", "L1 hits", u(&c.L1Hits))
	r.Counter("dve_l1_misses_total", "L1 misses", u(&c.L1Misses))
	r.Counter("dve_llc_hits_total", "LLC hits", u(&c.LLCHits))
	r.Counter("dve_llc_misses_total", "LLC misses", u(&c.LLCMisses))
	r.Counter("dve_link_msgs_total", "inter-socket link messages", u(&c.LinkMsgs))
	r.Counter("dve_link_bytes_total", "inter-socket link bytes", u(&c.LinkBytes))
	r.Counter("dve_replica_dir_hits_total", "replica directory hits", u(&c.ReplicaDirHits))
	r.Counter("dve_replica_dir_misses_total", "replica directory misses", u(&c.ReplicaDirMisses))
	r.Counter("dve_replica_reads_total", "reads served by the replica copy", u(&c.ReplicaReads))
	r.Counter("dve_home_reads_total", "reads served by the home copy", u(&c.HomeReads))
	r.Counter("dve_spec_issued_total", "speculative home fetches issued", u(&c.SpecIssued))
	r.Counter("dve_spec_squashed_total", "speculative home fetches squashed", u(&c.SpecSquashed))
	r.Counter("dve_dual_writebacks_total", "dual writebacks (home + replica)", u(&c.DualWritebacks))
	r.Counter("dve_dram_reads_total", "DRAM read accesses", u(&c.DRAMReads))
	r.Counter("dve_dram_writes_total", "DRAM write accesses", u(&c.DRAMWrites))
	r.Counter("dve_dram_row_hits_total", "DRAM row-buffer hits", u(&c.RowHits))
	r.Counter("dve_dram_row_misses_total", "DRAM row-buffer misses", u(&c.RowMisses))
	r.Counter("dve_dram_busy_cycles_total", "cycles a DRAM channel was busy", u(&c.DRAMBusyCycles))
	r.Gauge("dve_dram_channels", "DRAM channels modeled",
		func() float64 { return float64(c.DRAMChannels) })
	r.Counter("dve_mem_latency_cycles_total", "summed end-to-end memory latency", u(&c.MemLatencySum))
	r.Counter("dve_mem_accesses_total", "memory accesses in the latency sum", u(&c.MemCount))
	r.Counter("dve_corrected_errors_total", "errors corrected in place", u(&c.CorrectedErrors))
	r.Counter("dve_detected_uncorrect_total", "detected-uncorrectable errors (DUE)", u(&c.DetectedUncorrect))
	r.Counter("dve_recoveries_total", "reads recovered via the replica", u(&c.Recoveries))
	r.Gauge("dve_degraded_lines", "lines serving from a single copy",
		func() float64 { return float64(c.DegradedLines) })
	r.Counter("dve_retried_reads_total", "reads retried after a detection", u(&c.RetriedReads))
	r.Counter("dve_retry_successes_total", "retries that cleared the error", u(&c.RetrySuccesses))
	r.Counter("dve_repair_writes_total", "repair writebacks", u(&c.RepairWrites))
	r.Counter("dve_repair_verify_fails_total", "repairs whose verify re-read failed", u(&c.RepairVerifyFails))
	r.Gauge("dve_pages_retired", "pages retired from service",
		func() float64 { return float64(c.PagesRetired) })
	r.Counter("dve_degraded_reads_total", "reads served while degraded", u(&c.DegradedReads))
	r.Counter("dve_socket_kills_total", "memory-controller kill events", u(&c.SocketKills))
	r.Counter("dve_demoted_lines_total", "lines demoted out of replication", u(&c.DemotedLines))
	r.Counter("dve_silent_corruptions_total", "reads that consumed corrupt data undetected", u(&c.SilentCorruptions))
	r.Counter("dve_hammer_crossings_total", "rows whose activation count crossed the hammer threshold", u(&c.HammerCrossings))
	r.Counter("dve_hammer_flips_total", "bitflips injected into hammered victim rows", u(&c.HammerFlips))
	r.Counter("dve_hammer_detected_total", "hammer flips first detected by a read or scrub", u(&c.HammerDetected))
	r.Counter("dve_hammer_detect_latency_cycles_total", "summed inject-to-first-detect cycles", u(&c.HammerDetectLatency))
	r.Counter("dve_hammer_corrupt_reads_total", "detected-uncorrectable reads of hammer-flipped lines", u(&c.HammerCorruptReads))
	r.Counter("dve_hammer_repairs_total", "hammer flips healed by a verified repair", u(&c.HammerRepairs))
	r.Counter("dve_epochs_allow_total", "epochs spent in allow mode", u(&c.EpochsAllow))
	r.Counter("dve_epochs_deny_total", "epochs spent in deny mode", u(&c.EpochsDeny))
	r.Counter("sim_epochs_total", "parallel-engine lookahead windows executed (0 on the legacy engine)", u(&c.EngineEpochs))
	r.Counter("sim_barrier_stalls_total", "partition-epochs idle at the barrier (load-imbalance signal)", u(&c.EngineBarrierStalls))
	r.Counter("dve_trace_dropped_total", "trace events discarded by span-lane exhaustion (nonzero means the trace is a sample)", u(&c.TraceDropped))
	r.Counter("dve_flight_dumps_total", "flight-recorder dumps taken (each marks an invariant violation or socket-kill report)", u(&c.FlightDumps))
	r.Histogram("dve_miss_latency_cycles", "LLC miss latency distribution",
		func() *stats.Histogram { return &c.MissLatency })
	return r
}

// CountersSnapshot is the one-shot form: the named view of c right now.
func CountersSnapshot(c *stats.Counters) Snapshot {
	return CountersRegistry(c).Snapshot()
}
