package telemetry

import (
	"flag"
	"os"
	"testing"
)

// validateTrace points at a trace-event JSON file produced by a real
// simulator run (dvesim -trace-events). CI captures a quick-scale trace
// and re-invokes this test binary with the flag set; without it the test
// skips, so `go test ./...` stays hermetic.
var validateTrace = flag.String("validate-trace", "",
	"path to a Chrome trace-event JSON file to parse and validate")

// validateDomain optionally pins the clock domain the trace must declare:
// "sim" for simulator traces, "wall" for fabric lifecycle traces.
var validateDomain = flag.String("validate-domain", "",
	"clock domain the -validate-trace file must declare (sim or wall)")

// validateProm points at a captured /metrics/prom scrape; CI feeds the
// chaos fabric's exposition through the format validator.
var validateProm = flag.String("validate-prom", "",
	"path to a Prometheus text exposition file to validate")

func TestValidateExternalTrace(t *testing.T) {
	if *validateTrace == "" {
		t.Skip("no -validate-trace file given")
	}
	f, err := os.Open(*validateTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("parse %s: %v", *validateTrace, err)
	}
	if len(evs) == 0 {
		t.Fatalf("%s contains no trace events", *validateTrace)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("validate %s: %v", *validateTrace, err)
	}
	if *validateDomain != "" {
		if err := ValidateTraceDomain(evs, *validateDomain); err != nil {
			t.Fatalf("validate %s: %v", *validateTrace, err)
		}
	}
	t.Logf("%s: %d events, domain %q, all tracks monotone, all spans matched",
		*validateTrace, len(evs), TraceDomain(evs))
}

func TestValidatePromExposition(t *testing.T) {
	if *validateProm == "" {
		t.Skip("no -validate-prom file given")
	}
	f, err := os.Open(*validateProm)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ValidateExposition(f); err != nil {
		t.Fatalf("validate %s: %v", *validateProm, err)
	}
	t.Logf("%s: valid Prometheus text exposition", *validateProm)
}
