package dve

import (
	"bytes"
	"encoding/json"
	"testing"

	"dve/internal/topology"
	"dve/internal/workload"
)

// Cross-engine equivalence: the partitioned engine (serial or parallel) is a
// different *execution* of the same simulation, so it must be byte-identical
// to itself regardless of worker count, and the legacy fallback must engage
// exactly when documented. These tests are the contract that lets cache keys
// treat "partitioned" as one universe.

// equivProtocols is every protocol family. Dynamic is included on purpose:
// it is not partitionable, so both legs fall back to legacy — the identity
// then pins that the fallback itself is deterministic.
var equivProtocols = []topology.Protocol{
	topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
	topology.ProtoDynamic, topology.ProtoIntelMirror,
}

// fingerprint reduces a run to the bytes that must match across engine
// executions: the ROI length, the executed engine label, the full counter
// set, and the telemetry snapshot (the CountersSnapshot view that cache
// envelopes and sweep reports carry). Workers is deliberately excluded —
// it is host-side cost metadata, the one field allowed to differ.
func fingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Engine   string
		Cycles   uint64
		Counters any
		Metrics  any
	}{res.Engine, res.Cycles, res.Counters, res.Metrics})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runEngine(t *testing.T, spec workload.Spec, p topology.Protocol, mode EngineMode, warmup, measure uint64) *Result {
	t.Helper()
	res, err := Run(spec, RunConfig{
		Cfg:        topology.Default(p),
		WarmupOps:  warmup,
		MeasureOps: measure,
		Engine:     mode,
		Classify:   p == topology.ProtoBaseline,
	})
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", spec.Name, p, mode, err)
	}
	return res
}

// TestEngineEquivalenceMatrix sweeps every Table III workload under every
// protocol and demands byte-identical results from serial and parallel
// execution. The per-cell op budget is kept small so the 20×5 matrix stays
// a tier-1 test; TestEngineEquivalenceQuickCells covers the full quick
// scale on a spot-check subset. -short trims the sweep to a diverse corner.
func TestEngineEquivalenceMatrix(t *testing.T) {
	specs := workload.Suite(16)
	protos := equivProtocols
	warmup, measure := uint64(10_000), uint64(30_000)
	if testing.Short() {
		specs = specs[:4]
		protos = []topology.Protocol{topology.ProtoAllow, topology.ProtoDeny}
	}
	for _, spec := range specs {
		for _, p := range protos {
			spec, p := spec, p
			t.Run(spec.Name+"/"+p.String(), func(t *testing.T) {
				serial := runEngine(t, spec, p, EngineSerial, warmup, measure)
				par := runEngine(t, spec, p, EngineParallel, warmup, measure)
				if p == topology.ProtoDynamic {
					// Not partitionable: both legs must have fallen back.
					if serial.Engine != "legacy" || par.Engine != "legacy" {
						t.Fatalf("dynamic ran on %s/%s, want legacy fallback",
							serial.Engine, par.Engine)
					}
				} else {
					if serial.Engine != "partitioned" || par.Engine != "partitioned" {
						t.Fatalf("engines %s/%s, want partitioned", serial.Engine, par.Engine)
					}
					if par.Workers <= 1 {
						t.Fatalf("parallel ran with %d workers", par.Workers)
					}
				}
				fs, fp := fingerprint(t, serial), fingerprint(t, par)
				if !bytes.Equal(fs, fp) {
					t.Errorf("serial and parallel diverged:\nserial:   %s\nparallel: %s", fs, fp)
				}
			})
		}
	}
}

// TestEngineEquivalenceQuickCells re-checks the identity at the real Quick
// experiment scale (the scale CI's bench smoke and the cached sweeps run
// at) on a contrasting subset, so a divergence that only opens up beyond
// the matrix test's small budget still gets caught.
func TestEngineEquivalenceQuickCells(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale cells take ~1s each")
	}
	cells := []struct {
		workload string
		protocol topology.Protocol
	}{
		{"fft", topology.ProtoDeny},
		{"graph500", topology.ProtoAllow},
		{"canneal", topology.ProtoBaseline},
	}
	for _, c := range cells {
		c := c
		t.Run(c.workload+"/"+c.protocol.String(), func(t *testing.T) {
			spec, ok := workload.ByName(c.workload, 16)
			if !ok {
				t.Fatalf("unknown workload %q", c.workload)
			}
			serial := runEngine(t, spec, c.protocol, EngineSerial, 50_000, 120_000)
			par := runEngine(t, spec, c.protocol, EngineParallel, 50_000, 120_000)
			fs, fp := fingerprint(t, serial), fingerprint(t, par)
			if !bytes.Equal(fs, fp) {
				t.Errorf("quick cell diverged:\nserial:   %s\nparallel: %s", fs, fp)
			}
		})
	}
}

// TestParallelRunTwiceDeterminism runs the same cell twice on the parallel
// engine and demands byte-identical results: worker goroutines may race the
// host scheduler, but the mailbox merge rule (when, src, send order) makes
// the simulation's event order — and so every statistic — a pure function
// of the inputs. The race CI job runs this test under -race, which turns
// any unsynchronized cross-partition access into a hard failure.
func TestParallelRunTwiceDeterminism(t *testing.T) {
	spec := smallSpec("graph500")
	first := runEngine(t, spec, topology.ProtoDeny, EngineParallel, 20_000, 60_000)
	second := runEngine(t, spec, topology.ProtoDeny, EngineParallel, 20_000, 60_000)
	f1, f2 := fingerprint(t, first), fingerprint(t, second)
	if !bytes.Equal(f1, f2) {
		t.Errorf("parallel run not reproducible:\nfirst:  %s\nsecond: %s", f1, f2)
	}
	if first.Counters.EngineEpochs == 0 {
		t.Error("partitioned run recorded no sync epochs")
	}
}

// TestLegacyFallbackConfigs pins the partitionable() contract: each
// disqualifying feature forces the legacy engine even when parallel was
// requested, and the pre-run ExecutedEngine prediction (which cache keys
// rely on) agrees with what actually executed.
func TestLegacyFallbackConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(rc *RunConfig)
	}{
		{"dynamic-protocol", func(rc *RunConfig) { rc.Cfg = topology.Default(topology.ProtoDynamic) }},
		{"oracular", func(rc *RunConfig) { rc.Cfg.Oracular = true }},
		{"scrubbing", func(rc *RunConfig) { rc.ScrubIntervalCyc = 100_000 }},
		{"fault-injection", func(rc *RunConfig) {
			rc.FaultFn = func(socket int, a topology.Addr) bool { return false }
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rc := RunConfig{
				Cfg:        topology.Default(topology.ProtoDeny),
				WarmupOps:  2_000,
				MeasureOps: 5_000,
				Engine:     EngineParallel,
			}
			c.mut(&rc)
			if got := rc.ExecutedEngine(); got != "legacy" {
				t.Fatalf("ExecutedEngine() = %q, want legacy", got)
			}
			res, err := Run(smallSpec("fft"), rc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Engine != "legacy" {
				t.Fatalf("executed on %q, want legacy", res.Engine)
			}
			if res.Workers != 1 {
				t.Fatalf("legacy fallback used %d workers", res.Workers)
			}
		})
	}
	// And the positive case: a plain deny run on the parallel engine is
	// predicted and executed as partitioned.
	rc := RunConfig{Cfg: topology.Default(topology.ProtoDeny), WarmupOps: 2_000,
		MeasureOps: 5_000, Engine: EngineParallel}
	if got := rc.ExecutedEngine(); got != "partitioned" {
		t.Fatalf("ExecutedEngine() = %q, want partitioned", got)
	}
}

// TestParseEngineModeRoundTrip pins flag spellings.
func TestParseEngineModeRoundTrip(t *testing.T) {
	for _, m := range []EngineMode{EngineAuto, EngineSerial, EngineParallel, EngineLegacy} {
		got, err := ParseEngineMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseEngineMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseEngineMode("warp-drive"); err == nil {
		t.Error("bogus mode accepted")
	}
	if m, err := ParseEngineMode(""); err != nil || m != EngineAuto {
		t.Errorf("empty mode = %v, %v; want auto", m, err)
	}
}
