package dve

import (
	"testing"

	"dve/internal/coherence"
	"dve/internal/topology"
)

// Direct unit tests of the replica directory against a real system, driving
// individual accesses rather than whole workloads.

func newSystem(t *testing.T, p topology.Protocol, mode Mode) (*coherence.System, []*ReplicaDir) {
	t.Helper()
	cfg := topology.Default(p)
	sys, err := coherence.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rds := []*ReplicaDir{New(sys, 0, mode), New(sys, 1, mode)}
	return sys, rds
}

func do(t *testing.T, sys *coherence.System, core int, write bool, a topology.Addr) {
	t.Helper()
	ok := false
	sys.Access(core, write, a, func() { ok = true })
	sys.Engs[0].Run()
	if !ok {
		t.Fatalf("access %#x never completed", a)
	}
}

// remoteAddr returns an address homed on socket 0 (so cores of socket 1 are
// replica-side requesters).
const remoteAddr = topology.Addr(0)

func TestDenyFirstReadIsLinkFree(t *testing.T) {
	sys, _ := newSystem(t, topology.ProtoDeny, Deny)
	sys.Link.Reset()
	// Core 8 (socket 1) reads a socket-0-homed line: under deny, absence of
	// an entry means readable — zero link messages.
	do(t, sys, 8, false, remoteAddr)
	if sys.Link.Msgs() != 0 {
		t.Fatalf("deny first read crossed the link (%d msgs)", sys.Link.Msgs())
	}
	if sys.Cnts[0].ReplicaReads != 1 {
		t.Fatalf("replica reads = %d, want 1", sys.Cnts[0].ReplicaReads)
	}
}

func TestAllowFirstReadPullsPermission(t *testing.T) {
	sys, _ := newSystem(t, topology.ProtoAllow, Allow)
	sys.Link.Reset()
	do(t, sys, 8, false, remoteAddr)
	// Allow must ask home: one control message each way.
	if sys.Link.Msgs() != 2 {
		t.Fatalf("allow first read sent %d link msgs, want 2 (ctrl pull)", sys.Link.Msgs())
	}
	// But the data itself came from the local replica.
	if sys.Cnts[0].ReplicaReads != 1 {
		t.Fatalf("replica reads = %d, want 1", sys.Cnts[0].ReplicaReads)
	}
	// Second read: the entry is cached; fully local.
	msgs := sys.Link.Msgs()
	do(t, sys, 9, false, remoteAddr) // other core, same socket, L1 miss, LLC hit
	do(t, sys, 8, false, remoteAddr+64)
	_ = msgs
}

func TestSpeculativeReadAccounting(t *testing.T) {
	sys, _ := newSystem(t, topology.ProtoAllow, Allow)
	do(t, sys, 8, false, remoteAddr)
	if sys.Cnts[0].SpecIssued != 1 {
		t.Fatalf("spec issued = %d, want 1", sys.Cnts[0].SpecIssued)
	}
	if sys.Cnts[0].SpecSquashed != 0 {
		t.Fatalf("clean pull squashed %d", sys.Cnts[0].SpecSquashed)
	}
	// Make the home side dirty; the next replica-side read must squash its
	// speculative local read (data ships over the link).
	do(t, sys, 0, true, remoteAddr+128)
	do(t, sys, 8, false, remoteAddr+128)
	if sys.Cnts[0].SpecSquashed != 1 {
		t.Fatalf("squashed = %d, want 1 (home-dirty pull)", sys.Cnts[0].SpecSquashed)
	}
}

func TestNoSpeculationWhenDisabled(t *testing.T) {
	cfg := topology.Default(topology.ProtoAllow)
	cfg.SpeculativeReads = false
	sys, err := coherence.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	New(sys, 0, Allow)
	New(sys, 1, Allow)
	do(t, sys, 8, false, remoteAddr)
	if sys.Cnts[0].SpecIssued != 0 {
		t.Fatal("speculation issued despite being disabled")
	}
}

func TestReplicaSideWriteSerializesAtHome(t *testing.T) {
	sys, _ := newSystem(t, topology.ProtoDeny, Deny)
	sys.Link.Reset()
	do(t, sys, 8, true, remoteAddr) // replica-side write
	if sys.Link.Msgs() < 2 {
		t.Fatal("replica-side write did not consult the home directory")
	}
	// The home directory now records the replica side as owner.
	st, owner, _ := sys.Dirs[0].Entry(sys.AMap.LineOf(remoteAddr))
	if st.String() != "M" || owner != 1 {
		t.Fatalf("home dir after replica-side write: %v/%d, want M/1", st, owner)
	}
}

func TestDualWritebackOnReplicaEviction(t *testing.T) {
	sys, _ := newSystem(t, topology.ProtoDeny, Deny)
	do(t, sys, 8, true, remoteAddr)
	// Force the dirty line out of socket 1's LLC.
	setStride := uint64(sys.Cfg.LLCSizeBytes / sys.Cfg.LLCWays)
	for i := 1; i <= sys.Cfg.LLCWays+1; i++ {
		do(t, sys, 8, false, remoteAddr+topology.Addr(uint64(i)*setStride*2))
	}
	if sys.Cnts[0].DualWritebacks == 0 {
		t.Fatal("replica-side dirty eviction skipped the dual writeback")
	}
	// Both memory controllers saw the write.
	if sys.MCs[0].Writes == 0 || sys.MCs[1].Writes == 0 {
		t.Fatalf("writes reached %d/%d controllers", sys.MCs[0].Writes, sys.MCs[1].Writes)
	}
}

func TestDenyRMBlocksReplicaRead(t *testing.T) {
	sys, _ := newSystem(t, topology.ProtoDeny, Deny)
	// Home-side write installs RM at the replica directory.
	do(t, sys, 0, true, remoteAddr)
	sys.Link.Reset()
	before := sys.Cnts[0].ReplicaReads
	// Replica-side read must fetch through home (RM: replica stale).
	do(t, sys, 8, false, remoteAddr)
	if sys.Cnts[0].ReplicaReads != before {
		t.Fatal("stale replica served a read while RM")
	}
	if sys.Link.Msgs() == 0 {
		t.Fatal("RM read did not go to home")
	}
}

func TestModeSwitchPreservesSafety(t *testing.T) {
	sys, rds := newSystem(t, topology.ProtoDeny, Deny)
	// Home side holds a line dirty.
	do(t, sys, 0, true, remoteAddr)
	// Switch both replica directories to allow.
	pending := 2
	for _, rd := range rds {
		rd.SetMode(Allow, func() { pending-- })
	}
	sys.Engs[0].Run()
	if pending != 0 {
		t.Fatal("mode switch never completed")
	}
	if rds[1].Mode() != Allow {
		t.Fatal("mode not switched")
	}
	// A replica-side read after the switch must NOT serve stale replica
	// data: allow mode requires a pull, which fetches from the dirty owner.
	before := sys.Cnts[0].ReplicaReads
	do(t, sys, 8, false, remoteAddr)
	if sys.Cnts[0].ReplicaReads != before {
		t.Fatal("allow served the replica for a home-dirty line after a mode switch")
	}
	// And switching back to deny rebuilds the RM set from home state.
	pending = 2
	for _, rd := range rds {
		rd.SetMode(Deny, func() { pending-- })
	}
	sys.Engs[0].Run()
	if pending != 0 {
		t.Fatal("switch back never completed")
	}
}

func TestCoarseGrainRegionGrantAndInvalidate(t *testing.T) {
	cfg := topology.Default(topology.ProtoAllow)
	cfg.CoarseGrain = true
	sys, err := coherence.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	New(sys, 0, Allow)
	New(sys, 1, Allow)

	// First replica-side read acquires a whole-region grant.
	do(t, sys, 8, false, remoteAddr)
	misses := sys.Cnts[0].ReplicaDirMisses
	// Another line of the same 4KB region: region hit, no second pull.
	do(t, sys, 8, false, remoteAddr+640)
	if sys.Cnts[0].ReplicaDirMisses != misses {
		t.Fatal("second line of a granted region missed")
	}
	// A home-side write anywhere in the region revokes it.
	do(t, sys, 0, true, remoteAddr+128)
	do(t, sys, 8, false, remoteAddr+1280)
	if sys.Cnts[0].ReplicaDirMisses == misses {
		t.Fatal("region survived a home-side exclusive request")
	}
}

func TestOracularNeverWorseAccounting(t *testing.T) {
	cfg := topology.Default(topology.ProtoAllow)
	cfg.Oracular = true
	sys, err := coherence.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	New(sys, 0, Allow)
	New(sys, 1, Allow)
	sys.Link.Reset()
	do(t, sys, 8, false, remoteAddr)
	// Oracle read of a clean line: no link traffic at all.
	if sys.Link.Msgs() != 0 {
		t.Fatalf("oracle clean read crossed the link (%d msgs)", sys.Link.Msgs())
	}
	// But a home-dirty line still pays the unavoidable fetch.
	do(t, sys, 0, true, remoteAddr+128)
	sys.Link.Reset()
	do(t, sys, 8, false, remoteAddr+128)
	if sys.Link.Msgs() == 0 {
		t.Fatal("oracle read of a dirty line cannot be free")
	}
}
