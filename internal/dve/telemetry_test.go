package dve

import (
	"bytes"
	"encoding/json"
	"testing"

	"dve/internal/telemetry"
	"dve/internal/topology"
)

// runTraced runs a small workload with an optional tracer attached.
func runTraced(t *testing.T, tr *telemetry.Tracer) *Result {
	t.Helper()
	rc := RunConfig{
		Cfg:        topology.Default(topology.ProtoDeny),
		WarmupOps:  10_000,
		MeasureOps: 30_000,
		// Tracing binds one engine, so a traced run always falls back to
		// the legacy engine; pin the untraced comparison leg to the same
		// engine or the no-perturbation diff would compare across engines.
		Engine:    EngineLegacy,
		Telemetry: tr,
	}
	res, err := Run(smallSpec("fft"), rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracingDoesNotPerturbStats pins the no-perturbation contract: a run
// with full tracing enabled produces byte-identical counters to the same
// run untraced. The tracer only observes — it never schedules events or
// reorders the simulation.
func TestTracingDoesNotPerturbStats(t *testing.T) {
	plain := runTraced(t, nil)
	tr := telemetry.NewTracer(telemetry.Options{TraceEvents: true, FlightRecorderLines: 256})
	traced := runTraced(t, tr)

	pb, err := json.Marshal(plain.Counters)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := json.Marshal(traced.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, tb) {
		t.Errorf("tracing perturbed the run:\nuntraced: %s\ntraced:   %s", pb, tb)
	}
	if plain.Cycles != traced.Cycles {
		t.Errorf("ROI cycles differ: untraced %d, traced %d", plain.Cycles, traced.Cycles)
	}
	if tr.Events() == 0 {
		t.Error("traced run emitted no events")
	}
}

// TestTracedRunEmitsValidTrace round-trips a real simulation's trace
// through the parser and validator: well-formed JSON, per-track monotone
// timestamps, every B matched by an E.
func TestTracedRunEmitsValidTrace(t *testing.T) {
	tr := telemetry.NewTracer(telemetry.Options{TraceEvents: true})
	runTraced(t, tr)

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(evs); err != nil {
		t.Fatal(err)
	}
	// A real run exercises every pillar: spans (directory transactions),
	// complete events (DRAM/link), and instants (fills).
	phases := map[string]int{}
	for _, ev := range evs {
		phases[ev.Ph]++
	}
	for _, ph := range []string{"B", "E", "X", "i", "M"} {
		if phases[ph] == 0 {
			t.Errorf("trace has no %q events (got %v)", ph, phases)
		}
	}
	if tr.Dropped() > 0 {
		t.Logf("note: %d events dropped (lane exhaustion)", tr.Dropped())
	}
}

// TestResultCarriesMetricsSnapshot checks that every Run result includes
// the named-metrics view of its counters, ready for the result-cache
// envelope.
func TestResultCarriesMetricsSnapshot(t *testing.T) {
	res := runTraced(t, nil)
	if len(res.Metrics) == 0 {
		t.Fatal("result has no metrics snapshot")
	}
	v, ok := res.Metrics.Get("dve_ops_total")
	if !ok {
		t.Fatal("snapshot missing dve_ops_total")
	}
	if uint64(v) != res.Counters.Ops {
		t.Errorf("dve_ops_total = %v, counters say %d", v, res.Counters.Ops)
	}
}
