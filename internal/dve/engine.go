package dve

import (
	"fmt"
	"runtime"

	"dve/internal/topology"
)

// EngineMode selects how the simulation engine executes a run.
//
// The partitioned engine splits the machine at the socket boundary: each
// socket's events run on their own calendar queue, synchronized at
// link-latency epochs (conservative lookahead — no cross-socket message
// can arrive sooner than the link's minimum latency, so partitions may
// safely run a window of that size without consulting each other). Serial
// and parallel are the *same* partitioned simulation — they differ only in
// how many worker goroutines execute the partition queues, and produce
// byte-identical statistics. Legacy is the original single-queue engine;
// it interleaves cross-socket events differently (one global tie-break
// order instead of the mailbox merge rule), so its results are internally
// consistent but not comparable event-for-event with the partitioned ones.
type EngineMode int

const (
	// EngineAuto partitions when the configuration allows it and uses
	// worker goroutines when GOMAXPROCS offers real parallelism.
	EngineAuto EngineMode = iota
	// EngineSerial runs the partitioned simulation on one goroutine.
	EngineSerial
	// EngineParallel runs the partitioned simulation with one worker per
	// socket even when GOMAXPROCS is 1 (real goroutines, no speedup) —
	// equivalence and race tests use it to exercise the concurrent path.
	EngineParallel
	// EngineLegacy forces the original single-queue engine.
	EngineLegacy
)

// String returns the flag spelling of the mode.
func (m EngineMode) String() string {
	switch m {
	case EngineAuto:
		return "auto"
	case EngineSerial:
		return "serial"
	case EngineParallel:
		return "parallel"
	case EngineLegacy:
		return "legacy"
	default:
		// The zero value is EngineAuto, so any other out-of-range value
		// was manufactured deliberately.
		panic(fmt.Sprintf("dve: invalid EngineMode %d", int(m)))
	}
}

// ParseEngineMode parses a -engine flag value.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "serial":
		return EngineSerial, nil
	case "parallel":
		return EngineParallel, nil
	case "legacy":
		return EngineLegacy, nil
	}
	return EngineAuto, fmt.Errorf("dve: unknown engine mode %q (want auto, serial, parallel or legacy)", s)
}

// partitionable reports whether the run can use the per-socket partitioned
// engine. The disqualifiers are features that inherently bind a single
// global event order or shared mutable state:
//   - telemetry tracing attaches one engine and one timeline;
//   - fault injection, Prepare hooks and RAS campaigns mutate shared fault
//     state from arbitrary sockets;
//   - patrol scrubbing walks every socket's directory from one daemon;
//   - external op sources are not required to be concurrency-safe;
//   - the flexible replica map is consulted from both sockets;
//   - the dynamic protocol's controller samples a global clock;
//   - the oracular replica directory reads remote directory state with
//     zero latency (a direct cross-partition peek).
//
// Such runs silently use the legacy engine instead — same results as every
// release to date, just without the parallel speedup.
func partitionable(rc *RunConfig, cfg *topology.Config) bool {
	return cfg.Sockets == 2 &&
		cfg.InterSocketCyc() >= 1 &&
		!cfg.Oracular &&
		cfg.Protocol != topology.ProtoDynamic &&
		rc.Telemetry == nil &&
		rc.Faults == nil &&
		rc.FaultFn == nil &&
		rc.Prepare == nil &&
		rc.ScrubIntervalCyc == 0 &&
		rc.Source == nil &&
		rc.ReplicaMap == nil
}

// resolveEngine decides the executed engine for a requested mode: whether
// to partition, and with how many worker goroutines.
func resolveEngine(mode EngineMode, rc *RunConfig, cfg *topology.Config) (partitioned bool, workers int) {
	if mode == EngineLegacy || !partitionable(rc, cfg) {
		return false, 1
	}
	switch mode {
	case EngineParallel:
		return true, cfg.Sockets
	case EngineSerial:
		return true, 1
	case EngineAuto, EngineLegacy:
		// Legacy was diverted above; auto partitions and spends worker
		// goroutines only when the host scheduler can actually run them
		// concurrently (on one CPU they would just add handoff latency).
		if runtime.GOMAXPROCS(0) > 1 {
			return true, cfg.Sockets
		}
		return true, 1
	default:
		panic(fmt.Sprintf("dve: invalid EngineMode %d", int(mode)))
	}
}

// ExecutedEngine reports the engine family a RunConfig will execute:
// "partitioned" or "legacy". Cache keys use this label rather than the
// requested mode because serial and parallel execution of the partitioned
// engine produce byte-identical results (one universe), while legacy is a
// separate one.
func (rc *RunConfig) ExecutedEngine() string {
	cfg := rc.Cfg
	if partitioned, _ := resolveEngine(rc.Engine, rc, &cfg); partitioned {
		return "partitioned"
	}
	return "legacy"
}
