package dve

import (
	"fmt"

	"dve/internal/coherence"
	"dve/internal/fault"
	"dve/internal/sim"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

// RunConfig controls a simulation run.
type RunConfig struct {
	Cfg topology.Config
	// WarmupOps memory operations (summed over threads) warm caches and
	// metadata before the region of interest; MeasureOps are then simulated
	// in detail (Section VI "Workloads").
	WarmupOps  uint64
	MeasureOps uint64
	// Engine selects the execution engine (EngineAuto partitions per socket
	// when the configuration allows it; see EngineMode).
	Engine EngineMode
	// Classify enables Fig 7 sharing-pattern classification (normally only
	// on baseline runs).
	Classify bool
	// FaultFn, when set, is installed on both memory controllers to inject
	// detected-uncorrectable local ECC failures.
	FaultFn func(socket int, a topology.Addr) bool
	// Faults, when set, wires the full dynamic fault model: ReadFails as
	// the controllers' fault predicate and Repair as the recovery path's
	// repair hook, so repair writes actually clear transient faults.
	// FaultFn, when also set, takes precedence for the predicate.
	Faults *fault.Set
	// Prepare, when set, runs after the system (and replica directories)
	// are built but before any thread issues. RAS engines use it to attach
	// journal observers and schedule dynamic fault arrivals or socket-kill
	// events on the simulation engine.
	Prepare func(sys *coherence.System)
	// ReplicaMap, when set, replaces the fixed-function mapping with the
	// flexible RMT: only mapped pages are replicated (Section V-D).
	ReplicaMap coherence.ReplicaMapper
	// Source, when set, replaces the synthetic generator with an external
	// operation source (e.g. a recorded trace, package trace).
	Source OpSource
	// ScrubIntervalCyc enables patrol scrubbing with the given tick period
	// (0 = off); ScrubBatch lines are scrubbed per directory per tick.
	ScrubIntervalCyc uint64
	ScrubBatch       int
	// Telemetry, when set, is wired through the system before any event is
	// scheduled: protocol spans, the flight recorder, and the engine's
	// queue-depth counter all report into it. It only observes — the run's
	// statistics are byte-identical with or without it.
	Telemetry *telemetry.Tracer
}

// OpSource supplies per-thread operation streams; both the synthetic
// workload generator and trace.Source implement it.
type OpSource interface {
	Next(tid int) workload.Op
}

// Result is the outcome of one simulation run.
type Result struct {
	Workload string
	Protocol topology.Protocol
	// Engine records the engine that actually executed the run: "legacy"
	// (single global event queue) or "partitioned" (per-socket queues with
	// link-latency lookahead). Serial and parallel execution of the
	// partitioned engine produce byte-identical results, so they share the
	// label; legacy orders cross-socket ties differently and is a distinct
	// statistics universe.
	Engine string
	// Workers is how many goroutines executed the engine (1 for legacy and
	// serial partitioned runs). It never affects the statistics — only the
	// host-side cost — and perf reports record it next to wall time.
	Workers int
	// Cycles is the region-of-interest duration.
	Cycles uint64
	// Counters are the ROI statistics (link traffic, classes, DRAM, ...).
	Counters stats.Counters
	// InvariantViolations is the post-run coherence audit (SWMR, directory
	// agreement, inclusion); it must be empty for a correct protocol.
	InvariantViolations []string
	// Metrics is the named view of Counters (the telemetry registry
	// snapshot) embedded in result-cache envelopes and sweep reports.
	Metrics telemetry.Snapshot `json:"metrics"`
	// FlightDump holds the flight recorder's recent protocol events when
	// the run ended with invariant violations and a recorder was armed
	// (nil otherwise) — the timeline to read instead of printf archaeology.
	FlightDump []telemetry.FlightEvent `json:"flight_dump,omitempty"`
}

// barrierLatency approximates the synchronization cost of a barrier episode.
const barrierLatency = 100

// group is the per-partition slice of the runner: the threads of one
// socket, their op budget and ROI window, and the local half of the
// barrier protocol. The legacy engine runs one group holding every thread
// (reproducing the original single-queue behavior exactly); the
// partitioned engine runs one group per socket, each touching only its own
// partition's engine and counter shard.
type group struct {
	r       *runner
	id      int // socket index (0 in legacy single-group mode)
	eng     *sim.Engine
	cnt     *stats.Counters
	nthr    int // threads in this group
	budget  uint64
	warmup  uint64
	ops     uint64
	inROI   bool
	roiStart  sim.Cycle
	roiCycles uint64

	// Local barrier state: arrivals park here until every thread of the
	// group is in, then the group reports to the global coordinator.
	barWaiting int
	barResume  []func()
}

// runner drives one workload through one system configuration.
type runner struct {
	sys    *coherence.System
	gen    OpSource
	rc     RunConfig
	rds    []*ReplicaDir
	cfg    *topology.Config
	nthr   int
	groups []*group

	// threads holds one reusable issue record per hardware thread, so the
	// steady-state compute->access->repeat loop allocates nothing per op.
	threads []*thread

	// barGroups counts groups fully arrived at the current barrier; the
	// coordinator (group 0's partition) releases everyone when all are in.
	barGroups int

	// dynamic protocol state (legacy engine only).
	dynamic *dynamicCtl
}

// Run simulates a workload under the given configuration and returns the
// region-of-interest results.
func Run(spec workload.Spec, rc RunConfig) (*Result, error) {
	if rc.MeasureOps == 0 {
		return nil, fmt.Errorf("dve: MeasureOps must be positive")
	}
	if spec.Threads != rc.Cfg.TotalCores() {
		spec.Threads = rc.Cfg.TotalCores()
	}
	var gen OpSource
	if rc.Source != nil {
		gen = rc.Source
	} else {
		g, err := workload.NewGenerator(spec)
		if err != nil {
			return nil, err
		}
		gen = g
	}
	cfg := rc.Cfg
	// Auto-scale the dynamic protocol's sampling to the run length: the
	// paper profiles each scheme for 100M instructions every 1B (a 1:10
	// ratio); we sample 1/20 of the ROI per scheme each quarter-ROI epoch.
	if cfg.SampleOps == 0 {
		cfg.SampleOps = rc.MeasureOps / 20
		if cfg.SampleOps == 0 {
			cfg.SampleOps = 1
		}
	}
	if cfg.EpochOps == 0 {
		cfg.EpochOps = rc.MeasureOps / 4
		if cfg.EpochOps == 0 {
			cfg.EpochOps = 1
		}
	}
	if cfg.FootprintHintLines == 0 && spec.FootprintMB > 0 && cfg.LineSizeBytes > 0 {
		cfg.FootprintHintLines = spec.FootprintMB << 20 / cfg.LineSizeBytes
	}
	partitioned, workers := resolveEngine(rc.Engine, &rc, &cfg)
	var (
		sys *coherence.System
		pe  *sim.ParallelEngine
		err error
	)
	if partitioned {
		// The lookahead window is the link's minimum sender-to-delivery
		// distance: one serialization cycle plus the propagation latency.
		window := sim.Cycle(cfg.InterSocketCyc()) + 1
		pe = sim.NewParallelEngine(cfg.Sockets, window)
		pe.SetWorkers(workers)
		sys, err = coherence.NewPartitioned(&cfg, pe)
	} else {
		sys, err = coherence.New(&cfg)
	}
	if err != nil {
		return nil, err
	}
	sys.SetTracer(rc.Telemetry) // before replica dirs: they inherit sys.Trace
	sys.Classify = rc.Classify
	sys.ReplicaMap = rc.ReplicaMap
	faultFn := rc.FaultFn
	if faultFn == nil && rc.Faults != nil {
		faultFn = rc.Faults.ReadFails
	}
	if faultFn != nil {
		for s, mc := range sys.MCs {
			s := s
			f := faultFn
			mc.FaultFn = func(a topology.Addr) bool { return f(s, a) }
		}
	}
	if rc.Faults != nil {
		sys.RepairFn = rc.Faults.Repair
	}
	r := &runner{
		sys:  sys,
		gen:  gen,
		rc:   rc,
		cfg:  &cfg,
		nthr: cfg.TotalCores(),
	}
	r.buildGroups(partitioned)
	if cfg.Replicated() {
		mode := Allow
		if cfg.Protocol == topology.ProtoDeny {
			mode = Deny
		}
		for s := 0; s < cfg.Sockets; s++ {
			r.rds = append(r.rds, New(sys, s, mode))
		}
		if cfg.Protocol == topology.ProtoDynamic {
			r.dynamic = newDynamicCtl(r)
		}
	}

	if rc.ScrubIntervalCyc > 0 {
		batch := rc.ScrubBatch
		if batch <= 0 {
			batch = 8
		}
		coherence.NewScrubber(sys, sim.Cycle(rc.ScrubIntervalCyc), batch).Start()
	}
	if rc.Prepare != nil {
		rc.Prepare(sys)
	}
	r.threads = make([]*thread, r.nthr)
	for t := 0; t < r.nthr; t++ {
		tc := &thread{r: r, t: t, g: r.groupOf(t)}
		tc.done = tc.accessDone
		r.threads[t] = tc
		tc.g.eng.ScheduleFn(sim.Cycle(t), threadStart, tc, 0)
	}
	sys.Drain()

	engine := "legacy"
	if partitioned {
		engine = "partitioned"
	}
	var roiCycles uint64
	for _, g := range r.groups {
		if g.roiCycles > roiCycles {
			roiCycles = g.roiCycles
		}
	}
	res := &Result{
		Workload:            spec.Name,
		Protocol:            cfg.Protocol,
		Engine:              engine,
		Workers:             workers,
		Cycles:              roiCycles,
		Counters:            sys.Counters(),
		InvariantViolations: sys.CheckInvariants(),
	}
	res.Counters.LinkMsgs = sys.Link.Msgs()
	res.Counters.LinkBytes = sys.Link.Bytes()
	res.Counters.Cycles = roiCycles
	for _, mc := range sys.MCs {
		res.Counters.DRAMReads += mc.Reads
		res.Counters.DRAMWrites += mc.Writes
		res.Counters.RowHits += mc.RowHits
		res.Counters.RowMisses += mc.RowMisses
		res.Counters.DRAMBusyCycles += mc.BusyCycles
		// Whole-run (HammeredRows survives the ROI reset): a crossing during
		// warmup is still attack pressure the defenses must answer.
		res.Counters.HammerCrossings += mc.HammeredRows
	}
	if pe != nil {
		// Whole-run epoch accounting (deterministic: both are pure
		// functions of the event trace, independent of the worker count).
		res.Counters.EngineEpochs = pe.Epochs()
		res.Counters.EngineBarrierStalls = pe.BarrierStalls()
	}
	if r.dynamic != nil {
		res.Counters.EpochsAllow = r.dynamic.epochsAllow
		res.Counters.EpochsDeny = r.dynamic.epochsDeny
	}
	if rc.Faults != nil {
		// Absolute over the whole run (not reset at ROI start): any silent
		// corruption anywhere voids a campaign's zero-SDC assertion.
		res.Counters.SilentCorruptions = rc.Faults.SilentCorruptions()
	}
	// Flight dump before the metrics snapshot: Dump() advances the
	// recorder's dump counter and both instrumentation-health counters ride
	// in the snapshot. Both stay zero in healthy runs (no lane exhaustion,
	// no violations), so traced and untraced runs remain byte-identical.
	if len(res.InvariantViolations) > 0 && rc.Telemetry != nil {
		if rec := rc.Telemetry.Recorder(); rec != nil {
			res.FlightDump = rec.Dump()
		}
	}
	if rc.Telemetry != nil {
		res.Counters.TraceDropped = rc.Telemetry.Dropped()
		if rec := rc.Telemetry.Recorder(); rec != nil {
			res.Counters.FlightDumps = rec.Dumps()
		}
	}
	res.Metrics = telemetry.CountersSnapshot(&res.Counters)
	return res, nil
}

// buildGroups creates the execution groups: one global group on the legacy
// engine, or one per socket on the partitioned engine, with the op budget
// and warmup split evenly (remainders to group 0 so totals are preserved).
func (r *runner) buildGroups(partitioned bool) {
	total := r.rc.WarmupOps + r.rc.MeasureOps
	if !partitioned {
		g := &group{
			r: r, id: 0,
			eng:    r.sys.Engs[0],
			cnt:    r.sys.Cnts[0],
			nthr:   r.nthr,
			budget: total,
			warmup: r.rc.WarmupOps,
		}
		g.inROI = g.warmup == 0
		r.groups = []*group{g}
		return
	}
	n := r.cfg.Sockets
	for s := 0; s < n; s++ {
		g := &group{
			r: r, id: s,
			eng:    r.sys.Engs[s],
			cnt:    r.sys.Cnts[s],
			nthr:   r.cfg.CoresPerSocket,
			budget: total / uint64(n),
			warmup: r.rc.WarmupOps / uint64(n),
		}
		if s == 0 {
			g.budget += total % uint64(n)
			g.warmup += r.rc.WarmupOps % uint64(n)
		}
		g.inROI = g.warmup == 0
		r.groups = append(r.groups, g)
	}
}

// groupOf returns the execution group driving the given core.
func (r *runner) groupOf(core int) *group {
	if len(r.groups) == 1 {
		return r.groups[0]
	}
	return r.groups[r.sys.SocketOf(core)]
}

// thread is the reusable per-thread issue record: the in-flight op rides in
// the record and the done callback is built once, so issuing an op performs
// no per-op allocation.
type thread struct {
	r    *runner
	g    *group
	t    int
	op   workload.Op
	done func()
}

// accessDone completes one memory operation and issues the next.
func (tc *thread) accessDone() {
	tc.g.completed()
	tc.r.issue(tc.t)
}

// threadStart fires a thread's first issue (staggered by thread index).
func threadStart(arg any, _ uint64) {
	tc := arg.(*thread)
	tc.r.issue(tc.t)
}

// issueAccess runs after the op's compute delay and starts the memory access.
func issueAccess(arg any, _ uint64) {
	tc := arg.(*thread)
	tc.r.sys.Access(tc.t, tc.op.Kind == workload.Write, tc.op.Addr, tc.done)
}

// issue drives one thread: compute, access, repeat.
func (r *runner) issue(t int) {
	tc := r.threads[t]
	g := tc.g
	if g.ops >= g.budget {
		g.finishROI()
		return
	}
	op := r.gen.Next(t)
	if op.Kind == workload.Barrier {
		r.barrier(g, t)
		return
	}
	tc.op = op
	g.eng.ScheduleFn(sim.Cycle(op.Compute), issueAccess, tc, 0)
}

// completed advances the group's op counter and ROI bookkeeping.
func (g *group) completed() {
	g.ops++
	g.cnt.Ops++
	if !g.inROI && g.ops >= g.warmup {
		g.startROI()
	}
	if g.r.dynamic != nil && g.inROI {
		g.r.dynamic.tick(g.ops)
	}
}

func (g *group) startROI() {
	g.inROI = true
	g.roiStart = g.eng.Now()
	// Reset the measured statistics; cache/directory state is kept warm.
	cls := g.cnt.DRAMChannels
	*g.cnt = stats.Counters{DRAMChannels: cls}
	if len(g.r.groups) == 1 {
		g.r.sys.Link.Reset()
		for _, mc := range g.r.sys.MCs {
			mc.ResetStats()
		}
	} else {
		// Partitioned: each socket resets its own sending direction and
		// memory controller from its own partition (a memory controller is
		// only ever driven by its socket's partition, so its statistics
		// are partition-local too).
		g.r.sys.Link.ResetDir(g.id)
		g.r.sys.MCs[g.id].ResetStats()
	}
	if g.r.dynamic != nil {
		g.r.dynamic.start(g.ops)
	}
}

func (g *group) finishROI() {
	if g.inROI && g.roiCycles == 0 {
		g.roiCycles = uint64(g.eng.Now() - g.roiStart)
	}
}

// barrier parks the thread until all threads arrive. With a single group
// this is the classic in-engine barrier; with per-socket groups each group
// collects its own arrivals, reports across the link-latency mailbox to
// the coordinator on partition 0, and is released the same way, so both
// the arrival and release orders are deterministic.
func (r *runner) barrier(g *group, t int) {
	g.barWaiting++
	if len(r.groups) == 1 {
		if g.barWaiting < g.nthr {
			g.barResume = append(g.barResume, func() { r.issue(t) })
			return
		}
		// Last arrival releases everyone.
		resume := g.barResume
		g.barResume = nil
		g.barWaiting = 0
		g.eng.Schedule(barrierLatency, func() {
			for _, fn := range resume {
				fn()
			}
			r.issue(t)
		})
		return
	}
	g.barResume = append(g.barResume, func() { r.issue(t) })
	if g.barWaiting < g.nthr {
		return
	}
	// Whole group arrived: report to the coordinator on partition 0.
	if g.id == 0 {
		r.groupArrived()
		return
	}
	r.sys.PE.CrossSchedule(g.id, 0, r.crossBarrierDelay(), r.groupArrived)
}

// crossBarrierDelay is the latency of a barrier coordination hop between
// partitions: the modeled barrier cost, but never below the lookahead
// window (a cross-partition event cannot arrive sooner).
func (r *runner) crossBarrierDelay() sim.Cycle {
	d := sim.Cycle(barrierLatency)
	if w := r.sys.PE.Window(); w > d {
		d = w
	}
	return d
}

// groupArrived runs on partition 0 each time a whole group reaches the
// barrier; the final arrival releases every group.
func (r *runner) groupArrived() {
	r.barGroups++
	if r.barGroups < len(r.groups) {
		return
	}
	r.barGroups = 0
	for _, g := range r.groups {
		if g.id == 0 {
			g.eng.Schedule(barrierLatency, g.release)
		} else {
			r.sys.PE.CrossSchedule(0, g.id, r.crossBarrierDelay(), g.release)
		}
	}
}

// release resumes every thread parked at the group's barrier.
func (g *group) release() {
	resume := g.barResume
	g.barResume = nil
	g.barWaiting = 0
	for _, fn := range resume {
		fn()
	}
}

// dynamicCtl implements the sampling-based dynamic protocol (Section V-C5):
// profile allow and deny for a sample window each, then apply the winner for
// the remainder of the epoch. The dynamic protocol samples one global clock,
// so it always runs on the legacy engine (see partitionable) — the single
// group's engine is Engs[0].
type dynamicCtl struct {
	r *runner

	phase      int // 0: profiling allow, 1: profiling deny, 2: applying winner
	phaseStart uint64
	cycleStart sim.Cycle

	allowCPO float64 // measured cycles per op
	denyCPO  float64

	epochsAllow, epochsDeny uint64
	switching               bool
}

func newDynamicCtl(r *runner) *dynamicCtl {
	return &dynamicCtl{r: r}
}

func (d *dynamicCtl) start(ops uint64) {
	d.phase = 0
	d.phaseStart = ops
	d.cycleStart = d.r.sys.Engs[0].Now()
	d.setMode(Allow)
}

func (d *dynamicCtl) setMode(m Mode) {
	if d.switching {
		return
	}
	pending := 0
	for _, rd := range d.r.rds {
		if rd.Mode() != m {
			pending++
		}
	}
	if pending == 0 {
		return
	}
	d.switching = true
	for _, rd := range d.r.rds {
		if rd.Mode() != m {
			rd.SetMode(m, func() {
				pending--
				if pending == 0 {
					d.switching = false
				}
			})
		}
	}
}

// tick advances the controller on every completed op.
func (d *dynamicCtl) tick(ops uint64) {
	cfg := d.r.cfg
	elapsed := ops - d.phaseStart
	cpo := func() float64 {
		if elapsed == 0 {
			return 0
		}
		return float64(d.r.sys.Engs[0].Now()-d.cycleStart) / float64(elapsed)
	}
	switch d.phase {
	case 0:
		if elapsed >= cfg.SampleOps {
			d.allowCPO = cpo()
			d.phase = 1
			d.phaseStart = ops
			d.cycleStart = d.r.sys.Engs[0].Now()
			d.setMode(Deny)
		}
	case 1:
		if elapsed >= cfg.SampleOps {
			d.denyCPO = cpo()
			d.phase = 2
			d.phaseStart = ops
			d.cycleStart = d.r.sys.Engs[0].Now()
			if d.denyCPO <= d.allowCPO {
				d.epochsDeny++
				d.setMode(Deny)
			} else {
				d.epochsAllow++
				d.setMode(Allow)
			}
		}
	case 2:
		if elapsed >= cfg.EpochOps {
			d.phase = 0
			d.phaseStart = ops
			d.cycleStart = d.r.sys.Engs[0].Now()
			d.setMode(Allow)
		}
	}
}
