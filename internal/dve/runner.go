package dve

import (
	"fmt"

	"dve/internal/coherence"
	"dve/internal/fault"
	"dve/internal/sim"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

// RunConfig controls a simulation run.
type RunConfig struct {
	Cfg topology.Config
	// WarmupOps memory operations (summed over threads) warm caches and
	// metadata before the region of interest; MeasureOps are then simulated
	// in detail (Section VI "Workloads").
	WarmupOps  uint64
	MeasureOps uint64
	// Classify enables Fig 7 sharing-pattern classification (normally only
	// on baseline runs).
	Classify bool
	// FaultFn, when set, is installed on both memory controllers to inject
	// detected-uncorrectable local ECC failures.
	FaultFn func(socket int, a topology.Addr) bool
	// Faults, when set, wires the full dynamic fault model: ReadFails as
	// the controllers' fault predicate and Repair as the recovery path's
	// repair hook, so repair writes actually clear transient faults.
	// FaultFn, when also set, takes precedence for the predicate.
	Faults *fault.Set
	// Prepare, when set, runs after the system (and replica directories)
	// are built but before any thread issues. RAS engines use it to attach
	// journal observers and schedule dynamic fault arrivals or socket-kill
	// events on the simulation engine.
	Prepare func(sys *coherence.System)
	// ReplicaMap, when set, replaces the fixed-function mapping with the
	// flexible RMT: only mapped pages are replicated (Section V-D).
	ReplicaMap coherence.ReplicaMapper
	// Source, when set, replaces the synthetic generator with an external
	// operation source (e.g. a recorded trace, package trace).
	Source OpSource
	// ScrubIntervalCyc enables patrol scrubbing with the given tick period
	// (0 = off); ScrubBatch lines are scrubbed per directory per tick.
	ScrubIntervalCyc uint64
	ScrubBatch       int
	// Telemetry, when set, is wired through the system before any event is
	// scheduled: protocol spans, the flight recorder, and the engine's
	// queue-depth counter all report into it. It only observes — the run's
	// statistics are byte-identical with or without it.
	Telemetry *telemetry.Tracer
}

// OpSource supplies per-thread operation streams; both the synthetic
// workload generator and trace.Source implement it.
type OpSource interface {
	Next(tid int) workload.Op
}

// Result is the outcome of one simulation run.
type Result struct {
	Workload string
	Protocol topology.Protocol
	// Cycles is the region-of-interest duration.
	Cycles uint64
	// Counters are the ROI statistics (link traffic, classes, DRAM, ...).
	Counters stats.Counters
	// InvariantViolations is the post-run coherence audit (SWMR, directory
	// agreement, inclusion); it must be empty for a correct protocol.
	InvariantViolations []string
	// Metrics is the named view of Counters (the telemetry registry
	// snapshot) embedded in result-cache envelopes and sweep reports.
	Metrics telemetry.Snapshot `json:"metrics"`
	// FlightDump holds the flight recorder's recent protocol events when
	// the run ended with invariant violations and a recorder was armed
	// (nil otherwise) — the timeline to read instead of printf archaeology.
	FlightDump []telemetry.FlightEvent `json:"flight_dump,omitempty"`
}

// barrierLatency approximates the synchronization cost of a barrier episode.
const barrierLatency = 100

// runner drives one workload through one system configuration.
type runner struct {
	sys  *coherence.System
	gen  OpSource
	rc   RunConfig
	rds  []*ReplicaDir
	cfg  *topology.Config
	nthr int

	// threads holds one reusable issue record per hardware thread, so the
	// steady-state compute->access->repeat loop allocates nothing per op.
	threads []*thread

	totalOps uint64
	budget   uint64
	roiStart sim.Cycle
	inROI    bool

	// barrier state
	barWaiting int
	barResume  []func()

	// dynamic protocol state
	dynamic   *dynamicCtl
	roiCycles uint64
}

// Run simulates a workload under the given configuration and returns the
// region-of-interest results.
func Run(spec workload.Spec, rc RunConfig) (*Result, error) {
	if rc.MeasureOps == 0 {
		return nil, fmt.Errorf("dve: MeasureOps must be positive")
	}
	if spec.Threads != rc.Cfg.TotalCores() {
		spec.Threads = rc.Cfg.TotalCores()
	}
	var gen OpSource
	if rc.Source != nil {
		gen = rc.Source
	} else {
		g, err := workload.NewGenerator(spec)
		if err != nil {
			return nil, err
		}
		gen = g
	}
	cfg := rc.Cfg
	// Auto-scale the dynamic protocol's sampling to the run length: the
	// paper profiles each scheme for 100M instructions every 1B (a 1:10
	// ratio); we sample 1/20 of the ROI per scheme each quarter-ROI epoch.
	if cfg.SampleOps == 0 {
		cfg.SampleOps = rc.MeasureOps / 20
		if cfg.SampleOps == 0 {
			cfg.SampleOps = 1
		}
	}
	if cfg.EpochOps == 0 {
		cfg.EpochOps = rc.MeasureOps / 4
		if cfg.EpochOps == 0 {
			cfg.EpochOps = 1
		}
	}
	if cfg.FootprintHintLines == 0 && spec.FootprintMB > 0 && cfg.LineSizeBytes > 0 {
		cfg.FootprintHintLines = spec.FootprintMB << 20 / cfg.LineSizeBytes
	}
	sys := coherence.New(&cfg)
	sys.SetTracer(rc.Telemetry) // before replica dirs: they inherit sys.Trace
	sys.Classify = rc.Classify
	sys.ReplicaMap = rc.ReplicaMap
	faultFn := rc.FaultFn
	if faultFn == nil && rc.Faults != nil {
		faultFn = rc.Faults.ReadFails
	}
	if faultFn != nil {
		for s, mc := range sys.MCs {
			s := s
			f := faultFn
			mc.FaultFn = func(a topology.Addr) bool { return f(s, a) }
		}
	}
	if rc.Faults != nil {
		sys.RepairFn = rc.Faults.Repair
	}
	r := &runner{
		sys:    sys,
		gen:    gen,
		rc:     rc,
		cfg:    &cfg,
		nthr:   cfg.TotalCores(),
		budget: rc.WarmupOps + rc.MeasureOps,
	}
	if rc.WarmupOps == 0 {
		r.inROI = true
	}
	if cfg.Replicated() {
		mode := Allow
		if cfg.Protocol == topology.ProtoDeny {
			mode = Deny
		}
		for s := 0; s < cfg.Sockets; s++ {
			r.rds = append(r.rds, New(sys, s, mode))
		}
		if cfg.Protocol == topology.ProtoDynamic {
			r.dynamic = newDynamicCtl(r)
		}
	}

	if rc.ScrubIntervalCyc > 0 {
		batch := rc.ScrubBatch
		if batch <= 0 {
			batch = 8
		}
		coherence.NewScrubber(sys, sim.Cycle(rc.ScrubIntervalCyc), batch).Start()
	}
	if rc.Prepare != nil {
		rc.Prepare(sys)
	}
	r.threads = make([]*thread, r.nthr)
	for t := 0; t < r.nthr; t++ {
		tc := &thread{r: r, t: t}
		tc.done = tc.accessDone
		r.threads[t] = tc
		sys.Eng.ScheduleFn(sim.Cycle(t), threadStart, tc, 0)
	}
	sys.Eng.Run()

	res := &Result{
		Workload:            spec.Name,
		Protocol:            cfg.Protocol,
		Cycles:              r.roiCycles,
		Counters:            *sys.Cnt,
		InvariantViolations: sys.CheckInvariants(),
	}
	res.Counters.LinkMsgs = sys.Link.Msgs
	res.Counters.LinkBytes = sys.Link.Bytes
	res.Counters.Cycles = r.roiCycles
	for _, mc := range sys.MCs {
		res.Counters.DRAMReads += mc.Reads
		res.Counters.DRAMWrites += mc.Writes
		res.Counters.RowHits += mc.RowHits
		res.Counters.RowMisses += mc.RowMisses
		res.Counters.DRAMBusyCycles += mc.BusyCycles
	}
	if r.dynamic != nil {
		res.Counters.EpochsAllow = r.dynamic.epochsAllow
		res.Counters.EpochsDeny = r.dynamic.epochsDeny
	}
	if rc.Faults != nil {
		// Absolute over the whole run (not reset at ROI start): any silent
		// corruption anywhere voids a campaign's zero-SDC assertion.
		res.Counters.SilentCorruptions = rc.Faults.SilentCorruptions()
	}
	res.Metrics = telemetry.CountersSnapshot(&res.Counters)
	if len(res.InvariantViolations) > 0 && rc.Telemetry != nil {
		if rec := rc.Telemetry.Recorder(); rec != nil {
			res.FlightDump = rec.Dump()
		}
	}
	return res, nil
}

// thread is the reusable per-thread issue record: the in-flight op rides in
// the record and the done callback is built once, so issuing an op performs
// no per-op allocation.
type thread struct {
	r    *runner
	t    int
	op   workload.Op
	done func()
}

// accessDone completes one memory operation and issues the next.
func (tc *thread) accessDone() {
	tc.r.completed()
	tc.r.issue(tc.t)
}

// threadStart fires a thread's first issue (staggered by thread index).
func threadStart(arg any, _ uint64) {
	tc := arg.(*thread)
	tc.r.issue(tc.t)
}

// issueAccess runs after the op's compute delay and starts the memory access.
func issueAccess(arg any, _ uint64) {
	tc := arg.(*thread)
	tc.r.sys.Access(tc.t, tc.op.Kind == workload.Write, tc.op.Addr, tc.done)
}

// issue drives one thread: compute, access, repeat.
func (r *runner) issue(t int) {
	if r.totalOps >= r.budget {
		r.finishROI()
		return
	}
	op := r.gen.Next(t)
	if op.Kind == workload.Barrier {
		r.barrier(t)
		return
	}
	tc := r.threads[t]
	tc.op = op
	r.sys.Eng.ScheduleFn(sim.Cycle(op.Compute), issueAccess, tc, 0)
}

// completed advances the global op counter and ROI bookkeeping.
func (r *runner) completed() {
	r.totalOps++
	r.sys.Cnt.Ops++
	if !r.inROI && r.totalOps >= r.rc.WarmupOps {
		r.startROI()
	}
	if r.dynamic != nil && r.inROI {
		r.dynamic.tick(r.totalOps)
	}
}

func (r *runner) startROI() {
	r.inROI = true
	r.roiStart = r.sys.Eng.Now()
	// Reset the measured statistics; cache/directory state is kept warm.
	cls := r.sys.Cnt.DRAMChannels
	*r.sys.Cnt = stats.Counters{DRAMChannels: cls}
	r.sys.Link.Reset()
	for _, mc := range r.sys.MCs {
		mc.ResetStats()
	}
	if r.dynamic != nil {
		r.dynamic.start(r.totalOps)
	}
}

func (r *runner) finishROI() {
	if r.inROI && r.roiCycles == 0 {
		r.roiCycles = uint64(r.sys.Eng.Now() - r.roiStart)
	}
}

// barrier parks the thread until all threads arrive.
func (r *runner) barrier(t int) {
	r.barWaiting++
	if r.barWaiting < r.nthr {
		r.barResume = append(r.barResume, func() { r.issue(t) })
		return
	}
	// Last arrival releases everyone.
	resume := r.barResume
	r.barResume = nil
	r.barWaiting = 0
	r.sys.Eng.Schedule(barrierLatency, func() {
		for _, fn := range resume {
			fn()
		}
		r.issue(t)
	})
}

// dynamicCtl implements the sampling-based dynamic protocol (Section V-C5):
// profile allow and deny for a sample window each, then apply the winner for
// the remainder of the epoch.
type dynamicCtl struct {
	r *runner

	phase      int // 0: profiling allow, 1: profiling deny, 2: applying winner
	phaseStart uint64
	cycleStart sim.Cycle

	allowCPO float64 // measured cycles per op
	denyCPO  float64

	epochsAllow, epochsDeny uint64
	switching               bool
}

func newDynamicCtl(r *runner) *dynamicCtl {
	return &dynamicCtl{r: r}
}

func (d *dynamicCtl) start(ops uint64) {
	d.phase = 0
	d.phaseStart = ops
	d.cycleStart = d.r.sys.Eng.Now()
	d.setMode(Allow)
}

func (d *dynamicCtl) setMode(m Mode) {
	if d.switching {
		return
	}
	pending := 0
	for _, rd := range d.r.rds {
		if rd.Mode() != m {
			pending++
		}
	}
	if pending == 0 {
		return
	}
	d.switching = true
	for _, rd := range d.r.rds {
		if rd.Mode() != m {
			rd.SetMode(m, func() {
				pending--
				if pending == 0 {
					d.switching = false
				}
			})
		}
	}
}

// tick advances the controller on every completed op.
func (d *dynamicCtl) tick(ops uint64) {
	cfg := d.r.cfg
	elapsed := ops - d.phaseStart
	cpo := func() float64 {
		if elapsed == 0 {
			return 0
		}
		return float64(d.r.sys.Eng.Now()-d.cycleStart) / float64(elapsed)
	}
	switch d.phase {
	case 0:
		if elapsed >= cfg.SampleOps {
			d.allowCPO = cpo()
			d.phase = 1
			d.phaseStart = ops
			d.cycleStart = d.r.sys.Eng.Now()
			d.setMode(Deny)
		}
	case 1:
		if elapsed >= cfg.SampleOps {
			d.denyCPO = cpo()
			d.phase = 2
			d.phaseStart = ops
			d.cycleStart = d.r.sys.Eng.Now()
			if d.denyCPO <= d.allowCPO {
				d.epochsDeny++
				d.setMode(Deny)
			} else {
				d.epochsAllow++
				d.setMode(Allow)
			}
		}
	case 2:
		if elapsed >= cfg.EpochOps {
			d.phase = 0
			d.phaseStart = ops
			d.cycleStart = d.r.sys.Eng.Now()
			d.setMode(Allow)
		}
	}
}
