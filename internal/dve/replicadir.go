// Package dve implements the paper's contribution: Coherent Replication.
//
// A ReplicaDir is attached to each socket and manages coherent access to the
// replicas of lines homed on the *other* socket. It implements both protocol
// families of Section V-C — allow-based (lazy pull of read permissions) and
// deny-based (eager push of deny permissions, with the RemoteModified state)
// — plus the three optimizations of Section V-C5: speculative replica
// access, coarse-grained (region) tracking, and the sampling-based dynamic
// protocol. The package also provides the workload runner that reproduces
// the paper's evaluation.
package dve

import (
	"dve/internal/cache"
	"dve/internal/coherence"
	"dve/internal/noc"
	"dve/internal/sim"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// Mode selects the replica-directory protocol family.
type Mode int

const (
	// Allow: replica accessible only with an explicit entry (absence = no).
	Allow Mode = iota
	// Deny: replica accessible unless an RM entry forbids it (absence = yes).
	Deny
)

// String returns the protocol family name.
func (m Mode) String() string {
	if m == Deny {
		return "deny"
	}
	return "allow"
}

// ReplicaDir is the replica directory controller of one socket. It services
// requests from its socket's LLC for lines homed on the other socket, keeps
// the replica in sync via synchronous dual writebacks, and answers the home
// directory's invalidations, deny pushes, and fetches.
type ReplicaDir struct {
	sys    *coherence.System
	socket int
	mode   Mode

	// store is the fully associative on-chip entry structure (2K entries by
	// default, Section VI). Under the deny protocol it caches the durable
	// backing state; under allow it is the only record.
	store *cache.Cache
	// backing is the deny protocol's durable per-line state (the in-memory
	// full directory the cache misses fetch from).
	backing map[topology.Line]cache.State
	// regions tracks coarse-grain grants (allow + CoarseGrain, Fig 9).
	regions map[uint64]bool
	// owners durably records lines this socket's LLC holds in M. It models
	// pinned Modified entries: a real replica directory cannot silently
	// evict an owner entry (the model checker shows a stale writeback would
	// then corrupt the replica), so ownership records are exempt from the
	// capacity-bounded store.
	owners map[topology.Line]bool

	seqq *cache.Sequencer

	// fillPending tracks lines with a granted-but-unfilled local demand
	// transaction (the grant may still be reading the replica DRAM). Home
	// probes for such lines are deferred until the fill lands — the
	// simulator's equivalent of the ordered RD->LLC channel that makes this
	// race benign in the verified model. Writebacks (LocalPUTM) do not set
	// it: deferring probes across a writeback would deadlock with the home
	// MSHR, and the LLC answers probes correctly during one.
	fillPending map[topology.Line][]func()

	// dirFetchLat is the cost of fetching a directory entry from DRAM on a
	// store miss under the deny protocol.
	dirFetchLat sim.Cycle

	oracular bool
}

// New creates the replica directory for a socket and registers it with the
// system.
func New(sys *coherence.System, socket int, mode Mode) *ReplicaDir {
	cfg := sys.Cfg
	rd := &ReplicaDir{
		sys:         sys,
		socket:      socket,
		mode:        mode,
		store:       cache.NewFullyAssoc(cfg.ReplicaDirEntries, cfg.LineSizeBytes),
		backing:     make(map[topology.Line]cache.State),
		regions:     make(map[uint64]bool),
		owners:      make(map[topology.Line]bool),
		fillPending: make(map[topology.Line][]func()),
		seqq: cache.NewSequencer(sys.Engs[socket], sim.Cycle(cfg.DirLatencyCyc),
			cache.NewMSHR(0)),
		dirFetchLat: sim.Cycle(cfg.Cycles(cfg.TRCDns+cfg.TCLns)) +
			10, // activate + CAS + burst for the in-memory directory line
		oracular: cfg.Oracular,
	}
	if sys.Trace != nil {
		rd.seqq.Trace = sys.Trace
		rd.seqq.Comp = telemetry.CompReplicaDir
		rd.seqq.Socket = socket
	}
	sys.SetReplicaAgent(socket, rd)
	return rd
}

// Mode returns the current protocol family.
func (rd *ReplicaDir) Mode() Mode { return rd.mode }

// DenyMode reports whether the deny protocol is active; the home directory
// uses it to decide whether deny pushes are required.
func (rd *ReplicaDir) DenyMode() bool { return rd.mode == Deny }

func (rd *ReplicaDir) home() *coherence.HomeDir {
	return rd.sys.Dirs[(rd.socket+1)%rd.sys.Cfg.Sockets]
}

func (rd *ReplicaDir) replicaAddr(l topology.Line) topology.Addr {
	// RawReplicaAddr ignores kill-driven demotion: a transaction already in
	// flight when a socket kill demotes the line still completes against
	// the dead controller (reads fail, writes are dropped) instead of
	// finding its mapping vanished. New requests are routed past the
	// replica directory by the HasReplica guards.
	ra, ok := rd.sys.RawReplicaAddr(l)
	if !ok {
		// Routing guarantees the replica exists; reaching here is a bug.
		panic("dve: replica directory asked about an unreplicated line")
	}
	return ra
}

func (rd *ReplicaDir) regionOf(l topology.Line) uint64 {
	return uint64(l) / uint64(rd.sys.Cfg.RegionBytes)
}

// seq serializes replica-directory transactions per line, paying the
// directory access latency (same as the home directory, Section VI). The
// dispatch is pooled and allocation-free (cache.Sequencer). With a tracer
// attached, the serialized body becomes a span on this socket's
// replica-directory track (observation only — the no-perturbation rule).
func (rd *ReplicaDir) seq(name string, l topology.Line, fn func(release func())) {
	tr := rd.sys.Trace
	if tr == nil {
		rd.seqq.Do(l, fn)
		return
	}
	rd.seqq.Do(l, func(release func()) {
		sp := tr.Begin(telemetry.CompReplicaDir, rd.socket, name, uint64(l))
		fn(func() {
			tr.End(sp)
			release()
		})
	})
}

// readReplicaMem reads the line's replica from this socket's local memory,
// recovering via the home copy if the local ECC check fails.
func (rd *ReplicaDir) readReplicaMem(l topology.Line, cb func()) {
	cnt := rd.sys.Cnts[rd.socket]
	ra := rd.replicaAddr(l)
	rd.sys.MCs[rd.socket].Read(ra, func(failed bool) {
		if !failed {
			cb()
			return
		}
		rd.sys.RASNote(coherence.EvDetect, rd.socket, l)
		// Divert to the home memory controller (Section V-B2).
		home := (rd.socket + 1) % rd.sys.Cfg.Sockets
		rd.sys.Link.Send(rd.socket, noc.CtrlBytes, func() {
			rd.sys.MCs[home].Read(topology.Addr(l), func(failed2 bool) {
				rd.sys.Link.Send(home, noc.DataBytes, func() {
					if failed2 {
						cnt.DetectedUncorrect++
						rd.sys.RASNote(coherence.EvDUE, rd.socket, l)
					} else {
						cnt.CorrectedErrors++
						cnt.Recoveries++
						rd.sys.RASNote(coherence.EvRecover, rd.socket, l)
						// Try to repair the replica copy.
						cnt.RepairWrites++
						rd.sys.RASNote(coherence.EvRepair, rd.socket, l)
						rd.sys.MCs[rd.socket].Write(ra, func() {})
						rd.sys.RepairNote(rd.socket, ra)
					}
					cb()
				})
			})
		})
	})
}

// LocalGETS implements coherence.ReplicaAgent. done(fromReplica) runs when
// data is available at this socket's LLC.
func (rd *ReplicaDir) LocalGETS(l topology.Line, needData bool, done func(fromReplica bool)) {
	rd.seq("LocalGETS", l, func(release func()) {
		fin := func(fromReplica bool) {
			if tr := rd.sys.Trace; tr != nil {
				if fromReplica {
					tr.Point(telemetry.CompReplicaDir, rd.socket, "grant-replica", uint64(l))
				} else {
					tr.Point(telemetry.CompReplicaDir, rd.socket, "grant-home", uint64(l))
				}
			}
			done(fromReplica)
			rd.fillDone(l)
			release()
		}
		if rd.oracular {
			rd.oracleGETS(l, fin)
			return
		}
		if rd.mode == Deny {
			rd.denyGETS(l, fin)
			return
		}
		rd.allowGETS(l, fin)
	})
}

func (rd *ReplicaDir) allowGETS(l topology.Line, fin func(bool)) {
	cnt := rd.sys.Cnts[rd.socket]
	if e := rd.store.Lookup(l); e != nil {
		cnt.ReplicaDirHits++
		// S or M entry: the replica (or our own LLC) holds current data.
		// An M entry here is a degenerate race; serve locally either way.
		// Mark the fill in flight so home probes defer behind it; this
		// transaction completes without home involvement, so the deferral
		// cannot deadlock against the home MSHR.
		rd.fillPending[l] = nil
		rd.readReplicaMem(l, func() { fin(true) })
		return
	}
	if rd.sys.Cfg.CoarseGrain && rd.regions[rd.regionOf(l)] {
		cnt.ReplicaDirHits++
		rd.fillPending[l] = nil
		rd.readReplicaMem(l, func() { fin(true) })
		return
	}
	cnt.ReplicaDirMisses++
	if rd.sys.Cfg.CoarseGrain {
		rd.allowRegionMiss(l, fin)
		return
	}
	rd.allowLineMiss(l, fin)
}

// specJoin synchronizes a speculative replica read with the home grant: the
// later of the two completes the request.
type specJoin struct {
	specDone  bool
	waiting   bool
	onSpec    func()
	cancelled bool
}

func (j *specJoin) specLanded() {
	j.specDone = true
	if j.waiting && !j.cancelled {
		j.onSpec()
	}
}

// allowLineMiss pulls a read permission from the home directory, overlapping
// a speculative local replica read with the round trip when enabled.
func (rd *ReplicaDir) allowLineMiss(l topology.Line, fin func(bool)) {
	cnt := rd.sys.Cnts[rd.socket]
	spec := rd.sys.Cfg.SpeculativeReads
	var join *specJoin
	if spec {
		cnt.SpecIssued++
		join = &specJoin{}
		rd.readReplicaMem(l, join.specLanded)
	}
	rd.sys.Link.Send(rd.socket, noc.CtrlBytes, func() {
		rd.home().ReplicaGETS(l, func(dataShipped bool) {
			// Grant received: home has serialized us; probes sent by later
			// home transactions must now wait for our fill.
			rd.fillPending[l] = nil
			rd.insertEntry(l, cache.Shared)
			if dataShipped {
				// Home LLC was dirty: the shipped data is also the replica
				// update half of the dual writeback.
				if spec {
					cnt.SpecSquashed++
					join.cancelled = true
				}
				rd.sys.MCs[rd.socket].Write(rd.replicaAddr(l), func() {})
				fin(false)
				return
			}
			if spec {
				if join.specDone {
					fin(true) // fully overlapped
					return
				}
				join.waiting = true
				join.onSpec = func() { fin(true) }
				return
			}
			rd.readReplicaMem(l, func() { fin(true) })
		})
	})
}

// allowRegionMiss tries to obtain a coarse-grain region grant; on refusal it
// falls back to a line grant.
func (rd *ReplicaDir) allowRegionMiss(l topology.Line, fin func(bool)) {
	region := rd.regionOf(l)
	rd.sys.Link.Send(rd.socket, noc.CtrlBytes, func() {
		granted := rd.home().GrantRegion(topology.Line(region*uint64(rd.sys.Cfg.RegionBytes)),
			rd.sys.Cfg.RegionBytes/rd.sys.Cfg.LineSizeBytes)
		rd.sys.Link.Send((rd.socket+1)%rd.sys.Cfg.Sockets, noc.CtrlBytes, func() {
			if granted {
				rd.regions[region] = true
				rd.fillPending[l] = nil
				rd.readReplicaMem(l, func() { fin(true) })
				return
			}
			// A line in the region is writable on the home side: fall back.
			rd.allowLineMiss(l, fin)
		})
	})
}

func (rd *ReplicaDir) denyGETS(l topology.Line, fin func(bool)) {
	cnt := rd.sys.Cnts[rd.socket]
	cachedEntry := rd.store.Lookup(l) != nil
	var entryLat sim.Cycle
	spec := false
	if cachedEntry {
		cnt.ReplicaDirHits++
	} else {
		cnt.ReplicaDirMisses++
		// Fetch the durable entry from memory; speculatively read the
		// replica in parallel (Section V-C5).
		entryLat = rd.dirFetchLat
		if rd.sys.Cfg.SpeculativeReads {
			spec = true
			cnt.SpecIssued++
		}
	}
	var join *specJoin
	if spec {
		join = &specJoin{}
		rd.readReplicaMem(l, join.specLanded)
	}
	rd.sys.Engs[rd.socket].Schedule(entryLat, func() {
		// Sample the durable entry when the fetch completes, not when it
		// issues: a HomeInvalidate can land while the fetch (or the
		// speculative read) is in flight, and its freshly installed RM
		// must not be read stale here — nor clobbered with Shared below,
		// which would let this socket fill a line the home side holds
		// writable (an SWMR violation).
		st, ok := rd.backing[l]
		if !cachedEntry {
			rd.insertEntry(l, stOrShared(st, ok))
		}
		if ok && st == cache.RemoteModified {
			// Replica is stale: the home LLC holds the line writable.
			if spec {
				cnt.SpecSquashed++
				join.cancelled = true
			}
			rd.sys.Link.Send(rd.socket, noc.CtrlBytes, func() {
				rd.home().ReplicaGETS(l, func(dataShipped bool) {
					rd.fillPending[l] = nil
					rd.backing[l] = cache.Shared
					rd.insertEntry(l, cache.Shared)
					if dataShipped {
						rd.sys.MCs[rd.socket].Write(rd.replicaAddr(l), func() {})
					}
					fin(false)
				})
			})
			return
		}
		// Absence (or S/M): the replica is current — read it locally with
		// no link traffic at all. Home probes defer behind the in-flight
		// fill (no home transaction involved: deadlock-free).
		rd.fillPending[l] = nil
		rd.backing[l] = cache.Shared
		if spec {
			if join.specDone {
				fin(true)
				return
			}
			join.waiting = true
			join.onSpec = func() { fin(true) }
			return
		}
		rd.readReplicaMem(l, func() { fin(true) })
	})
}

func stOrShared(st cache.State, ok bool) cache.State {
	if ok {
		return st
	}
	return cache.Shared
}

// oracleGETS models the oracular allow scheme of Fig 9: infinite entries and
// zero-latency insertion. It consults home state with oracle knowledge; only
// genuinely-required transfers (home-side dirty data) pay latency.
func (rd *ReplicaDir) oracleGETS(l topology.Line, fin func(bool)) {
	cnt := rd.sys.Cnts[rd.socket]
	st, owner, _ := rd.home().Entry(l)
	homeSocket := (rd.socket + 1) % rd.sys.Cfg.Sockets
	if (st == cache.Modified || st == cache.Owned) && owner == homeSocket {
		cnt.ReplicaDirMisses++
		rd.sys.Link.Send(rd.socket, noc.CtrlBytes, func() {
			rd.home().ReplicaGETS(l, func(dataShipped bool) {
				rd.fillPending[l] = nil
				if dataShipped {
					rd.sys.MCs[rd.socket].Write(rd.replicaAddr(l), func() {})
				}
				fin(false)
			})
		})
		return
	}
	cnt.ReplicaDirHits++
	rd.home().OracleAddSharer(l, rd.socket)
	rd.fillPending[l] = nil
	rd.readReplicaMem(l, func() { fin(true) })
}

// LocalGETX implements coherence.ReplicaAgent: exclusive permission always
// serializes at the home directory; when the home side holds no dirty copy
// the grant is control-only and data comes from the local replica.
func (rd *ReplicaDir) LocalGETX(l topology.Line, needData bool, done func()) {
	rd.seq("LocalGETX", l, func(release func()) {
		fin := func() {
			done()
			rd.fillDone(l)
			release()
		}
		var entryLat sim.Cycle
		if rd.mode == Deny && !rd.oracular {
			if rd.store.Lookup(l) == nil {
				entryLat = rd.dirFetchLat
			}
		}
		rd.sys.Engs[rd.socket].Schedule(entryLat, func() {
			rd.sys.Link.Send(rd.socket, noc.CtrlBytes, func() {
				rd.home().ReplicaGETX(l, func(dataShipped bool) {
					rd.fillPending[l] = nil
					rd.recordOwnership(l)
					if dataShipped || !needData {
						fin()
						return
					}
					// Replica memory is current: supply data locally.
					rd.readReplicaMem(l, fin)
				})
			})
		})
	})
}

func (rd *ReplicaDir) recordOwnership(l topology.Line) {
	rd.owners[l] = true
	if rd.oracular {
		return
	}
	rd.insertEntry(l, cache.Modified)
	if rd.mode == Deny {
		rd.backing[l] = cache.Modified
	}
}

// insertEntry installs a line entry in the on-chip structure; silent
// eviction of the victim is safe in both modes (allow: absence = no; deny:
// the durable backing holds the truth).
func (rd *ReplicaDir) insertEntry(l topology.Line, st cache.State) {
	e, _, _ := rd.store.Insert(l, st)
	e.State = st
}

// LocalPUTM implements coherence.ReplicaAgent: a dirty writeback from this
// socket's LLC updates the replica locally and ships the data home so both
// copies are written synchronously (Section V-B1).
func (rd *ReplicaDir) LocalPUTM(l topology.Line, done func()) {
	rd.seq("LocalPUTM", l, func(release func()) {
		if !rd.owners[l] {
			// Ownership was fetched away while this writeback was queued:
			// the fetch already carried the data home. Applying the stale
			// data now would corrupt the replica (found by the model
			// checker); just complete the eviction.
			done()
			release()
			return
		}
		delete(rd.owners, l)
		rd.sys.Cnts[rd.socket].DualWritebacks++
		remaining := 2
		part := func() {
			remaining--
			if remaining == 0 {
				done()
				release()
			}
		}
		ra := rd.replicaAddr(l)
		rd.sys.MCs[rd.socket].Write(ra, part)
		rd.sys.RepairNote(rd.socket, ra)
		rd.sys.Link.Send(rd.socket, noc.DataBytes, func() {
			rd.home().ReplicaPUTM(l, func() {
				rd.sys.Link.Send((rd.socket+1)%rd.sys.Cfg.Sockets, noc.CtrlBytes, part)
			})
		})
		// Both copies now (will) hold current data.
		if rd.mode == Deny {
			delete(rd.backing, l)
		}
		rd.store.Invalidate(l)
	})
}

// fillDone completes a demand fill: deferred home probes now run, in order.
func (rd *ReplicaDir) fillDone(l topology.Line) {
	waiters := rd.fillPending[l]
	delete(rd.fillPending, l)
	for _, w := range waiters {
		w()
	}
}

// deferToFill queues fn behind an in-flight demand fill for the line; it
// reports whether a fill was pending.
func (rd *ReplicaDir) deferToFill(l topology.Line, fn func()) bool {
	if w, ok := rd.fillPending[l]; ok {
		rd.fillPending[l] = append(w, fn)
		return true
	}
	return false
}

// HomeInvalidate implements coherence.ReplicaAgent: the home side is taking
// exclusive access. Allow: drop the entry (and any covering region). Deny:
// install the durable RM state. Either way replica-side LLC copies die.
func (rd *ReplicaDir) HomeInvalidate(l topology.Line, ack func()) {
	if rd.deferToFill(l, func() { rd.HomeInvalidate(l, ack) }) {
		return
	}
	lat := sim.Cycle(rd.sys.Cfg.DirLatencyCyc)
	delete(rd.owners, l)
	rd.sys.LLCs[rd.socket].Probe(l, true)
	if rd.mode == Deny && !rd.oracular {
		rd.backing[l] = cache.RemoteModified
		rd.insertEntry(l, cache.RemoteModified)
	} else {
		rd.store.Invalidate(l)
		if rd.sys.Cfg.CoarseGrain {
			region := rd.regionOf(l)
			if rd.regions[region] {
				delete(rd.regions, region)
				// Invalidate every LLC line of the region: the coarse-grain
				// penalty the paper observes on nw, sp, barnes, canneal.
				linesPerRegion := rd.sys.Cfg.RegionBytes / rd.sys.Cfg.LineSizeBytes
				base := topology.Line(region * uint64(rd.sys.Cfg.RegionBytes))
				n := 0
				for i := 0; i < linesPerRegion; i++ {
					rl := base + topology.Line(i*rd.sys.Cfg.LineSizeBytes)
					if rd.sys.LLCs[rd.socket].Probe(rl, true) || rd.sys.LLCs[rd.socket].HasLine(rl) {
						n++
					}
				}
				lat += sim.Cycle(2 * n)
			}
		}
	}
	rd.sys.Engs[rd.socket].Schedule(lat, ack)
}

// HomeUndeny implements coherence.ReplicaAgent: a home-side writeback
// completed; the replica is current again.
func (rd *ReplicaDir) HomeUndeny(l topology.Line) {
	if rd.mode != Deny {
		return
	}
	delete(rd.backing, l)
	rd.store.Invalidate(l)
}

// HomeFetch implements coherence.ReplicaAgent: retrieve dirty data from this
// socket's LLC on behalf of the home directory.
func (rd *ReplicaDir) HomeFetch(l topology.Line, invalidate bool, ack func()) {
	if rd.deferToFill(l, func() { rd.HomeFetch(l, invalidate, ack) }) {
		return
	}
	lat := sim.Cycle(rd.sys.Cfg.DirLatencyCyc + rd.sys.Cfg.LLCLatencyCyc)
	delete(rd.owners, l)
	if invalidate {
		rd.sys.LLCs[rd.socket].Probe(l, true)
		if rd.mode == Deny && !rd.oracular {
			// The home side is taking exclusive access.
			rd.backing[l] = cache.RemoteModified
			rd.insertEntry(l, cache.RemoteModified)
		} else {
			rd.store.Invalidate(l)
		}
	} else {
		rd.sys.LLCs[rd.socket].Downgrade(l)
		// Half of the dual writeback: update the replica copy here; the
		// data message back to home updates the home copy.
		rd.sys.MCs[rd.socket].Write(rd.replicaAddr(l), func() {})
		if rd.mode == Deny && !rd.oracular {
			rd.backing[l] = cache.Shared
		}
		rd.insertEntry(l, cache.Shared)
	}
	rd.sys.Engs[rd.socket].Schedule(lat, ack)
}

// Drain implements coherence.ReplicaAgent: clear all replica-directory state
// ahead of a protocol switch (Section V-C5). When entering deny mode the
// durable state is rebuilt from the home directory so that absent entries
// are again safe to read (the paper's "warmup phase to bring the metadata
// entries au courant").
func (rd *ReplicaDir) Drain(done func()) {
	rd.store.Clear()
	rd.regions = make(map[uint64]bool)
	rd.backing = make(map[topology.Line]cache.State)
	// Ownership records are rebuilt from the home directory (the durable
	// source of truth) so stale writebacks stay detectable across a switch.
	rd.owners = make(map[topology.Line]bool)
	for _, l := range rd.home().LinesOwnedBy(rd.socket) {
		rd.owners[l] = true
	}
	rd.sys.Engs[rd.socket].Schedule(sim.Cycle(rd.sys.Cfg.DirLatencyCyc), done)
}

// SetMode switches the protocol family, draining first. Entering allow
// mode re-registers this socket's remote-homed clean shared lines as
// sharers at home: deny-mode replica reads never registered them, so
// allow-mode (sharer-driven) invalidations would otherwise miss them — the
// paper's "warmup phase to bring the metadata entries au courant".
func (rd *ReplicaDir) SetMode(m Mode, done func()) {
	rd.Drain(func() {
		rd.mode = m
		if m == Allow {
			rd.sys.LLCs[rd.socket].RegisterRemoteShared()
		}
		if m == Deny {
			// Warmup: pull the deny set (home-side writable lines) so that
			// entry absence is trustworthy again.
			for _, l := range rd.home().LinesOwnedBy((rd.socket + 1) % rd.sys.Cfg.Sockets) {
				rd.backing[l] = cache.RemoteModified
			}
		}
		done()
	})
}

var _ coherence.ReplicaAgent = (*ReplicaDir)(nil)
