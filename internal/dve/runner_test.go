package dve

import (
	"testing"

	"dve/internal/topology"
	"dve/internal/workload"
)

func smallSpec(name string) workload.Spec {
	s, ok := workload.ByName(name, 16)
	if !ok {
		panic("unknown workload " + name)
	}
	return s
}

func runSmall(t *testing.T, name string, p topology.Protocol) *Result {
	t.Helper()
	rc := RunConfig{
		Cfg:        topology.Default(p),
		WarmupOps:  20_000,
		MeasureOps: 60_000,
		Classify:   p == topology.ProtoBaseline,
	}
	res, err := Run(smallSpec(name), rc)
	if err != nil {
		t.Fatalf("Run(%s,%v): %v", name, p, err)
	}
	if res.Cycles == 0 {
		t.Fatalf("Run(%s,%v): zero ROI cycles", name, p)
	}
	return res
}

func TestRunCompletesAllProtocols(t *testing.T) {
	for _, p := range []topology.Protocol{
		topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
		topology.ProtoDynamic, topology.ProtoIntelMirror,
	} {
		res := runSmall(t, "fft", p)
		if res.Counters.Ops == 0 {
			t.Errorf("%v: no ops recorded", p)
		}
		t.Logf("%v: cycles=%d linkBytes=%d replicaReads=%d",
			p, res.Cycles, res.Counters.LinkBytes, res.Counters.ReplicaReads)
	}
}

func TestReplicaProtocolsServeLocalReads(t *testing.T) {
	for _, p := range []topology.Protocol{topology.ProtoAllow, topology.ProtoDeny} {
		res := runSmall(t, "xsbench", p)
		if res.Counters.ReplicaReads == 0 {
			t.Errorf("%v: no reads served by the replica", p)
		}
	}
}

func TestDveReducesInterSocketTraffic(t *testing.T) {
	base := runSmall(t, "graph500", topology.ProtoBaseline)
	for _, p := range []topology.Protocol{topology.ProtoAllow, topology.ProtoDeny} {
		res := runSmall(t, "graph500", p)
		if res.Counters.LinkBytes >= base.Counters.LinkBytes {
			t.Errorf("%v link bytes %d >= baseline %d", p, res.Counters.LinkBytes, base.Counters.LinkBytes)
		}
	}
}

func TestDenyBeatsAllowOnReadMostly(t *testing.T) {
	allow := runSmall(t, "xsbench", topology.ProtoAllow)
	deny := runSmall(t, "xsbench", topology.ProtoDeny)
	if deny.Cycles >= allow.Cycles {
		t.Errorf("deny (%d cycles) not faster than allow (%d) on read-mostly xsbench",
			deny.Cycles, allow.Cycles)
	}
}

func TestAllowBeatsDenyOnPrivateWriteHeavy(t *testing.T) {
	// canneal has the heaviest private-read/write mix; small-scale runs need
	// enough ops for the write-path deny penalty to dominate.
	run := func(p topology.Protocol) *Result {
		rc := RunConfig{Cfg: topology.Default(p), WarmupOps: 60_000, MeasureOps: 180_000}
		res, err := Run(smallSpec("canneal"), rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	allow := run(topology.ProtoAllow)
	deny := run(topology.ProtoDeny)
	if allow.Cycles >= deny.Cycles {
		t.Errorf("allow (%d cycles) not faster than deny (%d) on private-write-heavy canneal",
			allow.Cycles, deny.Cycles)
	}
}

func TestBaselineClassification(t *testing.T) {
	res := runSmall(t, "canneal", topology.ProtoBaseline)
	mix := res.Counters.SharingMix()
	sum := mix[0] + mix[1] + mix[2] + mix[3]
	if sum < 0.99 {
		t.Fatalf("classification fractions sum to %f", sum)
	}
	// canneal is private-read/write heavy (paper Fig 7: allow winner).
	if mix[3] < 0.3 {
		t.Errorf("canneal private-RW fraction = %f, expected heavy (>0.3)", mix[3])
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runSmall(t, "bfs", topology.ProtoDeny)
	b := runSmall(t, "bfs", topology.ProtoDeny)
	if a.Cycles != b.Cycles || a.Counters.LinkBytes != b.Counters.LinkBytes {
		t.Fatalf("nondeterministic run: %d/%d vs %d/%d cycles/bytes",
			a.Cycles, a.Counters.LinkBytes, b.Cycles, b.Counters.LinkBytes)
	}
}

func TestDynamicTracksBetterProtocol(t *testing.T) {
	res := runSmall(t, "xsbench", topology.ProtoDynamic)
	if res.Counters.EpochsDeny == 0 {
		t.Errorf("dynamic never chose deny on read-mostly xsbench (allow=%d deny=%d)",
			res.Counters.EpochsAllow, res.Counters.EpochsDeny)
	}
}

func TestRunRejectsZeroOps(t *testing.T) {
	_, err := Run(smallSpec("fft"), RunConfig{Cfg: topology.Default(topology.ProtoBaseline)})
	if err == nil {
		t.Fatal("expected error for zero MeasureOps")
	}
}

func TestFaultInjectionRecovers(t *testing.T) {
	rc := RunConfig{
		Cfg:        topology.Default(topology.ProtoDeny),
		MeasureOps: 30_000,
		// Every read of socket 0 in a slice of the address space fails its
		// local ECC check.
		FaultFn: func(socket int, a topology.Addr) bool {
			return socket == 0 && uint64(a)%997 == 0
		},
	}
	res, err := Run(smallSpec("graph500"), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Recoveries == 0 {
		t.Fatal("no replica recoveries despite injected faults")
	}
	if res.Counters.DetectedUncorrect != 0 {
		t.Fatalf("%d DUEs with single-sided faults; replica should recover all",
			res.Counters.DetectedUncorrect)
	}
}

func TestModeString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("Mode.String wrong")
	}
}

func TestScrubbingRunFindsLatentFaults(t *testing.T) {
	rc := RunConfig{
		Cfg:              topology.Default(topology.ProtoDeny),
		MeasureOps:       60_000,
		ScrubIntervalCyc: 4_000,
		ScrubBatch:       32,
		// A sparse fault pattern demand accesses are unlikely to re-touch.
		FaultFn: func(socket int, a topology.Addr) bool {
			return socket == 0 && (uint64(a)/64)%257 == 0
		},
	}
	res, err := Run(smallSpec("lu"), rc)
	if err != nil {
		t.Fatal(err)
	}
	noScrub := rc
	noScrub.ScrubIntervalCyc = 0
	res2, err := Run(smallSpec("lu"), noScrub)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Recoveries <= res2.Counters.Recoveries {
		t.Fatalf("scrubbing found %d recoveries vs %d without — patrol ineffective",
			res.Counters.Recoveries, res2.Counters.Recoveries)
	}
}

// Invariant audit over full-size Dvé runs: after the event queue drains, the
// LLC/directory state must satisfy SWMR, directory agreement, and inclusion
// (the simulator-scale complement of the model checker).
func TestInvariantsAfterRuns(t *testing.T) {
	for _, p := range []topology.Protocol{
		topology.ProtoAllow, topology.ProtoDeny, topology.ProtoDynamic,
	} {
		spec := smallSpec("canneal") // heavy shared read-write traffic
		spec.FootprintMB = 8         // small footprint maximizes conflicts
		res, err := Run(spec, RunConfig{
			Cfg:        topology.Default(p),
			MeasureOps: 80_000,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for _, viol := range res.InvariantViolations {
			t.Errorf("%v: %s", p, viol)
		}
	}
}
