package cache

import (
	"dve/internal/sim"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// Sequencer serializes per-line transactions behind an MSHR: each Do pays a
// fixed access latency, waits for any in-flight transaction on the line,
// and then runs the transaction body with a release function that must be
// called exactly once at completion. Both directory flavours (the home
// directory and the Dvé replica directory) sequence their transactions
// through one of these.
//
// The dispatch goes through a pooled call record and the engine's typed
// fast path, and the release function is built once per record, so an
// uncontended transaction performs no heap allocation here at all. The pool
// is a LIFO free list — reuse order is a pure function of the transaction
// order, never of map iteration, keeping runs deterministic.
type Sequencer struct {
	eng  *sim.Engine
	lat  sim.Cycle
	mshr *MSHR
	free []*seqCall

	// Trace, when non-nil, records contended dispatches (a transaction
	// deferred behind an in-flight one on the same line) as instant events
	// on the owner's (Comp, Socket) track. The disabled path is one nil
	// check; the alloc test pins it at 0 allocs/op.
	Trace  *telemetry.Tracer
	Comp   telemetry.Component
	Socket int
}

// seqCall carries one transaction from Do to its release: it rides the
// event queue, then stays checked out (holding the line) until the body
// calls release, which recycles it.
type seqCall struct {
	q       *Sequencer
	l       topology.Line
	fn      func(release func())
	release func()
}

// NewSequencer creates a sequencer over the MSHR with the given per-access
// latency.
func NewSequencer(eng *sim.Engine, lat sim.Cycle, mshr *MSHR) *Sequencer {
	return &Sequencer{eng: eng, lat: lat, mshr: mshr}
}

// MSHR returns the underlying MSHR table.
func (q *Sequencer) MSHR() *MSHR { return q.mshr }

// Do schedules fn to run on the line after the access latency, serialized
// against any in-flight transaction on the same line.
func (q *Sequencer) Do(l topology.Line, fn func(release func())) {
	c := q.get()
	c.l, c.fn = l, fn
	q.eng.ScheduleFn(q.lat, runSeqCall, c, 0)
}

func (q *Sequencer) get() *seqCall {
	if n := len(q.free); n > 0 {
		c := q.free[n-1]
		q.free = q.free[:n-1]
		return c
	}
	c := &seqCall{q: q}
	c.release = func() {
		// Recycle before waking waiters: a waiter may re-enter Do (which
		// may pop this very record and overwrite c.l), so copy the line
		// out first. LIFO reuse keeps the allocation pattern deterministic.
		l := c.l
		q.free = append(q.free, c)
		for _, w := range q.mshr.Release(l) {
			w()
		}
	}
	return c
}

// runSeqCall dispatches a queued transaction. On the contended path the
// record is recycled immediately and the retry is deferred into the MSHR;
// on the uncontended path the record stays checked out until release.
func runSeqCall(arg any, _ uint64) {
	c := arg.(*seqCall)
	q := c.q
	if q.mshr.Busy(c.l) {
		l, fn := c.l, c.fn
		c.fn = nil
		q.free = append(q.free, c)
		if q.Trace != nil {
			q.Trace.Point(q.Comp, q.Socket, "defer", uint64(l))
		}
		q.mshr.Defer(l, func() { q.Do(l, fn) })
		return
	}
	q.mshr.Allocate(c.l)
	fn := c.fn
	c.fn = nil
	fn(c.release)
}
