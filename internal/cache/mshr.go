package cache

import "dve/internal/topology"

// MSHR tracks in-flight transactions per line. Requests for a line with an
// outstanding transaction are coalesced and serialized, which is the
// invariant the paper's recovery path relies on ("any concurrent request ...
// is serialized and coalesced at the directory in the MSHR", Section V-C3).
type MSHR struct {
	entries map[topology.Line][]func()
	limit   int
	// Stalls counts requests that found the structure at its limit.
	Stalls uint64
}

// NewMSHR creates an MSHR table with a maximum number of distinct in-flight
// lines (0 means unlimited).
func NewMSHR(limit int) *MSHR {
	return &MSHR{entries: make(map[topology.Line][]func()), limit: limit}
}

// Busy reports whether a transaction is outstanding for the line.
func (m *MSHR) Busy(l topology.Line) bool {
	_, ok := m.entries[l]
	return ok
}

// Full reports whether a new line could not be allocated.
func (m *MSHR) Full() bool {
	return m.limit > 0 && len(m.entries) >= m.limit
}

// Allocate reserves the line. It panics if the line is already busy (callers
// must check Busy first) and returns false if the table is full.
func (m *MSHR) Allocate(l topology.Line) bool {
	if m.Busy(l) {
		panic("mshr: double allocate")
	}
	if m.Full() {
		m.Stalls++
		return false
	}
	m.entries[l] = nil
	return true
}

// Defer queues fn to run when the line's current transaction completes.
func (m *MSHR) Defer(l topology.Line, fn func()) {
	if !m.Busy(l) {
		panic("mshr: defer without allocation")
	}
	m.entries[l] = append(m.entries[l], fn)
}

// Release completes the line's transaction and returns the deferred waiters
// in FIFO order. The caller is responsible for running them.
func (m *MSHR) Release(l topology.Line) []func() {
	waiters, ok := m.entries[l]
	if !ok {
		panic("mshr: release without allocation")
	}
	delete(m.entries, l)
	return waiters
}

// Inflight returns the number of lines with outstanding transactions.
func (m *MSHR) Inflight() int { return len(m.entries) }
