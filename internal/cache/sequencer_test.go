package cache

import (
	"testing"

	"dve/internal/sim"
	"dve/internal/topology"
)

// TestSequencerSerializesPerLine checks the MSHR contract survives the
// pooled dispatch: same-line transactions run one at a time in arrival
// order, other lines proceed, and release wakes the deferred waiter.
func TestSequencerSerializesPerLine(t *testing.T) {
	eng := sim.NewEngine()
	q := NewSequencer(eng, 5, NewMSHR(0))
	la, lb := topology.Line(64), topology.Line(128)
	var order []int
	q.Do(la, func(release func()) {
		order = append(order, 0)
		eng.Schedule(50, release) // hold the line
	})
	q.Do(la, func(release func()) {
		order = append(order, 1)
		release()
	})
	q.Do(lb, func(release func()) {
		order = append(order, 2)
		release()
	})
	eng.Run()
	want := []int{0, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v (same-line txn must wait for release; other lines must not)", order, want)
		}
	}
	if q.MSHR().Inflight() != 0 {
		t.Fatalf("%d lines still in flight after all releases", q.MSHR().Inflight())
	}
}

// TestSequencerReentrantDo checks a transaction body may start a new
// transaction on the same line: it must run after this one releases.
func TestSequencerReentrantDo(t *testing.T) {
	eng := sim.NewEngine()
	q := NewSequencer(eng, 5, NewMSHR(0))
	l := topology.Line(64)
	var order []int
	q.Do(l, func(release func()) {
		order = append(order, 0)
		q.Do(l, func(release2 func()) {
			order = append(order, 1)
			release2()
		})
		eng.Schedule(10, release)
	})
	eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("ran %v, want [0 1]", order)
	}
}

// TestSequencerSteadyStateAllocs pins the uncontended dispatch+release
// round trip to zero allocations once the record pool is warm. A fresh
// sequencer has no telemetry tracer attached (Trace == nil), so this also
// pins the disabled-probe path: instrumentation costs one nil check here,
// never an allocation.
func TestSequencerSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	q := NewSequencer(eng, 3, NewMSHR(0))
	if q.Trace != nil {
		t.Fatal("fresh sequencer has a tracer attached")
	}
	body := func(release func()) { release() }
	// Advancing each batch by a multiple of the engine's calendar-ring span
	// keeps every batch in the same (warmed) buckets; 1<<16 cycles is a
	// multiple of any power-of-two ring size up to 64K.
	nop := func() {}
	batch := func() {
		for i := 0; i < 256; i++ {
			q.Do(topology.Line(uint64(i)*64), body)
		}
		eng.Schedule(1<<16, nop)
		eng.Run()
	}
	batch() // warm the record pool and the engine's buckets
	if allocs := testing.AllocsPerRun(20, batch); allocs != 0 {
		t.Fatalf("uncontended Sequencer.Do allocated %.2f times per batch, want 0", allocs)
	}
}

// BenchmarkSequencer measures the uncontended transaction round trip:
// Do -> latency -> body -> release.
func BenchmarkSequencer(b *testing.B) {
	eng := sim.NewEngine()
	q := NewSequencer(eng, 3, NewMSHR(0))
	body := func(release func()) { release() }
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 512
	for n := 0; n < b.N; {
		k := batch
		if b.N-n < k {
			k = b.N - n
		}
		for i := 0; i < k; i++ {
			q.Do(topology.Line(uint64(i)*64), body)
		}
		eng.Schedule(1<<16, nop) // ring-aligned batches, as in the alloc test
		eng.Run()
		n += k
	}
}
