// Package cache provides the set-associative storage arrays used throughout
// the memory hierarchy: per-core L1s, the per-socket shared LLC, the cached
// directory, and the Dvé replica directory. It stores per-line coherence
// state and metadata with LRU replacement, and provides MSHR bookkeeping for
// in-flight transactions.
package cache

import "dve/internal/topology"

// State is a coherence state. The hierarchy uses MOSI at the global level
// (Table II: "hierarchical MOESI/MOSI") plus the replica directory's RM
// state from the deny-based protocol (Section V-C2).
type State uint8

const (
	Invalid State = iota
	Shared
	Owned
	Modified
	// RemoteModified is used only by the deny-based replica directory: the
	// home side holds the line writable, so the local replica is stale.
	RemoteModified
)

// String returns the one-letter protocol name for the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Owned:
		return "O"
	case Modified:
		return "M"
	case RemoteModified:
		return "RM"
	}
	return "?"
}

// Readable reports whether a copy in this state may service loads.
func (s State) Readable() bool { return s == Shared || s == Owned || s == Modified }

// Writable reports whether a copy in this state may service stores.
func (s State) Writable() bool { return s == Modified }

// Entry is one cache line's metadata.
type Entry struct {
	Line    topology.Line
	State   State
	Dirty   bool
	Sharers uint64 // bit vector: cores (local dir) or sockets (global dir)
	Owner   int8   // owning core/socket, -1 if none
	lru     uint64
}

// Cache is a set-associative array with LRU replacement. The zero value is
// unusable; construct with New.
type Cache struct {
	sets     [][]Entry
	ways     int
	setMask  uint64
	lineSz   uint64
	tick     uint64
	Hits     uint64
	Misses   uint64
	Evicts   uint64
	Capacity int
}

// New builds a cache with the given total size, associativity and line size.
// sizeBytes/(ways*lineBytes) must be a power of two (the set count).
func New(sizeBytes, ways, lineBytes int) *Cache {
	nsets := sizeBytes / (ways * lineBytes)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	c := &Cache{
		sets:     make([][]Entry, nsets),
		ways:     ways,
		setMask:  uint64(nsets - 1),
		lineSz:   uint64(lineBytes),
		Capacity: nsets * ways,
	}
	for i := range c.sets {
		c.sets[i] = make([]Entry, 0, ways)
	}
	return c
}

// NewFullyAssoc builds a fully associative structure with the given number
// of entries (used for the replica directory: "fully associative 2K entry
// structure", Section VI).
func NewFullyAssoc(entries, lineBytes int) *Cache {
	c := &Cache{
		sets:     make([][]Entry, 1),
		ways:     entries,
		setMask:  0,
		lineSz:   uint64(lineBytes),
		Capacity: entries,
	}
	c.sets[0] = make([]Entry, 0, entries)
	return c
}

func (c *Cache) setOf(l topology.Line) int {
	return int((uint64(l) / c.lineSz) & c.setMask)
}

// Lookup returns the entry for a line, or nil on miss. It updates LRU and
// hit/miss counters.
func (c *Cache) Lookup(l topology.Line) *Entry {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].Line == l && set[i].State != Invalid {
			c.tick++
			set[i].lru = c.tick
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Peek returns the entry without touching LRU or counters.
func (c *Cache) Peek(l topology.Line) *Entry {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].Line == l && set[i].State != Invalid {
			return &set[i]
		}
	}
	return nil
}

// Insert adds a line in the given state, evicting the LRU entry of the set if
// needed. It returns the inserted entry and, if an eviction occurred, a copy
// of the victim (valid bit via ok).
func (c *Cache) Insert(l topology.Line, s State) (e *Entry, victim Entry, ok bool) {
	si := c.setOf(l)
	set := c.sets[si]
	// Reuse an invalid slot or replace in place if line already present.
	for i := range set {
		if set[i].Line == l && set[i].State != Invalid {
			set[i].State = s
			c.tick++
			set[i].lru = c.tick
			return &set[i], Entry{}, false
		}
	}
	for i := range set {
		if set[i].State == Invalid {
			c.tick++
			set[i] = Entry{Line: l, State: s, Owner: -1, lru: c.tick}
			return &set[i], Entry{}, false
		}
	}
	if len(set) < c.ways {
		c.tick++
		c.sets[si] = append(set, Entry{Line: l, State: s, Owner: -1, lru: c.tick})
		return &c.sets[si][len(c.sets[si])-1], Entry{}, false
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	c.Evicts++
	c.tick++
	set[vi] = Entry{Line: l, State: s, Owner: -1, lru: c.tick}
	return &set[vi], victim, true
}

// VictimFor returns a copy of the entry that Insert would evict for line l,
// without modifying the cache. ok is false when no eviction would occur.
func (c *Cache) VictimFor(l topology.Line) (victim Entry, ok bool) {
	si := c.setOf(l)
	set := c.sets[si]
	for i := range set {
		if set[i].Line == l && set[i].State != Invalid {
			return Entry{}, false
		}
	}
	for i := range set {
		if set[i].State == Invalid {
			return Entry{}, false
		}
	}
	if len(set) < c.ways {
		return Entry{}, false
	}
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	return set[vi], true
}

// Invalidate removes a line; it reports whether the line was present.
func (c *Cache) Invalidate(l topology.Line) bool {
	set := c.sets[c.setOf(l)]
	for i := range set {
		if set[i].Line == l && set[i].State != Invalid {
			set[i].State = Invalid
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries (O(capacity); intended for
// tests and occasional stats, not hot paths).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].State != Invalid {
				n++
			}
		}
	}
	return n
}

// ForEach calls fn for every valid entry; fn may mutate the entry. If fn
// returns false iteration stops.
func (c *Cache) ForEach(fn func(e *Entry) bool) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].State != Invalid {
				if !fn(&set[i]) {
					return
				}
			}
		}
	}
}

// Clear invalidates every entry (used by the dynamic protocol's drain phase).
func (c *Cache) Clear() {
	for _, set := range c.sets {
		for i := range set {
			set[i].State = Invalid
		}
	}
}
