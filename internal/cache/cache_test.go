package cache

import (
	"testing"
	"testing/quick"

	"dve/internal/topology"
)

func line(n uint64) topology.Line { return topology.Line(n * 64) }

func TestLookupMissThenHit(t *testing.T) {
	c := New(1024, 2, 64) // 8 sets x 2 ways
	if c.Lookup(line(1)) != nil {
		t.Fatal("unexpected hit in empty cache")
	}
	c.Insert(line(1), Shared)
	e := c.Lookup(line(1))
	if e == nil || e.State != Shared {
		t.Fatal("expected hit in Shared")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestInsertEvictsLRU(t *testing.T) {
	c := New(128, 2, 64) // 1 set x 2 ways
	c.Insert(line(0), Shared)
	c.Insert(line(1), Modified)
	c.Lookup(line(0)) // touch 0, making 1 the LRU
	_, victim, ok := c.Insert(line(2), Shared)
	if !ok {
		t.Fatal("expected eviction")
	}
	if victim.Line != line(1) || victim.State != Modified {
		t.Fatalf("evicted %v/%v, want line 1 in M", victim.Line, victim.State)
	}
	if c.Peek(line(0)) == nil || c.Peek(line(2)) == nil {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestVictimForMatchesInsert(t *testing.T) {
	c := New(128, 2, 64)
	c.Insert(line(0), Shared)
	c.Insert(line(1), Shared)
	v, ok := c.VictimFor(line(2))
	if !ok || v.Line != line(0) {
		t.Fatalf("VictimFor = %v/%v, want line 0", v.Line, ok)
	}
	_, victim, ok2 := c.Insert(line(2), Shared)
	if !ok2 || victim.Line != v.Line {
		t.Fatal("VictimFor disagreed with Insert")
	}
	// Already-present or free-slot cases produce no victim.
	if _, ok := c.VictimFor(line(2)); ok {
		t.Fatal("VictimFor on resident line should report no victim")
	}
}

func TestInsertExistingUpgrades(t *testing.T) {
	c := New(1024, 2, 64)
	c.Insert(line(5), Shared)
	e, _, ok := c.Insert(line(5), Modified)
	if ok {
		t.Fatal("re-insert should not evict")
	}
	if e.State != Modified {
		t.Fatalf("state = %v, want M", e.State)
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1024, 2, 64)
	c.Insert(line(3), Owned)
	if !c.Invalidate(line(3)) {
		t.Fatal("Invalidate missed a resident line")
	}
	if c.Invalidate(line(3)) {
		t.Fatal("Invalidate hit an invalid line")
	}
	if c.Lookup(line(3)) != nil {
		t.Fatal("line readable after invalidate")
	}
}

func TestFullyAssoc(t *testing.T) {
	c := NewFullyAssoc(4, 64)
	for i := uint64(0); i < 4; i++ {
		c.Insert(line(i*1000), Shared) // wildly different sets if indexed
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy())
	}
	_, victim, ok := c.Insert(line(9999), Shared)
	if !ok || victim.Line != line(0) {
		t.Fatalf("expected LRU eviction of line 0, got %v/%v", victim.Line, ok)
	}
}

func TestForEachAndClear(t *testing.T) {
	c := NewFullyAssoc(8, 64)
	for i := uint64(0); i < 5; i++ {
		c.Insert(line(i), Shared)
	}
	n := 0
	c.ForEach(func(e *Entry) bool { n++; return true })
	if n != 5 {
		t.Fatalf("ForEach visited %d, want 5", n)
	}
	n = 0
	c.ForEach(func(e *Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ForEach early-stop visited %d, want 1", n)
	}
	c.Clear()
	if c.Occupancy() != 0 {
		t.Fatal("Clear left valid entries")
	}
}

func TestStateHelpers(t *testing.T) {
	if !Shared.Readable() || !Modified.Readable() || !Owned.Readable() {
		t.Fatal("S/M/O must be readable")
	}
	if Invalid.Readable() || RemoteModified.Readable() {
		t.Fatal("I/RM must not be readable")
	}
	if !Modified.Writable() || Shared.Writable() {
		t.Fatal("writable wrong")
	}
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Owned: "O", Modified: "M", RemoteModified: "RM", State(9): "?"} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(192, 1, 64) // 3 sets
}

// Property: the cache never holds more than capacity entries and a just-
// inserted line is always resident.
func TestCapacityProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(2048, 4, 64) // 8 sets x 4 ways
		for _, ln := range lines {
			l := line(uint64(ln))
			c.Insert(l, Shared)
			if c.Peek(l) == nil {
				return false
			}
			if c.Occupancy() > c.Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRLifecycle(t *testing.T) {
	m := NewMSHR(2)
	l := line(1)
	if m.Busy(l) {
		t.Fatal("fresh MSHR busy")
	}
	if !m.Allocate(l) {
		t.Fatal("allocate failed")
	}
	ran := []int{}
	m.Defer(l, func() { ran = append(ran, 1) })
	m.Defer(l, func() { ran = append(ran, 2) })
	for _, fn := range m.Release(l) {
		fn()
	}
	if len(ran) != 2 || ran[0] != 1 || ran[1] != 2 {
		t.Fatalf("waiters ran %v, want [1 2]", ran)
	}
	if m.Busy(l) {
		t.Fatal("busy after release")
	}
}

func TestMSHRLimit(t *testing.T) {
	m := NewMSHR(1)
	if !m.Allocate(line(1)) {
		t.Fatal("first allocate failed")
	}
	if m.Allocate(line(2)) {
		t.Fatal("allocate beyond limit succeeded")
	}
	if m.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", m.Stalls)
	}
	if m.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", m.Inflight())
	}
}

func TestMSHRPanics(t *testing.T) {
	m := NewMSHR(0)
	m.Allocate(line(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double allocate did not panic")
			}
		}()
		m.Allocate(line(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("defer without allocation did not panic")
			}
		}()
		m.Defer(line(2), func() {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("release without allocation did not panic")
			}
		}()
		m.Release(line(3))
	}()
}
