package results

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dve/internal/stats"
	"dve/internal/topology"
	"dve/internal/workload"
)

func testKey(t *testing.T, seed int64) Key {
	t.Helper()
	spec, ok := workload.ByName("fft", 16)
	if !ok {
		t.Fatal("fft missing from suite")
	}
	spec.Seed = seed
	k, err := CellKey{
		Workload:   spec,
		Config:     topology.Default(topology.ProtoDeny),
		WarmupOps:  50_000,
		MeasureOps: 120_000,
		Seed:       seed,
	}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// payload mirrors the shape of a cached dve.Result (including a histogram,
// whose JSON round trip the cache depends on) without importing dve.
type payload struct {
	Workload string
	Cycles   uint64
	Counters stats.Counters
}

func testPayload() payload {
	p := payload{Workload: "fft", Cycles: 123_456}
	p.Counters.LLCMisses = 42
	p.Counters.LinkBytes = 9000
	for _, v := range []uint64{1, 2, 3, 100, 5000} {
		p.Counters.MissLatency.Add(v)
	}
	return p
}

func TestKeyStability(t *testing.T) {
	a, b := testKey(t, 1), testKey(t, 1)
	if a != b {
		t.Fatalf("same inputs hashed differently: %s vs %s", a, b)
	}
	if a == testKey(t, 2) {
		t.Fatal("different seeds produced the same key")
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	var miss payload
	if s.Get(key, &miss) {
		t.Fatal("hit on an empty store")
	}
	want := testPayload()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(key) {
		t.Fatal("Contains false after Put")
	}
	var got payload
	if !s.Get(key, &got) {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated the payload:\ngot  %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// corrupt damages the stored entry file with fn and asserts the store
// treats the entry as a miss (recompute), not an error.
func corruptAndCheck(t *testing.T, name string, fn func(b []byte) []byte) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if err := s.Put(key, testPayload()); err != nil {
		t.Fatal(err)
	}
	path := s.Path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(b), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(key, &out) {
		t.Fatalf("%s: corrupt entry served as a hit", name)
	}
	if s.Contains(key) {
		t.Fatalf("%s: corrupt entry reported present", name)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("%s: corruption not counted: %+v", name, st)
	}
	// The cache must recover: a fresh Put over the damage works.
	if err := s.Put(key, testPayload()); err != nil {
		t.Fatalf("%s: Put over corrupt entry: %v", name, err)
	}
	if !s.Get(key, &out) {
		t.Fatalf("%s: miss after repair Put", name)
	}
}

func TestCorruptionTolerance(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		corruptAndCheck(t, "truncated", func(b []byte) []byte { return b[:len(b)/2] })
	})
	t.Run("bit-flip", func(t *testing.T) {
		corruptAndCheck(t, "bit-flip", func(b []byte) []byte {
			// Flip a bit inside the payload region, far from the envelope
			// framing, so only the checksum can catch it.
			c := append([]byte(nil), b...)
			c[len(c)*3/4] ^= 0x04
			return c
		})
	})
	t.Run("emptied", func(t *testing.T) {
		corruptAndCheck(t, "emptied", func(b []byte) []byte { return nil })
	})
	t.Run("wrong-key", func(t *testing.T) {
		// A valid envelope stored under the wrong filename must not be
		// served for this key.
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		other := testKey(t, 2)
		if err := s.Put(other, testPayload()); err != nil {
			t.Fatal(err)
		}
		key := testKey(t, 1)
		if err := os.MkdirAll(filepath.Dir(s.Path(key)), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(s.Path(other))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.Path(key), b, 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		if s.Get(key, &out) {
			t.Fatal("entry with mismatched embedded key served as a hit")
		}
	})
}

func TestPayloadShapeMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if err := s.Put(key, "just a string"); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(key, &out) {
		t.Fatal("incompatible payload shape served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("shape mismatch not counted as corruption: %+v", st)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	want := testPayload()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				var got payload
				if s.Get(key, &got) && !reflect.DeepEqual(got, want) {
					t.Error("observed a torn entry")
					return
				}
			}
		}()
	}
	wg.Wait()
	// No temp files left behind.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestHitRate(t *testing.T) {
	var st Stats
	if st.HitRate() != 0 {
		t.Fatal("empty stats hit rate != 0")
	}
	st = Stats{Hits: 9, Misses: 1}
	if r := st.HitRate(); r != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", r)
	}
}

// TestOpenSweepsOrphanTempFiles: a crash between CreateTemp and Rename
// strands a .put-* file that no code path would ever touch again. Open
// sweeps them and counts the removals in the corruption ledger.
func TestOpenSweepsOrphanTempFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if err := s1.Put(key, testPayload()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".put-1234", ".put-orphan"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A .put-* directory must not be swept (Remove would fail silently, but
	// the counter must not claim it either) and nothing outside the pattern
	// may be touched.
	if err := os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Swept; got != 2 {
		t.Fatalf("swept = %d, want 2", got)
	}
	for _, name := range []string{".put-1234", ".put-orphan"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep (err %v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated.txt")); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
	// The landed entry is untouched and still validates.
	var out payload
	if !s2.Get(key, &out) || out.Cycles != testPayload().Cycles {
		t.Fatal("live entry unreadable after sweep")
	}
	if !strings.Contains(s2.Stats().String(), "swept=2") {
		t.Fatalf("stats string %q missing sweep count", s2.Stats().String())
	}
}
