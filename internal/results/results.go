// Package results is the content-addressed, on-disk result cache behind the
// experiment matrix, the bench harness, the RAS campaign and the dveserve
// sweep service. Every simulation in this repository is a pure function of
// its inputs (dvelint's determinism analyzer enforces it), so a result can
// be keyed by a stable hash of those inputs and served from disk instead of
// recomputed — the "pay only for what you use" shape the ROADMAP asks the
// serving layer to have.
//
// Key scheme: a cache key is hex(SHA-256("dve-results/v<schema>/<kind>\n" ||
// canonical-JSON(key struct))). The key struct for a simulation cell is
// CellKey — (workload spec, topology config, scale, classify flag, seed) —
// and the schema version is bumped whenever the meaning of any keyed input
// or the cached payload shape changes, which invalidates every old entry at
// once without touching the store.
//
// File format: one JSON envelope per entry at <dir>/<key[:2]>/<key>.json:
//
//	{"schema": 1, "key": "<hex>", "sum": "<sha256 of payload bytes>",
//	 "payload": <result JSON>}
//
// Writes are atomic (temp file in the store root, then rename), so a
// concurrent or crashed writer can never leave a half-written entry under a
// live key. Reads are corruption-tolerant: a missing file, bad JSON, a
// schema or key mismatch, or a checksum failure all report a plain miss
// (counted separately as corruption when the file existed) and the caller
// recomputes — a damaged cache can cost time, never correctness.
package results

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"dve/internal/topology"
	"dve/internal/workload"
)

// SchemaVersion invalidates the whole cache when keyed inputs or payload
// shapes change meaning.
//
// History: 2 — dve.Result grew the telemetry metrics snapshot.
// History: 3 — cells are keyed by execution engine (legacy vs partitioned):
// the partitioned per-socket engine orders cross-socket ties by the mailbox
// merge rule instead of the legacy global sequence, so the two engines are
// distinct statistics universes and must never share cache entries.
// History: 4 — stats.Counters grew the RowHammer defense scores and RAS
// scenarios grew the Hammer arm; cached counter payloads from earlier
// schemas would deserialise with silently-zero hammer columns.
// History: 5 — stats.Counters grew the instrumentation-health columns
// (TraceDropped, FlightDumps) and the metrics snapshot two matching
// series; earlier payloads would replay with those columns silently zero
// and a shorter snapshot vector.
const SchemaVersion = 5

// Key is a content-address: the stable hash of a result's full input set.
type Key string

// HashKey hashes an arbitrary JSON-marshalable key struct under a kind tag.
// The kind keeps payload families (simulation cells, bench measurements,
// campaign runs) from colliding even if their key structs ever encode
// identically.
func HashKey(kind string, v any) (Key, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("results: encoding %s key: %w", kind, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "dve-results/v%d/%s\n", SchemaVersion, kind)
	h.Write(b)
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// CellKey identifies one simulation cell: everything dve.Run's outcome is a
// function of. Seed repeats Workload.Seed so the key scheme's contract —
// (workload spec, topology config, scale, seed, schema version) — is
// explicit even if the spec's layout changes.
type CellKey struct {
	Workload   workload.Spec   `json:"workload"`
	Config     topology.Config `json:"config"`
	WarmupOps  uint64          `json:"warmup_ops"`
	MeasureOps uint64          `json:"measure_ops"`
	Classify   bool            `json:"classify"`
	Seed       int64           `json:"seed"`
	// Engine is the executed engine family ("legacy" or "partitioned") —
	// NOT the requested mode: serial and parallel execution of the
	// partitioned engine are byte-identical and intentionally share a key,
	// while legacy results live in their own universe.
	Engine string `json:"engine"`
}

// Hash returns the cell's content address.
func (k CellKey) Hash() (Key, error) { return HashKey("cell", k) }

// Stats is a point-in-time snapshot of a store's traffic.
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`  // includes corrupt entries
	Corrupt uint64 `json:"corrupt"` // misses where a file existed but failed validation
	Puts    uint64 `json:"puts"`
	Swept   uint64 `json:"swept"` // orphaned .put-* temp files removed at Open
}

// Lookups returns the total number of Get calls counted.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate returns hits/lookups, or 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Store is an on-disk result cache rooted at one directory. All methods are
// safe for concurrent use; entries are sharded into 256 subdirectories by
// the first key byte.
type Store struct {
	dir string

	hits, misses, corrupt, puts, swept atomic.Uint64
}

// Open creates (if needed) and returns the store rooted at dir, sweeping
// any orphaned Put temp files a crashed writer left behind.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: opening store: %w", err)
	}
	s := &Store{dir: dir}
	s.sweepOrphans()
	return s, nil
}

// sweepOrphans removes .put-* temp files from the store root. A crash (or
// kill -9) between CreateTemp and Rename in Put strands one per attempt,
// and nothing else ever deletes them. Swept files are counted in Stats —
// they are the crash-frequency signal of the corruption ledger. The sweep
// is best-effort and unconditional: if another process is mid-Put right
// now, removing its temp file only makes that Put fail (and be retried or
// reported) — it can never corrupt a landed entry, because Rename is the
// only operation that makes an entry visible.
func (s *Store) sweepOrphans() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".put-") {
			continue
		}
		if os.Remove(filepath.Join(s.dir, e.Name())) == nil {
			s.swept.Add(1)
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns where the entry for key lives (whether or not it exists).
func (s *Store) Path(key Key) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = string(key[:2])
	}
	return filepath.Join(s.dir, shard, string(key)+".json")
}

// envelope is the on-disk entry format.
type envelope struct {
	Schema  int             `json:"schema"`
	Key     Key             `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// PayloadSum checksums the canonical (whitespace-compacted) form of a JSON
// payload: the digest a stored envelope carries for these bytes. Exported
// for the sweep fabric, which verifies it end-to-end across the
// worker→coordinator upload so link corruption cannot poison the cache.
func PayloadSum(b []byte) (string, error) { return payloadSum(b) }

// payloadSum checksums the canonical (whitespace-compacted) form of a JSON
// payload, so the digest is stable under any re-indentation the envelope
// encoding may apply.
func payloadSum(b []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, b); err != nil {
		return "", err
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// read loads and validates the entry for key without touching counters.
// exists reports whether a file was present at all (distinguishing a plain
// miss from corruption).
func (s *Store) read(key Key) (payload []byte, exists, ok bool) {
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		return nil, false, false
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil ||
		env.Schema != SchemaVersion || env.Key != key {
		return nil, true, false
	}
	sum, err := payloadSum(env.Payload)
	if err != nil || sum != env.Sum {
		return nil, true, false
	}
	return env.Payload, true, true
}

func (s *Store) miss(corrupt bool) {
	s.misses.Add(1)
	if corrupt {
		s.corrupt.Add(1)
	}
}

// GetRaw returns the validated payload bytes for key, or false on any kind
// of miss (absent, truncated, bit-flipped, wrong schema, wrong key). It
// never returns an error: a cache can only save work, not create failures.
func (s *Store) GetRaw(key Key) ([]byte, bool) {
	payload, exists, ok := s.read(key)
	if !ok {
		s.miss(exists)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Get unmarshals the cached payload for key into out, reporting whether a
// valid entry existed. Corrupt entries behave exactly like misses.
func (s *Store) Get(key Key, out any) bool {
	payload, exists, ok := s.read(key)
	if ok {
		// A payload that no longer fits the caller's type (a shape change
		// without a schema bump) counts as corruption too: fall back to
		// recompute.
		ok = json.Unmarshal(payload, out) == nil
	}
	if !ok {
		s.miss(exists)
		return false
	}
	s.hits.Add(1)
	return true
}

// Put stores v under key atomically: the entry is written to a temp file in
// the store root and renamed into place, so readers only ever observe
// complete entries and concurrent writers of the same key race benignly.
func (s *Store) Put(key Key, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("results: encoding payload: %w", err)
	}
	sum, err := payloadSum(payload)
	if err != nil {
		return fmt.Errorf("results: encoding payload: %w", err)
	}
	env := envelope{
		Schema:  SchemaVersion,
		Key:     key,
		Sum:     sum,
		Payload: payload,
	}
	b, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("results: encoding envelope: %w", err)
	}
	dst := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: put %s: %w", key, err)
	}
	s.puts.Add(1)
	return nil
}

// Contains reports whether a valid entry exists for key without counting a
// lookup (used by the sweep service to classify enqueue requests).
func (s *Store) Contains(key Key) bool {
	_, _, ok := s.read(key)
	return ok
}

// Stats snapshots the store's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
		Swept:   s.swept.Load(),
	}
}

// String renders the traffic snapshot for CLI reporting.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d corrupt=%d puts=%d swept=%d hit-rate=%.1f%%",
		s.Hits, s.Misses, s.Corrupt, s.Puts, s.Swept, 100*s.HitRate())
}
