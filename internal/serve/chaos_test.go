package serve

// The chaos harness: run a full workload×protocol matrix through a
// coordinator + 3 fabric workers while every fault the design claims to
// tolerate is injected at once —
//
//   - a worker is killed mid-cell (silent death: no fail RPC, heartbeats
//     just stop), so its lease must expire and the cell must be re-leased;
//   - every coordinator↔worker message may be dropped, delayed, duplicated,
//     or bit-flipped in flight (the chaos transport sits at the Doer seam);
//   - landed cache entries are bit-flipped on disk mid-flight, so completed
//     cells must be detected as corrupt and healed by resubmission.
//
// The assertion is the strongest one the service makes: after the dust
// settles, every cell's /result payload is byte-identical to a fault-free
// solo run of the same matrix, and the fault ledger (lease expirations,
// re-enqueues, degraded transitions) is visible in /metrics/prom.
//
// Opt-in: go test ./internal/serve -chaos [-race]. Skipped otherwise — the
// harness trades a few wall-clock seconds for fault coverage, which is CI's
// budget, not the inner loop's.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dve/internal/dve"
	"dve/internal/results"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

var chaosFlag = flag.Bool("chaos", false, "run the chaos fault-injection harness")

// chaosRand is a tiny seeded splitmix64 stream: the harness must be
// repeatable, so it never touches the global rand source.
type chaosRand struct {
	mu sync.Mutex
	z  uint64
}

func (r *chaosRand) next() uint64 {
	r.mu.Lock()
	r.z += 0x9e3779b97f4a7c15
	z := r.z
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *chaosRand) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// chaosTransport wraps a Doer with message-level faults: drop before send,
// drop after send (the response is lost but the coordinator acted), delay,
// duplicate, and request-body bit flips.
type chaosTransport struct {
	base Doer
	rng  *chaosRand

	dropBefore float64
	dropAfter  float64
	dup        float64
	corrupt    float64
	delayMax   time.Duration

	drops, dups, corrupts uint64 // via rng.mu? no: own mutex
	mu                    sync.Mutex
}

func (c *chaosTransport) count(f func(*chaosTransport)) {
	c.mu.Lock()
	f(c)
	c.mu.Unlock()
}

var errChaosDrop = fmt.Errorf("chaos: message dropped")

func (c *chaosTransport) Do(req *http.Request) (*http.Response, error) {
	body, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, err
	}
	if d := time.Duration(c.rng.float() * float64(c.delayMax)); d > 0 {
		time.Sleep(d)
	}
	if c.rng.float() < c.dropBefore {
		c.count(func(t *chaosTransport) { t.drops++ })
		return nil, errChaosDrop
	}
	send := body
	if len(body) > 2 && c.rng.float() < c.corrupt {
		c.count(func(t *chaosTransport) { t.corrupts++ })
		send = append([]byte(nil), body...)
		send[1+int(c.rng.next()%uint64(len(send)-2))] ^= 0x40
	}
	if c.rng.float() < c.dup {
		// Deliver the message twice; the first response is discarded, as if
		// lost. Exercises at-least-once semantics on every endpoint.
		c.count(func(t *chaosTransport) { t.dups++ })
		first := req.Clone(req.Context())
		first.Body = io.NopCloser(bytes.NewReader(send))
		if resp, err := c.base.Do(first); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	req2 := req.Clone(req.Context())
	req2.Body = io.NopCloser(bytes.NewReader(send))
	resp, err := c.base.Do(req2)
	if err != nil {
		return nil, err
	}
	if c.rng.float() < c.dropAfter {
		// The coordinator processed the message; the worker never hears.
		c.count(func(t *chaosTransport) { t.drops++ })
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errChaosDrop
	}
	return resp, nil
}

// chaosResult fabricates a deterministic, cell-specific result: the same
// bytes from the solo reference pass, the local degraded pool, and every
// fabric worker, so byte-identity is a meaningful assertion.
func chaosResult(spec workload.Spec, cfg topology.Config) *dve.Result {
	h := uint64(1469598103934665603)
	for _, b := range []byte(spec.Name + "/" + cfg.Protocol.String()) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return &dve.Result{Workload: spec.Name, Protocol: cfg.Protocol, Cycles: h%1000000 + 1}
}

const chaosMatrix = `{"workloads":["fft","lbm","canneal"],"protocols":["baseline","deny","dynamic"]}`

// pollChaos polls /metrics until ok or ~15s pass.
func pollChaos(t *testing.T, url, what string, ok func(Metrics) bool) Metrics {
	t.Helper()
	var m Metrics
	for i := 0; i < 3000; i++ {
		m = getMetrics(t, url)
		if ok(m) {
			return m
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("chaos: %s never happened; metrics %+v", what, m)
	return m
}

func getMetrics(t *testing.T, url string) Metrics {
	t.Helper()
	r, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var m Metrics
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestChaosFabric(t *testing.T) {
	if !*chaosFlag {
		t.Skip("chaos harness is opt-in: go test ./internal/serve -chaos")
	}

	// ---- Reference pass: the same matrix, fault-free, solo. -------------
	reference := make(map[string][]byte) // key -> /result bytes
	{
		s := newTestServer(t, 4, 64, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
			return chaosResult(spec, cfg), false, nil
		})
		s.Start()
		ts := httptest.NewServer(s.Handler())
		resp, rr := postRun(t, ts.URL, chaosMatrix)
		if resp.StatusCode != http.StatusOK || len(rr.Cells) != 9 {
			t.Fatalf("reference POST /run = %d with %d cells", resp.StatusCode, len(rr.Cells))
		}
		waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 9 })
		for _, c := range rr.Cells {
			r, err := http.Get(ts.URL + "/result/" + c.Key)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := readAll(r)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("reference result %s = %d", c.Key, r.StatusCode)
			}
			reference[c.Key] = b
		}
		s.Drain()
		ts.Close()
	}

	// ---- Chaos pass: same matrix, every fault at once. ------------------
	s := newCoordinator(t, 100*time.Millisecond, 300*time.Millisecond,
		func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
			return chaosResult(spec, cfg), false, nil
		})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	chaosExec := func(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error) {
		return chaosResult(spec, cfg), nil
	}
	newChaosWorker := func(id string, seed uint64,
		exec func(workload.Spec, topology.Config, bool, uint64, uint64, dve.EngineMode) (*dve.Result, error)) (*Worker, *chaosTransport) {
		tr := &chaosTransport{
			base:       &http.Client{},
			rng:        &chaosRand{z: seed},
			dropBefore: 0.08,
			dropAfter:  0.05,
			dup:        0.10,
			corrupt:    0.12,
			delayMax:   4 * time.Millisecond,
		}
		w, err := NewWorker(WorkerConfig{
			Coordinator: ts.URL,
			ID:          id,
			PollEvery:   2 * time.Millisecond,
			RPCTimeout:  2 * time.Second,
			RPCRetries:  6,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			Seed:        seed,
			Client:      tr,
			Exec:        exec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w, tr
	}

	// The doomed worker blocks inside its first cell until it is killed.
	stuck := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	doomedCtx, kill := context.WithCancel(context.Background())
	defer kill()
	doomed, _ := newChaosWorker("doomed", 0xD00D,
		func(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error) {
			once.Do(func() { close(stuck) })
			<-release
			return nil, context.Canceled
		})
	go doomed.Run(doomedCtx)
	pollChaos(t, ts.URL, "doomed worker registration", func(m Metrics) bool { return !m.Degraded })

	resp, rr := postRun(t, ts.URL, chaosMatrix)
	if resp.StatusCode != http.StatusOK || len(rr.Cells) != 9 {
		t.Fatalf("chaos POST /run = %d with %d cells", resp.StatusCode, len(rr.Cells))
	}

	// A live SSE watcher rides the chaos sweep from start to finish: whatever
	// faults hit the fabric, the stream must end with one terminal "done"
	// frame whose aggregate matches the sweep. Drained continuously, so a
	// resync frame (slow-consumer drop) is tolerated but not expected.
	watchDone := make(chan watchSnapshot, 1)
	watchErr := make(chan error, 1)
	go func() {
		r, err := http.Get(fmt.Sprintf("%s/watch/%d", ts.URL, rr.Sweep))
		if err != nil {
			watchErr <- err
			return
		}
		defer r.Body.Close()
		br := bufio.NewReader(r.Body)
		for {
			ev, err := readSSE(t, br)
			if err != nil {
				watchErr <- fmt.Errorf("chaos SSE stream broke: %w", err)
				return
			}
			switch ev.name {
			case "snapshot", "cell", "resync":
				// progress frames; keep draining
			case "done":
				var snap watchSnapshot
				if err := json.Unmarshal(ev.data, &snap); err != nil {
					watchErr <- err
					return
				}
				watchDone <- snap
				return
			default:
				watchErr <- fmt.Errorf("chaos SSE: unexpected event %q", ev.name)
				return
			}
		}
	}()

	<-stuck // the doomed worker holds a lease on some cell

	// Two healthy-but-faulty workers join; then the doomed one dies
	// mid-cell without a goodbye.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var trs []*chaosTransport
	for i, id := range []string{"w1", "w2"} {
		w, tr := newChaosWorker(id, uint64(0xC0FFEE+i), chaosExec)
		trs = append(trs, tr)
		go w.Run(ctx)
	}
	kill()
	close(release)

	// Everything completes despite the chaos; the doomed worker's lease
	// must have expired and been re-enqueued along the way.
	m := pollChaos(t, ts.URL, "matrix completion", func(m Metrics) bool {
		return m.Completed >= 9 && m.Poisoned == 0
	})
	if m.LeaseExpired < 1 || m.Requeued < 1 {
		t.Fatalf("chaos metrics %+v: want at least one lease expiry and requeue", m)
	}
	if m.DegradedTransitions < 1 {
		t.Fatalf("chaos metrics %+v: want at least one degraded transition", m)
	}

	// The watcher that joined before the faults sees the sweep through to a
	// terminal done frame, and its aggregate agrees with the sweep size.
	select {
	case snap := <-watchDone:
		if !snap.Done || snap.Sweep != rr.Sweep {
			t.Fatalf("chaos SSE done frame %+v: not terminal for sweep %d", snap, rr.Sweep)
		}
		if snap.Agg.Total != 9 || snap.Agg.Done != 9 || snap.Agg.Failed != 0 {
			t.Fatalf("chaos SSE final aggregate %+v, want 9/9 done", snap.Agg)
		}
	case err := <-watchErr:
		t.Fatalf("chaos SSE watcher: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("chaos SSE watcher never saw the done frame")
	}

	// The lifecycle trace captured during the chaos pass is a valid
	// wall-domain Chrome trace: spans nest, B/E pair per track, and every
	// cell's span is attributed to a real worker track (tid != 0 is the
	// coordinator's own pool). Scraped before the recovery storm below so
	// the ring has not evicted the matrix's spans.
	{
		r, err := http.Get(ts.URL + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /trace = %d", r.StatusCode)
		}
		evs, err := telemetry.ParseTrace(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("chaos trace does not parse: %v", err)
		}
		if err := telemetry.ValidateTrace(evs); err != nil {
			t.Errorf("chaos trace invalid: %v", err)
		}
		if err := telemetry.ValidateTraceDomain(evs, telemetry.DomainWall); err != nil {
			t.Errorf("chaos trace domain: %v", err)
		}
		spans := make(map[string]bool)
		for _, ev := range evs {
			if ev.Ph == "B" && strings.HasPrefix(ev.Name, "cell ") {
				spans[ev.Name] = true
			}
		}
		if len(spans) < 9 {
			t.Errorf("chaos trace has %d distinct cell spans, want >= 9", len(spans))
		}
	}

	// ---- Disk chaos: bit-flip landed cache entries mid-flight. ----------
	flipped := 0
	for _, c := range rr.Cells[:3] {
		path := s.cache.Path(results.Key(c.Key))
		b, err := os.ReadFile(path)
		if err != nil || len(b) < 16 {
			continue
		}
		b[len(b)/2] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err == nil {
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("chaos: no cache entries could be bit-flipped")
	}

	// ---- Recovery: resubmission heals corrupt-done cells; every /result
	// must converge to the reference bytes. --------------------------------
	remaining := make(map[string]bool, len(reference))
	for k := range reference {
		remaining[k] = true
	}
	for iter := 0; len(remaining) > 0; iter++ {
		if iter >= 2000 {
			t.Fatalf("chaos: %d cells never converged: %v", len(remaining), remaining)
		}
		// Resubmit the matrix: idempotent for live cells, the recovery path
		// for corrupted-done ones.
		if r, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(chaosMatrix)); err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
		for key := range remaining {
			r, err := http.Get(ts.URL + "/result/" + key)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := readAll(r)
			if r.StatusCode != http.StatusOK {
				continue
			}
			if !bytes.Equal(b, reference[key]) {
				t.Fatalf("chaos: /result/%s differs from the fault-free reference:\n%s\n---\n%s",
					key, b, reference[key])
			}
			delete(remaining, key)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ---- The fault ledger is scrapeable. --------------------------------
	r, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	promText, _ := readAll(r)
	if err := telemetry.ValidateExposition(bytes.NewReader(promText)); err != nil {
		t.Errorf("chaos: /metrics/prom is not a valid exposition: %v", err)
	}
	for _, counter := range []string{
		"dveserve_lease_expired_total",
		"dveserve_requeued_total",
		"dveserve_degraded_transitions_total",
	} {
		v, ok := promValue(string(promText), counter)
		if !ok || v < 1 {
			t.Errorf("chaos: %s = %v (found %v) in /metrics/prom, want >= 1\n%s",
				counter, v, ok, promText)
		}
	}

	var dropped, duplicated, corrupted uint64
	for _, tr := range trs {
		tr.mu.Lock()
		dropped += tr.drops
		duplicated += tr.dups
		corrupted += tr.corrupts
		tr.mu.Unlock()
	}
	t.Logf("chaos summary: %d drops, %d duplicates, %d corrupted messages, %d cache flips; metrics %+v",
		dropped, duplicated, corrupted, flipped, getMetrics(t, ts.URL))
	if dropped == 0 && duplicated == 0 && corrupted == 0 {
		t.Error("chaos transport injected no faults: probabilities or traffic volume too low to mean anything")
	}
}

// promValue extracts the value of a metric line from the text exposition.
func promValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			return v, err == nil
		}
	}
	return 0, false
}
