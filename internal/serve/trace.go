package serve

// The fabric trace is the wall-clock counterpart of the simulator's Chrome
// trace: one span per cell execution, on the track of the worker that ran
// it, between instants on the queue track for enqueue/requeue/poison and a
// queue-depth counter series. It is fed entirely by lease-queue lifecycle
// events (queueEvent), so the trace can never disagree with the queue about
// what happened — both are views of the same transition stream. GET /trace
// serves the current document at any time; spans still open (cells mid-run)
// are closed in the output only, so a live sweep renders cleanly without
// disturbing the builder.

import (
	"fmt"
	"sync"
	"time"

	"dve/internal/telemetry"
)

// fabricPid is the one process row of the fabric trace; the queue owns tid
// 0 and each lease owner (local worker or fabric node) gets its own tid.
const fabricPid = 0

type fabricTrace struct {
	b *telemetry.TraceBuilder

	mu      sync.Mutex
	tids    map[string]int // owner -> tid
	nextTid int
}

func newFabricTrace(maxEvents int) *fabricTrace {
	t := &fabricTrace{
		b:       telemetry.NewTraceBuilder(telemetry.DomainWall, maxEvents),
		tids:    make(map[string]int),
		nextTid: 1,
	}
	t.b.ProcessName(fabricPid, "dveserve fabric")
	t.b.ThreadName(fabricPid, 0, "queue")
	return t
}

// tid returns (allocating on first sight) the track for a lease owner.
func (t *fabricTrace) tid(owner string) int {
	t.mu.Lock()
	id, ok := t.tids[owner]
	if !ok {
		id = t.nextTid
		t.nextTid++
		t.tids[owner] = id
		t.b.ThreadName(fabricPid, id, "worker "+owner)
	}
	t.mu.Unlock()
	return id
}

// shortKey abbreviates a 64-hex-char content key for span labels.
func shortKey(k string) string {
	if len(k) > 8 {
		return k[:8]
	}
	return k
}

// spanName is the label shared by a cell's Begin and its eventual End.
func spanName(j job) string {
	return fmt.Sprintf("cell %s/%s %s", j.spec.Name, j.cfg.Protocol, shortKey(string(j.key)))
}

// cellArgs annotates a trace record with the cell's identity and its sweep
// lineage (sweep and cell span IDs minted at /run).
func cellArgs(ev queueEvent) map[string]any {
	a := map[string]any{
		"key":      string(ev.j.key),
		"workload": ev.j.spec.Name,
		"protocol": ev.j.cfg.Protocol.String(),
	}
	if ev.j.sweep != 0 {
		a["sweep"] = ev.j.sweep
		a["cell"] = ev.j.cell
	}
	if ev.leaseID != 0 {
		a["lease"] = ev.leaseID
	}
	if ev.attempts != 0 {
		a["attempt"] = ev.attempts
	}
	if ev.reason != "" {
		a["reason"] = ev.reason
	}
	return a
}

// observe turns one queue transition into trace records. ts is host
// microseconds on the server's monotonic clock (the builder clamps
// per-track regressions, so cross-goroutine emission jitter is safe).
func (t *fabricTrace) observe(ev queueEvent) {
	ts := uint64(ev.at.Microseconds())
	switch ev.kind {
	case evEnqueued, evRequeued, evPoisoned:
		t.b.Instant(fabricPid, 0, ev.kind+" "+shortKey(string(ev.j.key)), ts, cellArgs(ev))
	case evGranted:
		args := cellArgs(ev)
		args["wait_ms"] = ev.waited.Milliseconds()
		t.b.Begin(fabricPid, t.tid(ev.owner), spanName(ev.j), ts, args)
	case evCompleted:
		t.b.End(fabricPid, t.tid(ev.owner), ts, nil)
	case evFailed, evExpired:
		// The owner's span ends here; the cell's next life (requeue) shows
		// up as a fresh span wherever it lands.
		t.b.End(fabricPid, t.tid(ev.owner), ts, map[string]any{"outcome": ev.kind, "reason": ev.reason})
	case evCancelled:
		if ev.owner != "" {
			t.b.End(fabricPid, t.tid(ev.owner), ts, map[string]any{"outcome": "cancelled"})
		} else {
			t.b.Instant(fabricPid, 0, "cancelled "+shortKey(string(ev.j.key)), ts, cellArgs(ev))
		}
	}
	t.b.Counter(fabricPid, 0, "queue_depth", ts, "pending", uint64(ev.depth))
}

// instant records a server-level marker (drain, degraded flips) on the
// queue track at the given monotonic time.
func (t *fabricTrace) instant(name string, at time.Duration, args map[string]any) {
	t.b.Instant(fabricPid, 0, name, uint64(at.Microseconds()), args)
}
