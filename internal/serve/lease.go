package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dve/internal/stats"
)

// The lease queue is the fabric's unit of fault tolerance. A cell is never
// handed to a worker — it is *leased*: the dequeue carries a deadline, the
// worker must renew before it passes, and an expired lease silently returns
// the cell to the queue with its attempt counter bumped. Worker death (or a
// network partition that looks just like it) therefore costs one lease TTL
// of latency, never a lost cell. A cell whose attempts exceed the poison
// cap is quarantined as failed instead of being re-enqueued forever — a
// deterministic simulator bug must not wedge the whole fabric.
//
// Two owner classes exist:
//
//   - local leases (the in-process pool) carry no deadline: an in-process
//     worker can only die with the whole server, so expiry would add a
//     re-run hazard (a slow simulation is not a dead worker) without adding
//     any recovery. This keeps a lone solo dveserve byte-for-byte faithful
//     to the pre-fabric worker pool.
//   - remote leases expire. The coordinator's ticker calls tick() to scan
//     deadlines; every public operation also scans lazily so tests can
//     drive the state machine with a fake clock and no goroutines.
//
// Time is a time.Duration read from an injected monotonic clock (the
// server's stats.Stopwatch in production), never the wall clock directly:
// internal/serve is a simulation-adjacent package and dvelint's determinism
// analyzer bans time.Now outside internal/stats.

// queuedCell is one cell waiting for a lease, with its retry history.
type queuedCell struct {
	job        job
	attempts   int    // leases granted so far
	lastErr    string // most recent failure/expiry reason, for poison reports
	enqueuedAt time.Duration
}

// Queue lifecycle event kinds, in the order a healthy cell sees them.
const (
	evEnqueued  = "enqueued"
	evGranted   = "granted"
	evCompleted = "completed"
	evFailed    = "failed"    // worker-reported failure (before requeue/poison)
	evExpired   = "expired"   // lease passed its deadline (before requeue/poison)
	evRequeued  = "requeued"  // cell returned to the front of the queue
	evPoisoned  = "poisoned"  // attempt budget spent; cell quarantined
	evCancelled = "cancelled" // in-flight incarnation cancelled by a late result
)

// queueEvent is one observed state transition, emitted to the server's
// observability hook strictly outside the queue lock. depth is the pending
// length *after* the transition, so consumers can treat the stream as an
// exact queue-depth gauge rather than a sampled one.
type queueEvent struct {
	kind     string
	j        job
	leaseID  uint64
	owner    string
	local    bool
	attempts int
	reason   string
	depth    int
	waited   time.Duration // granted only: enqueue → grant latency
	at       time.Duration
}

// lease is one granted cell. id is unique for the server's lifetime so a
// stale renew/complete from a worker whose lease already expired can never
// touch the cell's next incarnation.
type lease struct {
	id       uint64
	job      job
	attempts int
	owner    string
	// local leases never expire; remote ones carry a deadline on the
	// queue's monotonic clock.
	local    bool
	deadline time.Duration
}

// leaseStats is a point-in-time snapshot of the queue's fault counters.
type leaseStats struct {
	Pending   int
	Leased    int
	Expired   uint64
	Requeued  uint64
	Poisoned  uint64
	Renewals  uint64
	Completed uint64
	// LeaseWait is the enqueue→grant latency distribution in milliseconds —
	// the placement signal ROADMAP item 1 wants (a queue whose wait grows is
	// starved for workers).
	LeaseWait stats.Histogram
	// LeasedByOwner counts outstanding leases per owner — the per-node
	// in-flight gauge. Computed from live leases, so expiry is reflected
	// immediately.
	LeasedByOwner map[string]int
}

// leaseQueue is the coordinator's cell queue. All methods are safe for
// concurrent use. cond is broadcast on every state change so blocked local
// workers and Drain observe progress.
type leaseQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	ttl         time.Duration
	maxAttempts int
	now         func() time.Duration

	pending []queuedCell // FIFO
	leases  map[uint64]*lease
	nextID  uint64
	closed  bool

	// poisoned reports a cell that exhausted its attempt budget; the server
	// marks the job failed. Called without mu held.
	poisoned func(j job, attempts int, lastErr string)

	// onEvent observes every queue transition. Called without mu held (the
	// server's handler takes its own locks and must not nest inside ours);
	// events collected under mu are flushed right after unlock, the same
	// discipline poisonReport already follows.
	onEvent func(queueEvent)
	evBuf   []queueEvent // guarded by mu; drained before every unlock
	// emitMu serialises flushes in collection order (see flushAndUnlock):
	// without it, two goroutines' batches could interleave and a grant could
	// reach the trace before the expiry that preceded it in queue order.
	emitMu sync.Mutex

	// depthGauge mirrors len(pending), updated inside every mutation while
	// mu is held — a true transition-time gauge, not a sampling-time read.
	depthGauge atomic.Int64

	waitHist stats.Histogram // enqueue→grant latency (ms), guarded by mu

	expired, requeued, poisonCount, renewals, completed uint64 // guarded by mu
}

func newLeaseQueue(ttl time.Duration, maxAttempts int, now func() time.Duration) *leaseQueue {
	q := &leaseQueue{
		ttl:         ttl,
		maxAttempts: maxAttempts,
		now:         now,
		leases:      make(map[uint64]*lease),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// broadcast wakes every waiter (blocked local workers, Drain). Safe to call
// without mu; used by the server when worker liveness changes so a local
// pool gated on degraded mode re-evaluates.
func (q *leaseQueue) broadcast() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// noteLocked records a transition for the observability hook, stamping the
// post-transition depth and the queue clock. mu must be held.
func (q *leaseQueue) noteLocked(ev queueEvent) {
	q.depthGauge.Store(int64(len(q.pending)))
	if q.onEvent == nil {
		return
	}
	ev.depth = len(q.pending)
	ev.at = q.now()
	q.evBuf = append(q.evBuf, ev)
}

// flushAndUnlock delivers the collected events to the hook in exactly the
// order the queue recorded them, then releases mu; mu must be held on
// entry. The emit mutex is lock-
// chained — acquired while mu is still held, released only after delivery —
// so two flushers can never interleave their batches: a grant flushed by
// one goroutine cannot overtake the expiry another goroutine collected
// first, which the lifecycle trace's span nesting depends on. onEvent runs
// under emitMu but outside mu; it must not take mu or the server's job lock.
func (q *leaseQueue) flushAndUnlock() {
	evs := q.evBuf
	q.evBuf = nil
	if len(evs) == 0 || q.onEvent == nil {
		q.mu.Unlock()
		return
	}
	q.emitMu.Lock()
	q.mu.Unlock()
	for i := range evs {
		q.onEvent(evs[i])
	}
	q.emitMu.Unlock()
}

// enqueue appends a fresh cell. Returns false when the queue is closed
// (draining) or already holds depth pending cells.
func (q *leaseQueue) enqueue(j job, depth int) bool {
	q.mu.Lock()
	if q.closed || len(q.pending) >= depth {
		q.mu.Unlock()
		return false
	}
	q.pending = append(q.pending, queuedCell{job: j, attempts: 0, enqueuedAt: q.now()})
	q.noteLocked(queueEvent{kind: evEnqueued, j: j})
	q.cond.Broadcast()
	q.flushAndUnlock()
	return true
}

// pendingLen reports cells waiting for a lease (the backpressure signal).
func (q *leaseQueue) pendingLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// depth is the transition-time queue-depth gauge: updated on every enqueue,
// grant, requeue and cancellation while the queue lock is held, so a scrape
// never reads a value the queue did not actually pass through.
func (q *leaseQueue) depth() int {
	return int(q.depthGauge.Load())
}

// grantLocked pops the oldest pending cell into a new lease. mu must be
// held, and the caller has checked pending is non-empty.
func (q *leaseQueue) grantLocked(owner string, local bool) *lease {
	c := q.pending[0]
	q.pending = q.pending[1:]
	q.nextID++
	l := &lease{
		id:       q.nextID,
		job:      c.job,
		attempts: c.attempts + 1,
		owner:    owner,
		local:    local,
	}
	if !local {
		l.deadline = q.now() + q.ttl
	}
	q.leases[l.id] = l
	waited := q.now() - c.enqueuedAt
	if waited < 0 {
		waited = 0
	}
	q.waitHist.Add(uint64(waited.Milliseconds()))
	q.noteLocked(queueEvent{
		kind: evGranted, j: c.job, leaseID: l.id, owner: owner,
		local: local, attempts: l.attempts, waited: waited,
	})
	q.cond.Broadcast()
	return l
}

// tryLease grants the oldest pending cell to owner, or reports none
// available. local leases never expire. Expired remote leases are reaped
// first, so a cell abandoned by a dead worker is immediately re-grantable.
func (q *leaseQueue) tryLease(owner string, local bool) (*lease, bool) {
	q.mu.Lock()
	poisons := q.reapLocked()
	var l *lease
	if len(q.pending) > 0 {
		l = q.grantLocked(owner, local)
	}
	q.flushAndUnlock()
	for _, p := range poisons {
		q.emitPoison(p)
	}
	return l, l != nil
}

// renew extends a remote lease's deadline. False means the lease is gone —
// expired, completed, or never granted — and the caller must abandon the
// cell (its next incarnation belongs to someone else).
func (q *leaseQueue) renew(id uint64) bool {
	q.mu.Lock()
	poisons := q.reapLocked()
	l, ok := q.leases[id]
	if ok {
		if !l.local {
			l.deadline = q.now() + q.ttl
		}
		q.renewals++
	}
	q.flushAndUnlock()
	for _, p := range poisons {
		q.emitPoison(p)
	}
	return ok
}

// complete retires a lease after its cell's result landed in the cache. The
// returned lease copy carries the owner and attempt count so the caller can
// attribute the completion (trace span, per-node counters).
func (q *leaseQueue) complete(id uint64) (lease, bool) {
	q.mu.Lock()
	l, ok := q.leases[id]
	if !ok {
		q.mu.Unlock()
		return lease{}, false
	}
	delete(q.leases, id)
	q.completed++
	done := *l
	q.noteLocked(queueEvent{
		kind: evCompleted, j: l.job, leaseID: l.id, owner: l.owner,
		local: l.local, attempts: l.attempts,
	})
	q.cond.Broadcast()
	q.flushAndUnlock()
	return done, true
}

// completeKey retires whatever incarnation of the cell with this key is in
// flight: a pending copy is dropped, an outstanding lease is cancelled.
// Used when a result arrives for a cell whose original lease already
// expired (a slow-but-alive worker, a duplicated message): the result is
// valid — simulations are deterministic — so re-running the cell would only
// waste a worker.
func (q *leaseQueue) completeKey(key string) {
	q.mu.Lock()
	for i := range q.pending {
		if string(q.pending[i].job.key) == key {
			j := q.pending[i].job
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			q.noteLocked(queueEvent{kind: evCancelled, j: j, reason: "late result landed"})
			break
		}
	}
	for id, l := range q.leases {
		if string(l.job.key) == key {
			delete(q.leases, id)
			q.noteLocked(queueEvent{
				kind: evCancelled, j: l.job, leaseID: l.id, owner: l.owner,
				local: l.local, attempts: l.attempts, reason: "late result landed",
			})
			break
		}
	}
	q.cond.Broadcast()
	q.flushAndUnlock()
}

// fail returns a leased cell to the queue (or poisons it past the attempt
// cap). reason feeds the eventual poison report.
func (q *leaseQueue) fail(id uint64, reason string) bool {
	q.mu.Lock()
	l, ok := q.leases[id]
	if !ok {
		q.mu.Unlock()
		return false
	}
	delete(q.leases, id)
	q.noteLocked(queueEvent{
		kind: evFailed, j: l.job, leaseID: l.id, owner: l.owner,
		local: l.local, attempts: l.attempts, reason: reason,
	})
	poison := q.requeueLocked(l, reason)
	q.cond.Broadcast()
	q.flushAndUnlock()
	if poison != nil {
		q.emitPoison(*poison)
	}
	return true
}

// poisonReport carries one quarantined cell out of the locked region.
type poisonReport struct {
	j        job
	attempts int
	lastErr  string
}

func (q *leaseQueue) emitPoison(p poisonReport) {
	if q.poisoned != nil {
		q.poisoned(p.j, p.attempts, p.lastErr)
	}
}

// requeueLocked re-enqueues a dead lease's cell, or returns a poison report
// when its attempt budget is spent. mu must be held. Re-enqueued cells go
// to the front: they are the oldest work in the system and a re-run is
// latency someone is already waiting on.
func (q *leaseQueue) requeueLocked(l *lease, reason string) *poisonReport {
	if l.attempts >= q.maxAttempts {
		q.poisonCount++
		q.noteLocked(queueEvent{
			kind: evPoisoned, j: l.job, leaseID: l.id, owner: l.owner,
			local: l.local, attempts: l.attempts, reason: reason,
		})
		return &poisonReport{j: l.job, attempts: l.attempts, lastErr: reason}
	}
	q.requeued++
	q.pending = append([]queuedCell{{job: l.job, attempts: l.attempts, lastErr: reason, enqueuedAt: q.now()}}, q.pending...)
	q.noteLocked(queueEvent{
		kind: evRequeued, j: l.job, leaseID: l.id, owner: l.owner,
		local: l.local, attempts: l.attempts, reason: reason,
	})
	return nil
}

// tick reaps expired leases. The coordinator's background ticker calls it;
// every queue operation also reaps lazily.
func (q *leaseQueue) tick() {
	q.mu.Lock()
	poisons := q.reapLocked()
	if len(poisons) > 0 || q.closed {
		q.cond.Broadcast()
	}
	q.flushAndUnlock()
	for _, p := range poisons {
		q.emitPoison(p)
	}
}

// reapLocked expires overdue remote leases, re-enqueueing or poisoning
// their cells. mu must be held. Expired leases are processed in lease-id
// order so re-enqueue and poison-report order never depends on map
// iteration.
func (q *leaseQueue) reapLocked() []poisonReport {
	var dead []*lease
	now := q.now()
	for _, l := range q.leases {
		if !l.local && now >= l.deadline {
			dead = append(dead, l)
		}
	}
	if len(dead) == 0 {
		return nil
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].id < dead[j].id })
	var poisons []poisonReport
	for _, l := range dead {
		delete(q.leases, l.id)
		q.expired++
		reason := fmt.Sprintf("lease %d (owner %s) expired after attempt %d", l.id, l.owner, l.attempts)
		q.noteLocked(queueEvent{
			kind: evExpired, j: l.job, leaseID: l.id, owner: l.owner,
			local: l.local, attempts: l.attempts, reason: reason,
		})
		if p := q.requeueLocked(l, reason); p != nil {
			poisons = append(poisons, *p)
		}
	}
	q.cond.Broadcast()
	return poisons
}

// close stops enqueue; pending cells and outstanding leases still drain.
func (q *leaseQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// waitEmpty blocks until the queue is closed with no pending cells and no
// outstanding leases: the drain barrier.
func (q *leaseQueue) waitEmpty() {
	q.mu.Lock()
	for !(q.closed && len(q.pending) == 0 && len(q.leases) == 0) {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// acquire blocks until a cell is available and allowed() permits this owner
// to take it, granting a lease; it returns false when the queue has fully
// drained (closed, empty, nothing leased) and the worker should exit.
// allowed is evaluated under the queue lock and must not block. Expiry
// reaping is the ticker's job, not acquire's: a blocked acquire could not
// emit poison reports, so it relies on tick()'s broadcast to wake it when
// expired cells return to pending.
func (q *leaseQueue) acquire(owner string, local bool, allowed func() bool) (*lease, bool) {
	q.mu.Lock()
	for {
		if len(q.pending) > 0 && allowed() {
			l := q.grantLocked(owner, local)
			q.flushAndUnlock()
			return l, true
		}
		if q.closed && len(q.pending) == 0 && len(q.leases) == 0 {
			q.mu.Unlock()
			return nil, false
		}
		q.cond.Wait()
	}
}

// stats snapshots the queue's counters.
func (q *leaseQueue) stats() leaseStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	byOwner := make(map[string]int, len(q.leases))
	for _, l := range q.leases {
		byOwner[l.owner]++
	}
	return leaseStats{
		Pending:       len(q.pending),
		Leased:        len(q.leases),
		Expired:       q.expired,
		Requeued:      q.requeued,
		Poisoned:      q.poisonCount,
		Renewals:      q.renewals,
		Completed:     q.completed,
		LeaseWait:     q.waitHist,
		LeasedByOwner: byOwner,
	}
}
