package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// newTestServer builds a server whose runCell is replaced by run (no real
// simulations), backed by a fresh cache in a temp dir.
func newTestServer(t *testing.T, workers, depth int,
	run func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error)) *Server {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Runner:     experiments.Runner{Scale: experiments.Quick, Cache: store},
		Workers:    workers,
		QueueDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		s.runCell = run
	}
	return s
}

// fakeResult is a minimal valid result for a cell.
func fakeResult(spec workload.Spec, cfg topology.Config) *dve.Result {
	return &dve.Result{Workload: spec.Name, Protocol: cfg.Protocol, Cycles: 12345}
}

func postRun(t *testing.T, url string, body string) (*http.Response, runResponse) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decoding /run response: %v", err)
	}
	resp.Body.Close()
	return resp, rr
}

func TestEnqueueRunAndFetchResult(t *testing.T) {
	s := newTestServer(t, 2, 8, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, rr := postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d, want 200", resp.StatusCode)
	}
	if len(rr.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(rr.Cells))
	}
	for _, c := range rr.Cells {
		if c.Status != "queued" {
			t.Fatalf("cell %s/%s status %q, want queued", c.Workload, c.Protocol, c.Status)
		}
		if len(c.Key) != 64 {
			t.Fatalf("cell key %q not a sha256 hex", c.Key)
		}
	}

	// Poll the first cell until done; the payload must be the cached result.
	var res dve.Result
	for i := 0; ; i++ {
		r, err := http.Get(ts.URL + "/result/" + rr.Cells[0].Key)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			break
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("GET /result = %d, want 200 or 202", r.StatusCode)
		}
		if i > 10000 {
			t.Fatal("cell never completed")
		}
	}
	if res.Workload != "fft" || res.Cycles != 12345 {
		t.Fatalf("result payload %+v", res)
	}

	// Re-enqueueing the same matrix reports every cell served from cache.
	// (Completion of the first cell is confirmed; wait for the rest.)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 4 })
	_, rr2 := postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}`)
	for _, c := range rr2.Cells {
		if c.Status != "cached" {
			t.Fatalf("repeat cell %s/%s status %q, want cached", c.Workload, c.Protocol, c.Status)
		}
	}
}

func waitForMetrics(t *testing.T, url string, ok func(Metrics) bool) Metrics {
	t.Helper()
	for i := 0; i < 100000; i++ {
		r, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if ok(m) {
			return m
		}
	}
	t.Fatal("metrics condition never met")
	return Metrics{}
}

func TestBackpressure429(t *testing.T) {
	block := make(chan struct{})
	s := newTestServer(t, 1, 1, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		<-block
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One worker (blocked) + one queue slot: the third distinct cell must
	// be rejected with 429.
	resp1, _ := postRun(t, ts.URL, `{"workload":"fft","protocol":"baseline"}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first cell = %d, want 200", resp1.StatusCode)
	}
	// Wait until the worker has picked up the first cell so the single
	// queue slot is free for exactly one more.
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.QueueLen == 0 })
	resp2, _ := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second cell = %d, want 200", resp2.StatusCode)
	}
	resp3, rr3 := postRun(t, ts.URL, `{"workload":"fft","protocol":"dynamic"}`)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third cell = %d, want 429", resp3.StatusCode)
	}
	if !strings.Contains(rr3.Error, "saturated") {
		t.Fatalf("429 body %+v missing saturation message", rr3)
	}
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Rejected == 1 })
	if m.Enqueued != 2 {
		t.Fatalf("metrics %+v, want 2 enqueued", m)
	}

	// Re-requesting an already-queued cell is not a new enqueue and must
	// not be rejected.
	resp4, rr4 := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	if resp4.StatusCode != http.StatusOK || rr4.Cells[0].Status != "queued" {
		t.Fatalf("repeat of queued cell = %d %+v, want 200/queued", resp4.StatusCode, rr4)
	}

	close(block)
	s.Drain()
}

func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 8)
	block := make(chan struct{})
	s := newTestServer(t, 1, 8, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		started <- struct{}{}
		<-block
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["deny"]}`)
	<-started // worker is busy on the first cell; the second sits queued

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Draining })

	// While draining, intake answers 503.
	resp, rr := postRun(t, ts.URL, `{"workload":"canneal","protocol":"deny"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("enqueue during drain = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(rr.Error, "draining") {
		t.Fatalf("503 body %+v missing drain message", rr)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while a cell was still queued")
	default:
	}
	close(block)
	<-drained

	// Every cell accepted before the drain completed.
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return true })
	if m.Completed != 2 || !m.Draining {
		t.Fatalf("post-drain metrics %+v, want 2 completed and draining", m)
	}
}

func TestRunRejectsBadNames(t *testing.T) {
	s := newTestServer(t, 1, 4, nil)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"workload":"nosuch","protocol":"deny"}`,
		`{"workload":"fft","protocol":"nosuch"}`,
		`{}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/result/zzzz"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /result/zzzz = %v %v, want 404", resp.StatusCode, err)
	}
}

func TestFailedCellReports500(t *testing.T) {
	s := newTestServer(t, 1, 4, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return nil, false, errFake
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Failed == 1 })
	r, err := http.Get(ts.URL + "/result/" + rr.Cells[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed cell result = %d, want 500", r.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] != errFake.Error() {
		t.Fatalf("error body %+v", body)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "injected cell failure" }

func TestResultServedByteIdentical(t *testing.T) {
	// A /result 200 body is exactly the cache payload, byte for byte.
	s := newTestServer(t, 1, 4, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 1 })
	r, err := http.Get(ts.URL + "/result/" + rr.Cells[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(r)
	want, ok := s.cache.GetRaw(results.Key(rr.Cells[0].Key))
	if !ok {
		t.Fatal("completed cell missing from cache")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served bytes differ from cache payload:\n%s\n---\n%s", got, want)
	}
}

func readAll(r *http.Response) ([]byte, error) {
	defer r.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}

// TestPrometheusEndpoint checks the text-format exposition: a second
// scrape surface over the same counters as the JSON /metrics, suitable
// for a stock Prometheus scraper.
func TestPrometheusEndpoint(t *testing.T) {
	s := newTestServer(t, 1, 4, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 1 })

	r, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/prom = %d, want 200", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition format", ct)
	}
	body, err := readAll(r)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE dveserve_uptime_seconds gauge",
		"# TYPE dveserve_enqueued_total counter",
		"dveserve_enqueued_total 1",
		"dveserve_completed_total 1",
		"dveserve_workers 1",
		"dveserve_running 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsUptimeAndRunning checks the JSON metrics additions: uptime
// advances monotonically and running counts in-flight worker jobs (the
// wedged-pool signal: queue drained but running stuck > 0).
func TestMetricsUptimeAndRunning(t *testing.T) {
	block := make(chan struct{})
	s := newTestServer(t, 1, 4, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		<-block
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Running == 1 })
	if m.UptimeSeconds < 0 {
		t.Errorf("uptime went backwards: %v", m.UptimeSeconds)
	}
	close(block)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 1 && m.Running == 0 })
	s.Drain()
}
