package serve

// The /fabric API is the coordinator half of the worker protocol: remote
// dveserve worker processes register, pull cell leases, heartbeat renewals
// while a cell runs, and push results (or failures) back. The protocol is
// built to be safe under the faults the chaos harness injects:
//
//   - every message may be dropped, delayed, or duplicated: register,
//     renew, complete and fail are all idempotent, and a completion for a
//     lease that already expired is still accepted (the simulation is
//     deterministic, so the late result is exactly the one a re-run would
//     produce — completeKey cancels the cell's next incarnation instead of
//     wasting a worker on it);
//   - payloads may be corrupted in flight: complete carries a sha256 over
//     the result payload and a mismatch is a 409 that leaves the lease
//     untouched, so the worker's retry (with fresh bytes) heals it;
//   - workers may die silently: any fabric RPC refreshes the worker's
//     liveness window, and the lease ticker re-enqueues what they held.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dve/internal/obslog"
	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// registerRequest announces (or refreshes) a worker.
type registerRequest struct {
	Worker string `json:"worker"`
}

// registerResponse hands the worker its operating parameters, so the fleet
// follows the coordinator's configuration rather than per-node flags.
type registerResponse struct {
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// leaseRequest asks for one cell.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseGrant is one leased cell: everything a worker needs to reproduce the
// cell bit-for-bit, including the scale, so a worker started with different
// flags still simulates exactly what the coordinator keyed. Key lets the
// worker cross-check its own CellKey and refuse version-skewed work.
type leaseGrant struct {
	Lease      uint64          `json:"lease"`
	Key        string          `json:"key"`
	Workload   workload.Spec   `json:"workload"`
	Config     topology.Config `json:"config"`
	Classify   bool            `json:"classify"`
	WarmupOps  uint64          `json:"warmup_ops"`
	MeasureOps uint64          `json:"measure_ops"`
	// Engine is the coordinator's requested engine mode (dve.EngineMode
	// flag spelling). The worker resolves it against its own engine logic
	// when recomputing the key, so a fleet that disagrees about which
	// configs partition refuses the cell instead of caching a result from
	// the wrong statistics universe.
	Engine string `json:"engine"`
	// Sweep and Cell are the span IDs minted at /run, propagated so the
	// worker's own log lines join the coordinator's trace on the same keys.
	// Sweep 0 means the cell predates ID minting (or a test enqueued it
	// directly).
	Sweep uint64 `json:"sweep,omitempty"`
	Cell  uint64 `json:"cell,omitempty"`
}

// renewRequest heartbeats a held lease.
type renewRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// completeRequest uploads a finished cell. Sum is sha256 over the canonical
// payload bytes, end-to-end: computed by the worker before send, verified
// by the coordinator after receive, so link corruption cannot poison the
// shared cache.
type completeRequest struct {
	Worker  string          `json:"worker"`
	Lease   uint64          `json:"lease"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
	Sum     string          `json:"sum"`
}

// failRequest reports a cell the worker could not finish.
type failRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
	Error  string `json:"error"`
}

// decodeFabric parses a fabric request body, 400ing malformed ones.
func decodeFabric(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad fabric body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// touchWorker refreshes a worker's liveness window, registering it on first
// contact (a coordinator restart must not orphan a live fleet that only
// registered with its predecessor).
func (s *Server) touchWorker(id string) *remoteWorker {
	if id == "" {
		id = "anonymous"
	}
	s.remotesMu.Lock()
	rw, ok := s.remotes[id]
	if !ok {
		rw = &remoteWorker{id: id}
		s.remotes[id] = rw
	}
	rw.lastSeen = s.now()
	s.remotesMu.Unlock()
	s.refreshDegraded()
	return rw
}

// workerCounts reports (registered, healthy) fabric workers. Healthy means
// seen within the liveness window.
func (s *Server) workerCounts() (registered, healthy int) {
	cutoff := s.now() - s.workerTTL
	s.remotesMu.Lock()
	defer s.remotesMu.Unlock()
	for _, rw := range s.remotes {
		registered++
		if rw.lastSeen >= cutoff {
			healthy++
		}
	}
	return registered, healthy
}

// refreshDegraded recomputes the degraded flag (coordinator role with zero
// healthy workers) and counts the transition. The local pool is gated on
// this flag, so a transition broadcasts the lease queue to wake it up.
func (s *Server) refreshDegraded() {
	if s.role != RoleCoordinator {
		return
	}
	_, healthy := s.workerCounts()
	next := healthy == 0
	if s.degraded.Swap(next) != next {
		s.degradedTransitions.Add(1)
		s.lq.broadcast()
		event := "degraded_enter"
		if !next {
			event = "degraded_exit"
		}
		s.log.Warn("coordinator", event, obslog.Event{N: uint64(healthy)})
		s.ftrace.instant(event, s.now(), map[string]any{"healthy_workers": healthy})
	}
}

func (s *Server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeFabric(w, r, &req) {
		return
	}
	rw := s.touchWorker(req.Worker)
	if s.log.On(obslog.Info) {
		s.log.Info("coordinator", "worker_registered", obslog.Event{Worker: rw.id})
	}
	writeJSON(w, http.StatusOK, registerResponse{
		LeaseTTLMillis: s.leaseTTL.Milliseconds(),
	})
}

// handleFabricLease grants the oldest pending cell, or 204 when the queue
// has nothing. Leasing stays open during drain: remote workers finishing
// the queue is the drain happy path.
func (s *Server) handleFabricLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeFabric(w, r, &req) {
		return
	}
	rw := s.touchWorker(req.Worker)
	l, ok := s.lq.tryLease(rw.id, false)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.remotesMu.Lock()
	rw.leased++
	s.remotesMu.Unlock()
	s.setState(l.job.key, "running", "")
	writeJSON(w, http.StatusOK, leaseGrant{
		Lease:      l.id,
		Key:        string(l.job.key),
		Workload:   l.job.spec,
		Config:     l.job.cfg,
		Classify:   l.job.classify,
		WarmupOps:  s.runner.Scale.WarmupOps,
		MeasureOps: s.runner.Scale.MeasureOps,
		Engine:     s.runner.Engine.String(),
		Sweep:      l.job.sweep,
		Cell:       l.job.cell,
	})
}

// handleFabricRenew extends a lease. 410 tells the worker its lease is gone
// (expired and re-enqueued, or already completed): it must abandon the cell
// — the next incarnation belongs to someone else.
func (s *Server) handleFabricRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !decodeFabric(w, r, &req) {
		return
	}
	rw := s.touchWorker(req.Worker)
	s.heartbeats.Add(1)
	if !s.lq.renew(req.Lease) {
		if s.log.On(obslog.Warn) {
			s.log.Warn("coordinator", "renew_gone", obslog.Event{Worker: rw.id, Lease: req.Lease})
		}
		writeJSON(w, http.StatusGone, map[string]string{"status": "lease gone"})
		return
	}
	if s.log.On(obslog.Debug) {
		s.log.Debug("coordinator", "lease_renewed", obslog.Event{Worker: rw.id, Lease: req.Lease})
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "renewed"})
}

// handleFabricComplete lands a finished cell in the cache. Accepts late and
// duplicate completions (see the package comment on protocol safety).
func (s *Server) handleFabricComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeFabric(w, r, &req) {
		return
	}
	rw := s.touchWorker(req.Worker)
	sum, err := results.PayloadSum(req.Payload)
	if err != nil || sum != req.Sum {
		// In-flight corruption: reject with 409 (the worker's retryable
		// class) without touching the lease. The worker re-sends fresh
		// bytes while its heartbeats keep the lease alive.
		if s.log.On(obslog.Warn) {
			s.log.Warn("coordinator", "complete_corrupt", obslog.Event{
				Worker: rw.id, Lease: req.Lease, Key: req.Key,
				Detail: "payload checksum mismatch",
			})
		}
		http.Error(w, "payload checksum mismatch", http.StatusConflict)
		return
	}
	key := results.Key(req.Key)
	s.mu.Lock()
	st, known := s.jobs[key]
	var status string
	if known {
		status = st.status
	}
	s.mu.Unlock()
	if !known {
		// Never submitted here (or a coordinator restart lost the table):
		// nothing to attach the result to.
		writeJSON(w, http.StatusGone, map[string]string{"status": "unknown cell"})
		return
	}
	if l, ok := s.lq.complete(req.Lease); ok {
		if string(l.job.key) != req.Key {
			// The lease and the payload disagree: treat as a failed attempt
			// so the cell is re-enqueued rather than mis-filed.
			s.lq.fail(req.Lease, "complete for mismatched key")
			http.Error(w, "lease/key mismatch", http.StatusBadRequest)
			return
		}
	} else {
		// Lease already gone. If the cell is done this is a duplicate
		// message — fine (unless the entry has since been corrupted on
		// disk, in which case the fresh payload below re-lands it).
		// Otherwise the lease expired while the worker was slow-but-alive:
		// the result is still the deterministic truth, so accept it and
		// cancel the cell's requeued incarnation.
		if status == "done" && s.cache.Contains(key) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "duplicate"})
			return
		}
		s.lq.completeKey(req.Key)
	}
	if !s.cache.Contains(key) {
		if err := s.cache.Put(key, req.Payload); err != nil {
			s.failed.Add(1)
			s.setState(key, "failed", err.Error())
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	s.remotesMu.Lock()
	rw.completed++
	s.remotesMu.Unlock()
	s.remoteCompleted.Add(1)
	s.completed.Add(1)
	s.setState(key, "done", "")
	writeJSON(w, http.StatusOK, map[string]string{"status": "done"})
}

// handleFabricFail returns a cell to the queue (or poisons it past the
// attempt cap). Unlike a local-pool failure — which is final, because the
// runner already spent its retry budget in this process — a worker-reported
// failure may be environmental (that node's disk, that node's memory), so
// the cell gets another lease in another failure domain.
func (s *Server) handleFabricFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !decodeFabric(w, r, &req) {
		return
	}
	rw := s.touchWorker(req.Worker)
	s.remotesMu.Lock()
	rw.failed++
	s.remotesMu.Unlock()
	s.remoteFailed.Add(1)
	reason := req.Error
	if reason == "" {
		reason = "worker reported failure"
	}
	s.lq.fail(req.Lease, fmt.Sprintf("worker %s: %s", rw.id, reason))
	writeJSON(w, http.StatusOK, map[string]string{"status": "requeued"})
}

// FabricAddr is a tiny helper for tests and CLIs: the canonical fabric
// endpoint paths, kept next to their handlers.
const (
	pathRegister = "/fabric/register"
	pathLease    = "/fabric/lease"
	pathRenew    = "/fabric/renew"
	pathComplete = "/fabric/complete"
	pathFail     = "/fabric/fail"
)

// leaseDeadlineHint returns a conservative renewal cadence for a TTL.
func leaseDeadlineHint(ttl time.Duration) time.Duration { return ttl / 3 }
