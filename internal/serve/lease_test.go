package serve

// Fake-clock unit tests for the lease state machine: grant → renew →
// complete on the happy path; expiry → re-enqueue with attempt counting and
// the poison cap on the unhappy one. No goroutines, no sleeps — the clock
// is a variable and tick() is called by hand.

import (
	"sync"
	"testing"
	"time"

	"dve/internal/results"
)

// testClock is a manually-advanced monotonic clock.
type testClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *testClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func testJob(key string) job { return job{key: results.Key(key)} }

func newTestQueue(ttl time.Duration, maxAttempts int) (*leaseQueue, *testClock) {
	c := &testClock{}
	return newLeaseQueue(ttl, maxAttempts, c.Now), c
}

func TestLeaseGrantRenewComplete(t *testing.T) {
	q, clk := newTestQueue(100*time.Millisecond, 3)
	if !q.enqueue(testJob("a"), 8) {
		t.Fatal("enqueue refused")
	}
	l, ok := q.tryLease("w1", false)
	if !ok || string(l.job.key) != "a" || l.attempts != 1 {
		t.Fatalf("lease = %+v, %v", l, ok)
	}
	// Renewal pushes the deadline: 80ms steps never expire a 100ms TTL.
	for i := 0; i < 5; i++ {
		clk.Advance(80 * time.Millisecond)
		if !q.renew(l.id) {
			t.Fatalf("renew %d failed", i)
		}
	}
	q.tick()
	if s := q.stats(); s.Expired != 0 || s.Leased != 1 {
		t.Fatalf("stats after renewals: %+v", s)
	}
	if _, ok := q.complete(l.id); !ok {
		t.Fatal("complete failed")
	}
	if s := q.stats(); s.Leased != 0 || s.Completed != 1 || s.Renewals != 5 {
		t.Fatalf("final stats: %+v", s)
	}
}

func TestLeaseExpiryRequeuesWithAttemptCount(t *testing.T) {
	q, clk := newTestQueue(100*time.Millisecond, 3)
	q.enqueue(testJob("a"), 8)
	l1, _ := q.tryLease("w1", false)
	clk.Advance(101 * time.Millisecond)
	q.tick()
	if s := q.stats(); s.Expired != 1 || s.Requeued != 1 || s.Pending != 1 || s.Leased != 0 {
		t.Fatalf("post-expiry stats: %+v", s)
	}
	// The dead lease is unrenewable: its next incarnation is someone else's.
	if q.renew(l1.id) {
		t.Fatal("renew succeeded on an expired lease")
	}
	l2, ok := q.tryLease("w2", false)
	if !ok || l2.attempts != 2 || l2.id == l1.id {
		t.Fatalf("second lease = %+v, %v", l2, ok)
	}
}

func TestLeasePoisonCap(t *testing.T) {
	q, clk := newTestQueue(100*time.Millisecond, 2)
	var poisonedAttempts int
	var poisonedErr string
	q.poisoned = func(j job, attempts int, lastErr string) {
		poisonedAttempts = attempts
		poisonedErr = lastErr
	}
	q.enqueue(testJob("a"), 8)
	for i := 0; i < 2; i++ {
		if _, ok := q.tryLease("w1", false); !ok {
			t.Fatalf("lease %d refused", i)
		}
		clk.Advance(101 * time.Millisecond)
		q.tick()
	}
	s := q.stats()
	if s.Poisoned != 1 || s.Pending != 0 || s.Leased != 0 {
		t.Fatalf("stats after poison: %+v", s)
	}
	if poisonedAttempts != 2 || poisonedErr == "" {
		t.Fatalf("poison report: attempts=%d err=%q", poisonedAttempts, poisonedErr)
	}
	if s.Expired != 2 || s.Requeued != 1 {
		t.Fatalf("expiry ledger: %+v", s)
	}
}

func TestLocalLeaseNeverExpires(t *testing.T) {
	q, clk := newTestQueue(100*time.Millisecond, 3)
	q.enqueue(testJob("a"), 8)
	l, _ := q.tryLease("local-0", true)
	clk.Advance(24 * time.Hour)
	q.tick()
	if s := q.stats(); s.Expired != 0 || s.Leased != 1 {
		t.Fatalf("local lease expired: %+v", s)
	}
	if _, ok := q.complete(l.id); !ok {
		t.Fatal("complete failed after long run")
	}
}

func TestFailRequeuesToFront(t *testing.T) {
	q, _ := newTestQueue(100*time.Millisecond, 3)
	q.enqueue(testJob("a"), 8)
	q.enqueue(testJob("b"), 8)
	l, _ := q.tryLease("w1", false)
	if !q.fail(l.id, "worker reported failure") {
		t.Fatal("fail on live lease refused")
	}
	// The failed cell is the oldest work in the system: it goes back to the
	// front, ahead of b.
	l2, _ := q.tryLease("w2", false)
	if string(l2.job.key) != "a" || l2.attempts != 2 {
		t.Fatalf("after fail, next lease = %+v", l2)
	}
}

func TestCompleteKeyCancelsIncarnations(t *testing.T) {
	q, clk := newTestQueue(100*time.Millisecond, 5)
	// Pending incarnation: expired lease put it back in the queue.
	q.enqueue(testJob("a"), 8)
	q.tryLease("w1", false)
	clk.Advance(101 * time.Millisecond)
	q.tick()
	if s := q.stats(); s.Pending != 1 {
		t.Fatalf("pre-completeKey stats: %+v", s)
	}
	q.completeKey("a")
	if s := q.stats(); s.Pending != 0 {
		t.Fatalf("completeKey left the pending copy: %+v", s)
	}
	// Leased incarnation: cancel it too.
	q.enqueue(testJob("b"), 8)
	q.tryLease("w2", false)
	q.completeKey("b")
	if s := q.stats(); s.Leased != 0 {
		t.Fatalf("completeKey left the leased copy: %+v", s)
	}
}

func TestEnqueueBoundsAndClose(t *testing.T) {
	q, _ := newTestQueue(100*time.Millisecond, 3)
	if !q.enqueue(testJob("a"), 1) {
		t.Fatal("first enqueue refused")
	}
	if q.enqueue(testJob("b"), 1) {
		t.Fatal("enqueue past depth accepted")
	}
	q.close()
	if q.enqueue(testJob("c"), 8) {
		t.Fatal("enqueue after close accepted")
	}
	// waitEmpty returns once the last cell resolves.
	done := make(chan struct{})
	go func() { q.waitEmpty(); close(done) }()
	l, _ := q.tryLease("w1", false)
	select {
	case <-done:
		t.Fatal("waitEmpty returned with a lease outstanding")
	default:
	}
	q.complete(l.id)
	<-done
}

func TestAcquireBlocksUntilAllowed(t *testing.T) {
	q, _ := newTestQueue(100*time.Millisecond, 3)
	allowed := false
	var mu sync.Mutex
	allowedFn := func() bool { mu.Lock(); defer mu.Unlock(); return allowed }

	got := make(chan *lease, 1)
	go func() {
		l, ok := q.acquire("local-0", true, allowedFn)
		if ok {
			got <- l
		}
		close(got)
	}()
	q.enqueue(testJob("a"), 8)
	select {
	case <-got:
		t.Fatal("acquire granted while disallowed")
	case <-time.After(20 * time.Millisecond):
	}
	mu.Lock()
	allowed = true
	mu.Unlock()
	q.broadcast()
	l := <-got
	if l == nil || string(l.job.key) != "a" {
		t.Fatalf("acquire after allow = %+v", l)
	}
}
