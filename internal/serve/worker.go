package serve

// Worker is the remote half of the sweep fabric: a loop that pulls cell
// leases from a coordinator's /fabric API, simulates them, heartbeats while
// they run, and pushes the result payload back. Every RPC carries its own
// timeout and retries with exponential backoff plus full jitter — the
// worker→coordinator path is the one that crosses failure domains, so it
// assumes drops, delays, duplicates and 5xxs as the normal case. Worker
// death needs no cleanup protocol at all: the coordinator's lease expiry is
// the cleanup.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/obslog"
	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Doer is the HTTP seam: http.Client in production, the chaos transport in
// tests (which drops, delays, duplicates and corrupts at this boundary).
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// WorkerConfig wires a Worker to its coordinator.
type WorkerConfig struct {
	// Coordinator is the base URL (e.g. "http://host:8437").
	Coordinator string
	// ID names this worker in the coordinator's registry. Must be set.
	ID string
	// Runner simulates cells. Its Scale is overridden per cell by the
	// coordinator's grant, so the fleet always simulates what the
	// coordinator keyed. Cache may be nil: results travel in the complete
	// RPC; the coordinator's cache is authoritative.
	Runner experiments.Runner
	// PollEvery is the idle delay between lease polls when the queue is
	// empty. 0 means 250ms.
	PollEvery time.Duration
	// RPCTimeout bounds each individual fabric request. 0 means 10s.
	RPCTimeout time.Duration
	// RPCRetries is how many times a failed RPC is re-sent (beyond the
	// first attempt). 0 means 4.
	RPCRetries int
	// BackoffBase/BackoffMax shape the full-jitter exponential backoff
	// between RPC retries. 0 means 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the jitter PRNG (the fabric never touches the global rand
	// source). 0 derives one from ID.
	Seed uint64
	// Client is the HTTP seam; nil means a plain http.Client.
	Client Doer
	// Exec runs one cell; nil means the Runner at the granted scale and
	// engine mode. Tests swap it to control timing and results without
	// simulating.
	Exec func(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error)
	// Sleep replaces the backoff/poll sleep in tests; nil sleeps on a
	// timer honoring context cancellation.
	Sleep func(d time.Duration)
	// Log receives structured lifecycle events (nil-safe). Events carry the
	// sweep/cell span IDs from the coordinator's grant, so a worker's log
	// joins the coordinator's trace on the same correlation keys.
	Log *obslog.Logger
}

// Worker executes one cell at a time against a coordinator. Run N workers
// (each with its own ID) for node-level parallelism.
type Worker struct {
	cfg      WorkerConfig
	leaseTTL time.Duration

	rngMu sync.Mutex
	rng   uint64

	// Stats counters, read via Stats().
	statsMu sync.Mutex
	stats   WorkerStats
}

// WorkerStats is a point-in-time snapshot of one worker's traffic.
type WorkerStats struct {
	Leases     uint64 `json:"leases"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Abandoned  uint64 `json:"abandoned"` // lease gone mid-run (coordinator re-owned the cell)
	RPCRetries uint64 `json:"rpc_retries"`
}

// NewWorker builds a worker from the config, applying defaults.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("serve: WorkerConfig.Coordinator must be set")
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("serve: WorkerConfig.ID must be set")
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 250 * time.Millisecond
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 10 * time.Second
	}
	if cfg.RPCRetries <= 0 {
		cfg.RPCRetries = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range []byte(cfg.ID) {
			seed = seed*1099511628211 + uint64(c) // FNV-ish fold of the ID
		}
		seed |= 1
	}
	w := &Worker{cfg: cfg, rng: seed, leaseTTL: 30 * time.Second}
	if w.cfg.Exec == nil {
		w.cfg.Exec = w.runnerExec
	}
	return w, nil
}

func (w *Worker) runnerExec(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error) {
	r := w.cfg.Runner
	r.Scale = experiments.Scale{WarmupOps: warmup, MeasureOps: measure}
	r.Engine = engine
	res, _, err := r.RunCell(spec, cfg, classify)
	return res, err
}

// ID returns the worker's fabric name.
func (w *Worker) ID() string { return w.cfg.ID }

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.stats
}

func (w *Worker) bump(f func(*WorkerStats)) {
	w.statsMu.Lock()
	f(&w.stats)
	w.statsMu.Unlock()
}

// splitmix64 is the jitter PRNG step (deterministic, goroutine-safe via
// rngMu, and independent of the banned global rand source).
func (w *Worker) rand01() float64 {
	w.rngMu.Lock()
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	w.rngMu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// backoff returns the full-jitter delay for the given retry attempt
// (0-based): uniform in [0, min(max, base·2^attempt)]. Full jitter
// decorrelates a fleet that failed together so it does not retry together.
func (w *Worker) backoff(attempt int) time.Duration {
	cap := w.cfg.BackoffBase << uint(attempt)
	if cap > w.cfg.BackoffMax || cap <= 0 {
		cap = w.cfg.BackoffMax
	}
	return time.Duration(w.rand01() * float64(cap))
}

// sleep pauses for d or until ctx is done, whichever comes first.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	if w.cfg.Sleep != nil {
		w.cfg.Sleep(d)
		return
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// retryable reports whether an RPC status is worth re-sending: server-side
// trouble, backpressure, or the checksum-mismatch 409 a corrupted-in-flight
// payload earns (the retry re-sends fresh bytes).
func retryable(code int) bool {
	return code >= 500 || code == http.StatusConflict || code == http.StatusTooManyRequests
}

// rpc posts one fabric message with per-attempt timeouts and full-jitter
// backoff between attempts. out (when non-nil) receives the decoded 200
// body. The returned status is the last attempt's; err is non-nil only when
// every attempt failed at the transport layer.
func (w *Worker) rpc(ctx context.Context, path string, in any, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("serve: encoding %s: %w", path, err)
	}
	var lastErr error
	for attempt := 0; attempt <= w.cfg.RPCRetries; attempt++ {
		if attempt > 0 {
			w.bump(func(s *WorkerStats) { s.RPCRetries++ })
			w.sleep(ctx, w.backoff(attempt-1))
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		rctx, cancel := context.WithTimeout(ctx, w.cfg.RPCTimeout)
		req, err := http.NewRequestWithContext(rctx, http.MethodPost,
			w.cfg.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.cfg.Client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if retryable(code) {
			resp.Body.Close()
			cancel()
			lastErr = fmt.Errorf("%s: status %d", path, code)
			continue
		}
		if out != nil && code == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(out)
		}
		resp.Body.Close()
		cancel()
		if err != nil {
			// A 200 whose body would not decode is transport corruption
			// too: retry.
			lastErr = fmt.Errorf("%s: decoding response: %w", path, err)
			continue
		}
		return code, nil
	}
	return 0, fmt.Errorf("serve: %s failed after %d attempts: %w",
		path, w.cfg.RPCRetries+1, lastErr)
}

// Run registers and then pulls, executes and reports cells until ctx is
// cancelled. It only returns on cancellation: a coordinator that is down or
// draining is retried forever at the idle poll cadence, so a worker can
// outlive coordinator restarts.
func (w *Worker) Run(ctx context.Context) error {
	registered := false
	for ctx.Err() == nil {
		if !registered {
			var reg registerResponse
			code, err := w.rpc(ctx, pathRegister, registerRequest{Worker: w.cfg.ID}, &reg)
			if err != nil || code != http.StatusOK {
				w.sleep(ctx, w.cfg.PollEvery)
				continue
			}
			if reg.LeaseTTLMillis > 0 {
				w.leaseTTL = time.Duration(reg.LeaseTTLMillis) * time.Millisecond
			}
			registered = true
		}
		var grant leaseGrant
		code, err := w.rpc(ctx, pathLease, leaseRequest{Worker: w.cfg.ID}, &grant)
		switch {
		case err != nil:
			// Coordinator unreachable: drop to re-register (it may have
			// restarted and lost the registry) and poll on.
			registered = false
			w.sleep(ctx, w.cfg.PollEvery)
		case code == http.StatusNoContent:
			w.sleep(ctx, w.cfg.PollEvery)
		case code == http.StatusOK:
			w.bump(func(s *WorkerStats) { s.Leases++ })
			w.execute(ctx, grant)
		default:
			w.sleep(ctx, w.cfg.PollEvery)
		}
	}
	return ctx.Err()
}

// logGrant emits one worker-side lifecycle event carrying the grant's
// correlation IDs.
func (w *Worker) logGrant(lv obslog.Level, event string, grant leaseGrant, detail string) {
	if !w.cfg.Log.On(lv) {
		return
	}
	ev := obslog.Event{
		Lease:  grant.Lease,
		Worker: w.cfg.ID,
		Key:    grant.Key,
		Detail: detail,
	}
	if grant.Sweep != 0 {
		ev.Sweep = fmt.Sprintf("%d", grant.Sweep)
		ev.Cell = fmt.Sprintf("%d/c%d", grant.Sweep, grant.Cell)
	}
	w.cfg.Log.Emit(lv, "worker", event, ev)
}

// execute runs one granted cell: key cross-check, heartbeats while the
// simulation runs, then complete (or fail) with the payload.
func (w *Worker) execute(ctx context.Context, grant leaseGrant) {
	w.logGrant(obslog.Info, "cell_start", grant, "")
	// Recompute the content key locally: a worker whose binary disagrees
	// with the coordinator about what these inputs mean must refuse the
	// cell rather than cache a result under the wrong address. The engine
	// family is resolved with *this* binary's partitioning rules — if the
	// fleet disagrees about which configs partition, the keys diverge and
	// the cell is refused here.
	mode, err := dve.ParseEngineMode(grant.Engine)
	var key results.Key
	if err == nil {
		rc := dve.RunConfig{
			Cfg:        grant.Config,
			WarmupOps:  grant.WarmupOps,
			MeasureOps: grant.MeasureOps,
			Engine:     mode,
			Classify:   grant.Classify,
		}
		key, err = results.CellKey{
			Workload:   grant.Workload,
			Config:     grant.Config,
			WarmupOps:  grant.WarmupOps,
			MeasureOps: grant.MeasureOps,
			Classify:   grant.Classify,
			Seed:       grant.Workload.Seed,
			Engine:     rc.ExecutedEngine(),
		}.Hash()
	}
	if err == nil && string(key) != grant.Key {
		err = fmt.Errorf("cell key mismatch: coordinator %s, worker %s (version skew?)", grant.Key, key)
	}
	if err != nil {
		w.bump(func(s *WorkerStats) { s.Failed++ })
		w.logGrant(obslog.Error, "cell_refused", grant, err.Error())
		w.rpc(ctx, pathFail, failRequest{Worker: w.cfg.ID, Lease: grant.Lease, Error: err.Error()}, nil)
		return
	}

	// Heartbeat at a third of the TTL until the simulation finishes. A 410
	// means the lease is gone — the cell was re-owned; we finish anyway and
	// still report (the coordinator deduplicates and a late deterministic
	// result is as good as any).
	done := make(chan struct{})
	var abandoned bool
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		for {
			t := time.NewTimer(leaseDeadlineHint(w.leaseTTL))
			select {
			case <-done:
				t.Stop()
				return
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			code, err := w.rpc(ctx, pathRenew,
				renewRequest{Worker: w.cfg.ID, Lease: grant.Lease}, nil)
			if err == nil && code == http.StatusGone {
				abandoned = true
				return
			}
		}
	}()

	res, execErr := w.cfg.Exec(grant.Workload, grant.Config, grant.Classify,
		grant.WarmupOps, grant.MeasureOps, mode)
	close(done)
	hbWG.Wait()
	if ctx.Err() != nil {
		return // killed mid-cell: the lease expiry is the cleanup
	}
	if abandoned {
		w.bump(func(s *WorkerStats) { s.Abandoned++ })
		w.logGrant(obslog.Warn, "lease_abandoned", grant,
			"lease re-owned mid-run; reporting the late result anyway")
	}
	if execErr != nil {
		w.bump(func(s *WorkerStats) { s.Failed++ })
		w.logGrant(obslog.Error, "cell_failed", grant, execErr.Error())
		w.rpc(ctx, pathFail,
			failRequest{Worker: w.cfg.ID, Lease: grant.Lease, Error: execErr.Error()}, nil)
		return
	}
	payload, err := json.Marshal(res)
	var code int
	if err == nil {
		var sum string
		sum, err = results.PayloadSum(payload)
		if err == nil {
			code, err = w.rpc(ctx, pathComplete, completeRequest{
				Worker:  w.cfg.ID,
				Lease:   grant.Lease,
				Key:     grant.Key,
				Payload: payload,
				Sum:     sum,
			}, nil)
		}
	}
	if err != nil || code != http.StatusOK {
		// The result never landed (unreachable coordinator, or a terminal
		// rejection such as an unparseably-corrupted upload). Report the
		// attempt as failed so the cell is re-leased promptly; if even that
		// is lost, lease expiry re-enqueues it anyway.
		w.bump(func(s *WorkerStats) { s.Failed++ })
		w.logGrant(obslog.Error, "complete_lost", grant,
			fmt.Sprintf("complete did not land (status %d, err %v)", code, err))
		w.rpc(ctx, pathFail, failRequest{Worker: w.cfg.ID, Lease: grant.Lease,
			Error: fmt.Sprintf("complete did not land (status %d, err %v)", code, err)}, nil)
		return
	}
	w.bump(func(s *WorkerStats) { s.Completed++ })
	w.logGrant(obslog.Info, "cell_done", grant, "")
}
