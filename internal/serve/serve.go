// Package serve is the sweep fabric behind cmd/dveserve: an HTTP front end
// over the experiments runner and the content-addressed result cache that
// scales from one process to a coordinator plus N worker nodes without
// changing what a client sees. Clients enqueue simulation cells (or whole
// workload×protocol matrices), poll for results by cache key, and read
// service metrics.
//
// Execution is organised around a leased cell queue (lease.go): every
// dequeued cell carries a lease that its worker must renew, expired leases
// re-enqueue the cell with an attempt counter, and a poison cap quarantines
// cells that keep dying. Remote workers (worker.go) pull leases over the
// /fabric API (coordinator.go); when none are registered or all have gone
// silent, the coordinator degrades gracefully to its in-process pool, so a
// lone solo dveserve binary behaves exactly like the pre-fabric service.
//
// Client API:
//
//	POST /run      {"workloads": ["fft"], "protocols": ["deny"],
//	                "classify": false}
//	               -> 200 {"cells": [{"workload", "protocol", "key",
//	                  "status": "cached"|"queued"}]}
//	               -> 429 when the queue cannot absorb every new cell
//	                  (already-accepted cells stay queued and are listed)
//	               -> 503 while draining
//	GET /result/<key> -> 200 cached payload | 202 queued/running
//	                  | 500 failed (body has the cell error) | 404 unknown
//	GET /metrics   -> 200 service counters + cache statistics (JSON)
//	GET /metrics/prom -> 200 the same metrics in Prometheus text format
//	GET /healthz   -> 200 while the process is alive (liveness)
//	GET /readyz    -> 200 accepting intake | 503 draining (readiness; flips
//	                  before intake closes so load balancers stop routing
//	                  ahead of the 503s)
//
// Resubmitting a matrix is idempotent: cells are keyed by the results
// content hash, so a cell that is cached answers from disk, and one that is
// queued or running is attached to, never duplicated.
//
// Results are never invented by the service: a 200 from /result is always
// the validated cache entry, so a client sees exactly the bytes a local
// cached run would.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/obslog"
	"dve/internal/results"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Roles the service can run as. A worker node is not a Server at all — it
// is a Worker (worker.go) pointed at a coordinator.
const (
	RoleSolo        = "solo"        // in-process pool only (the PR 4 service)
	RoleCoordinator = "coordinator" // remote workers preferred, local pool as fallback
)

// Config sizes the service.
type Config struct {
	// Runner executes cells; its Cache must be set (the cache is the only
	// place results live — the service holds no payloads in memory).
	Runner experiments.Runner
	// Workers is the in-process simulation pool size. 0 means 4. In
	// coordinator role the pool only runs while degraded (no healthy remote
	// workers).
	Workers int
	// QueueDepth bounds cells waiting for a lease; enqueues past it get
	// 429. 0 means 64.
	QueueDepth int
	// Role is RoleSolo (default) or RoleCoordinator.
	Role string
	// LeaseTTL is how long a remote worker may hold a cell between
	// heartbeats before the coordinator re-enqueues it. 0 means 30s.
	LeaseTTL time.Duration
	// WorkerTTL is how long a registered worker may go silent before it is
	// counted unhealthy (degraded-mode input). 0 means 3×LeaseTTL.
	WorkerTTL time.Duration
	// MaxAttempts caps lease grants per cell before it is quarantined as
	// poisoned. 0 means 5.
	MaxAttempts int
	// DrainGrace is how long Drain holds between flipping /readyz to 503
	// and closing intake, giving load balancers time to stop routing.
	// 0 means no grace window.
	DrainGrace time.Duration
	// Log receives structured lifecycle events (may be nil: every emission
	// is a nil-safe no-op, pinned at zero allocations).
	Log *obslog.Logger
	// TraceEvents caps the fabric lifecycle trace buffer. 0 means 32768.
	TraceEvents int
}

// job is one queued simulation cell. sweep/cell are the span IDs minted at
// POST /run: they ride the job through the lease queue and out to fabric
// workers, so every log line and trace record of this cell's life can be
// joined back to the submission that caused it.
type job struct {
	key      results.Key
	spec     workload.Spec
	cfg      topology.Config
	classify bool
	sweep    uint64
	cell     uint64
}

// jobState tracks a cell the service has accepted. States move
// queued -> running -> done | failed; done cells answer from the cache.
// A re-enqueued cell (lease expiry, worker-reported failure) shows
// "running" until its next lease lands — to a polling client both are 202.
type jobState struct {
	status string // "queued", "running", "done", "failed"
	err    string // set when failed
}

// Server is the sweep service. Create with New, mount Handler, call Start,
// and Drain on shutdown.
type Server struct {
	runner  experiments.Runner
	cache   *results.Store
	workers int
	depth   int
	role    string

	leaseTTL   time.Duration
	workerTTL  time.Duration
	drainGrace time.Duration

	lq *leaseQueue
	wg sync.WaitGroup

	mu       sync.Mutex
	jobs     map[results.Key]*jobState
	draining bool

	// ready is the /readyz signal; it flips false at the top of Drain,
	// strictly before intake starts answering 503.
	ready atomic.Bool

	// remotes is the fabric worker registry. Guarded by remotesMu, which is
	// never held while taking mu or the lease-queue lock.
	remotesMu sync.Mutex
	remotes   map[string]*remoteWorker

	// degraded is true when the local pool is the execution fallback
	// (coordinator role with no healthy remote workers). Solo role never
	// sets it: local execution there is the design, not a degradation.
	degraded            atomic.Bool
	degradedTransitions atomic.Uint64

	enqueued, completed, failed, rejected atomic.Uint64
	heartbeats                            atomic.Uint64
	remoteCompleted, remoteFailed         atomic.Uint64

	// Observability: the structured event log (nil-safe), the wall-clock
	// cell-lifecycle trace, and the live /watch hub. sweepSeq mints sweep
	// IDs at /run.
	log      *obslog.Logger
	ftrace   *fabricTrace
	hub      *watchHub
	sweepSeq atomic.Uint64
	pollMax  time.Duration

	// poisonedKeys is the fault ledger's quarantine list: the content keys
	// of cells the poison cap removed from circulation, capped so a
	// pathological sweep cannot grow it without bound.
	poisonMu     sync.Mutex
	poisonedKeys []string

	tickStop chan struct{}
	tickDone chan struct{}

	// started anchors the uptime report and the lease clock
	// (stats.Stopwatch is the sanctioned wall clock; the service is
	// measurement infrastructure, not simulation).
	started stats.Stopwatch
	now     func() time.Duration

	// sleep is the drain-grace pause; swapped by tests for determinism.
	sleep func(time.Duration)

	// runCell executes one cell; defaults to the runner's cached path.
	// Tests swap it to control timing without running simulations.
	runCell func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error)
}

// remoteWorker is one registered fabric worker.
type remoteWorker struct {
	id        string
	lastSeen  time.Duration // on the server's monotonic clock
	leased    uint64
	completed uint64
	failed    uint64
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Runner.Cache == nil {
		return nil, fmt.Errorf("serve: Runner.Cache must be set")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	switch cfg.Role {
	case "":
		cfg.Role = RoleSolo
	case RoleSolo, RoleCoordinator:
	default:
		return nil, fmt.Errorf("serve: unknown role %q (solo|coordinator)", cfg.Role)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 3 * cfg.LeaseTTL
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.TraceEvents <= 0 {
		cfg.TraceEvents = 32768
	}
	s := &Server{
		runner:     cfg.Runner,
		cache:      cfg.Runner.Cache,
		workers:    cfg.Workers,
		depth:      cfg.QueueDepth,
		role:       cfg.Role,
		leaseTTL:   cfg.LeaseTTL,
		workerTTL:  cfg.WorkerTTL,
		drainGrace: cfg.DrainGrace,
		jobs:       make(map[results.Key]*jobState),
		remotes:    make(map[string]*remoteWorker),
		started:    stats.StartWallClock(),
		sleep:      time.Sleep,
		log:        cfg.Log,
		ftrace:     newFabricTrace(cfg.TraceEvents),
		hub:        newWatchHub(),
		pollMax:    25 * time.Second,
	}
	s.now = s.started.Elapsed
	s.lq = newLeaseQueue(cfg.LeaseTTL, cfg.MaxAttempts, func() time.Duration { return s.now() })
	s.lq.poisoned = func(j job, attempts int, lastErr string) {
		s.failed.Add(1)
		s.quarantine(j.key)
		s.setState(j.key, "failed",
			fmt.Sprintf("poisoned after %d attempts: %s", attempts, lastErr))
	}
	s.lq.onEvent = s.onQueueEvent
	s.runCell = s.runner.RunCell
	s.ready.Store(true)
	// A coordinator with no workers yet is degraded from the first cell: the
	// local pool covers until the fleet arrives.
	s.degraded.Store(cfg.Role == RoleCoordinator)
	return s, nil
}

// Start launches the in-process pool and the lease-expiry ticker.
func (s *Server) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.localWorker(i)
	}
	s.tickStop = make(chan struct{})
	s.tickDone = make(chan struct{})
	every := s.leaseTTL / 4
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	go func() {
		defer close(s.tickDone)
		for {
			select {
			case <-s.tickStop:
				return
			case <-time.After(every):
				s.lq.tick()
				s.refreshDegraded()
			}
		}
	}()
}

// Drain shuts down gracefully, in load-balancer-friendly order: /readyz
// flips to 503 first, the grace window elapses, then intake closes (503 on
// /run), queued cells and outstanding leases finish wherever they are
// (remote workers keep completing; the local pool covers anything
// re-enqueued by an expiry), and Drain returns once the queue is empty and
// the pool has exited. Safe to call more than once; only the first call
// drains.
func (s *Server) Drain() {
	s.ready.Store(false)
	if s.drainGrace > 0 {
		s.sleep(s.drainGrace)
	}
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return
	}
	s.log.Info("coordinator", "drain_begin", obslog.Event{})
	s.ftrace.instant("drain_begin", s.now(), nil)
	s.lq.close()
	s.lq.waitEmpty()
	s.wg.Wait()
	if s.tickStop != nil {
		close(s.tickStop)
		<-s.tickDone
	}
	// Every queued cell has now resolved: close the live streams so /watch
	// consumers get their final aggregate and a clean end-of-stream.
	s.hub.closeAll()
	s.ftrace.instant("drain_done", s.now(), nil)
	s.log.Info("coordinator", "drain_done", obslog.Event{})
}

// localAllowed gates the in-process pool: always in solo role, only while
// degraded in coordinator role (healthy remote workers own the queue).
// Called under the lease-queue lock, so it must stay non-blocking.
func (s *Server) localAllowed() bool {
	return s.role == RoleSolo || s.degraded.Load()
}

func (s *Server) localWorker(i int) {
	defer s.wg.Done()
	owner := fmt.Sprintf("local-%d", i)
	for {
		l, ok := s.lq.acquire(owner, true, s.localAllowed)
		if !ok {
			return
		}
		s.runLease(l)
	}
}

// runLease executes one locally-leased cell. A local failure is final (the
// runner already spent its retry budget in-process, and there is no other
// failure domain to try), matching the pre-fabric pool exactly.
func (s *Server) runLease(l *lease) {
	j := l.job
	s.setState(j.key, "running", "")
	res, _, err := s.runCell(j.spec, j.cfg, j.classify)
	if err != nil {
		s.failed.Add(1)
		s.setState(j.key, "failed", err.Error())
		s.lq.complete(l.id)
		return
	}
	// The real runner stores its result itself; this backstop keeps
	// /result serving even when a swapped-in runCell does not.
	if !s.cache.Contains(j.key) {
		if err := s.cache.Put(j.key, res); err != nil {
			s.failed.Add(1)
			s.setState(j.key, "failed", err.Error())
			s.lq.complete(l.id)
			return
		}
	}
	s.completed.Add(1)
	s.setState(j.key, "done", "")
	s.lq.complete(l.id)
}

func (s *Server) setState(key results.Key, status, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.jobs[key]; ok {
		st.status, st.err = status, errMsg
		// The hub mutation rides under s.mu like every other job-table
		// write, so watchers observe transitions in table order.
		s.hub.update(string(key), status, errMsg)
	}
}

// sweepStr renders a sweep ID for log correlation ("" when the job was not
// minted by /run, e.g. in unit tests that drive the queue directly).
func sweepStr(sweep uint64) string {
	if sweep == 0 {
		return ""
	}
	return fmt.Sprintf("%d", sweep)
}

// cellStr renders the per-cell span ID within a sweep.
func cellStr(sweep, cell uint64) string {
	if sweep == 0 {
		return ""
	}
	return fmt.Sprintf("%d/c%d", sweep, cell)
}

// quarantine appends a poisoned cell's key to the capped fault ledger.
func (s *Server) quarantine(key results.Key) {
	const poisonLedgerCap = 32
	s.poisonMu.Lock()
	if len(s.poisonedKeys) < poisonLedgerCap {
		s.poisonedKeys = append(s.poisonedKeys, string(key))
	}
	s.poisonMu.Unlock()
}

// onQueueEvent is the lease queue's observability hook: every transition
// feeds the wall-clock lifecycle trace and the structured log. Called
// without the queue lock held; must not take s.mu (the enqueue path holds
// it across lq.enqueue).
func (s *Server) onQueueEvent(ev queueEvent) {
	s.ftrace.observe(ev)
	lv := obslog.Info
	switch ev.kind {
	case evFailed, evExpired:
		lv = obslog.Warn
	case evPoisoned:
		lv = obslog.Error
	}
	if !s.log.On(lv) {
		return
	}
	rec := obslog.Event{
		Sweep:   sweepStr(ev.j.sweep),
		Cell:    cellStr(ev.j.sweep, ev.j.cell),
		Lease:   ev.leaseID,
		Worker:  ev.owner,
		Key:     string(ev.j.key),
		Attempt: ev.attempts,
		N:       uint64(ev.depth),
		Detail:  ev.reason,
	}
	if ev.kind == evGranted {
		rec.N = uint64(ev.waited.Milliseconds())
	}
	s.log.Emit(lv, "queue", "cell_"+ev.kind, rec)
}

// runRequest is the POST /run body. Workload/Protocol enqueue one cell;
// Workloads/Protocols enqueue their cross product. Singular and plural
// forms combine.
type runRequest struct {
	Workload  string   `json:"workload,omitempty"`
	Protocol  string   `json:"protocol,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Protocols []string `json:"protocols,omitempty"`
	Classify  bool     `json:"classify,omitempty"`
}

// cellStatus is one cell's disposition in the POST /run response.
type cellStatus struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	Key      string `json:"key"`
	// Status is "cached" (result already on disk) or "queued".
	Status string `json:"status"`
}

// runResponse answers POST /run. Sweep is the ID minted for this
// submission: GET /watch/<sweep> streams the matrix's live progress, and
// every log line and trace span of these cells carries it. On 429, Error is
// set and Cells lists the cells accepted before saturation.
type runResponse struct {
	Sweep uint64       `json:"sweep"`
	Cells []cellStatus `json:"cells"`
	Error string       `json:"error,omitempty"`
}

// Metrics is the GET /metrics payload. UptimeSeconds and Running make a
// wedged pool visible: a service whose Running stays pinned at Workers with
// QueueLen > 0 while Completed stops moving is stuck, which cumulative
// counters alone cannot show. The lease and worker fields are the fabric's
// fault ledger: expirations, re-enqueues, poisoned cells and degraded-mode
// transitions are each visible the moment they happen.
type Metrics struct {
	Role          string        `json:"role"`
	Ready         bool          `json:"ready"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueLen      int           `json:"queue_len"`
	Leased        int           `json:"leased"`
	Running       int           `json:"running"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Enqueued      uint64        `json:"enqueued"`
	Completed     uint64        `json:"completed"`
	Failed        uint64        `json:"failed"`
	Rejected      uint64        `json:"rejected"`
	Draining      bool          `json:"draining"`
	Cache         results.Stats `json:"cache"`

	LeaseExpired        uint64 `json:"lease_expired"`
	Requeued            uint64 `json:"requeued"`
	Poisoned            uint64 `json:"poisoned"`
	Renewals            uint64 `json:"renewals"`
	Heartbeats          uint64 `json:"heartbeats"`
	WorkersRegistered   int    `json:"workers_registered"`
	WorkersHealthy      int    `json:"workers_healthy"`
	Degraded            bool   `json:"degraded"`
	DegradedTransitions uint64 `json:"degraded_transitions"`
	RemoteCompleted     uint64 `json:"remote_completed"`
	RemoteFailed        uint64 `json:"remote_failed"`

	// Observability and placement inputs (ROADMAP item 1): the cache hit
	// rate and per-node load feed cache-aware placement; the lease-wait
	// distribution is the starved-for-workers signal; PoisonedCells is the
	// fault ledger's quarantine list (capped).
	CacheHitRate  float64         `json:"cache_hit_rate"`
	LeaseWaitMs   stats.Histogram `json:"lease_wait_ms"`
	Sweeps        uint64          `json:"sweeps"`
	Watchers      int             `json:"watchers"`
	TraceEvents   int             `json:"trace_events"`
	TraceDropped  uint64          `json:"trace_dropped"`
	LogEmitted    uint64          `json:"log_emitted"`
	LogSinkFails  uint64          `json:"log_sink_fails"`
	Nodes         []NodeMetrics   `json:"nodes,omitempty"`
	PoisonedCells []string        `json:"poisoned_cells,omitempty"`
}

// NodeMetrics is one fabric worker's row in the placement ledger.
type NodeMetrics struct {
	ID        string `json:"id"`
	Healthy   bool   `json:"healthy"`
	Inflight  int    `json:"inflight"` // leases held right now
	Leased    uint64 `json:"leased"`   // leases ever granted
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// Handler returns the service's HTTP routes (client API + fabric API).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/result/", s.handleResult)
	mux.HandleFunc("/watch/", s.handleWatch)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/prom", s.handlePromMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/fabric/register", s.handleFabricRegister)
	mux.HandleFunc("/fabric/lease", s.handleFabricLease)
	mux.HandleFunc("/fabric/renew", s.handleFabricRenew)
	mux.HandleFunc("/fabric/complete", s.handleFabricComplete)
	mux.HandleFunc("/fabric/fail", s.handleFabricFail)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleHealthz is liveness: 200 whenever the process can answer at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"role":           s.role,
		"uptime_seconds": s.started.Elapsed().Seconds(),
	})
}

// handleReadyz is readiness: 503 the moment Drain begins, before intake
// closes, so a load balancer polling it stops routing ahead of the 503s a
// client would otherwise see.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	names := req.Workloads
	if req.Workload != "" {
		names = append(names, req.Workload)
	}
	protoNames := req.Protocols
	if req.Protocol != "" {
		protoNames = append(protoNames, req.Protocol)
	}
	if len(names) == 0 || len(protoNames) == 0 {
		http.Error(w, "need at least one workload and one protocol", http.StatusBadRequest)
		return
	}
	// Resolve everything before touching the queue so a bad name rejects
	// the whole request instead of half-enqueuing a matrix.
	specs := make([]workload.Spec, 0, len(names))
	for _, n := range names {
		spec, ok := workload.ByName(n, 16)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown workload %q", n), http.StatusBadRequest)
			return
		}
		specs = append(specs, spec)
	}
	protos := make([]topology.Protocol, 0, len(protoNames))
	for _, n := range protoNames {
		p, err := topology.ParseProtocol(n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		protos = append(protos, p)
	}

	sweep := s.sweepSeq.Add(1)
	resp := runResponse{Sweep: sweep, Cells: make([]cellStatus, 0, len(specs)*len(protos))}
	if s.log.On(obslog.Info) {
		s.log.Info("coordinator", "sweep_accepted", obslog.Event{
			Sweep: sweepStr(sweep), N: uint64(len(specs) * len(protos)),
		})
	}
	var cellIdx uint64
	for _, spec := range specs {
		for _, p := range protos {
			cfg := topology.Default(p)
			key, err := s.runner.CellKey(spec, cfg, req.Classify)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			cs := cellStatus{Workload: spec.Name, Protocol: p.String(), Key: string(key)}
			code, err := s.enqueue(job{
				key: key, spec: spec, cfg: cfg, classify: req.Classify,
				sweep: sweep, cell: cellIdx,
			})
			cellIdx++
			if err != nil {
				resp.Error = err.Error()
				writeJSON(w, code, resp)
				return
			}
			cs.Status = code2status(code)
			resp.Cells = append(resp.Cells, cs)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// enqueue codes (internal): http.StatusOK = already cached or already
// tracked, http.StatusAccepted = newly queued.
func code2status(code int) string {
	if code == http.StatusAccepted {
		return "queued"
	}
	return "cached"
}

// enqueue admits one cell. It returns StatusOK when the result is already
// on disk, StatusAccepted when the cell was (or already is) queued, and an
// error with 503 (draining) or 429 (queue saturated). Submission is
// idempotent on the content key: a queued or running cell is attached to,
// never enqueued twice.
// watchCellOf builds the /watch registration record for a job.
func watchCellOf(j job, status string) watchCell {
	return watchCell{
		Workload: j.spec.Name,
		Protocol: j.cfg.Protocol.String(),
		Key:      string(j.key),
		Status:   status,
	}
}

func (s *Server) enqueue(j job) (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return http.StatusServiceUnavailable, fmt.Errorf("draining: not accepting new cells")
	}
	if st, ok := s.jobs[j.key]; ok && st.status != "failed" {
		// Already queued or running: attach, nothing to add. A failed cell
		// may be retried by enqueueing again, and a done cell whose cache
		// entry has since been evicted or corrupted is forgotten and
		// re-enqueued — resubmission is the recovery path for post-
		// completion cache damage.
		if st.status != "done" {
			s.hub.addCell(j.sweep, watchCellOf(j, st.status))
			s.mu.Unlock()
			return http.StatusAccepted, nil
		}
		if s.cache.Contains(j.key) {
			s.hub.addCell(j.sweep, watchCellOf(j, "cached"))
			s.mu.Unlock()
			return http.StatusOK, nil
		}
		delete(s.jobs, j.key)
	}
	if s.cache.Contains(j.key) {
		s.jobs[j.key] = &jobState{status: "done"}
		s.hub.addCell(j.sweep, watchCellOf(j, "cached"))
		s.mu.Unlock()
		if s.log.On(obslog.Info) {
			s.log.Info("coordinator", "cell_cache_hit", obslog.Event{
				Sweep: sweepStr(j.sweep), Cell: cellStr(j.sweep, j.cell), Key: string(j.key),
			})
		}
		return http.StatusOK, nil
	}
	// Register for /watch before the queue can race a transition past us:
	// the hub write and the job-table write share s.mu, so the first
	// transition a watcher sees is always later than "queued".
	s.hub.addCell(j.sweep, watchCellOf(j, "queued"))
	if !s.lq.enqueue(j, s.depth) {
		s.hub.updateIn(j.sweep, string(j.key), "rejected", "queue saturated")
		s.mu.Unlock()
		s.rejected.Add(1)
		if s.log.On(obslog.Warn) {
			s.log.Warn("coordinator", "cell_rejected", obslog.Event{
				Sweep: sweepStr(j.sweep), Cell: cellStr(j.sweep, j.cell),
				Key: string(j.key), Detail: "queue saturated",
			})
		}
		return http.StatusTooManyRequests,
			fmt.Errorf("queue saturated (%d cells deep): retry later", s.depth)
	}
	s.jobs[j.key] = &jobState{status: "queued"}
	s.enqueued.Add(1)
	s.mu.Unlock()
	return http.StatusAccepted, nil
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	key := results.Key(strings.TrimPrefix(r.URL.Path, "/result/"))
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	st, tracked := s.jobs[key]
	var status, errMsg string
	if tracked {
		status, errMsg = st.status, st.err
	}
	s.mu.Unlock()
	if tracked {
		switch status {
		case "queued", "running":
			writeJSON(w, http.StatusAccepted, map[string]string{"status": status})
			return
		case "failed":
			writeJSON(w, http.StatusInternalServerError,
				map[string]string{"status": "failed", "error": errMsg})
			return
		}
	}
	payload, ok := s.cache.GetRaw(key)
	if !ok {
		http.Error(w, "unknown key", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// snapshotMetrics assembles the current Metrics under the job-table lock.
func (s *Server) snapshotMetrics() Metrics {
	s.mu.Lock()
	draining := s.draining
	running := 0
	for _, st := range s.jobs {
		if st.status == "running" {
			running++
		}
	}
	s.mu.Unlock()
	registered, healthy := s.workerCounts()
	ls := s.lq.stats()
	cutoff := s.now() - s.workerTTL
	s.remotesMu.Lock()
	nodes := make([]NodeMetrics, 0, len(s.remotes))
	for _, rw := range s.remotes {
		nodes = append(nodes, NodeMetrics{
			ID:        rw.id,
			Healthy:   rw.lastSeen >= cutoff,
			Inflight:  ls.LeasedByOwner[rw.id],
			Leased:    rw.leased,
			Completed: rw.completed,
			Failed:    rw.failed,
		})
	}
	s.remotesMu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	s.poisonMu.Lock()
	poisoned := make([]string, len(s.poisonedKeys))
	copy(poisoned, s.poisonedKeys)
	s.poisonMu.Unlock()
	return Metrics{
		Role:          s.role,
		Ready:         s.ready.Load(),
		Workers:       s.workers,
		QueueDepth:    s.depth,
		QueueLen:      ls.Pending,
		Leased:        ls.Leased,
		Running:       running,
		UptimeSeconds: s.started.Elapsed().Seconds(),
		Enqueued:      s.enqueued.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		Draining:      draining,
		Cache:         s.cache.Stats(),

		LeaseExpired:        ls.Expired,
		Requeued:            ls.Requeued,
		Poisoned:            ls.Poisoned,
		Renewals:            ls.Renewals,
		Heartbeats:          s.heartbeats.Load(),
		WorkersRegistered:   registered,
		WorkersHealthy:      healthy,
		Degraded:            s.degraded.Load(),
		DegradedTransitions: s.degradedTransitions.Load(),
		RemoteCompleted:     s.remoteCompleted.Load(),
		RemoteFailed:        s.remoteFailed.Load(),

		CacheHitRate:  s.cache.Stats().HitRate(),
		LeaseWaitMs:   ls.LeaseWait,
		Sweeps:        s.sweepSeq.Load(),
		Watchers:      s.hub.watchers(),
		TraceEvents:   s.ftrace.b.Events(),
		TraceDropped:  s.ftrace.b.Dropped(),
		LogEmitted:    s.log.Emitted(),
		LogSinkFails:  s.log.SinkFailures(),
		Nodes:         nodes,
		PoisonedCells: poisoned,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// handleTrace serves the wall-clock cell-lifecycle trace as Chrome
// trace-event JSON (load in Perfetto). Valid at any moment: spans still
// open are closed in the output only, so a live sweep renders cleanly.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.ftrace.b.WriteTrace(w)
}

// handlePromMetrics serves the same service metrics in Prometheus text
// exposition format (for scraping alongside the JSON /metrics).
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	m := s.snapshotMetrics()
	reg := telemetry.NewRegistry()
	reg.Gauge("dveserve_uptime_seconds", "host seconds since the service started",
		func() float64 { return m.UptimeSeconds })
	reg.Gauge("dveserve_ready", "1 while accepting intake (readyz)",
		func() float64 { return b2f(m.Ready) })
	reg.Gauge("dveserve_workers", "in-process simulation pool size",
		func() float64 { return float64(m.Workers) })
	reg.Gauge("dveserve_queue_depth", "queue capacity",
		func() float64 { return float64(m.QueueDepth) })
	reg.Gauge("dveserve_queue_len", "cells waiting for a lease (transition-time gauge)",
		func() float64 { return float64(s.lq.depth()) })
	reg.Gauge("dveserve_leased", "cells out under a live lease",
		func() float64 { return float64(m.Leased) })
	reg.Gauge("dveserve_running", "cells executing right now",
		func() float64 { return float64(m.Running) })
	reg.Gauge("dveserve_draining", "1 while shutting down gracefully",
		func() float64 { return b2f(m.Draining) })
	reg.Counter("dveserve_enqueued_total", "cells accepted into the queue",
		func() float64 { return float64(m.Enqueued) })
	reg.Counter("dveserve_completed_total", "cells finished successfully",
		func() float64 { return float64(m.Completed) })
	reg.Counter("dveserve_failed_total", "cells that errored (incl. poisoned)",
		func() float64 { return float64(m.Failed) })
	reg.Counter("dveserve_rejected_total", "enqueues refused with 429",
		func() float64 { return float64(m.Rejected) })
	reg.Counter("dveserve_lease_expired_total", "leases that passed their deadline",
		func() float64 { return float64(m.LeaseExpired) })
	reg.Counter("dveserve_requeued_total", "cells re-enqueued after expiry or worker failure",
		func() float64 { return float64(m.Requeued) })
	reg.Counter("dveserve_poisoned_total", "cells quarantined past the attempt cap",
		func() float64 { return float64(m.Poisoned) })
	reg.Counter("dveserve_renewals_total", "lease renewals granted",
		func() float64 { return float64(m.Renewals) })
	reg.Counter("dveserve_heartbeats_total", "fabric worker heartbeats received",
		func() float64 { return float64(m.Heartbeats) })
	reg.Gauge("dveserve_workers_registered", "fabric workers ever registered",
		func() float64 { return float64(m.WorkersRegistered) })
	reg.Gauge("dveserve_workers_healthy", "fabric workers seen within the liveness window",
		func() float64 { return float64(m.WorkersHealthy) })
	reg.Gauge("dveserve_degraded", "1 while the local pool is covering for absent workers",
		func() float64 { return b2f(m.Degraded) })
	reg.Counter("dveserve_degraded_transitions_total", "degraded-mode entries and exits",
		func() float64 { return float64(m.DegradedTransitions) })
	reg.Counter("dveserve_remote_completed_total", "cells completed by fabric workers",
		func() float64 { return float64(m.RemoteCompleted) })
	reg.Counter("dveserve_remote_failed_total", "cell failures reported by fabric workers",
		func() float64 { return float64(m.RemoteFailed) })
	reg.Counter("dveserve_cache_hits_total", "result-cache hits",
		func() float64 { return float64(m.Cache.Hits) })
	reg.Counter("dveserve_cache_misses_total", "result-cache misses",
		func() float64 { return float64(m.Cache.Misses) })
	reg.Counter("dveserve_cache_corrupt_total", "cache entries rejected as corrupt",
		func() float64 { return float64(m.Cache.Corrupt) })
	reg.Counter("dveserve_cache_swept_total", "orphaned temp files swept at open",
		func() float64 { return float64(m.Cache.Swept) })
	reg.Counter("dveserve_cache_puts_total", "cache writes",
		func() float64 { return float64(m.Cache.Puts) })
	reg.Gauge("dveserve_cache_hit_rate", "result-cache hits per lookup (placement input)",
		func() float64 { return m.CacheHitRate })
	reg.Histogram("dveserve_lease_wait_ms", "enqueue-to-grant latency distribution",
		func() *stats.Histogram { return &m.LeaseWaitMs })
	reg.Counter("dveserve_sweeps_total", "sweep IDs minted by /run",
		func() float64 { return float64(m.Sweeps) })
	reg.Gauge("dveserve_watchers", "attached /watch subscribers",
		func() float64 { return float64(m.Watchers) })
	reg.Gauge("dveserve_trace_events", "buffered fabric trace records",
		func() float64 { return float64(m.TraceEvents) })
	reg.Counter("dveserve_trace_events_dropped_total", "fabric trace records dropped at the cap",
		func() float64 { return float64(m.TraceDropped) })
	reg.Counter("dveserve_log_events_total", "structured log events emitted",
		func() float64 { return float64(m.LogEmitted) })
	reg.Counter("dveserve_log_sink_failures_total", "structured log events a sink refused",
		func() float64 { return float64(m.LogSinkFails) })
	reg.LabeledGauge("dveserve_node_inflight", "leases held right now, by fabric node", "node",
		func() []telemetry.LabeledValue { return nodeSamples(m.Nodes, func(n NodeMetrics) float64 { return float64(n.Inflight) }) })
	reg.LabeledGauge("dveserve_node_leased", "leases ever granted, by fabric node", "node",
		func() []telemetry.LabeledValue { return nodeSamples(m.Nodes, func(n NodeMetrics) float64 { return float64(n.Leased) }) })
	reg.LabeledGauge("dveserve_node_completed", "cells completed, by fabric node", "node",
		func() []telemetry.LabeledValue { return nodeSamples(m.Nodes, func(n NodeMetrics) float64 { return float64(n.Completed) }) })
	reg.LabeledGauge("dveserve_node_failed", "cell failures, by fabric node", "node",
		func() []telemetry.LabeledValue { return nodeSamples(m.Nodes, func(n NodeMetrics) float64 { return float64(n.Failed) }) })
	reg.LabeledGauge("dveserve_node_healthy", "1 while the node is inside its liveness window", "node",
		func() []telemetry.LabeledValue { return nodeSamples(m.Nodes, func(n NodeMetrics) float64 { return b2f(n.Healthy) }) })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// nodeSamples projects one NodeMetrics column into labeled gauge samples
// (already ID-sorted by snapshotMetrics, so scrapes are deterministic).
func nodeSamples(nodes []NodeMetrics, f func(NodeMetrics) float64) []telemetry.LabeledValue {
	out := make([]telemetry.LabeledValue, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, telemetry.LabeledValue{Label: n.ID, Value: f(n)})
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
