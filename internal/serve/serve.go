// Package serve is the sweep service behind cmd/dveserve: a small HTTP
// front end over the experiments runner and the content-addressed result
// cache. Clients enqueue simulation cells (or whole workload×protocol
// matrices), poll for results by cache key, and read service metrics; a
// bounded worker pool executes cells, queue-depth backpressure rejects
// enqueues with 429 when the queue is saturated, and Drain stops intake and
// finishes the queued work for a graceful shutdown.
//
// API:
//
//	POST /run      {"workloads": ["fft"], "protocols": ["deny"],
//	                "classify": false}
//	               -> 200 {"cells": [{"workload", "protocol", "key",
//	                  "status": "cached"|"queued"}]}
//	               -> 429 when the queue cannot absorb every new cell
//	                  (already-accepted cells stay queued and are listed)
//	               -> 503 while draining
//	GET /result/<key> -> 200 cached payload | 202 queued/running
//	                  | 500 failed (body has the cell error) | 404 unknown
//	GET /metrics   -> 200 service counters + cache statistics (JSON)
//	GET /metrics/prom -> 200 the same metrics in Prometheus text format
//
// Results are never invented by the service: a 200 from /result is always
// the validated cache entry, so a client sees exactly the bytes a local
// cached run would.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/results"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Config sizes the service.
type Config struct {
	// Runner executes cells; its Cache must be set (the cache is the only
	// place results live — the service holds no payloads in memory).
	Runner experiments.Runner
	// Workers is the simulation pool size. 0 means 4.
	Workers int
	// QueueDepth bounds cells waiting for a worker; enqueues past it get
	// 429. 0 means 64.
	QueueDepth int
}

// job is one queued simulation cell.
type job struct {
	key      results.Key
	spec     workload.Spec
	cfg      topology.Config
	classify bool
}

// jobState tracks a cell the service has accepted. States move
// queued -> running -> done | failed; done cells answer from the cache.
type jobState struct {
	status string // "queued", "running", "done", "failed"
	err    string // set when failed
}

// Server is the sweep service. Create with New, mount Handler, call Start,
// and Drain on shutdown.
type Server struct {
	runner  experiments.Runner
	cache   *results.Store
	workers int
	depth   int

	queue chan job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[results.Key]*jobState
	draining bool

	enqueued, completed, failed, rejected atomic.Uint64

	// started anchors the uptime report (stats.Stopwatch is the sanctioned
	// wall clock; the service is measurement infrastructure, not simulation).
	started stats.Stopwatch

	// runCell executes one cell; defaults to the runner's cached path.
	// Tests swap it to control timing without running simulations.
	runCell func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error)
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Runner.Cache == nil {
		return nil, fmt.Errorf("serve: Runner.Cache must be set")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	s := &Server{
		runner:  cfg.Runner,
		cache:   cfg.Runner.Cache,
		workers: cfg.Workers,
		depth:   cfg.QueueDepth,
		queue:   make(chan job, cfg.QueueDepth),
		jobs:    make(map[results.Key]*jobState),
		started: stats.StartWallClock(),
	}
	s.runCell = s.runner.RunCell
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain stops accepting new cells, lets the workers finish everything
// already queued, and returns when the pool has exited. Safe to call once.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return
	}
	close(s.queue)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.setState(j.key, "running", "")
		res, _, err := s.runCell(j.spec, j.cfg, j.classify)
		if err != nil {
			s.failed.Add(1)
			s.setState(j.key, "failed", err.Error())
			continue
		}
		// The real runner stores its result itself; this backstop keeps
		// /result serving even when a swapped-in runCell does not.
		if !s.cache.Contains(j.key) {
			if err := s.cache.Put(j.key, res); err != nil {
				s.failed.Add(1)
				s.setState(j.key, "failed", err.Error())
				continue
			}
		}
		s.completed.Add(1)
		s.setState(j.key, "done", "")
	}
}

func (s *Server) setState(key results.Key, status, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.jobs[key]; ok {
		st.status, st.err = status, errMsg
	}
}

// runRequest is the POST /run body. Workload/Protocol enqueue one cell;
// Workloads/Protocols enqueue their cross product. Singular and plural
// forms combine.
type runRequest struct {
	Workload  string   `json:"workload,omitempty"`
	Protocol  string   `json:"protocol,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Protocols []string `json:"protocols,omitempty"`
	Classify  bool     `json:"classify,omitempty"`
}

// cellStatus is one cell's disposition in the POST /run response.
type cellStatus struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	Key      string `json:"key"`
	// Status is "cached" (result already on disk) or "queued".
	Status string `json:"status"`
}

// runResponse answers POST /run. On 429, Error is set and Cells lists the
// cells accepted before saturation.
type runResponse struct {
	Cells []cellStatus `json:"cells"`
	Error string       `json:"error,omitempty"`
}

// Metrics is the GET /metrics payload. UptimeSeconds and Running make a
// wedged pool visible: a service whose Running stays pinned at Workers with
// QueueLen > 0 while Completed stops moving is stuck, which cumulative
// counters alone cannot show.
type Metrics struct {
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueLen      int           `json:"queue_len"`
	Running       int           `json:"running"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Enqueued      uint64        `json:"enqueued"`
	Completed     uint64        `json:"completed"`
	Failed        uint64        `json:"failed"`
	Rejected      uint64        `json:"rejected"`
	Draining      bool          `json:"draining"`
	Cache         results.Stats `json:"cache"`
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/result/", s.handleResult)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/prom", s.handlePromMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	names := req.Workloads
	if req.Workload != "" {
		names = append(names, req.Workload)
	}
	protoNames := req.Protocols
	if req.Protocol != "" {
		protoNames = append(protoNames, req.Protocol)
	}
	if len(names) == 0 || len(protoNames) == 0 {
		http.Error(w, "need at least one workload and one protocol", http.StatusBadRequest)
		return
	}
	// Resolve everything before touching the queue so a bad name rejects
	// the whole request instead of half-enqueuing a matrix.
	specs := make([]workload.Spec, 0, len(names))
	for _, n := range names {
		spec, ok := workload.ByName(n, 16)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown workload %q", n), http.StatusBadRequest)
			return
		}
		specs = append(specs, spec)
	}
	protos := make([]topology.Protocol, 0, len(protoNames))
	for _, n := range protoNames {
		p, err := topology.ParseProtocol(n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		protos = append(protos, p)
	}

	resp := runResponse{Cells: make([]cellStatus, 0, len(specs)*len(protos))}
	for _, spec := range specs {
		for _, p := range protos {
			cfg := topology.Default(p)
			key, err := s.runner.CellKey(spec, cfg, req.Classify)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			cs := cellStatus{Workload: spec.Name, Protocol: p.String(), Key: string(key)}
			code, err := s.enqueue(job{key: key, spec: spec, cfg: cfg, classify: req.Classify})
			if err != nil {
				resp.Error = err.Error()
				writeJSON(w, code, resp)
				return
			}
			cs.Status = code2status(code)
			resp.Cells = append(resp.Cells, cs)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// enqueue codes (internal): http.StatusOK = already cached or already
// tracked, http.StatusAccepted = newly queued.
func code2status(code int) string {
	if code == http.StatusAccepted {
		return "queued"
	}
	return "cached"
}

// enqueue admits one cell. It returns StatusOK when the result is already
// on disk, StatusAccepted when the cell was (or already is) queued, and an
// error with 503 (draining) or 429 (queue saturated).
func (s *Server) enqueue(j job) (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return http.StatusServiceUnavailable, fmt.Errorf("draining: not accepting new cells")
	}
	if st, ok := s.jobs[j.key]; ok && st.status != "failed" {
		// Already cached-done, queued or running: nothing to add. A failed
		// cell may be retried by enqueueing again.
		s.mu.Unlock()
		if st.status == "done" {
			return http.StatusOK, nil
		}
		return http.StatusAccepted, nil
	}
	if s.cache.Contains(j.key) {
		s.jobs[j.key] = &jobState{status: "done"}
		s.mu.Unlock()
		return http.StatusOK, nil
	}
	select {
	case s.queue <- j:
		s.jobs[j.key] = &jobState{status: "queued"}
		s.enqueued.Add(1)
		s.mu.Unlock()
		return http.StatusAccepted, nil
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		return http.StatusTooManyRequests,
			fmt.Errorf("queue saturated (%d cells deep): retry later", s.depth)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	key := results.Key(strings.TrimPrefix(r.URL.Path, "/result/"))
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	st, tracked := s.jobs[key]
	var status, errMsg string
	if tracked {
		status, errMsg = st.status, st.err
	}
	s.mu.Unlock()
	if tracked {
		switch status {
		case "queued", "running":
			writeJSON(w, http.StatusAccepted, map[string]string{"status": status})
			return
		case "failed":
			writeJSON(w, http.StatusInternalServerError,
				map[string]string{"status": "failed", "error": errMsg})
			return
		}
	}
	payload, ok := s.cache.GetRaw(key)
	if !ok {
		http.Error(w, "unknown key", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// snapshotMetrics assembles the current Metrics under the job-table lock.
func (s *Server) snapshotMetrics() Metrics {
	s.mu.Lock()
	draining := s.draining
	running := 0
	for _, st := range s.jobs {
		if st.status == "running" {
			running++
		}
	}
	s.mu.Unlock()
	return Metrics{
		Workers:       s.workers,
		QueueDepth:    s.depth,
		QueueLen:      len(s.queue),
		Running:       running,
		UptimeSeconds: s.started.Elapsed().Seconds(),
		Enqueued:      s.enqueued.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		Draining:      draining,
		Cache:         s.cache.Stats(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// handlePromMetrics serves the same service metrics in Prometheus text
// exposition format (for scraping alongside the JSON /metrics).
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	m := s.snapshotMetrics()
	reg := telemetry.NewRegistry()
	reg.Gauge("dveserve_uptime_seconds", "host seconds since the service started",
		func() float64 { return m.UptimeSeconds })
	reg.Gauge("dveserve_workers", "simulation worker pool size",
		func() float64 { return float64(m.Workers) })
	reg.Gauge("dveserve_queue_depth", "queue capacity",
		func() float64 { return float64(m.QueueDepth) })
	reg.Gauge("dveserve_queue_len", "cells waiting for a worker",
		func() float64 { return float64(m.QueueLen) })
	reg.Gauge("dveserve_running", "cells executing right now",
		func() float64 { return float64(m.Running) })
	reg.Gauge("dveserve_draining", "1 while shutting down gracefully",
		func() float64 { return b2f(m.Draining) })
	reg.Counter("dveserve_enqueued_total", "cells accepted into the queue",
		func() float64 { return float64(m.Enqueued) })
	reg.Counter("dveserve_completed_total", "cells finished successfully",
		func() float64 { return float64(m.Completed) })
	reg.Counter("dveserve_failed_total", "cells that errored",
		func() float64 { return float64(m.Failed) })
	reg.Counter("dveserve_rejected_total", "enqueues refused with 429",
		func() float64 { return float64(m.Rejected) })
	reg.Counter("dveserve_cache_hits_total", "result-cache hits",
		func() float64 { return float64(m.Cache.Hits) })
	reg.Counter("dveserve_cache_misses_total", "result-cache misses",
		func() float64 { return float64(m.Cache.Misses) })
	reg.Counter("dveserve_cache_corrupt_total", "cache entries rejected as corrupt",
		func() float64 { return float64(m.Cache.Corrupt) })
	reg.Counter("dveserve_cache_puts_total", "cache writes",
		func() float64 { return float64(m.Cache.Puts) })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
