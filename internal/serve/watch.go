package serve

// Live sweep progress. POST /run mints a sweep ID; GET /watch/<sweep>
// streams that matrix's per-cell state transitions as Server-Sent Events —
// a "snapshot" event first (every cell's current state plus the aggregate),
// then one "cell" event per transition, then "done" when the last cell goes
// terminal. ?poll=1&after=<seq> is the long-poll fallback for clients
// without SSE: it returns the transitions after <seq>, waiting briefly for
// news when there are none, or a full snapshot when the requested window
// has already left the bounded history ring.
//
// Slow consumers never block the fabric: each subscriber owns a bounded
// channel, an overflowing send drops the event and marks the subscriber,
// and the stream heals itself by emitting a fresh "resync" snapshot the
// next time that subscriber drains — drop-and-mark, not backpressure.
// Drain closes every stream with an "end" event.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// watchHistory bounds each sweep's delta ring (long-poll catch-up
	// window); older deltas resync via snapshot.
	watchHistory = 256
	// watchSubBuffer is each subscriber's channel depth before
	// drop-and-mark kicks in.
	watchSubBuffer = 32
	// maxSweepsTracked bounds hub memory; the oldest sweep is forgotten
	// when a new one would exceed it.
	maxSweepsTracked = 256
)

// watchCell is one cell's state as a watcher sees it.
type watchCell struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	Key      string `json:"key"`
	// Status is "cached" (answered from disk at submit), "queued",
	// "running", "done", "failed" or "rejected".
	Status string `json:"status"`
	Err    string `json:"error,omitempty"`
}

// watchAgg is a sweep's aggregate progress. Done counts cells a worker
// executed; CacheHits counts cells answered from the result cache at
// submit, so Done+Failed+CacheHits+Rejected == Total means the sweep is
// over.
type watchAgg struct {
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cache_hits"`
	Rejected  int `json:"rejected"`
}

func (a watchAgg) terminal() bool {
	return a.Total > 0 && a.Done+a.Failed+a.CacheHits+a.Rejected >= a.Total
}

// bump moves one cell between aggregate buckets (delta is +1 or -1).
func (a *watchAgg) bump(status string, delta int) {
	switch status {
	case "queued":
		a.Queued += delta
	case "running":
		a.Running += delta
	case "done":
		a.Done += delta
	case "failed":
		a.Failed += delta
	case "cached":
		a.CacheHits += delta
	case "rejected":
		a.Rejected += delta
	}
}

// watchEvent is one delta on a sweep's stream.
type watchEvent struct {
	Seq   uint64    `json:"seq"`
	Sweep uint64    `json:"sweep"`
	Cell  watchCell `json:"cell"`
	Agg   watchAgg  `json:"agg"`
}

// watchSnapshot is the full current state of one sweep.
type watchSnapshot struct {
	Sweep uint64      `json:"sweep"`
	Seq   uint64      `json:"seq"`
	Cells []watchCell `json:"cells"`
	Agg   watchAgg    `json:"agg"`
	Done  bool        `json:"done"`
}

// watchSub is one attached consumer.
type watchSub struct {
	ch      chan watchEvent
	dropped atomic.Bool
}

// sweepWatch tracks one sweep's cells, delta history and subscribers.
type sweepWatch struct {
	id uint64

	mu      sync.Mutex
	cells   []watchCell
	byKey   map[string]int
	agg     watchAgg
	seq     uint64
	hist    []watchEvent // ring of the last watchHistory deltas
	subs    map[*watchSub]struct{}
	waiters []chan struct{} // long-poll wakeups, closed on publish/close
	closed  bool
}

// addCellLocked registers one cell (submission order).
func (sw *sweepWatch) addCell(c watchCell) {
	sw.mu.Lock()
	if _, dup := sw.byKey[c.Key]; !dup {
		sw.byKey[c.Key] = len(sw.cells)
		sw.cells = append(sw.cells, c)
		sw.agg.Total++
		sw.agg.bump(c.Status, +1)
	}
	sw.mu.Unlock()
}

// update applies one transition for key, publishing a delta when the state
// actually changed.
func (sw *sweepWatch) update(key, status, errMsg string) {
	sw.mu.Lock()
	idx, ok := sw.byKey[key]
	if !ok || sw.closed || (sw.cells[idx].Status == status && sw.cells[idx].Err == errMsg) {
		sw.mu.Unlock()
		return
	}
	sw.agg.bump(sw.cells[idx].Status, -1)
	sw.cells[idx].Status, sw.cells[idx].Err = status, errMsg
	sw.agg.bump(status, +1)
	sw.seq++
	ev := watchEvent{Seq: sw.seq, Sweep: sw.id, Cell: sw.cells[idx], Agg: sw.agg}
	sw.hist = append(sw.hist, ev)
	if len(sw.hist) > watchHistory {
		sw.hist = sw.hist[len(sw.hist)-watchHistory:]
	}
	for sub := range sw.subs {
		select {
		case sub.ch <- ev:
		default:
			// Slow consumer: drop the event and mark the subscriber so its
			// reader resyncs from a snapshot. Never block the fabric.
			sub.dropped.Store(true)
		}
	}
	for _, w := range sw.waiters {
		close(w)
	}
	sw.waiters = nil
	sw.mu.Unlock()
}

// snapshot copies the sweep's current state.
func (sw *sweepWatch) snapshot() watchSnapshot {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	cells := make([]watchCell, len(sw.cells))
	copy(cells, sw.cells)
	return watchSnapshot{
		Sweep: sw.id, Seq: sw.seq, Cells: cells, Agg: sw.agg,
		Done: sw.agg.terminal(),
	}
}

// subscribe attaches a consumer and returns the snapshot it should start
// from (taken atomically with the attach, so no delta is lost in between).
func (sw *sweepWatch) subscribe() (*watchSub, watchSnapshot, bool) {
	sub := &watchSub{ch: make(chan watchEvent, watchSubBuffer)}
	sw.mu.Lock()
	if sw.closed {
		sw.mu.Unlock()
		return nil, watchSnapshot{}, false
	}
	sw.subs[sub] = struct{}{}
	cells := make([]watchCell, len(sw.cells))
	copy(cells, sw.cells)
	snap := watchSnapshot{
		Sweep: sw.id, Seq: sw.seq, Cells: cells, Agg: sw.agg,
		Done: sw.agg.terminal(),
	}
	sw.mu.Unlock()
	return sub, snap, true
}

func (sw *sweepWatch) unsubscribe(sub *watchSub) {
	sw.mu.Lock()
	delete(sw.subs, sub)
	sw.mu.Unlock()
}

// close ends every attached stream (drain): subscriber channels close,
// long-pollers wake.
func (sw *sweepWatch) close() {
	sw.mu.Lock()
	if !sw.closed {
		sw.closed = true
		for sub := range sw.subs {
			close(sub.ch)
		}
		sw.subs = make(map[*watchSub]struct{})
		for _, w := range sw.waiters {
			close(w)
		}
		sw.waiters = nil
	}
	sw.mu.Unlock()
}

// waiter registers a long-poll wakeup channel; it is closed on the next
// publish (or close).
func (sw *sweepWatch) waiter() chan struct{} {
	w := make(chan struct{})
	sw.mu.Lock()
	if sw.closed {
		sw.mu.Unlock()
		close(w)
		return w
	}
	sw.waiters = append(sw.waiters, w)
	sw.mu.Unlock()
	return w
}

// watchHub indexes sweeps and fans cell transitions out to every sweep
// containing the key (idempotent resubmission means one cell can belong to
// several matrices).
type watchHub struct {
	mu     sync.Mutex
	sweeps map[uint64]*sweepWatch
	order  []uint64
	byKey  map[string][]*sweepWatch
}

func newWatchHub() *watchHub {
	return &watchHub{
		sweeps: make(map[uint64]*sweepWatch),
		byKey:  make(map[string][]*sweepWatch),
	}
}

// sweep returns (creating if needed) the watch state for a sweep ID,
// evicting the oldest sweep past the tracking bound.
func (h *watchHub) sweep(id uint64) *sweepWatch {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sw, ok := h.sweeps[id]; ok {
		return sw
	}
	for len(h.order) >= maxSweepsTracked {
		old := h.sweeps[h.order[0]]
		h.order = h.order[1:]
		delete(h.sweeps, old.id)
		for _, c := range old.cells {
			list := h.byKey[c.Key]
			for i, sw := range list {
				if sw == old {
					h.byKey[c.Key] = append(list[:i], list[i+1:]...)
					break
				}
			}
			if len(h.byKey[c.Key]) == 0 {
				delete(h.byKey, c.Key)
			}
		}
		old.close()
	}
	sw := &sweepWatch{
		id:    id,
		byKey: make(map[string]int),
		subs:  make(map[*watchSub]struct{}),
	}
	h.sweeps[id] = sw
	h.order = append(h.order, id)
	return sw
}

// addCell registers a cell under a sweep and indexes its key. Sweep 0
// means "not minted by /run" (tests driving enqueue directly): untracked.
func (h *watchHub) addCell(id uint64, c watchCell) {
	if id == 0 {
		return
	}
	sw := h.sweep(id)
	sw.addCell(c)
	h.mu.Lock()
	list := h.byKey[c.Key]
	seen := false
	for _, s := range list {
		if s == sw {
			seen = true
			break
		}
	}
	if !seen {
		h.byKey[c.Key] = append(list, sw)
	}
	h.mu.Unlock()
}

// update fans one key's transition out to every sweep that contains it.
func (h *watchHub) update(key, status, errMsg string) {
	h.mu.Lock()
	list := make([]*sweepWatch, len(h.byKey[key]))
	copy(list, h.byKey[key])
	h.mu.Unlock()
	for _, sw := range list {
		sw.update(key, status, errMsg)
	}
}

// updateIn applies a submit-time status (cached, rejected) to one sweep
// only, so a resubmission cannot rewrite another matrix's history.
func (h *watchHub) updateIn(id uint64, key, status, errMsg string) {
	h.mu.Lock()
	sw := h.sweeps[id]
	h.mu.Unlock()
	if sw != nil {
		sw.update(key, status, errMsg)
	}
}

// lookup returns the watch state for a sweep, if tracked.
func (h *watchHub) lookup(id uint64) (*sweepWatch, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sw, ok := h.sweeps[id]
	return sw, ok
}

// allSweeps snapshots the tracked sweeps in registration order (the order
// slice, not the map, so callers see a deterministic sequence). mu must be
// held.
func (h *watchHub) allSweeps() []*sweepWatch {
	all := make([]*sweepWatch, 0, len(h.order))
	for _, id := range h.order {
		if sw, ok := h.sweeps[id]; ok {
			all = append(all, sw)
		}
	}
	return all
}

// closeAll ends every stream (drain).
func (h *watchHub) closeAll() {
	h.mu.Lock()
	all := h.allSweeps()
	h.mu.Unlock()
	for _, sw := range all {
		sw.close()
	}
}

// watchers counts attached SSE subscribers across all sweeps.
func (h *watchHub) watchers() int {
	h.mu.Lock()
	all := h.allSweeps()
	h.mu.Unlock()
	n := 0
	for _, sw := range all {
		sw.mu.Lock()
		n += len(sw.subs)
		sw.mu.Unlock()
	}
	return n
}

// ---- HTTP ----

// writeSSE emits one Server-Sent Event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}

// pollResponse answers a long-poll request: Events when history covered
// the window, a full Snapshot when it did not (or on first contact), and
// Closed once the server is draining.
type pollResponse struct {
	Snapshot *watchSnapshot `json:"snapshot,omitempty"`
	Events   []watchEvent   `json:"events,omitempty"`
	Closed   bool           `json:"closed,omitempty"`
}

// handleWatch serves GET /watch/<sweep>: SSE by default, long-poll with
// ?poll=1&after=<seq>.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/watch/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "bad sweep id", http.StatusBadRequest)
		return
	}
	sw, ok := s.hub.lookup(id)
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("poll") != "" {
		s.servePoll(w, r, sw)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		// No streaming support on this connection: degrade to one long-poll
		// round from the beginning of history.
		s.servePoll(w, r, sw)
		return
	}

	sub, snap, ok := sw.subscribe()
	if !ok {
		// Draining: hand the final state over and end cleanly.
		w.Header().Set("Content-Type", "text/event-stream")
		writeSSE(w, "snapshot", sw.snapshot())
		writeSSE(w, "end", map[string]string{"reason": "draining"})
		return
	}
	defer sw.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	if writeSSE(w, "snapshot", snap) != nil {
		return
	}
	flusher.Flush()
	if snap.Done {
		writeSSE(w, "done", snap)
		flusher.Flush()
		return
	}
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Drain closed the hub: end the stream cleanly.
				writeSSE(w, "end", map[string]string{"reason": "draining"})
				flusher.Flush()
				return
			}
			if sub.dropped.Swap(false) {
				// We overflowed while this client lagged: resynchronise from
				// a fresh snapshot instead of replaying a gapped stream.
				if writeSSE(w, "resync", sw.snapshot()) != nil {
					return
				}
			}
			if writeSSE(w, "cell", ev) != nil {
				return
			}
			flusher.Flush()
			if ev.Agg.terminal() {
				writeSSE(w, "done", sw.snapshot())
				flusher.Flush()
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// servePoll is the long-poll path: return deltas after the client's seq,
// waiting up to the server's poll window when there is nothing new yet.
func (s *Server) servePoll(w http.ResponseWriter, r *http.Request, sw *sweepWatch) {
	after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	deadline := time.NewTimer(s.pollMax)
	defer deadline.Stop()
	for {
		sw.mu.Lock()
		closed := sw.closed
		seq := sw.seq
		var events []watchEvent
		resync := false
		if seq > after {
			if n := len(sw.hist); n > 0 && sw.hist[0].Seq <= after+1 {
				for _, ev := range sw.hist {
					if ev.Seq > after {
						events = append(events, ev)
					}
				}
			} else {
				// The window left the ring (or this is first contact):
				// resynchronise from a snapshot.
				resync = true
			}
		}
		terminal := sw.agg.terminal()
		sw.mu.Unlock()

		switch {
		case resync:
			snap := sw.snapshot()
			writeJSON(w, http.StatusOK, pollResponse{Snapshot: &snap, Closed: closed})
			return
		case len(events) > 0 || closed || terminal:
			writeJSON(w, http.StatusOK, pollResponse{Events: events, Closed: closed})
			return
		}
		// Nothing new: wait for a publish, the poll window, or the client
		// hanging up — whichever is first.
		wake := sw.waiter()
		select {
		case <-wake:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, pollResponse{})
			return
		case <-r.Context().Done():
			return
		}
	}
}
