package serve

// Integration tests for the coordinator/worker fabric over httptest: remote
// execution end-to-end, degraded-mode fallback, worker-death recovery via
// lease expiry, drain ordering (/readyz before intake), and the fabric
// protocol's rejection paths.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// newCoordinator builds a coordinator-role server with a fast lease clock,
// runCell swapped for the local (degraded-mode) pool.
func newCoordinator(t *testing.T, leaseTTL, workerTTL time.Duration,
	run func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error)) *Server {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Runner:      experiments.Runner{Scale: experiments.Quick, Cache: store},
		Workers:     2,
		QueueDepth:  32,
		Role:        RoleCoordinator,
		LeaseTTL:    leaseTTL,
		WorkerTTL:   workerTTL,
		MaxAttempts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		s.runCell = run
	}
	return s
}

// newFabricWorker builds a Worker against url whose Exec fabricates results
// without simulating.
func newFabricWorker(t *testing.T, url, id string,
	exec func(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error)) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: url,
		ID:          id,
		PollEvery:   2 * time.Millisecond,
		RPCTimeout:  2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Exec:        exec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func fakeExec(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error) {
	return fakeResult(spec, cfg), nil
}

func TestRemoteExecutionEndToEnd(t *testing.T) {
	localRuns := 0
	s := newCoordinator(t, 200*time.Millisecond, time.Minute,
		func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
			localRuns++ // the local pool must stay parked while a worker is healthy
			return fakeResult(spec, cfg), false, nil
		})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := newFabricWorker(t, ts.URL, "w1", fakeExec)
	go w.Run(ctx)

	// The worker's registration lifts degraded mode (one transition).
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return !m.Degraded })
	if m.WorkersHealthy != 1 || m.DegradedTransitions != 1 {
		t.Fatalf("post-register metrics: %+v", m)
	}

	_, rr := postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}`)
	m = waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 4 })
	if m.RemoteCompleted != 4 {
		t.Fatalf("remote_completed = %d, want 4 (metrics %+v)", m.RemoteCompleted, m)
	}
	if localRuns != 0 {
		t.Fatalf("local pool ran %d cells with a healthy worker registered", localRuns)
	}

	// The payload a client reads is byte-identical to what a local cached
	// run would have stored: the worker's marshal landed verbatim.
	for _, c := range rr.Cells {
		r, err := http.Get(ts.URL + "/result/" + c.Key)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := readAll(r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /result/%s = %d: %s", c.Key, r.StatusCode, got)
		}
		want, ok := s.cache.GetRaw(results.Key(c.Key))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("served bytes differ from cache for %s/%s", c.Workload, c.Protocol)
		}
	}
	if st := w.Stats(); st.Completed != 4 || st.Leases != 4 {
		t.Fatalf("worker stats %+v, want 4 leases / 4 completed", st)
	}
}

func TestDegradedFallbackRunsLocally(t *testing.T) {
	var mu sync.Mutex
	localRuns := 0
	s := newCoordinator(t, 100*time.Millisecond, time.Minute,
		func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
			mu.Lock()
			localRuns++
			mu.Unlock()
			return fakeResult(spec, cfg), false, nil
		})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No workers ever register: the coordinator starts degraded and the
	// local pool must carry the matrix, exactly like a solo server.
	postRun(t, ts.URL, `{"workload":"fft","protocols":["baseline","deny"]}`)
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 2 })
	if !m.Degraded || m.WorkersHealthy != 0 {
		t.Fatalf("metrics %+v, want degraded with no workers", m)
	}
	mu.Lock()
	defer mu.Unlock()
	if localRuns != 2 {
		t.Fatalf("local pool ran %d cells, want 2", localRuns)
	}
}

// TestWorkerDeathRecovery is the core fault path: a worker leases a cell and
// dies silently mid-run. The lease expires and re-enqueues the cell; worker
// silence flips the coordinator back to degraded; the local pool finishes
// the matrix. No cell is lost.
func TestWorkerDeathRecovery(t *testing.T) {
	s := newCoordinator(t, 40*time.Millisecond, 120*time.Millisecond,
		func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
			return fakeResult(spec, cfg), false, nil
		})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The doomed worker blocks inside every cell until the test releases it.
	stuck := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	ctx, kill := context.WithCancel(context.Background())
	defer kill()
	w := newFabricWorker(t, ts.URL, "doomed",
		func(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error) {
			once.Do(func() { close(stuck) })
			<-release
			return nil, context.Canceled
		})
	go w.Run(ctx)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return !m.Degraded })

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocols":["baseline","deny"]}`)
	<-stuck // the worker holds a lease and will never finish the cell
	kill()  // silent death: no fail RPC, heartbeats stop
	close(release)

	// Lease expiry re-enqueues the cell; worker silence re-degrades the
	// coordinator; the local pool completes everything.
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 2 })
	if m.LeaseExpired < 1 || m.Requeued < 1 {
		t.Fatalf("metrics %+v, want at least one expiry and requeue", m)
	}
	if !m.Degraded || m.DegradedTransitions < 2 {
		t.Fatalf("metrics %+v, want degraded again after worker silence", m)
	}
	for _, c := range rr.Cells {
		r, err := http.Get(ts.URL + "/result/" + c.Key)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("cell %s/%s = %d after recovery, want 200", c.Workload, c.Protocol, r.StatusCode)
		}
	}
}

// TestReadyzFlipsBeforeIntakeCloses pins the drain ordering contract: during
// the grace window /readyz already answers 503 while /run still accepts, so
// a load balancer stops routing before clients ever see a 503.
func TestReadyzFlipsBeforeIntakeCloses(t *testing.T) {
	s := newTestServer(t, 1, 8, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.drainGrace = time.Millisecond
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if r, err := http.Get(ts.URL + "/readyz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain /readyz = %v %v, want 200", r.StatusCode, err)
	}
	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %v %v, want 200", r.StatusCode, err)
	}

	// Swap the drain-grace sleep for a probe that observes the window
	// between the readiness flip and intake closing.
	type probe struct {
		readyz int
		run    int
	}
	probed := make(chan probe, 1)
	s.sleep = func(time.Duration) {
		var p probe
		if r, err := http.Get(ts.URL + "/readyz"); err == nil {
			p.readyz = r.StatusCode
			r.Body.Close()
		}
		if r, err := http.Post(ts.URL+"/run", "application/json",
			strings.NewReader(`{"workload":"fft","protocol":"deny"}`)); err == nil {
			p.run = r.StatusCode
			r.Body.Close()
		}
		probed <- p
	}
	s.Drain()
	p := <-probed
	if p.readyz != http.StatusServiceUnavailable {
		t.Fatalf("mid-grace /readyz = %d, want 503", p.readyz)
	}
	if p.run != http.StatusOK {
		t.Fatalf("mid-grace POST /run = %d, want 200 (intake must close only after the grace window)", p.run)
	}

	// After Drain returns, intake is closed too.
	resp, _ := postRun(t, ts.URL, `{"workload":"lbm","protocol":"deny"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST /run = %d, want 503", resp.StatusCode)
	}
}

// postFabric posts one raw fabric message and returns the status code.
func postFabric(t *testing.T, url, path string, v any) int {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	return r.StatusCode
}

// TestFabricProtocolRejections drives the coordinator API directly: checksum
// mismatches earn a retryable 409 without killing the lease, renewing a dead
// lease earns 410, and completing an unknown cell earns 410.
func TestFabricProtocolRejections(t *testing.T) {
	s := newCoordinator(t, time.Minute, time.Minute, nil)
	// No Start: we hand-drive the fabric so the local pool cannot race us.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := postFabric(t, ts.URL, pathRegister, registerRequest{Worker: "w1"}); code != http.StatusOK {
		t.Fatalf("register = %d", code)
	}
	postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)

	var grant leaseGrant
	{
		b, _ := json.Marshal(leaseRequest{Worker: "w1"})
		r, err := http.Post(ts.URL+pathLease, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("lease = %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&grant); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	payload, _ := json.Marshal(fakeResult(workload.Spec{Name: "fft"}, topology.Default(topology.ProtoDeny)))
	sum, _ := results.PayloadSum(payload)

	// Corrupted-in-flight upload: wrong checksum is a 409 and the lease
	// survives, so the retry with fresh bytes lands.
	code := postFabric(t, ts.URL, pathComplete, completeRequest{
		Worker: "w1", Lease: grant.Lease, Key: grant.Key, Payload: payload, Sum: "deadbeef"})
	if code != http.StatusConflict {
		t.Fatalf("bad-sum complete = %d, want 409", code)
	}
	if code := postFabric(t, ts.URL, pathRenew, renewRequest{Worker: "w1", Lease: grant.Lease}); code != http.StatusOK {
		t.Fatalf("renew after 409 = %d, want 200 (lease must survive a checksum reject)", code)
	}

	// Completing a cell the coordinator never accepted: 410.
	bogusKey := strings.Repeat("ab", 32)
	bogusPayload := payload
	bogusSum, _ := results.PayloadSum(bogusPayload)
	if code := postFabric(t, ts.URL, pathComplete, completeRequest{
		Worker: "w1", Lease: 9999, Key: bogusKey, Payload: bogusPayload, Sum: bogusSum}); code != http.StatusGone {
		t.Fatalf("unknown-cell complete = %d, want 410", code)
	}

	// The good upload completes the cell; a duplicate is acknowledged 200.
	for i := 0; i < 2; i++ {
		if code := postFabric(t, ts.URL, pathComplete, completeRequest{
			Worker: "w1", Lease: grant.Lease, Key: grant.Key, Payload: payload, Sum: sum}); code != http.StatusOK {
			t.Fatalf("complete #%d = %d, want 200", i+1, code)
		}
	}
	// Renewing the retired lease: 410 tells the worker to abandon.
	if code := postFabric(t, ts.URL, pathRenew, renewRequest{Worker: "w1", Lease: grant.Lease}); code != http.StatusGone {
		t.Fatalf("renew after complete = %d, want 410", code)
	}
	if m := s.snapshotMetrics(); m.RemoteCompleted != 1 || m.Completed != 1 {
		t.Fatalf("metrics after duplicate completes: %+v", m)
	}
}

// TestLateCompleteAfterExpiry: a slow-but-alive worker whose lease expired
// still gets its (deterministic, thus valid) result accepted, and the
// requeued incarnation is cancelled instead of re-run.
func TestLateCompleteAfterExpiry(t *testing.T) {
	s := newCoordinator(t, time.Minute, time.Minute, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postFabric(t, ts.URL, pathRegister, registerRequest{Worker: "slow"})
	postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	var grant leaseGrant
	b, _ := json.Marshal(leaseRequest{Worker: "slow"})
	r, err := http.Post(ts.URL+pathLease, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&grant)
	r.Body.Close()

	// Force the lease to expire (fail() plays the expiry's role
	// deterministically: the cell returns to pending, the lease dies).
	s.lq.fail(grant.Lease, "simulated expiry")
	if st := s.lq.stats(); st.Pending != 1 {
		t.Fatalf("cell not requeued: %+v", st)
	}

	payload, _ := json.Marshal(fakeResult(workload.Spec{Name: "fft"}, topology.Default(topology.ProtoDeny)))
	sum, _ := results.PayloadSum(payload)
	if code := postFabric(t, ts.URL, pathComplete, completeRequest{
		Worker: "slow", Lease: grant.Lease, Key: grant.Key, Payload: payload, Sum: sum}); code != http.StatusOK {
		t.Fatalf("late complete = %d, want 200", code)
	}
	if st := s.lq.stats(); st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("late complete left the requeued incarnation: %+v", st)
	}
	r2, err := http.Get(ts.URL + "/result/" + grant.Key)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("result after late complete = %d, want 200", r2.StatusCode)
	}
}

// TestDrainUnderLoad races Drain() against fresh intake and in-flight
// lease renewals: every cell that was accepted must complete exactly once,
// and none may be double-run.
func TestDrainUnderLoad(t *testing.T) {
	var runsMu sync.Mutex
	runs := make(map[string]int)
	count := func(spec workload.Spec, cfg topology.Config) {
		runsMu.Lock()
		runs[spec.Name+"/"+cfg.Protocol.String()]++
		runsMu.Unlock()
	}
	s := newCoordinator(t, time.Minute, time.Minute,
		func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
			count(spec, cfg)
			return fakeResult(spec, cfg), false, nil
		})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := newFabricWorker(t, ts.URL, "w1",
		func(spec workload.Spec, cfg topology.Config, classify bool, warmup, measure uint64, engine dve.EngineMode) (*dve.Result, error) {
			count(spec, cfg)
			return fakeResult(spec, cfg), nil
		})
	go w.Run(ctx)

	// Intake hammer: every workload×protocol cell, repeatedly, across
	// goroutines, while Drain lands somewhere in the middle.
	workloads := []string{"fft", "lbm", "canneal", "stencil"}
	protocols := []string{"baseline", "deny", "dynamic"}
	accepted := make(map[string]string) // cell -> key
	var accMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				wl := workloads[(g+i)%len(workloads)]
				pr := protocols[(g*2+i)%len(protocols)]
				body := fmt.Sprintf(`{"workload":%q,"protocol":%q}`, wl, pr)
				resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
				if err != nil {
					continue
				}
				var rr runResponse
				json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				// 503 (draining) and 429 (saturated) are allowed answers;
				// a 200 is a promise the cell will complete.
				if resp.StatusCode == http.StatusOK && len(rr.Cells) == 1 {
					accMu.Lock()
					accepted[wl+"/"+pr] = rr.Cells[0].Key
					accMu.Unlock()
				}
			}
		}(g)
	}
	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	wg.Wait()
	<-drained
	cancel()

	// Every accepted cell completed (no cell lost)...
	for cell, key := range accepted {
		r, err := http.Get(ts.URL + "/result/" + key)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("accepted cell %s = %d after drain, want 200", cell, r.StatusCode)
		}
	}
	// ...and none ran twice (no double-run: idempotent submission plus
	// lease exclusivity).
	runsMu.Lock()
	defer runsMu.Unlock()
	for cell, n := range runs {
		if n != 1 {
			t.Fatalf("cell %s ran %d times, want exactly 1", cell, n)
		}
	}
}
