package serve

// Tests for the fleet-observability surfaces: the /watch SSE + long-poll
// progress streams (mid-sweep join, slow consumers, drain), the wall-clock
// cell-lifecycle trace at /trace, the transition-time queue-depth gauge,
// the poison quarantine ledger, and the structured event log threading.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dve/internal/dve"
	"dve/internal/experiments"
	"dve/internal/obslog"
	"dve/internal/results"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses the next event frame off an SSE stream.
func readSSE(t *testing.T, br *bufio.Reader) (sseEvent, error) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if ev.name != "" || ev.data != nil {
				return ev, nil
			}
		}
	}
}

// gatedServer builds a test server whose runCell blocks until a token is
// sent on the returned channel (one token releases one cell).
func gatedServer(t *testing.T, workers, depth int) (*Server, chan struct{}) {
	t.Helper()
	release := make(chan struct{}, 64)
	s := newTestServer(t, workers, depth, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		<-release
		return fakeResult(spec, cfg), false, nil
	})
	return s, release
}

// TestWatchStreamLifecycle joins a sweep mid-flight and checks the SSE
// contract end to end: a snapshot reflecting progress so far, then one
// "cell" delta per transition, then "done" whose aggregate matches the
// service's /metrics totals.
func TestWatchStreamLifecycle(t *testing.T) {
	s, release := gatedServer(t, 2, 16)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, rr := postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}`)
	if resp.StatusCode != http.StatusOK || len(rr.Cells) != 4 {
		t.Fatalf("POST /run = %d with %d cells", resp.StatusCode, len(rr.Cells))
	}
	if rr.Sweep == 0 {
		t.Fatal("POST /run minted no sweep ID")
	}

	// Let one cell finish before joining: the snapshot must carry that
	// progress, not replay it as deltas.
	release <- struct{}{}
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 1 })

	r, err := http.Get(fmt.Sprintf("%s/watch/%d", ts.URL, rr.Sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(r.Body)

	ev, err := readSSE(t, br)
	if err != nil || ev.name != "snapshot" {
		t.Fatalf("first event = %q (%v), want snapshot", ev.name, err)
	}
	var snap watchSnapshot
	if err := json.Unmarshal(ev.data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Sweep != rr.Sweep || snap.Agg.Total != 4 || snap.Agg.Done < 1 || snap.Done {
		t.Fatalf("mid-sweep snapshot %+v, want total 4 with >=1 done, not terminal", snap)
	}

	// The attached subscriber shows up in the watcher gauge.
	if m := getMetrics(t, ts.URL); m.Watchers != 1 {
		t.Fatalf("watchers gauge = %d with one stream attached", m.Watchers)
	}

	for i := 0; i < 3; i++ {
		release <- struct{}{}
	}
	var last watchEvent
	for {
		ev, err := readSSE(t, br)
		if err != nil {
			t.Fatalf("stream ended early: %v (last delta %+v)", err, last)
		}
		if ev.name == "cell" {
			if err := json.Unmarshal(ev.data, &last); err != nil {
				t.Fatal(err)
			}
			if last.Sweep != rr.Sweep || last.Seq == 0 {
				t.Fatalf("delta %+v missing sweep/seq", last)
			}
			continue
		}
		if ev.name != "done" {
			t.Fatalf("unexpected event %q mid-stream", ev.name)
		}
		if err := json.Unmarshal(ev.data, &snap); err != nil {
			t.Fatal(err)
		}
		break
	}
	if !snap.Done || snap.Agg.Done != 4 || snap.Agg.Failed != 0 {
		t.Fatalf("final snapshot %+v, want 4 done", snap)
	}

	// The stream's final aggregate and the service metrics agree.
	m := getMetrics(t, ts.URL)
	if uint64(snap.Agg.Done) != m.Completed || uint64(snap.Agg.Failed) != m.Failed {
		t.Fatalf("SSE aggregate %+v disagrees with /metrics (completed %d, failed %d)",
			snap.Agg, m.Completed, m.Failed)
	}
	if m.Sweeps != rr.Sweep {
		t.Fatalf("sweeps gauge = %d, want %d", m.Sweeps, rr.Sweep)
	}
}

// TestWatchCachedSweepDoneImmediately: a resubmitted matrix answered
// entirely from cache is born terminal — snapshot then done, no deltas.
func TestWatchCachedSweepDoneImmediately(t *testing.T) {
	s := newTestServer(t, 2, 16, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["deny"]}`)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 2 })
	_, rr := postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["deny"]}`)

	r, err := http.Get(fmt.Sprintf("%s/watch/%d", ts.URL, rr.Sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	br := bufio.NewReader(r.Body)
	ev, err := readSSE(t, br)
	if err != nil || ev.name != "snapshot" {
		t.Fatalf("first event = %q (%v)", ev.name, err)
	}
	var snap watchSnapshot
	json.Unmarshal(ev.data, &snap)
	if !snap.Done || snap.Agg.CacheHits != 2 {
		t.Fatalf("cached sweep snapshot %+v, want done with 2 cache hits", snap)
	}
	if ev, err = readSSE(t, br); err != nil || ev.name != "done" {
		t.Fatalf("second event = %q (%v), want done", ev.name, err)
	}
}

// TestWatchStreamEndsOnDrain: closing the hub (what Drain does once the
// queue is empty) ends every attached stream with an explicit "end" frame
// rather than a dropped connection.
func TestWatchStreamEndsOnDrain(t *testing.T) {
	s, release := gatedServer(t, 1, 8)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	r, err := http.Get(fmt.Sprintf("%s/watch/%d", ts.URL, rr.Sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	br := bufio.NewReader(r.Body)
	if ev, err := readSSE(t, br); err != nil || ev.name != "snapshot" {
		t.Fatalf("first event = %q (%v)", ev.name, err)
	}

	s.hub.closeAll() // what Drain does after the queue empties
	for {
		ev, err := readSSE(t, br)
		if err != nil {
			t.Fatalf("stream died without an end frame: %v", err)
		}
		if ev.name == "cell" {
			continue // transitions racing the close are fine
		}
		if ev.name != "end" {
			t.Fatalf("got %q, want end", ev.name)
		}
		var body map[string]string
		json.Unmarshal(ev.data, &body)
		if body["reason"] != "draining" {
			t.Fatalf("end reason %+v", body)
		}
		break
	}

	release <- struct{}{}
	s.Drain()

	// Attaching after drain still answers: final snapshot, then end.
	r2, err := http.Get(fmt.Sprintf("%s/watch/%d", ts.URL, rr.Sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	br2 := bufio.NewReader(r2.Body)
	names := []string{}
	for i := 0; i < 2; i++ {
		ev, err := readSSE(t, br2)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, ev.name)
	}
	if names[0] != "snapshot" || names[1] != "end" {
		t.Fatalf("post-drain watch events %v, want [snapshot end]", names)
	}
}

// TestWatchLongPoll drives the ?poll=1 fallback: deltas after a known seq,
// an immediate empty answer on a terminal sweep, and waiting for news.
func TestWatchLongPoll(t *testing.T) {
	s, release := gatedServer(t, 1, 8)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	poll := func(after uint64) pollResponse {
		t.Helper()
		r, err := http.Get(fmt.Sprintf("%s/watch/%d?poll=1&after=%d", ts.URL, rr.Sweep, after))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d", r.StatusCode)
		}
		var pr pollResponse
		if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	// The queued->running transition lands as soon as the pool grabs the
	// cell, so polling from 0 returns it without waiting for completion.
	pr := poll(0)
	if len(pr.Events) == 0 && pr.Snapshot == nil {
		t.Fatalf("first poll returned nothing: %+v", pr)
	}
	var seq uint64
	for _, ev := range pr.Events {
		seq = ev.Seq
	}
	if pr.Snapshot != nil {
		seq = pr.Snapshot.Seq
	}

	// Poll for the next delta while the cell completes.
	done := make(chan pollResponse, 1)
	go func() {
		r, err := http.Get(fmt.Sprintf("%s/watch/%d?poll=1&after=%d", ts.URL, rr.Sweep, seq))
		if err != nil {
			done <- pollResponse{}
			return
		}
		defer r.Body.Close()
		var pr pollResponse
		json.NewDecoder(r.Body).Decode(&pr)
		done <- pr
	}()
	release <- struct{}{}
	select {
	case pr = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never woke on publish")
	}
	found := false
	for _, ev := range pr.Events {
		if ev.Cell.Status == "done" {
			found = true
			seq = ev.Seq
		}
	}
	if !found && pr.Snapshot == nil {
		t.Fatalf("completion poll %+v carried no done transition", pr)
	}

	// A terminal sweep answers a caught-up poller immediately (no hang).
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 1 })
	pr = poll(1 << 62)
	if len(pr.Events) != 0 || pr.Snapshot != nil {
		t.Fatalf("caught-up poll on terminal sweep returned %+v", pr)
	}
}

func TestWatchRequestValidation(t *testing.T) {
	s := newTestServer(t, 1, 4, nil)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/watch/999999", http.StatusNotFound},
		{"/watch/0", http.StatusBadRequest},
		{"/watch/xyz", http.StatusBadRequest},
	} {
		r, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, r.StatusCode, tc.want)
		}
	}
	r, err := http.Post(ts.URL+"/watch/1", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /watch/1 = %d, want 405", r.StatusCode)
	}
}

// TestWatchSlowConsumerDropAndMark pins the backpressure contract at the
// hub layer: a subscriber that stops draining never blocks a publisher —
// overflowing events are dropped and the subscriber is marked for resync.
func TestWatchSlowConsumerDropAndMark(t *testing.T) {
	sw := &sweepWatch{id: 7, byKey: make(map[string]int), subs: make(map[*watchSub]struct{})}
	sw.addCell(watchCell{Key: "k", Status: "queued"})
	sub, snap, ok := sw.subscribe()
	if !ok || snap.Agg.Total != 1 {
		t.Fatalf("subscribe: ok=%v snap=%+v", ok, snap)
	}

	// Publish far past the buffer without draining; every call must return
	// promptly (a blocking publish would deadlock this single goroutine).
	statuses := []string{"running", "queued"}
	for i := 0; i < watchSubBuffer+16; i++ {
		sw.update("k", statuses[i%2], "")
	}
	if !sub.dropped.Load() {
		t.Fatal("overflowed subscriber was not marked dropped")
	}
	if n := len(sub.ch); n != watchSubBuffer {
		t.Fatalf("subscriber buffered %d events, want exactly %d", n, watchSubBuffer)
	}
	// The sweep's own state kept advancing while the consumer lagged.
	if got := sw.snapshot(); got.Seq != uint64(watchSubBuffer+16) {
		t.Fatalf("seq = %d, want %d", got.Seq, watchSubBuffer+16)
	}
}

// TestWatchSlowConsumerResyncs drives the drop path through the HTTP
// handler: a stream that lagged gets a "resync" snapshot before its next
// delta, instead of a gapped event sequence.
func TestWatchSlowConsumerResyncs(t *testing.T) {
	s, release := gatedServer(t, 1, 8)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	r, err := http.Get(fmt.Sprintf("%s/watch/%d", ts.URL, rr.Sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	br := bufio.NewReader(r.Body)
	if ev, err := readSSE(t, br); err != nil || ev.name != "snapshot" {
		t.Fatalf("first event = %q (%v)", ev.name, err)
	}

	// Overflow this subscriber directly (the HTTP reader above is not
	// draining its channel yet), then publish one more delta to wake it.
	sw, ok := s.hub.lookup(rr.Sweep)
	if !ok {
		t.Fatal("sweep not tracked")
	}
	statuses := []string{"running", "queued"}
	for i := 0; i < watchSubBuffer+8; i++ {
		sw.update("dummy-key-not-in-sweep", "x", "") // no-op: unknown key
		sw.update(rr.Cells[0].Key, statuses[i%2], "")
	}

	// The reader drains now: after the buffered run of deltas it must see a
	// resync frame (the dropped mark) before the stream continues.
	sawResync := false
	release <- struct{}{}
	for !sawResync {
		ev, err := readSSE(t, br)
		if err != nil {
			t.Fatalf("stream ended before resync: %v", err)
		}
		switch ev.name {
		case "resync":
			sawResync = true
		case "cell", "done":
			// deltas and completion may interleave before the resync frame
			// depending on where the drop landed
			if ev.name == "done" {
				t.Fatal("stream completed without a resync after overflow")
			}
		default:
			t.Fatalf("unexpected event %q", ev.name)
		}
	}
}

// TestWatchHubFanout pins the multi-sweep semantics: a shared cell's
// transition reaches every sweep containing it, while submit-time statuses
// (updateIn) stay sweep-local.
func TestWatchHubFanout(t *testing.T) {
	h := newWatchHub()
	c := watchCell{Workload: "fft", Protocol: "deny", Key: "k1", Status: "queued"}
	h.addCell(1, c)
	h.addCell(2, c)
	h.addCell(0, c) // sweep 0 = untracked; must be ignored

	h.update("k1", "running", "")
	s1, _ := h.lookup(1)
	s2, _ := h.lookup(2)
	if s1.snapshot().Agg.Running != 1 || s2.snapshot().Agg.Running != 1 {
		t.Fatalf("fanout missed a sweep: %+v / %+v", s1.snapshot(), s2.snapshot())
	}

	h.updateIn(2, "k1", "done", "")
	if s1.snapshot().Agg.Done != 0 {
		t.Fatal("updateIn leaked into another sweep")
	}
	if s2.snapshot().Agg.Done != 1 {
		t.Fatal("updateIn missed its sweep")
	}
	if _, ok := h.lookup(0); ok {
		t.Fatal("sweep 0 was tracked")
	}
}

// TestFabricTraceValidates runs a quick matrix and checks the acceptance
// bar for the lifecycle trace: /trace parses as Chrome trace JSON, passes
// the structural validator in the wall-clock domain, and shows every cell's
// enqueue instant and execution span attributed to a worker track.
func TestFabricTraceValidates(t *testing.T) {
	s := newTestServer(t, 2, 16, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workloads":["fft","lbm"],"protocols":["baseline","deny"]}`)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 4 })

	r, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	evs, err := telemetry.ParseTrace(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTrace(evs); err != nil {
		t.Fatalf("fabric trace invalid: %v", err)
	}
	if err := telemetry.ValidateTraceDomain(evs, telemetry.DomainWall); err != nil {
		t.Fatalf("fabric trace domain: %v", err)
	}

	enqueues := map[string]bool{} // key8 -> seen enqueue instant
	spans := map[string]int{}     // key8 -> B records on worker tracks
	counters := 0
	workerTracks := map[string]bool{}
	for _, ev := range evs {
		switch {
		case ev.Ph == "i" && strings.HasPrefix(ev.Name, evEnqueued+" "):
			enqueues[strings.TrimPrefix(ev.Name, evEnqueued+" ")] = true
		case ev.Ph == "B" && strings.HasPrefix(ev.Name, "cell "):
			if ev.Tid == 0 {
				t.Fatalf("cell span %q on the queue track", ev.Name)
			}
			parts := strings.Fields(ev.Name)
			spans[parts[len(parts)-1]]++
		case ev.Ph == "C" && ev.Name == "queue_depth":
			counters++
		case ev.Ph == "M" && ev.Name == "thread_name":
			if n, _ := ev.Args["name"].(string); strings.HasPrefix(n, "worker ") {
				workerTracks[n] = true
			}
		}
	}
	for _, c := range rr.Cells {
		k8 := c.Key[:8]
		if !enqueues[k8] {
			t.Errorf("cell %s/%s: no enqueue instant in trace", c.Workload, c.Protocol)
		}
		if spans[k8] == 0 {
			t.Errorf("cell %s/%s: no execution span in trace", c.Workload, c.Protocol)
		}
	}
	if counters == 0 {
		t.Error("no queue_depth counter series in trace")
	}
	if len(workerTracks) == 0 {
		t.Error("no worker-named tracks in trace metadata")
	}
}

// TestQueueDepthGauge pins the transition-time gauge: /metrics/prom's
// dveserve_queue_len reads the stored depth, matching the JSON QueueLen
// through fill and drain.
func TestQueueDepthGauge(t *testing.T) {
	s, release := gatedServer(t, 1, 8)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts.URL, `{"workloads":["fft"],"protocols":["baseline","deny","dynamic"]}`)
	// One cell leased by the single (blocked) worker; two pending.
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.QueueLen == 2 && m.Leased == 1 })
	if d := s.lq.depth(); d != 2 {
		t.Fatalf("lq.depth() = %d, want 2", d)
	}
	prom := scrapeProm(t, ts.URL)
	if v, ok := promValue(prom, "dveserve_queue_len"); !ok || v != 2 {
		t.Fatalf("dveserve_queue_len = %v (found %v), want 2", v, ok)
	}

	for i := 0; i < 3; i++ {
		release <- struct{}{}
	}
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 3 })
	prom = scrapeProm(t, ts.URL)
	if v, ok := promValue(prom, "dveserve_queue_len"); !ok || v != 0 {
		t.Fatalf("post-drain dveserve_queue_len = %v (found %v), want 0", v, ok)
	}
}

func scrapeProm(t *testing.T, url string) string {
	t.Helper()
	r, err := http.Get(url + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestObservabilityGaugesExposed checks the placement-input metrics land in
// both surfaces: cache hit rate, lease-wait histogram, sweep/watcher/trace
// gauges in /metrics/prom, and that the exposition stays format-valid.
func TestObservabilityGaugesExposed(t *testing.T) {
	s := newTestServer(t, 1, 8, func(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, bool, error) {
		return fakeResult(spec, cfg), false, nil
	})
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, rr := postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 1 })
	// Fetching the landed result reads the cache, so the hit-rate gauge
	// moves; the resubmission checks the sweep counter.
	if r, err := http.Get(ts.URL + "/result/" + rr.Cells[0].Key); err == nil {
		readAll(r)
	}
	postRun(t, ts.URL, `{"workload":"fft","protocol":"deny"}`)

	prom := scrapeProm(t, ts.URL)
	if err := telemetry.ValidateExposition(strings.NewReader(prom)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, prom)
	}
	for _, name := range []string{
		"dveserve_cache_hit_rate",
		"dveserve_lease_wait_ms_count",
		"dveserve_lease_wait_ms_sum",
		"dveserve_sweeps_total",
		"dveserve_watchers",
		"dveserve_trace_events",
		"dveserve_trace_events_dropped_total",
		"dveserve_log_events_total",
		"dveserve_log_sink_failures_total",
	} {
		if _, ok := promValue(prom, name); !ok {
			t.Errorf("missing %s in /metrics/prom", name)
		}
	}
	if v, ok := promValue(prom, "dveserve_cache_hit_rate"); !ok || v <= 0 {
		t.Errorf("cache hit rate = %v after a cache-hit resubmission", v)
	}
	if v, ok := promValue(prom, "dveserve_lease_wait_ms_count"); !ok || v < 1 {
		t.Errorf("lease wait histogram count = %v, want >= 1", v)
	}
	if v, ok := promValue(prom, "dveserve_sweeps_total"); !ok || v != 2 {
		t.Errorf("sweeps total = %v, want 2", v)
	}

	m := getMetrics(t, ts.URL)
	if m.LeaseWaitMs.Count() < 1 {
		t.Errorf("JSON metrics lease-wait histogram empty: %+v", m.LeaseWaitMs)
	}
	if m.CacheHitRate <= 0 {
		t.Errorf("JSON metrics cache hit rate = %v", m.CacheHitRate)
	}
}

// TestNodeGaugesPerWorker checks the per-node placement gauges: one labeled
// sample per registered fabric worker in /metrics/prom and a Nodes row in
// the JSON metrics.
func TestNodeGaugesPerWorker(t *testing.T) {
	s := newCoordinator(t, 200*time.Millisecond, time.Minute, nil)
	s.Start()
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	w := newFabricWorker(t, ts.URL, "nodeA", fakeExec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	waitForMetrics(t, ts.URL, func(m Metrics) bool { return !m.Degraded })

	postRun(t, ts.URL, `{"workloads":["fft"],"protocols":["baseline","deny"]}`)
	m := waitForMetrics(t, ts.URL, func(m Metrics) bool { return m.Completed == 2 })
	if len(m.Nodes) != 1 || m.Nodes[0].ID != "nodeA" {
		t.Fatalf("nodes = %+v, want one row for nodeA", m.Nodes)
	}
	n := m.Nodes[0]
	if !n.Healthy || n.Completed != 2 || n.Leased < 2 {
		t.Fatalf("nodeA row %+v, want healthy with 2 completed", n)
	}

	prom := scrapeProm(t, ts.URL)
	for _, line := range []string{
		`dveserve_node_completed{node="nodeA"} 2`,
		`dveserve_node_healthy{node="nodeA"} 1`,
		`dveserve_node_inflight{node="nodeA"} 0`,
	} {
		if !strings.Contains(prom, line) {
			t.Errorf("missing %q in /metrics/prom:\n%s", line, prom)
		}
	}
}

// TestPoisonQuarantineLedger drives a cell past the attempt cap through the
// fabric fail path and checks the full ledger: the poisoned counter, the
// quarantined key in /metrics, the failed job state, and the structured
// log's cell_poisoned event carrying the offending key.
func TestPoisonQuarantineLedger(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log := obslog.New(obslog.Options{Min: obslog.Debug})
	s, err := New(Config{
		Runner:      experiments.Runner{Scale: experiments.Quick, Cache: store},
		Workers:     1,
		QueueDepth:  8,
		Role:        RoleCoordinator,
		LeaseTTL:    time.Minute,
		MaxAttempts: 2,
		Log:         log,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the queue is driven directly so the local pool cannot
	// race the injected failures.

	spec, _ := workload.ByName("fft", 16)
	cfg := topology.Default(topology.ProtoDeny)
	key, err := s.runner.CellKey(spec, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if code, err := s.enqueue(job{key: key, spec: spec, cfg: cfg, sweep: 1, cell: 0}); err != nil || code != http.StatusAccepted {
		t.Fatalf("enqueue = %d, %v", code, err)
	}

	fails := 0
	for {
		l, ok := s.lq.tryLease("w1", false)
		if !ok {
			break
		}
		s.lq.fail(l.id, "injected crash")
		fails++
		if fails > 10 {
			t.Fatal("cell never poisoned")
		}
	}
	if fails != 2 {
		t.Fatalf("granted %d leases before poison, want MaxAttempts=2", fails)
	}

	m := s.snapshotMetrics()
	if m.Poisoned != 1 || m.Failed != 1 {
		t.Fatalf("metrics %+v, want 1 poisoned / 1 failed", m)
	}
	if len(m.PoisonedCells) != 1 || m.PoisonedCells[0] != string(key) {
		t.Fatalf("quarantine ledger %v, want [%s]", m.PoisonedCells, key)
	}
	s.mu.Lock()
	st := s.jobs[key]
	s.mu.Unlock()
	if st == nil || st.status != "failed" || !strings.Contains(st.err, "poisoned") {
		t.Fatalf("job state %+v, want failed/poisoned", st)
	}

	found := false
	for _, ev := range log.Recent() {
		if ev.Event == "cell_poisoned" && ev.Key == string(key) && ev.Sweep == "1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cell_poisoned log event with the offending key; recent: %+v", log.Recent())
	}
}

// TestLogDisabledPathAllocFree pins the zero-cost-when-disabled contract at
// the serve layer's guarded call sites.
func TestLogDisabledPathAllocFree(t *testing.T) {
	w := &Worker{cfg: WorkerConfig{ID: "w0"}} // nil Log
	grant := leaseGrant{Lease: 9, Key: "k", Sweep: 3, Cell: 1}
	if allocs := testing.AllocsPerRun(200, func() {
		w.logGrant(obslog.Info, "cell_start", grant, "")
	}); allocs != 0 {
		t.Fatalf("disabled logGrant allocates %.1f/op, want 0", allocs)
	}

	var nilLog *obslog.Logger
	if allocs := testing.AllocsPerRun(200, func() {
		if nilLog.On(obslog.Warn) {
			t.Fatal("nil logger claims enabled")
		}
	}); allocs != 0 {
		t.Fatalf("nil-logger guard allocates %.1f/op, want 0", allocs)
	}
}
