package coherence

import (
	"dve/internal/sim"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// Scrubber implements patrol scrubbing: a background daemon that walks the
// allocated address space re-reading memory through the normal
// detect-and-recover path, so latent errors are found and repaired before a
// second failure can pair with them. The scrub interval is the window the
// Section IV reliability model's coincident-failure terms are defined over
// — schemes only lose data when failures coincide *within* it.
type Scrubber struct {
	sys      *System
	interval sim.Cycle
	batch    int
	cursor   []int

	// ScrubbedLines counts patrol reads issued.
	ScrubbedLines uint64
	running       bool
}

// NewScrubber creates a scrubber that reads batch lines per directory every
// interval cycles.
func NewScrubber(sys *System, interval sim.Cycle, batch int) *Scrubber {
	return &Scrubber{
		sys:      sys,
		interval: interval,
		batch:    batch,
		cursor:   make([]int, len(sys.Dirs)),
	}
}

// Start arms the patrol daemon; it runs until Stop (or the end of the
// simulation) without keeping the run alive.
func (s *Scrubber) Start() {
	if s.running {
		return
	}
	s.running = true
	var tick func()
	tick = func() {
		if !s.running {
			return
		}
		// Re-arm before issuing the batch: the next tick is then sequenced
		// after every event this batch schedules at the same future cycle,
		// so repairs triggered by this interval's patrol reads are already
		// applied when the next tick re-reads the same lines (instead of
		// the next tick racing ahead of them in the event order).
		// The patrol walks every socket's directory from one daemon, so
		// scrubbing is a legacy-engine feature (partitioned runs fall
		// back); Engs[0] is that single shared engine.
		s.sys.Engs[0].ScheduleDaemon(s.interval, tick)
		for di, d := range s.sys.Dirs {
			lines := d.KnownLines()
			if len(lines) == 0 {
				continue
			}
			for i := 0; i < s.batch; i++ {
				l := lines[s.cursor[di]%len(lines)]
				s.cursor[di]++
				s.ScrubbedLines++
				d.Scrub(l)
			}
		}
	}
	s.sys.Engs[0].ScheduleDaemon(s.interval, tick)
}

// Stop disarms the patrol daemon: the pending tick becomes a no-op and no
// further ticks are scheduled. Campaign teardown uses this so a finished
// run leaves no active patrol behind; Start re-arms.
func (s *Scrubber) Stop() { s.running = false }

// Scrub re-reads one line through the detection/recovery path. Errors found
// are corrected from the replica and the home copy repaired, exactly like a
// demand read (Section V-B2); the patrol read contends for DRAM like any
// other access.
func (d *HomeDir) Scrub(l topology.Line) {
	// Bypass the MSHR: patrol reads are independent of coherence state (the
	// memory copy is read as-is; a dirty cached copy simply makes the read
	// irrelevant, not incorrect, since recovery rewrites only detected-bad
	// cells with replica data of the same epoch).
	if tr := d.sys.Trace; tr != nil {
		tr.Point(telemetry.CompScrub, d.socket, "scrub", uint64(l))
	}
	d.readHomeMem(l, func() {})
}

// KnownLines returns the lines this directory has ever tracked, in first-
// touch order (deterministic).
func (d *HomeDir) KnownLines() []topology.Line { return d.lineOrder }
