package coherence

import (
	"fmt"
	"sort"

	"dve/internal/cache"
	"dve/internal/topology"
)

// CheckInvariants audits the quiescent system state (call after the event
// queue drains): the Single-Writer-Multiple-Reader invariant over the LLCs,
// agreement between the global directories and the caches they track, and
// local-directory inclusion. It returns every violation found — the
// simulator-level counterpart of the model checker's per-state invariants,
// applied to full-size runs.
func (s *System) CheckInvariants() []string {
	var v []string

	// SWMR across sockets: a line writable in one LLC must not be valid in
	// any other.
	type holder struct {
		socket int
		state  cache.State
	}
	lines := map[topology.Line][]holder{}
	for sk, llc := range s.LLCs {
		llc.store.ForEach(func(e *cache.Entry) bool {
			lines[e.Line] = append(lines[e.Line], holder{sk, e.State})
			return true
		})
	}
	for l, hs := range lines {
		writers, readers := 0, 0
		for _, h := range hs {
			if h.state.Writable() {
				writers++
			} else if h.state.Readable() {
				readers++
			}
		}
		if writers > 1 || (writers == 1 && readers > 0) {
			home := s.AMap.HomeSocketLine(l)
			st, owner, sh := s.Dirs[home].Entry(l)
			v = append(v, fmt.Sprintf("SWMR: line %#x held by %d writers / %d readers (holders %v; home=%d dir=%v owner=%d sharers=%v)",
				l, writers, readers, hs, home, st, owner, sh))
		}
	}

	// Directory agreement: an M/O entry's owner-side cache must actually
	// hold the line (the replica agent owns on behalf of its LLC).
	for _, d := range s.Dirs {
		for i, l := range d.lineOrder {
			e := d.at(int32(i))
			if e.state != cache.Modified && e.state != cache.Owned {
				continue
			}
			if e.owner < 0 || int(e.owner) >= len(s.LLCs) {
				v = append(v, fmt.Sprintf("dir %d: line %#x in %v with owner %d", d.socket, l, e.state, e.owner))
				continue
			}
			if !s.LLCs[e.owner].HasLine(l) {
				v = append(v, fmt.Sprintf("dir %d: line %#x owned by socket %d but absent from its LLC", d.socket, l, e.owner))
			}
		}
	}

	// A writable LLC line must be recorded at its home directory with the
	// right owner.
	for sk, llc := range s.LLCs {
		sk := sk
		llc.store.ForEach(func(e *cache.Entry) bool {
			if !e.State.Writable() {
				return true
			}
			home := s.AMap.HomeSocketLine(e.Line)
			st, owner, _ := s.Dirs[home].Entry(e.Line)
			if st != cache.Modified || owner != sk {
				v = append(v, fmt.Sprintf("LLC %d holds %#x in M but home dir says %v/owner %d", sk, e.Line, st, owner))
			}
			return true
		})
	}

	// Inclusion: every valid L1 line is present in its socket's LLC with
	// the core recorded as a sharer or owner.
	for core, l1 := range s.l1s {
		sk := s.SocketOf(core)
		lc := core % s.Cfg.CoresPerSocket
		l1.ForEach(func(e *cache.Entry) bool {
			le := s.LLCs[sk].store.Peek(e.Line)
			if le == nil {
				v = append(v, fmt.Sprintf("inclusion: core %d holds %#x not in LLC %d", core, e.Line, sk))
				return true
			}
			if le.Sharers&(1<<uint(lc)) == 0 && le.Owner != int8(lc) {
				v = append(v, fmt.Sprintf("local dir: core %d holds %#x but is not a recorded sharer", core, e.Line))
			}
			// An L1-writable line requires socket-level write permission.
			if e.State.Writable() && !le.State.Writable() {
				v = append(v, fmt.Sprintf("core %d holds %#x writable but LLC %d is %v", core, e.Line, sk, le.State))
			}
			return true
		})
	}
	// Several audits above iterate maps; sorting makes the violation
	// report itself deterministic, so a failing campaign produces the
	// same journal artifacts on every run.
	sort.Strings(v)
	return v
}
