package coherence

import (
	"dve/internal/cache"
	"dve/internal/noc"
	"dve/internal/sim"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// LLC is one socket's shared, inclusive last-level cache with the embedded
// local directory (per-core sharer vector and owner), per Table II. Entry
// state is the socket's *global* coherence state; Sharers/Owner track which
// L1s within the socket hold the line.
type LLC struct {
	sys    *System
	socket int
	store  *cache.Cache
	mshr   *cache.MSHR
}

func newLLC(s *System, socket int) *LLC {
	return &LLC{
		sys:    s,
		socket: socket,
		store:  cache.New(s.Cfg.LLCSizeBytes, s.Cfg.LLCWays, s.Cfg.LineSizeBytes),
		mshr:   cache.NewMSHR(0),
	}
}

// Request services a demand access from a core of this socket after its L1
// missed. done fires when the LLC can supply the line to the L1. The L1 fill
// and local-directory bookkeeping are applied at grant time, synchronously
// with the LLC state change — if they waited for the mesh return trip, a
// probe arriving in that window would miss the L1 copy and leave it holding
// a stale writable line (an SWMR violation); done only accounts the latency.
func (c *LLC) Request(core int, write bool, l topology.Line, done func()) {
	if c.mshr.Busy(l) {
		c.mshr.Defer(l, func() { c.Request(core, write, l, done) })
		return
	}
	lat := sim.Cycle(c.sys.Cfg.LLCLatencyCyc)
	e := c.store.Lookup(l)
	if e != nil && (!write && e.State.Readable() || write && e.State.Writable()) {
		c.sys.Cnts[c.socket].LLCHits++
		lat += c.localService(core, write, e)
		c.sys.l1Fill(core, l, write)
		c.sys.Engs[c.socket].Schedule(lat, done)
		return
	}
	// Global transaction required.
	c.sys.Cnts[c.socket].LLCMisses++
	start := c.sys.Engs[c.socket].Now()
	c.mshr.Allocate(l)
	needData := e == nil || !e.State.Readable() // S->M upgrades carry no data
	// The miss span covers the whole global transaction; sp is zero (and
	// End a no-op) when tracing is off, so the capture adds nothing to the
	// closure the miss path already allocates.
	var sp telemetry.SpanID
	if tr := c.sys.Trace; tr != nil {
		sp = tr.Begin(telemetry.CompLLC, c.socket, "miss", uint64(l))
	}
	finish := func() {
		lat := uint64(c.sys.Engs[c.socket].Now() - start)
		cnt := c.sys.Cnts[c.socket]
		cnt.MemLatencySum += lat
		cnt.MemCount++
		cnt.MissLatency.Add(lat)
		c.fill(core, write, l)
		c.sys.l1Fill(core, l, write)
		if tr := c.sys.Trace; tr != nil {
			tr.Point(telemetry.CompLLC, c.socket, "fill", uint64(l))
			tr.End(sp)
		}
		done()
		for _, w := range c.mshr.Release(l) {
			w()
		}
	}
	c.sys.Engs[c.socket].Schedule(lat, func() {
		if write {
			c.issueGETX(l, needData, finish)
		} else {
			c.issueGETS(l, needData, finish)
		}
	})
}

// localService satisfies a request entirely within the socket, returning the
// extra latency of any L1 probes. State changes are applied immediately.
func (c *LLC) localService(core int, write bool, e *cache.Entry) sim.Cycle {
	lc := core % c.sys.Cfg.CoresPerSocket
	var extra sim.Cycle
	probe := func(owner int) sim.Cycle {
		return 2*c.sys.Mesh.Latency(c.sys.Mesh.HomeTile(), c.sys.Mesh.CoreTile(owner)) +
			sim.Cycle(c.sys.Cfg.L1LatencyCyc)
	}
	if write {
		// Invalidate every other local L1 copy.
		for s := 0; s < c.sys.Cfg.CoresPerSocket; s++ {
			if s == lc || e.Sharers&(1<<uint(s)) == 0 {
				continue
			}
			gc := c.socket*c.sys.Cfg.CoresPerSocket + s
			if c.sys.probeL1(gc, e.Line, true) {
				e.Dirty = true
			}
			if p := probe(s); p > extra {
				extra = p
			}
			e.Sharers &^= 1 << uint(s)
		}
		e.Owner = int8(lc)
		e.Dirty = true
	} else if e.Owner >= 0 && int(e.Owner) != lc {
		// Fetch from the local L1 that holds it dirty; downgrade it.
		gc := c.socket*c.sys.Cfg.CoresPerSocket + int(e.Owner)
		if c.sys.probeL1(gc, e.Line, false) {
			e.Dirty = true
		}
		extra = probe(int(e.Owner))
		e.Owner = -1
	}
	return extra
}

// noteL1Fill records an L1's copy in the local directory after a fill.
func (c *LLC) noteL1Fill(core int, l topology.Line, write bool) {
	e := c.store.Peek(l)
	if e == nil {
		return
	}
	lc := core % c.sys.Cfg.CoresPerSocket
	e.Sharers |= 1 << uint(lc)
	if write {
		e.Owner = int8(lc)
	}
}

// fill installs a granted line, evicting and writing back a victim if needed.
func (c *LLC) fill(core int, write bool, l topology.Line) {
	if c.sys.DebugLog != nil && l == c.sys.DebugLine {
		c.sys.DebugLog("[%d] llc%d fill write=%v", c.sys.Engs[c.socket].Now(), c.socket, write)
	}
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	if e := c.store.Peek(l); e != nil {
		// Upgrade in place.
		e.State = st
		c.localService(core, write, e)
		return
	}
	e, victim, evicted := c.store.Insert(l, st)
	e.Dirty = write
	e.Sharers = 0
	e.Owner = -1
	if evicted {
		c.evict(victim)
	}
}

// evict handles an LLC victim: back-invalidate L1 copies (inclusion) and
// write back dirty data globally.
func (c *LLC) evict(victim cache.Entry) {
	for s := 0; s < c.sys.Cfg.CoresPerSocket; s++ {
		if victim.Sharers&(1<<uint(s)) != 0 {
			gc := c.socket*c.sys.Cfg.CoresPerSocket + s
			if c.sys.probeL1(gc, victim.Line, true) {
				victim.Dirty = true
			}
		}
	}
	if victim.State == cache.Modified || victim.State == cache.Owned || victim.Dirty {
		c.issuePUTM(victim.Line)
	}
}

// Probe handles an incoming coherence probe from the global level (directly
// from the home directory, or via the replica agent). It applies the state
// change immediately and reports whether the copy was dirty. Absent lines
// report clean (e.g. a writeback already in flight).
func (c *LLC) Probe(l topology.Line, invalidate bool) (dirty bool) {
	if c.sys.DebugLog != nil && l == c.sys.DebugLine {
		c.sys.DebugLog("[%d] llc%d probe inv=%v has=%v", c.sys.Engs[c.socket].Now(), c.socket, invalidate, c.store.Peek(l) != nil)
	}
	e := c.store.Peek(l)
	if e == nil {
		return false
	}
	// Probe the owning L1 first so its dirty data merges in.
	if e.Owner >= 0 {
		gc := c.socket*c.sys.Cfg.CoresPerSocket + int(e.Owner)
		if c.sys.probeL1(gc, l, invalidate) {
			e.Dirty = true
		}
		if !invalidate {
			e.Owner = -1
		}
	}
	dirty = e.Dirty
	if invalidate {
		for s := 0; s < c.sys.Cfg.CoresPerSocket; s++ {
			if e.Sharers&(1<<uint(s)) != 0 {
				gc := c.socket*c.sys.Cfg.CoresPerSocket + s
				c.sys.probeL1(gc, l, true)
			}
		}
		c.store.Invalidate(l)
	} else {
		if e.State == cache.Modified {
			e.State = cache.Owned
		}
	}
	return dirty
}

// Downgrade moves the line to Shared and clears its dirty bit (used after a
// Dvé dual writeback of the owner's data). Reports previous dirtiness.
func (c *LLC) Downgrade(l topology.Line) (dirty bool) {
	e := c.store.Peek(l)
	if e == nil {
		return false
	}
	if e.Owner >= 0 {
		gc := c.socket*c.sys.Cfg.CoresPerSocket + int(e.Owner)
		if c.sys.probeL1(gc, l, false) {
			e.Dirty = true
		}
		e.Owner = -1
	}
	dirty = e.Dirty || e.State == cache.Modified || e.State == cache.Owned
	e.State = cache.Shared
	e.Dirty = false
	return dirty
}

// RegisterRemoteShared records every clean Shared remote-homed line of this
// LLC as a replica-side sharer at its home directory, and returns how many
// were registered. The dynamic protocol's warmup uses it when switching to
// the allow-based family: copies acquired through deny-mode replica reads
// are unknown to the home directory (deny serves without registering a
// sharer), so allow-mode sharer-driven invalidations would miss them. The
// paper's "warmup phase to bring the metadata entries au courant" — a
// metadata walk, so the surviving cache contents are kept (flushing them
// instead causes a re-miss storm after every protocol switch).
// Dirty/owned lines are already tracked by the home directory's owner field.
func (c *LLC) RegisterRemoteShared() int {
	n := 0
	c.store.ForEach(func(e *cache.Entry) bool {
		if e.State == cache.Shared && !e.Dirty &&
			c.sys.AMap.HomeSocketLine(e.Line) != c.socket {
			home := c.sys.AMap.HomeSocketLine(e.Line)
			c.sys.Dirs[home].OracleAddSharer(e.Line, c.socket)
			n++
		}
		return true
	})
	return n
}

// HasLine reports whether the LLC currently holds the line (any valid state).
func (c *LLC) HasLine(l topology.Line) bool { return c.store.Peek(l) != nil }

// issueGETS routes a global read request: to the local home directory, to
// the local replica agent, or across the link to the remote home directory.
func (c *LLC) issueGETS(l topology.Line, needData bool, done func()) {
	home := c.sys.AMap.HomeSocketLine(l)
	switch {
	case home == c.socket:
		c.sys.Dirs[home].GETS(c.socket, l, done)
	case c.sys.Replicas[c.socket] != nil && c.sys.HasReplica(l):
		c.sys.Replicas[c.socket].LocalGETS(l, needData, func(fromReplica bool) {
			if fromReplica {
				c.sys.Cnts[c.socket].ReplicaReads++
			}
			done()
		})
	default:
		c.sys.Link.Send(c.socket, noc.CtrlBytes, func() {
			c.sys.Dirs[home].GETS(c.socket, l, done)
		})
	}
}

func (c *LLC) issueGETX(l topology.Line, needData bool, done func()) {
	home := c.sys.AMap.HomeSocketLine(l)
	switch {
	case home == c.socket:
		c.sys.Dirs[home].GETX(c.socket, l, needData, done)
	case c.sys.Replicas[c.socket] != nil && c.sys.HasReplica(l):
		c.sys.Replicas[c.socket].LocalGETX(l, needData, done)
	default:
		c.sys.Link.Send(c.socket, noc.CtrlBytes, func() {
			c.sys.Dirs[home].GETX(c.socket, l, needData, done)
		})
	}
}

func (c *LLC) issuePUTM(l topology.Line) {
	home := c.sys.AMap.HomeSocketLine(l)
	switch {
	case home == c.socket:
		c.sys.Dirs[home].PUTM(c.socket, l, func() {})
	case c.sys.Replicas[c.socket] != nil && c.sys.HasReplica(l):
		c.sys.Replicas[c.socket].LocalPUTM(l, func() {})
	default:
		c.sys.Link.Send(c.socket, noc.DataBytes, func() {
			c.sys.Dirs[home].PUTM(c.socket, l, func() {})
		})
	}
}
