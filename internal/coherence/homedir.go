package coherence

import (
	"dve/internal/cache"
	"dve/internal/noc"
	"dve/internal/sim"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// dirEntry is the global directory state for one line. Sharers are tracked
// at socket granularity (Table II: "coarse-grain (sockets) sharing vector"):
// index h is the home socket's LLC; index r is the remote agent — the remote
// LLC in the baseline, or the Dvé replica directory.
type dirEntry struct {
	state   cache.State // I, S, M, O
	sharers [2]bool
	owner   int8 // owning socket agent when M/O; -1 otherwise
}

// Directory entries are stored by value in fixed-size slabs: transactions
// hold *dirEntry across scheduling boundaries, so storage must never move
// (a single growable slice would reallocate under them), and slab-backed
// values avoid one heap object per tracked line.
const (
	dirSlabBits = 12
	dirSlabSize = 1 << dirSlabBits
	dirSlabMask = dirSlabSize - 1
)

// HomeDir is the global directory co-located with one socket's memory
// controller. It is the serialization point for all transactions on lines
// homed at this socket; concurrent requests for a line are serialized and
// coalesced in the MSHR (Section V-C3).
type HomeDir struct {
	sys    *System
	socket int
	// entries maps a line to its slab slot; slabs hold the entry values.
	// Entry i of lineOrder occupies slot i.
	entries map[topology.Line]int32
	slabs   [][]dirEntry
	// lineOrder lists tracked lines in first-touch order (for the patrol
	// scrubber's deterministic walk).
	lineOrder []topology.Line
	seqq      *cache.Sequencer

	// degraded marks lines whose home copy suffered a hard fault; their
	// reads are funneled to the replica ("the system is placed in a degraded
	// state with only one working copy", Section V-B2).
	degraded map[topology.Line]bool
	// repairFails counts consecutive failed repair-verify re-reads per
	// line; reaching retireAfterRepairFails triggers page retirement.
	repairFails map[topology.Line]int
}

// Escalation-ladder tuning (Section V-B2 operationalised): a detected error
// is retried locally with doubling backoff (transients often clear), then
// recovered from the replica, then repaired in place and verified; a line
// whose repairs keep failing retires its page and degrades to single-copy
// service.
const (
	readRetryMax           = 2  // local re-reads before replica recovery
	retryBackoffCyc        = 16 // backoff before the first re-read; doubles
	retireAfterRepairFails = 2  // failed repair-verifies before retirement
)

func newHomeDir(s *System, socket int) *HomeDir {
	// Each home directory tracks roughly its socket's share of the
	// footprint; the fault-path maps stay small (they only hold lines that
	// ever failed), so their hint is a fraction of that.
	hint := s.Cfg.FootprintHintLines / s.Cfg.Sockets
	return &HomeDir{
		sys:         s,
		socket:      socket,
		entries:     make(map[topology.Line]int32, hint),
		seqq:        cache.NewSequencer(s.Engs[socket], sim.Cycle(s.Cfg.DirLatencyCyc), cache.NewMSHR(0)),
		degraded:    make(map[topology.Line]bool, hint/64),
		repairFails: make(map[topology.Line]int, hint/64),
	}
}

// at returns the entry in slab slot i.
func (d *HomeDir) at(i int32) *dirEntry {
	return &d.slabs[i>>dirSlabBits][i&dirSlabMask]
}

func (d *HomeDir) entry(l topology.Line) *dirEntry {
	if i, ok := d.entries[l]; ok {
		return d.at(i)
	}
	n := len(d.lineOrder)
	if n>>dirSlabBits == len(d.slabs) {
		d.slabs = append(d.slabs, make([]dirEntry, 0, dirSlabSize))
	}
	sl := &d.slabs[n>>dirSlabBits]
	*sl = append(*sl, dirEntry{state: cache.Invalid, owner: -1})
	d.entries[l] = int32(n)
	d.lineOrder = append(d.lineOrder, l)
	return &(*sl)[n&dirSlabMask]
}

// Entry returns a copy of the directory entry for tests and the oracular
// replica directory (which consults home state with oracle knowledge).
func (d *HomeDir) Entry(l topology.Line) (state cache.State, owner int, sharers [2]bool) {
	i, ok := d.entries[l]
	if !ok {
		return cache.Invalid, -1, [2]bool{}
	}
	e := d.at(i)
	return e.state, int(e.owner), e.sharers
}

// DegradedLines returns how many lines are in the degraded (single-copy)
// state.
func (d *HomeDir) DegradedLines() int { return len(d.degraded) }

// HasLine reports whether the directory has ever tracked the line — i.e.
// some core actually touched it. Adversarial campaigns prefer placing
// victim-row bitflips on tracked lines so the flips are observable by
// demand reads instead of rotting on never-read addresses.
func (d *HomeDir) HasLine(l topology.Line) bool {
	_, ok := d.entries[l]
	return ok
}

func (d *HomeDir) dbg(l topology.Line, format string, args ...any) {
	if d.sys.DebugLog != nil && l == d.sys.DebugLine {
		d.sys.DebugLog("[%d] dir%d "+format, append([]any{d.sys.Engs[d.socket].Now(), d.socket}, args...)...)
	}
}

// seq serializes a transaction on a line: it pays the directory access
// latency, waits for any in-flight transaction on the line, and passes a
// release function that must be called exactly once when the transaction
// completes. The dispatch itself is pooled and allocation-free
// (cache.Sequencer); only the transaction body closure remains per-call.
func (d *HomeDir) seq(name string, l topology.Line, fn func(release func())) {
	tr := d.sys.Trace
	if tr == nil {
		d.seqq.Do(l, fn)
		return
	}
	// Span the whole serialized transaction: Begin once the line is held,
	// End when the body releases it. The wrapper only adds observation —
	// scheduling and release order are untouched (no-perturbation rule).
	d.seqq.Do(l, func(release func()) {
		sp := tr.Begin(telemetry.CompHomeDir, d.socket, name, uint64(l))
		fn(func() {
			tr.End(sp)
			release()
		})
	})
}

// classify records the Fig 7 sharing-pattern class of a request.
func (d *HomeDir) classify(write bool, st cache.State) {
	if !d.sys.Classify {
		return
	}
	c := d.sys.Cnts[d.socket]
	switch {
	case !write && st == cache.Invalid:
		c.PrivateRead++
	case !write && st == cache.Shared:
		c.ReadOnly++
	case write && st == cache.Invalid:
		c.PrivateReadWrite++
	default:
		c.ReadWrite++
	}
}

// replicaAgent returns the replica directory on the opposite socket, nil in
// non-replicated configurations.
func (d *HomeDir) replicaAgent() ReplicaAgent {
	return d.sys.Replicas[d.remoteSocket()]
}

func (d *HomeDir) remoteSocket() int { return (d.socket + 1) % d.sys.Cfg.Sockets }

// readHomeMem reads the line from home memory, climbing the recovery
// escalation ladder when the local ECC check fails (Section V-B2): local
// re-read retries with doubling backoff, then replica recovery, then a
// repair-write-then-verify, then page retirement when the line keeps
// failing. cb runs at the home directory when data is available (or the
// error was logged as DUE).
func (d *HomeDir) readHomeMem(l topology.Line, cb func()) {
	cnt := d.sys.Cnts[d.socket]
	cnt.HomeReads++
	if d.degraded[l] && d.sys.HasReplica(l) {
		// Already degraded: funnel straight to the single working copy.
		cnt.DegradedReads++
		d.readFromReplicaMem(l, func(ok bool) {
			if !ok {
				cnt.DetectedUncorrect++
				d.sys.rasEvent(EvDUE, d.socket, l)
			}
			cb()
		})
		return
	}
	d.sys.MCs[d.socket].Read(topology.Addr(l), func(failed bool) {
		if !failed {
			cb()
			return
		}
		d.sys.rasEvent(EvDetect, d.socket, l)
		d.retryRead(l, 0, retryBackoffCyc, cb)
	})
}

// retryRead is ladder rung 1: re-read the home copy up to readRetryMax
// times with doubling backoff. Transient and intermittent errors often
// clear here without touching the replica.
func (d *HomeDir) retryRead(l topology.Line, attempt int, backoff sim.Cycle, cb func()) {
	cnt := d.sys.Cnts[d.socket]
	if attempt >= readRetryMax {
		d.recoverViaReplica(l, cb)
		return
	}
	cnt.RetriedReads++
	d.sys.rasEvent(EvRetry, d.socket, l)
	d.sys.Engs[d.socket].Schedule(backoff, func() {
		d.sys.MCs[d.socket].Read(topology.Addr(l), func(failed bool) {
			if !failed {
				cnt.RetrySuccesses++
				d.sys.rasEvent(EvRetryOK, d.socket, l)
				cb()
				return
			}
			d.retryRead(l, attempt+1, backoff*2, cb)
		})
	})
}

// recoverViaReplica is ladder rung 2: fetch the data from the replica on
// the other socket, then kick off the in-place repair (rung 3) in the
// background. Without a replica the error is a DUE.
func (d *HomeDir) recoverViaReplica(l topology.Line, cb func()) {
	cnt := d.sys.Cnts[d.socket]
	if !d.sys.HasReplica(l) {
		// No second basket: detected but uncorrectable.
		cnt.DetectedUncorrect++
		d.sys.rasEvent(EvDUE, d.socket, l)
		cb()
		return
	}
	d.readFromReplicaMem(l, func(ok bool) {
		if !ok {
			// Both copies failed: data lost, machine check (DUE).
			cnt.DetectedUncorrect++
			d.sys.rasEvent(EvDUE, d.socket, l)
			cb()
			return
		}
		cnt.CorrectedErrors++
		cnt.Recoveries++
		d.sys.rasEvent(EvRecover, d.socket, l)
		d.repairHome(l)
		cb()
	})
}

// repairHome is ladder rung 3: write the recovered data over the failed
// home location and verify with a re-read. Persistent failures climb to
// rung 4: page retirement via the RMT, and line-level degradation so later
// reads go straight to the surviving copy. Runs in the background — the
// demand read has already completed from the replica.
func (d *HomeDir) repairHome(l topology.Line) {
	a := topology.Addr(l)
	cnt := d.sys.Cnts[d.socket]
	cnt.RepairWrites++
	d.sys.rasEvent(EvRepair, d.socket, l)
	d.sys.MCs[d.socket].Write(a, func() {
		// The write lands known-good data: transient faults clear.
		d.sys.repairAt(d.socket, a)
		d.sys.MCs[d.socket].Read(a, func(stillBad bool) {
			if !stillBad {
				d.sys.rasEvent(EvRepairOK, d.socket, l)
				delete(d.repairFails, l)
				return
			}
			cnt.RepairVerifyFails++
			d.sys.rasEvent(EvRepairFail, d.socket, l)
			d.repairFails[l]++
			if d.repairFails[l] < retireAfterRepairFails {
				return
			}
			// Rung 4: the fault hardened. Retire the page and serve the
			// line from the replica from now on.
			if d.sys.RetireFn != nil && d.sys.RetireFn(l) {
				cnt.PagesRetired++
				d.sys.rasEvent(EvRetire, d.socket, l)
			}
			if !d.degraded[l] {
				d.degraded[l] = true
				cnt.DegradedLines++
				d.sys.rasEvent(EvDegraded, d.socket, l)
			}
		})
	})
}

// readFromReplicaMem reads the replica copy on the other socket, paying the
// link both ways. ok=false when the replica read also fails.
func (d *HomeDir) readFromReplicaMem(l topology.Line, cb func(ok bool)) {
	ra, ok := d.sys.ReplicaAddrOf(l)
	if !ok {
		cb(false)
		return
	}
	r := d.remoteSocket()
	d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
		d.sys.MCs[r].Read(ra, func(failed bool) {
			d.sys.Link.Send(r, noc.DataBytes, func() { cb(!failed) })
		})
	})
}

// dualWriteback synchronously writes dirty data to both the home memory and
// the replica memory (Section V-B1). done fires when both writes complete.
func (d *HomeDir) dualWriteback(l topology.Line, undeny bool, done func()) {
	ra, ok := d.sys.ReplicaAddrOf(l)
	if !ok {
		d.sys.MCs[d.socket].Write(topology.Addr(l), done)
		return
	}
	d.sys.Cnts[d.socket].DualWritebacks++
	r := d.remoteSocket()
	if d.sys.Partitioned() {
		// Partitioned: the replica write is posted. done may only fire on
		// the home partition, so it follows the home write alone; the
		// replica leg completes behind the FIFO link, which still orders it
		// ahead of any later home-side transaction that could observe the
		// replica copy (such a transaction pays the same link crossing).
		d.sys.MCs[d.socket].Write(topology.Addr(l), done)
		d.sys.repairAt(d.socket, topology.Addr(l))
		d.sys.Link.Send(d.socket, noc.DataBytes, func() {
			if undeny {
				if a := d.replicaAgent(); a != nil {
					a.HomeUndeny(l)
				}
			}
			d.sys.MCs[r].Write(ra, func() {})
			d.sys.repairAt(r, ra)
		})
		return
	}
	remaining := 2
	part := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	d.sys.MCs[d.socket].Write(topology.Addr(l), part)
	d.sys.repairAt(d.socket, topology.Addr(l))
	d.sys.Link.Send(d.socket, noc.DataBytes, func() {
		if undeny {
			if a := d.replicaAgent(); a != nil {
				a.HomeUndeny(l)
			}
		}
		d.sys.MCs[r].Write(ra, part)
		d.sys.repairAt(r, ra)
	})
}

// probeLat is the latency of probing a co-located LLC.
func (d *HomeDir) probeLat() sim.Cycle { return sim.Cycle(d.sys.Cfg.LLCLatencyCyc) }

// GETS handles a read request from an LLC (the home socket's own LLC, or a
// remote LLC in the baseline — replica-side requests in Dvé come through
// ReplicaGETS). reply runs at the requester when data is available there.
func (d *HomeDir) GETS(src int, l topology.Line, reply func()) {
	d.seq("GETS", l, func(release func()) {
		e := d.entry(l)
		d.dbg(l, "GETS src=%d state=%v owner=%d sharers=%v", src, e.state, e.owner, e.sharers)
		d.classify(false, e.state)
		deliver := func() {
			if src == d.socket {
				// Reply synchronously, then release: the requester's LLC
				// fill must land before the MSHR frees, or an already-
				// queued same-line transaction runs between release and
				// fill, probes the LLC pre-fill, and the fill then
				// resurrects a stale copy (SWMR violation). Remote
				// requesters are safe without this: the FIFO link orders
				// their fill ahead of any later probe.
				reply()
				release()
				return
			}
			d.sys.Link.Send(d.socket, noc.DataBytes, reply)
			release()
		}
		switch {
		case e.state == cache.Invalid || e.state == cache.Shared:
			e.state = cache.Shared
			e.sharers[src] = true
			d.readHomeMem(l, deliver)

		case int(e.owner) == src:
			// Degenerate (stale writeback race): serve from memory.
			d.readHomeMem(l, deliver)

		case int(e.owner) == d.socket:
			// Home LLC owns it; requester is a remote baseline LLC.
			d.sys.LLCs[d.socket].Probe(l, false) // M -> O downgrade
			e.state = cache.Owned
			e.sharers[src] = true
			e.sharers[d.socket] = true
			d.sys.Engs[d.socket].Schedule(d.probeLat(), deliver)

		default:
			// Remote side owns it; requester is the home LLC.
			owner := int(e.owner)
			if a := d.sys.Replicas[owner]; a != nil && d.sys.HasReplica(l) {
				// Dvé: fetch via the replica directory; the owner LLC
				// downgrades and the data updates both memories.
				d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
					a.HomeFetch(l, false, func() {
						d.sys.Link.Send(owner, noc.DataBytes, func() {
							d.sys.MCs[d.socket].Write(topology.Addr(l), func() {})
							e.state = cache.Shared
							e.owner = -1
							e.sharers[d.socket] = true
							e.sharers[owner] = true
							reply() // home-socket requester: fill before release
							release()
						})
					})
				})
				return
			}
			// Baseline: downgrade the remote owner (M -> O), data crosses
			// the link back to the requester at home.
			d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
				// Runs at the owner after the link crossing: the probe delay
				// belongs to the owner's partition.
				d.sys.LLCs[owner].Probe(l, false)
				d.sys.Engs[owner].Schedule(d.probeLat(), func() {
					d.sys.Link.Send(owner, noc.DataBytes, func() {
						e.state = cache.Owned
						e.sharers[d.socket] = true
						reply() // home-socket requester: fill before release
						release()
					})
				})
			})
		}
	})
}

// GETX handles a write (exclusive) request from an LLC. reply runs at the
// requester when write permission (and data, if needData) is there.
func (d *HomeDir) GETX(src int, l topology.Line, needData bool, reply func()) {
	d.seq("GETX", l, func(release func()) {
		e := d.entry(l)
		d.dbg(l, "GETX src=%d needData=%v state=%v owner=%d sharers=%v", src, needData, e.state, e.owner, e.sharers)
		d.classify(true, e.state)
		agent := d.replicaAgent()
		denyPush := false
		if src == d.socket && agent != nil && d.sys.HasReplica(l) {
			// Dvé: the replica directory must be told before the home side
			// writes. Allow protocol: only when the replica directory holds
			// the line (it is a registered sharer). Deny protocol: always —
			// absence of an entry means the replica is readable, so the deny
			// must be pushed eagerly (Section V-C2).
			denyPush = e.sharers[d.remoteSocket()] || d.denyModeActive()
		}

		deliver := func() {
			if src == d.socket {
				// Synchronous reply before release — see the GETS deliver
				// comment: the home LLC's fill must land before the MSHR
				// frees or a queued same-line transaction probes pre-fill.
				reply()
				release()
				return
			}
			bytes := noc.DataBytes
			if !needData {
				bytes = noc.CtrlBytes
			}
			d.sys.Link.Send(d.socket, bytes, reply)
			release()
		}

		grantTo := func() {
			e.state = cache.Modified
			e.owner = int8(src)
			e.sharers = [2]bool{}
			e.sharers[src] = true
		}

		switch {
		case e.state == cache.Invalid || e.state == cache.Shared,
			int(e.owner) == src:
			// Fresh grant, upgrade from S, or an O->M upgrade by the owner
			// itself (dirty-shared line being written again): invalidate
			// every other sharer, push the deny if needed, and read memory
			// in parallel; grant when everything completes. An owner
			// already holds current data, so no memory read is needed.
			if int(e.owner) == src {
				needData = false
			}
			remote := d.remoteSocket()
			needRemoteInv := denyPush ||
				(e.sharers[remote] && src != remote)
			needHomeInv := e.sharers[d.socket] && src != d.socket

			join := 1 // memory/data leg
			if needRemoteInv {
				join++
			}
			pushed := needRemoteInv
			var done func()
			done = func() {
				join--
				if join != 0 {
					return
				}
				// The dynamic protocol can switch families while this
				// transaction is in flight: re-check at grant time and push
				// the deny now if the new mode requires one (otherwise a
				// freshly deny-mode replica directory would keep serving a
				// line the home side is about to write).
				if src == d.socket && agent != nil && !pushed &&
					d.sys.HasReplica(l) && d.denyModeActive() {
					pushed = true
					join = 1
					d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
						agent.HomeInvalidate(l, func() {
							d.sys.Link.Send(remote, noc.CtrlBytes, done)
						})
					})
					return
				}
				grantTo()
				deliver()
			}
			if needHomeInv {
				// Local probe: latency folded into the directory access.
				d.sys.LLCs[d.socket].Probe(l, true)
			}
			if needRemoteInv {
				d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
					inv := func(ack func()) {
						if agent != nil && d.sys.HasReplica(l) {
							agent.HomeInvalidate(l, ack)
						} else {
							// Post-link: the probe runs on the remote partition.
							d.sys.LLCs[remote].Probe(l, true)
							d.sys.Engs[remote].Schedule(d.probeLat(), ack)
						}
					}
					inv(func() {
						d.sys.Link.Send(remote, noc.CtrlBytes, done)
					})
				})
			}
			if needData {
				d.readHomeMem(l, done)
			} else {
				d.sys.Engs[d.socket].Schedule(0, done)
			}

		case int(e.owner) == d.socket:
			// Home LLC owns; requester is a remote baseline LLC.
			d.sys.LLCs[d.socket].Probe(l, true)
			grantTo()
			d.sys.Engs[d.socket].Schedule(d.probeLat(), deliver)

		default:
			// Remote side owns; requester is the home LLC.
			owner := int(e.owner)
			if a := d.sys.Replicas[owner]; a != nil && d.sys.HasReplica(l) {
				d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
					// invalidate=true also installs RM under the deny
					// protocol: the home side is taking exclusive access.
					a.HomeFetch(l, true, func() {
						d.sys.Link.Send(owner, noc.DataBytes, func() {
							grantTo()
							reply() // home-socket requester: fill before release
							release()
						})
					})
				})
				return
			}
			d.sys.Link.Send(d.socket, noc.CtrlBytes, func() {
				// Post-link: probe delay on the owner's partition.
				d.sys.LLCs[owner].Probe(l, true)
				d.sys.Engs[owner].Schedule(d.probeLat(), func() {
					d.sys.Link.Send(owner, noc.DataBytes, func() {
						grantTo()
						reply() // home-socket requester: fill before release
						release()
					})
				})
			})
		}
	})
}

// denyModeActive reports whether the attached replica agent currently runs
// the deny-based protocol (the dynamic protocol switches at runtime).
func (d *HomeDir) denyModeActive() bool {
	type denyModer interface{ DenyMode() bool }
	if a, ok := d.replicaAgent().(denyModer); ok {
		return a.DenyMode()
	}
	return false
}

// PUTM handles a dirty writeback from an LLC. In replicated configurations
// the data is written to both memories synchronously; under the deny
// protocol the replica directory's RM entry is cleared once the replica
// write is on its way (Section V-C2).
func (d *HomeDir) PUTM(src int, l topology.Line, done func()) {
	d.seq("PUTM", l, func(release func()) {
		e := d.entry(l)
		d.dbg(l, "PUTM src=%d state=%v owner=%d", src, e.state, e.owner)
		if int(e.owner) != src {
			// Ownership already migrated (race with a fetch): drop.
			release()
			done()
			return
		}
		if e.state == cache.Owned {
			e.state = cache.Shared
		} else {
			e.state = cache.Invalid
			e.sharers = [2]bool{}
		}
		e.owner = -1
		e.sharers[src] = false
		fin := func() {
			release()
			done()
		}
		if d.sys.HasReplica(l) {
			d.dualWriteback(l, true, fin)
		} else {
			d.sys.MCs[d.socket].Write(topology.Addr(l), fin)
		}
	})
}

// GrantRegion attempts a coarse-grain grant (Section V-C5): if no line of
// the region is currently writable on the home side, the replica directory
// is registered as a sharer of every line and true is returned. The check is
// immediate (the caller pays the link round trip).
func (d *HomeDir) GrantRegion(base topology.Line, nLines int) bool {
	r := d.remoteSocket()
	step := topology.Line(d.sys.Cfg.LineSizeBytes)
	for i := 0; i < nLines; i++ {
		l := base + topology.Line(i)*step
		if idx, ok := d.entries[l]; ok {
			e := d.at(idx)
			if (e.state == cache.Modified || e.state == cache.Owned) && int(e.owner) == d.socket {
				return false
			}
		}
	}
	for i := 0; i < nLines; i++ {
		e := d.entry(base + topology.Line(i)*step)
		e.sharers[r] = true
	}
	return true
}

// OracleAddSharer registers the replica directory as a sharer with oracle
// knowledge (zero latency), used by the oracular allow scheme of Fig 9 so
// that later exclusive requests still pay the unavoidable invalidation.
func (d *HomeDir) OracleAddSharer(l topology.Line, socket int) {
	e := d.entry(l)
	e.sharers[socket] = true
	if e.state == cache.Invalid {
		e.state = cache.Shared
	}
}

// LinesOwnedBy returns the lines currently owned (M/O) by the given socket
// agent; the dynamic protocol's warmup uses it to rebuild the deny set.
// Iterating lineOrder (first-touch order) instead of the entries map keeps
// the result — and every deny push scheduled from it — deterministic.
func (d *HomeDir) LinesOwnedBy(socket int) []topology.Line {
	var out []topology.Line
	for i, l := range d.lineOrder {
		e := d.at(int32(i))
		if (e.state == cache.Modified || e.state == cache.Owned) && int(e.owner) == socket {
			out = append(out, l)
		}
	}
	return out
}

// ReplicaGETS handles a read request forwarded by the replica directory for
// a line it could not serve locally (allow: no entry; deny: RM). reply runs
// back at the replica directory; dataShipped=false means only a control
// grant crossed the link and the replica memory holds current data.
func (d *HomeDir) ReplicaGETS(l topology.Line, reply func(dataShipped bool)) {
	d.seq("ReplicaGETS", l, func(release func()) {
		e := d.entry(l)
		r := d.remoteSocket()
		d.dbg(l, "ReplicaGETS state=%v owner=%d sharers=%v", e.state, e.owner, e.sharers)
		switch {
		case e.state == cache.Invalid || e.state == cache.Shared,
			int(e.owner) == r:
			e.state = cache.Shared
			e.sharers[r] = true
			// Replica memory is current: control-only grant.
			d.sys.Link.Send(d.socket, noc.CtrlBytes, func() { reply(false) })
			release()
		default:
			// Home LLC holds it dirty: downgrade, dual writeback; the data
			// message to the replica directory doubles as the replica
			// update.
			d.sys.LLCs[d.socket].Downgrade(l)
			e.state = cache.Shared
			e.owner = -1
			e.sharers[d.socket] = true
			e.sharers[r] = true
			d.sys.MCs[d.socket].Write(topology.Addr(l), func() {})
			d.sys.Cnts[d.socket].DualWritebacks++
			d.sys.Engs[d.socket].Schedule(d.probeLat(), func() {
				d.sys.Link.Send(d.socket, noc.DataBytes, func() { reply(true) })
				release()
			})
		}
	})
}

// ReplicaGETX handles an exclusive request forwarded by the replica
// directory. On a control-only grant the replica directory supplies data
// from the local replica memory.
func (d *HomeDir) ReplicaGETX(l topology.Line, reply func(dataShipped bool)) {
	d.seq("ReplicaGETX", l, func(release func()) {
		e := d.entry(l)
		r := d.remoteSocket()
		d.dbg(l, "ReplicaGETX state=%v owner=%d sharers=%v", e.state, e.owner, e.sharers)
		grant := func() {
			e.state = cache.Modified
			e.owner = int8(r)
			e.sharers = [2]bool{}
			e.sharers[r] = true
		}
		switch {
		case e.state == cache.Invalid,
			e.state == cache.Shared && !e.sharers[d.socket],
			int(e.owner) == r:
			grant()
			d.sys.Link.Send(d.socket, noc.CtrlBytes, func() { reply(false) })
			release()
		case e.state == cache.Shared:
			// Invalidate the home LLC sharer, then control grant.
			d.sys.LLCs[d.socket].Probe(l, true)
			grant()
			d.sys.Engs[d.socket].Schedule(d.probeLat(), func() {
				d.sys.Link.Send(d.socket, noc.CtrlBytes, func() { reply(false) })
				release()
			})
		default:
			// Home LLC owns it dirty: invalidate + fetch; ship data.
			d.sys.LLCs[d.socket].Probe(l, true)
			grant()
			d.sys.Engs[d.socket].Schedule(d.probeLat(), func() {
				d.sys.Link.Send(d.socket, noc.DataBytes, func() { reply(true) })
				release()
			})
		}
	})
}

// ReplicaPUTM completes a replica-side dirty writeback: the data message has
// already arrived at home (and the replica memory was written by the replica
// directory); write the home copy and clear ownership. done runs at home.
func (d *HomeDir) ReplicaPUTM(l topology.Line, done func()) {
	d.seq("ReplicaPUTM", l, func(release func()) {
		e := d.entry(l)
		r := d.remoteSocket()
		d.dbg(l, "ReplicaPUTM state=%v owner=%d", e.state, e.owner)
		if int(e.owner) == r {
			e.state = cache.Invalid
			e.owner = -1
			e.sharers = [2]bool{}
		}
		d.sys.MCs[d.socket].Write(topology.Addr(l), func() {
			release()
			done()
		})
	})
}
