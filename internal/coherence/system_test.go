package coherence

import (
	"testing"

	"dve/internal/cache"
	"dve/internal/noc"
	"dve/internal/sim"
	"dve/internal/topology"
)

func newSys(p topology.Protocol) *System {
	cfg := topology.Default(p)
	s, err := New(&cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// access runs one memory operation to completion and returns its latency.
func access(t *testing.T, s *System, core int, write bool, a topology.Addr) sim.Cycle {
	t.Helper()
	start := s.Engs[0].Now()
	done := false
	var end sim.Cycle
	s.Access(core, write, a, func() { done = true; end = s.Engs[0].Now() })
	s.Engs[0].Run()
	if !done {
		t.Fatalf("access to %#x never completed", a)
	}
	return end - start
}

func TestL1HitAfterFill(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	first := access(t, s, 0, false, 0)
	second := access(t, s, 0, false, 8) // same line
	if second >= first {
		t.Fatalf("L1 hit (%d cyc) not faster than cold miss (%d cyc)", second, first)
	}
	if second != sim.Cycle(s.Cfg.L1LatencyCyc) {
		t.Fatalf("L1 hit latency = %d, want %d", second, s.Cfg.L1LatencyCyc)
	}
	if s.Cnts[0].L1Hits != 1 || s.Cnts[0].L1Misses != 1 {
		t.Fatalf("L1 hits/misses = %d/%d", s.Cnts[0].L1Hits, s.Cnts[0].L1Misses)
	}
}

func TestLLCHitAcrossCoresSameSocket(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	access(t, s, 0, false, 0)
	misses := s.Cnts[0].LLCMisses
	access(t, s, 1, false, 0) // different core, same socket: LLC hit
	if s.Cnts[0].LLCMisses != misses {
		t.Fatal("second core's read missed the shared LLC")
	}
	if s.Cnts[0].LLCHits == 0 {
		t.Fatal("no LLC hit recorded")
	}
}

func TestRemoteAccessPaysLink(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	// Page 0 homes at socket 0; core 8 lives on socket 1.
	lat := access(t, s, 8, false, 0)
	if s.Link.Msgs() < 2 {
		t.Fatalf("remote access sent %d link messages, want >= 2", s.Link.Msgs())
	}
	if lat < 2*sim.Cycle(s.Cfg.InterSocketCyc()) {
		t.Fatalf("remote access latency %d below the link round trip", lat)
	}
	// Local access from socket 0 must not touch the link.
	s.Link.Reset()
	access(t, s, 0, false, 64)
	if s.Link.Msgs() != 0 {
		t.Fatal("local access crossed the socket link")
	}
}

func TestWriteGrantsExclusive(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	access(t, s, 0, true, 0)
	st, owner, _ := s.Dirs[0].Entry(s.AMap.LineOf(0))
	if st != cache.Modified || owner != 0 {
		t.Fatalf("after write: dir state %v owner %d, want M/0", st, owner)
	}
}

func TestReadAfterRemoteWriteFetchesFromOwner(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	access(t, s, 8, true, 0)  // socket 1 writes a socket-0-homed line
	access(t, s, 0, false, 0) // socket 0 reads it: 3-hop fetch, owner downgrades
	st, _, sharers := s.Dirs[0].Entry(s.AMap.LineOf(0))
	if st != cache.Owned {
		t.Fatalf("dir state %v after read of remote-owned line, want O (MOSI)", st)
	}
	if !sharers[0] {
		t.Fatal("reader not recorded as sharer")
	}
}

func TestWriteInvalidatesRemoteSharer(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	access(t, s, 8, false, 0) // socket 1 caches the line in S
	access(t, s, 0, true, 0)  // socket 0 writes: socket 1 must be invalidated
	if s.LLCs[1].HasLine(s.AMap.LineOf(0)) {
		t.Fatal("remote sharer survived an exclusive grant (SWMR violation)")
	}
}

func TestClassification(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	s.Classify = true
	access(t, s, 0, false, 0)   // GETS to I: private-read
	access(t, s, 8, false, 0)   // GETS to S: read-only
	access(t, s, 0, true, 4096) // GETX to I: private-read/write
	access(t, s, 8, true, 0)    // GETX to S: read/write
	access(t, s, 0, false, 0)   // GETS to M: read/write
	c := s.Cnts[0]
	if c.PrivateRead != 1 || c.ReadOnly != 1 || c.PrivateReadWrite != 1 || c.ReadWrite != 2 {
		t.Fatalf("classes = %d/%d/%d/%d, want 1/1/1/2",
			c.PrivateRead, c.ReadOnly, c.ReadWrite, c.PrivateReadWrite)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	access(t, s, 0, true, 0)
	// Walk enough lines mapping to the same LLC set to force the victim out.
	setStride := uint64(s.Cfg.LLCSizeBytes / s.Cfg.LLCWays)
	for i := 1; i <= s.Cfg.LLCWays+1; i++ {
		access(t, s, 0, false, topology.Addr(uint64(i)*setStride))
	}
	if s.MCs[0].Writes == 0 {
		t.Fatal("dirty LLC eviction never reached memory")
	}
	st, _, _ := s.Dirs[0].Entry(s.AMap.LineOf(0))
	if st == cache.Modified {
		t.Fatal("directory still records evicted line as Modified")
	}
}

func TestBaselineFaultIsDUE(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	s.MCs[0].FaultFn = func(a topology.Addr) bool { return true }
	access(t, s, 0, false, 0)
	if s.Cnts[0].DetectedUncorrect == 0 {
		t.Fatal("baseline fault not logged as DUE")
	}
	if s.Cnts[0].Recoveries != 0 {
		t.Fatal("baseline cannot recover without a replica")
	}
}

// fakeAgent records home-directory interactions for protocol-contract tests.
type fakeAgent struct {
	sys         *System
	invs, fetch int
	undeny      int
	denyMode    bool
}

func (f *fakeAgent) LocalGETS(l topology.Line, needData bool, done func(bool)) { done(false) }
func (f *fakeAgent) LocalGETX(l topology.Line, needData bool, done func())     { done() }
func (f *fakeAgent) LocalPUTM(l topology.Line, done func())                    { done() }
func (f *fakeAgent) HomeInvalidate(l topology.Line, ack func()) {
	f.invs++
	f.sys.Engs[0].Schedule(1, ack)
}
func (f *fakeAgent) HomeUndeny(l topology.Line) { f.undeny++ }
func (f *fakeAgent) HomeFetch(l topology.Line, inv bool, ack func()) {
	f.fetch++
	f.sys.Engs[0].Schedule(1, ack)
}
func (f *fakeAgent) Drain(done func()) { done() }
func (f *fakeAgent) DenyMode() bool    { return f.denyMode }

func TestDenyModePushesOnPrivateWrite(t *testing.T) {
	s := newSys(topology.ProtoDeny)
	fa := &fakeAgent{sys: s, denyMode: true}
	s.SetReplicaAgent(1, fa)
	// Home-side write to an uncached socket-0 line: deny protocol must push.
	access(t, s, 0, true, 0)
	if fa.invs != 1 {
		t.Fatalf("deny push count = %d, want 1", fa.invs)
	}
	// Allow mode: no push when the agent is not a sharer.
	fa.denyMode = false
	access(t, s, 0, true, 4096)
	if fa.invs != 1 {
		t.Fatalf("allow mode pushed an invalidate to a non-sharer (count=%d)", fa.invs)
	}
}

func TestUndenyOnWriteback(t *testing.T) {
	s := newSys(topology.ProtoDeny)
	fa := &fakeAgent{sys: s, denyMode: true}
	s.SetReplicaAgent(1, fa)
	access(t, s, 0, true, 0)
	setStride := uint64(s.Cfg.LLCSizeBytes / s.Cfg.LLCWays)
	for i := 1; i <= s.Cfg.LLCWays+1; i++ {
		access(t, s, 0, false, topology.Addr(uint64(i)*setStride))
	}
	if fa.undeny == 0 {
		t.Fatal("writeback of a denied line never cleared the deny (RM leak)")
	}
	if s.Cnts[0].DualWritebacks == 0 {
		t.Fatal("replicated writeback did not update both copies")
	}
}

func TestGrantRegion(t *testing.T) {
	s := newSys(topology.ProtoAllow)
	fa := &fakeAgent{sys: s}
	s.SetReplicaAgent(1, fa)
	nLines := s.Cfg.RegionBytes / s.Cfg.LineSizeBytes
	if !s.Dirs[0].GrantRegion(0, nLines) {
		t.Fatal("region grant refused with no writers")
	}
	// A home-side writer in the region blocks the grant.
	access(t, s, 0, true, 64)
	if s.Dirs[0].GrantRegion(0, nLines) {
		t.Fatal("region granted despite a home-side writer")
	}
}

func TestHasReplicaFixedVsRMT(t *testing.T) {
	s := newSys(topology.ProtoDeny)
	if !s.HasReplica(0) {
		t.Fatal("fixed mapping must replicate everything")
	}
	s.ReplicaMap = mapperFunc(func(a topology.Addr) (topology.Addr, bool) {
		return 0, false
	})
	if s.HasReplica(0) {
		t.Fatal("empty RMT still reports replicas")
	}
	b := newSys(topology.ProtoBaseline)
	if b.HasReplica(0) {
		t.Fatal("baseline reports replicas")
	}
}

type mapperFunc func(topology.Addr) (topology.Addr, bool)

func (m mapperFunc) ReplicaAddr(a topology.Addr) (topology.Addr, bool) { return m(a) }

func TestMessageSizes(t *testing.T) {
	// Control and data message sizes from the evaluation methodology.
	if noc.CtrlBytes != 8 || noc.DataBytes != 72 {
		t.Fatalf("message sizes %d/%d, want 8/72", noc.CtrlBytes, noc.DataBytes)
	}
}

func TestScrubberFindsLatentErrors(t *testing.T) {
	s := newSys(topology.ProtoDeny)
	// Attach real replica-side agents so recovery can use the replica.
	fa := &fakeAgent{sys: s}
	s.SetReplicaAgent(0, fa)
	s.SetReplicaAgent(1, fa)
	// Touch some lines so the directory knows them.
	for i := 0; i < 8; i++ {
		access(t, s, 0, false, topology.Addr(i*4096))
	}
	// A latent transient error appears on one line; no demand access will
	// touch it again.
	bad := topology.Addr(0)
	hit := true
	s.MCs[0].FaultFn = func(a topology.Addr) bool {
		return hit && s.AMap.LineOf(a) == s.AMap.LineOf(bad)
	}
	sc := NewScrubber(s, 10_000, 4)
	sc.Start()
	// Drive the daemon with RunUntil (no demand events pending).
	s.Engs[0].RunUntil(s.Engs[0].Now() + 100_000)
	if sc.ScrubbedLines == 0 {
		t.Fatal("scrubber never ran")
	}
	if s.Cnts[0].Recoveries == 0 {
		t.Fatal("patrol scrub never found the latent error")
	}
	hit = false // "repaired"
}

func TestKnownLinesDeterministicOrder(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	addrs := []topology.Addr{0, 16384, 8192, 24576} // socket-0-homed pages
	for _, a := range addrs {
		access(t, s, 0, false, a)
	}
	lines := s.Dirs[0].KnownLines()
	if len(lines) != len(addrs) {
		t.Fatalf("KnownLines = %d, want %d", len(lines), len(addrs))
	}
	for i, a := range addrs {
		if lines[i] != s.AMap.LineOf(a) {
			t.Fatalf("line %d = %#x, want first-touch order", i, lines[i])
		}
	}
}
