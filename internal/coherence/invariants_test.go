package coherence

import (
	"math/rand"
	"testing"

	"dve/internal/topology"
)

// Fuzz-style audit: random access interleavings across cores and sockets
// must leave the full-size system in an invariant-respecting quiescent
// state, for every protocol. This is the simulator-scale complement of the
// bounded model checking in internal/mcheck.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	for _, p := range []topology.Protocol{topology.ProtoBaseline, topology.ProtoIntelMirror} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			s := newSys(p)
			r := rand.New(rand.NewSource(42))
			inflight := 0
			for i := 0; i < 20_000; i++ {
				core := r.Intn(s.Cfg.TotalCores())
				write := r.Intn(3) == 0
				// A small line pool maximizes sharing conflict.
				a := topology.Addr(r.Intn(512) * 64)
				inflight++
				s.Access(core, write, a, func() { inflight-- })
				if i%7 == 0 {
					s.Engs[0].Run() // interleave drain points
				}
			}
			s.Engs[0].Run()
			if inflight != 0 {
				t.Fatalf("%d accesses never completed", inflight)
			}
			for _, viol := range s.CheckInvariants() {
				t.Error(viol)
			}
		})
	}
}

func TestInvariantsCleanSystem(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	if v := s.CheckInvariants(); len(v) != 0 {
		t.Fatalf("fresh system violates invariants: %v", v)
	}
	access(t, s, 0, true, 0)
	access(t, s, 8, false, 0)
	access(t, s, 3, false, 4096)
	if v := s.CheckInvariants(); len(v) != 0 {
		t.Fatalf("simple sequence violates invariants: %v", v)
	}
}

// The audit must actually detect corruption (a checker that passes
// everything checks nothing).
func TestInvariantsDetectCorruption(t *testing.T) {
	s := newSys(topology.ProtoBaseline)
	access(t, s, 0, true, 0)  // socket 0 LLC holds line 0 in M
	access(t, s, 8, true, 64) // socket 1 LLC holds line 64 in M

	// Corrupt: force socket 1's LLC to also claim line 0 writable.
	l := s.AMap.LineOf(0)
	e, _, _ := s.LLCs[1].store.Insert(l, 3 /* cache.Modified */)
	_ = e
	v := s.CheckInvariants()
	if len(v) == 0 {
		t.Fatal("two writers of one line went undetected")
	}
}
