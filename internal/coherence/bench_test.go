package coherence

import (
	"testing"

	"dve/internal/topology"
)

// BenchmarkDirectoryLookup measures the home directory's entry path — the
// line-index map plus the slab dereference — over a populated directory,
// the lookup every coherence transaction starts with.
func BenchmarkDirectoryLookup(b *testing.B) {
	cfg := topology.Default(topology.ProtoBaseline)
	const lines = 1 << 14
	cfg.FootprintHintLines = lines * 2 // both sockets' shares
	s, err := New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	d := s.Dirs[0]
	step := topology.Line(cfg.LineSizeBytes)
	for i := 0; i < lines; i++ {
		d.entry(topology.Line(i) * step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e := d.entry(topology.Line(i&(lines-1)) * step); e.owner != -1 {
			b.Fatal("untouched entry must be unowned")
		}
	}
}

// BenchmarkDirectoryInsert measures first-touch tracking: map insert, slab
// append (amortised), and the first-touch order log.
func BenchmarkDirectoryInsert(b *testing.B) {
	cfg := topology.Default(topology.ProtoBaseline)
	cfg.FootprintHintLines = b.N * cfg.Sockets
	s, err := New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	d := s.Dirs[0]
	step := topology.Line(cfg.LineSizeBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.entry(topology.Line(i) * step)
	}
}
