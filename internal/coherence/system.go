// Package coherence implements the two-level hierarchical directory protocol
// of the simulated machine (Table II): per-core private L1s kept coherent by
// a local directory embedded in each socket's inclusive LLC, and a global
// home directory per socket (MOSI, socket-grain sharer vector) adjoining the
// memory controller.
//
// The package exposes the extension points Dvé needs: requests from a socket
// to remotely-homed lines can be routed through a ReplicaAgent (the Dvé
// replica directory, package dve) instead of crossing the inter-socket link,
// and the home directory invokes the agent for invalidations, deny pushes,
// and dirty-data fetches.
package coherence

import (
	"fmt"

	"dve/internal/cache"
	"dve/internal/mem"
	"dve/internal/noc"
	"dve/internal/sim"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
)

// ReplicaMapper translates an address to its replica address; ok=false
// means the address is not replicated (the flexible table-based mapping of
// Section V-D).
type ReplicaMapper interface {
	ReplicaAddr(a topology.Addr) (topology.Addr, bool)
}

// ReplicaAgent is the interface the home directory and LLCs use to interact
// with a Dvé replica directory located on a socket. All methods are invoked
// at the agent's socket; any link crossing to reach the agent has already
// been paid by the caller.
type ReplicaAgent interface {
	// LocalGETS handles a read request from this socket's LLC for a line
	// homed on the other socket. done fires when data is available at the
	// LLC; fromReplica reports whether the local replica supplied it.
	LocalGETS(l topology.Line, needData bool, done func(fromReplica bool))
	// LocalGETX handles a write (exclusive) request from this socket's LLC.
	LocalGETX(l topology.Line, needData bool, done func())
	// LocalPUTM handles a dirty writeback from this socket's LLC: the data
	// must reach both the replica memory and the home memory synchronously.
	LocalPUTM(l topology.Line, done func())
	// HomeInvalidate is pushed by the home directory when a home-side agent
	// acquires exclusive access (allow protocol: INV; deny protocol: DENY,
	// which installs the RM state). The agent invalidates any replica-side
	// LLC copies and acks.
	HomeInvalidate(l topology.Line, ack func())
	// HomeUndeny clears a previously pushed deny (RM) after the home-side
	// writer has written back (deny protocol only; no ack needed).
	HomeUndeny(l topology.Line)
	// HomeFetch retrieves dirty data from the replica-side owner LLC:
	// the agent probes its LLC, writes the replica memory, and acks with the
	// data (the link crossing back to home is paid by the caller). If
	// invalidate is set the owner's copy is invalidated, otherwise it is
	// downgraded to Shared.
	HomeFetch(l topology.Line, invalidate bool, ack func())
	// Drain clears replica-directory state ahead of a protocol switch
	// (dynamic protocol, Section V-C5).
	Drain(done func())
}

// System wires together the cores, caches, directories, memory controllers
// and interconnect of the simulated machine.
//
// The system is partition-aware: Engs holds one engine per socket and Cnts
// one counter shard per socket. On the legacy single-queue engine every
// slot aliases the same object, so indexing by socket is free; under a
// sim.ParallelEngine (PE non-nil) the slots are distinct, every component
// schedules and counts strictly on its own socket's slot, and the only
// cross-socket channel is the Link's mailbox path.
type System struct {
	Engs []*sim.Engine
	// PE is the parallel engine that owns Engs as its partitions, or nil
	// when all Engs slots alias one serial engine.
	PE   *sim.ParallelEngine
	Cfg  *topology.Config
	AMap *topology.AddrMap
	Mesh *noc.Mesh
	Link *noc.Link

	MCs  []*mem.Controller
	LLCs []*LLC
	Dirs []*HomeDir

	// Replicas[s] is the replica agent at socket s (handling lines homed at
	// the other socket), or nil when the configuration has no coherent
	// replication.
	Replicas []ReplicaAgent

	// ReplicaMap, when non-nil, provides flexible (RMT) replica mapping:
	// pages without an entry fall back to a single copy. When nil, the
	// fixed-function mapping replicates the entire memory (Section III).
	ReplicaMap ReplicaMapper

	// Cnts[s] is socket s's counter shard; Counters() folds the shards
	// into the run-level view (a plain copy in the aliased legacy case).
	Cnts []*stats.Counters

	// DebugLine/DebugLog: when set, protocol steps touching DebugLine are
	// reported (test diagnostics only).
	DebugLine topology.Line
	DebugLog  func(format string, args ...any)

	// Classify enables Fig 7 sharing-pattern classification at the home
	// directories.
	Classify bool

	// RASEvent, when set, observes every recovery-path step (the RAS
	// journal of package ras subscribes here). Kinds are the Ev* constants.
	RASEvent func(kind string, socket int, l topology.Line)

	// Trace, when non-nil, is the telemetry sink every component of this
	// system reports into (wired by SetTracer). Probe sites nil-check it,
	// so the disabled path costs one branch.
	Trace *telemetry.Tracer

	// RepairFn, when set, is invoked whenever the recovery path writes
	// known-good data over a failed location (demand repair, scrub repair,
	// replica repair): the fault model clears transient faults covering
	// the address.
	RepairFn func(socket int, a topology.Addr)

	// RetireFn, when set, is consulted when a line keeps failing its
	// repair-verify re-read (the escalation ladder's last rung). It returns
	// true when the containing page was retired (the RMT remaps it); the
	// line is placed in the degraded state either way.
	RetireFn func(l topology.Line) bool

	// mcDead marks sockets whose memory controller was killed mid-run
	// (KillSocketMemory); lines whose replica lives on a dead socket are
	// demoted to unreplicated mode.
	mcDead  []bool
	anyDead bool

	l1s []*cache.Cache

	// accFree pools access-request records so the L1-miss path schedules
	// without per-request closure allocations (LIFO reuse: deterministic).
	// One pool per socket: a record is taken and recycled only by its own
	// socket's partition.
	accFree [][]*accessReq
}

// Partitioned reports whether the sockets run on separate engine
// partitions (in which case all scheduling and counting must stay
// socket-local and only the Link may cross).
func (s *System) Partitioned() bool { return s.PE != nil }

// Counters returns the run-level counter view: socket shards folded in
// ascending socket order (deterministic), or a copy of the single shared
// object in the legacy aliased case.
func (s *System) Counters() stats.Counters {
	if !s.Partitioned() {
		return *s.Cnts[0]
	}
	var out stats.Counters
	for _, c := range s.Cnts {
		out.Merge(c)
	}
	return out
}

// RAS event kinds reported through System.RASEvent, in escalation-ladder
// order. Package ras journals them; the strings are stable output format.
const (
	EvDetect     = "detect"      // local ECC check failed on a read
	EvRetry      = "retry"       // local re-read issued (ladder rung 1)
	EvRetryOK    = "retry-ok"    // error cleared on a local re-read
	EvRecover    = "recover"     // data recovered from the replica (rung 2)
	EvRepair     = "repair"      // repair write of recovered data (rung 3)
	EvRepairOK   = "repair-ok"   // verify re-read passed: location healed
	EvRepairFail = "repair-fail" // verify re-read still failing
	EvRetire     = "retire"      // page retired via the RMT (rung 4)
	EvDegraded   = "degraded"    // line demoted to single-copy service
	EvDUE        = "due"         // detected-uncorrectable: no copy readable
	EvSocketKill = "socket-kill" // memory controller lost
	EvDemote     = "demote"      // lines lost their replica to a kill
	EvDrained    = "drained"     // dead socket's replica directory drained
)

// rasEvent reports a recovery-path step to the attached observer, if any,
// and mirrors it into the telemetry timeline/flight recorder.
func (s *System) rasEvent(kind string, socket int, l topology.Line) {
	if s.RASEvent != nil {
		s.RASEvent(kind, socket, l)
	}
	if s.Trace != nil {
		s.Trace.Point(telemetry.CompRAS, socket, kind, uint64(l))
	}
}

// repairAt notifies the fault model that known-good data was written over
// the address (clearing transient faults).
func (s *System) repairAt(socket int, a topology.Addr) {
	if s.RepairFn != nil {
		s.RepairFn(socket, a)
	}
}

// RASNote is rasEvent for sibling packages: the Dvé replica directory
// reports its own recovery-path steps through it.
func (s *System) RASNote(kind string, socket int, l topology.Line) {
	s.rasEvent(kind, socket, l)
}

// RepairNote is repairAt for sibling packages.
func (s *System) RepairNote(socket int, a topology.Addr) {
	s.repairAt(socket, a)
}

// New builds a system on the legacy single-queue engine: every Engs/Cnts
// slot aliases one engine and one counter object. Replica agents are
// attached afterwards (SetReplicaAgent) to keep this package independent
// of the Dvé implementation.
func New(cfg *topology.Config) (*System, error) {
	eng := sim.NewEngine()
	engs := make([]*sim.Engine, cfg.Sockets)
	for i := range engs {
		engs[i] = eng
	}
	cnt := &stats.Counters{}
	cnts := make([]*stats.Counters, cfg.Sockets)
	for i := range cnts {
		cnts[i] = cnt
	}
	return build(cfg, engs, cnts, nil)
}

// NewPartitioned builds a system whose sockets run on the partitions of
// pe: Engs[s] is partition s, Cnts[s] a distinct per-socket shard, and the
// inter-socket link crosses partitions through pe's mailbox. pe must have
// one partition per socket and a lookahead window no larger than the
// link's minimum latency.
func NewPartitioned(cfg *topology.Config, pe *sim.ParallelEngine) (*System, error) {
	if pe.Parts() != cfg.Sockets {
		return nil, fmt.Errorf("coherence: %d engine partitions for %d sockets", pe.Parts(), cfg.Sockets)
	}
	engs := make([]*sim.Engine, cfg.Sockets)
	cnts := make([]*stats.Counters, cfg.Sockets)
	for i := range engs {
		engs[i] = pe.Part(i)
		cnts[i] = &stats.Counters{}
	}
	s, err := build(cfg, engs, cnts, pe)
	if err != nil {
		return nil, err
	}
	if w := s.Link.MinLatency(); pe.Window() > w {
		return nil, fmt.Errorf("coherence: lookahead window %d exceeds link minimum latency %d", pe.Window(), w)
	}
	return s, nil
}

func build(cfg *topology.Config, engs []*sim.Engine, cnts []*stats.Counters, pe *sim.ParallelEngine) (*System, error) {
	amap := topology.NewAddrMap(cfg)
	link, err := noc.NewLink([2]*sim.Engine{engs[0], engs[cfg.Sockets-1]}, pe, sim.Cycle(cfg.InterSocketCyc()))
	if err != nil {
		return nil, err
	}
	s := &System{
		Engs: engs,
		PE:   pe,
		Cfg:  cfg,
		AMap: amap,
		Mesh: noc.NewMesh(cfg.MeshRows, cfg.MeshCols, cfg.MeshHopCyc),
		Link: link,
		Cnts: cnts,
	}
	for _, c := range s.Cnts {
		c.DRAMChannels = cfg.ChannelsPerSkt * cfg.Sockets
	}
	s.Replicas = make([]ReplicaAgent, cfg.Sockets)
	s.mcDead = make([]bool, cfg.Sockets)
	s.accFree = make([][]*accessReq, cfg.Sockets)
	for sk := 0; sk < cfg.Sockets; sk++ {
		mc := mem.NewController(s.Engs[sk], cfg, amap, sk)
		if cfg.Protocol == topology.ProtoIntelMirror {
			mc.Mirror = true
		}
		mc.EnableRefresh()
		s.MCs = append(s.MCs, mc)
		s.Dirs = append(s.Dirs, newHomeDir(s, sk))
		s.LLCs = append(s.LLCs, newLLC(s, sk))
	}
	for c := 0; c < cfg.TotalCores(); c++ {
		s.l1s = append(s.l1s, cache.New(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineSizeBytes))
	}
	return s, nil
}

// SetReplicaAgent attaches the replica agent for a socket.
func (s *System) SetReplicaAgent(socket int, a ReplicaAgent) { s.Replicas[socket] = a }

// SetTracer wires a telemetry tracer through every component of the
// system: the engine's dispatch hook, the inter-socket link, the memory
// controllers, and the home-directory sequencers. Call it right after New
// (before replica agents attach — dve's directories pick the tracer up
// from here). A nil tracer is a no-op, keeping the call unconditional in
// runners.
func (s *System) SetTracer(t *telemetry.Tracer) {
	if t == nil {
		return
	}
	// A tracer binds one engine and one timeline, so tracing is a
	// single-engine (legacy) feature; partitioned runs fall back to the
	// legacy engine before attaching one.
	s.Trace = t
	t.Attach(s.Engs[0])
	s.Engs[0].OnDispatch = t.EngineDispatch
	s.Link.Trace = t
	for sk, mc := range s.MCs {
		mc.Trace = t
		s.Dirs[sk].seqq.Trace = t
		s.Dirs[sk].seqq.Comp = telemetry.CompHomeDir
		s.Dirs[sk].seqq.Socket = sk
	}
}

// ReplicaAddrOf returns the replica address of a line and whether one
// exists under the active mapping. Lines whose replica lives on a killed
// memory controller report no replica: they have been demoted to
// unreplicated mode (graceful degradation).
func (s *System) ReplicaAddrOf(l topology.Line) (topology.Addr, bool) {
	ra, ok := s.RawReplicaAddr(l)
	if !ok {
		return 0, false
	}
	if s.anyDead && s.mcDead[s.AMap.HomeSocket(ra)] {
		return 0, false
	}
	return ra, true
}

// RawReplicaAddr returns the replica address under the active mapping,
// ignoring kill-driven demotion. In-flight replica-directory transactions
// use it so they can complete against a dead controller (whose reads fail
// and writes are dropped) instead of panicking on a vanished mapping.
func (s *System) RawReplicaAddr(l topology.Line) (topology.Addr, bool) {
	if !s.Cfg.Replicated() {
		return 0, false
	}
	if s.ReplicaMap != nil {
		return s.ReplicaMap.ReplicaAddr(topology.Addr(l))
	}
	return s.AMap.ReplicaAddr(topology.Addr(l)), true
}

// KillSocketMemory models the on-demand loss of one socket's memory
// controller mid-run (Section V-B2's worst case, Section V-D's on-demand
// disable). Effects, all without stopping the run:
//
//   - every read of the dead controller fails and every write is dropped;
//   - lines whose replica lived on the dead socket are demoted to
//     unreplicated mode (single copy, no dual writebacks, no deny pushes);
//   - lines homed on the dead socket degrade per line through the normal
//     escalation ladder and are then served from the surviving replica;
//   - the dead socket's replica directory is drained so in-flight
//     transactions complete and no new replica reads hit dead memory.
//
// done, if non-nil, fires once the drain completes.
func (s *System) KillSocketMemory(socket int, done func()) {
	if s.mcDead[socket] {
		if done != nil {
			s.Engs[socket].Schedule(0, done)
		}
		return
	}
	s.MCs[socket].Kill()
	s.Cnts[socket].SocketKills++
	s.rasEvent(EvSocketKill, socket, 0)

	// Count the demotions before flipping the flag so RawReplicaAddr and
	// the pre-kill mapping agree.
	demoted := uint64(0)
	for _, d := range s.Dirs {
		for _, l := range d.lineOrder {
			if ra, ok := s.RawReplicaAddr(l); ok && s.AMap.HomeSocket(ra) == socket {
				demoted++
			}
		}
	}
	s.mcDead[socket] = true
	s.anyDead = true
	if demoted > 0 {
		s.Cnts[socket].DemotedLines += demoted
		s.rasEvent(EvDemote, socket, 0)
	}

	if a := s.Replicas[socket]; a != nil {
		a.Drain(func() {
			s.rasEvent(EvDrained, socket, 0)
			if done != nil {
				done()
			}
		})
		return
	}
	if done != nil {
		s.Engs[socket].Schedule(0, done)
	}
}

// HasReplica reports whether the line is replicated.
func (s *System) HasReplica(l topology.Line) bool {
	_, ok := s.ReplicaAddrOf(l)
	return ok
}

// SocketOf returns the socket a core belongs to.
func (s *System) SocketOf(core int) int { return core / s.Cfg.CoresPerSocket }

// coreLatency returns the mesh latency from a core's tile to its socket's
// LLC/home tile.
func (s *System) coreLatency(core int) sim.Cycle {
	local := core % s.Cfg.CoresPerSocket
	return s.Mesh.Latency(s.Mesh.CoreTile(local), s.Mesh.HomeTile())
}

// accessReq carries one L1-miss request through the event queue. The record
// (and its grant callback) is pooled on the System, so the miss path costs
// no per-request closure allocations.
type accessReq struct {
	s      *System
	core   int
	socket int
	write  bool
	line   topology.Line
	done   func()
	// grant is built once per record; it captures only the record itself.
	grant func()
}

func (s *System) getAccessReq(socket int) *accessReq {
	pool := s.accFree[socket]
	if n := len(pool); n > 0 {
		ar := pool[n-1]
		s.accFree[socket] = pool[:n-1]
		return ar
	}
	ar := &accessReq{s: s, socket: socket}
	ar.grant = func() {
		// The L1 fill was applied at grant time (inside Request, so no
		// probe can slip between the LLC grant and the L1 bookkeeping);
		// only the return trip to the core remains. Copy the fields out
		// before recycling: the record may be reissued before done fires.
		sys, core, done := ar.s, ar.core, ar.done
		ar.done = nil
		sys.accFree[ar.socket] = append(sys.accFree[ar.socket], ar)
		sys.Engs[ar.socket].Schedule(sys.coreLatency(core), done)
	}
	return ar
}

// accessDispatch forwards a pooled access request to the requester's LLC.
func accessDispatch(arg any, _ uint64) {
	ar := arg.(*accessReq)
	s := ar.s
	s.LLCs[s.SocketOf(ar.core)].Request(ar.core, ar.write, ar.line, ar.grant)
}

// Access issues a memory operation from a core and invokes done when it
// completes. Reads complete when data reaches the core; writes complete when
// write permission is held (stores retire into the L1).
func (s *System) Access(core int, write bool, a topology.Addr, done func()) {
	sk := s.SocketOf(core)
	cnt := s.Cnts[sk]
	if write {
		cnt.Writes++
	} else {
		cnt.Reads++
	}
	line := s.AMap.LineOf(a)
	l1 := s.l1s[core]
	e := l1.Lookup(line)
	hit := e != nil && (e.State.Readable() && !write || e.State.Writable())
	if hit {
		cnt.L1Hits++
		if write {
			e.Dirty = true
		}
		s.Engs[sk].Schedule(sim.Cycle(s.Cfg.L1LatencyCyc), done)
		return
	}
	cnt.L1Misses++
	lat := sim.Cycle(s.Cfg.L1LatencyCyc) + s.coreLatency(core)
	ar := s.getAccessReq(sk)
	ar.core, ar.write, ar.line, ar.done = core, write, line, done
	s.Engs[sk].ScheduleFn(lat, accessDispatch, ar, 0)
}

// l1Fill installs a line into a core's L1 after an LLC grant, updating the
// local directory bits and handling the L1 victim.
func (s *System) l1Fill(core int, line topology.Line, write bool) {
	l1 := s.l1s[core]
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	e, victim, evicted := l1.Insert(line, st)
	e.Dirty = write
	if evicted {
		s.llcAbsorbL1Victim(core, victim)
	}
	s.LLCs[s.SocketOf(core)].noteL1Fill(core, line, write)
}

// llcAbsorbL1Victim handles an L1 eviction: dirty data merges into the LLC
// copy; the local directory sharer bit is cleared.
func (s *System) llcAbsorbL1Victim(core int, victim cache.Entry) {
	llc := s.LLCs[s.SocketOf(core)]
	if le := llc.store.Peek(victim.Line); le != nil {
		if victim.Dirty {
			le.Dirty = true
		}
		lc := core % s.Cfg.CoresPerSocket
		le.Sharers &^= 1 << uint(lc)
		if le.Owner == int8(lc) {
			le.Owner = -1
		}
	}
}

// probeL1 invalidates (or downgrades) a core's L1 copy, returning whether the
// copy was dirty. State changes are immediate; the caller accounts latency.
func (s *System) probeL1(core int, line topology.Line, invalidate bool) (dirty bool) {
	l1 := s.l1s[core]
	e := l1.Peek(line)
	if e == nil {
		return false
	}
	dirty = e.Dirty
	if invalidate {
		l1.Invalidate(line)
	} else if e.State == cache.Modified {
		e.State = cache.Shared
	}
	return dirty
}

// sendToHome delivers fn at the home directory of the line, paying the link
// if the requester's socket differs from the home socket.
func (s *System) sendToHome(fromSocket int, l topology.Line, bytes int, fn func()) {
	home := s.AMap.HomeSocketLine(l)
	if fromSocket == home {
		s.Engs[home].Schedule(0, fn)
		return
	}
	s.Link.Send(fromSocket, bytes, fn)
}

// replyFromHome delivers fn at the requester, paying the link if needed.
func (s *System) replyFromHome(l topology.Line, toSocket int, bytes int, fn func()) {
	home := s.AMap.HomeSocketLine(l)
	if toSocket == home {
		s.Engs[home].Schedule(0, fn)
		return
	}
	s.Link.Send(home, bytes, fn)
}

// Drain runs the engine(s) until all queued demanded events complete.
func (s *System) Drain() {
	if s.PE != nil {
		s.PE.Run()
		return
	}
	s.Engs[0].Run()
}
