// Package coherence implements the two-level hierarchical directory protocol
// of the simulated machine (Table II): per-core private L1s kept coherent by
// a local directory embedded in each socket's inclusive LLC, and a global
// home directory per socket (MOSI, socket-grain sharer vector) adjoining the
// memory controller.
//
// The package exposes the extension points Dvé needs: requests from a socket
// to remotely-homed lines can be routed through a ReplicaAgent (the Dvé
// replica directory, package dve) instead of crossing the inter-socket link,
// and the home directory invokes the agent for invalidations, deny pushes,
// and dirty-data fetches.
package coherence

import (
	"dve/internal/cache"
	"dve/internal/mem"
	"dve/internal/noc"
	"dve/internal/sim"
	"dve/internal/stats"
	"dve/internal/topology"
)

// ReplicaMapper translates an address to its replica address; ok=false
// means the address is not replicated (the flexible table-based mapping of
// Section V-D).
type ReplicaMapper interface {
	ReplicaAddr(a topology.Addr) (topology.Addr, bool)
}

// ReplicaAgent is the interface the home directory and LLCs use to interact
// with a Dvé replica directory located on a socket. All methods are invoked
// at the agent's socket; any link crossing to reach the agent has already
// been paid by the caller.
type ReplicaAgent interface {
	// LocalGETS handles a read request from this socket's LLC for a line
	// homed on the other socket. done fires when data is available at the
	// LLC; fromReplica reports whether the local replica supplied it.
	LocalGETS(l topology.Line, needData bool, done func(fromReplica bool))
	// LocalGETX handles a write (exclusive) request from this socket's LLC.
	LocalGETX(l topology.Line, needData bool, done func())
	// LocalPUTM handles a dirty writeback from this socket's LLC: the data
	// must reach both the replica memory and the home memory synchronously.
	LocalPUTM(l topology.Line, done func())
	// HomeInvalidate is pushed by the home directory when a home-side agent
	// acquires exclusive access (allow protocol: INV; deny protocol: DENY,
	// which installs the RM state). The agent invalidates any replica-side
	// LLC copies and acks.
	HomeInvalidate(l topology.Line, ack func())
	// HomeUndeny clears a previously pushed deny (RM) after the home-side
	// writer has written back (deny protocol only; no ack needed).
	HomeUndeny(l topology.Line)
	// HomeFetch retrieves dirty data from the replica-side owner LLC:
	// the agent probes its LLC, writes the replica memory, and acks with the
	// data (the link crossing back to home is paid by the caller). If
	// invalidate is set the owner's copy is invalidated, otherwise it is
	// downgraded to Shared.
	HomeFetch(l topology.Line, invalidate bool, ack func())
	// Drain clears replica-directory state ahead of a protocol switch
	// (dynamic protocol, Section V-C5).
	Drain(done func())
}

// System wires together the cores, caches, directories, memory controllers
// and interconnect of the simulated machine.
type System struct {
	Eng  *sim.Engine
	Cfg  *topology.Config
	AMap *topology.AddrMap
	Mesh *noc.Mesh
	Link *noc.Link

	MCs  []*mem.Controller
	LLCs []*LLC
	Dirs []*HomeDir

	// Replicas[s] is the replica agent at socket s (handling lines homed at
	// the other socket), or nil when the configuration has no coherent
	// replication.
	Replicas []ReplicaAgent

	// ReplicaMap, when non-nil, provides flexible (RMT) replica mapping:
	// pages without an entry fall back to a single copy. When nil, the
	// fixed-function mapping replicates the entire memory (Section III).
	ReplicaMap ReplicaMapper

	Cnt *stats.Counters

	// DebugLine/DebugLog: when set, protocol steps touching DebugLine are
	// reported (test diagnostics only).
	DebugLine topology.Line
	DebugLog  func(format string, args ...any)

	// Classify enables Fig 7 sharing-pattern classification at the home
	// directories.
	Classify bool

	l1s []*cache.Cache
}

// New builds a system for the configuration. Replica agents are attached
// afterwards (SetReplicaAgent) to keep this package independent of the Dvé
// implementation.
func New(cfg *topology.Config) *System {
	eng := sim.NewEngine()
	amap := topology.NewAddrMap(cfg)
	s := &System{
		Eng:  eng,
		Cfg:  cfg,
		AMap: amap,
		Mesh: noc.NewMesh(cfg.MeshRows, cfg.MeshCols, cfg.MeshHopCyc),
		Link: noc.NewLink(eng, sim.Cycle(cfg.InterSocketCyc())),
		Cnt:  &stats.Counters{},
	}
	s.Cnt.DRAMChannels = cfg.ChannelsPerSkt * cfg.Sockets
	s.Replicas = make([]ReplicaAgent, cfg.Sockets)
	for sk := 0; sk < cfg.Sockets; sk++ {
		mc := mem.NewController(eng, cfg, amap, sk)
		if cfg.Protocol == topology.ProtoIntelMirror {
			mc.Mirror = true
		}
		mc.EnableRefresh()
		s.MCs = append(s.MCs, mc)
		s.Dirs = append(s.Dirs, newHomeDir(s, sk))
		s.LLCs = append(s.LLCs, newLLC(s, sk))
	}
	for c := 0; c < cfg.TotalCores(); c++ {
		s.l1s = append(s.l1s, cache.New(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineSizeBytes))
	}
	return s
}

// SetReplicaAgent attaches the replica agent for a socket.
func (s *System) SetReplicaAgent(socket int, a ReplicaAgent) { s.Replicas[socket] = a }

// ReplicaAddrOf returns the replica address of a line and whether one
// exists under the active mapping.
func (s *System) ReplicaAddrOf(l topology.Line) (topology.Addr, bool) {
	if !s.Cfg.Replicated() {
		return 0, false
	}
	if s.ReplicaMap != nil {
		return s.ReplicaMap.ReplicaAddr(topology.Addr(l))
	}
	return s.AMap.ReplicaAddr(topology.Addr(l)), true
}

// HasReplica reports whether the line is replicated.
func (s *System) HasReplica(l topology.Line) bool {
	_, ok := s.ReplicaAddrOf(l)
	return ok
}

// SocketOf returns the socket a core belongs to.
func (s *System) SocketOf(core int) int { return core / s.Cfg.CoresPerSocket }

// coreLatency returns the mesh latency from a core's tile to its socket's
// LLC/home tile.
func (s *System) coreLatency(core int) sim.Cycle {
	local := core % s.Cfg.CoresPerSocket
	return s.Mesh.Latency(s.Mesh.CoreTile(local), s.Mesh.HomeTile())
}

// Access issues a memory operation from a core and invokes done when it
// completes. Reads complete when data reaches the core; writes complete when
// write permission is held (stores retire into the L1).
func (s *System) Access(core int, write bool, a topology.Addr, done func()) {
	if write {
		s.Cnt.Writes++
	} else {
		s.Cnt.Reads++
	}
	line := s.AMap.LineOf(a)
	l1 := s.l1s[core]
	e := l1.Lookup(line)
	hit := e != nil && (e.State.Readable() && !write || e.State.Writable())
	if hit {
		s.Cnt.L1Hits++
		if write {
			e.Dirty = true
		}
		s.Eng.Schedule(sim.Cycle(s.Cfg.L1LatencyCyc), done)
		return
	}
	s.Cnt.L1Misses++
	lat := sim.Cycle(s.Cfg.L1LatencyCyc) + s.coreLatency(core)
	s.Eng.Schedule(lat, func() {
		s.LLCs[s.SocketOf(core)].Request(core, write, line, func() {
			// Fill the L1 and complete after the return trip.
			s.l1Fill(core, line, write)
			s.Eng.Schedule(s.coreLatency(core), done)
		})
	})
}

// l1Fill installs a line into a core's L1 after an LLC grant, updating the
// local directory bits and handling the L1 victim.
func (s *System) l1Fill(core int, line topology.Line, write bool) {
	l1 := s.l1s[core]
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	e, victim, evicted := l1.Insert(line, st)
	e.Dirty = write
	if evicted {
		s.llcAbsorbL1Victim(core, victim)
	}
	s.LLCs[s.SocketOf(core)].noteL1Fill(core, line, write)
}

// llcAbsorbL1Victim handles an L1 eviction: dirty data merges into the LLC
// copy; the local directory sharer bit is cleared.
func (s *System) llcAbsorbL1Victim(core int, victim cache.Entry) {
	llc := s.LLCs[s.SocketOf(core)]
	if le := llc.store.Peek(victim.Line); le != nil {
		if victim.Dirty {
			le.Dirty = true
		}
		lc := core % s.Cfg.CoresPerSocket
		le.Sharers &^= 1 << uint(lc)
		if le.Owner == int8(lc) {
			le.Owner = -1
		}
	}
}

// probeL1 invalidates (or downgrades) a core's L1 copy, returning whether the
// copy was dirty. State changes are immediate; the caller accounts latency.
func (s *System) probeL1(core int, line topology.Line, invalidate bool) (dirty bool) {
	l1 := s.l1s[core]
	e := l1.Peek(line)
	if e == nil {
		return false
	}
	dirty = e.Dirty
	if invalidate {
		l1.Invalidate(line)
	} else if e.State == cache.Modified {
		e.State = cache.Shared
	}
	return dirty
}

// sendToHome delivers fn at the home directory of the line, paying the link
// if the requester's socket differs from the home socket.
func (s *System) sendToHome(fromSocket int, l topology.Line, bytes int, fn func()) {
	home := s.AMap.HomeSocketLine(l)
	if fromSocket == home {
		s.Eng.Schedule(0, fn)
		return
	}
	s.Link.Send(fromSocket, bytes, fn)
}

// replyFromHome delivers fn at the requester, paying the link if needed.
func (s *System) replyFromHome(l topology.Line, toSocket int, bytes int, fn func()) {
	home := s.AMap.HomeSocketLine(l)
	if toSocket == home {
		s.Eng.Schedule(0, fn)
		return
	}
	s.Link.Send(home, bytes, fn)
}

// Drain runs the engine until all queued events complete.
func (s *System) Drain() { s.Eng.Run() }
