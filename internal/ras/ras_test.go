package ras

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"dve/internal/coherence"
	"dve/internal/dve"
	"dve/internal/fault"
	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// containsOrdered reports whether the journal holds the given kinds for the
// line as an ordered subsequence (other events may interleave).
func containsOrdered(j *Journal, line uint64, kinds []string) bool {
	i := 0
	for _, ev := range j.Events {
		if ev.Line == line && ev.Kind == kinds[i] {
			i++
			if i == len(kinds) {
				return true
			}
		}
	}
	return false
}

// TestTransientRepairEndToEnd plants a transient chip fault (every line of
// socket 0 channel 0 fails its ECC check until a repair write lands) and
// checks the full escalation ladder end to end: the first failing read is
// detected, both local re-reads fail, the data is recovered from the
// replica, and the repair write clears the fault so the verify re-read
// passes — with the journal and the stats counters in exact agreement.
func TestTransientRepairEndToEnd(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	spec, ok := workload.ByName("fft", cfg.TotalCores())
	if !ok {
		t.Fatal("workload fft not found")
	}
	spec.Seed = 1

	set := fault.NewSet(&cfg, fault.CodeTSD)
	eng := NewEngine(EngineConfig{
		Static: []fault.Fault{
			{Kind: fault.Chip, Socket: 0, Channel: 0, Chip: 3, Transient: true},
		},
		KillSocket: -1,
	}, set)

	res, err := dve.Run(spec, dve.RunConfig{
		Cfg:        cfg,
		MeasureOps: 6_000,
		Faults:     set,
		Prepare:    eng.Attach,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.InvariantViolations) != 0 {
		t.Fatalf("coherence invariants violated: %v", res.InvariantViolations)
	}
	c := &res.Counters
	if c.SilentCorruptions != 0 {
		t.Fatalf("silent corruptions: %d", c.SilentCorruptions)
	}
	if c.DetectedUncorrect != 0 {
		t.Fatalf("DUEs in a fully recoverable scenario: %d", c.DetectedUncorrect)
	}
	j := &eng.Journal
	if j.Count(coherence.EvDetect) == 0 {
		t.Fatal("transient chip fault was never detected")
	}

	// A verified home-side repair must show the whole ladder in order for
	// its line. (Replica-copy recoveries journal a shorter detect → recover
	// → repair sequence — the home divert is itself the retry — so anchor
	// on the first repair-ok, which only the home ladder emits.)
	ri := j.FirstIndex(coherence.EvRepairOK)
	if ri < 0 {
		t.Fatal("no verified repair journaled")
	}
	line := j.Events[ri].Line
	want := []string{
		coherence.EvDetect, coherence.EvRetry, coherence.EvRetry,
		coherence.EvRecover, coherence.EvRepair, coherence.EvRepairOK,
	}
	if !containsOrdered(j, line, want) {
		t.Fatalf("line %#x missing ordered ladder %v in journal", line, want)
	}

	// Journal and counters must agree event for event.
	checks := []struct {
		kind string
		cnt  uint64
	}{
		{coherence.EvRetry, c.RetriedReads},
		{coherence.EvRetryOK, c.RetrySuccesses},
		{coherence.EvRecover, c.Recoveries},
		{coherence.EvRepair, c.RepairWrites},
		{coherence.EvRepairFail, c.RepairVerifyFails},
		{coherence.EvRetire, c.PagesRetired},
		{coherence.EvDUE, c.DetectedUncorrect},
	}
	for _, ck := range checks {
		if got := j.Count(ck.kind); uint64(got) != ck.cnt {
			t.Errorf("journal %q count %d != counter %d", ck.kind, got, ck.cnt)
		}
	}

	// The repair write must actually have cleared the transient fault.
	if n := set.Active(); n != 0 {
		t.Errorf("transient fault still active after repair: %d faults", n)
	}
}

// TestCampaignDeterminism runs the same scenario × seed twice with the
// dynamic injector armed and demands byte-identical journals and identical
// counters: the whole run must be a pure function of (scenario, seed).
func TestCampaignDeterminism(t *testing.T) {
	sc := Scenario{
		Name: "determinism", Workload: "fft", Protocol: topology.ProtoDeny,
		Inject: &InjectorConfig{
			MeanArrivalCyc: 1_500, MaxFaults: 30,
			Kinds:            []fault.Kind{fault.Cell, fault.Row},
			TransientLifeCyc: 20_000, IntermittentLifeCyc: 30_000,
			DutyPct: 40, HardenPct: 50,
		},
		ScrubIntervalCyc: 2_000, ScrubBatch: 8,
		AllowDUE: true, // coincident two-copy failures are possible
	}
	run := func() RunReport {
		res, err := RunCampaign(CampaignConfig{
			Seeds: []int64{7}, MeasureOps: 8_000, Scenarios: []Scenario{sc},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures != 0 {
			t.Fatalf("campaign failed: %v", res.Runs[0].Violations)
		}
		return res.Runs[0]
	}
	a, b := run(), run()

	ab, err := a.Journal.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Journal.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Errorf("same seed produced different journals (%d vs %d events)",
			a.Journal.Len(), b.Journal.Len())
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Errorf("same seed produced different counters:\n%+v\nvs\n%+v",
			a.Counters, b.Counters)
	}
	if a.Journal.Count(EvInject) == 0 {
		t.Error("dynamic injector never fired — determinism test exercised nothing")
	}
}

// TestCampaignSocketKillDegrades kills socket 1's memory controller mid-run
// and checks the graceful-degradation contract: the run finishes its ROI,
// affected lines demote to unreplicated mode, and no data is lost (the
// surviving copies are intact, so not even a DUE is permitted).
func TestCampaignSocketKillDegrades(t *testing.T) {
	sc := Scenario{
		Name: "kill", Workload: "fft", Protocol: topology.ProtoDeny,
		KillSocket: 1, KillAtCyc: 4_000,
	}
	res, err := RunCampaign(CampaignConfig{
		Seeds: []int64{1}, MeasureOps: 8_000, Scenarios: []Scenario{sc},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Runs[0]
	if !rep.OK() {
		t.Fatalf("socket-kill run failed assertions: %v", rep.Violations)
	}
	c := &rep.Counters
	if c.SocketKills == 0 {
		t.Fatal("kill never fired")
	}
	if c.DemotedLines == 0 {
		t.Fatal("no lines demoted to unreplicated mode")
	}
	if rep.Cycles == 0 {
		t.Fatal("ROI did not complete after the kill")
	}
	if got := rep.Journal.Count(coherence.EvSocketKill); got == 0 {
		t.Error("socket kill not journaled")
	}
	// Demotion is journaled once per kill (the per-line total lives in the
	// DemotedLines counter).
	if got := rep.Journal.Count(coherence.EvDemote); got == 0 {
		t.Error("demotion to unreplicated mode not journaled")
	}
}

// TestInjectorLifecycle forces every arrival to harden (HardenPct 100) and
// checks the injector walks the transient → intermittent → hard lifecycle,
// with its own counters matching the journal.
func TestInjectorLifecycle(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	spec, _ := workload.ByName("fft", cfg.TotalCores())
	spec.Seed = 3

	set := fault.NewSet(&cfg, fault.CodeTSD)
	eng := NewEngine(EngineConfig{
		Inject: &InjectorConfig{
			Seed: 42, MeanArrivalCyc: 1_000, MaxFaults: 10,
			Kinds:            []fault.Kind{fault.Cell},
			TransientLifeCyc: 3_000, IntermittentLifeCyc: 4_000,
			DutyPct: 50, HardenPct: 100,
		},
		KillSocket: -1,
	}, set)

	if _, err := dve.Run(spec, dve.RunConfig{
		Cfg: cfg, MeasureOps: 8_000, Faults: set, Prepare: eng.Attach,
	}); err != nil {
		t.Fatal(err)
	}

	inj := eng.Inj
	j := &eng.Journal
	if inj.Injected == 0 {
		t.Fatal("injector never injected")
	}
	if inj.Escalated == 0 || inj.Hardened == 0 {
		t.Fatalf("HardenPct=100 run escalated %d / hardened %d faults",
			inj.Escalated, inj.Hardened)
	}
	for _, ck := range []struct {
		kind string
		n    int
	}{
		{EvInject, inj.Injected},
		{EvEscalate, inj.Escalated},
		{EvHarden, inj.Hardened},
		{EvExpire, inj.Expired},
	} {
		if got := j.Count(ck.kind); got != ck.n {
			t.Errorf("journal %q count %d != injector counter %d", ck.kind, got, ck.n)
		}
	}
}

// TestCampaignCacheRoundTrip runs the same small campaign twice against one
// cache: the second pass must be served entirely from disk and reproduce
// the first pass exactly, including rewriting the journal files on hits.
func TestCampaignCacheRoundTrip(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name: "cached", Workload: "fft", Protocol: topology.ProtoDeny,
		Inject: &InjectorConfig{
			MeanArrivalCyc: 2_000, MaxFaults: 10,
			Kinds:            []fault.Kind{fault.Cell},
			TransientLifeCyc: 20_000, HardenPct: 0,
		},
		ScrubIntervalCyc: 2_000, ScrubBatch: 8,
	}
	run := func(outDir string) *CampaignResult {
		res, err := RunCampaign(CampaignConfig{
			Seeds: []int64{1, 2}, MeasureOps: 6_000,
			Scenarios: []Scenario{sc}, OutDir: outDir, Cache: store,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	outA, outB := t.TempDir(), t.TempDir()
	a := run(outA)
	if s := store.Stats(); s.Hits != 0 || s.Puts != 2 {
		t.Fatalf("cold campaign stats %v, want 2 puts and no hits", s)
	}
	b := run(outB)
	if s := store.Stats(); s.Hits != 2 {
		t.Fatalf("warm campaign stats %v, want 2 hits", s)
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if !reflect.DeepEqual(ra.Counters, rb.Counters) || ra.Cycles != rb.Cycles {
			t.Fatalf("cached run %d differs from simulated run", i)
		}
		ja, err := os.ReadFile(ra.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := os.ReadFile(rb.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("journal file of cached run %d differs", i)
		}
	}
}
