package ras

import (
	"bytes"
	"reflect"
	"testing"

	"dve/internal/dve"
	"dve/internal/topology"
	"dve/internal/workload"
)

func hammerScenario(name string, proto topology.Protocol, intensity float64, scrub uint64) Scenario {
	return Scenario{
		Name:             name,
		Workload:         "fft",
		Protocol:         proto,
		AllowDUE:         intensity > 0,
		ScrubIntervalCyc: scrub,
		ScrubBatch:       16,
		Hammer:           &HammerScenario{Intensity: intensity},
	}
}

func runHammerCell(t *testing.T, sc Scenario) RunReport {
	t.Helper()
	res, err := RunCampaign(CampaignConfig{
		Seeds:      []int64{7},
		MeasureOps: 50_000,
		Scenarios:  []Scenario{sc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(res.Runs))
	}
	return res.Runs[0]
}

// TestHammerCampaignAttacksAndDefends is the end-to-end loop closure: an
// aggressor campaign against the unreplicated baseline serves corrupted
// reads, while the same attack against the deny protocol with patrol
// scrubbing is detected and repaired, serving strictly fewer corrupted
// reads.
func TestHammerCampaignAttacksAndDefends(t *testing.T) {
	unrep := runHammerCell(t, hammerScenario("hammer-unrep", topology.ProtoBaseline, 0.4, 2_000))
	deny := runHammerCell(t, hammerScenario("hammer-deny", topology.ProtoDeny, 0.4, 2_000))

	for _, rep := range []RunReport{unrep, deny} {
		c := rep.Counters
		t.Logf("%s: crossings=%d flips=%d detected=%d latency=%d corrupt=%d repairs=%d DUE=%d SDC=%d violations=%v",
			rep.Scenario, c.HammerCrossings, c.HammerFlips, c.HammerDetected,
			c.HammerDetectLatency, c.HammerCorruptReads, c.HammerRepairs,
			c.DetectedUncorrect, c.SilentCorruptions, rep.Violations)
		if !rep.OK() {
			t.Errorf("%s: violations: %v", rep.Scenario, rep.Violations)
		}
		if c.HammerCrossings == 0 {
			t.Errorf("%s: attack never crossed the activation threshold", rep.Scenario)
		}
		if c.HammerFlips == 0 {
			t.Errorf("%s: crossings injected no bitflips", rep.Scenario)
		}
		if c.HammerDetected == 0 {
			t.Errorf("%s: no flip was ever detected", rep.Scenario)
		}
		if c.HammerDetected > 0 && c.HammerDetectLatency == 0 {
			t.Errorf("%s: detections recorded but zero aggregate latency", rep.Scenario)
		}
		if n := rep.Journal.Count(EvHammerFlip); uint64(n) != c.HammerFlips {
			t.Errorf("%s: journal has %d %s events, counters say %d",
				rep.Scenario, n, EvHammerFlip, c.HammerFlips)
		}
	}

	// The unreplicated machine has no second copy: detection turns straight
	// into corrupted reads served (DUEs). Replication + scrubbing must
	// repair flips and serve strictly fewer corrupted reads.
	if unrep.Counters.HammerCorruptReads == 0 {
		t.Error("unreplicated run served no corrupted reads — the attack did no measurable harm")
	}
	if deny.Counters.HammerRepairs == 0 {
		t.Error("deny run repaired no hammered lines")
	}
	if deny.Counters.HammerCorruptReads >= unrep.Counters.HammerCorruptReads {
		t.Errorf("replication did not reduce corrupted reads: deny %d >= unreplicated %d",
			deny.Counters.HammerCorruptReads, unrep.Counters.HammerCorruptReads)
	}
}

// TestHammerCampaignDeterminism pins the determinism contract the CI smoke
// leg diffs for: the same hammer cell run twice yields byte-identical
// journals and identical counters.
func TestHammerCampaignDeterminism(t *testing.T) {
	sc := hammerScenario("hammer-det", topology.ProtoDeny, 0.4, 2_000)
	first := runHammerCell(t, sc)
	second := runHammerCell(t, sc)
	b1, err := first.Journal.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := second.Journal.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("hammer journals differ across identical runs")
	}
	if !reflect.DeepEqual(first.Counters, second.Counters) {
		t.Errorf("hammer counters differ across identical runs:\nfirst:  %+v\nsecond: %+v",
			first.Counters, second.Counters)
	}
}

// TestHammerZeroIntensityByteIdentical pins the disarm contract: a scenario
// carrying Hammer with Intensity 0 produces a journal and counters
// byte-identical to the same scenario with no Hammer block at all. This is
// what keeps pre-PR campaign results stable.
func TestHammerZeroIntensityByteIdentical(t *testing.T) {
	armed := hammerScenario("hammer-zero", topology.ProtoDeny, 0, 2_000)
	plain := armed
	plain.Hammer = nil
	plain.AllowDUE = armed.AllowDUE

	zrep := runHammerCell(t, armed)
	prep := runHammerCell(t, plain)

	zb, err := zrep.Journal.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := prep.Journal.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zb, pb) {
		t.Error("zero-intensity journal differs from the unattacked run")
	}
	if !reflect.DeepEqual(zrep.Counters, prep.Counters) {
		t.Errorf("zero-intensity counters differ from the unattacked run:\nzero:  %+v\nplain: %+v",
			zrep.Counters, prep.Counters)
	}
	if zrep.Cycles != prep.Cycles {
		t.Errorf("zero-intensity cycles %d != unattacked cycles %d", zrep.Cycles, prep.Cycles)
	}
}

// TestHammerRunsOnLegacyEngine pins the engine contract for hammer runs: an
// external operation source (the aggressor interleaver) disqualifies the
// partitioned engine, because aggressor reads deliberately cross sockets.
func TestHammerRunsOnLegacyEngine(t *testing.T) {
	cfg := topology.Default(topology.ProtoDeny)
	spec, ok := workload.ByName("fft", cfg.TotalCores())
	if !ok {
		t.Fatal("fft workload missing")
	}
	src, err := workload.NewHammerSource(workload.HammerSpec{
		Victim: spec, Intensity: 0.3, Seed: 1,
	}, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := dve.RunConfig{
		Cfg:        cfg,
		MeasureOps: 5_000,
		Engine:     dve.EngineParallel,
		Source:     src,
	}
	if got := rc.ExecutedEngine(); got != "legacy" {
		t.Fatalf("hammer RunConfig predicted engine %q, want legacy", got)
	}
	res, err := dve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "legacy" {
		t.Fatalf("hammer run executed on %q, want legacy", res.Engine)
	}
}
