package ras

import (
	"math/rand"

	"dve/internal/fault"
	"dve/internal/sim"
	"dve/internal/topology"
)

// InjectorConfig shapes the dynamic fault arrival process. Arrivals are a
// seeded Poisson-like process on the simulation engine (exponential
// inter-arrival times with the given mean), so a run's fault history is a
// deterministic function of the seed.
type InjectorConfig struct {
	// Seed drives the arrival process, fault placement, and lifecycle coin
	// flips. Campaigns derive it from the run seed so every scenario×seed
	// cell has an independent but reproducible fault history.
	Seed int64
	// MeanArrivalCyc is the mean inter-arrival time between faults.
	MeanArrivalCyc uint64
	// MaxFaults caps total arrivals (0 = unlimited until the run ends).
	MaxFaults int
	// Kinds are the fault granularities to draw from (uniformly). Empty
	// defaults to {Cell}.
	Kinds []fault.Kind
	// AddrSpace bounds the byte addresses faults land on; it should cover
	// the workload's footprint so faults actually intersect reads. 0
	// defaults to 1 MiB.
	AddrSpace uint64
	// TransientLifeCyc is how long a fault stays in its transient phase
	// before the lifecycle decides its fate (repair writes may clear it
	// sooner). 0 defaults to 4 * MeanArrivalCyc.
	TransientLifeCyc uint64
	// IntermittentLifeCyc is how long an escalated fault flaps before the
	// lifecycle decides between hardening and expiry. 0 defaults to
	// TransientLifeCyc.
	IntermittentLifeCyc uint64
	// DutyPct is the intermittent phase's duty cycle (percent of covering
	// reads that observe the error). 0 defaults to 50.
	DutyPct uint8
	// HardenPct is the probability (percent) that a surviving fault
	// escalates at each lifecycle decision instead of expiring:
	// transient → intermittent, then intermittent → hard.
	HardenPct int
}

func (c InjectorConfig) withDefaults() InjectorConfig {
	if c.MeanArrivalCyc == 0 {
		c.MeanArrivalCyc = 50_000
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []fault.Kind{fault.Cell}
	}
	if c.AddrSpace == 0 {
		c.AddrSpace = 1 << 20
	}
	if c.TransientLifeCyc == 0 {
		c.TransientLifeCyc = 4 * c.MeanArrivalCyc
	}
	if c.IntermittentLifeCyc == 0 {
		c.IntermittentLifeCyc = c.TransientLifeCyc
	}
	if c.DutyPct == 0 {
		c.DutyPct = 50
	}
	return c
}

// Injector injects faults while the simulation runs and walks each one
// through the transient → intermittent → hard lifecycle. All activity runs
// as engine daemons: the injector never keeps the run alive past the
// workload's last demand event.
type Injector struct {
	cfg  InjectorConfig
	eng  *sim.Engine
	set  *fault.Set
	amap *topology.AddrMap
	tcfg *topology.Config
	rng  *rand.Rand
	note func(Event)

	// Injected counts arrivals; Escalated transient→intermittent
	// promotions; Hardened intermittent→hard promotions; Expired faults
	// that went away at a lifecycle decision point.
	Injected, Escalated, Hardened, Expired int
}

// NewInjector builds an injector over the simulation engine and fault set;
// note observes every lifecycle event (the RAS journal).
func NewInjector(cfg InjectorConfig, eng *sim.Engine, set *fault.Set,
	tcfg *topology.Config, note func(Event)) *Injector {
	return &Injector{
		cfg:  cfg.withDefaults(),
		eng:  eng,
		set:  set,
		amap: topology.NewAddrMap(tcfg),
		tcfg: tcfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		note: note,
	}
}

// Start arms the arrival daemon.
func (in *Injector) Start() { in.eng.ScheduleDaemon(in.nextDelay(), in.arrive) }

// nextDelay draws an exponential inter-arrival time (at least 1 cycle).
func (in *Injector) nextDelay() sim.Cycle {
	d := sim.Cycle(in.rng.ExpFloat64() * float64(in.cfg.MeanArrivalCyc))
	if d == 0 {
		d = 1
	}
	return d
}

// arrive injects one fault and schedules its lifecycle and the next arrival.
func (in *Injector) arrive() {
	if in.cfg.MaxFaults > 0 && in.Injected >= in.cfg.MaxFaults {
		return
	}
	f := in.place()
	id := in.set.Add(f)
	in.Injected++
	in.journal(EvInject, f)
	in.eng.ScheduleDaemon(sim.Cycle(in.cfg.TransientLifeCyc), func() { in.decideTransient(id) })
	in.eng.ScheduleDaemon(in.nextDelay(), in.arrive)
}

// place draws a fault: a random kind at a random address, transient at birth.
// Coarser kinds (row/bank/channel/...) take their coordinates from the drawn
// address's DRAM decode, so they always intersect the workload's footprint.
func (in *Injector) place() fault.Fault {
	kind := in.cfg.Kinds[in.rng.Intn(len(in.cfg.Kinds))]
	a := topology.Addr(uint64(in.rng.Int63n(int64(in.cfg.AddrSpace))) &^ uint64(in.tcfg.LineSizeBytes-1))
	co := in.amap.Decode(a)
	return fault.Fault{
		Kind:      kind,
		Socket:    in.amap.HomeSocket(a),
		Channel:   co.Channel,
		Bank:      co.Bank,
		Row:       co.Row,
		Chip:      in.rng.Intn(8),
		Addr:      a,
		Transient: true,
	}
}

// decideTransient ends a fault's transient phase: if a repair write already
// cleared it, nothing happens; otherwise it either escalates to intermittent
// or expires on its own.
func (in *Injector) decideTransient(id fault.ID) {
	f, ok := in.set.Get(id)
	if !ok {
		return // repaired away
	}
	if in.rng.Intn(100) < in.cfg.HardenPct {
		f.Transient = false
		f.DutyPct = in.cfg.DutyPct
		in.set.Update(id, f)
		in.Escalated++
		in.journal(EvEscalate, f)
		in.eng.ScheduleDaemon(sim.Cycle(in.cfg.IntermittentLifeCyc), func() { in.decideIntermittent(id) })
		return
	}
	in.set.Remove(id)
	in.Expired++
	in.journal(EvExpire, f)
}

// decideIntermittent ends the intermittent phase: harden to a permanent
// fault (fires on every covering read) or expire.
func (in *Injector) decideIntermittent(id fault.ID) {
	f, ok := in.set.Get(id)
	if !ok {
		return
	}
	if in.rng.Intn(100) < in.cfg.HardenPct {
		f.DutyPct = 0 // always fires
		in.set.Update(id, f)
		in.Hardened++
		in.journal(EvHarden, f)
		return
	}
	in.set.Remove(id)
	in.Expired++
	in.journal(EvExpire, f)
}

func (in *Injector) journal(kind string, f fault.Fault) {
	if in.note == nil {
		return
	}
	in.note(Event{
		Cycle:  uint64(in.eng.Now()),
		Kind:   kind,
		Socket: f.Socket,
		Line:   uint64(in.amap.LineOf(f.Addr)),
		Detail: f.Kind.String(),
	})
}
