package ras

import (
	"fmt"

	"dve/internal/coherence"
	"dve/internal/fault"
	"dve/internal/topology"
)

// RowHammer closing of the loop: the memory controllers already count
// per-row activations and fire OnHammer at threshold crossings; this file
// turns a crossing into seeded bitflips in the physically adjacent victim
// rows and scores the replica + scrub/repair ladder as the defense —
// detection latency, corrupted reads served, and repair traffic.

// EvHammerFlip journals one bitflip injected into a hammered victim row.
const EvHammerFlip = "hammer-flip"

// HammerConfig arms disturbance-error injection for a run.
type HammerConfig struct {
	// FlipsPerRow caps how many victim-row lines flip per threshold
	// crossing (0 = default 4). Flips land only on lines the home
	// directory has tracked — cells some core actually read — so every
	// flip is observable by a demand read or patrol scrub; a crossing next
	// to untouched rows injects nothing.
	FlipsPerRow int
}

type flipKey struct {
	socket int
	line   topology.Line
}

type hammerFlip struct {
	id        fault.ID
	injectCyc uint64
	detected  bool
	// keys are the event identities this flip can surface under. A flipped
	// cell always answers home reads of its own line; on a replicated
	// machine the same cell may also hold the replica of its partner line
	// (the fixed-function map pairs page 2k with 2k+1), and replica-read
	// failures are reported against the partner line — same socket,
	// different line.
	keys []flipKey
}

// HammerState wires OnHammer crossings to fault injection and scores the
// defense ladder by observing the run's RAS events. Crossings, flips, and
// every observation run on the one legacy engine (a Prepare hook forces
// it), so the bookkeeping needs no locking and is deterministic.
type HammerState struct {
	sys         *coherence.System
	set         *fault.Set
	amap        *topology.AddrMap
	journal     func(Event)
	flipsPerRow int

	active map[flipKey]*hammerFlip

	// Crossings counts OnHammer firings; Flips the injected faults.
	Crossings, Flips uint64
}

func newHammerState(cfg HammerConfig, sys *coherence.System, set *fault.Set, journal func(Event)) *HammerState {
	fpr := cfg.FlipsPerRow
	if fpr <= 0 {
		fpr = 4
	}
	return &HammerState{
		sys:         sys,
		set:         set,
		amap:        sys.AMap,
		journal:     journal,
		flipsPerRow: fpr,
		active:      make(map[flipKey]*hammerFlip),
	}
}

// attach subscribes to every memory controller's OnHammer hook and wraps
// the system's RAS event stream with the defense scorer.
func (h *HammerState) attach() {
	for s, mc := range h.sys.MCs {
		s := s
		mc.OnHammer = func(co topology.DRAMCoord) { h.crossed(s, co) }
	}
	prev := h.sys.RASEvent
	h.sys.RASEvent = func(kind string, socket int, l topology.Line) {
		if prev != nil {
			prev(kind, socket, l)
		}
		h.observe(kind, socket, l)
	}
}

// crossed handles one threshold crossing: transient cell faults land in the
// adjacent victim rows, on cells whose contents some directory actually
// tracks (capped per row). A cell qualifies through either of its
// identities: the home copy of its own line, or — on replicated machines —
// the replica copy of its partner line (crossings on the replica-serving
// controller corrupt the second copy, which is how a determined attacker
// degrades Dvé from recovery to DUE). The faults are Transient, so the
// ladder's repair write — or any ordinary writeback of the line —
// genuinely heals the cell, which is exactly the defense under measurement.
func (h *HammerState) crossed(socket int, co topology.DRAMCoord) {
	h.Crossings++
	now := uint64(h.sys.Engs[0].Now())
	cnt := h.sys.Cnts[socket]
	for _, vco := range topology.AdjacentRows(co) {
		injected := 0
		for slot := 0; slot < h.amap.RowLines() && injected < h.flipsPerRow; slot++ {
			a := h.amap.Encode(socket, vco, slot)
			l := h.amap.LineOf(a)
			var keys []flipKey
			if h.sys.Dirs[socket].HasLine(l) {
				keys = append(keys, flipKey{socket, l})
			}
			// The same cell may hold the replica of the partner line (the
			// page map is an involution): replica-read failures surface
			// against the partner line on this socket.
			if partner := h.amap.ReplicaLine(l); h.sys.HasReplica(partner) &&
				h.sys.Dirs[h.amap.HomeSocketLine(partner)].HasLine(partner) {
				keys = append(keys, flipKey{socket, partner})
			}
			if len(keys) == 0 {
				continue // cell holds nothing any core ever read
			}
			if fl, ok := h.active[keys[0]]; ok {
				if _, live := h.set.Get(fl.id); live {
					injected++ // still flipped from an earlier crossing
					continue
				}
				h.retire(fl)
			}
			id := h.set.Add(fault.Fault{
				Kind:      fault.Cell,
				Socket:    socket,
				Channel:   vco.Channel,
				Bank:      vco.Bank,
				Row:       vco.Row,
				Addr:      a,
				Transient: true,
			})
			fl := &hammerFlip{id: id, injectCyc: now, keys: keys}
			for _, k := range keys {
				h.active[k] = fl
			}
			h.Flips++
			cnt.HammerFlips++
			if h.journal != nil {
				h.journal(Event{
					Cycle:  now,
					Kind:   EvHammerFlip,
					Socket: socket,
					Line:   uint64(l),
					Detail: fmt.Sprintf("ch%d,bank%d,row%d", vco.Channel, vco.Bank, vco.Row),
				})
			}
			injected++
		}
	}
}

// retire drops every identity of a flip from the active map.
func (h *HammerState) retire(fl *hammerFlip) {
	for _, k := range fl.keys {
		delete(h.active, k)
	}
}

// observe scores the defense ladder from the RAS event stream:
//
//   - EvDetect on a flipped line: first detection closes the
//     inject-to-detect latency window.
//   - EvDUE on a flipped line while the flip is live: the machine served a
//     corrupted read (the unreplicated outcome, or both copies flipped).
//   - EvRepair while the flip is live: repair traffic the attack caused.
//   - EvRepairOK on a flipped line whose fault is gone: the ladder healed
//     the cell; the flip retires.
func (h *HammerState) observe(kind string, socket int, l topology.Line) {
	fl, ok := h.active[flipKey{socket, l}]
	if !ok {
		return
	}
	cnt := h.sys.Cnts[socket]
	_, live := h.set.Get(fl.id)
	switch kind {
	case coherence.EvDetect:
		if live && !fl.detected {
			fl.detected = true
			cnt.HammerDetected++
			cnt.HammerDetectLatency += uint64(h.sys.Engs[0].Now()) - fl.injectCyc
		}
	case coherence.EvDUE:
		if live {
			cnt.HammerCorruptReads++
		}
	case coherence.EvRepair:
		// Repair traffic attributed to the attack: both the home ladder's
		// repair-write and the replica path's background copy-fix report
		// EvRepair while the flip is still in place.
		if live {
			cnt.HammerRepairs++
		}
	case coherence.EvRepairOK:
		if !live {
			h.retire(fl)
		}
	}
}

// ActiveFlips returns how many injected flips are still uncleared.
func (h *HammerState) ActiveFlips() int {
	seen := make(map[fault.ID]bool)
	n := 0
	for _, fl := range h.active {
		if seen[fl.id] {
			continue
		}
		seen[fl.id] = true
		if _, live := h.set.Get(fl.id); live {
			n++
		}
	}
	return n
}
