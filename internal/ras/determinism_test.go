package ras

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dve/internal/fault"
	"dve/internal/topology"
)

// quickMeasureOps mirrors experiments.Quick.MeasureOps (the experiments
// package now layers its hammer sweep on ras, so importing it from here
// would be a cycle); experiments pins the value with a test.
const quickMeasureOps = 120_000

// TestJournalFilesByteIdentical is the on-disk counterpart of
// TestCampaignDeterminism: it runs one campaign scenario twice with the
// same seed, writing journals through OutDir, and demands the resulting
// files be byte-for-byte identical. This is the dynamic regression guard
// for what dvelint's determinism analyzer enforces statically (no wall
// clock, no global rand, no order-sensitive map iteration on the journal
// path) — if either run's journal diverges, some hidden source of
// nondeterminism leaked into the simulation.
//
// The scenario deliberately stacks every journal-producing subsystem:
// dynamic fault arrivals, background scrubbing, and a mid-run socket kill
// with its demotion cascade.
func TestJournalFilesByteIdentical(t *testing.T) {
	sc := Scenario{
		Name: "replay", Workload: "fft", Protocol: topology.ProtoDeny,
		Inject: &InjectorConfig{
			MeanArrivalCyc: 1_200, MaxFaults: 20,
			Kinds:            []fault.Kind{fault.Cell, fault.Bank},
			TransientLifeCyc: 15_000, IntermittentLifeCyc: 25_000,
			DutyPct: 50, HardenPct: 40,
		},
		KillSocket: 1, KillAtCyc: 5_000,
		ScrubIntervalCyc: 2_500, ScrubBatch: 4,
		AllowDUE: true, // injector may take out both copies within a scrub interval
	}
	journalFile := func(dir string) []byte {
		res, err := RunCampaign(CampaignConfig{
			Seeds: []int64{11}, MeasureOps: 8_000,
			Scenarios: []Scenario{sc}, OutDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Runs[0]
		want := filepath.Join(dir, "replay-seed11.json")
		if rep.JournalPath != want {
			t.Fatalf("journal written to %q, want %q", rep.JournalPath, want)
		}
		b, err := os.ReadFile(rep.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatal("journal file is empty")
		}
		return b
	}
	a := journalFile(t.TempDir())
	b := journalFile(t.TempDir())
	if !bytes.Equal(a, b) {
		t.Fatalf("journal files differ between identical runs: %d vs %d bytes (run is not a pure function of scenario+seed)", len(a), len(b))
	}
}

// TestQuickScaleRunTwiceByteIdentical replays a campaign at the experiments
// package's Quick scale — the same operation count CI and the bench
// experiment use — and demands two same-seed runs agree byte-for-byte on
// the journal and exactly on cycles and counters. The short journal test
// above catches coarse divergence fast; this one gives nondeterminism with
// a long fuse (a pooled record reused in a different order, a map iteration
// deep in a rare path) 120k operations of fault-riddled simulation to
// surface before it can corrupt a paper figure.
func TestQuickScaleRunTwiceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale replay takes a few seconds")
	}
	sc := Scenario{
		Name: "quickreplay", Workload: "graph500", Protocol: topology.ProtoDynamic,
		Inject: &InjectorConfig{
			MeanArrivalCyc: 4_000, MaxFaults: 64,
			Kinds:            []fault.Kind{fault.Cell, fault.Row, fault.Bank},
			TransientLifeCyc: 40_000, IntermittentLifeCyc: 80_000,
			DutyPct: 50, HardenPct: 30,
		},
		ScrubIntervalCyc: 10_000, ScrubBatch: 8,
		AllowDUE: true,
	}
	type outcome struct {
		cycles   uint64
		counters any
		journal  []byte
	}
	run := func(dir string) outcome {
		res, err := RunCampaign(CampaignConfig{
			Seeds: []int64{7}, MeasureOps: quickMeasureOps,
			Scenarios: []Scenario{sc}, OutDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Runs[0]
		j, err := os.ReadFile(rep.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{cycles: rep.Cycles, counters: rep.Counters, journal: j}
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if a.cycles != b.cycles {
		t.Errorf("cycles differ between identical runs: %d vs %d", a.cycles, b.cycles)
	}
	if !reflect.DeepEqual(a.counters, b.counters) {
		t.Errorf("counters differ between identical runs:\n  %+v\n  %+v", a.counters, b.counters)
	}
	if !bytes.Equal(a.journal, b.journal) {
		t.Errorf("journals differ between identical runs: %d vs %d bytes", len(a.journal), len(b.journal))
	}
}
