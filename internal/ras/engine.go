package ras

import (
	"dve/internal/coherence"
	"dve/internal/fault"
	"dve/internal/rmt"
	"dve/internal/sim"
	"dve/internal/topology"
)

// EngineConfig selects what one RAS engine does to a run.
type EngineConfig struct {
	// Inject, when set, arms the dynamic fault injector.
	Inject *InjectorConfig
	// Static faults are planted before the run starts (the legacy
	// pre-run campaign style).
	Static []fault.Fault
	// KillSocket, when >= 0, kills that socket's memory controller at
	// KillAtCyc, demoting its dependents to unreplicated mode.
	KillSocket int
	// KillAtCyc is the simulated cycle of the kill.
	KillAtCyc uint64
	// Hammer, when set, wires RowHammer threshold crossings to victim-row
	// bitflip injection and the defense-ladder scorer (see hammer.go).
	Hammer *HammerConfig
}

// Engine attaches the RAS machinery to one simulation run: it journals
// every recovery-path event the coherence layer reports, runs the dynamic
// fault injector, serves page retirement through an RMT table, and
// orchestrates mid-run socket kills. Use Attach as the run's
// dve.RunConfig.Prepare hook.
type Engine struct {
	cfg EngineConfig
	set *fault.Set

	// Journal is the run's complete RAS event history, in simulation
	// order.
	Journal Journal
	// Retired maps retired pages to their spare replacements (the RMT's
	// page-retirement entries).
	Retired *rmt.Table

	// Inj is the dynamic injector, if armed.
	Inj *Injector
	// Hammer is the RowHammer flip/defense state, if armed.
	Hammer *HammerState

	amap      *topology.AddrMap
	sparePage uint64
}

// NewEngine builds a RAS engine feeding the given fault set. The set must
// be the same one wired into the run (dve.RunConfig.Faults) or injected
// faults will never surface.
func NewEngine(cfg EngineConfig, set *fault.Set) *Engine {
	return &Engine{cfg: cfg, set: set}
}

// Attach wires the engine into a freshly built system. It is shaped to be
// used directly as dve.RunConfig.Prepare — and a Prepare hook forces the
// legacy single-queue engine, so Engs[0] below is the one shared engine.
func (e *Engine) Attach(sys *coherence.System) {
	e.amap = sys.AMap
	e.Retired = rmt.NewTable(sys.Cfg.PageBytes)
	// Spare pages for retirement come from far above any workload
	// footprint, so remapped pages never collide with live ones.
	e.sparePage = (1 << 40) / uint64(sys.Cfg.PageBytes)

	sys.RASEvent = func(kind string, socket int, l topology.Line) {
		e.Journal.Append(Event{
			Cycle:  uint64(sys.Engs[0].Now()),
			Kind:   kind,
			Socket: socket,
			Line:   uint64(l),
		})
	}
	sys.RetireFn = e.retire

	for _, f := range e.cfg.Static {
		e.set.Add(f)
	}
	if e.cfg.Inject != nil {
		e.Inj = NewInjector(*e.cfg.Inject, sys.Engs[0], e.set, sys.Cfg, e.Journal.Append)
		e.Inj.Start()
	}
	if e.cfg.Hammer != nil {
		e.Hammer = newHammerState(*e.cfg.Hammer, sys, e.set, e.Journal.Append)
		e.Hammer.attach()
	}
	if e.cfg.KillSocket >= 0 {
		socket := e.cfg.KillSocket
		sys.Engs[0].ScheduleDaemon(sim.Cycle(e.cfg.KillAtCyc), func() {
			sys.KillSocketMemory(socket, nil)
		})
	}
}

// retire serves the coherence layer's page-retirement requests (ladder
// rung 4): the first request for a page maps it to a spare in the RMT and
// succeeds; repeat requests for the same page report it already retired.
func (e *Engine) retire(l topology.Line) bool {
	page := e.amap.PageOf(topology.Addr(l))
	if _, ok := e.Retired.ReplicaAddr(topology.Addr(l)); ok {
		return false
	}
	e.sparePage++
	if e.Retired.Map(page, e.sparePage) != nil {
		return false
	}
	return true
}
