// Package ras is the reliability/availability/serviceability engine over
// the Dvé simulator: a seeded dynamic fault injector with a transient →
// intermittent → hard lifecycle per fault, a machine-readable journal of
// every recovery-path event, mid-run socket-kill orchestration with
// graceful degradation to unreplicated mode, and a campaign runner that
// sweeps seeds × workloads × fault scenarios asserting zero SDC, zero
// coherence-invariant violations, and DUEs only where the Section IV
// reliability model permits them.
package ras

import (
	"encoding/json"
	"io"
)

// Event is one entry of the RAS journal. Cycle is simulated time; Kind is
// either a coherence.Ev* recovery-path kind or an injector lifecycle kind
// (EvInject, EvEscalate, EvHarden, EvExpire). Events carry no wall-clock
// state, so a journal is a pure function of (scenario, seed) and two runs
// with the same inputs produce byte-identical journals.
type Event struct {
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"`
	Socket int    `json:"socket"`
	Line   uint64 `json:"line,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Injector lifecycle event kinds (the recovery-path kinds are the
// coherence.Ev* constants).
const (
	EvInject   = "inject"                // fault arrived (transient phase)
	EvEscalate = "escalate-intermittent" // transient hardened to intermittent
	EvHarden   = "escalate-hard"         // intermittent hardened to permanent
	EvExpire   = "expire"                // fault went away on its own
)

// Journal accumulates RAS events in simulation order.
type Journal struct {
	Events []Event `json:"events"`
}

// Append records one event.
func (j *Journal) Append(ev Event) { j.Events = append(j.Events, ev) }

// Count returns how many events of the kind were journaled.
func (j *Journal) Count(kind string) int {
	n := 0
	for i := range j.Events {
		if j.Events[i].Kind == kind {
			n++
		}
	}
	return n
}

// Len returns the number of journaled events.
func (j *Journal) Len() int { return len(j.Events) }

// FirstIndex returns the index of the first event of the kind, or -1.
func (j *Journal) FirstIndex(kind string) int {
	for i := range j.Events {
		if j.Events[i].Kind == kind {
			return i
		}
	}
	return -1
}

// Bytes renders the journal as deterministic, indented JSON.
func (j *Journal) Bytes() ([]byte, error) {
	return json.MarshalIndent(j, "", "  ")
}

// WriteTo writes the JSON journal to w.
func (j *Journal) WriteTo(w io.Writer) (int64, error) {
	b, err := j.Bytes()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}
