package ras

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dve/internal/dve"
	"dve/internal/fault"
	"dve/internal/results"
	"dve/internal/stats"
	"dve/internal/telemetry"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Scenario is one column of a RAS campaign: a workload under one protection
// configuration with one fault story (dynamic arrivals, static plants, a
// mid-run socket kill, or combinations).
type Scenario struct {
	Name     string
	Workload string
	Protocol topology.Protocol
	// Code is the local detection code; the zero value selects CodeTSD
	// (Dvé's strengthened detection — CodeNone would turn every covering
	// fault into an SDC, which campaigns exist to rule out).
	Code fault.LocalCode
	// Inject arms the dynamic fault injector (its Seed field is overridden
	// per run from the campaign seed).
	Inject *InjectorConfig
	// Static faults are planted before the run starts.
	Static []fault.Fault
	// KillAtCyc > 0 kills KillSocket's memory controller at that cycle.
	KillSocket int
	KillAtCyc  uint64
	// Scrubbing (0 = off) drives background repair of latent faults.
	ScrubIntervalCyc uint64
	ScrubBatch       int
	// Hammer arms an adversarial RowHammer campaign: the workload's stream
	// is interleaved with aggressor reads and threshold crossings inject
	// victim-row bitflips (see hammer.go). Intensity 0 keeps the defense
	// armed but launches no attack — the run is then byte-identical to the
	// same scenario without Hammer at all.
	Hammer *HammerScenario
	// AllowDUE marks scenarios where the Section IV reliability model
	// permits data loss (no replica, or coincident failures within a scrub
	// interval); the campaign then tolerates DetectedUncorrect > 0 but
	// still demands zero SDC.
	AllowDUE bool
}

// HammerScenario shapes one adversarial campaign cell.
type HammerScenario struct {
	// Intensity is the aggressor-read fraction of the issued stream,
	// in [0, 1). 0 disarms the attack entirely.
	Intensity float64
	// DoubleSided hammers victim rows from both neighbours.
	DoubleSided bool
	// Threshold overrides the controllers' per-window activation threshold
	// while the attack is live (0 = 64, reachable at campaign op counts).
	// Intensity-0 cells keep the package default, which campaign-scale
	// victim workloads never reach — so a zero-intensity run's journal is
	// byte-identical to an unattacked run's.
	Threshold uint32
	// FlipsPerRow caps injected flips per victim row per crossing (0 = 4).
	FlipsPerRow int
}

func (sc *Scenario) code() fault.LocalCode {
	if sc.Code == fault.CodeNone {
		return fault.CodeTSD
	}
	return sc.Code
}

// CampaignConfig sweeps Scenarios × Seeds.
type CampaignConfig struct {
	Seeds      []int64
	MeasureOps uint64
	Scenarios  []Scenario
	// OutDir, when non-empty, receives one JSON RAS journal per run,
	// named <scenario>-seed<seed>.json.
	OutDir string
	// Cache, when set, serves previously executed scenario×seed cells from
	// disk (keyed by the full scenario definition, the seed and the run
	// length); journal files are rewritten from the cached journal, so the
	// OutDir contract holds on hits too.
	Cache *results.Store
	// Progress, when set, observes each completed run (CLI reporting).
	Progress func(r RunReport)
}

// runKey addresses one campaign cell. The whole Scenario participates:
// any change to the fault story, protection config or assertions makes a
// new key.
type runKey struct {
	Scenario   Scenario `json:"scenario"`
	Seed       int64    `json:"seed"`
	MeasureOps uint64   `json:"measure_ops"`
}

// RunReport is one run's outcome and its checked assertions.
type RunReport struct {
	Scenario string
	Seed     int64
	Cycles   uint64
	Counters stats.Counters
	// Journal is the run's full RAS event history.
	Journal *Journal
	// JournalPath is where the JSON journal was written ("" if no OutDir).
	JournalPath string
	// FlightPath is where the flight-recorder dump was written (fresh runs
	// that failed an assertion or killed a socket, with OutDir set; ""
	// otherwise). Excluded from the cached bytes: the dump is a diagnostic
	// of the run that produced it, not part of the result.
	FlightPath string `json:"-"`
	// Violations lists failed campaign assertions; empty means the run
	// passed (zero SDC, zero invariant violations, DUEs only when the
	// model permits, kill scenarios degraded and finished).
	Violations []string
}

// OK reports whether the run passed every assertion.
func (r *RunReport) OK() bool { return len(r.Violations) == 0 }

// CampaignResult aggregates a sweep.
type CampaignResult struct {
	Runs     []RunReport
	Failures int
}

// RunCampaign executes every scenario under every seed, sequentially (the
// runs themselves are deterministic; sequential execution keeps the journal
// files and report order deterministic too).
func RunCampaign(cc CampaignConfig) (*CampaignResult, error) {
	if cc.MeasureOps == 0 {
		cc.MeasureOps = 50_000
	}
	if len(cc.Seeds) == 0 {
		cc.Seeds = []int64{1}
	}
	if cc.OutDir != "" {
		if err := os.MkdirAll(cc.OutDir, 0o755); err != nil {
			return nil, err
		}
	}
	out := &CampaignResult{}
	for si := range cc.Scenarios {
		for _, seed := range cc.Seeds {
			rep, err := runOne(&cc, &cc.Scenarios[si], si, seed)
			if err != nil {
				return nil, fmt.Errorf("ras: scenario %q seed %d: %w",
					cc.Scenarios[si].Name, seed, err)
			}
			if !rep.OK() {
				out.Failures++
			}
			if cc.Progress != nil {
				cc.Progress(*rep)
			}
			out.Runs = append(out.Runs, *rep)
		}
	}
	return out, nil
}

// writeJournal materialises a report's journal under OutDir and records the
// path, honouring the OutDir contract for fresh and cached runs alike.
func writeJournal(cc *CampaignConfig, rep *RunReport) error {
	if cc.OutDir == "" || rep.Journal == nil {
		return nil
	}
	b, err := rep.Journal.Bytes()
	if err != nil {
		return err
	}
	rep.JournalPath = filepath.Join(cc.OutDir,
		fmt.Sprintf("%s-seed%d.json", rep.Scenario, rep.Seed))
	return os.WriteFile(rep.JournalPath, b, 0o644)
}

// runOne builds and executes a single scenario×seed cell, consulting the
// campaign cache first when one is configured.
func runOne(cc *CampaignConfig, sc *Scenario, scenarioIdx int, seed int64) (*RunReport, error) {
	var key results.Key
	if cc.Cache != nil {
		k, err := results.HashKey("ras-run", runKey{
			Scenario: *sc, Seed: seed, MeasureOps: cc.MeasureOps,
		})
		if err != nil {
			return nil, err
		}
		key = k
		var cached RunReport
		if cc.Cache.Get(key, &cached) {
			if err := writeJournal(cc, &cached); err != nil {
				return nil, err
			}
			return &cached, nil
		}
	}
	cfg := topology.Default(sc.Protocol)
	spec, ok := workload.ByName(sc.Workload, cfg.TotalCores())
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", sc.Workload)
	}
	// The campaign seed fully determines the run: it reseeds the workload
	// generator and (salted with the scenario index) the fault injector and
	// aggressor interleaving.
	spec.Seed = seed

	if sc.Hammer != nil && sc.Hammer.Intensity > 0 {
		th := sc.Hammer.Threshold
		if th == 0 {
			th = 64
		}
		cfg.RowHammerThreshold = th
	}

	set := fault.NewSet(&cfg, sc.code())
	ec := EngineConfig{Static: sc.Static, KillSocket: -1}
	if sc.Inject != nil {
		ic := *sc.Inject
		ic.Seed = seed*1_000_003 + int64(scenarioIdx)
		ec.Inject = &ic
	}
	if sc.KillAtCyc > 0 {
		ec.KillSocket = sc.KillSocket
		ec.KillAtCyc = sc.KillAtCyc
	}
	runCfg := dve.RunConfig{
		Cfg:              cfg,
		MeasureOps:       cc.MeasureOps,
		Faults:           set,
		ScrubIntervalCyc: sc.ScrubIntervalCyc,
		ScrubBatch:       sc.ScrubBatch,
	}
	if sc.Hammer != nil {
		src, err := workload.NewHammerSource(workload.HammerSpec{
			Victim:      spec,
			Intensity:   sc.Hammer.Intensity,
			DoubleSided: sc.Hammer.DoubleSided,
			Seed:        seed*2_750_159 + int64(scenarioIdx),
		}, &cfg)
		if err != nil {
			return nil, err
		}
		runCfg.Source = src
		ec.Hammer = &HammerConfig{FlipsPerRow: sc.Hammer.FlipsPerRow}
	}
	eng := NewEngine(ec, set)
	runCfg.Prepare = eng.Attach

	// Every fresh run carries a recorder-only tracer (no trace-event
	// buffering): probes only observe, so journal byte-identity across
	// repeated runs is preserved, and when an assertion fails below the
	// recent protocol timeline is already in hand.
	tracer := telemetry.NewTracer(telemetry.Options{FlightRecorderLines: 256})
	runCfg.Telemetry = tracer

	res, err := dve.Run(spec, runCfg)
	if err != nil {
		return nil, err
	}

	rep := &RunReport{
		Scenario: sc.Name,
		Seed:     seed,
		Cycles:   res.Cycles,
		Counters: res.Counters,
		Journal:  &eng.Journal,
	}
	c := &res.Counters
	if c.SilentCorruptions > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("silent data corruption: %d reads consumed bad data", c.SilentCorruptions))
	}
	for _, v := range res.InvariantViolations {
		rep.Violations = append(rep.Violations, "coherence invariant: "+v)
	}
	if !sc.AllowDUE && c.DetectedUncorrect > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%d DUEs in a scenario the reliability model says is recoverable", c.DetectedUncorrect))
	}
	if sc.KillAtCyc > 0 {
		if c.SocketKills == 0 {
			rep.Violations = append(rep.Violations, "socket kill never fired")
		}
		if c.DemotedLines == 0 && c.DegradedReads == 0 && c.DegradedLines == 0 {
			rep.Violations = append(rep.Violations, "socket kill caused no degradation")
		}
		if res.Cycles == 0 {
			rep.Violations = append(rep.Violations, "run did not finish its ROI after the kill")
		}
	}
	if sc.Hammer != nil && sc.Hammer.Intensity > 0 && c.HammerCrossings == 0 {
		rep.Violations = append(rep.Violations, "hammer attack never crossed the activation threshold")
	}

	if cc.Cache != nil {
		// The stored copy carries no JournalPath: where (or whether) the
		// journal lands on disk is the reader's OutDir choice, not part of
		// the result.
		if err := cc.Cache.Put(key, rep); err != nil {
			return nil, err
		}
	}
	if err := writeJournal(cc, rep); err != nil {
		return nil, err
	}
	// Failed assertions and socket-kill scenarios get the flight recorder's
	// timeline next to the journal. Fresh runs only: a cache hit replays a
	// result, not the recorder that watched it.
	if cc.OutDir != "" && (len(rep.Violations) > 0 || sc.KillAtCyc > 0) {
		if rec := tracer.Recorder(); rec != nil {
			b, err := json.MarshalIndent(rec.Dump(), "", " ")
			if err != nil {
				return nil, err
			}
			rep.FlightPath = filepath.Join(cc.OutDir,
				fmt.Sprintf("%s-seed%d-flight.json", rep.Scenario, rep.Seed))
			if err := os.WriteFile(rep.FlightPath, b, 0o644); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// DefaultScenarios is the standard campaign matrix: the full fault
// lifecycle (transient storms, intermittent flapping, hardening), static
// plants, socket kills alone and under fire, and a baseline control where
// DUEs are the expected outcome. Seven scenarios × three seeds clears the
// twenty-run acceptance floor.
func DefaultScenarios() []Scenario {
	return []Scenario{
		{
			// A burst of transients under scrubbing: the patrol + repair
			// path should clear every fault with zero DUEs.
			Name: "transient-storm", Workload: "fft", Protocol: topology.ProtoDeny,
			Inject: &InjectorConfig{
				MeanArrivalCyc: 3_000, MaxFaults: 40,
				Kinds:            []fault.Kind{fault.Cell, fault.Row},
				TransientLifeCyc: 200_000, HardenPct: 0,
			},
			ScrubIntervalCyc: 2_000, ScrubBatch: 16,
		},
		{
			// Faults that survive to flap at a 40% duty cycle before
			// expiring: retries and replica recovery absorb the flapping.
			Name: "intermittent-flap", Workload: "graph500", Protocol: topology.ProtoDeny,
			Inject: &InjectorConfig{
				MeanArrivalCyc: 5_000, MaxFaults: 25,
				Kinds:            []fault.Kind{fault.Cell},
				TransientLifeCyc: 10_000, IntermittentLifeCyc: 60_000,
				DutyPct: 40, HardenPct: 60,
			},
		},
		{
			// Every fault hardens: the ladder must walk lines all the way
			// to retirement and degraded single-copy service.
			Name: "hardening", Workload: "backprop", Protocol: topology.ProtoDeny,
			Inject: &InjectorConfig{
				MeanArrivalCyc: 8_000, MaxFaults: 12,
				Kinds:            []fault.Kind{fault.Cell, fault.Row},
				TransientLifeCyc: 5_000, IntermittentLifeCyc: 10_000,
				DutyPct: 70, HardenPct: 100,
			},
		},
		{
			// A dead chip from cycle zero — the classic chipkill-class
			// event Dvé recovers from via the replica (Section III).
			Name: "static-chip", Workload: "stencil", Protocol: topology.ProtoDeny,
			Static: []fault.Fault{
				{Kind: fault.Chip, Socket: 0, Channel: 0, Chip: 2},
			},
		},
		{
			// Mid-run loss of socket 1's memory controller with no other
			// faults: every line demotes or degrades to single-copy
			// service, the ROI still completes, and no DUE is permitted
			// because the surviving copies are all intact.
			Name: "socket-kill", Workload: "ocean_cp", Protocol: topology.ProtoDeny,
			KillSocket: 1, KillAtCyc: 5_000,
		},
		{
			// Kill under fire: a controller dies while faults are still
			// arriving on the surviving copies. Coincident failures are
			// exactly where the Section IV model permits DUEs — but SDCs
			// remain forbidden.
			Name: "kill-under-fire", Workload: "bfs", Protocol: topology.ProtoDeny,
			Inject: &InjectorConfig{
				MeanArrivalCyc: 4_000, MaxFaults: 20,
				Kinds:            []fault.Kind{fault.Cell, fault.Row},
				TransientLifeCyc: 8_000, IntermittentLifeCyc: 20_000,
				DutyPct: 60, HardenPct: 50,
			},
			KillSocket: 0, KillAtCyc: 8_000,
			AllowDUE: true,
		},
		{
			// Control: the unreplicated baseline under a hard chip fault.
			// Detection works but there is no second copy, so DUEs are the
			// expected (and model-permitted) outcome — while SDC must
			// still be zero because TSD detects what it cannot correct.
			Name: "baseline-due", Workload: "nw", Protocol: topology.ProtoBaseline,
			Static: []fault.Fault{
				{Kind: fault.Chip, Socket: 0, Channel: 0, Chip: 1},
			},
			AllowDUE: true,
		},
	}
}
