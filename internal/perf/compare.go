package perf

// Regression checking: dvebench -check compares a fresh bench run against
// the committed BENCH_*.json baseline so a PR that slows the hot path or
// adds per-op allocations fails CI instead of landing silently. Throughput
// is host-dependent (CI machines differ from the one that wrote the
// baseline), so its tolerance is deliberately loose and configurable;
// allocations per op come from a deterministic simulation and are compared
// tightly.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// LoadReport reads a BENCH_*.json document written by Report.WriteFile.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: reading baseline: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("perf: decoding %s: %w", path, err)
	}
	if rep.Schema < 1 || rep.Schema > 2 {
		return nil, fmt.Errorf("perf: %s has unknown schema %d", path, rep.Schema)
	}
	return &rep, nil
}

// Tolerance bounds how much worse a fresh run may be than the baseline
// before Compare reports a regression. The zero value selects the defaults.
type Tolerance struct {
	// MinOpsRatio is the lowest acceptable fresh/baseline throughput ratio.
	// 0 means 0.5: wall-clock numbers move with the host, so only a halving
	// trips the default guard. Negative disables the throughput check.
	MinOpsRatio float64
	// MaxAllocsGrowth is the acceptable fractional growth in allocs/op
	// (fresh ≤ baseline·(1+growth) + AllocsSlack). 0 means 0.25.
	// Negative disables the allocation check.
	MaxAllocsGrowth float64
	// AllocsSlack is the absolute allocs/op headroom added on top of the
	// fractional bound, so near-zero baselines do not trip on noise.
	// 0 means 1.0.
	AllocsSlack float64
}

func (t Tolerance) minOps() float64 {
	if t.MinOpsRatio == 0 {
		return 0.5
	}
	return t.MinOpsRatio
}

func (t Tolerance) allocsLimit(baseline float64) float64 {
	growth := t.MaxAllocsGrowth
	if growth == 0 {
		growth = 0.25
	}
	slack := t.AllocsSlack
	if slack == 0 {
		slack = 1.0
	}
	return baseline*(1+growth) + slack
}

// Regression is one metric of one run that fell outside tolerance.
type Regression struct {
	Workload string
	Protocol string
	Engine   string
	Workers  int
	Metric   string // "ops_per_sec" | "allocs_per_op" | "missing"
	Baseline float64
	Fresh    float64
	Limit    float64
}

func (r Regression) String() string {
	id := fmt.Sprintf("%s/%s", r.Workload, r.Protocol)
	if r.Engine != "" {
		id += fmt.Sprintf(" (%s×%d)", r.Engine, r.Workers)
	}
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not in the fresh run", id)
	}
	return fmt.Sprintf("%s: %s %.3g vs baseline %.3g (limit %.3g)",
		id, r.Metric, r.Fresh, r.Baseline, r.Limit)
}

// runKey identifies a run across reports. Workers is part of the identity:
// serial and parallel measurements of the same cell are separate series.
func runKey(r Run) string {
	return fmt.Sprintf("%s|%s|%s|%d", r.Workload, r.Protocol, r.Engine, r.Workers)
}

// Compare checks every baseline run against its counterpart in fresh and
// returns the regressions in deterministic order (empty = within
// tolerance). Runs present only in fresh are ignored — new coverage is not
// a regression; runs missing from fresh are reported, so a bench matrix
// cannot silently shrink past the check.
func Compare(baseline, fresh *Report, tol Tolerance) []Regression {
	byKey := make(map[string]Run, len(fresh.Runs))
	for _, r := range fresh.Runs {
		byKey[runKey(r)] = r
	}
	var regs []Regression
	for _, base := range baseline.Runs {
		f, ok := byKey[runKey(base)]
		if !ok {
			regs = append(regs, Regression{
				Workload: base.Workload, Protocol: base.Protocol,
				Engine: base.Engine, Workers: base.Workers, Metric: "missing",
			})
			continue
		}
		if minRatio := tol.minOps(); minRatio > 0 && base.OpsPerSec > 0 {
			limit := base.OpsPerSec * minRatio
			if f.OpsPerSec < limit {
				regs = append(regs, Regression{
					Workload: base.Workload, Protocol: base.Protocol,
					Engine: base.Engine, Workers: base.Workers,
					Metric:   "ops_per_sec",
					Baseline: base.OpsPerSec, Fresh: f.OpsPerSec, Limit: limit,
				})
			}
		}
		if tol.MaxAllocsGrowth >= 0 {
			limit := tol.allocsLimit(base.AllocsPerOp)
			if f.AllocsPerOp > limit {
				regs = append(regs, Regression{
					Workload: base.Workload, Protocol: base.Protocol,
					Engine: base.Engine, Workers: base.Workers,
					Metric:   "allocs_per_op",
					Baseline: base.AllocsPerOp, Fresh: f.AllocsPerOp, Limit: limit,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		a, b := regs[i], regs[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Workers != b.Workers {
			return a.Workers < b.Workers
		}
		return a.Metric < b.Metric
	})
	return regs
}

// FormatRegressions renders Compare output for a CLI: one line per
// regression, or a one-line all-clear naming how many runs were checked.
func FormatRegressions(regs []Regression, checked int) string {
	if len(regs) == 0 {
		return fmt.Sprintf("bench check: %d baseline runs within tolerance", checked)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "bench check: %d regression(s) against baseline:\n", len(regs))
	for _, r := range regs {
		sb.WriteString("  " + r.String() + "\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}
