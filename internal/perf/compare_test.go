package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchRun(w, p string, workers int, ops, allocs float64) Run {
	return Run{
		Workload: w, Protocol: p, Engine: "partitioned", Workers: workers,
		OpsPerSec: ops, AllocsPerOp: allocs,
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := &Report{Schema: 2, Runs: []Run{
		benchRun("fft", "baseline", 1, 1e6, 3.0),
		benchRun("fft", "deny", 1, 5e5, 4.0),
	}}
	fresh := &Report{Schema: 2, Runs: []Run{
		benchRun("fft", "baseline", 1, 0.9e6, 3.1), // 10% slower, +0.1 allocs: fine
		benchRun("fft", "deny", 1, 5.5e5, 4.0),
		benchRun("fft", "dynamic", 1, 1, 1), // extra coverage is not a regression
	}}
	if regs := Compare(base, fresh, Tolerance{}); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	base := &Report{Schema: 2, Runs: []Run{
		benchRun("fft", "baseline", 1, 1e6, 3.0),
		benchRun("lbm", "deny", 2, 5e5, 2.0),
		benchRun("mcf", "deny", 1, 4e5, 1.0),
	}}
	fresh := &Report{Schema: 2, Runs: []Run{
		benchRun("fft", "baseline", 1, 0.4e6, 3.0), // under the 0.5× default
		benchRun("lbm", "deny", 2, 5e5, 4.0),       // > 2.0·1.25 + 1
		// mcf/deny missing entirely.
	}}
	regs := Compare(base, fresh, Tolerance{})
	if len(regs) != 3 {
		t.Fatalf("expected 3 regressions, got %d: %v", len(regs), regs)
	}
	// Deterministic order: workload, protocol, engine, workers, metric.
	if regs[0].Metric != "ops_per_sec" || regs[0].Workload != "fft" {
		t.Fatalf("regs[0] = %+v", regs[0])
	}
	if regs[1].Metric != "allocs_per_op" || regs[1].Workload != "lbm" {
		t.Fatalf("regs[1] = %+v", regs[1])
	}
	if regs[2].Metric != "missing" || regs[2].Workload != "mcf" {
		t.Fatalf("regs[2] = %+v", regs[2])
	}
	out := FormatRegressions(regs, len(base.Runs))
	if !strings.Contains(out, "3 regression(s)") || !strings.Contains(out, "ops_per_sec") {
		t.Fatalf("unexpected format output:\n%s", out)
	}
}

func TestCompareDisabledChecks(t *testing.T) {
	base := &Report{Schema: 2, Runs: []Run{benchRun("fft", "baseline", 1, 1e6, 3.0)}}
	fresh := &Report{Schema: 2, Runs: []Run{benchRun("fft", "baseline", 1, 1, 100)}}
	regs := Compare(base, fresh, Tolerance{MinOpsRatio: -1, MaxAllocsGrowth: -1})
	if len(regs) != 0 {
		t.Fatalf("disabled tolerances still reported %v", regs)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := NewReport("quick")
	rep.Add(benchRun("fft", "baseline", 1, 1e6, 3.0))
	path := filepath.Join(t.TempDir(), "BENCH_quick.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != rep.Schema || len(got.Runs) != 1 || got.Runs[0].Workload != "fft" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing baseline")
	}
}
