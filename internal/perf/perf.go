// Package perf records the simulator's performance trajectory. A Report is
// the BENCH_*.json document dvebench emits: per-run wall time, simulated
// throughput, and heap-allocation rates, so every PR can compare its hot
// path against the committed baseline (see DESIGN.md "Performance
// engineering").
//
// Wall-clock access goes through stats.Stopwatch (the one sanctioned
// wall-clock helper); nothing simulation-visible depends on a measurement.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dve/internal/stats"
)

// Run is one measured simulation: what ran, how much simulated work it did,
// and what it cost on the host.
type Run struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// Engine is the engine family the run executed ("legacy" or
	// "partitioned"); Workers is how many goroutines drove it. Serial and
	// parallel partitioned runs produce identical simulation results, so
	// benchmarking both isolates what the worker goroutines cost or save
	// on this host.
	Engine  string `json:"engine,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Ops is the number of simulated memory operations (warmup + ROI);
	// Cycles is the simulated region-of-interest length.
	Ops    uint64 `json:"ops"`
	Cycles uint64 `json:"cycles"`
	// Host-side cost: wall time, simulated ops per wall-clock second, and
	// heap allocation rates from runtime.MemStats deltas.
	WallMS      float64 `json:"wall_ms"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is a BENCH_*.json document: the environment it was measured in
// plus the measured runs.
// Schema history:
//
//	1 — initial: environment + per-run wall/throughput/alloc measurements.
//	2 — runs carry the engine mode and goroutine count; the report records
//	    GOMAXPROCS, so a "parallel showed no speedup" number can be read
//	    against how many CPUs the host actually offered.
type Report struct {
	Schema    int    `json:"schema"`
	Scale     string `json:"scale"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS is the scheduler width the measurements ran under. On a
	// 1-CPU host the parallel engine's workers time-slice one core, so
	// parity (not speedup) between serial and parallel is the expected
	// reading there.
	GOMAXPROCS int   `json:"gomaxprocs"`
	Runs       []Run `json:"runs"`
}

// NewReport returns an empty report stamped with the build environment.
func NewReport(scale string) *Report {
	return &Report{
		Schema:     2,
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Measure runs one simulation under the stopwatch and returns its Run
// record. fn reports the simulated work it performed (ops, ROI cycles).
// Allocation rates are runtime.MemStats deltas across the call: GC noise
// from other goroutines would pollute them, so measure serially.
func Measure(workload, protocol string, fn func() (ops, cycles uint64)) Run {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sw := stats.StartWallClock()
	ops, cycles := fn()
	wall := sw.Elapsed()
	runtime.ReadMemStats(&after)

	r := Run{Workload: workload, Protocol: protocol, Ops: ops, Cycles: cycles}
	r.WallMS = float64(wall) / float64(time.Millisecond)
	if s := wall.Seconds(); s > 0 {
		r.OpsPerSec = float64(ops) / s
	}
	if ops > 0 {
		r.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
		r.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	}
	return r
}

// Add appends a measured run to the report.
func (rep *Report) Add(r Run) { rep.Runs = append(rep.Runs, r) }

// WriteFile writes the report as indented JSON, newline-terminated.
func (rep *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// StartCPUProfile begins a CPU profile into path and returns the function
// that stops it. An empty path is a no-op (stop is still non-nil), so CLIs
// can call it unconditionally with their flag value.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a post-GC heap profile to path; an empty path is
// a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // report live objects, not transient garbage
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("perf: heap profile: %w", err)
	}
	return nil
}
