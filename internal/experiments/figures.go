package experiments

import (
	"fmt"
	"strings"

	"dve/internal/fault"
	"dve/internal/mcheck"
	"dve/internal/reliability"
	"dve/internal/stats"
	"dve/internal/topology"
)

// Table1 evaluates the Section IV analytical reliability model and formats
// it like the paper's Table I.
func Table1() string {
	m := reliability.Default()
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: DUE and SDC rates (per billion hours of operation)\n")
	fmt.Fprintf(&b, "%-16s %12s %10s %12s %10s\n", "scheme", "DUE", "impr", "SDC", "impr")
	ck := m.Chipkill()
	row := func(name string, r reliability.Rates, dueBase, sdcBase float64) {
		dueImpr, sdcImpr := "-", "-"
		if dueBase > 0 {
			dueImpr = fmt.Sprintf("%.2fx", dueBase/r.DUE)
		}
		if sdcBase > 0 {
			sdcImpr = fmt.Sprintf("%.2gx", sdcBase/r.SDC)
		}
		fmt.Fprintf(&b, "%-16s %12.2e %10s %12.2e %10s\n", name, r.DUE, dueImpr, r.SDC, sdcImpr)
	}
	row("Chipkill", ck, 0, 0)
	row("Dve+DSD", m.DveDSD(), ck.DUE, ck.SDC)
	row("Dve+TSD", m.DveTSD(), ck.DUE, ck.SDC)
	raim := m.RAIM(5, 8)
	row("IBM RAIM", raim, 0, 0)
	row("Dve+Chipkill", m.DveChipkill(), raim.DUE, raim.SDC)

	fits := reliability.ThermalFITs(66.1, 8.2, 9)
	ckT := m.ChipkillThermal(fits)
	row("Chipkill(T)", ckT, 0, 0)
	row("Intel+TSD(T)", m.MirrorThermal(fits, false), ckT.DUE, ckT.SDC)
	row("Dve+TSD(T)", m.MirrorThermal(fits, true), ckT.DUE, ckT.SDC)

	// Empirical detection coverage of the real codecs (Monte Carlo),
	// validating the model's detection-miss assumptions.
	dsd3 := fault.MeasureRS256Detection(18, 16, 3, 20_000, 1)
	tsd4 := fault.MeasureRS16Detection(35, 32, 4, 5_000, 2)
	fmt.Fprintf(&b, "\nMeasured detection coverage (Monte Carlo over real codecs):\n")
	fmt.Fprintf(&b, "  DSD RS(18,16)/GF(2^8):  3-chip miss rate %.4f (model uses 0.069 from [77])\n", dsd3.MissRate())
	fmt.Fprintf(&b, "  TSD RS(35,32)/GF(2^16): 4-chip miss rate %.2e\n", tsd4.MissRate())
	return b.String()
}

// Fig1 formats the design-point comparison.
func Fig1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: DRAM reliability design points\n")
	fmt.Fprintf(&b, "%-10s %18s %12s %12s  %s\n", "scheme", "eff. capacity", "DUE", "SDC", "performance")
	for _, p := range reliability.DesignPoints(reliability.Default()) {
		fmt.Fprintf(&b, "%-10s %17.1f%% %12.2e %12.2e  %s\n",
			p.Name, p.EffectiveCapacity*100, p.Rates.DUE, p.Rates.SDC, p.PerfDelta)
	}
	return b.String()
}

// FormatFig6 renders the speedup figure as a table with the paper's geomean
// groups.
func FormatFig6(p *PerfResult) string {
	t := stats.Table{
		Title:   "Fig 6: speedup over baseline NUMA (benchmarks in descending MPKI)",
		Schemes: p.Schemes,
	}
	for _, r := range p.Rows {
		t.Rows = append(t.Rows, stats.Row{Name: r.Name, MPKI: r.MPKI, Values: r.Speedup})
	}
	return t.String()
}

// FormatFig7 renders the sharing-pattern distribution of the baseline runs.
func FormatFig7(p *PerfResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: sharing pattern in benchmarks (baseline NUMA classification)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s  %s\n",
		"benchmark", "priv-read", "read-only", "read/write", "priv-RW", "better protocol")
	for _, r := range p.Rows {
		better := "allow"
		if r.Speedup["deny"] > r.Speedup["allow"] {
			better = "deny"
		}
		fmt.Fprintf(&b, "%-16s %12.3f %12.3f %12.3f %12.3f  %s\n",
			r.Name, r.Mix[0], r.Mix[1], r.Mix[2], r.Mix[3], better)
	}
	return b.String()
}

// FormatFig8 renders normalised inter-socket traffic.
func FormatFig8(p *PerfResult) string {
	t := stats.Table{
		Title:   "Fig 8: inter-socket traffic (normalized to baseline NUMA; lower is better)",
		Schemes: []string{"allow", "deny"},
	}
	for _, r := range p.Rows {
		t.Rows = append(t.Rows, stats.Row{Name: r.Name, MPKI: r.MPKI, Values: r.Traffic})
	}
	return t.String()
}

// FormatEnergy renders the Section VII EDP study: the paper's accounting
// plus the idle-memory-aware variant its text sketches.
func FormatEnergy(p *PerfResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Energy: EDP normalized to baseline NUMA (geomean over all benchmarks)\n")
	fmt.Fprintf(&b, "%-10s %14s %20s %14s\n", "scheme", "memory-EDP", "mem-EDP(idle-aware)", "system-EDP")
	for _, s := range []string{"allow", "deny", "dynamic"} {
		mem, sys := p.GeomeanEDP(s)
		var idle []float64
		for _, r := range p.Rows {
			idle = append(idle, r.MemEDPIdle[s])
		}
		fmt.Fprintf(&b, "%-10s %14.3f %20.3f %14.3f\n", s, mem, stats.Geomean(idle), sys)
	}
	return b.String()
}

// Fig9Variants are the allow-protocol configurations of Fig 9.
var Fig9Variants = []string{"allow-2k", "allow-4k", "allow-coarse", "allow-oracle"}

// Fig9 runs the allow-protocol optimization study: default 2K entries, 4K
// entries, coarse-grain regions, and the oracular ceiling.
func (r Runner) Fig9() (*PerfResult, error) {
	mkCfg := func(variant string) topology.Config {
		cfg := topology.Default(topology.ProtoAllow)
		switch variant {
		case "allow-4k":
			cfg.ReplicaDirEntries = 4096
		case "allow-coarse":
			cfg.CoarseGrain = true
		case "allow-oracle":
			cfg.Oracular = true
		}
		return cfg
	}
	specs, err := r.suite()
	if err != nil {
		return nil, err
	}
	var cells []cell
	for _, spec := range specs {
		cells = append(cells, cell{spec: spec, variant: "baseline",
			cfg: topology.Default(topology.ProtoBaseline)})
		for _, v := range Fig9Variants {
			cells = append(cells, cell{spec: spec, variant: v, cfg: mkCfg(v)})
		}
	}
	results, err := r.runMatrix(cells)
	if err != nil {
		return nil, err
	}
	pr := &PerfResult{Schemes: Fig9Variants}
	for _, spec := range specs {
		base := results[spec.Name+"/baseline"]
		row := Row{Name: spec.Name, MPKI: base.Counters.MPKI(),
			Speedup: map[string]float64{}, Traffic: map[string]float64{},
			MemEDP: map[string]float64{}, SysEDP: map[string]float64{}}
		for _, v := range Fig9Variants {
			res := results[spec.Name+"/"+v]
			row.Speedup[v] = stats.Speedup(base.Cycles, res.Cycles)
			row.Traffic[v] = ratio(res.Counters.LinkBytes, base.Counters.LinkBytes)
		}
		pr.Rows = append(pr.Rows, row)
	}
	sortRows(pr)
	return pr, nil
}

// FormatFig9 renders the optimization study.
func FormatFig9(p *PerfResult) string {
	t := stats.Table{
		Title:   "Fig 9: allow-based protocol optimizations (speedup over baseline NUMA)",
		Schemes: p.Schemes,
	}
	for _, r := range p.Rows {
		t.Rows = append(t.Rows, stats.Row{Name: r.Name, MPKI: r.MPKI, Values: r.Speedup})
	}
	return t.String()
}

// Fig10Latencies are the inter-socket latencies swept (ns, one way).
var Fig10Latencies = []float64{30, 50, 60}

// Fig10Result holds geomean speedups per (latency, scheme, group).
type Fig10Result struct {
	// Geomeans[latency][scheme] for groups top10/top15/all.
	Top10, Top15, All map[float64]map[string]float64
}

// Fig10 sweeps the inter-socket link latency for allow and deny.
func (r Runner) Fig10() (*Fig10Result, error) {
	schemes := []topology.Protocol{topology.ProtoAllow, topology.ProtoDeny}
	specs, err := r.suite()
	if err != nil {
		return nil, err
	}
	var cells []cell
	for _, spec := range specs {
		for _, ns := range Fig10Latencies {
			bcfg := topology.Default(topology.ProtoBaseline)
			bcfg.InterSocketNs = ns
			cells = append(cells, cell{spec: spec,
				variant: fmt.Sprintf("baseline-%g", ns), cfg: bcfg})
			for _, p := range schemes {
				cfg := topology.Default(p)
				cfg.InterSocketNs = ns
				cells = append(cells, cell{spec: spec,
					variant: fmt.Sprintf("%s-%g", p, ns), cfg: cfg})
			}
		}
	}
	results, err := r.runMatrix(cells)
	if err != nil {
		return nil, err
	}
	out := &Fig10Result{
		Top10: map[float64]map[string]float64{},
		Top15: map[float64]map[string]float64{},
		All:   map[float64]map[string]float64{},
	}
	// Order rows by the 50ns baseline MPKI (the paper's fixed ordering).
	type nameMPKI struct {
		name string
		mpki float64
	}
	var order []nameMPKI
	for _, spec := range specs {
		order = append(order, nameMPKI{spec.Name,
			results[spec.Name+"/baseline-50"].Counters.MPKI()})
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].mpki > order[j-1].mpki; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ns := range Fig10Latencies {
		out.Top10[ns] = map[string]float64{}
		out.Top15[ns] = map[string]float64{}
		out.All[ns] = map[string]float64{}
		for _, p := range schemes {
			var all []float64
			for _, nm := range order {
				base := results[nm.name+fmt.Sprintf("/baseline-%g", ns)]
				res := results[nm.name+fmt.Sprintf("/%s-%g", p, ns)]
				all = append(all, stats.Speedup(base.Cycles, res.Cycles))
			}
			out.Top10[ns][p.String()] = stats.Geomean(all[:min(10, len(all))])
			out.Top15[ns][p.String()] = stats.Geomean(all[:min(15, len(all))])
			out.All[ns][p.String()] = stats.Geomean(all)
		}
	}
	return out, nil
}

// FormatFig10 renders the latency sensitivity sweep.
func FormatFig10(f *Fig10Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: sensitivity to inter-socket latency (geomean speedup vs baseline at same latency)\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %10s\n", "latency", "scheme", "top-10", "top-15", "all")
	for _, ns := range Fig10Latencies {
		for _, s := range []string{"allow", "deny"} {
			fmt.Fprintf(&b, "%8.0fns %8s %10.3f %10.3f %10.3f\n",
				ns, s, f.Top10[ns][s], f.Top15[ns][s], f.All[ns][s])
		}
	}
	return b.String()
}

// Verify runs the model checker for both protocol families (Section V-C4).
func Verify() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Protocol verification (explicit-state model checking):\n")
	for _, m := range []mcheck.Mode{mcheck.Allow, mcheck.Deny} {
		fmt.Fprintf(&b, "  %s\n", mcheck.Check(m, mcheck.Options{}))
	}
	return b.String()
}

func sortRows(p *PerfResult) {
	rows := p.Rows
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].MPKI > rows[j-1].MPKI; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
