package experiments

import (
	"strings"
	"testing"

	"dve/internal/workload"
)

// subset keeps test runtime modest: two deny-winners, two allow-winners.
var subset = []string{"xsbench", "fft", "lbm", "lu"}

func testRunner() Runner {
	return Runner{Scale: Quick, Parallelism: 8, Workloads: subset}
}

func TestPerfShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	perf, err := testRunner().Perf()
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Rows) != len(subset) {
		t.Fatalf("%d rows, want %d", len(perf.Rows), len(subset))
	}
	for _, r := range perf.Rows {
		// Every benchmark, every scheme: >= baseline (the paper's "all
		// benchmarks for all schemes perform equal to or better").
		for s, v := range r.Speedup {
			if v < 0.99 {
				t.Errorf("%s/%s speedup %.3f below baseline", r.Name, s, v)
			}
		}
		// Protocol winner matches the paper's Fig 6 split.
		denyWins := r.Speedup["deny"] > r.Speedup["allow"]
		if workload.DenyWinners[r.Name] != denyWins {
			t.Errorf("%s: deny wins=%v, paper says %v", r.Name, denyWins, workload.DenyWinners[r.Name])
		}
		// Dvé reduces inter-socket traffic (Fig 8).
		for _, s := range []string{"allow", "deny"} {
			if r.Traffic[s] >= 1 {
				t.Errorf("%s/%s traffic ratio %.3f not reduced", r.Name, s, r.Traffic[s])
			}
		}
		// Dynamic tracks within a few percent of the better static scheme.
		best := r.Speedup["allow"]
		if r.Speedup["deny"] > best {
			best = r.Speedup["deny"]
		}
		if r.Speedup["dynamic"] < 0.93*best {
			t.Errorf("%s: dynamic %.3f far below best static %.3f", r.Name, r.Speedup["dynamic"], best)
		}
	}
	// MPKI ordering is descending.
	for i := 1; i < len(perf.Rows); i++ {
		if perf.Rows[i].MPKI > perf.Rows[i-1].MPKI {
			t.Fatal("rows not sorted by descending MPKI")
		}
	}
	// Dvé beats the Intel-mirroring++ baseline on geomean (Section VII).
	n := len(perf.Rows)
	if perf.Geomean("deny", n) <= perf.Geomean("intel-mirror++", n) {
		t.Error("deny does not beat Intel-mirroring++")
	}
	// Energy shape: system-EDP improves for the replication schemes.
	_, sys := perf.GeomeanEDP("deny")
	if sys >= 1 {
		t.Errorf("deny system-EDP %.3f did not improve", sys)
	}

	// Formatting smoke tests over real data.
	for _, out := range []string{
		FormatFig6(perf), FormatFig7(perf), FormatFig8(perf), FormatEnergy(perf),
	} {
		if len(out) == 0 {
			t.Fatal("empty formatted output")
		}
	}
	if !strings.Contains(FormatFig6(perf), "geomean") {
		t.Error("Fig 6 output missing geomeans")
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	r := Runner{Scale: Quick, Parallelism: 8, Workloads: []string{"fft", "lbm"}}
	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f9.Rows {
		// The oracle is the ceiling for every allow variant.
		for _, v := range Fig9Variants[:3] {
			if row.Speedup[v] > row.Speedup["allow-oracle"]+0.02 {
				t.Errorf("%s: %s (%.3f) exceeds the oracle (%.3f)",
					row.Name, v, row.Speedup[v], row.Speedup["allow-oracle"])
			}
		}
		// A larger replica directory never hurts.
		if row.Speedup["allow-4k"] < row.Speedup["allow-2k"]-0.01 {
			t.Errorf("%s: 4K entries (%.3f) worse than 2K (%.3f)",
				row.Name, row.Speedup["allow-4k"], row.Speedup["allow-2k"])
		}
	}
	if !strings.Contains(FormatFig9(f9), "allow-oracle") {
		t.Error("Fig 9 output missing variants")
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	r := Runner{Scale: Quick, Parallelism: 8, Workloads: []string{"xsbench", "bfs"}}
	f10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	// Deny's benefit grows with link latency and stays positive at 30ns.
	if f10.All[30]["deny"] <= 1.0 {
		t.Errorf("deny at 30ns = %.3f, want > 1 (paper: +10%% overall)", f10.All[30]["deny"])
	}
	if f10.All[60]["deny"] <= f10.All[30]["deny"] {
		t.Errorf("deny benefit does not grow with latency: 30ns %.3f vs 60ns %.3f",
			f10.All[30]["deny"], f10.All[60]["deny"])
	}
	if !strings.Contains(FormatFig10(f10), "30ns") {
		t.Error("Fig 10 output missing latencies")
	}
}

func TestTable1Output(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Chipkill", "Dve+TSD", "IBM RAIM", "Dve+Chipkill", "miss rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestFig1Output(t *testing.T) {
	out := Fig1()
	for _, want := range []string{"SEC-DED", "Chipkill", "Dvé", "43.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyOutput(t *testing.T) {
	out := Verify()
	if strings.Count(out, "VERIFIED") != 2 {
		t.Errorf("expected both protocols verified:\n%s", out)
	}
}

func TestSuiteComplete(t *testing.T) {
	if len(Suite()) != 20 {
		t.Fatalf("suite has %d workloads, want 20", len(Suite()))
	}
}

func TestRunnerUnknownWorkloadIgnored(t *testing.T) {
	r := Runner{Scale: Quick, Workloads: []string{"nosuch"}}
	if len(r.suite()) != 0 {
		t.Fatal("unknown workload not filtered")
	}
}

func TestFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	r := Runner{Scale: Quick, Parallelism: 8}
	results, err := r.FaultCampaign("graph500")
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FaultResult{}
	for _, res := range results {
		byKey[res.Scenario+"/"+res.Protocol] = res
	}
	for _, sc := range Scenarios() {
		base := byKey[sc.Name+"/baseline"]
		dve := byKey[sc.Name+"/deny"]
		// Dvé recovers everything single-sided; the baseline takes DUEs for
		// every fault the local code cannot correct.
		if dve.DUEs != 0 {
			t.Errorf("%s: Dvé took %d DUEs", sc.Name, dve.DUEs)
		}
		if base.DUEs == 0 {
			t.Errorf("%s: baseline took no DUEs despite an uncorrectable fault", sc.Name)
		}
		if dve.Recoveries == 0 {
			t.Errorf("%s: Dvé never recovered", sc.Name)
		}
	}
	// Section V-E: even with a whole controller failed (every home read on
	// socket 0 served by the replica), the degraded Dvé system retains
	// performance comparable to the fault-free baseline.
	ctl := byKey["controller/deny"]
	if ctl.RelPerf < 0.80 {
		t.Errorf("degraded Dvé retains only %.2fx of fault-free baseline (want >= 0.80)", ctl.RelPerf)
	}
	if out := FormatFaultCampaign(results); !strings.Contains(out, "controller") {
		t.Error("campaign output incomplete")
	}
}

func TestFaultCampaignUnknownWorkload(t *testing.T) {
	r := Runner{Scale: Quick}
	if _, err := r.FaultCampaign("nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
