package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// subset keeps test runtime modest: two deny-winners, two allow-winners.
var subset = []string{"xsbench", "fft", "lbm", "lu"}

func testRunner() Runner {
	return Runner{Scale: Quick, Parallelism: 8, Workloads: subset}
}

func TestPerfShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	perf, err := testRunner().Perf()
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Rows) != len(subset) {
		t.Fatalf("%d rows, want %d", len(perf.Rows), len(subset))
	}
	for _, r := range perf.Rows {
		// Every benchmark, every scheme: >= baseline (the paper's "all
		// benchmarks for all schemes perform equal to or better").
		for s, v := range r.Speedup {
			if v < 0.99 {
				t.Errorf("%s/%s speedup %.3f below baseline", r.Name, s, v)
			}
		}
		// Protocol winner matches the paper's Fig 6 split.
		denyWins := r.Speedup["deny"] > r.Speedup["allow"]
		if workload.DenyWinners[r.Name] != denyWins {
			t.Errorf("%s: deny wins=%v, paper says %v", r.Name, denyWins, workload.DenyWinners[r.Name])
		}
		// Dvé reduces inter-socket traffic (Fig 8).
		for _, s := range []string{"allow", "deny"} {
			if r.Traffic[s] >= 1 {
				t.Errorf("%s/%s traffic ratio %.3f not reduced", r.Name, s, r.Traffic[s])
			}
		}
		// Dynamic tracks within a few percent of the better static scheme.
		best := r.Speedup["allow"]
		if r.Speedup["deny"] > best {
			best = r.Speedup["deny"]
		}
		if r.Speedup["dynamic"] < 0.93*best {
			t.Errorf("%s: dynamic %.3f far below best static %.3f", r.Name, r.Speedup["dynamic"], best)
		}
	}
	// MPKI ordering is descending.
	for i := 1; i < len(perf.Rows); i++ {
		if perf.Rows[i].MPKI > perf.Rows[i-1].MPKI {
			t.Fatal("rows not sorted by descending MPKI")
		}
	}
	// Dvé beats the Intel-mirroring++ baseline on geomean (Section VII).
	n := len(perf.Rows)
	if perf.Geomean("deny", n) <= perf.Geomean("intel-mirror++", n) {
		t.Error("deny does not beat Intel-mirroring++")
	}
	// Energy shape: system-EDP improves for the replication schemes.
	_, sys := perf.GeomeanEDP("deny")
	if sys >= 1 {
		t.Errorf("deny system-EDP %.3f did not improve", sys)
	}

	// Formatting smoke tests over real data.
	for _, out := range []string{
		FormatFig6(perf), FormatFig7(perf), FormatFig8(perf), FormatEnergy(perf),
	} {
		if len(out) == 0 {
			t.Fatal("empty formatted output")
		}
	}
	if !strings.Contains(FormatFig6(perf), "geomean") {
		t.Error("Fig 6 output missing geomeans")
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	r := Runner{Scale: Quick, Parallelism: 8, Workloads: []string{"fft", "lbm"}}
	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f9.Rows {
		// The oracle is the ceiling for every allow variant.
		for _, v := range Fig9Variants[:3] {
			if row.Speedup[v] > row.Speedup["allow-oracle"]+0.02 {
				t.Errorf("%s: %s (%.3f) exceeds the oracle (%.3f)",
					row.Name, v, row.Speedup[v], row.Speedup["allow-oracle"])
			}
		}
		// A larger replica directory never hurts.
		if row.Speedup["allow-4k"] < row.Speedup["allow-2k"]-0.01 {
			t.Errorf("%s: 4K entries (%.3f) worse than 2K (%.3f)",
				row.Name, row.Speedup["allow-4k"], row.Speedup["allow-2k"])
		}
	}
	if !strings.Contains(FormatFig9(f9), "allow-oracle") {
		t.Error("Fig 9 output missing variants")
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	r := Runner{Scale: Quick, Parallelism: 8, Workloads: []string{"xsbench", "bfs"}}
	f10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	// Deny's benefit grows with link latency and stays positive at 30ns.
	if f10.All[30]["deny"] <= 1.0 {
		t.Errorf("deny at 30ns = %.3f, want > 1 (paper: +10%% overall)", f10.All[30]["deny"])
	}
	if f10.All[60]["deny"] <= f10.All[30]["deny"] {
		t.Errorf("deny benefit does not grow with latency: 30ns %.3f vs 60ns %.3f",
			f10.All[30]["deny"], f10.All[60]["deny"])
	}
	if !strings.Contains(FormatFig10(f10), "30ns") {
		t.Error("Fig 10 output missing latencies")
	}
}

func TestTable1Output(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Chipkill", "Dve+TSD", "IBM RAIM", "Dve+Chipkill", "miss rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestFig1Output(t *testing.T) {
	out := Fig1()
	for _, want := range []string{"SEC-DED", "Chipkill", "Dvé", "43.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyOutput(t *testing.T) {
	out := Verify()
	if strings.Count(out, "VERIFIED") != 2 {
		t.Errorf("expected both protocols verified:\n%s", out)
	}
}

func TestSuiteComplete(t *testing.T) {
	if len(Suite()) != 20 {
		t.Fatalf("suite has %d workloads, want 20", len(Suite()))
	}
}

func TestRunnerUnknownWorkloadErrors(t *testing.T) {
	// A typo in the workload list must fail the sweep, not silently shrink
	// it (it used to drop the name and run an incomplete matrix).
	r := Runner{Scale: Quick, Workloads: []string{"fft", "nosuch"}}
	if _, err := r.suite(); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("suite() err = %v, want mention of the unknown name", err)
	}
	if _, err := r.Perf(); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("Perf() err = %v, want mention of the unknown name", err)
	}
	if _, err := r.Fig9(); err == nil {
		t.Fatal("Fig9() accepted unknown workload")
	}
	if _, err := r.Fig10(); err == nil {
		t.Fatal("Fig10() accepted unknown workload")
	}
}

func TestScaleByName(t *testing.T) {
	for name, want := range map[string]Scale{"quick": Quick, "standard": Standard, "full": Full} {
		got, err := ScaleByName(name)
		if err != nil || got != want {
			t.Fatalf("ScaleByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRatioDegenerateBaseline(t *testing.T) {
	if got := ratio(5, 10); got != 0.5 {
		t.Fatalf("ratio(5,10) = %v", got)
	}
	// A zero baseline is a broken run: NaN, never a too-good-to-be-true 0.
	if got := ratio(5, 0); !math.IsNaN(got) {
		t.Fatalf("ratio(5,0) = %v, want NaN", got)
	}
}

func TestRunMatrixAggregatesAllErrors(t *testing.T) {
	// Two invalid cells (a non-positive footprint fails spec validation)
	// among one valid cell: both failures must be in the error, and the
	// message must be deterministic across scheduling orders.
	good, _ := workload.ByName("fft", 16)
	badA, badB := good, good
	badA.Name, badA.FootprintMB = "bad-a", 0
	badB.Name, badB.FootprintMB = "bad-b", 0
	cells := []cell{
		{spec: badA, variant: "deny", cfg: topology.Default(topology.ProtoDeny)},
		{spec: good, variant: "deny", cfg: topology.Default(topology.ProtoDeny)},
		{spec: badB, variant: "deny", cfg: topology.Default(topology.ProtoDeny)},
	}
	r := Runner{Scale: Scale{WarmupOps: 100, MeasureOps: 200}, Parallelism: 4}
	var msg string
	for i := 0; i < 3; i++ {
		out, err := r.runMatrix(cells)
		if err == nil {
			t.Fatal("runMatrix succeeded with broken cells")
		}
		for _, want := range []string{"2 of 3 cells failed", "bad-a/deny", "bad-b/deny"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q missing %q", err, want)
			}
		}
		if _, ok := out["fft/deny"]; !ok {
			t.Fatal("healthy cell missing from partial results")
		}
		if i == 0 {
			msg = err.Error()
		} else if err.Error() != msg {
			t.Fatal("joined error message not deterministic across runs")
		}
	}
}

func TestRunCellRetries(t *testing.T) {
	bad, _ := workload.ByName("fft", 16)
	bad.FootprintMB = 0
	r := Runner{Scale: Scale{WarmupOps: 10, MeasureOps: 10}, Retries: 2}
	_, _, err := r.RunCell(bad, topology.Default(topology.ProtoBaseline), false)
	if err == nil {
		t.Fatal("RunCell succeeded with a broken spec")
	}
	for _, want := range []string{"attempt 1:", "attempt 3:"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestMatrixCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{Scale: Quick, Parallelism: 8, Workloads: []string{"fft", "lbm"}, Cache: store}
	cold, err := r.Perf()
	if err != nil {
		t.Fatal(err)
	}
	if s := store.Stats(); s.Hits != 0 || s.Puts == 0 {
		t.Fatalf("cold pass stats %v, want all misses and some puts", s)
	}
	warm, err := r.Perf()
	if err != nil {
		t.Fatal(err)
	}
	if s := store.Stats(); s.Misses != s.Puts || s.Hits != s.Puts {
		t.Fatalf("warm pass stats %v, want every cold miss answered by a hit", s)
	}
	// The cached matrix reproduces the simulated one exactly.
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatal("cached Perf result differs from the simulated one")
	}
}

func TestBenchCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{Scale: Scale{WarmupOps: 2_000, MeasureOps: 5_000}, Cache: store}
	cold, err := r.Bench("quick")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.Bench("quick")
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock measurements are replayed, not re-measured, so repeated
	// bench reports are byte-identical.
	coldJSON, _ := json.MarshalIndent(cold, "", "  ")
	warmJSON, _ := json.MarshalIndent(warm, "", "  ")
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("warm bench report differs from cold:\n%s\n---\n%s", coldJSON, warmJSON)
	}
	if s := store.Stats(); s.Hits != uint64(len(warm.Runs)) {
		t.Fatalf("warm bench stats %v, want %d hits", s, len(warm.Runs))
	}
}

func TestFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix")
	}
	r := Runner{Scale: Quick, Parallelism: 8}
	results, err := r.FaultCampaign("graph500")
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FaultResult{}
	for _, res := range results {
		byKey[res.Scenario+"/"+res.Protocol] = res
	}
	for _, sc := range Scenarios() {
		base := byKey[sc.Name+"/baseline"]
		dve := byKey[sc.Name+"/deny"]
		// Dvé recovers everything single-sided; the baseline takes DUEs for
		// every fault the local code cannot correct.
		if dve.DUEs != 0 {
			t.Errorf("%s: Dvé took %d DUEs", sc.Name, dve.DUEs)
		}
		if base.DUEs == 0 {
			t.Errorf("%s: baseline took no DUEs despite an uncorrectable fault", sc.Name)
		}
		if dve.Recoveries == 0 {
			t.Errorf("%s: Dvé never recovered", sc.Name)
		}
	}
	// Section V-E: even with a whole controller failed (every home read on
	// socket 0 served by the replica), the degraded Dvé system retains
	// performance comparable to the fault-free baseline.
	ctl := byKey["controller/deny"]
	if ctl.RelPerf < 0.80 {
		t.Errorf("degraded Dvé retains only %.2fx of fault-free baseline (want >= 0.80)", ctl.RelPerf)
	}
	if out := FormatFaultCampaign(results); !strings.Contains(out, "controller") {
		t.Error("campaign output incomplete")
	}
}

func TestFaultCampaignUnknownWorkload(t *testing.T) {
	r := Runner{Scale: Quick}
	if _, err := r.FaultCampaign("nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRetryBackoffFullJitter pins the retry pacing contract: one sleep per
// re-run, each bounded by the growing full-jitter cap, deterministic for a
// given cell, and cheap to test because the sleep source is injectable.
func TestRetryBackoffFullJitter(t *testing.T) {
	bad, _ := workload.ByName("fft", 16)
	bad.FootprintMB = 0 // broken spec: every attempt fails
	r := Runner{
		Scale:           Scale{WarmupOps: 10, MeasureOps: 10},
		Retries:         3,
		RetryBackoff:    100 * time.Millisecond,
		RetryBackoffMax: 250 * time.Millisecond,
	}
	record := func(dst *[]time.Duration) func(time.Duration) {
		return func(d time.Duration) { *dst = append(*dst, d) }
	}
	var sleeps []time.Duration
	r.Sleep = record(&sleeps)
	if _, _, err := r.RunCell(bad, topology.Default(topology.ProtoBaseline), false); err == nil {
		t.Fatal("RunCell succeeded with a broken spec")
	}
	// 1 + Retries attempts, a sleep between each consecutive pair.
	if len(sleeps) != r.Retries {
		t.Fatalf("%d sleeps recorded, want %d", len(sleeps), r.Retries)
	}
	for i, d := range sleeps {
		max := r.RetryBackoff << uint(i)
		if max > r.RetryBackoffMax {
			max = r.RetryBackoffMax
		}
		if d < 0 || d > max {
			t.Fatalf("sleep %d = %v outside the full-jitter bound [0, %v]", i, d, max)
		}
	}

	// Deterministic: the same cell backs off identically on a re-run (the
	// jitter is seeded from the workload seed, not a global source).
	var again []time.Duration
	r.Sleep = record(&again)
	r.RunCell(bad, topology.Default(topology.ProtoBaseline), false)
	if len(again) != len(sleeps) {
		t.Fatalf("re-run slept %d times, want %d", len(again), len(sleeps))
	}
	for i := range sleeps {
		if sleeps[i] != again[i] {
			t.Fatalf("sleep %d differs across runs: %v vs %v", i, sleeps[i], again[i])
		}
	}

	// A different seed jitters differently (decorrelated cells).
	other := bad
	other.Seed = bad.Seed + 1
	var otherSleeps []time.Duration
	r.Sleep = record(&otherSleeps)
	r.RunCell(other, topology.Default(topology.ProtoBaseline), false)
	same := len(otherSleeps) == len(sleeps)
	if same {
		for i := range sleeps {
			if sleeps[i] != otherSleeps[i] {
				same = false
				break
			}
		}
	}
	if same && len(sleeps) > 1 {
		t.Fatal("different seeds produced identical backoff sequences")
	}

	// Negative base disables sleeping entirely.
	r.RetryBackoff = -1
	r.Sleep = func(time.Duration) { t.Fatal("sleep called with backoff disabled") }
	r.RunCell(bad, topology.Default(topology.ProtoBaseline), false)
}
