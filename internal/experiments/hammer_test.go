package experiments

import (
	"encoding/json"
	"testing"

	"dve/internal/results"
	"dve/internal/topology"
)

func testStore(t *testing.T) *results.Store {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func quickHammerConfig() HammerSweepConfig {
	return HammerSweepConfig{
		Intensities: []float64{0, 0.4},
		ScrubsCyc:   []uint64{2_000},
		MeasureOps:  20_000,
	}
}

// TestQuickScalePinned guards the value internal/ras mirrors as
// quickMeasureOps (it cannot import this package without a cycle).
func TestQuickScalePinned(t *testing.T) {
	if Quick.MeasureOps != 120_000 {
		t.Fatalf("Quick.MeasureOps=%d; update internal/ras quickMeasureOps to match", Quick.MeasureOps)
	}
}

func TestHammerSweepScoresDefense(t *testing.T) {
	r := Runner{Cache: testStore(t)}
	fig, err := r.HammerSweep(quickHammerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != 4 {
		t.Fatalf("%d cells, want 4 (2 protocols x 2 intensities x 1 scrub)", len(fig.Cells))
	}
	if fig.Failures > 0 {
		t.Fatalf("%d campaign failures: %+v", fig.Failures, fig.Cells)
	}
	byKey := map[string]HammerCell{}
	for _, c := range fig.Cells {
		byKey[c.Scenario] = c
	}
	base := byKey[hammerScenarioName(topology.ProtoBaseline, 0.4, 2_000)]
	deny := byKey[hammerScenarioName(topology.ProtoDeny, 0.4, 2_000)]
	if base.Crossings == 0 || base.Flips == 0 {
		t.Fatalf("unreplicated attack never landed: %+v", base)
	}
	if base.CorruptReads == 0 {
		t.Fatalf("unreplicated machine served no corrupted reads: %+v", base)
	}
	if deny.CorruptReads >= base.CorruptReads {
		t.Fatalf("replication did not reduce corrupted reads: deny=%d baseline=%d",
			deny.CorruptReads, base.CorruptReads)
	}
	if base.Slowdown <= 1 {
		t.Fatalf("attack cost the victim nothing: slowdown=%v", base.Slowdown)
	}
	for _, c := range fig.Cells {
		if c.Intensity == 0 && (c.Crossings != 0 || c.Flips != 0 || c.Slowdown != 1) {
			t.Fatalf("intensity-0 cell not quiescent: %+v", c)
		}
	}
}

func TestHammerSweepFigureDeterministic(t *testing.T) {
	marshal := func() []byte {
		t.Helper()
		r := Runner{Cache: testStore(t)}
		fig, err := r.HammerSweep(quickHammerConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(fig, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := marshal(), marshal(); string(a) != string(b) {
		t.Fatal("two identical sweeps produced different figure JSON")
	}
}
