package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"dve/internal/dve"
	"dve/internal/perf"
	"dve/internal/results"
	"dve/internal/topology"
	"dve/internal/workload"
)

// benchMatrix is the fixed (workload, protocol) set the bench experiment
// measures: a baseline run (no replica machinery), the deny protocol on two
// contrasting sharing mixes, and the dynamic protocol (which exercises both
// families plus the switch path). Small enough for a CI smoke job, varied
// enough to notice a regression in any hot subsystem.
var benchMatrix = []struct {
	workload string
	protocol topology.Protocol
}{
	{"fft", topology.ProtoBaseline},
	{"fft", topology.ProtoDeny},
	{"graph500", topology.ProtoDeny},
	{"canneal", topology.ProtoDynamic},
}

// benchKey addresses one bench measurement. Unlike simulation cells, a
// bench run measures the *simulator* (wall time, allocations), so the Go
// toolchain and platform are part of what the numbers are a function of and
// join the key; a cached entry replays the cold run's measurements, which
// keeps a repeated bench report byte-identical.
type benchKey struct {
	Workload   workload.Spec   `json:"workload"`
	Config     topology.Config `json:"config"`
	WarmupOps  uint64          `json:"warmup_ops"`
	MeasureOps uint64          `json:"measure_ops"`
	Scale      string          `json:"scale"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	// Engine is the *requested* mode ("serial", "parallel", ...), not the
	// executed family: serial and parallel produce identical simulation
	// results but different wall times, and wall time is what a bench
	// entry caches.
	Engine string `json:"engine"`
	// GOMAXPROCS joins the key because the parallel engine's wall time is
	// a function of how many CPUs the host scheduler offers.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// BenchModes resolves a dvebench -engine flag value into the engine modes
// one bench report measures. "both" (the default) runs every cell under the
// serial and the parallel partitioned engine back-to-back, so the report
// itself shows what the worker goroutines cost or save on this host.
func BenchModes(name string) ([]dve.EngineMode, error) {
	if name == "" || name == "both" {
		return []dve.EngineMode{dve.EngineSerial, dve.EngineParallel}, nil
	}
	m, err := dve.ParseEngineMode(name)
	if err != nil {
		return nil, err
	}
	return []dve.EngineMode{m}, nil
}

// Bench measures the simulator's own performance: each matrix cell runs
// serially under perf.Measure (parallel runs would pollute each other's
// wall time and MemStats deltas) and the measurements land in a perf.Report
// ready to be written as BENCH_<scale>.json. Each cell is measured once per
// requested engine mode (nil means Runner.Engine alone), so one report can
// hold the serial/parallel comparison. With a cache configured, previously
// measured cells are replayed from disk instead of re-run.
func (r Runner) Bench(scaleName string, modes ...dve.EngineMode) (*perf.Report, error) {
	if len(modes) == 0 {
		modes = []dve.EngineMode{r.Engine}
	}
	rep := perf.NewReport(scaleName)
	for _, c := range benchMatrix {
		spec, ok := workload.ByName(c.workload, 16)
		if !ok {
			return nil, fmt.Errorf("bench: unknown workload %q", c.workload)
		}
		cfg := topology.Default(c.protocol)
		for _, mode := range modes {
			rm := r
			rm.Engine = mode
			run, err := rm.benchOne(scaleName, spec, cfg, mode)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s/%s: %w", c.workload, c.protocol, mode, err)
			}
			rep.Add(run)
		}
	}
	return rep, nil
}

// benchOne measures (or replays from cache) one workload/protocol cell
// under one engine mode.
func (r Runner) benchOne(scaleName string, spec workload.Spec, cfg topology.Config, mode dve.EngineMode) (perf.Run, error) {
	var key results.Key
	if r.Cache != nil {
		k, err := results.HashKey("bench", benchKey{
			Workload:   spec,
			Config:     cfg,
			WarmupOps:  r.Scale.WarmupOps,
			MeasureOps: r.Scale.MeasureOps,
			Scale:      scaleName,
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Engine:     mode.String(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			return perf.Run{}, err
		}
		key = k
		var cached perf.Run
		if r.Cache.Get(key, &cached) {
			return cached, nil
		}
	}
	var res *dve.Result
	var err error
	run := perf.Measure(spec.Name, cfg.Protocol.String(), func() (uint64, uint64) {
		res, err = r.runOne(spec, cfg, false)
		if err != nil {
			return 0, 0
		}
		return r.Scale.WarmupOps + r.Scale.MeasureOps, res.Cycles
	})
	if err != nil {
		return perf.Run{}, err
	}
	run.Engine = res.Engine
	run.Workers = res.Workers
	if r.Cache != nil {
		if err := r.Cache.Put(key, run); err != nil {
			return perf.Run{}, err
		}
	}
	return run, nil
}

// FormatBench renders a perf report as a human-readable table.
func FormatBench(rep *perf.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator performance (%s scale, %s %s/%s, GOMAXPROCS=%d)\n",
		rep.Scale, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-12s %-14s %-14s %10s %12s %12s %12s\n",
		"workload", "protocol", "engine", "wall ms", "kops/s", "allocs/op", "B/op")
	for _, r := range rep.Runs {
		eng := r.Engine
		if eng == "" {
			eng = "legacy" // pre-schema-2 cached entries
		}
		if r.Workers > 1 {
			eng = fmt.Sprintf("%s/%dw", eng, r.Workers)
		}
		fmt.Fprintf(&b, "%-12s %-14s %-14s %10.1f %12.0f %12.2f %12.1f\n",
			r.Workload, r.Protocol, eng, r.WallMS, r.OpsPerSec/1e3, r.AllocsPerOp, r.BytesPerOp)
	}
	return b.String()
}
