// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (reliability), Fig 1 (design points), Fig 6 (speedup),
// Fig 7 (sharing classes), Fig 8 (inter-socket traffic), Fig 9 (allow-
// protocol optimizations), Fig 10 (link-latency sensitivity), and the
// Section VII energy study. cmd/dvebench and the repository's benchmarks
// are thin wrappers over this package.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dve/internal/dve"
	"dve/internal/energy"
	"dve/internal/obslog"
	"dve/internal/results"
	"dve/internal/stats"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Scale sets how many operations each simulation runs. Results stabilise
// with size; Quick is meant for tests and benchmarks.
type Scale struct {
	WarmupOps  uint64
	MeasureOps uint64
}

// Predefined scales.
var (
	Quick    = Scale{WarmupOps: 50_000, MeasureOps: 120_000}
	Standard = Scale{WarmupOps: 150_000, MeasureOps: 350_000}
	Full     = Scale{WarmupOps: 400_000, MeasureOps: 1_200_000}
)

// ScaleByName resolves the CLI scale names.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "standard":
		return Standard, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (quick|standard|full)", name)
}

// Runner executes simulation matrices.
type Runner struct {
	Scale Scale
	// Parallelism bounds concurrent simulations (each is single-threaded
	// and deterministic). 0 means 8.
	Parallelism int
	// Engine selects the simulation engine for every cell (see
	// dve.EngineMode). The default, dve.EngineAuto, partitions per socket
	// when the configuration allows it and uses worker goroutines when
	// GOMAXPROCS offers real parallelism.
	Engine dve.EngineMode
	// Workloads restricts the benchmark set (nil = the full Table III
	// suite). Unknown names are an error, not a silent shrink: a typo must
	// not quietly drop a column from a paper figure.
	Workloads []string
	// Cache, when set, is consulted before every cell simulation and filled
	// with the results of cells that had to run, so a repeated matrix is
	// served from disk (see internal/results for the key scheme).
	Cache *results.Store
	// Retries re-runs a failed cell up to this many additional times before
	// the failure is reported. The simulation itself is deterministic, so
	// this only absorbs host-level failures (an evicted cache file, an I/O
	// hiccup), not simulation bugs.
	Retries int
	// RetryBackoff is the base delay before re-running a failed cell,
	// growing as full-jitter exponential backoff (uniform in
	// [0, min(RetryBackoffMax, base·2^attempt)]): a transiently-broken
	// cache dir or disk gets breathing room instead of an immediate
	// hammering, and jitter decorrelates parallel cells that failed
	// together. 0 means 100ms. Negative disables sleeping entirely.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff. 0 means 5s.
	RetryBackoffMax time.Duration
	// Sleep is the retry sleep source; nil means time.Sleep. Tests inject a
	// recorder so retry paths stay fast and deterministic.
	Sleep func(time.Duration)
	// Log, when set, receives cell-lifecycle events (cache hit/miss, retry,
	// final failure) from the cached runner. The nil logger is fully
	// disabled and costs one branch per site; events never influence the
	// simulation, so logged and unlogged sweeps are byte-identical.
	Log *obslog.Logger
}

func (r Runner) parallelism() int {
	if r.Parallelism <= 0 {
		return 8
	}
	return r.Parallelism
}

// suite resolves Runner.Workloads against the Table III set. Every name
// must resolve; the error says which one did not so a misspelled sweep
// fails loudly instead of silently shrinking.
func (r Runner) suite() ([]workload.Spec, error) {
	if r.Workloads == nil {
		return Suite(), nil
	}
	out := make([]workload.Spec, 0, len(r.Workloads))
	for _, name := range r.Workloads {
		s, ok := workload.ByName(name, 16)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q in Runner.Workloads", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// Suite returns the full Table III benchmark set used by the experiments.
func Suite() []workload.Spec { return workload.Suite(16) }

// cellConfig builds the RunConfig for one cell — the single place the
// runner's scale and engine choice turn into simulation parameters, so the
// cache key and the actual run can never disagree about them.
func (r Runner) cellConfig(cfg topology.Config, classify bool) dve.RunConfig {
	return dve.RunConfig{
		Cfg:        cfg,
		WarmupOps:  r.Scale.WarmupOps,
		MeasureOps: r.Scale.MeasureOps,
		Engine:     r.Engine,
		Classify:   classify,
	}
}

// runOne simulates one workload under one configuration.
func (r Runner) runOne(spec workload.Spec, cfg topology.Config, classify bool) (*dve.Result, error) {
	return dve.Run(spec, r.cellConfig(cfg, classify))
}

// CellKey returns the content address of one simulation cell at the
// runner's scale: the hash of everything the result is a function of. The
// key carries the *executed* engine family, not the requested mode: serial
// and parallel partitioned runs are byte-identical (one cache entry serves
// both), while legacy results live in their own universe.
func (r Runner) CellKey(spec workload.Spec, cfg topology.Config, classify bool) (results.Key, error) {
	rc := r.cellConfig(cfg, classify)
	return results.CellKey{
		Workload:   spec,
		Config:     cfg,
		WarmupOps:  r.Scale.WarmupOps,
		MeasureOps: r.Scale.MeasureOps,
		Classify:   classify,
		Seed:       spec.Seed,
		Engine:     rc.ExecutedEngine(),
	}.Hash()
}

// retrySleep pauses before retry number attempt (0-based) with full-jitter
// exponential backoff. The jitter source is a splitmix64 step seeded from
// the workload seed and the attempt — deterministic for a given cell (the
// determinism analyzer bans the global rand source in this package), yet
// decorrelated across the cells of a parallel matrix.
func (r Runner) retrySleep(spec workload.Spec, attempt int) {
	base, max := r.RetryBackoff, r.RetryBackoffMax
	if base < 0 {
		return
	}
	if base == 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	cap := base << uint(attempt)
	if cap > max || cap <= 0 {
		cap = max
	}
	z := uint64(spec.Seed)*0x9e3779b97f4a7c15 + uint64(attempt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	d := time.Duration(float64(z>>11) / float64(1<<53) * float64(cap))
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

// runRetry is runOne with the runner's per-cell retry budget and
// full-jitter backoff between attempts; on final failure every attempt's
// error is reported. key is the cell's content address for log correlation
// ("" when the runner has no cache).
func (r Runner) runRetry(spec workload.Spec, cfg topology.Config, classify bool, key string) (*dve.Result, error) {
	var errs []error
	for attempt := 0; ; attempt++ {
		res, err := r.runOne(spec, cfg, classify)
		if err == nil {
			return res, nil
		}
		errs = append(errs, fmt.Errorf("attempt %d: %w", attempt+1, err))
		if attempt >= r.Retries {
			if r.Log.On(obslog.Error) {
				r.Log.Error("runner", "cell_failed", obslog.Event{
					Key: key, Attempt: attempt + 1,
					Detail: spec.Name + "/" + cfg.Protocol.String() + ": " + err.Error(),
				})
			}
			return nil, errors.Join(errs...)
		}
		if r.Log.On(obslog.Warn) {
			r.Log.Warn("runner", "cell_retry", obslog.Event{
				Key: key, Attempt: attempt + 1,
				Detail: spec.Name + "/" + cfg.Protocol.String() + ": " + err.Error(),
			})
		}
		r.retrySleep(spec, attempt)
	}
}

// RunCell runs one cell through the cache: a valid cached result is
// returned without simulating (hit = true); otherwise the cell is simulated
// (with retries) and the result stored. With no cache configured it always
// simulates. The sweep service and the figure matrices share this path.
func (r Runner) RunCell(spec workload.Spec, cfg topology.Config, classify bool) (res *dve.Result, hit bool, err error) {
	if r.Cache == nil {
		res, err = r.runRetry(spec, cfg, classify, "")
		return res, false, err
	}
	key, err := r.CellKey(spec, cfg, classify)
	if err != nil {
		return nil, false, err
	}
	var cached dve.Result
	if r.Cache.Get(key, &cached) {
		if r.Log.On(obslog.Debug) {
			r.Log.Debug("runner", "cell_cache_hit", obslog.Event{
				Key: string(key), Detail: spec.Name + "/" + cfg.Protocol.String(),
			})
		}
		return &cached, true, nil
	}
	if r.Log.On(obslog.Debug) {
		r.Log.Debug("runner", "cell_cache_miss", obslog.Event{
			Key: string(key), Detail: spec.Name + "/" + cfg.Protocol.String(),
		})
	}
	res, err = r.runRetry(spec, cfg, classify, string(key))
	if err != nil {
		return nil, false, err
	}
	if err := r.Cache.Put(key, res); err != nil {
		// A result we cannot store is still a failure worth surfacing: the
		// caller asked for a cached sweep and would silently lose the
		// speedup on every future run.
		return res, false, fmt.Errorf("caching %s/%s: %w", spec.Name, cfg.Protocol, err)
	}
	return res, false, nil
}

// cell identifies one simulation of a matrix.
type cell struct {
	spec     workload.Spec
	variant  string
	cfg      topology.Config
	classify bool
}

// runMatrix executes all cells with bounded parallelism and returns results
// keyed by (workload, variant). Cells run through the cache (RunCell). All
// failures are reported, not just the first: the returned error joins every
// failed cell, prefixed "workload/variant", in deterministic order.
func (r Runner) runMatrix(cells []cell) (map[string]*dve.Result, error) {
	out := make(map[string]*dve.Result, len(cells))
	var mu sync.Mutex
	var errs []error
	sem := make(chan struct{}, r.parallelism())
	var wg sync.WaitGroup
	for _, c := range cells {
		c := c
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, _, err := r.RunCell(c.spec, c.cfg, c.classify)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("%s/%s: %w", c.spec.Name, c.variant, err))
				return
			}
			out[c.spec.Name+"/"+c.variant] = res
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		// Completion order is scheduling-dependent; sort so the joined
		// error message is deterministic.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return out, fmt.Errorf("%d of %d cells failed: %w", len(errs), len(cells), errors.Join(errs...))
	}
	return out, nil
}

// Row is one benchmark's results across scheme variants.
type Row struct {
	Name    string
	MPKI    float64 // baseline LLC misses per kilo-op (the paper's ordering)
	Speedup map[string]float64
	Traffic map[string]float64 // link bytes normalised to baseline
	Mix     [4]float64         // Fig 7 classes from the baseline run

	// Energy-delay products normalised to baseline. MemEDP follows the
	// paper's accounting (the baseline is not charged for the idle DIMMs);
	// MemEDPIdle charges the baseline's idle provisioned capacity at IDD6
	// self-refresh — the paper's "even lower when using idle memory" note.
	MemEDP     map[string]float64
	MemEDPIdle map[string]float64
	SysEDP     map[string]float64

	results map[string]*dve.Result
}

// Result of a performance matrix (Fig 6/7/8/energy share one matrix).
type PerfResult struct {
	Rows    []Row // sorted by descending MPKI
	Schemes []string
}

// Geomean returns the scheme's geometric-mean speedup over the top-n rows.
func (p *PerfResult) Geomean(scheme string, n int) float64 {
	if n > len(p.Rows) {
		n = len(p.Rows)
	}
	vals := make([]float64, 0, n)
	for _, r := range p.Rows[:n] {
		vals = append(vals, r.Speedup[scheme])
	}
	return stats.Geomean(vals)
}

// GeomeanEDP returns geometric means of the normalised memory and system
// EDPs for a scheme over all rows.
func (p *PerfResult) GeomeanEDP(scheme string) (mem, sys float64) {
	var ms, ss []float64
	for _, r := range p.Rows {
		ms = append(ms, r.MemEDP[scheme])
		ss = append(ss, r.SysEDP[scheme])
	}
	return stats.Geomean(ms), stats.Geomean(ss)
}

// Perf runs the Fig 6 matrix: every benchmark under baseline, allow, deny,
// dynamic, and Intel-mirroring++. The same results carry Fig 7 (classes),
// Fig 8 (traffic) and the energy study.
func (r Runner) Perf() (*PerfResult, error) {
	protos := []topology.Protocol{
		topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
		topology.ProtoDynamic, topology.ProtoIntelMirror,
	}
	specs, err := r.suite()
	if err != nil {
		return nil, err
	}
	var cells []cell
	for _, spec := range specs {
		for _, p := range protos {
			cells = append(cells, cell{
				spec: spec, variant: p.String(),
				cfg:      topology.Default(p),
				classify: p == topology.ProtoBaseline,
			})
		}
	}
	results, err := r.runMatrix(cells)
	if err != nil {
		return nil, err
	}
	pr := &PerfResult{Schemes: []string{"allow", "deny", "dynamic", "intel-mirror++"}}
	params := energy.DDR4()
	for _, spec := range specs {
		base := results[spec.Name+"/baseline"]
		row := Row{
			Name: spec.Name, MPKI: base.Counters.MPKI(),
			Speedup: map[string]float64{}, Traffic: map[string]float64{},
			MemEDP: map[string]float64{}, MemEDPIdle: map[string]float64{},
			SysEDP:  map[string]float64{},
			Mix:     base.Counters.SharingMix(),
			results: map[string]*dve.Result{"baseline": base},
		}
		baseE := params.Energy(activity(base, false))
		baseEIdle := params.Energy(activity(base, true))
		baseMemEDP := energy.MemoryEDP(baseE, base.Cycles, 3.0)
		baseMemEDPIdle := energy.MemoryEDP(baseEIdle, base.Cycles, 3.0)
		for _, p := range protos[1:] {
			res := results[spec.Name+"/"+p.String()]
			row.results[p.String()] = res
			row.Speedup[p.String()] = stats.Speedup(base.Cycles, res.Cycles)
			row.Traffic[p.String()] = ratio(res.Counters.LinkBytes, base.Counters.LinkBytes)
			e := params.Energy(activity(res, false))
			eIdle := params.Energy(activity(res, true))
			row.MemEDP[p.String()] = energy.MemoryEDP(e, res.Cycles, 3.0) / baseMemEDP
			row.MemEDPIdle[p.String()] = energy.MemoryEDP(eIdle, res.Cycles, 3.0) / baseMemEDPIdle
			sb, sc := energy.SystemEDP(baseE, base.Cycles, e, res.Cycles, 3.0)
			row.SysEDP[p.String()] = sc / sb
		}
		pr.Rows = append(pr.Rows, row)
	}
	sort.SliceStable(pr.Rows, func(i, j int) bool { return pr.Rows[i].MPKI > pr.Rows[j].MPKI })
	return pr, nil
}

// provisionedChannels is the machine's physical channel count (the
// replicated configuration's): the same DIMMs exist whether or not Dvé uses
// them; with chargeIdle the unused difference is billed at IDD6
// self-refresh (the paper's "idle memory still uses energy for refresh"
// note), otherwise the paper's default accounting ignores it.
const provisionedChannels = 4

func activity(res *dve.Result, chargeIdle bool) energy.Activity {
	c := &res.Counters
	idle := 0
	if chargeIdle {
		idle = provisionedChannels - c.DRAMChannels
		if idle < 0 {
			idle = 0
		}
	}
	return energy.Activity{
		Activates:    c.RowMisses,
		Reads:        c.DRAMReads,
		Writes:       c.DRAMWrites,
		Channels:     c.DRAMChannels,
		IdleChannels: idle,
		Cycles:       res.Cycles,
		ClockGHz:     3.0,
	}
}

// ratio normalises a against b. A zero denominator means the baseline run
// was degenerate (e.g. no link traffic at all); that surfaces as NaN so
// report tables show the breakage rather than a false 0.
func ratio(a, b uint64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}
