package experiments

import (
	"fmt"
	"strings"

	"dve/internal/dve"
	"dve/internal/fault"
	"dve/internal/stats"
	"dve/internal/topology"
	"dve/internal/workload"
)

// Fault campaign: inject every fault class of the Fig 2 hierarchy into a
// running system under each protection scheme and tabulate the outcomes —
// recoveries, DUEs, degraded lines — plus the performance retained while
// degraded. This operationalises two of the paper's claims:
//
//   - Dvé recovers from failures at *any* level up to a whole memory
//     controller, where ECC-based schemes take a DUE (Section III);
//   - a degraded Dvé system ("only one working copy") performs comparably
//     to baseline NUMA because requests funnel to the surviving copy
//     (Section V-E).

// FaultScenario describes one injection.
type FaultScenario struct {
	Name  string
	Build func(cfg *topology.Config) *fault.Set
}

// Scenarios returns the standard campaign: one fault per level.
func Scenarios() []FaultScenario {
	mk := func(name string, f fault.Fault) FaultScenario {
		return FaultScenario{
			Name: name,
			Build: func(cfg *topology.Config) *fault.Set {
				s := fault.NewSet(cfg, fault.CodeTSD)
				s.Inject(f)
				return s
			},
		}
	}
	return []FaultScenario{
		// Cell wear-out cluster: hard cell faults scattered through the
		// address space (a single cell is statistically invisible to a
		// short run; a wear-out cluster is the realistic aging pattern).
		{
			Name: "cells",
			Build: func(cfg *topology.Config) *fault.Set {
				s := fault.NewSet(cfg, fault.CodeTSD)
				for i := 0; i < 2048; i++ {
					s.Inject(fault.Fault{Kind: fault.Cell, Socket: 0,
						Addr: topology.Addr(i * 16384)})
				}
				return s
			},
		},
		// A block of adjacent rows in one bank (chip-internal circuitry
		// failure affecting multiple rows, per Sridharan's field study).
		{
			Name: "rows",
			Build: func(cfg *topology.Config) *fault.Set {
				s := fault.NewSet(cfg, fault.CodeTSD)
				for r := uint64(0); r < 256; r++ {
					s.Inject(fault.Fault{Kind: fault.Row, Socket: 0,
						Channel: 0, Bank: 3, Row: r})
				}
				return s
			},
		},
		mk("bank", fault.Fault{Kind: fault.Bank, Socket: 0, Channel: 0, Bank: 5}),
		mk("chip", fault.Fault{Kind: fault.Chip, Socket: 0, Channel: 0, Chip: 2}),
		mk("channel", fault.Fault{Kind: fault.Channel, Socket: 0, Channel: 0}),
		mk("controller", fault.Fault{Kind: fault.Controller, Socket: 0}),
	}
}

// FaultResult is one scenario's outcome under one scheme.
type FaultResult struct {
	Scenario   string
	Protocol   string
	Recoveries uint64
	DUEs       uint64
	Degraded   uint64
	// RelPerf is cycles(baseline, fault-free) / cycles(scheme, faulted):
	// how much fault-free-baseline performance the faulted system retains.
	RelPerf float64
}

// FaultCampaign runs every scenario under the baseline (TSD detection, no
// second copy) and under Dvé (deny protocol).
func (r Runner) FaultCampaign(workloadName string) ([]FaultResult, error) {
	spec, ok := workload.ByName(workloadName, 16)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", workloadName)
	}
	run := func(p topology.Protocol, set *fault.Set) (*dve.Result, error) {
		cfg := topology.Default(p)
		rc := dve.RunConfig{
			Cfg:        cfg,
			WarmupOps:  r.Scale.WarmupOps,
			MeasureOps: r.Scale.MeasureOps,
		}
		if set != nil {
			rc.FaultFn = set.Predicate()
		}
		return dve.Run(spec, rc)
	}
	cleanBase, err := run(topology.ProtoBaseline, nil)
	if err != nil {
		return nil, err
	}
	var out []FaultResult
	for _, sc := range Scenarios() {
		for _, p := range []topology.Protocol{topology.ProtoBaseline, topology.ProtoDeny} {
			cfg := topology.Default(p)
			res, err := run(p, sc.Build(&cfg))
			if err != nil {
				return nil, err
			}
			out = append(out, FaultResult{
				Scenario:   sc.Name,
				Protocol:   p.String(),
				Recoveries: res.Counters.Recoveries,
				DUEs:       res.Counters.DetectedUncorrect,
				Degraded:   res.Counters.DegradedLines,
				RelPerf:    stats.Speedup(cleanBase.Cycles, res.Cycles),
			})
		}
	}
	return out, nil
}

// FormatFaultCampaign renders the campaign table.
func FormatFaultCampaign(results []FaultResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault campaign (TSD detection; Dvé = deny protocol; perf relative to fault-free baseline)\n")
	fmt.Fprintf(&b, "%-12s %-10s %12s %8s %10s %10s\n",
		"fault", "scheme", "recoveries", "DUEs", "degraded", "rel-perf")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %-10s %12d %8d %10d %10.3f\n",
			r.Scenario, r.Protocol, r.Recoveries, r.DUEs, r.Degraded, r.RelPerf)
	}
	return b.String()
}
