package experiments

import (
	"fmt"
	"strings"

	"dve/internal/ras"
	"dve/internal/topology"
)

// RowHammer sweep: the adversarial campaign matrix (attack intensity ×
// scrub cadence × protection scheme) rendered as figure data. Each cell is
// one ras campaign scenario — aggressor reads interleaved into the victim
// stream, threshold crossings flipping adjacent-row cells — and the columns
// score the defense ladder: how fast flips are detected, how many corrupted
// reads the machine served before the ladder caught up, and the repair
// traffic the attack forced. The unreplicated baseline shows the undefended
// outcome; the deny protocol shows what the replica + scrub ladder buys.

// HammerSweepConfig shapes the matrix. Zero values select the standard
// sweep: fft, intensities {0, 0.4, 0.7}, scrub intervals {2000, 8000},
// protocols {baseline, deny}, one seed, campaign-scale runs.
type HammerSweepConfig struct {
	Workload    string
	Intensities []float64
	ScrubsCyc   []uint64
	Protocols   []topology.Protocol
	Seeds       []int64
	MeasureOps  uint64
	DoubleSided bool
	// Threshold overrides the attack-time activation threshold
	// (0 = the campaign default; see ras.HammerScenario).
	Threshold uint32
	// OutDir, when non-empty, receives the per-run RAS journals.
	OutDir string
	// Progress, when set, observes each completed run.
	Progress func(ras.RunReport)
}

func (hc *HammerSweepConfig) normalize() {
	if hc.Workload == "" {
		hc.Workload = "fft"
	}
	if hc.Intensities == nil {
		hc.Intensities = []float64{0, 0.4, 0.7}
	}
	if hc.ScrubsCyc == nil {
		hc.ScrubsCyc = []uint64{2_000, 8_000}
	}
	if hc.Protocols == nil {
		hc.Protocols = []topology.Protocol{topology.ProtoBaseline, topology.ProtoDeny}
	}
	if hc.Seeds == nil {
		hc.Seeds = []int64{1}
	}
	if hc.MeasureOps == 0 {
		hc.MeasureOps = 50_000
	}
}

// HammerCell is one matrix cell, counters summed across seeds.
type HammerCell struct {
	Scenario  string  `json:"scenario"`
	Protocol  string  `json:"protocol"`
	Intensity float64 `json:"intensity"`
	ScrubCyc  uint64  `json:"scrub_cyc"`

	Crossings    uint64 `json:"crossings"`
	Flips        uint64 `json:"flips"`
	Detected     uint64 `json:"detected"`
	CorruptReads uint64 `json:"corrupt_reads"`
	Repairs      uint64 `json:"repairs"`
	// DetectLatencyAvg is mean cycles from flip injection to first
	// detection, over the flips that were detected (0 when none were).
	DetectLatencyAvg float64 `json:"detect_latency_avg"`
	// Cycles sums run lengths across seeds; Slowdown is relative to the
	// intensity-0 cell of the same protocol and scrub cadence (how much the
	// attack itself costs the victim).
	Cycles   uint64  `json:"cycles"`
	Slowdown float64 `json:"slowdown"`
	// Violations aggregates failed campaign assertions across seeds.
	Violations []string `json:"violations,omitempty"`
}

// HammerFigure is the sweep's figure data, deterministic for fixed config.
type HammerFigure struct {
	Workload   string       `json:"workload"`
	MeasureOps uint64       `json:"measure_ops"`
	Seeds      []int64      `json:"seeds"`
	Cells      []HammerCell `json:"cells"`
	Failures   int          `json:"failures"`
}

// hammerScenarioName is the campaign scenario (and journal file) name for a
// cell; intensity is encoded in percent so the name stays filesystem-safe.
func hammerScenarioName(proto topology.Protocol, intensity float64, scrub uint64) string {
	return fmt.Sprintf("hammer-%s-i%03d-scrub%d", proto, int(intensity*100+0.5), scrub)
}

// HammerSweep runs the matrix through the RAS campaign (serving repeated
// cells from the runner's cache) and aggregates per-cell defense scores.
func (r Runner) HammerSweep(hc HammerSweepConfig) (*HammerFigure, error) {
	hc.normalize()
	var scenarios []ras.Scenario
	for _, proto := range hc.Protocols {
		for _, intensity := range hc.Intensities {
			for _, scrub := range hc.ScrubsCyc {
				scenarios = append(scenarios, ras.Scenario{
					Name:             hammerScenarioName(proto, intensity, scrub),
					Workload:         hc.Workload,
					Protocol:         proto,
					ScrubIntervalCyc: scrub,
					ScrubBatch:       16,
					Hammer: &ras.HammerScenario{
						Intensity:   intensity,
						DoubleSided: hc.DoubleSided,
						Threshold:   hc.Threshold,
					},
					// An attacked machine may serve detected-uncorrectable
					// reads (that is the phenomenon under measurement: always
					// for the unreplicated baseline, and for Dvé when both
					// copies flip within one scrub interval). SDC stays
					// forbidden. Intensity-0 cells revert to the strict model.
					AllowDUE: intensity > 0,
				})
			}
		}
	}
	res, err := ras.RunCampaign(ras.CampaignConfig{
		Seeds:      hc.Seeds,
		MeasureOps: hc.MeasureOps,
		Scenarios:  scenarios,
		OutDir:     hc.OutDir,
		Cache:      r.Cache,
		Progress:   hc.Progress,
	})
	if err != nil {
		return nil, err
	}

	byName := make(map[string]*HammerCell)
	fig := &HammerFigure{
		Workload:   hc.Workload,
		MeasureOps: hc.MeasureOps,
		Seeds:      hc.Seeds,
		// Cells is pre-sized so the byName pointers below stay valid.
		Cells:    make([]HammerCell, 0, len(scenarios)),
		Failures: res.Failures,
	}
	for _, proto := range hc.Protocols {
		for _, intensity := range hc.Intensities {
			for _, scrub := range hc.ScrubsCyc {
				name := hammerScenarioName(proto, intensity, scrub)
				fig.Cells = append(fig.Cells, HammerCell{
					Scenario:  name,
					Protocol:  proto.String(),
					Intensity: intensity,
					ScrubCyc:  scrub,
				})
				byName[name] = &fig.Cells[len(fig.Cells)-1]
			}
		}
	}
	latency := make(map[string]uint64)
	for _, run := range res.Runs {
		cell, ok := byName[run.Scenario]
		if !ok {
			continue
		}
		c := &run.Counters
		cell.Crossings += c.HammerCrossings
		cell.Flips += c.HammerFlips
		cell.Detected += c.HammerDetected
		cell.CorruptReads += c.HammerCorruptReads
		cell.Repairs += c.HammerRepairs
		cell.Cycles += run.Cycles
		latency[run.Scenario] += c.HammerDetectLatency
		cell.Violations = append(cell.Violations, run.Violations...)
	}
	for i := range fig.Cells {
		cell := &fig.Cells[i]
		if cell.Detected > 0 {
			cell.DetectLatencyAvg = float64(latency[cell.Scenario]) / float64(cell.Detected)
		}
		base := byName[hammerScenarioName(
			protoByName(cell.Protocol), 0, cell.ScrubCyc)]
		if base != nil && base.Cycles > 0 {
			cell.Slowdown = float64(cell.Cycles) / float64(base.Cycles)
		}
	}
	return fig, nil
}

// protoByName maps a cell's stored protocol string back to the enum (the
// sweep only ever stores strings it produced itself, so a miss is a bug).
func protoByName(s string) topology.Protocol {
	for _, p := range []topology.Protocol{
		topology.ProtoBaseline, topology.ProtoAllow, topology.ProtoDeny,
		topology.ProtoDynamic, topology.ProtoIntelMirror,
	} {
		if p.String() == s {
			return p
		}
	}
	panic(fmt.Sprintf("experiments: unknown protocol name %q", s))
}

// FormatHammer renders the sweep as a text table.
func FormatHammer(f *HammerFigure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RowHammer campaign: %s, %d ops, seeds %v (corrupt = DUE reads served while a flip was live)\n",
		f.Workload, f.MeasureOps, f.Seeds)
	fmt.Fprintf(&b, "%-10s %9s %9s %10s %6s %8s %8s %8s %12s %9s\n",
		"scheme", "intensity", "scrub", "crossings", "flips", "detect", "corrupt", "repairs", "latency(cyc)", "slowdown")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-10s %9.2f %9d %10d %6d %8d %8d %8d %12.0f %9.3f\n",
			c.Protocol, c.Intensity, c.ScrubCyc, c.Crossings, c.Flips,
			c.Detected, c.CorruptReads, c.Repairs, c.DetectLatencyAvg, c.Slowdown)
	}
	if f.Failures > 0 {
		fmt.Fprintf(&b, "%d runs failed campaign assertions\n", f.Failures)
	}
	return b.String()
}
