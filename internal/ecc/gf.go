// Package ecc implements the error-control codes Dvé builds on: Galois-field
// arithmetic, Hamming SEC-DED (72,64), Reed–Solomon codes over GF(2^8) used
// for Chipkill-style SSC-DSD correction and for detection-only DSD, a
// GF(2^16) Reed–Solomon detection code for TSD (as in Multi-ECC), and the
// DDR4 bus CRC-16. The fault package injects component failures into
// codewords encoded with these codecs to measure detection coverage
// empirically.
package ecc

// GF256 is the field GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the conventional choice for storage Reed–Solomon codes.
type GF256 struct {
	exp [512]byte
	log [256]int
}

// NewGF256 builds the log/antilog tables.
func NewGF256() *GF256 {
	f := &GF256{}
	x := 1
	for i := 0; i < 255; i++ {
		f.exp[i] = byte(x)
		f.log[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		f.exp[i] = f.exp[i-255]
	}
	return f
}

// Add returns a+b (XOR in characteristic 2).
func (f *GF256) Add(a, b byte) byte { return a ^ b }

// Mul returns a*b.
func (f *GF256) Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a/b; it panics on division by zero.
func (f *GF256) Div(a, b byte) byte {
	if b == 0 {
		panic("ecc: GF256 division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]-f.log[b]+255]
}

// Inv returns the multiplicative inverse; it panics on zero.
func (f *GF256) Inv(a byte) byte { return f.Div(1, a) }

// Exp returns alpha^n for the primitive element alpha.
func (f *GF256) Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return f.exp[n]
}

// Log returns log_alpha(a); it panics on zero.
func (f *GF256) Log(a byte) int {
	if a == 0 {
		panic("ecc: log of zero")
	}
	return f.log[a]
}

// GF16b is the field GF(2^16) with primitive polynomial
// x^16+x^12+x^3+x+1 (0x1100b), used by the 16-bit-symbol TSD code.
type GF16b struct {
	exp []uint16
	log []int
}

// NewGF16b builds the log/antilog tables (256 KiB; built once).
func NewGF16b() *GF16b {
	f := &GF16b{
		exp: make([]uint16, 2*65535),
		log: make([]int, 65536),
	}
	x := 1
	for i := 0; i < 65535; i++ {
		f.exp[i] = uint16(x)
		f.log[x] = i
		x <<= 1
		if x&0x10000 != 0 {
			x ^= 0x1100b
		}
	}
	for i := 65535; i < 2*65535; i++ {
		f.exp[i] = f.exp[i-65535]
	}
	return f
}

// Mul returns a*b in GF(2^16).
func (f *GF16b) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Exp returns alpha^n.
func (f *GF16b) Exp(n int) uint16 {
	n %= 65535
	if n < 0 {
		n += 65535
	}
	return f.exp[n]
}
