package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGF256Axioms(t *testing.T) {
	f := NewGF256()
	g := func(a, b, c byte) bool {
		// Commutativity, associativity, distributivity.
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGF256Inverse(t *testing.T) {
	f := NewGF256()
	for a := 1; a < 256; a++ {
		if f.Mul(byte(a), f.Inv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
}

func TestGF256DivPanicsOnZero(t *testing.T) {
	f := NewGF256()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on division by zero")
		}
	}()
	f.Div(3, 0)
}

func TestGF256ExpLog(t *testing.T) {
	f := NewGF256()
	for n := -300; n < 600; n += 7 {
		a := f.Exp(n)
		if a == 0 {
			t.Fatalf("Exp(%d) = 0", n)
		}
	}
	for a := 1; a < 256; a++ {
		if f.Exp(f.Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
}

func TestSECDEDRoundTrip(t *testing.T) {
	var s SECDED
	f := func(data uint64) bool {
		lo, hi := s.Encode(data)
		got, out := s.Decode(lo, hi)
		return got == data && out == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCorrectsAnySingleBit(t *testing.T) {
	var s SECDED
	data := uint64(0xDEADBEEFCAFEF00D)
	lo, hi := s.Encode(data)
	for p := 0; p < 73; p++ {
		clo, chi := FlipBits(lo, hi, p)
		got, out := s.Decode(clo, chi)
		if out != Corrected || got != data {
			t.Fatalf("bit %d: outcome=%v data ok=%v", p, out, got == data)
		}
	}
}

func TestSECDEDDetectsAnyDoubleBit(t *testing.T) {
	var s SECDED
	data := uint64(0x0123456789ABCDEF)
	lo, hi := s.Encode(data)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := r.Intn(73), r.Intn(73)
		if a == b {
			continue
		}
		clo, chi := FlipBits(lo, hi, a, b)
		if _, out := s.Decode(clo, chi); out != Detected {
			t.Fatalf("double flip (%d,%d) outcome=%v, want Detected", a, b, out)
		}
	}
}

func TestRS256RoundTrip(t *testing.T) {
	rs := NewRS256(18, 16)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		data := make([]byte, 16)
		r.Read(data)
		cw := rs.Encode(data)
		if rs.Detect(cw) {
			t.Fatal("clean codeword detected as erroneous")
		}
		out, res := rs.DecodeSSC(cw)
		if res != OK {
			t.Fatalf("clean decode outcome %v", res)
		}
		for j := range data {
			if out[j] != data[j] {
				t.Fatal("clean decode corrupted data")
			}
		}
	}
}

// Chipkill property: an arbitrary corruption of one full symbol (chip) is
// always corrected back to the original data.
func TestRS256CorrectsAnySingleSymbol(t *testing.T) {
	rs := NewRS256(18, 16)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		data := make([]byte, 16)
		r.Read(data)
		cw := rs.Encode(data)
		pos := r.Intn(18)
		err := byte(1 + r.Intn(255))
		cw[pos] ^= err
		out, res := rs.DecodeSSC(cw)
		if res != Corrected {
			t.Fatalf("symbol %d err %#x: outcome %v", pos, err, res)
		}
		for j := range data {
			if out[j] != data[j] {
				t.Fatalf("symbol %d: wrong correction", pos)
			}
		}
	}
}

func TestRS256DetectsDoubleSymbol(t *testing.T) {
	rs := NewRS256(18, 16)
	r := rand.New(rand.NewSource(4))
	detected, total := 0, 0
	for i := 0; i < 500; i++ {
		data := make([]byte, 16)
		r.Read(data)
		cw := rs.Encode(data)
		a := r.Intn(18)
		b := (a + 1 + r.Intn(17)) % 18
		cw[a] ^= byte(1 + r.Intn(255))
		cw[b] ^= byte(1 + r.Intn(255))
		_, res := rs.DecodeSSC(cw)
		total++
		if res == Detected {
			detected++
		}
	}
	// With r=2 check symbols, a two-symbol error can alias to a valid
	// single-symbol correction (miscorrection) — that is exactly the
	// detection/correction trade the paper describes in Section II
	// ("they trade off reduced error detection capability"). Most must
	// still be detected.
	if float64(detected)/float64(total) < 0.9 {
		t.Fatalf("only %d/%d double-symbol errors detected", detected, total)
	}
}

// Detection-only use: the same code never misses 1- or 2-symbol errors.
func TestRS256DetectOnlyGuarantees(t *testing.T) {
	rs := NewRS256(18, 16)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		data := make([]byte, 16)
		r.Read(data)
		cw := rs.Encode(data)
		k := 1 + r.Intn(2)
		perm := r.Perm(18)
		for _, p := range perm[:k] {
			cw[p] ^= byte(1 + r.Intn(255))
		}
		if !rs.Detect(cw) {
			t.Fatalf("%d-symbol error not detected", k)
		}
	}
}

func TestRS256Panics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRS256(16, 16) },
		func() { NewRS256(300, 16) },
		func() { NewRS256(18, 0) },
		func() { NewRS256(18, 16).Encode(make([]byte, 5)) },
		func() { NewRS256(18, 16).Syndromes(make([]byte, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRS16RoundTripAndTSD(t *testing.T) {
	rs := NewRS16(35, 32) // 64B line as 32 16-bit symbols + 3 checks
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		data := make([]uint16, 32)
		for j := range data {
			data[j] = uint16(r.Intn(1 << 16))
		}
		cw := rs.Encode(data)
		if rs.Detect(cw) {
			t.Fatal("clean RS16 codeword flagged")
		}
		// TSD guarantee: any 1..3 symbol errors detected.
		k := 1 + r.Intn(3)
		perm := r.Perm(35)
		for _, p := range perm[:k] {
			cw[p] ^= uint16(1 + r.Intn(1<<16-1))
		}
		if !rs.Detect(cw) {
			t.Fatalf("TSD missed a %d-symbol error", k)
		}
	}
}

func TestRS16FourSymbolDetectionIsStrong(t *testing.T) {
	rs := NewRS16(35, 32)
	r := rand.New(rand.NewSource(7))
	missed := 0
	for i := 0; i < 300; i++ {
		data := make([]uint16, 32)
		for j := range data {
			data[j] = uint16(r.Intn(1 << 16))
		}
		cw := rs.Encode(data)
		perm := r.Perm(35)
		for _, p := range perm[:4] {
			cw[p] ^= uint16(1 + r.Intn(1<<16-1))
		}
		if !rs.Detect(cw) {
			missed++
		}
	}
	if missed > 0 {
		// Probability ~2^-48 per trial; any miss indicates a bug.
		t.Fatalf("TSD missed %d/300 4-symbol errors", missed)
	}
}

func TestCRC16(t *testing.T) {
	c := NewCRC16()
	// Known-answer: CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := c.Sum([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC KAT = %#x, want 0x29B1", got)
	}
	data := []byte("the quick brown fox")
	sum := c.Sum(data)
	if !c.Check(data, sum) {
		t.Fatal("Check rejects correct sum")
	}
	data[3] ^= 0x40
	if c.Check(data, sum) {
		t.Fatal("Check accepts corrupted data")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OK: "ok", Corrected: "corrected", Detected: "detected",
		Miscorrected: "miscorrected", Outcome(9): "?",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q, want %q", o, o.String(), want)
		}
	}
}
