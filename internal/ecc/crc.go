package ecc

// CRC16 implements CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), standing in
// for the DDR4 write-CRC bus check the paper lists among Dvé's detection
// sources (Fig 2: "bus CRC").
type CRC16 struct {
	table [256]uint16
}

// NewCRC16 builds the lookup table.
func NewCRC16() *CRC16 {
	c := &CRC16{}
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		c.table[i] = crc
	}
	return c
}

// Sum computes the checksum of data.
func (c *CRC16) Sum(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ c.table[byte(crc>>8)^b]
	}
	return crc
}

// Check reports whether data matches the expected checksum.
func (c *CRC16) Check(data []byte, sum uint16) bool { return c.Sum(data) == sum }
