package ecc

// LogHash is an incremental multiset hash in the style of MemGuard (Chen &
// Zhang, the paper's [13]), which Section IV lists as an alternative
// detection source for Dvé. The memory controller maintains two running
// hashes: WriteHash accumulates every value written to memory, ReadHash
// every value read back. Over an epoch in which every written location is
// eventually read back exactly once (a scrub pass guarantees this), the two
// multisets must match; a mismatch reveals silent corruption anywhere in
// the path — with no per-line storage at all.
//
// The hash must be incremental and commutative (a multiset hash): we
// combine per-element hashes with addition mod 2^64, and use a strong
// per-element mix so single-bit differences diffuse.
type LogHash struct {
	acc   uint64
	count uint64
}

// mix64 is the SplitMix64 finalizer: a bijective 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add folds one (address, value) observation into the hash. Including the
// address binds values to their locations, so swapped lines are detected.
func (h *LogHash) Add(addr, value uint64) {
	h.acc += mix64(mix64(addr) ^ value)
	h.count++
}

// Remove cancels a previous Add (multiset subtraction) — used when a line
// is overwritten before being read back, so the epoch invariant tracks the
// *live* memory contents.
func (h *LogHash) Remove(addr, value uint64) {
	h.acc -= mix64(mix64(addr) ^ value)
	h.count--
}

// Sum returns the current accumulator.
func (h *LogHash) Sum() uint64 { return h.acc }

// Count returns the number of live observations.
func (h *LogHash) Count() uint64 { return h.count }

// Equal reports whether two hashes agree on both accumulator and count.
func (h *LogHash) Equal(o *LogHash) bool {
	return h.acc == o.acc && h.count == o.count
}

// Reset clears the hash for a new epoch.
func (h *LogHash) Reset() { h.acc, h.count = 0, 0 }

// EpochChecker pairs a write-side and a read-side hash over one epoch: the
// controller calls Write on every memory write (removing the previous value
// of the location) and Read on every scrubbed read-back. At the end of the
// epoch Check reports whether the memory image read back matches what was
// written.
type EpochChecker struct {
	writes LogHash
	reads  LogHash
	// prev remembers each location's last written value so overwrites can
	// be cancelled. (Real MemGuard keeps this implicitly: the overwrite
	// read-modify-writes the line, observing the old value.)
	prev map[uint64]uint64
}

// NewEpochChecker starts an empty epoch.
func NewEpochChecker() *EpochChecker {
	return &EpochChecker{prev: make(map[uint64]uint64)}
}

// Write records a memory write of value to addr.
func (e *EpochChecker) Write(addr, value uint64) {
	if old, ok := e.prev[addr]; ok {
		e.writes.Remove(addr, old)
	}
	e.writes.Add(addr, value)
	e.prev[addr] = value
}

// Read records a scrub read-back of value from addr.
func (e *EpochChecker) Read(addr, value uint64) {
	e.reads.Add(addr, value)
}

// Check reports whether the read-back multiset matches the live writes; it
// is called after a scrub pass has read every written location once.
func (e *EpochChecker) Check() bool {
	return e.writes.Equal(&e.reads)
}

// Written returns the number of live (not yet scrub-verified) locations.
func (e *EpochChecker) Written() int { return len(e.prev) }

// Reset begins a new epoch.
func (e *EpochChecker) Reset() {
	e.writes.Reset()
	e.reads.Reset()
	e.prev = make(map[uint64]uint64)
}
