package ecc

import "math/bits"

// SECDED implements the (72,64) Hamming single-error-correct,
// double-error-detect code used by conventional ECC DIMMs: 64 data bits, 7
// Hamming check bits plus one overall parity bit.
type SECDED struct{}

// Outcome classifies a decode result.
type Outcome int

const (
	// OK: no error detected.
	OK Outcome = iota
	// Corrected: a single-bit error was detected and repaired (CE).
	Corrected
	// Detected: an uncorrectable error was detected (DUE).
	Detected
	// Miscorrected: the decoder "corrected" to the wrong word — a silent
	// data corruption when it escapes, observable only in injection
	// experiments where the truth is known.
	Miscorrected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	case Miscorrected:
		return "miscorrected"
	}
	return "?"
}

// hamming positions: we place the 64 data bits into positions 1..72 skipping
// the power-of-two positions (1,2,4,8,16,32,64) which hold check bits;
// position 0 holds the overall parity.

// Encode returns the 72-bit codeword for a 64-bit word, packed as
// (parity | bits 1..71 of the extended Hamming code) in a uint128 split into
// two uint64s (hi holds bits 64..71).
func (SECDED) Encode(data uint64) (lo, hi uint64) {
	var cw [73]bool // cw[1..72]; cw[0] = overall parity
	di := 0
	for pos := 1; pos <= 72; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		cw[pos] = data&(1<<uint(di)) != 0
		di++
	}
	// Check bits.
	for p := 1; p <= 64; p <<= 1 {
		parity := false
		for pos := 1; pos <= 72; pos++ {
			if pos&p != 0 && pos&(pos-1) != 0 {
				parity = parity != cw[pos]
			}
		}
		cw[p] = parity
	}
	// Overall parity over positions 1..72.
	overall := false
	for pos := 1; pos <= 72; pos++ {
		overall = overall != cw[pos]
	}
	cw[0] = overall
	return packCW(cw[:])
}

func packCW(cw []bool) (lo, hi uint64) {
	for i := 0; i < 64; i++ {
		if cw[i] {
			lo |= 1 << uint(i)
		}
	}
	for i := 64; i < 73; i++ {
		if cw[i] {
			hi |= 1 << uint(i-64)
		}
	}
	return lo, hi
}

func unpackCW(lo, hi uint64) [73]bool {
	var cw [73]bool
	for i := 0; i < 64; i++ {
		cw[i] = lo&(1<<uint(i)) != 0
	}
	for i := 64; i < 73; i++ {
		cw[i] = hi&(1<<uint(i-64)) != 0
	}
	return cw
}

// Decode checks a possibly corrupted codeword and returns the decoded data
// and the outcome. Single-bit errors are corrected; double-bit errors are
// detected; wider errors may alias (SEC-DED's known limitation — the reason
// stronger codes exist).
func (s SECDED) Decode(lo, hi uint64) (data uint64, outcome Outcome) {
	cw := unpackCW(lo, hi)
	syndrome := 0
	for p := 1; p <= 64; p <<= 1 {
		parity := false
		for pos := 1; pos <= 72; pos++ {
			if pos&p != 0 {
				parity = parity != cw[pos]
			}
		}
		if parity {
			syndrome |= p
		}
	}
	overall := false
	for pos := 0; pos <= 72; pos++ {
		overall = overall != cw[pos]
	}

	switch {
	case syndrome == 0 && !overall:
		return s.extract(cw), OK
	case syndrome == 0 && overall:
		// Error in the overall parity bit itself.
		return s.extract(cw), Corrected
	case overall:
		// Odd number of errors: assume single, correct it.
		if syndrome <= 72 {
			cw[syndrome] = !cw[syndrome]
			return s.extract(cw), Corrected
		}
		return s.extract(cw), Detected
	default:
		// Even error count with nonzero syndrome: uncorrectable.
		return s.extract(cw), Detected
	}
}

func (SECDED) extract(cw [73]bool) uint64 {
	var data uint64
	di := 0
	for pos := 1; pos <= 72; pos++ {
		if pos&(pos-1) == 0 {
			continue
		}
		if cw[pos] {
			data |= 1 << uint(di)
		}
		di++
	}
	return data
}

// FlipBits XORs the given bit positions (0..72) into the packed codeword —
// the fault-injection helper.
func FlipBits(lo, hi uint64, positions ...int) (uint64, uint64) {
	for _, p := range positions {
		if p < 64 {
			lo ^= 1 << uint(p)
		} else {
			hi ^= 1 << uint(p-64)
		}
	}
	return lo, hi
}

// Weight returns the number of set bits in the packed codeword (test helper).
func Weight(lo, hi uint64) int {
	return bits.OnesCount64(lo) + bits.OnesCount64(hi)
}
