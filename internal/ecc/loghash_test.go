package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Multiset property: the hash is order-independent.
func TestLogHashCommutative(t *testing.T) {
	f := func(pairs []uint32) bool {
		var a, b LogHash
		for _, p := range pairs {
			a.Add(uint64(p), uint64(p)*3)
		}
		// Reverse order.
		for i := len(pairs) - 1; i >= 0; i-- {
			b.Add(uint64(pairs[i]), uint64(pairs[i])*3)
		}
		return a.Equal(&b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHashRemoveCancelsAdd(t *testing.T) {
	var h LogHash
	h.Add(1, 100)
	h.Add(2, 200)
	h.Remove(1, 100)
	var want LogHash
	want.Add(2, 200)
	if !h.Equal(&want) {
		t.Fatal("Remove did not cancel Add")
	}
}

func TestLogHashDetectsSingleBitFlip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var clean, dirty LogHash
		n := 1 + r.Intn(50)
		addrs := make([]uint64, n)
		vals := make([]uint64, n)
		for i := 0; i < n; i++ {
			addrs[i], vals[i] = r.Uint64(), r.Uint64()
			clean.Add(addrs[i], vals[i])
		}
		flip := r.Intn(n)
		bit := uint64(1) << uint(r.Intn(64))
		for i := 0; i < n; i++ {
			v := vals[i]
			if i == flip {
				v ^= bit
			}
			dirty.Add(addrs[i], v)
		}
		if clean.Equal(&dirty) {
			t.Fatalf("trial %d: single-bit flip not detected", trial)
		}
	}
}

func TestLogHashDetectsSwappedLines(t *testing.T) {
	var a, b LogHash
	a.Add(0x1000, 7)
	a.Add(0x2000, 9)
	// Same values at swapped addresses.
	b.Add(0x1000, 9)
	b.Add(0x2000, 7)
	if a.Equal(&b) {
		t.Fatal("swapped lines not detected (address not bound)")
	}
}

func TestEpochCheckerCleanPass(t *testing.T) {
	e := NewEpochChecker()
	mem := map[uint64]uint64{}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := uint64(r.Intn(256)) * 64 // overwrites are common
		v := r.Uint64()
		mem[a] = v
		e.Write(a, v)
	}
	if e.Written() != len(mem) {
		t.Fatalf("Written = %d, want %d", e.Written(), len(mem))
	}
	// Scrub pass reads every live location back.
	for a, v := range mem {
		e.Read(a, v)
	}
	if !e.Check() {
		t.Fatal("clean epoch failed the check")
	}
}

func TestEpochCheckerDetectsCorruption(t *testing.T) {
	e := NewEpochChecker()
	mem := map[uint64]uint64{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := uint64(r.Intn(128)) * 64
		v := r.Uint64()
		mem[a] = v
		e.Write(a, v)
	}
	first := true
	for a, v := range mem {
		if first {
			v ^= 1 << 17 // one corrupted read-back
			first = false
		}
		e.Read(a, v)
	}
	if e.Check() {
		t.Fatal("corrupted epoch passed the check")
	}
}

func TestEpochCheckerReset(t *testing.T) {
	e := NewEpochChecker()
	e.Write(64, 1)
	e.Reset()
	if e.Written() != 0 {
		t.Fatal("Reset left live writes")
	}
	if !e.Check() {
		t.Fatal("empty epoch must pass")
	}
}

func TestLogHashCountTracksLiveEntries(t *testing.T) {
	var h LogHash
	h.Add(1, 1)
	h.Add(2, 2)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	h.Remove(1, 1)
	if h.Count() != 1 {
		t.Fatalf("Count after remove = %d", h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset incomplete")
	}
}
