package ecc

// RS256 is a systematic Reed–Solomon code over GF(2^8) with n total symbols
// and k data symbols (r = n-k check symbols). RS(18,16) with one symbol per
// DRAM chip is the Chipkill-style SSC-DSD configuration of Virtualized ECC
// the paper uses as its baseline; the same machinery with decode disabled is
// the DSD detection-only code.
type RS256 struct {
	f   *GF256
	n   int
	k   int
	gen []byte // generator polynomial, degree r, gen[0] = x^r coefficient (1)
}

// NewRS256 constructs the code; n must exceed k and fit the field (n<=255).
func NewRS256(n, k int) *RS256 {
	if n <= k || n > 255 || k <= 0 {
		panic("ecc: invalid RS(n,k)")
	}
	f := NewGF256()
	r := n - k
	// g(x) = prod_{i=0}^{r-1} (x - alpha^i)
	gen := []byte{1}
	for i := 0; i < r; i++ {
		next := make([]byte, len(gen)+1)
		for j, c := range gen {
			next[j] ^= f.Mul(c, 1) // shift (multiply by x)
			next[j+1] ^= f.Mul(c, f.Exp(i))
		}
		gen = next
	}
	return &RS256{f: f, n: n, k: k, gen: gen}
}

// N and K report the code geometry.
func (r *RS256) N() int { return r.n }

// K reports the data symbol count.
func (r *RS256) K() int { return r.k }

// Encode returns the n-symbol codeword data||parity. len(data) must be k.
func (r *RS256) Encode(data []byte) []byte {
	if len(data) != r.k {
		panic("ecc: RS256 Encode: wrong data length")
	}
	nr := r.n - r.k
	cw := make([]byte, r.n)
	copy(cw, data)
	// Polynomial long division of data(x)*x^r by g(x); remainder = parity.
	rem := make([]byte, nr)
	for _, d := range data {
		coef := d ^ rem[0]
		copy(rem, rem[1:])
		rem[nr-1] = 0
		if coef != 0 {
			for j := 1; j <= nr; j++ {
				rem[j-1] ^= r.f.Mul(coef, r.gen[j])
			}
		}
	}
	copy(cw[r.k:], rem)
	return cw
}

// Syndromes evaluates the received word at alpha^0..alpha^(r-1); an all-zero
// result means "no error detected".
func (r *RS256) Syndromes(cw []byte) []byte {
	if len(cw) != r.n {
		panic("ecc: RS256 Syndromes: wrong codeword length")
	}
	nr := r.n - r.k
	syn := make([]byte, nr)
	for j := 0; j < nr; j++ {
		var s byte
		a := r.f.Exp(j)
		// Horner evaluation: cw[0] is the highest-degree coefficient.
		for _, c := range cw {
			s = r.f.Mul(s, a) ^ c
		}
		syn[j] = s
	}
	return syn
}

// Detect reports whether any error is detected (nonzero syndrome). This is
// the DSD detection-only use of the code.
func (r *RS256) Detect(cw []byte) bool {
	for _, s := range r.Syndromes(cw) {
		if s != 0 {
			return true
		}
	}
	return false
}

// DecodeSSC attempts single-symbol correction (Chipkill): a single erroneous
// symbol of any pattern is repaired in place; inconsistent syndromes are
// reported as Detected. The returned slice aliases cw.
func (r *RS256) DecodeSSC(cw []byte) ([]byte, Outcome) {
	syn := r.Syndromes(cw)
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return cw[:r.k], OK
	}
	// Single-error hypothesis: S_j = e * alpha^(j*p) with p the error
	// location as a power of x.
	if syn[0] == 0 {
		return cw[:r.k], Detected
	}
	e := syn[0]
	p := 0
	if len(syn) > 1 {
		if syn[1] == 0 {
			return cw[:r.k], Detected
		}
		p = (r.f.Log(syn[1]) - r.f.Log(syn[0]) + 255) % 255
	}
	if p >= r.n {
		return cw[:r.k], Detected
	}
	// Verify the hypothesis against all syndromes.
	for j := range syn {
		if syn[j] != r.f.Mul(e, r.f.Exp(j*p)) {
			return cw[:r.k], Detected
		}
	}
	cw[r.n-1-p] ^= e
	return cw[:r.k], Corrected
}

// RS16 is a detection-only Reed–Solomon code over GF(2^16): the TSD (Triple
// Symbol Detect) configuration from Multi-ECC the paper equips Dvé with. Its
// r=3 16-bit check symbols detect any 3 corrupted symbols with certainty and
// wider corruption with probability 1 - 2^-48.
type RS16 struct {
	f *GF16b
	n int
	k int
}

// NewRS16 constructs the detection code (n <= 65535).
func NewRS16(n, k int) *RS16 {
	if n <= k || k <= 0 || n > 65535 {
		panic("ecc: invalid RS16(n,k)")
	}
	return &RS16{f: NewGF16b(), n: n, k: k}
}

// N and K report the geometry.
func (r *RS16) N() int { return r.n }

// K reports the data symbol count.
func (r *RS16) K() int { return r.k }

// Encode appends r check symbols chosen so that all syndromes are zero.
// For detection-only use, the check symbols are the syndromes of data||0s:
// appending them in dedicated positions and re-evaluating cancels exactly
// when the word is intact. We use a systematic construction via Vandermonde
// back-substitution on the three trailing positions.
func (r *RS16) Encode(data []uint16) []uint16 {
	if len(data) != r.k {
		panic("ecc: RS16 Encode: wrong data length")
	}
	nr := r.n - r.k
	cw := make([]uint16, r.n)
	copy(cw, data)
	// Compute syndromes of data||zeros, then solve for parity symbols p_t
	// (t = 0..nr-1 at positions n-1-t, i.e. x^t) such that
	// sum_t p_t * alpha^(j*t) = S_j for every j.
	syn := r.syndromes(cw)
	// Gaussian elimination on the small nr x nr Vandermonde system
	// M[j][t] = alpha^(j*t).
	m := make([][]uint16, nr)
	for j := 0; j < nr; j++ {
		m[j] = make([]uint16, nr+1)
		for t := 0; t < nr; t++ {
			m[j][t] = r.f.Exp(j * t)
		}
		m[j][nr] = syn[j]
	}
	for col := 0; col < nr; col++ {
		// Find pivot.
		piv := -1
		for row := col; row < nr; row++ {
			if m[row][col] != 0 {
				piv = row
				break
			}
		}
		m[col], m[piv] = m[piv], m[col]
		inv := r.inv(m[col][col])
		for t := col; t <= nr; t++ {
			m[col][t] = r.f.Mul(m[col][t], inv)
		}
		for row := 0; row < nr; row++ {
			if row == col || m[row][col] == 0 {
				continue
			}
			factor := m[row][col]
			for t := col; t <= nr; t++ {
				m[row][t] ^= r.f.Mul(factor, m[col][t])
			}
		}
	}
	for t := 0; t < nr; t++ {
		cw[r.n-1-t] = m[t][nr]
	}
	return cw
}

func (r *RS16) inv(a uint16) uint16 {
	if a == 0 {
		panic("ecc: GF16b inverse of zero")
	}
	return r.f.Exp(65535 - r.f.log[a])
}

func (r *RS16) syndromes(cw []uint16) []uint16 {
	nr := r.n - r.k
	syn := make([]uint16, nr)
	for j := 0; j < nr; j++ {
		var s uint16
		a := r.f.Exp(j)
		for _, c := range cw {
			s = r.f.Mul(s, a) ^ c
		}
		syn[j] = s
	}
	return syn
}

// Detect reports whether the received word fails the check.
func (r *RS16) Detect(cw []uint16) bool {
	if len(cw) != r.n {
		panic("ecc: RS16 Detect: wrong codeword length")
	}
	for _, s := range r.syndromes(cw) {
		if s != 0 {
			return true
		}
	}
	return false
}
