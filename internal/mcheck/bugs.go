package mcheck

// Injectable protocol bugs, used by the test suite to demonstrate that the
// checker actually catches the failure classes it claims to (a checker that
// verifies everything, including broken protocols, verifies nothing).
type Bugs struct {
	// SkipDenyPush: the home directory grants exclusive access to the home
	// side without notifying the replica directory. The replica then serves
	// stale data — the core bug the deny/allow machinery exists to prevent.
	SkipDenyPush bool
	// ServeWithoutEntry: the allow-protocol replica directory serves a read
	// from the replica even when it has no entry (treating absence as yes).
	ServeWithoutEntry bool
	// SkipDualWriteback: a home-side writeback updates only home memory,
	// never the replica.
	SkipDualWriteback bool
	// DropFetchData: an LLC whose eviction is in flight ignores fetch
	// probes instead of answering with the data it still holds (the
	// PutM/Fetch race resolved wrongly).
	DropFetchData bool
}

// activeBugs is consulted by the transition functions; it is only ever set
// by tests via CheckWithBugs.
var activeBugs Bugs

// CheckWithBugs runs Check with protocol mutations enabled. Not safe for
// concurrent use (tests only).
func CheckWithBugs(mode Mode, opts Options, bugs Bugs) Result {
	activeBugs = bugs
	defer func() { activeBugs = Bugs{} }()
	return Check(mode, opts)
}
