package mcheck

import (
	"fmt"
	"sort"
	"strings"
)

// Transition-table extraction. The paper publishes "the detailed state
// transition table for the replica controller" alongside its Murφ model;
// here the table is derived mechanically from the verified model itself:
// during exploration we record, for every replica-directory state and every
// incoming event, which next states occur — so the table is guaranteed to
// match the checked protocol.

// TableEntry is one (state, event) -> next-states row.
type TableEntry struct {
	State string
	Event string
	Next  []string
	Count int // occurrences across the explored state space
}

// rdStateName names replica-directory states per mode: in allow mode the
// absent state means "inaccessible", in deny mode "readable".
func rdStateName(mode Mode, st rdState, busy rdBusy, invPend bool, fetch uint8) string {
	base := ""
	switch st {
	case rAbsent:
		if mode == Deny {
			base = "I(readable)"
		} else {
			base = "I(no-entry)"
		}
	case rS:
		base = "S"
	case rM:
		base = "M"
	case rRM:
		base = "RM"
	}
	var mods []string
	switch busy {
	case rWaitHomeS:
		mods = append(mods, "IS_D")
	case rWaitHomeX:
		mods = append(mods, "IM_D")
	case rWaitPut:
		mods = append(mods, "MI_A")
	}
	if invPend {
		mods = append(mods, "InvPend")
	}
	if fetch == 1 {
		mods = append(mods, "FetchDown")
	} else if fetch == 2 {
		mods = append(mods, "FetchInv")
	}
	if len(mods) == 0 {
		return base
	}
	return base + "+" + strings.Join(mods, "+")
}

func eventName(t msgType) string {
	names := map[msgType]string{
		mGetS: "GetS(LLC)", mGetX: "GetX(LLC)", mPutM: "PutM(LLC)",
		mInvAck: "InvAck(LLC)", mData: "Data(LLC)",
		mGrantSCtrl: "GrantS-ctrl(home)", mGrantSData: "GrantS-data(home)",
		mGrantXCtrl: "GrantX-ctrl(home)", mGrantXData: "GrantX-data(home)",
		mRDPutAck: "PutAck(home)", mDeny: "Deny/Inv(home)",
		mFetchDown: "FetchDown(home)", mFetchInv: "FetchInv(home)",
		mReplWrite: "ReplWrite(home)",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("msg%d", t)
}

// ExtractTable explores the protocol and returns the replica-directory
// transition table observed over the full reachable state space. The
// protocol must verify; extraction runs on the verified model.
func ExtractTable(mode Mode) ([]TableEntry, error) {
	if r := Check(mode, Options{}); !r.OK() {
		return nil, fmt.Errorf("mcheck: %s protocol does not verify; no table extracted", mode)
	}
	type key struct{ state, event, next string }
	counts := map[key]int{}

	start := initial(mode)
	visited := map[string]bool{start.key(): true}
	frontier := []*state{start}
	for len(frontier) > 0 {
		var next []*state
		for _, s := range frontier {
			pre := rdStateName(s.mode, s.rdSt, s.rdBusy, s.rdInvPend, s.rdFetch)
			// Record transitions caused by messages the RD consumes.
			recordRD := func(ev string, ns *state) {
				post := rdStateName(ns.mode, ns.rdSt, ns.rdBusy, ns.rdInvPend, ns.rdFetch)
				counts[key{pre, ev, post}]++ // self-loops included
			}
			if m, ok := s.head(chRtoRD); ok {
				var sub succResult
				rdRecvLocal(&sub, s, m)
				for _, ns := range sub.next {
					recordRD(eventName(m.t), ns)
				}
			}
			if m, ok := s.head(chDtoRD); ok {
				var sub succResult
				rdRecvHome(&sub, s, m)
				for _, ns := range sub.next {
					recordRD(eventName(m.t), ns)
				}
			}
			// Advance the full frontier as usual.
			sr := successors(s)
			for _, ns := range sr.next {
				k := ns.key()
				if visited[k] {
					continue
				}
				visited[k] = true
				next = append(next, ns)
			}
		}
		frontier = next
	}

	// Collapse (state,event) -> sorted next-state sets.
	agg := map[[2]string]map[string]int{}
	for k, c := range counts {
		sk := [2]string{k.state, k.event}
		if agg[sk] == nil {
			agg[sk] = map[string]int{}
		}
		agg[sk][k.next] += c
	}
	var out []TableEntry
	for sk, nexts := range agg {
		var ns []string
		total := 0
		for n, c := range nexts {
			ns = append(ns, n)
			total += c
		}
		sort.Strings(ns)
		out = append(out, TableEntry{State: sk[0], Event: sk[1], Next: ns, Count: total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Event < out[j].Event
	})
	return out, nil
}

// FormatTable renders the transition table.
func FormatTable(mode Mode, entries []TableEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replica directory transition table (%s protocol, extracted from the verified model)\n", mode)
	fmt.Fprintf(&b, "%-24s %-22s -> %s\n", "state", "event", "next state(s)")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-24s %-22s -> %s   (x%d)\n",
			e.State, e.Event, strings.Join(e.Next, " | "), e.Count)
	}
	return b.String()
}
