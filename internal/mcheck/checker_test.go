package mcheck

import (
	"strings"
	"testing"
)

// The paper's verification claim (Section V-C4): both protocol families are
// deadlock-free and maintain the coherence invariants. These are exhaustive
// explorations of the bounded model (one address, two written values).
func TestAllowProtocolVerifies(t *testing.T) {
	r := Check(Allow, Options{})
	t.Log(r)
	if !r.OK() {
		for i, v := range r.Violations {
			if i > 4 {
				break
			}
			t.Errorf("violation: %v", v)
		}
	}
	if r.States < 1000 {
		t.Errorf("suspiciously small state space: %d", r.States)
	}
}

func TestDenyProtocolVerifies(t *testing.T) {
	r := Check(Deny, Options{})
	t.Log(r)
	if !r.OK() {
		for i, v := range r.Violations {
			if i > 4 {
				break
			}
			t.Errorf("violation: %v", v)
		}
	}
	if r.States < 1000 {
		t.Errorf("suspiciously small state space: %d", r.States)
	}
}

// A checker that cannot find bugs verifies nothing: each seeded protocol
// mutation must produce a violation of the expected class.
func TestCheckerCatchesSkippedDenyPush(t *testing.T) {
	for _, m := range []Mode{Allow, Deny} {
		r := CheckWithBugs(m, Options{StopAtFirst: true}, Bugs{SkipDenyPush: true})
		if r.OK() {
			t.Errorf("%v: skipping the deny/invalidate push went undetected", m)
			continue
		}
		t.Logf("%v caught: %s", m, r.Violations[0].Desc)
	}
}

func TestCheckerCatchesServeWithoutEntry(t *testing.T) {
	r := CheckWithBugs(Allow, Options{StopAtFirst: true}, Bugs{ServeWithoutEntry: true})
	if r.OK() {
		t.Fatal("allow protocol serving on a missing entry went undetected")
	}
	if !strings.Contains(r.Violations[0].Desc, "replica") &&
		!strings.Contains(r.Violations[0].Desc, "data-value") {
		t.Errorf("unexpected violation class: %s", r.Violations[0].Desc)
	}
}

func TestCheckerCatchesSkippedDualWriteback(t *testing.T) {
	for _, m := range []Mode{Allow, Deny} {
		r := CheckWithBugs(m, Options{StopAtFirst: true}, Bugs{SkipDualWriteback: true})
		if r.OK() {
			t.Errorf("%v: skipping the dual writeback went undetected", m)
			continue
		}
		t.Logf("%v caught: %s", m, r.Violations[0].Desc)
	}
}

func TestCheckerCatchesDroppedFetchData(t *testing.T) {
	caught := false
	for _, m := range []Mode{Allow, Deny} {
		r := CheckWithBugs(m, Options{StopAtFirst: true}, Bugs{DropFetchData: true})
		if !r.OK() {
			caught = true
			t.Logf("%v caught: %s", m, r.Violations[0].Desc)
		}
	}
	if !caught {
		t.Error("mishandled PutM/Fetch race went undetected in both modes")
	}
}

func TestStateBudget(t *testing.T) {
	r := Check(Allow, Options{MaxStates: 50})
	if r.OK() {
		t.Fatal("budget exhaustion must be reported as inconclusive")
	}
	if !strings.Contains(r.Violations[len(r.Violations)-1].Desc, "budget") {
		t.Errorf("missing budget marker: %v", r.Violations)
	}
}

func TestModeString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("Mode.String wrong")
	}
}

func TestResultString(t *testing.T) {
	r := Check(Deny, Options{})
	if !strings.Contains(r.String(), "VERIFIED") {
		t.Errorf("Result.String = %q", r.String())
	}
	bad := Result{Mode: Allow, Violations: []Violation{{Desc: "x", Depth: 3}}}
	if !strings.Contains(bad.String(), "FAILED") {
		t.Errorf("failed Result.String = %q", bad.String())
	}
	if bad.Violations[0].Error() != "depth 3: x" {
		t.Errorf("Violation.Error = %q", bad.Violations[0].Error())
	}
}

// Determinism: repeated explorations visit identical state spaces.
func TestCheckDeterministic(t *testing.T) {
	a := Check(Allow, Options{})
	b := Check(Allow, Options{})
	if a.States != b.States || a.Depth != b.Depth {
		t.Fatalf("nondeterministic exploration: %v vs %v", a, b)
	}
}

// A violation must come with a Murφ-style counterexample trace: a shortest
// path of states from reset to the violating transition.
func TestViolationTrace(t *testing.T) {
	r := CheckWithBugs(Deny, Options{StopAtFirst: true}, Bugs{SkipDenyPush: true})
	if r.OK() {
		t.Fatal("seeded bug not found")
	}
	if len(r.Trace) < 2 {
		t.Fatalf("trace has %d states, want a path", len(r.Trace))
	}
	// The trace starts at the reset state.
	if r.Trace[0] != initial(Deny).key() {
		t.Fatalf("trace does not start at reset: %q", r.Trace[0])
	}
	// The path length is consistent with BFS (shortest counterexample):
	// within the violation's depth plus one.
	if len(r.Trace) > r.Violations[0].Depth+2 {
		t.Fatalf("trace length %d exceeds violation depth %d", len(r.Trace), r.Violations[0].Depth)
	}
	// Clean runs carry no trace.
	if ok := Check(Deny, Options{}); ok.Trace != nil {
		t.Fatal("verified run has a counterexample trace")
	}
}

func TestExtractTable(t *testing.T) {
	for _, m := range []Mode{Allow, Deny} {
		entries, err := ExtractTable(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(entries) < 10 {
			t.Fatalf("%v: table has only %d rows", m, len(entries))
		}
		out := FormatTable(m, entries)
		// Core protocol rows must appear.
		for _, want := range []string{"GetS(LLC)", "Deny/Inv(home)", "GrantS-ctrl(home)"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v table missing %q", m, want)
			}
		}
		if m == Deny && !strings.Contains(out, "RM") {
			t.Error("deny table has no RM state")
		}
		if m == Allow && strings.Contains(out, "I(readable)") {
			t.Error("allow table uses deny-mode state naming")
		}
	}
}

func TestExtractTableRefusesBrokenProtocol(t *testing.T) {
	activeBugs = Bugs{SkipDenyPush: true}
	defer func() { activeBugs = Bugs{} }()
	if _, err := ExtractTable(Deny); err == nil {
		t.Fatal("table extracted from a non-verifying protocol")
	}
}
