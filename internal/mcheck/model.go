// Package mcheck is an explicit-state model checker for Dvé's Coherent
// Replication protocols, standing in for the paper's Murφ verification
// (Section V-C4). It models one address across the full agent set — the
// home-side LLC, the replica-side LLC, the home directory and the replica
// directory — connected by ordered (FIFO) channels as in the machine ("all
// links are ordered"), including the transient states and the writeback/
// fetch races. BFS over the reachable state space checks:
//
//   - SWMR: a writable copy never coexists with any other copy;
//   - data-value: every readable cached copy holds the last written value;
//   - replica-consistency: whenever the replica directory serves a read
//     from replica memory, that memory holds the last written value;
//   - deadlock freedom: every non-quiescent state has a successor.
package mcheck

import "fmt"

// Mode selects the protocol family being checked.
type Mode int

const (
	Allow Mode = iota
	Deny
)

func (m Mode) String() string {
	if m == Deny {
		return "deny"
	}
	return "allow"
}

// llcState covers stable and transient LLC states.
type llcState uint8

const (
	lI   llcState = iota // invalid
	lS                   // shared
	lM                   // modified
	lISd                 // awaiting GrantS
	lIMd                 // awaiting GrantX
	lMIa                 // evicted, awaiting PutAck (still holds data)
)

// rdState is the replica directory state. In allow mode rAbsent means "no
// entry: must ask home"; in deny mode it means "readable".
type rdState uint8

const (
	rAbsent rdState = iota
	rS
	rM
	rRM
)

// dirBusy is the home directory's in-flight transaction, if any.
type dirBusy uint8

const (
	dIdle        dirBusy = iota
	dWaitInvH            // invalidating H for an RD exclusive request
	dWaitInvRD           // invalidating/denying RD for an H exclusive request
	dWaitFetchH          // fetching from H (for RD GetS/GetX)
	dWaitFetchRD         // fetching from RD-side owner (for H GetS/GetX)
	dWaitReplAck         // dual writeback: waiting for the replica write
)

// rdBusy is the replica directory's in-flight work.
type rdBusy uint8

const (
	rIdle      rdBusy = iota
	rWaitHomeS        // sent RDGetS
	rWaitHomeX        // sent RDGetX
	rWaitPut          // sent RDPutM
)

// msgType enumerates the protocol messages.
type msgType uint8

const (
	mGetS msgType = iota
	mGetX
	mPutM
	mGrantS // data grant to an LLC
	mGrantX
	mInv
	mInvAck
	mFetchDown // downgrade owner to S, return data
	mFetchInv  // invalidate owner, return data
	mData      // fetch response carrying data
	mPutAck
	mRDGetS // RD -> home
	mRDGetX
	mRDPutM
	mGrantSCtrl // home -> RD: permission only, replica memory is current
	mGrantSData // home -> RD: permission plus data (also replica update)
	mGrantXCtrl
	mGrantXData
	mDeny      // home -> RD: set RM (deny protocol) or drop entry (allow)
	mDenyAck   // RD -> home
	mReplWrite // home -> RD: replica half of a dual writeback (undeny)
	mReplAck   // RD -> home: replica write done
	mRDPutAck
)

type msg struct {
	t    msgType
	data uint8
	// aux marks variants: for mDeny in allow mode it is an invalidation.
	aux uint8
}

// chanID names the six ordered channels.
type chanID uint8

const (
	chHtoD chanID = iota // H-LLC -> home dir
	chDtoH               // home dir -> H-LLC
	chRtoRD
	chRDtoR
	chDtoRD
	chRDtoD
	numChans
)

// state is one global protocol state. It must be comparable cheaply; we use
// a fmt-based key.
type state struct {
	mode Mode

	hSt, rSt   llcState
	hVal, rVal uint8

	// Home directory.
	dSt      uint8 // 0=I 1=S 2=M
	shH      bool  // H-LLC in sharer vector
	shRD     bool  // replica directory in sharer vector
	owner    uint8 // 0=none 1=H 2=RD
	busy     dirBusy
	busyReq  uint8 // requester context for busy: 1=H 2=RD
	busyData uint8 // data captured during a fetch

	// Replica directory.
	rdSt      rdState
	rdBusy    rdBusy
	rdInvPend bool  // invalidating R-LLC before acking a home Deny/Inv
	rdFetch   uint8 // home-initiated fetch in progress: 0 none, 1 down, 2 inv

	homeMem, replMem uint8
	lastWritten      uint8
	writes           uint8

	chans [numChans][]msg

	// MSHR-deferred requests (popped from a channel while busy).
	dPend  []pmsg
	rdPend []msg
}

// pmsg is a deferred request with its source channel.
type pmsg struct {
	src chanID
	m   msg
}

func (s *state) key() string {
	return fmt.Sprint(s.mode, s.hSt, s.rSt, s.hVal, s.rVal,
		s.dSt, s.shH, s.shRD, s.owner, s.busy, s.busyReq, s.busyData,
		s.rdSt, s.rdBusy, s.rdInvPend, s.rdFetch,
		s.homeMem, s.replMem, s.lastWritten, s.writes, s.chans,
		s.dPend, s.rdPend)
}

func (s *state) clone() *state {
	n := *s
	for i := range s.chans {
		n.chans[i] = append([]msg(nil), s.chans[i]...)
	}
	n.dPend = append([]pmsg(nil), s.dPend...)
	n.rdPend = append([]msg(nil), s.rdPend...)
	return &n
}

func (s *state) send(c chanID, m msg) { s.chans[c] = append(s.chans[c], m) }

func (s *state) head(c chanID) (msg, bool) {
	if len(s.chans[c]) == 0 {
		return msg{}, false
	}
	return s.chans[c][0], true
}

func (s *state) pop(c chanID) msg {
	m := s.chans[c][0]
	s.chans[c] = s.chans[c][1:]
	return m
}

func (s *state) quiescent() bool {
	for i := range s.chans {
		if len(s.chans[i]) > 0 {
			return false
		}
	}
	return s.busy == dIdle && s.rdBusy == rIdle && !s.rdInvPend && s.rdFetch == 0 &&
		len(s.dPend) == 0 && len(s.rdPend) == 0 &&
		s.hSt != lISd && s.hSt != lIMd && s.hSt != lMIa &&
		s.rSt != lISd && s.rSt != lIMd && s.rSt != lMIa
}

// initial returns the reset state: memory and replica hold value 0.
func initial(mode Mode) *state {
	return &state{mode: mode}
}
