package mcheck

import "fmt"

// Violation describes an invariant or assertion failure found during
// exploration.
type Violation struct {
	Desc  string
	Depth int
}

func (v Violation) Error() string {
	return fmt.Sprintf("depth %d: %s", v.Depth, v.Desc)
}

// maxWrites bounds the number of distinct written values explored.
const maxWrites = 2

// maxChan bounds channel occupancy; exceeding it indicates a modelling bug.
const maxChan = 8

// succ computes all successor states. Assertion failures during a
// transition are returned as violations.
type succResult struct {
	next []*state
	viol []string
}

func (r *succResult) add(s *state) { r.next = append(r.next, s) }
func (r *succResult) fail(f string, a ...any) {
	r.viol = append(r.viol, fmt.Sprintf(f, a...))
}

func successors(s *state) succResult {
	var res succResult

	// --- Spontaneous LLC transitions -----------------------------------
	llcSpont(&res, s, true)
	llcSpont(&res, s, false)

	// --- LLC message handling ------------------------------------------
	if m, ok := s.head(chDtoH); ok {
		llcRecv(&res, s, true, m)
	}
	if m, ok := s.head(chRDtoR); ok {
		llcRecv(&res, s, false, m)
	}

	// --- Home directory ------------------------------------------------
	if m, ok := s.head(chHtoD); ok {
		dirRecv(&res, s, chHtoD, m)
	}
	if m, ok := s.head(chRDtoD); ok {
		dirRecv(&res, s, chRDtoD, m)
	}

	// --- Replica directory ----------------------------------------------
	if m, ok := s.head(chRtoRD); ok {
		rdRecvLocal(&res, s, m)
	}
	if m, ok := s.head(chDtoRD); ok {
		rdRecvHome(&res, s, m)
	}

	// --- Replica directory capacity eviction (silent S drop) ------------
	if s.rdSt == rS && s.rdBusy == rIdle && !s.rdInvPend && s.rdFetch == 0 {
		n := s.clone()
		n.rdSt = rAbsent
		res.add(n)
	}

	return res
}

// llcSpont issues demand requests and evictions from a stable LLC.
func llcSpont(res *succResult, s *state, home bool) {
	st := s.rSt
	if home {
		st = s.hSt
	}
	reqCh, respVal := chRtoRD, s.rVal
	if home {
		reqCh = chHtoD
	}
	_ = respVal
	switch st {
	case lI:
		n := s.clone()
		n.send(reqCh, msg{t: mGetS})
		n.setLLC(home, lISd)
		res.add(n)
		n2 := s.clone()
		n2.send(reqCh, msg{t: mGetX})
		n2.setLLC(home, lIMd)
		res.add(n2)
	case lS:
		// Upgrade.
		n := s.clone()
		n.send(reqCh, msg{t: mGetX})
		n.setLLC(home, lIMd)
		res.add(n)
		// Silent clean eviction.
		n2 := s.clone()
		n2.setLLC(home, lI)
		res.add(n2)
	case lM:
		// Store (bounded).
		if s.writes < maxWrites {
			n := s.clone()
			n.writes++
			n.lastWritten = n.writes
			n.setLLCVal(home, n.writes)
			res.add(n)
		}
		// Dirty eviction.
		n := s.clone()
		n.send(reqCh, msg{t: mPutM, data: n.llcVal(home)})
		n.setLLC(home, lMIa)
		res.add(n)
	case lISd, lIMd, lMIa:
		// Transient states issue no spontaneous demands or evictions:
		// the in-flight transaction must resolve first.
	}
}

func (s *state) setLLC(home bool, st llcState) {
	if home {
		s.hSt = st
	} else {
		s.rSt = st
	}
}

func (s *state) setLLCVal(home bool, v uint8) {
	if home {
		s.hVal = v
	} else {
		s.rVal = v
	}
}

func (s *state) llcVal(home bool) uint8 {
	if home {
		return s.hVal
	}
	return s.rVal
}

func (s *state) llcSt(home bool) llcState {
	if home {
		return s.hSt
	}
	return s.rSt
}

// llcRecv handles the head of the LLC's incoming channel.
func llcRecv(res *succResult, s *state, home bool, m msg) {
	inCh, outCh := chRDtoR, chRtoRD
	if home {
		inCh, outCh = chDtoH, chHtoD
	}
	st := s.llcSt(home)
	n := s.clone()
	n.pop(inCh)
	switch m.t {
	case mGrantS:
		if st != lISd {
			res.fail("GrantS to LLC(home=%v) in state %d", home, st)
			return
		}
		if m.data != s.lastWritten {
			res.fail("data-value: GrantS delivered %d, last written %d", m.data, s.lastWritten)
			return
		}
		n.setLLCVal(home, m.data)
		n.setLLC(home, lS)
		res.add(n)
	case mGrantX:
		if st != lIMd {
			res.fail("GrantX to LLC(home=%v) in state %d", home, st)
			return
		}
		if m.data != s.lastWritten {
			res.fail("data-value: GrantX delivered %d, last written %d", m.data, s.lastWritten)
			return
		}
		n.setLLCVal(home, m.data)
		n.setLLC(home, lM)
		// Perform the store that motivated the upgrade.
		if n.writes < maxWrites {
			n.writes++
			n.lastWritten = n.writes
			n.setLLCVal(home, n.writes)
		}
		res.add(n)
	case mInv:
		switch st {
		case lS, lI:
			n.setLLC(home, lI)
			n.send(outCh, msg{t: mInvAck})
			res.add(n)
		case lISd, lIMd:
			// Stale invalidation for the pre-request epoch.
			n.send(outCh, msg{t: mInvAck})
			res.add(n)
		case lMIa:
			n.send(outCh, msg{t: mInvAck})
			res.add(n)
		default:
			res.fail("Inv to LLC(home=%v) in M", home)
		}
	case mFetchDown:
		switch st {
		case lM:
			n.setLLC(home, lS)
			n.send(outCh, msg{t: mData, data: s.llcVal(home)})
			res.add(n)
		case lMIa:
			// Eviction in flight: we still hold the data; answer and let
			// the stale PutM be dropped at the directory.
			if activeBugs.DropFetchData {
				n.send(outCh, msg{t: mData, data: s.homeMem}) // stale memory
			} else {
				n.send(outCh, msg{t: mData, data: s.llcVal(home)})
			}
			res.add(n)
		default:
			res.fail("FetchDown to LLC(home=%v) in state %d", home, st)
		}
	case mFetchInv:
		switch st {
		case lM:
			n.setLLC(home, lI)
			n.send(outCh, msg{t: mData, data: s.llcVal(home)})
			res.add(n)
		case lMIa:
			n.send(outCh, msg{t: mData, data: s.llcVal(home)})
			res.add(n)
		default:
			res.fail("FetchInv to LLC(home=%v) in state %d", home, st)
		}
	case mPutAck:
		if st != lMIa {
			res.fail("PutAck to LLC(home=%v) in state %d", home, st)
			return
		}
		n.setLLC(home, lI)
		res.add(n)
	default:
		res.fail("unexpected msg %d at LLC(home=%v)", m.t, home)
	}
}
