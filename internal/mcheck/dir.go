package mcheck

// Home directory transition handlers. The directory serializes transactions
// per line via its MSHR: a request arriving while a transaction is in flight
// is popped from the channel and deferred (dPend); completions are matched
// against the busy context. This mirrors the simulator's HomeDir.seq.

// dirOp records what the busy transaction will do on completion.
const (
	opGetS uint8 = iota
	opGetX
)

func isDirRequest(t msgType) bool {
	switch t {
	case mGetS, mGetX, mPutM, mRDGetS, mRDGetX, mRDPutM:
		return true
	}
	return false
}

// dirRecv consumes the head of one of the directory's input channels.
func dirRecv(res *succResult, s *state, src chanID, m msg) {
	n := s.clone()
	n.pop(src)
	if isDirRequest(m.t) {
		if n.busy != dIdle {
			if len(n.dPend) >= maxChan {
				res.fail("home directory pending queue overflow")
				return
			}
			n.dPend = append(n.dPend, pmsg{src: src, m: m})
			res.add(n)
			return
		}
		if !dirHandleRequest(res, n, src, m) {
			return
		}
		dirDrain(res, n)
		res.add(n)
		return
	}
	// Completion message: must match the busy context.
	if !dirComplete(res, n, src, m) {
		return
	}
	dirDrain(res, n)
	res.add(n)
}

// dirDrain processes deferred requests while the directory is idle.
func dirDrain(res *succResult, n *state) bool {
	for n.busy == dIdle && len(n.dPend) > 0 {
		p := n.dPend[0]
		n.dPend = n.dPend[1:]
		if !dirHandleRequest(res, n, p.src, p.m) {
			return false
		}
	}
	return true
}

// dirHandleRequest runs one request transaction to its first blocking point.
// It returns false if a model assertion failed (the state is discarded).
func dirHandleRequest(res *succResult, n *state, src chanID, m msg) bool {
	switch m.t {
	case mGetS: // from H-LLC
		switch {
		case n.dSt != 2: // I or S: memory is current
			n.dSt = 1
			n.shH = true
			n.send(chDtoH, msg{t: mGrantS, data: n.homeMem})
		case n.owner == 1:
			res.fail("GetS from H while H owns")
			return false
		default: // owner == RD side
			n.send(chDtoRD, msg{t: mFetchDown})
			n.busy, n.busyReq, n.busyData = dWaitFetchRD, 1, opGetS
		}
	case mGetX: // from H-LLC
		switch {
		case n.dSt != 2:
			needRD := (n.shRD || n.mode == Deny) && !activeBugs.SkipDenyPush
			if needRD {
				n.send(chDtoRD, msg{t: mDeny})
				n.busy, n.busyReq, n.busyData = dWaitInvRD, 1, opGetX
			} else {
				n.grantXHome()
			}
		case n.owner == 1:
			res.fail("GetX from H while H owns")
			return false
		default:
			n.send(chDtoRD, msg{t: mFetchInv})
			n.busy, n.busyReq, n.busyData = dWaitFetchRD, 1, opGetX
		}
	case mPutM: // from H-LLC
		if n.dSt == 2 && n.owner == 1 {
			n.homeMem = m.data
			n.dSt = 0
			n.owner = 0
			n.shH = false
			if activeBugs.SkipDualWriteback {
				n.send(chDtoH, msg{t: mPutAck})
				break
			}
			// Synchronous dual writeback: the PutAck waits for the replica.
			n.send(chDtoRD, msg{t: mReplWrite, data: m.data})
			n.busy = dWaitReplAck
		} else {
			// Stale writeback (ownership already migrated): drop.
			n.send(chDtoH, msg{t: mPutAck})
		}
	case mRDGetS:
		switch {
		case n.dSt != 2:
			n.dSt = 1
			n.shRD = true
			// Replica memory is current: control-only grant.
			n.send(chDtoRD, msg{t: mGrantSCtrl})
		case n.owner == 2:
			res.fail("RDGetS while RD side owns")
			return false
		default: // owner == H
			n.send(chDtoH, msg{t: mFetchDown})
			n.busy, n.busyReq, n.busyData = dWaitFetchH, 2, opGetS
		}
	case mRDGetX:
		switch {
		case n.dSt != 2:
			if n.shH {
				n.send(chDtoH, msg{t: mInv})
				n.busy, n.busyReq, n.busyData = dWaitInvH, 2, opGetX
			} else {
				n.grantXRD()
			}
		case n.owner == 2:
			res.fail("RDGetX while RD side owns")
			return false
		default:
			n.send(chDtoH, msg{t: mFetchInv})
			n.busy, n.busyReq, n.busyData = dWaitFetchH, 2, opGetX
		}
	case mRDPutM:
		if n.dSt == 2 && n.owner == 2 {
			n.homeMem = m.data
			n.dSt = 0
			n.owner = 0
			n.shRD = false
		}
		n.send(chDtoRD, msg{t: mRDPutAck})
	}
	return true
}

func (n *state) grantXHome() {
	n.dSt = 2
	n.owner = 1
	n.shH, n.shRD = true, false
	n.send(chDtoH, msg{t: mGrantX, data: n.homeMem})
}

func (n *state) grantXRD() {
	n.dSt = 2
	n.owner = 2
	n.shH, n.shRD = false, true
	n.send(chDtoRD, msg{t: mGrantXCtrl})
}

// dirComplete matches a response against the busy context.
func dirComplete(res *succResult, n *state, src chanID, m msg) bool {
	switch {
	case n.busy == dWaitInvH && src == chHtoD && m.t == mInvAck:
		n.shH = false
		n.busy = dIdle
		n.grantXRD()
	case n.busy == dWaitInvRD && src == chRDtoD && m.t == mDenyAck:
		n.shRD = false
		n.busy = dIdle
		n.grantXHome()
	case n.busy == dWaitFetchH && src == chHtoD && m.t == mData:
		n.busy = dIdle
		if n.busyData == opGetS {
			// Dual writeback of the owner's data; the grant carries the
			// replica's half.
			n.homeMem = m.data
			n.dSt = 1
			n.owner = 0
			n.shH, n.shRD = true, true
			n.send(chDtoRD, msg{t: mGrantSData, data: m.data})
		} else {
			n.dSt = 2
			n.owner = 2
			n.shH, n.shRD = false, true
			n.send(chDtoRD, msg{t: mGrantXData, data: m.data})
		}
	case n.busy == dWaitFetchRD && src == chRDtoD && m.t == mData:
		n.busy = dIdle
		if n.busyData == opGetS {
			n.homeMem = m.data // replica half was written by the RD
			n.dSt = 1
			n.owner = 0
			n.shH, n.shRD = true, true
			n.send(chDtoH, msg{t: mGrantS, data: m.data})
		} else {
			n.dSt = 2
			n.owner = 1
			n.shH, n.shRD = true, false
			n.send(chDtoH, msg{t: mGrantX, data: m.data})
		}
	case n.busy == dWaitReplAck && src == chRDtoD && m.t == mReplAck:
		n.busy = dIdle
		n.send(chDtoH, msg{t: mPutAck})
	default:
		res.fail("home dir: unexpected completion %d on %d in busy %d", m.t, src, n.busy)
		return false
	}
	return true
}
