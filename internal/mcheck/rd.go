package mcheck

// Replica directory transition handlers. Demand requests from the
// replica-side LLC serialize behind the RD's own in-flight transaction
// (rdPend); home-pushed forwards (Deny, Fetch, ReplWrite) are handled even
// while a local transaction is outstanding, exactly like the simulator's
// ReplicaDir (probes never block).

func isRDRequest(t msgType) bool {
	return t == mGetS || t == mGetX || t == mPutM
}

// rdReadable reports whether the replica may be served in the current state.
func (s *state) rdReadable() bool {
	if s.mode == Deny {
		return s.rdSt == rAbsent || s.rdSt == rS
	}
	if activeBugs.ServeWithoutEntry {
		return s.rdSt == rS || s.rdSt == rAbsent
	}
	return s.rdSt == rS
}

// rdRecvLocal consumes the head of the R-LLC -> RD channel.
func rdRecvLocal(res *succResult, s *state, m msg) {
	n := s.clone()
	n.pop(chRtoRD)
	if isRDRequest(m.t) {
		if n.rdBusy != rIdle || n.rdFetch != 0 {
			if len(n.rdPend) >= maxChan {
				res.fail("replica directory pending queue overflow")
				return
			}
			n.rdPend = append(n.rdPend, m)
			res.add(n)
			return
		}
		if !rdHandleRequest(res, n, m) {
			return
		}
		rdDrain(res, n)
		res.add(n)
		return
	}
	// Responses from the R-LLC: InvAck (deny/inv probe) or Data (fetch).
	switch {
	case m.t == mInvAck && n.rdInvPend:
		n.rdInvPend = false
		n.send(chRDtoD, msg{t: mDenyAck})
	case m.t == mData && n.rdFetch == 1: // FetchDown
		n.replMem = m.data // dual-writeback half at the replica
		n.rdSt = rS
		n.rdFetch = 0
		n.send(chRDtoD, msg{t: mData, data: m.data})
	case m.t == mData && n.rdFetch == 2: // FetchInv
		if n.mode == Deny {
			n.rdSt = rRM
		} else {
			n.rdSt = rAbsent
		}
		n.rdFetch = 0
		n.send(chRDtoD, msg{t: mData, data: m.data})
	default:
		res.fail("replica dir: unexpected R-LLC response %d (invPend=%v fetch=%d)",
			m.t, n.rdInvPend, n.rdFetch)
		return
	}
	rdDrain(res, n)
	res.add(n)
}

// rdDrain processes deferred local requests while the RD is idle.
func rdDrain(res *succResult, n *state) bool {
	for n.rdBusy == rIdle && n.rdFetch == 0 && len(n.rdPend) > 0 {
		m := n.rdPend[0]
		n.rdPend = n.rdPend[1:]
		if !rdHandleRequest(res, n, m) {
			return false
		}
	}
	return true
}

// rdServe delivers replica data to the R-LLC, checking the central
// replica-consistency invariant: a served replica must hold the last
// written value.
func rdServe(res *succResult, n *state, grant msgType) bool {
	if n.replMem != n.lastWritten {
		res.fail("replica-consistency: serving replMem=%d, last written %d (mode %v, rdSt %d)",
			n.replMem, n.lastWritten, n.mode, n.rdSt)
		return false
	}
	n.send(chRDtoR, msg{t: grant, data: n.replMem})
	return true
}

func rdHandleRequest(res *succResult, n *state, m msg) bool {
	switch m.t {
	case mGetS:
		switch {
		case n.rdSt == rM:
			res.fail("R-LLC GetS while it owns the line")
			return false
		case n.rdReadable():
			n.rdSt = rS
			return rdServe(res, n, mGrantS)
		default:
			// allow: no entry; deny: RM — pull from home.
			n.send(chRDtoD, msg{t: mRDGetS})
			n.rdBusy = rWaitHomeS
		}
	case mGetX:
		if n.rdSt == rM {
			res.fail("R-LLC GetX while it owns the line")
			return false
		}
		n.send(chRDtoD, msg{t: mRDGetX})
		n.rdBusy = rWaitHomeX
	case mPutM:
		if n.rdSt == rM {
			// Still the owner: apply the replica half and forward home.
			n.replMem = m.data
			n.send(chRDtoD, msg{t: mRDPutM, data: m.data})
			n.rdBusy = rWaitPut
		} else {
			// Ownership was fetched away while the writeback was queued:
			// drop the stale data (the fetch already carried it home).
			n.send(chRDtoR, msg{t: mPutAck})
		}
	}
	return true
}

// rdRecvHome consumes the head of the home-dir -> RD channel.
func rdRecvHome(res *succResult, s *state, m msg) {
	n := s.clone()
	n.pop(chDtoRD)
	switch m.t {
	case mGrantSCtrl:
		if n.rdBusy != rWaitHomeS {
			res.fail("GrantSCtrl while rdBusy=%d", n.rdBusy)
			return
		}
		n.rdBusy = rIdle
		n.rdSt = rS
		if !rdServe(res, n, mGrantS) {
			return
		}
	case mGrantSData:
		if n.rdBusy != rWaitHomeS {
			res.fail("GrantSData while rdBusy=%d", n.rdBusy)
			return
		}
		n.rdBusy = rIdle
		n.rdSt = rS
		n.replMem = m.data // replica half of the owner's dual writeback
		n.send(chRDtoR, msg{t: mGrantS, data: m.data})
	case mGrantXCtrl:
		if n.rdBusy != rWaitHomeX {
			res.fail("GrantXCtrl while rdBusy=%d", n.rdBusy)
			return
		}
		n.rdBusy = rIdle
		n.rdSt = rM
		if !rdServe(res, n, mGrantX) {
			return
		}
	case mGrantXData:
		if n.rdBusy != rWaitHomeX {
			res.fail("GrantXData while rdBusy=%d", n.rdBusy)
			return
		}
		n.rdBusy = rIdle
		n.rdSt = rM
		// Ownership transfer: the replica memory stays stale until the
		// next writeback; rM makes it unreadable meanwhile.
		n.send(chRDtoR, msg{t: mGrantX, data: m.data})
	case mRDPutAck:
		if n.rdBusy != rWaitPut {
			res.fail("RDPutAck while rdBusy=%d", n.rdBusy)
			return
		}
		n.rdBusy = rIdle
		if n.rdSt == rM {
			n.rdSt = rAbsent // both copies now current
		}
		n.send(chRDtoR, msg{t: mPutAck})
	case mDeny:
		if n.rdInvPend {
			res.fail("Deny while a previous Deny is still pending")
			return
		}
		// Install the deny (deny protocol) or drop the entry (allow), and
		// conservatively invalidate any R-LLC copy before acking.
		if n.mode == Deny {
			n.rdSt = rRM
		} else {
			n.rdSt = rAbsent
		}
		n.rdInvPend = true
		n.send(chRDtoR, msg{t: mInv})
		res.add(n)
		return
	case mFetchDown:
		if n.rdFetch != 0 {
			res.fail("FetchDown while another fetch pending")
			return
		}
		n.rdFetch = 1
		n.send(chRDtoR, msg{t: mFetchDown})
		res.add(n)
		return
	case mFetchInv:
		if n.rdFetch != 0 {
			res.fail("FetchInv while another fetch pending")
			return
		}
		n.rdFetch = 2
		n.send(chRDtoR, msg{t: mFetchInv})
		res.add(n)
		return
	case mReplWrite:
		n.replMem = m.data
		if n.mode == Deny && n.rdSt == rRM {
			n.rdSt = rAbsent // undeny: the home-side writer wrote back
		}
		n.send(chRDtoD, msg{t: mReplAck})
		res.add(n)
		return
	default:
		res.fail("replica dir: unexpected home message %d", m.t)
		return
	}
	rdDrain(res, n)
	res.add(n)
}
