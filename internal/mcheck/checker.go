package mcheck

import "fmt"

// Result summarises an exploration.
type Result struct {
	Mode       Mode
	States     int // distinct states reached
	Depth      int // BFS diameter
	Violations []Violation
	// Trace is the shortest path to the first violation (state keys), empty
	// when the protocol verifies.
	Trace []string
}

// OK reports whether the protocol verified cleanly.
func (r Result) OK() bool { return len(r.Violations) == 0 }

func (r Result) String() string {
	status := "VERIFIED"
	if !r.OK() {
		status = fmt.Sprintf("FAILED (%d violations, first: %s)",
			len(r.Violations), r.Violations[0].Desc)
	}
	return fmt.Sprintf("%s protocol: %d states, depth %d: %s",
		r.Mode, r.States, r.Depth, status)
}

// Options bound the exploration.
type Options struct {
	// MaxStates aborts exploration beyond this many states (0 = unlimited).
	MaxStates int
	// StopAtFirst stops at the first violation instead of collecting all.
	StopAtFirst bool
}

// invariants checks the global safety properties of a single state.
func invariants(s *state) []string {
	var v []string
	// SWMR: a writable copy excludes every other copy.
	if s.hSt == lM && (s.rSt == lM || s.rSt == lS) {
		v = append(v, fmt.Sprintf("SWMR: H in M while R in %d", s.rSt))
	}
	if s.rSt == lM && (s.hSt == lM || s.hSt == lS) {
		v = append(v, fmt.Sprintf("SWMR: R in M while H in %d", s.hSt))
	}
	// Data-value: readable copies hold the last written value.
	if (s.hSt == lS || s.hSt == lM) && s.hVal != s.lastWritten {
		v = append(v, fmt.Sprintf("data-value: H holds %d, last written %d", s.hVal, s.lastWritten))
	}
	if (s.rSt == lS || s.rSt == lM) && s.rVal != s.lastWritten {
		v = append(v, fmt.Sprintf("data-value: R holds %d, last written %d", s.rVal, s.lastWritten))
	}
	// Replica-unreadability while the home side can write: if the home LLC
	// holds M, the replica directory must not be in a readable state.
	if s.hSt == lM && s.rdReadable() {
		v = append(v, fmt.Sprintf("replica readable (rdSt=%d, mode=%v) while home LLC is M", s.rdSt, s.mode))
	}
	// Quiescent strong consistency: with no activity and no dirty copies,
	// both memories hold the last written value.
	if s.quiescent() && s.hSt != lM && s.rSt != lM {
		if s.homeMem != s.lastWritten {
			v = append(v, fmt.Sprintf("quiescent: home memory %d != last written %d", s.homeMem, s.lastWritten))
		}
		if s.replMem != s.lastWritten {
			v = append(v, fmt.Sprintf("quiescent: replica memory %d != last written %d", s.replMem, s.lastWritten))
		}
	}
	// Channel occupancy sanity.
	for i := range s.chans {
		if len(s.chans[i]) > maxChan {
			v = append(v, fmt.Sprintf("channel %d overflow (%d messages)", i, len(s.chans[i])))
		}
	}
	return v
}

// Check explores the reachable state space of the protocol by BFS. When a
// violation is found, Result.Trace holds the shortest path of state keys
// from the reset state to the state whose expansion (or whose own
// invariants) produced the first violation — the Murφ-style counterexample.
func Check(mode Mode, opts Options) Result {
	res := Result{Mode: mode}
	start := initial(mode)
	startKey := start.key()
	visited := map[string]int{startKey: 0}
	parent := map[string]string{startKey: ""}
	frontier := []*state{start}
	depth := 0

	report := func(desc string, d int, at string) {
		res.Violations = append(res.Violations, Violation{Desc: desc, Depth: d})
		if res.Trace == nil {
			res.Trace = rebuildTrace(parent, at)
		}
	}

	for _, desc := range invariants(start) {
		report(desc, 0, startKey)
	}

	for len(frontier) > 0 {
		if opts.StopAtFirst && len(res.Violations) > 0 {
			break
		}
		var next []*state
		depth++
		for _, s := range frontier {
			sk := s.key()
			sr := successors(s)
			for _, desc := range sr.viol {
				report(desc, depth, sk)
				if opts.StopAtFirst {
					break
				}
			}
			if len(sr.next) == 0 && !s.quiescent() {
				report("deadlock: no successors in a non-quiescent state", depth-1, sk)
			}
			for _, ns := range sr.next {
				k := ns.key()
				if _, ok := visited[k]; ok {
					continue
				}
				visited[k] = depth
				parent[k] = sk
				for _, desc := range invariants(ns) {
					report(desc, depth, k)
				}
				next = append(next, ns)
				if opts.MaxStates > 0 && len(visited) >= opts.MaxStates {
					res.States = len(visited)
					res.Depth = depth
					report("state budget exhausted before full verification", depth, k)
					return res
				}
			}
		}
		frontier = next
	}
	res.States = len(visited)
	res.Depth = depth - 1
	return res
}

// rebuildTrace walks parent pointers back to the reset state.
func rebuildTrace(parent map[string]string, at string) []string {
	var rev []string
	for k := at; k != ""; k = parent[k] {
		rev = append(rev, k)
		if len(rev) > 10_000 {
			break // defensive: malformed parent chain
		}
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
