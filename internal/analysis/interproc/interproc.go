// Package interproc is dvelint's shared interprocedural layer: a
// per-package call graph plus function summaries that the concurrency
// analyzers (lockhold, goleak, httpdiscipline, atomicmix) query instead of
// re-deriving facts from the AST. One Build pass over a package answers:
//
//   - which functions contain a blocking operation (channel send/receive,
//     select with no default, time.Sleep, sync.WaitGroup.Wait,
//     sync.Cond.Wait, an HTTP round-trip, a net dial) — directly or
//     through any chain of same-package calls;
//   - which functions spawn goroutines, and what each goroutine runs;
//   - which channel objects some function in the package closes, and
//     which sync.WaitGroup objects some function joins with Wait() —
//     the two facts goleak needs to recognise a reachable stop path.
//
// The graph is deliberately package-local. Cross-package calls resolve
// only against a fixed model of the standard library's blocking surface
// (time.Sleep, http.Client.Do, ...): the fabric's bug classes all live
// inside one package (a coordinator holding its own lock across its own
// blocking helper), and package-local resolution keeps Build a single
// cheap AST walk with zero configuration.
//
// Like the rest of dvelint, summaries are flow-insensitive: a blocking
// operation anywhere in a function marks the function blocking. Function
// literals are inlined only where they demonstrably run in the enclosing
// frame — immediately-invoked literals (func(){...}()) and plain deferred
// calls — while literals that escape (assigned, passed as callbacks,
// goroutine bodies) are excluded from the spawning function's summary, so
// "this helper blocks" never leaks in from a closure that runs elsewhere.
package interproc

import (
	"go/ast"
	"go/token"
	"go/types"

	"dve/internal/analysis"
)

// Kind classifies a blocking operation.
type Kind int

const (
	// KindChanSend is a channel send statement.
	KindChanSend Kind = iota
	// KindChanRecv is a channel receive (including range-over-channel).
	KindChanRecv
	// KindSelect is a select statement with no default clause.
	KindSelect
	// KindSleep is time.Sleep.
	KindSleep
	// KindWaitGroupWait is (*sync.WaitGroup).Wait.
	KindWaitGroupWait
	// KindCondWait is (*sync.Cond).Wait. Lockhold exempts it when direct:
	// Wait atomically releases the condition's own lock, so waiting under
	// that lock is the intended pattern, not a stall.
	KindCondWait
	// KindHTTPRoundTrip is an outbound HTTP request: http.Client methods,
	// the package-level convenience functions, or any Do(*http.Request)
	// seam such as the fabric's serve.Doer.
	KindHTTPRoundTrip
	// KindNetDial is a net.Dial/Listen class call.
	KindNetDial
)

// Op is one blocking operation.
type Op struct {
	Pos  token.Pos
	What string // human-readable, e.g. "channel send", "time.Sleep"
	Kind Kind
}

// CallSite is one same-package call edge, positioned so region-scoped
// analyzers (lockhold) can tell whether the call happens inside a critical
// section.
type CallSite struct {
	Fn  *types.Func
	Pos token.Pos
}

// Spawn is one go statement together with what it runs: Body for a
// goroutine literal, Callee for `go x.method(...)` resolved within the
// package (nil otherwise).
type Spawn struct {
	Stmt   *ast.GoStmt
	Body   *ast.BlockStmt
	Callee *types.Func
}

// FuncInfo summarises one function or method declaration.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Direct lists blocking operations executed in this function's own
	// frame (escaping literals excluded — see the package comment).
	Direct []Op
	// Calls lists same-package callees, in source order.
	Calls []CallSite
	// Spawns lists go statements launched from this frame.
	Spawns []Spawn
}

// Graph is the per-package summary store. Build once per pass; queries are
// memoised.
type Graph struct {
	Pass  *analysis.Pass
	Funcs map[*types.Func]*FuncInfo

	// ClosedChans holds channel-valued objects (struct fields or
	// variables) that some function in the package closes: receiving from
	// one of these is a recognisable stop signal.
	ClosedChans map[types.Object]bool
	// WaitedGroups holds sync.WaitGroup objects joined by a Wait() call
	// somewhere in the package: a goroutine that Done()s one of these has
	// a join point some shutdown path is waiting on.
	WaitedGroups map[types.Object]bool

	blocking map[*types.Func]*blockAnswer
}

// blockAnswer memoises one transitive-blocking query. chain is the call
// path from the queried function down to the one holding the operation
// (empty when the operation is direct).
type blockAnswer struct {
	op     Op
	chain  []*types.Func
	blocks bool
}

// Build walks every file of the pass once and assembles the package graph.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{
		Pass:         pass,
		Funcs:        map[*types.Func]*FuncInfo{},
		ClosedChans:  map[types.Object]bool{},
		WaitedGroups: map[types.Object]bool{},
		blocking:     map[*types.Func]*blockAnswer{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
			if obj == nil {
				continue
			}
			info := &FuncInfo{Decl: fd, Obj: obj}
			g.scan(fd.Body, info)
			g.Funcs[obj] = info
		}
	}
	return g
}

// scan walks one frame's statements into info, inlining only literals that
// run in this frame and recording package-global close/Wait facts.
func (g *Graph) scan(n ast.Node, info *FuncInfo) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			info.Spawns = append(info.Spawns, g.spawnOf(x))
			// The goroutine runs concurrently, not in this frame; its own
			// channel-close / Wait facts still count package-wide.
			g.scanGlobalFacts(x.Call)
			return false
		case *ast.FuncLit:
			// Reached only when the literal escapes (IIFE and deferred
			// bodies are dispatched below before descending here).
			g.scanGlobalFacts(x.Body)
			return false
		case *ast.DeferStmt:
			// A deferred call runs in this frame at return; record it at
			// the defer's position. A deferred literal's body is inlined.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				g.scan(lit.Body, info)
				return false
			}
			g.visitCall(x.Call, info)
			return false
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: runs here, inline it. The
				// arguments are ordinary expressions of this frame.
				for _, arg := range x.Args {
					g.scan(arg, info)
				}
				g.scan(lit.Body, info)
				return false
			}
			g.visitCall(x, info)
			return true
		case *ast.SendStmt:
			info.Direct = append(info.Direct, Op{Pos: x.Pos(), What: "channel send", Kind: KindChanSend})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				info.Direct = append(info.Direct, Op{Pos: x.Pos(), What: "channel receive", Kind: KindChanRecv})
			}
		case *ast.RangeStmt:
			if t := g.Pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					info.Direct = append(info.Direct, Op{Pos: x.Pos(), What: "range over channel", Kind: KindChanRecv})
				}
			}
		case *ast.SelectStmt:
			if blockingSelect(x) {
				info.Direct = append(info.Direct, Op{Pos: x.Pos(), What: "select with no default", Kind: KindSelect})
			}
			// Walk only the clause bodies: the comm statements' channel
			// operations are part of the select, already reported above.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						g.scan(s, info)
					}
				}
			}
			return false
		}
		return true
	})
}

// spawnOf resolves what a go statement runs.
func (g *Graph) spawnOf(stmt *ast.GoStmt) Spawn {
	s := Spawn{Stmt: stmt}
	if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
		s.Body = lit.Body
		return s
	}
	if fn := calledFunc(g.Pass.TypesInfo, stmt.Call); fn != nil && fn.Pkg() == g.Pass.Pkg {
		s.Callee = fn
	}
	return s
}

// visitCall records one call: a blocking stdlib operation, a same-package
// edge, or a package-global close/Wait fact.
func (g *Graph) visitCall(call *ast.CallExpr, info *FuncInfo) {
	g.scanGlobalFactsCall(call)
	if op, ok := classifyBlockingCall(g.Pass.TypesInfo, call); ok {
		info.Direct = append(info.Direct, op)
		return
	}
	fn := calledFunc(g.Pass.TypesInfo, call)
	if fn != nil && fn.Pkg() == g.Pass.Pkg {
		info.Calls = append(info.Calls, CallSite{Fn: fn, Pos: call.Pos()})
	}
}

// scanGlobalFacts walks an escaping subtree recording only the facts that
// hold package-wide regardless of which frame executes them.
func (g *Graph) scanGlobalFacts(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			g.scanGlobalFactsCall(call)
		}
		return true
	})
}

// scanGlobalFactsCall records close(ch) and wg.Wait() facts.
func (g *Graph) scanGlobalFactsCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := g.Pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			if obj := RootObj(g.Pass.TypesInfo, call.Args[0]); obj != nil {
				g.ClosedChans[obj] = true
			}
		}
		return
	}
	if fn := calledFunc(g.Pass.TypesInfo, call); fn != nil && fn.Name() == "Wait" && isSyncMethod(fn, "WaitGroup") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := RootObjSelector(g.Pass.TypesInfo, sel.X); obj != nil {
				g.WaitedGroups[obj] = true
			}
		}
	}
}

// Blocking reports whether fn (a function of this package) may block,
// directly or through same-package calls. chain lists the call path down
// to the function holding the operation; empty means fn blocks directly.
func (g *Graph) Blocking(fn *types.Func) (op Op, chain []*types.Func, blocks bool) {
	if a, ok := g.blocking[fn]; ok {
		return a.op, a.chain, a.blocks
	}
	// Seed the memo with "does not block" so cycles terminate; overwrite
	// below once the real answer is known.
	g.blocking[fn] = &blockAnswer{}
	info := g.Funcs[fn]
	if info == nil {
		return Op{}, nil, false
	}
	if len(info.Direct) > 0 {
		a := &blockAnswer{op: info.Direct[0], blocks: true}
		g.blocking[fn] = a
		return a.op, nil, true
	}
	for _, cs := range info.Calls {
		if cop, cchain, cblocks := g.Blocking(cs.Fn); cblocks {
			a := &blockAnswer{op: cop, chain: append([]*types.Func{cs.Fn}, cchain...), blocks: true}
			g.blocking[fn] = a
			return a.op, a.chain, true
		}
	}
	return Op{}, nil, false
}

// blockingSelect reports whether the select has no default clause.
func blockingSelect(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// classifyBlockingCall matches the fixed model of blocking callees.
func classifyBlockingCall(info *types.Info, call *ast.CallExpr) (Op, bool) {
	fn := calledFunc(info, call)
	if fn == nil {
		return Op{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return Op{}, false
	}
	if sig.Recv() == nil {
		if fn.Pkg() == nil {
			return Op{}, false
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Sleep" {
				return Op{Pos: call.Pos(), What: "time.Sleep", Kind: KindSleep}, true
			}
		case "net/http":
			switch fn.Name() {
			case "Get", "Post", "PostForm", "Head":
				return Op{Pos: call.Pos(), What: "http." + fn.Name(), Kind: KindHTTPRoundTrip}, true
			}
		case "net":
			switch fn.Name() {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return Op{Pos: call.Pos(), What: "net." + fn.Name(), Kind: KindNetDial}, true
			}
		}
		return Op{}, false
	}
	switch fn.Name() {
	case "Wait":
		if isSyncMethod(fn, "WaitGroup") {
			return Op{Pos: call.Pos(), What: "sync.WaitGroup.Wait", Kind: KindWaitGroupWait}, true
		}
		if isSyncMethod(fn, "Cond") {
			return Op{Pos: call.Pos(), What: "sync.Cond.Wait", Kind: KindCondWait}, true
		}
	case "Do", "Get", "Post", "PostForm", "Head":
		if recvNamed(sig.Recv().Type(), "net/http", "Client") {
			return Op{Pos: call.Pos(), What: "http.Client." + fn.Name(), Kind: KindHTTPRoundTrip}, true
		}
		// The Doer seam: any method named Do taking a *http.Request is an
		// HTTP round-trip even behind an interface (serve.Doer in tests
		// and chaos transports included).
		if fn.Name() == "Do" && sig.Params().Len() == 1 &&
			isPtrToNamed(sig.Params().At(0).Type(), "net/http", "Request") {
			return Op{Pos: call.Pos(), What: "Do(*http.Request) round-trip", Kind: KindHTTPRoundTrip}, true
		}
	}
	return Op{}, false
}

// isSyncMethod reports whether fn is a method of sync.<name>.
func isSyncMethod(fn *types.Func, name string) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return recvNamed(sig.Recv().Type(), "sync", name)
}

// recvNamed reports whether t (or its pointee) is the named type pkg.name,
// matching by package path with a bare-name fallback for the GOPATH-style
// testdata stubs.
func recvNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isPtrToNamed reports whether t is *pkg.name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return recvNamed(p.Elem(), pkgPath, name)
}

// calledFunc resolves the called package-level function or method, or nil.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// RootObj resolves the object at the base of a selector expression: for
// s.tickStop it returns the tickStop field object (stable across every
// mention of the field), for a plain identifier its variable object.
func RootObj(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.ObjectOf(x.Sel)
	case *ast.ParenExpr:
		return RootObj(info, x.X)
	}
	return nil
}

// RootObjSelector is RootObj for a method receiver expression: s.wg.Wait()
// passes s.wg here and resolves to the wg field object.
func RootObjSelector(info *types.Info, e ast.Expr) types.Object {
	return RootObj(info, e)
}
