package interproc_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"dve/internal/analysis"
	"dve/internal/analysis/interproc"
)

// load builds the interproc graph over the lockhold golden package, which
// exercises direct ops, call chains, spawns, and escaping literals.
func load(t *testing.T, pkgPath string) (*analysis.Pass, *interproc.Graph) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader(root, "").Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	var g *interproc.Graph
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "captures the interproc graph for inspection",
		Run: func(pass *analysis.Pass) error {
			g = interproc.Build(pass)
			return nil
		},
	}
	if _, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe}); err != nil {
		t.Fatalf("building graph: %v", err)
	}
	pass := g.Pass
	return pass, g
}

// fn finds a function summary by name.
func fn(t *testing.T, g *interproc.Graph, name string) (*types.Func, *interproc.FuncInfo) {
	t.Helper()
	for obj, info := range g.Funcs {
		if obj.Name() == name {
			return obj, info
		}
	}
	t.Fatalf("no function %q in graph", name)
	return nil, nil
}

func TestBlockingTransitive(t *testing.T) {
	_, g := load(t, "lockhold")

	// flush blocks directly on a channel send.
	flush, _ := fn(t, g, "flush")
	op, chain, blocks := g.Blocking(flush)
	if !blocks || op.Kind != interproc.KindChanSend || len(chain) != 0 {
		t.Fatalf("flush: got op=%+v chain=%v blocks=%v, want direct channel send", op, chain, blocks)
	}

	// blockingHelper blocks through flush: chain of length 1.
	helper, _ := fn(t, g, "blockingHelper")
	op, chain, blocks = g.Blocking(helper)
	if !blocks || op.Kind != interproc.KindChanSend {
		t.Fatalf("blockingHelper: got op=%+v blocks=%v, want channel send via flush", op, blocks)
	}
	if len(chain) != 1 || chain[0].Name() != "flush" {
		t.Fatalf("blockingHelper chain = %v, want [flush]", chain)
	}

	// Memoised second query agrees.
	if _, _, again := g.Blocking(helper); !again {
		t.Fatal("memoised Blocking(blockingHelper) flipped to false")
	}
}

func TestEscapingLiteralNotCharged(t *testing.T) {
	_, g := load(t, "lockhold")
	// spawnUnderLock's only blocking op lives in a goroutine body; the
	// spawning frame must stay non-blocking but record the spawn.
	obj, info := fn(t, g, "spawnUnderLock")
	if _, _, blocks := g.Blocking(obj); blocks {
		t.Fatal("spawnUnderLock charged with its goroutine's sleep")
	}
	if len(info.Spawns) != 1 || info.Spawns[0].Body == nil {
		t.Fatalf("spawnUnderLock spawns = %+v, want one literal spawn", info.Spawns)
	}
}

func TestGlobalFacts(t *testing.T) {
	_, g := load(t, "goleak")
	// Stop closes w.done; Drain waits w.wg. Both must be package facts.
	foundChan, foundWG := false, false
	for obj := range g.ClosedChans {
		if obj.Name() == "done" {
			foundChan = true
		}
	}
	for obj := range g.WaitedGroups {
		if obj.Name() == "wg" {
			foundWG = true
		}
	}
	if !foundChan || !foundWG {
		t.Fatalf("global facts: ClosedChans has done=%v, WaitedGroups has wg=%v", foundChan, foundWG)
	}
	// spin is spawned by name: the spawn must resolve the callee.
	_, info := fn(t, g, "startMethodLeak")
	if len(info.Spawns) != 1 || info.Spawns[0].Callee == nil || info.Spawns[0].Callee.Name() != "spin" {
		t.Fatalf("startMethodLeak spawns = %+v, want resolved callee spin", info.Spawns)
	}
}
