package lockhold_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockhold.Analyzer, "lockhold")
}
