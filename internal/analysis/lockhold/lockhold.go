// Package lockhold flags a sync.Mutex or sync.RWMutex held across a
// blocking operation — the coordinator/leaseQueue deadlock shape. A lock
// that is held while its owner parks on a channel, sleeps, waits on a
// WaitGroup, or performs an HTTP round-trip stalls every other user of
// that lock for the duration; if the blocked operation itself needs the
// lock to make progress (a handler that can't run because the heartbeat
// path holds the registry mutex), the stall is a deadlock. The -chaos
// harness can only catch this shape when the scheduler happens to park the
// right goroutines; this analyzer catches it on every build.
//
// The critical section is computed flow-insensitively from source
// positions: it opens at x.mu.Lock() / RLock() and closes at the first
// later x.mu.Unlock() / RUnlock() on the same receiver path, or at the end
// of the function when the unlock is deferred (or missing). Inside the
// section, both direct blocking operations and calls to same-package
// functions that transitively block (via the interproc graph) are
// reported.
//
// Exemptions, chosen to keep the tree's idiomatic code clean:
//
//   - sync.Cond.Wait is never reported when called directly under the
//     lock: Wait atomically releases the condition's mutex, so waiting
//     under it is the intended pattern (leaseQueue.acquire);
//   - goroutine bodies and escaping function literals are not charged to
//     the spawning frame (a `go` launched under the lock does not hold
//     it);
//   - blocking calls reached through another package are out of scope —
//     the model covers the standard library's blocking surface plus
//     same-package helpers.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dve/internal/analysis"
	"dve/internal/analysis/interproc"
)

// Analyzer reports mutexes held across blocking operations.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "a sync.Mutex/RWMutex held across a blocking operation (channel op, " +
		"select, sleep, WaitGroup.Wait, HTTP round-trip) stalls every other " +
		"user of the lock; move the blocking call outside the critical section",
	Run: run,
}

// region is one critical section inside a function.
type region struct {
	base  string // receiver path, e.g. "s.mu" or "q.mu"
	start token.Pos
	end   token.Pos
}

func run(pass *analysis.Pass) error {
	g := interproc.Build(pass)
	for _, info := range sortedInfos(g) {
		checkFunc(pass, g, info)
	}
	return nil
}

// sortedInfos returns the graph's functions in source order so diagnostics
// are deterministic before the driver's global sort.
func sortedInfos(g *interproc.Graph) []*interproc.FuncInfo {
	out := make([]*interproc.FuncInfo, 0, len(g.Funcs))
	for _, info := range g.Funcs {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

func checkFunc(pass *analysis.Pass, g *interproc.Graph, info *interproc.FuncInfo) {
	regions := lockRegions(pass, info.Decl)
	if len(regions) == 0 {
		return
	}
	for _, r := range regions {
		for _, op := range info.Direct {
			if op.Pos <= r.start || op.Pos >= r.end {
				continue
			}
			if op.Kind == interproc.KindCondWait {
				continue // Wait releases the condition's own lock
			}
			pass.Reportf(op.Pos,
				"%s is held across %s (locked at line %d): the lock's other users stall until this unblocks; move the blocking operation outside the critical section",
				r.base, op.What, pass.Fset.Position(r.start).Line)
		}
		for _, cs := range info.Calls {
			if cs.Pos <= r.start || cs.Pos >= r.end {
				continue
			}
			op, chain, blocks := g.Blocking(cs.Fn)
			if !blocks {
				continue
			}
			pass.Reportf(cs.Pos,
				"%s is held across a call to %s, which blocks on %s%s (locked at line %d): move the blocking call outside the critical section",
				r.base, cs.Fn.Name(), op.What, chainString(cs.Fn, chain),
				pass.Fset.Position(r.start).Line)
		}
	}
}

// chainString renders the interprocedural path for the diagnostic, e.g.
// " (via flush -> drain)". Empty when the callee blocks directly.
func chainString(first *types.Func, chain []*types.Func) string {
	if len(chain) == 0 {
		return ""
	}
	parts := []string{first.Name()}
	for _, fn := range chain {
		parts = append(parts, fn.Name())
	}
	return " (via " + strings.Join(parts, " -> ") + ")"
}

// lockRegions extracts every critical section of the function. Deferred
// unlocks (and missing unlocks) extend the region to the function's end.
func lockRegions(pass *analysis.Pass, fd *ast.FuncDecl) []region {
	type unlockKind struct {
		base string
		read bool // RUnlock
	}
	var locks []struct {
		base  string
		read  bool // RLock
		pos   token.Pos
	}
	unlocks := map[unlockKind][]token.Pos{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Escaping literals and goroutine bodies run in another frame:
		// their locks and unlocks are theirs, not this function's.
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred unlock releases only at return, so it never closes
			// a region early: record nothing and the region runs to the
			// function's end. Deferred literals likewise run at return;
			// counting their unlocks at the defer's position would close
			// regions that are still open, so skip the whole statement.
			return false
		case *ast.CallExpr:
			if ok, base, name := lockCall(pass, x); ok {
				switch name {
				case "Lock", "RLock":
					locks = append(locks, struct {
						base string
						read bool
						pos  token.Pos
					}{base, name == "RLock", x.Pos()})
				case "Unlock", "RUnlock":
					k := unlockKind{base, name == "RUnlock"}
					unlocks[k] = append(unlocks[k], x.Pos())
				}
			}
		}
		return true
	})

	var out []region
	for _, l := range locks {
		end := fd.Body.End()
		// A Lock closes at Unlock, an RLock at RUnlock.
		for _, upos := range unlocks[unlockKind{l.base, l.read}] {
			if upos > l.pos && upos < end {
				end = upos
			}
		}
		out = append(out, region{base: l.base, start: l.pos, end: end})
	}
	return out
}

// lockCall reports whether call is <base>.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (directly or promoted through embedding),
// returning the receiver path string and the method name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (ok bool, base, name string) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false, "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return false, "", ""
	}
	fn, _ := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false, "", ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false, "", ""
	}
	return true, types.ExprString(sel.X), sel.Sel.Name
}
