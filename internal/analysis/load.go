package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from source. It resolves imports
// in three tiers:
//
//  1. paths inside the module (ModulePath non-empty, path == ModulePath or
//     under ModulePath+"/") map to directories under Root;
//  2. with ModulePath empty (the GOPATH-style testdata roots the analyzer
//     golden tests use), any bare path whose directory exists under Root
//     resolves there;
//  3. everything else goes to the standard library via go/importer's
//     source importer, which type-checks GOROOT source and needs no
//     network, module cache or build cache.
//
// Type-checking from source keeps dvelint self-contained: it works in a
// sandbox with nothing but the Go toolchain installed.
type Loader struct {
	Root       string // module root (tier 1) or src root (tier 2)
	ModulePath string // "" selects GOPATH-style resolution

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which go/types would otherwise
	// chase into a stack overflow before reporting.
	loading map[string]bool
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader returns a loader rooted at root. modulePath is the module's
// path from go.mod, or "" for a GOPATH-style source tree.
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor resolves an import path to a source directory, or "" if the path
// is not ours (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	switch {
	case l.ModulePath == "":
		d := filepath.Join(l.Root, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d
		}
		return ""
	case path == l.ModulePath:
		return l.Root
	case strings.HasPrefix(path, l.ModulePath+"/"):
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	return ""
}

// Load parses and type-checks the package at the import path, loading
// intra-module dependencies recursively and standard-library dependencies
// from GOROOT source. Results are cached per loader.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: cannot resolve package %q under %s", path, l.Root)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if l.dirFor(ipath) != "" {
			dep, err := l.Load(ipath)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}
		return l.std.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every non-test Go file in dir, in filename order so that
// positions, and therefore diagnostic order, are deterministic.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
