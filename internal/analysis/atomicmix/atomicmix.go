// Package atomicmix catches two ways a field's synchronisation discipline
// silently degrades to "mostly":
//
// Mixed atomic/plain access. A field that is ever touched through
// sync/atomic (atomic.AddUint64(&s.seq, 1), atomic.LoadInt64(&s.n), ...)
// must be touched through sync/atomic everywhere: a plain read may observe
// a torn or stale value, and a plain write races the atomic path outright.
// The -race detector reports this only when a test interleaves the two
// paths; the mix is detectable statically, so the analyzer flags every
// plain access to a field that also appears as the pointer argument of a
// sync/atomic call in the same package.
//
// Guarded-reference escape. A field annotated `// guarded by mu` (PR 2's
// guardedfield contract) whose type is a reference — slice, map, pointer,
// or channel — must not be returned directly from a method: the caller
// receives an alias to the guarded structure after the method has unlocked,
// so every later read through it is outside the lock even though the
// returning method's own access was clean. guardedfield checks that the
// access site holds the lock; this check closes the interprocedural hole
// where the locked access hands the data out. Return a copy (or a derived
// scalar) instead.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"dve/internal/analysis"
)

// Analyzer reports mixed atomic/plain field access and guarded-reference
// escapes.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic must be accessed atomically everywhere; " +
		"a '// guarded by mu' slice/map/pointer/chan field must not be returned " +
		"directly (the alias escapes the lock)",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	checkAtomicMix(pass)
	checkGuardedEscape(pass)
	return nil
}

// atomicUse records how a field entered the atomic world, for diagnostics.
type atomicUse struct {
	fn  string // e.g. "atomic.AddUint64"
	pos token.Pos
}

// checkAtomicMix flags plain accesses to fields that are elsewhere passed
// by address into sync/atomic.
func checkAtomicMix(pass *analysis.Pass) {
	atomicFields := map[types.Object]atomicUse{}
	// Selector expressions consumed by the atomic calls themselves: these
	// are the sanctioned accesses and must not be re-flagged below.
	sanctioned := map[*ast.SelectorExpr]bool{}

	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				continue
			}
			obj := selection.Obj()
			if _, seen := atomicFields[obj]; !seen {
				atomicFields[obj] = atomicUse{fn: "atomic." + fn.Name(), pos: call.Pos()}
			}
			sanctioned[sel] = true
		}
		return true
	})
	if len(atomicFields) == 0 {
		return
	}

	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		use, ok := atomicFields[selection.Obj()]
		if !ok {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s is accessed with %s (line %d) but plainly here: mixing atomic and plain access races; use %s-family load/store everywhere",
			types.ExprString(sel), use.fn, pass.Fset.Position(use.pos).Line, use.fn)
		return true
	})
}

// checkGuardedEscape flags `return s.guardedRefField` from methods: the
// returned alias outlives the critical section.
func checkGuardedEscape(pass *analysis.Pass) {
	guarded := map[types.Object]string{}
	pass.Inspect(func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			mu := guardAnnotation(field)
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				obj := pass.TypesInfo.ObjectOf(name)
				if obj != nil && isReferenceType(obj.Type()) {
					guarded[obj] = mu
				}
			}
		}
		return true
	})
	if len(guarded) == 0 {
		return
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a literal returns from its own frame, not this one
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection, ok := pass.TypesInfo.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						continue
					}
					mu, ok := guarded[selection.Obj()]
					if !ok {
						continue
					}
					pass.Reportf(res.Pos(),
						"returning %s aliases a field guarded by %s beyond the critical section: the caller reads it after %s unlocks; return a copy instead",
						types.ExprString(sel), mu, fd.Name.Name)
				}
				return true
			})
		}
	}
}

// isReferenceType reports whether values of t alias shared storage when
// copied: slices, maps, pointers, and channels. Value types (ints, structs
// of values) are safe to return from under a lock.
func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// guardAnnotation extracts the mutex name from the field's doc or line
// comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// calledFunc resolves the called function, or nil.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}
