package atomicmix_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmix.Analyzer, "atomicmix")
}
