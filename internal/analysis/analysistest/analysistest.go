// Package analysistest runs an analyzer over GOPATH-style golden packages
// and checks its diagnostics against expectations embedded in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	e.State = cache.Modified // want `straddle a scheduling boundary`
//
// A "want" comment holds one or more quoted regular expressions (double
// quotes or backquotes). Every diagnostic on a line must be matched by
// some want-regex on that line, and every want-regex must match at least
// one diagnostic on its line.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dve/internal/analysis"
)

// TestData returns the analyzers' shared testdata root
// (internal/analysis/testdata), resolved relative to the calling test's
// working directory (internal/analysis/<analyzer>).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each named package from testdata/src, applies the analyzer,
// and compares diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join(testdata, "src"), "")
	for _, name := range pkgs {
		pkg, err := loader.Load(name)
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, name, err)
		}
		check(t, pkg, diags)
	}
}

type key struct {
	file string
	line int
}

// check enforces the want-comment contract for one package.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parseWants(t, pos.String(), strings.TrimPrefix(text, "want ")) {
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], pat)
				}
			}
		}
	}

	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		ok := false
		for _, pat := range wants[k] {
			if pat.MatchString(d.Message) {
				matched[pat] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
		}
	}
	for k, pats := range wants {
		for _, pat := range pats {
			if !matched[pat] {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, pat)
			}
		}
	}
}

// parseWants extracts the quoted regexps from a want comment's payload.
func parseWants(t *testing.T, at, payload string) []*regexp.Regexp {
	t.Helper()
	var pats []*regexp.Regexp
	rest := strings.TrimSpace(payload)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", at, payload, err)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", at, q, err)
		}
		pat, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", at, lit, err)
		}
		pats = append(pats, pat)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return pats
}
