// Package analysis is dvelint's static-analysis framework: a deliberately
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis API surface that this repo's analyzers need. The build
// environment vendors no third-party modules, so the framework is built
// entirely on the standard library's go/ast, go/parser and go/types.
//
// The shape mirrors x/tools so the analyzers (and their tests) read like
// any other go/analysis checker and could be ported to the real framework
// by swapping an import:
//
//   - an Analyzer bundles a name, documentation and a Run function;
//   - Run receives a Pass holding one type-checked package and reports
//     findings through Pass.Reportf;
//   - the driver (cmd/dvelint) loads packages, runs every analyzer and
//     applies //lint:ignore suppressions (see Suppress in run.go).
//
// See README.md in this directory for the four analyzers, the simulator
// bug classes they target, and the suppression contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Name appears in diagnostics and is the key
// //lint:ignore comments use to suppress a finding.
type Analyzer struct {
	Name string
	// Doc is the analyzer's documentation: first line is a summary, the
	// rest explains the bug class and how to fix or suppress findings.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path. GOPATH-style test packages (the
	// analyzer golden tests under testdata/src) have bare, slash-free
	// paths; analyzers that scope themselves to simulator packages treat
	// those as in scope so testdata exercises the same code path.
	Path string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Diagnostic is one finding, with its position already resolved so it is
// self-contained.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
	// Suppressed marks a finding covered by a //lint:ignore directive;
	// Justification carries the directive's reason. Only RunAll returns
	// suppressed findings — Run drops them.
	Suppressed    bool
	Justification string
}

// String formats the diagnostic the way the driver prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}
