// Package simapi centralizes how dvelint's analyzers recognize the
// simulator's own API surface — the sim.Engine scheduling entry points and
// the packages that hold coherence-protocol state. Analyzers match by
// package name and type name rather than full import path so the same
// logic applies both to the real tree (dve/internal/sim) and to the
// GOPATH-style stand-in packages under internal/analysis/testdata/src.
package simapi

import (
	"go/ast"
	"go/types"
)

// scheduleMethods are the sim.Engine methods that defer a callback into the
// event queue: the closure entry points and their typed Fn fast paths.
var scheduleMethods = map[string]bool{
	"Schedule":         true,
	"ScheduleFn":       true,
	"ScheduleDaemon":   true,
	"ScheduleDaemonFn": true,
	"At":               true,
	"AtFn":             true,
}

// crossMethods are the sim.ParallelEngine cross-partition scheduling entry
// points: they defer a callback into *another* partition's queue via the
// epoch mailbox, so everything the closure-capture analyzers say about
// Engine scheduling applies to them too (more so — the callback runs on a
// different goroutine's partition).
var crossMethods = map[string]bool{
	"CrossAt":       true,
	"CrossAtFn":     true,
	"CrossSchedule": true,
}

// ScheduleCall reports whether call invokes one of the simulator's
// scheduling entry points, returning the method name: a sim.Engine
// scheduling method, or a sim.ParallelEngine cross-partition one.
func ScheduleCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	engine := scheduleMethods[sel.Sel.Name]
	cross := crossMethods[sel.Sel.Name]
	if !engine && !cross {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	if engine && isNamed(selection.Recv(), "sim", "Engine") {
		return sel.Sel.Name, true
	}
	if cross && isNamed(selection.Recv(), "sim", "ParallelEngine") {
		return sel.Sel.Name, true
	}
	return "", false
}

// protocolStatePkgs are the packages whose types carry coherence, cache
// and directory state — the state whose mutation must not straddle a
// scheduling boundary.
var protocolStatePkgs = map[string]bool{
	"cache":     true,
	"coherence": true,
	"dve":       true,
	"mcheck":    true,
}

// IsProtocolState reports whether t (possibly behind pointers or slices)
// is a named type declared in one of the coherence-protocol packages.
func IsProtocolState(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && protocolStatePkgs[pkg.Name()]
}

// isNamed reports whether t (or its pointee) is the named type pkgName.name.
func isNamed(t types.Type, pkgName, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
