// Package determinism enforces the simulator's core contract: a run is a
// pure function of (configuration, seed). Two runs with the same inputs
// must produce byte-identical journals — that is what makes the RAS
// campaign's regression journals, the model checker's counterexamples and
// every perf figure trustworthy.
//
// In simulation packages (dve/internal/... and the golden-test packages)
// the analyzer bans:
//
//   - time.Now / time.Since / time.Until — simulated time comes from
//     sim.Engine; wall-clock reporting belongs behind internal/stats;
//   - the global math/rand top-level generators (rand.Intn, rand.Float64,
//     ...) — a seeded *rand.Rand is fine, the process-global source is
//     not (constructors like rand.New/NewSource/NewZipf are allowed);
//   - ranging over a map when the body schedules events, writes to a
//     journal or output stream, or accumulates into an outer slice that
//     is not sorted afterwards — map iteration order would leak into the
//     event order or the journal.
//
// The telemetry layer (dve/internal/telemetry) is in scope with a tailored
// diagnostic: its no-perturbation rule means trace timestamps are always
// sim.Engine cycles, so a wall-clock read there is a contract violation,
// not a style issue. As everywhere else, host timing goes through
// stats.Stopwatch.
//
// A few packages legitimately touch the wall clock or randomness; they are
// listed in WallClockExempt with the reason spelled out per package, and
// the exemption covers only the wall-clock/randomness rules — effectful
// map iteration is checked everywhere, because a fabric response or result
// journal emitted in map order is just as non-reproducible as a simulator
// journal.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dve/internal/analysis"
	"dve/internal/analysis/simapi"
)

// Analyzer bans nondeterminism sources in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "ban wall-clock reads, the global math/rand source, and effectful " +
		"map iteration in simulation packages (runs must be pure functions of the seed)",
	Run: run,
}

// WallClockExempt maps a package path to the documented reason it may read
// the wall clock and use randomness. The exemption is deliberately
// facet-level: these packages keep the effectful-map-iteration checks (a
// fabric response assembled in map order is as non-reproducible as a
// journal written in map order), they only drop the wall-clock/randomness
// bans. Adding a package here requires writing the reason — the test suite
// pins the set.
var WallClockExempt = map[string]string{
	"dve/internal/stats": "hosts the one sanctioned wall-clock helper (stats.Stopwatch); " +
		"all other packages time the host through it",
	"dve/internal/serve": "fabric lease deadlines, worker heartbeats and jittered retry " +
		"backoff are wall-clock by design; tests stay deterministic via injected clocks " +
		"(leaseQueue.now, Worker.Sleep) and the simulator never imports serve",
	"dve/internal/results": "result-store timestamps are operational metadata (cache age, " +
		"eviction order), never simulation state; journal bytes remain a pure function of " +
		"(config, seed)",
}

// telemetryPkgs get a sharper diagnostic: the instrumentation layer is the
// most tempting place to reach for time.Now (trace files look like they
// want wall-clock timestamps), but its no-perturbation rule makes it
// exactly as wall-clock-free as the simulation it observes — every
// timestamp is a sim.Engine cycle; only stats.Stopwatch may time the host.
// The bare "telemetry" path is the golden-test package.
var telemetryPkgs = map[string]bool{
	"dve/internal/telemetry": true,
	"telemetry":              true,
}

// inScope reports whether the package is a simulation package. Bare,
// slash-free paths are the GOPATH-style golden-test packages (and the
// top-level dve facade), which are held to the same standard.
func inScope(path string) bool {
	if !strings.Contains(path, "/") {
		return true
	}
	return strings.HasPrefix(path, "dve/internal/")
}

// bannedTimeFuncs read the process wall clock.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// journalMethods are method names whose call inside a map range writes
// run-visible output in map-iteration order.
var journalMethods = map[string]bool{
	"Append": true, "Record": true, "Log": true,
	"Write": true, "WriteTo": true, "WriteString": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	_, wallClockOK := WallClockExempt[pass.Path]
	for _, file := range pass.Files {
		// Track the innermost enclosing function body so the sorted-after
		// escape hatch for map accumulation knows where to look.
		var funcs []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch x := n.(type) {
			case nil:
				return false
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, x)
				// Walk the function with this scope on the stack, then
				// prune this subtree from the outer walk.
				for _, c := range children(x) {
					ast.Inspect(c, visit)
				}
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.CallExpr:
				if !wallClockOK {
					checkCall(pass, x)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, x, enclosing(funcs))
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil
}

// children returns the body (and receiver-independent parts) of a function
// node to continue the walk inside it.
func children(n ast.Node) []ast.Node {
	switch f := n.(type) {
	case *ast.FuncDecl:
		if f.Body != nil {
			return []ast.Node{f.Body}
		}
	case *ast.FuncLit:
		return []ast.Node{f.Body}
	}
	return nil
}

func enclosing(funcs []ast.Node) ast.Node {
	if len(funcs) == 0 {
		return nil
	}
	return funcs[len(funcs)-1]
}

// checkCall flags wall-clock reads and global math/rand use.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calledFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] {
			if telemetryPkgs[pass.Path] {
				pass.Reportf(call.Pos(),
					"time.%s in the telemetry layer: telemetry timestamps come from sim.Engine cycles (no-perturbation rule); wall-clock timing must go through stats.Stopwatch",
					fn.Name())
				return
			}
			pass.Reportf(call.Pos(),
				"time.%s in a simulation package: simulated time comes from sim.Engine; wall-clock reporting belongs behind dve/internal/stats (Stopwatch)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(),
				"global rand.%s shares process-wide state: use a seeded *rand.Rand so runs are a pure function of the seed",
				fn.Name())
		}
	}
}

// calledFunc resolves the called package-level function or method, or nil.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// checkMapRange flags effectful iteration over a map.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fn ast.Node) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if method, ok := simapi.ScheduleCall(pass.TypesInfo, call); ok {
			pass.Reportf(call.Pos(),
				"%s inside a map range: events would be enqueued in map-iteration order; iterate a sorted key slice instead", method)
			return true
		}
		if m := journalWrite(pass.TypesInfo, call); m != "" {
			pass.Reportf(call.Pos(),
				"%s inside a map range writes in map-iteration order; iterate a sorted key slice instead", m)
			return true
		}
		if tgt := unsortedAccumulation(pass, call, rng, fn); tgt != nil {
			pass.Reportf(call.Pos(),
				"append to %s inside a map range without sorting afterwards: result order depends on map iteration; sort the keys first or sort %s after the loop",
				tgt.Name(), tgt.Name())
		}
		return true
	})
}

// journalWrite reports a journal/output write: a method call with a
// journaling name, or a top-level fmt print call.
func journalWrite(info *types.Info, call *ast.CallExpr) string {
	fn := calledFunc(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		if journalMethods[fn.Name()] {
			return "call to " + fn.Name()
		}
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name()
	}
	return ""
}

// unsortedAccumulation detects `x = append(x, ...)` where x is declared
// outside the range statement and no sort call mentioning x follows the
// loop within the enclosing function. Returns the accumulated variable,
// or nil if the pattern is absent or sorted afterwards.
func unsortedAccumulation(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt, fn ast.Node) *types.Var {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	root := rootVar(pass.TypesInfo, call.Args[0])
	if root == nil {
		return nil
	}
	if within(root.Pos(), rng) {
		return nil // loop-local accumulator: order visible only inside
	}
	if fn != nil && sortedAfter(pass, fn, rng, root) {
		return nil
	}
	return root
}

// sortedAfter reports whether a sort/slices call whose arguments mention v
// appears after the range loop in the enclosing function.
func sortedAfter(pass *analysis.Pass, fn ast.Node, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || found {
			return !found
		}
		callee := calledFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass.TypesInfo, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether expr references variable v.
func mentions(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

// rootVar returns the variable at the base of a selector/index chain (or
// the plain identifier itself).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		default:
			return nil
		}
	}
}

func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos <= node.End()
}
