package determinism_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "determinism")
}

// TestTelemetryPackage pins the tailored diagnostic for the instrumentation
// layer: wall-clock reads there violate the no-perturbation rule.
func TestTelemetryPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "telemetry")
}
