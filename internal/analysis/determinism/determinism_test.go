package determinism_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "determinism")
}
