package determinism_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "determinism")
}

// TestTelemetryPackage pins the tailored diagnostic for the instrumentation
// layer: wall-clock reads there violate the no-perturbation rule.
func TestTelemetryPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "telemetry")
}

// TestWallClockExemptions pins the facet-level exemption set: exactly the
// packages that legitimately touch the wall clock, each with a written
// reason. Growing this set is an explicit, reviewed act — if this test
// fails, either document the new package's reason here and in
// WallClockExempt, or inject a clock instead.
func TestWallClockExemptions(t *testing.T) {
	want := []string{
		"dve/internal/results",
		"dve/internal/serve",
		"dve/internal/stats",
	}
	if len(determinism.WallClockExempt) != len(want) {
		t.Errorf("WallClockExempt has %d entries, want %d: %v",
			len(determinism.WallClockExempt), len(want), determinism.WallClockExempt)
	}
	for _, path := range want {
		reason, ok := determinism.WallClockExempt[path]
		if !ok {
			t.Errorf("WallClockExempt missing %s", path)
			continue
		}
		if len(reason) < 20 {
			t.Errorf("WallClockExempt[%s] reason too thin to justify the exemption: %q", path, reason)
		}
	}
}
