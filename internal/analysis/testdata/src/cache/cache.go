// Package cache is a stand-in for dve/internal/cache, providing the State
// enum and an Entry carrying protocol state for the golden tests.
package cache

// State is a coherence state (mirrors dve/internal/cache.State).
type State uint8

const (
	Invalid State = iota
	Shared
	Owned
	Modified
	RemoteModified
)

// Entry is one cache line's protocol state.
type Entry struct {
	State   State
	Dirty   bool
	Owner   int8
	Sharers uint64
}
