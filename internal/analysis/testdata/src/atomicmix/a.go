// Package atomicmix seeds mixed atomic/plain field access and
// guarded-reference escapes.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	hits uint64
	// peers is the live peer set.
	peers map[string]int // guarded by mu
	names []string       // guarded by mu
	limit int            // guarded by mu
}

// bump is the atomic path.
func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

// read mixes in a plain load: may observe a torn or stale value.
func (c *counter) read() uint64 {
	return c.hits // want `c\.hits is accessed with atomic\.AddUint64 \(line \d+\) but plainly here`
}

// write mixes in a plain store: races the atomic adder outright.
func (c *counter) write(v uint64) {
	c.hits = v // want `c\.hits is accessed with atomic\.AddUint64 \(line \d+\) but plainly here`
}

// readAtomic stays on the atomic path: fine.
func (c *counter) readAtomic() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// escapeMap returns a guarded map: the alias outlives the critical section.
func (c *counter) escapeMap() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers // want `returning c\.peers aliases a field guarded by mu`
}

// escapeSlice returns a guarded slice: same hole, slice flavour.
func (c *counter) escapeSlice() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.names // want `returning c\.names aliases a field guarded by mu`
}

// snapshot returns a copy: the caller gets its own storage.
func (c *counter) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.names...)
}

// limitVal returns a guarded value type: the copy is safe.
func (c *counter) limitVal() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}
