// Package lockhold seeds mutex-held-across-blocking-operation shapes, both
// direct (sleep, channel op, select) and interprocedural (a call chain that
// bottoms out in a channel send).
package lockhold

import (
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
}

// sleepUnderLock parks with the mutex held.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `s\.mu is held across time\.Sleep`
	s.mu.Unlock()
}

// sleepAfterUnlock releases before parking: fine.
func (s *server) sleepAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// deferredUnlock's region runs to the end of the function.
func (s *server) deferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `s\.mu is held across channel receive`
}

// sendUnderRLock blocks readers and writers alike until the send lands.
func (s *server) sendUnderRLock(v int) {
	s.rw.RLock()
	s.ch <- v // want `s\.rw is held across channel send`
	s.rw.RUnlock()
}

// selectUnderLock parks on a default-less select.
func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `s\.mu is held across select with no default`
	case v := <-s.ch:
		_ = v
	}
}

// nonBlockingSelect has a default clause: it cannot park.
func (s *server) nonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// waitCond is the intended sync.Cond pattern: Wait releases the lock.
func (s *server) waitCond() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ch) == 0 {
		s.cond.Wait()
	}
}

// blockingHelper blocks only transitively, through flush.
func (s *server) blockingHelper() {
	s.flush()
}

func (s *server) flush() {
	s.ch <- 1
}

// callsBlockingUnderLock holds the mutex across the whole chain.
func (s *server) callsBlockingUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blockingHelper() // want `s\.mu is held across a call to blockingHelper, which blocks on channel send \(via blockingHelper -> flush\)`
}

// callsHelperAfterUnlock releases first: fine.
func (s *server) callsHelperAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.blockingHelper()
}

// spawnUnderLock launches a goroutine: the new frame does not hold mu.
func (s *server) spawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}
