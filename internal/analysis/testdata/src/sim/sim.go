// Package sim is a stand-in for dve/internal/sim: the analyzers recognize
// the engine's scheduling API by package name, type name and method name,
// so this stub exercises the same detection path as the real engine.
package sim

// Cycle mirrors sim.Cycle.
type Cycle uint64

// Handler mirrors sim.Handler, the typed fast-path callback.
type Handler func(arg any, v uint64)

// Engine mirrors the scheduling surface of sim.Engine.
type Engine struct{ now Cycle }

// Now returns the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles.
func (e *Engine) Schedule(delay Cycle, fn func()) {}

// ScheduleDaemon schedules a background event.
func (e *Engine) ScheduleDaemon(delay Cycle, fn func()) {}

// At runs fn at an absolute cycle.
func (e *Engine) At(when Cycle, fn func()) {}

// ScheduleFn mirrors the typed fast path of Schedule.
func (e *Engine) ScheduleFn(delay Cycle, h Handler, arg any, v uint64) {}

// ScheduleDaemonFn mirrors the typed fast path of ScheduleDaemon.
func (e *Engine) ScheduleDaemonFn(delay Cycle, h Handler, arg any, v uint64) {}

// AtFn mirrors the typed fast path of At.
func (e *Engine) AtFn(when Cycle, h Handler, arg any, v uint64) {}

// ParallelEngine mirrors the cross-partition scheduling surface of
// sim.ParallelEngine: per-socket partitions synchronized at link-latency
// epochs, with a mailbox for events that cross the partition boundary.
type ParallelEngine struct{ parts []*Engine }

// Part returns partition i's engine.
func (pe *ParallelEngine) Part(i int) *Engine { return pe.parts[i] }

// CrossAt delivers fn to partition dst at absolute cycle when.
func (pe *ParallelEngine) CrossAt(src, dst int, when Cycle, fn func()) {}

// CrossAtFn mirrors the typed fast path of CrossAt.
func (pe *ParallelEngine) CrossAtFn(src, dst int, when Cycle, h Handler, arg any, v uint64) {}

// CrossSchedule delivers fn to partition dst, delay cycles from now.
func (pe *ParallelEngine) CrossSchedule(src, dst int, delay Cycle, fn func()) {}
