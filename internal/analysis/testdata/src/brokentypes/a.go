// Package brokentypes parses but does not type-check: the loader must
// wrap the type error with the package path.
package brokentypes

func f() int {
	var s string
	return s + 1
}
