// Package determinism seeds the nondeterminism sources the analyzer bans
// from simulation packages: wall-clock reads, the process-global math/rand
// source, and effectful iteration over maps.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sim"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in a simulation package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in a simulation package`
}

func globalRand() int {
	return rand.Intn(6) // want `global rand\.Intn shares process-wide state`
}

func seeded(r *rand.Rand) int {
	return r.Intn(6) // ok: seeded generator, reproducible per run
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(42)) // ok: constructors are deterministic
}

func timeArithmetic(t0 time.Time, d time.Duration) time.Time {
	return t0.Add(d) // ok: methods on time.Time are pure
}

func mapSchedule(eng *sim.Engine, m map[int]int) {
	for k := range m {
		k := k
		eng.Schedule(1, func() { _ = k }) // want `Schedule inside a map range`
	}
}

func mapScheduleFn(eng *sim.Engine, m map[int]*int, h sim.Handler) {
	for _, v := range m {
		eng.ScheduleFn(1, h, v, 0) // want `ScheduleFn inside a map range`
	}
}

type journal struct{ events []int }

// Append records one event.
func (j *journal) Append(e int) { j.events = append(j.events, e) }

func mapJournal(j *journal, m map[int]int) {
	for _, v := range m {
		j.Append(v) // want `call to Append inside a map range`
	}
}

func mapPrint(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside a map range`
	}
}

func mapAccumulate(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to out inside a map range without sorting afterwards`
	}
	return out
}

func sortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // ok: sorted right below
	}
	sort.Ints(keys)
	return keys
}

func loopLocal(m map[int]int) int {
	total := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs) // ok: loop-local accumulator
		total += len(batch)
	}
	return total
}

func sliceRange(xs []int, eng *sim.Engine) {
	for _, x := range xs {
		x := x
		eng.Schedule(1, func() { _ = x }) // ok: slice iteration is ordered
	}
}

func mapCrossSchedule(pe *sim.ParallelEngine, m map[int]int) {
	for k := range m {
		k := k
		pe.CrossSchedule(0, 1, 1, func() { _ = k }) // want `CrossSchedule inside a map range`
	}
}

func mapCrossAtFn(pe *sim.ParallelEngine, m map[int]*int, h sim.Handler) {
	for _, v := range m {
		pe.CrossAtFn(0, 1, 5, h, v, 0) // want `CrossAtFn inside a map range`
	}
}

func sliceCrossSchedule(pe *sim.ParallelEngine, xs []int) {
	for _, x := range xs {
		x := x
		pe.CrossSchedule(1, 0, 1, func() { _ = x }) // ok: slice iteration is ordered
	}
}
