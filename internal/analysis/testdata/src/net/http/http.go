// Package http is a minimal stub of net/http for the analyzer golden
// tests. The GOPATH-style loader resolves the import path "net/http" here
// (tier 2 wins over the source importer), so the stub's types carry the
// real package path and the analyzers' path-based matching works without
// type-checking the real net/http from GOROOT source on every test run.
package http

import (
	"context"
	"errors"
	"io"
)

// Header is the stub of net/http.Header.
type Header map[string][]string

func (h Header) Set(key, value string) {}
func (h Header) Add(key, value string) {}
func (h Header) Del(key string)        {}
func (h Header) Get(key string) string { return "" }

// Request is the stub of net/http.Request.
type Request struct {
	Method string
	URL    string
}

// Response is the stub of net/http.Response.
type Response struct {
	StatusCode int
	Header     Header
	Body       io.ReadCloser
}

// Client is the stub of net/http.Client.
type Client struct{}

func (c *Client) Do(req *Request) (*Response, error)  { return nil, errStub }
func (c *Client) Get(url string) (*Response, error)   { return nil, errStub }
func (c *Client) Post(url, contentType string, body io.Reader) (*Response, error) {
	return nil, errStub
}
func (c *Client) PostForm(url string, data map[string][]string) (*Response, error) {
	return nil, errStub
}
func (c *Client) Head(url string) (*Response, error) { return nil, errStub }

// DefaultClient backs the package-level convenience functions.
var DefaultClient = &Client{}

var errStub = errors.New("stub")

func Get(url string) (*Response, error) { return nil, errStub }
func Post(url, contentType string, body io.Reader) (*Response, error) {
	return nil, errStub
}
func PostForm(url string, data map[string][]string) (*Response, error) {
	return nil, errStub
}
func Head(url string) (*Response, error) { return nil, errStub }

func NewRequest(method, url string, body io.Reader) (*Request, error) {
	return &Request{Method: method, URL: url}, nil
}

func NewRequestWithContext(ctx context.Context, method, url string, body io.Reader) (*Request, error) {
	return &Request{Method: method, URL: url}, nil
}

// ResponseWriter is the stub of net/http.ResponseWriter.
type ResponseWriter interface {
	Header() Header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// Error replies with the given message and status code.
func Error(w ResponseWriter, msg string, code int) {}

const (
	StatusOK                  = 200
	StatusInternalServerError = 500
)
