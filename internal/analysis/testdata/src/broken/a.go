// Package broken fails to parse: the loader's parse-error path must
// surface the syntax error with its position instead of panicking.
package broken

func f( {
