// Package cyclea imports cycleb, which imports cyclea back: the loader
// must report the cycle instead of recursing forever.
package cyclea

import "cycleb"

var V = cycleb.V
