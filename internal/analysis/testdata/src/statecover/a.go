// Package statecover seeds non-exhaustive switches over protocol enums.
package statecover

import "cache"

// full covers every declared state: fine without a default.
func full(s cache.State) string {
	switch s {
	case cache.Invalid:
		return "I"
	case cache.Shared:
		return "S"
	case cache.Owned:
		return "O"
	case cache.Modified:
		return "M"
	case cache.RemoteModified:
		return "RM"
	}
	return "?"
}

// missing drops RemoteModified — a future degraded mode would silently
// fall through here.
func missing(s cache.State) string {
	switch s { // want `switch over State does not handle RemoteModified`
	case cache.Invalid:
		return "I"
	case cache.Shared, cache.Owned, cache.Modified:
		return "valid"
	}
	return "?"
}

// silentDefault has a default, but a silent one: new states are absorbed
// instead of crashing, which is exactly the failure mode being banned.
func silentDefault(s cache.State) string {
	switch s { // want `switch over State does not handle Owned, Modified, RemoteModified`
	case cache.Invalid:
		return "I"
	case cache.Shared:
		return "S"
	default:
		return "?"
	}
}

// panickingDefault is the sanctioned escape hatch for intentionally
// partial handlers.
func panickingDefault(s cache.State) string {
	switch s {
	case cache.Invalid:
		return "I"
	default:
		panic("statecover: unhandled state")
	}
}

// mode is a package-local enum; lowercase names are held to the same rule.
type mode int

const (
	modeAllow mode = iota
	modeDeny
	modeDynamic
)

func localEnum(m mode) int {
	switch m { // want `switch over mode does not handle modeDynamic`
	case modeAllow:
		return 0
	case modeDeny:
		return 1
	}
	return -1
}

// result mimics the model checker's failure accumulator.
type result struct{ failures []string }

func (r *result) fail(msg string) { r.failures = append(r.failures, msg) }

// failingDefault records a violation for unhandled states — the model
// checker's equivalent of a panicking default.
func failingDefault(s cache.State, r *result) {
	switch s {
	case cache.Invalid:
	default:
		r.fail("unhandled state")
	}
}

// notEnum: switches over plain built-in types are out of scope.
func notEnum(n int) string {
	switch n {
	case 1:
		return "one"
	}
	return "many"
}

// nonConstCase: coverage cannot be reasoned about, so the switch is left
// alone rather than guessed at.
func nonConstCase(s cache.State, other cache.State) string {
	switch s {
	case other:
		return "same"
	}
	return "diff"
}
