// Package telemetry mirrors the instrumentation layer for the determinism
// analyzer's golden test: wall-clock reads here get the telemetry-specific
// diagnostic (timestamps must come from sim.Engine cycles).
package telemetry

import "time"

type tracer struct {
	events []uint64
}

func (t *tracer) stamp() {
	// A trace event timestamped off the host clock would differ run to run
	// and violate the no-perturbation contract.
	t.events = append(t.events, uint64(time.Now().UnixNano())) // want `time\.Now in the telemetry layer: telemetry timestamps come from sim\.Engine cycles`
}

func (t *tracer) age(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in the telemetry layer`
}

func (t *tracer) pure(nowCycle uint64) {
	t.events = append(t.events, nowCycle) // ok: simulated time passed in
}
