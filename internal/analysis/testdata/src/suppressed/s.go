// Package suppressed exercises the //lint:ignore contract.
package suppressed

import "time"

func above() time.Time {
	//lint:ignore determinism CLI-side reporting, never reached by the simulator
	return time.Now()
}

func inline() time.Time {
	return time.Now() //lint:ignore determinism inline form also covers its own line
}

func missingJustification() time.Time {
	//lint:ignore determinism
	return time.Now() // an ignore without a justification suppresses nothing
}

func wrongAnalyzer() time.Time {
	//lint:ignore statecover justification for a different analyzer
	return time.Now()
}
