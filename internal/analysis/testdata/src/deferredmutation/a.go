// Package deferredmutation seeds the grant/fill-split shape behind the
// three coherence races PR 1's fault campaign exposed: protocol state
// mutated at the serialization point while the matching fill runs in a
// later scheduled event.
package deferredmutation

import (
	"cache"
	"sim"
)

// grantThenDeferredFill is the PR 1 race reconstruction: the grant (state,
// owner) is applied immediately, the fill-side cleanup is deferred. Between
// the two events every other agent observes the half-applied transition.
func grantThenDeferredFill(eng *sim.Engine, e *cache.Entry) {
	e.State = cache.Modified // the "grant", applied at the serialization point
	e.Owner = 1
	eng.Schedule(4, func() {
		e.Dirty = true // want `closure deferred via Schedule mutates e\.Dirty, but e\.State was already mutated before scheduling \(line 16\)`
	})
}

// daemonSplit catches the same shape through ScheduleDaemon.
func daemonSplit(eng *sim.Engine, e *cache.Entry) {
	e.Sharers = 0
	eng.ScheduleDaemon(10, func() {
		e.State = cache.Shared // want `closure deferred via ScheduleDaemon mutates e\.State`
	})
}

// atSplit catches the same shape through At, including writes through an
// element of the captured state.
func atSplit(eng *sim.Engine, entries []cache.Entry) {
	entries[0].State = cache.Owned
	eng.At(100, func() {
		entries[0].Dirty = true // want `closure deferred via At mutates entries\[0\]\.Dirty`
	})
}

// fnSplit catches the grant/fill split through the typed fast path: the
// deferred handler is a closure literal passed to ScheduleFn.
func fnSplit(eng *sim.Engine, e *cache.Entry) {
	e.State = cache.Modified
	eng.ScheduleFn(4, func(any, uint64) {
		e.Dirty = true // want `closure deferred via ScheduleFn mutates e\.Dirty`
	}, nil, 0)
}

// atFnSplit catches the same shape when the mutation rides in the arg
// closure rather than the handler.
func atFnSplit(eng *sim.Engine, e *cache.Entry, run sim.Handler) {
	e.Sharers = 3
	eng.AtFn(100, run, func() {
		e.State = cache.Shared // want `closure deferred via AtFn mutates e\.State`
	}, 0)
}

// allDeferred is the fix for the race above: the whole transition happens
// inside the event, so no half-applied state is ever observable.
func allDeferred(eng *sim.Engine, e *cache.Entry) {
	eng.Schedule(4, func() {
		e.State = cache.Modified
		e.Dirty = true // ok: grant and fill on the same side of the boundary
	})
}

// allImmediate applies everything at the serialization point and only
// reads in the deferred event — also fine.
func allImmediate(eng *sim.Engine, e *cache.Entry, notify func(cache.State)) {
	e.State = cache.Shared
	e.Dirty = false
	eng.Schedule(4, func() {
		notify(e.State) // ok: the closure only reads
	})
}

// counters is not protocol state (its type lives in this package, not in
// cache/coherence/dve/mcheck), so split mutation is allowed.
type counters struct{ fills int }

func statsOnly(eng *sim.Engine, c *counters) {
	c.fills++
	eng.Schedule(1, func() {
		c.fills++ // ok: plain bookkeeping, not protocol state
	})
}

// exclusiveBranches mirrors the directory's GETS handler: one switch arm
// applies the transition immediately, another defers the whole transition
// into the data-arrival event. The arms are mutually exclusive, so nothing
// straddles the boundary.
func exclusiveBranches(eng *sim.Engine, e *cache.Entry, owned bool) {
	switch {
	case !owned:
		e.State = cache.Shared
		e.Sharers = 1
	default:
		eng.Schedule(8, func() {
			e.State = cache.Owned // ok: the immediate mutation is in the other arm
			e.Sharers = 2
		})
	}
}

// siblingClosures defers the whole transition in two pieces, both deferred:
// whatever interleaving results, no state was half-applied at the
// serialization point.
func siblingClosures(eng *sim.Engine, e *cache.Entry) {
	eng.Schedule(1, func() {
		e.State = cache.Shared
	})
	eng.Schedule(2, func() {
		e.Dirty = false // ok: the earlier mutation is in a sibling closure
	})
}

// guardedMutation keeps the immediate mutation behind an if that returns:
// the scheduling call never runs on that path.
func guardedMutation(eng *sim.Engine, e *cache.Entry, hit bool) {
	if hit {
		e.State = cache.Shared
		return
	}
	eng.Schedule(3, func() {
		e.State = cache.Invalid // ok: mutually exclusive with the if body
	})
}

// closureLocal declares the entry inside the closure: nothing is captured,
// nothing can be observed half-applied.
func closureLocal(eng *sim.Engine) {
	eng.Schedule(2, func() {
		var e cache.Entry
		e.State = cache.Modified
		e.Dirty = true // ok: closure-local state
	})
}

// crossSplit is the grant/fill split across the partition boundary: the
// grant is applied on the sending partition, the fill is deferred into the
// destination partition's queue via the epoch mailbox. Worse than the
// single-engine split — the half-applied window now spans two goroutines.
func crossSplit(pe *sim.ParallelEngine, e *cache.Entry) {
	e.State = cache.Modified
	pe.CrossSchedule(0, 1, 4, func() {
		e.Dirty = true // want `closure deferred via CrossSchedule mutates e\.Dirty`
	})
}

// crossAtSplit catches the same shape through the absolute-time mailbox
// entry point.
func crossAtSplit(pe *sim.ParallelEngine, e *cache.Entry) {
	e.Sharers = 0
	pe.CrossAt(0, 1, 100, func() {
		e.State = cache.Shared // want `closure deferred via CrossAt mutates e\.State`
	})
}

// crossAllDeferred ships the whole transition to the destination
// partition: nothing is half-applied on the sending side.
func crossAllDeferred(pe *sim.ParallelEngine, e *cache.Entry) {
	pe.CrossSchedule(0, 1, 4, func() {
		e.State = cache.Modified
		e.Dirty = true // ok: grant and fill both on the destination side
	})
}

// partScheduleSplit reaches a partition's plain engine through Part():
// the receiver is still a *sim.Engine, so the existing detection applies.
func partScheduleSplit(pe *sim.ParallelEngine, e *cache.Entry) {
	e.Owner = 1
	pe.Part(0).Schedule(2, func() {
		e.Dirty = true // want `closure deferred via Schedule mutates e\.Dirty`
	})
}
