// Package guardedfield seeds lock-discipline violations against the
// "// guarded by <mu>" field annotation.
package guardedfield

import "sync"

type set struct {
	mu sync.Mutex
	// faults is the active fault list.
	faults []int // guarded by mu
	name   string
}

// add locks before touching the guarded field: fine.
func (s *set) add(f int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = append(s.faults, f)
}

// addRacy touches the guarded field with no lock anywhere in the function.
func (s *set) addRacy(f int) {
	s.faults = append(s.faults, f) // want `s\.faults is guarded by mu` `s\.faults is guarded by mu`
}

// countLocked documents the contract instead of locking: mu must be held.
func (s *set) countLocked() int {
	return len(s.faults) // ok: caller-locked by doc comment
}

// lockTooLate reads the guarded field before acquiring the lock.
func (s *set) lockTooLate() int {
	n := len(s.faults) // want `s\.faults is guarded by mu`
	s.mu.Lock()
	defer s.mu.Unlock()
	return n + len(s.faults)
}

// unguarded fields need no lock.
func (s *set) label() string { return s.name }

// rlockOK: reader locks count too.
type rset struct {
	mu sync.RWMutex
	snapshots []int // guarded by mu
}

func (r *rset) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.snapshots)
}
