// Package goleak seeds goroutine-leak shapes: unbounded loops spawned from
// methods, with and without each recognised stop path (context, closed done
// channel, joined WaitGroup).
package goleak

import (
	"context"
	"sync"
)

type worker struct {
	wg     sync.WaitGroup
	done   chan struct{}
	feed   chan int
	events chan int
	jobs   chan int
}

// startLeaky spawns a forever-loop nothing can stop.
func (w *worker) startLeaky() {
	go func() { // want `goroutine spawned in \(worker\)\.startLeaky loops forever with no reachable stop path`
		for {
			w.step()
		}
	}()
}

func (w *worker) step() {}

// startMethodLeak leaks through a named method body.
func (w *worker) startMethodLeak() {
	go w.spin() // want `spin goroutine spawned in \(worker\)\.startMethodLeak loops forever with no reachable stop path`
}

func (w *worker) spin() {
	for {
		w.step()
	}
}

// startCtx is cleared by the context stop path.
func (w *worker) startCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

// startCtxCond is cleared by a ctx.Err() loop condition.
func (w *worker) startCtxCond(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			w.step()
		}
	}()
}

// startDone is cleared by the done channel Stop closes.
func (w *worker) startDone() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

// Stop closes the done channel, unblocking startDone's goroutine.
func (w *worker) Stop() {
	close(w.done)
}

// startJoined is cleared by the WaitGroup Drain joins.
func (w *worker) startJoined() {
	w.wg.Add(1)
	go w.loop()
}

func (w *worker) loop() {
	defer w.wg.Done()
	for j := range w.jobs {
		_ = j
	}
}

// Drain joins the worker goroutine.
func (w *worker) Drain() {
	w.wg.Wait()
}

// startRangeLeak ranges a channel nobody closes and joins nothing.
func (w *worker) startRangeLeak() {
	go func() { // want `goroutine spawned in \(worker\)\.startRangeLeak loops forever with no reachable stop path`
		for e := range w.events {
			_ = e
		}
	}()
}

// startRangeClosed ranges a channel closeFeed closes: the range terminates.
func (w *worker) startRangeClosed() {
	go func() {
		for e := range w.feed {
			_ = e
		}
	}()
}

func (w *worker) closeFeed() {
	close(w.feed)
}

// startBounded's loop terminates on its own: never a candidate.
func (w *worker) startBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			w.step()
		}
	}()
}

// runForever is a plain function: long-lived-type methods only.
func runForever() {
	go func() {
		for {
		}
	}()
}
