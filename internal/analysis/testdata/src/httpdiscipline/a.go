// Package httpdiscipline seeds outbound-RPC and handler hygiene shapes:
// default-client conveniences, un-cancellable requests, leaked response
// bodies, post-WriteHeader header mutation, and silent handler error paths.
package httpdiscipline

import (
	"errors"
	"net/http"
)

// fetchDefault rides the shared default client: no timeout, no context.
func fetchDefault(url string) {
	resp, _ := http.Get(url) // want `http\.Get uses the shared http\.DefaultClient`
	_ = resp
}

// buildUncancellable cannot be abandoned on drain.
func buildUncancellable(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http\.NewRequest builds an un-cancellable request`
}

// clientGet uses a method convenience that cannot carry a context.
func clientGet(c *http.Client, url string) (*http.Response, error) {
	return c.Get(url) // want `http\.Client\.Get cannot carry a context`
}

// doLeaky round-trips and drops the body on the floor.
func doLeaky(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req) // want `HTTP round-trip whose response body is never closed`
	if err != nil {
		return err
	}
	_ = resp.StatusCode
	return nil
}

// doClosed closes the body: fine.
func doClosed(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// doReturned hands the response to the caller: ownership transfers.
func doReturned(c *http.Client, req *http.Request) (*http.Response, error) {
	return c.Do(req)
}

// doer is the fabric's transport seam: Do on an interface still round-trips.
type doer interface {
	Do(*http.Request) (*http.Response, error)
}

// seamLeaky leaks the body through the interface seam.
func seamLeaky(d doer, req *http.Request) {
	resp, _ := d.Do(req) // want `HTTP round-trip whose response body is never closed`
	_ = resp
}

// handleLate mutates a header after the status line is on the wire.
func handleLate(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Header().Set("X-Trace", "1") // want `header mutated after WriteHeader`
}

// handleEarly sets headers before writing: fine.
func handleEarly(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Trace", "1")
	w.WriteHeader(http.StatusOK)
}

// handleSilent returns on error with no status: an implicit 200 OK.
func handleSilent(w http.ResponseWriter, r *http.Request) {
	if err := validate(r); err != nil {
		return // want `handler error path returns without writing a status`
	}
	w.WriteHeader(http.StatusOK)
}

// handleErrored writes a status on the error path: fine.
func handleErrored(w http.ResponseWriter, r *http.Request) {
	if err := validate(r); err != nil {
		http.Error(w, "bad request", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// registerLiteral exercises handler-shaped literals.
func registerLiteral() {
	handle(func(w http.ResponseWriter, r *http.Request) {
		if err := validate(r); err != nil {
			return // want `handler error path returns without writing a status`
		}
		w.WriteHeader(http.StatusOK)
	})
}

func handle(h func(http.ResponseWriter, *http.Request)) {}

func validate(r *http.Request) error { return errors.New("bad") }
