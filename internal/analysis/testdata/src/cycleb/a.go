// Package cycleb closes the import cycle with cyclea.
package cycleb

import "cyclea"

var V = cyclea.V
