package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dve/internal/analysis"
	"dve/internal/analysis/determinism"
)

func loadTestPkg(t *testing.T, name string) *analysis.Package {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join("testdata", "src"), "")
	pkg, err := loader.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestLoader checks that the stdlib-only loader produces a fully
// type-checked package with resolved imports.
func TestLoader(t *testing.T) {
	pkg := loadTestPkg(t, "suppressed")
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("loader returned package without type information")
	}
	if pkg.Types.Name() != "suppressed" {
		t.Fatalf("package name = %q, want suppressed", pkg.Types.Name())
	}
	if len(pkg.Info.Uses) == 0 {
		t.Fatal("no resolved uses: type info not populated")
	}
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "time" {
			found = true
		}
	}
	if !found {
		t.Fatal("stdlib import time not resolved")
	}
}

// TestLoaderModuleMode loads a real package of this module, resolving an
// intra-module dependency (dve/internal/topology) plus stdlib imports.
func TestLoaderModuleMode(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root, "dve")
	pkg, err := loader.Load("dve/internal/fault")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "fault" {
		t.Fatalf("package name = %q, want fault", pkg.Types.Name())
	}
}

// TestSuppress checks the //lint:ignore contract: an ignore with a
// justification suppresses its own line and the next, a bare ignore or a
// mismatched analyzer name suppresses nothing.
func TestSuppress(t *testing.T) {
	pkg := loadTestPkg(t, "suppressed")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (missing justification + wrong analyzer):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestDiagnosticsSorted checks the driver-facing ordering guarantee.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := loadTestPkg(t, "determinism")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Position, diags[i].Position
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s after %s", b, a)
		}
	}
}
