package analysis_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"dve/internal/analysis"
	"dve/internal/analysis/determinism"
	"dve/internal/analysis/statecover"
)

func loadTestPkg(t *testing.T, name string) *analysis.Package {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join("testdata", "src"), "")
	pkg, err := loader.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestLoader checks that the stdlib-only loader produces a fully
// type-checked package with resolved imports.
func TestLoader(t *testing.T) {
	pkg := loadTestPkg(t, "suppressed")
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("loader returned package without type information")
	}
	if pkg.Types.Name() != "suppressed" {
		t.Fatalf("package name = %q, want suppressed", pkg.Types.Name())
	}
	if len(pkg.Info.Uses) == 0 {
		t.Fatal("no resolved uses: type info not populated")
	}
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "time" {
			found = true
		}
	}
	if !found {
		t.Fatal("stdlib import time not resolved")
	}
}

// TestLoaderModuleMode loads a real package of this module, resolving an
// intra-module dependency (dve/internal/topology) plus stdlib imports.
func TestLoaderModuleMode(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root, "dve")
	pkg, err := loader.Load("dve/internal/fault")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "fault" {
		t.Fatalf("package name = %q, want fault", pkg.Types.Name())
	}
}

// TestSuppress checks the //lint:ignore contract: an ignore with a
// justification suppresses its own line and the next, a bare ignore or a
// mismatched analyzer name suppresses nothing.
func TestSuppress(t *testing.T) {
	pkg := loadTestPkg(t, "suppressed")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (missing justification + wrong analyzer):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestLoaderErrors pins the loader's failure modes: each broken input must
// produce a descriptive error, not a panic or a silent empty package.
func TestLoaderErrors(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		want string // substring of the error
	}{
		{"missing package", "no-such-package", "cannot resolve package"},
		{"parse error", "broken", "broken/a.go"},
		{"type-check failure", "brokentypes", "type-checking brokentypes"},
		{"no Go files", "empty", "no Go files in"},
		{"import cycle", "cyclea", "import cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loader := analysis.NewLoader(filepath.Join("testdata", "src"), "")
			_, err := loader.Load(tc.pkg)
			if err == nil {
				t.Fatalf("Load(%q) succeeded, want error containing %q", tc.pkg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Load(%q) error = %q, want substring %q", tc.pkg, err, tc.want)
			}
		})
	}
}

// TestRunAnalyzerError checks that an analyzer's own error aborts the run
// and propagates to the caller instead of being swallowed.
func TestRunAnalyzerError(t *testing.T) {
	pkg := loadTestPkg(t, "suppressed")
	boom := errors.New("analyzer exploded")
	failing := &analysis.Analyzer{
		Name: "failing",
		Doc:  "always errors",
		Run:  func(*analysis.Pass) error { return boom },
	}
	if _, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{failing}); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if _, err := analysis.RunAll([]*analysis.Package{pkg}, []*analysis.Analyzer{failing}); !errors.Is(err, boom) {
		t.Fatalf("RunAll error = %v, want %v", err, boom)
	}
}

// TestRunAll checks the driver-facing view: suppressed findings come back
// marked with their justification, a bare ignore is reported as
// staleignore, and an ignore naming an in-run analyzer that reports
// nothing is reported stale — but only when that analyzer is in the run.
func TestRunAll(t *testing.T) {
	pkg := loadTestPkg(t, "suppressed")

	// statecover in the run set: the wrongAnalyzer directive is judged.
	diags, err := analysis.RunAll(
		[]*analysis.Package{pkg},
		[]*analysis.Analyzer{determinism.Analyzer, statecover.Analyzer},
	)
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, active, stale []analysis.Diagnostic
	for _, d := range diags {
		switch {
		case d.Analyzer == analysis.StaleIgnoreName:
			stale = append(stale, d)
		case d.Suppressed:
			suppressed = append(suppressed, d)
		default:
			active = append(active, d)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("got %d suppressed findings, want 2 (above + inline):\n%v", len(suppressed), suppressed)
	}
	for _, d := range suppressed {
		if d.Justification == "" {
			t.Errorf("suppressed finding lost its justification: %s", d)
		}
	}
	if len(active) != 2 {
		t.Fatalf("got %d active findings, want 2 (bare ignore + wrong analyzer):\n%v", len(active), active)
	}
	if len(stale) != 2 {
		t.Fatalf("got %d staleignore findings, want 2 (bare directive + unmatched statecover):\n%v", len(stale), stale)
	}
	var sawBare, sawStale bool
	for _, d := range stale {
		if strings.Contains(d.Message, "no justification") {
			sawBare = true
		}
		if strings.Contains(d.Message, "stale //lint:ignore statecover") {
			sawStale = true
		}
	}
	if !sawBare || !sawStale {
		t.Fatalf("staleignore findings missing a case (bare=%v stale=%v):\n%v", sawBare, sawStale, stale)
	}

	// statecover absent: its directive's staleness is unknowable, so only
	// the bare directive is reported.
	diags, err = analysis.RunAll([]*analysis.Package{pkg}, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	stale = nil
	for _, d := range diags {
		if d.Analyzer == analysis.StaleIgnoreName {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "no justification") {
		t.Fatalf("with statecover unselected, want only the bare-directive finding, got:\n%v", stale)
	}
}

// TestDiagnosticsSorted checks the driver-facing ordering guarantee.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := loadTestPkg(t, "determinism")
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Position, diags[i].Position
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s after %s", b, a)
		}
	}
}
