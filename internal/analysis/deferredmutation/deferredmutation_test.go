package deferredmutation_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/deferredmutation"
)

func TestDeferredMutation(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), deferredmutation.Analyzer, "deferredmutation")
}
