// Package deferredmutation flags protocol-state mutations that straddle a
// sim.Engine scheduling boundary: a closure deferred into the event queue
// mutates coherence/cache/directory state that the enclosing code already
// mutated before scheduling.
//
// This is the exact shape behind all three coherence races PR 1's fault
// campaign exposed (grant applied at the serialization point, matching
// fill/cleanup deferred into a later event): between the two halves, other
// events observe the half-applied transition. The fix is to apply the
// whole transition on one side of the boundary — either all at the
// serialization point, or all inside the deferred event.
package deferredmutation

import (
	"go/ast"
	"go/token"
	"go/types"

	"dve/internal/analysis"
	"dve/internal/analysis/simapi"
)

// Analyzer flags split protocol-state transitions across scheduling
// boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "deferredmutation",
	Doc: "detect protocol state mutated both at a serialization point and " +
		"inside a closure deferred via sim.Engine (the grant/fill-split race shape)",
	Run: run,
}

// mutation is one write through a field or element of a variable.
type mutation struct {
	root *types.Var // the variable at the base of the selector chain
	expr ast.Expr   // the full LHS, for the message
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		branches := collectBranches(file)
		muts := collectMutations(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			method, ok := simapi.ScheduleCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			// The deferred callback is the trailing func() for the closure
			// entry points; the Fn fast paths take a handler (and possibly a
			// closure arg) mid-argument-list, so check every literal.
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkClosure(pass, branches, muts, method, call, lit)
				}
			}
			return true
		})
	}
	return nil
}

// branch is a source region whose statements execute only on some paths:
// a case/comm clause, an if or else body, or a closure body. A mutation
// inside such a region counts as "before the scheduling call" only if the
// call sits in the same region — otherwise the two are on mutually
// exclusive paths (different switch arms) or different execution times
// (a sibling deferred closure), and no transition is split.
type branch struct {
	pos, end token.Pos
}

func collectBranches(file *ast.File) []branch {
	var out []branch
	add := func(n ast.Node) {
		if n != nil {
			out = append(out, branch{n.Pos(), n.End()})
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CaseClause, *ast.CommClause:
			add(n)
		case *ast.IfStmt:
			add(x.Body)
			add(x.Else)
		case *ast.FuncLit:
			add(x.Body)
		}
		return true
	})
	return out
}

// innermost returns the smallest branch region containing pos, or nil.
func innermost(branches []branch, pos token.Pos) *branch {
	var best *branch
	for i := range branches {
		b := &branches[i]
		if pos < b.pos || pos > b.end {
			continue
		}
		if best == nil || b.end-b.pos < best.end-best.pos {
			best = b
		}
	}
	return best
}

// checkClosure reports every captured protocol-state variable the deferred
// closure mutates after the enclosing scope already mutated it on the path
// to the scheduling call.
func checkClosure(pass *analysis.Pass, branches []branch, muts []mutation, method string, call *ast.CallExpr, lit *ast.FuncLit) {
	for _, m := range muts {
		if m.pos < lit.Pos() || m.pos > lit.End() {
			continue // not inside this closure
		}
		if within(m.root.Pos(), lit) {
			continue // closure-local variable, not captured
		}
		if !simapi.IsProtocolState(m.root.Type()) {
			continue
		}
		// Earliest prior mutation of the same variable that executes on
		// the path to the scheduling call: mutations in mutually exclusive
		// switch arms or sibling closures don't split this transition.
		var prior *mutation
		for i := range muts {
			p := &muts[i]
			if p.root != m.root || p.pos >= call.Pos() {
				continue
			}
			if b := innermost(branches, p.pos); b != nil && (call.Pos() < b.pos || call.Pos() > b.end) {
				continue
			}
			prior = p
			break
		}
		if prior == nil {
			continue
		}
		pass.Reportf(m.pos,
			"closure deferred via %s mutates %s, but %s was already mutated before scheduling (line %d): protocol-state transitions must not straddle a scheduling boundary",
			method, types.ExprString(m.expr), types.ExprString(prior.expr),
			pass.Fset.Position(prior.pos).Line)
	}
}

// collectMutations gathers every field/element write in the file, in
// source order.
func collectMutations(pass *analysis.Pass, file *ast.File) []mutation {
	var muts []mutation
	add := func(lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj, ok := pass.TypesInfo.ObjectOf(root).(*types.Var)
		if !ok {
			return
		}
		muts = append(muts, mutation{root: obj, expr: lhs, pos: lhs.Pos()})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(stmt.X)
		}
		return true
	})
	return muts
}

// rootIdent returns the identifier at the base of a selector/index chain,
// or nil for expressions that are not field/element writes (a write to a
// plain local variable carries no shared protocol state).
func rootIdent(e ast.Expr) *ast.Ident {
	chained := false
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e, chained = x.X, true
		case *ast.IndexExpr:
			e, chained = x.X, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e, chained = x.X, true
		case *ast.Ident:
			if !chained {
				return nil
			}
			return x
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos <= node.End()
}
