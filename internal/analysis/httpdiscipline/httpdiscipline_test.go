package httpdiscipline_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/httpdiscipline"
)

func TestHTTPDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), httpdiscipline.Analyzer, "httpdiscipline")
}
