// Package httpdiscipline enforces the fabric's HTTP hygiene on both sides
// of the wire. The coordinator/worker protocol survives chaos testing
// because every RPC is cancellable and every response body is closed; this
// analyzer makes those properties structural instead of reviewed-for.
//
// Outbound (clients):
//
//   - the package-level conveniences http.Get/Post/PostForm/Head are
//     banned: they ride the shared http.DefaultClient, which has no
//     timeout, so one wedged peer parks the goroutine forever;
//   - http.NewRequest is banned in favour of http.NewRequestWithContext:
//     an un-cancellable fabric RPC cannot be abandoned on drain;
//   - http.Client.Get/Post/PostForm/Head methods are banned for the same
//     reason — only a *http.Request built with a context can carry one;
//   - a function that performs a round-trip (http.Client.Do or any
//     Do(*http.Request) seam, like serve.Doer) must close the response
//     body: it must mention Body.Close(), or hand the *http.Response to
//     its caller (returning it transfers ownership).
//
// Inbound (handlers — any func with an (http.ResponseWriter, *http.Request)
// signature):
//
//   - mutating the header map after WriteHeader is dead code: the headers
//     are already on the wire (flagged positionally, like lockhold);
//   - an error-checking branch (`if err != nil { ... return }`) must write
//     a status before returning: a handler that returns silently on error
//     sends an implicit 200 OK with an empty body, which a polling fabric
//     client records as success.
package httpdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"dve/internal/analysis"
)

// Analyzer enforces outbound timeout/body-close and handler status
// discipline for net/http.
var Analyzer = &analysis.Analyzer{
	Name: "httpdiscipline",
	Doc: "outbound HTTP must be cancellable (NewRequestWithContext, no default-" +
		"client conveniences) and close response bodies; handlers must not mutate " +
		"headers after WriteHeader and must write a status on error paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOutbound(pass, fd)
			checkHandlers(pass, fd)
		}
	}
	return nil
}

// checkOutbound applies the client-side rules to one declaration.
func checkOutbound(pass *analysis.Pass, fd *ast.FuncDecl) {
	var roundTrips []*ast.CallExpr
	closesBody := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return true
		}
		if sig.Recv() == nil {
			if fn.Pkg().Path() != "net/http" {
				return true
			}
			switch fn.Name() {
			case "Get", "Post", "PostForm", "Head":
				pass.Reportf(call.Pos(),
					"http.%s uses the shared http.DefaultClient, which has no timeout: build the request with http.NewRequestWithContext and send it through a client you own",
					fn.Name())
			case "NewRequest":
				pass.Reportf(call.Pos(),
					"http.NewRequest builds an un-cancellable request: use http.NewRequestWithContext so the RPC can be abandoned on timeout or drain")
			}
			return true
		}
		// Methods: client round-trips and body closes.
		switch {
		case isHTTPClientMethod(fn, sig):
			if fn.Name() != "Do" {
				pass.Reportf(call.Pos(),
					"http.Client.%s cannot carry a context: build the request with http.NewRequestWithContext and use Do",
					fn.Name())
			}
			roundTrips = append(roundTrips, call)
		case isDoerSeam(fn, sig):
			roundTrips = append(roundTrips, call)
		case fn.Name() == "Close" && isBodyClose(pass, call):
			closesBody = true
		}
		return true
	})
	if len(roundTrips) == 0 || closesBody || returnsResponse(pass, fd) {
		return
	}
	for _, call := range roundTrips {
		pass.Reportf(call.Pos(),
			"HTTP round-trip whose response body is never closed in this function: defer resp.Body.Close() (a leaked body pins the connection and starves the client's pool)")
	}
}

// isHTTPClientMethod reports Do/Get/Post/PostForm/Head on *http.Client.
func isHTTPClientMethod(fn *types.Func, sig *types.Signature) bool {
	switch fn.Name() {
	case "Do", "Get", "Post", "PostForm", "Head":
	default:
		return false
	}
	return recvNamed(sig.Recv().Type(), "net/http", "Client")
}

// isDoerSeam reports a method named Do taking exactly one *http.Request —
// the interface seam the fabric (and its chaos transport) round-trips
// through.
func isDoerSeam(fn *types.Func, sig *types.Signature) bool {
	return fn.Name() == "Do" && sig.Params().Len() == 1 &&
		isPtrToNamed(sig.Params().At(0).Type(), "net/http", "Request")
}

// isBodyClose reports x.Body.Close() where Body is a field selection.
func isBodyClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "Body"
}

// returnsResponse reports whether the function hands a *http.Response to
// its caller, transferring body ownership.
func returnsResponse(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, f := range fd.Type.Results.List {
		if t := pass.TypesInfo.TypeOf(f.Type); t != nil && isPtrToNamed(t, "net/http", "Response") {
			return true
		}
	}
	return false
}

// checkHandlers applies the handler rules to the declaration and every
// handler-shaped literal inside it.
func checkHandlers(pass *analysis.Pass, fd *ast.FuncDecl) {
	if w := handlerWriter(pass, fd.Type); w != nil {
		checkHandlerBody(pass, fd.Body, w)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if w := handlerWriter(pass, lit.Type); w != nil {
			checkHandlerBody(pass, lit.Body, w)
		}
		return true
	})
}

// handlerWriter returns the http.ResponseWriter parameter object of a
// handler-shaped signature, or nil.
func handlerWriter(pass *analysis.Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, f := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil || !recvNamed(t, "net/http", "ResponseWriter") {
			continue
		}
		if len(f.Names) == 1 {
			return pass.TypesInfo.ObjectOf(f.Names[0])
		}
	}
	return nil
}

// checkHandlerBody enforces the two inbound rules for one handler.
func checkHandlerBody(pass *analysis.Pass, body *ast.BlockStmt, w types.Object) {
	// Positional WriteHeader fence: header mutations after the earliest
	// WriteHeader on this writer are dead code. Write(...) implies
	// WriteHeader too, but flagging only the explicit call keeps the rule
	// exact on branchy handlers.
	var firstWH token.Pos = token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == w {
			if firstWH == token.NoPos || call.Pos() < firstWH {
				firstWH = call.Pos()
			}
		}
		return true
	})
	if firstWH != token.NoPos {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Set", "Add", "Del":
			default:
				return true
			}
			// w.Header().Set(...): receiver is a call to Header() on w.
			hdr, ok := sel.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			hsel, ok := hdr.Fun.(*ast.SelectorExpr)
			if !ok || hsel.Sel.Name != "Header" {
				return true
			}
			id, ok := hsel.X.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(id) != w || call.Pos() <= firstWH {
				return true
			}
			pass.Reportf(call.Pos(),
				"header mutated after WriteHeader (line %d): the headers are already on the wire, this %s is dead code",
				pass.Fset.Position(firstWH).Line, sel.Sel.Name)
			return true
		})
	}

	// Error paths must write a status before returning.
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !errorCondition(pass, ifs.Cond) {
			return true
		}
		if len(ifs.Body.List) == 0 {
			return true
		}
		ret, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 0 {
			return true
		}
		if mentionsObj(pass, ifs, w) {
			return true // something in the branch (or its condition) wrote through w
		}
		pass.Reportf(ret.Pos(),
			"handler error path returns without writing a status: the client sees an implicit 200 OK; write http.Error (or an explicit status) before returning")
		return true
	})
}

// errorCondition reports whether the if condition compares an error-typed
// operand against nil (err != nil and friends).
func errorCondition(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			return true
		}
		for _, e := range []ast.Expr{bin.X, bin.Y} {
			t := pass.TypesInfo.TypeOf(e)
			if t == nil {
				continue
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsObj reports whether the subtree references the object.
func mentionsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// calledFunc resolves the called function or method, or nil.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// recvNamed reports whether t (or its pointee) is the named type pkg.name.
func recvNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isPtrToNamed reports whether t is *pkg.name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return recvNamed(p.Elem(), pkgPath, name)
}
