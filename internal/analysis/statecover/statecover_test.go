package statecover_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/statecover"
)

func TestStateCover(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), statecover.Analyzer, "statecover")
}
