// Package statecover enforces exhaustive handling of protocol enums: every
// switch over an enum-like named type (State, Mode, Kind, ...) must either
// cover all constants declared for that type or carry a default that
// panics. A silent default — or no default — lets a newly added state
// (say, a future degraded mode) fall through an existing protocol handler
// without anyone noticing, which in a cycle-accurate simulator corrupts
// results instead of crashing.
package statecover

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"dve/internal/analysis"
)

// Analyzer checks switches over enum-like types for exhaustiveness.
var Analyzer = &analysis.Analyzer{
	Name: "statecover",
	Doc: "switches over protocol enums (State/Mode/Kind/... types) must cover " +
		"every declared constant or panic in default, so new states cannot fall through silently",
	Run: run,
}

// enumName matches type names treated as protocol enums.
var enumName = regexp.MustCompile(`(?i)(state|mode|kind|phase|code|protocol|level|status)`)

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		checkSwitch(pass, sw)
		return true
	})
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	t := pass.TypesInfo.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || !enumName.MatchString(named.Obj().Name()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	declared := declaredConsts(named)
	if len(declared) < 2 {
		return // not an enum
	}

	covered := map[string]bool{}
	hasPanickingDefault := false
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil { // default:
			if panics(pass, cc) {
				hasPanickingDefault = true
			}
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: cannot reason about coverage
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	if hasPanickingDefault {
		return
	}
	var missing []string
	for _, c := range declared {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(),
		"switch over %s does not handle %s and has no panicking default: new states would fall through silently (add the cases or a panicking default)",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// declaredConsts returns the constants of exactly type named declared in
// its defining package, deduplicated by value (aliases like a Zero name for
// an existing value count as one state), sorted by constant value.
func declaredConsts(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	byVal := map[string]*types.Const{}
	for _, name := range pkg.Scope().Names() { // Names() is sorted
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if _, dup := byVal[key]; !dup {
			byVal[key] = c
		}
	}
	out := make([]*types.Const, 0, len(byVal))
	for _, c := range byVal {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Val(), out[j].Val()
		if a.Kind() == constant.Int && b.Kind() == constant.Int {
			return constant.Compare(a, token.LSS, b)
		}
		return a.ExactString() < b.ExactString()
	})
	return out
}

// panics reports whether the clause body reaches a call that aborts or
// loudly diagnoses the run: panic, log.Fatal*, (*testing.T).Fatal*,
// os.Exit, or a failure-recording method (Fail*/fail, the model checker's
// res.fail counts a state as a violation, which is exactly the "crash
// loudly on an unhandled state" contract this analyzer wants).
func panics(pass *analysis.Pass, cc *ast.CaseClause) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return !found
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					if _, ok := pass.TypesInfo.ObjectOf(fun).(*types.Builtin); ok {
						found = true
					}
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Fail") ||
					name == "fail" || name == "Exit" || name == "Panic" || name == "Panicf" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
