package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// StaleIgnoreName is the pseudo-analyzer under which RunAll reports
// //lint:ignore directives that suppress nothing. Stale-ignore findings are
// deliberately not themselves suppressible — the fix is always deleting or
// repairing the directive, never ignoring the ignore.
const StaleIgnoreName = "staleignore"

// Run executes every analyzer over every package and returns the active
// findings sorted by file position: //lint:ignore suppressions are applied
// and stale-ignore bookkeeping is dropped. This is the view the golden
// tests (analysistest) consume; the driver uses RunAll to also see what was
// suppressed and which directives have rotted.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	var kept []Diagnostic
	for _, d := range all {
		if !d.Suppressed && d.Analyzer != StaleIgnoreName {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunAll executes every analyzer over every package and returns the
// complete record sorted by file position:
//
//   - active findings, unmarked;
//   - suppressed findings, marked Suppressed with the directive's
//     justification carried along (for -json consumers);
//   - one StaleIgnoreName finding per //lint:ignore directive that
//     suppressed nothing — either it has no justification (and so never
//     suppresses, by contract), or it names an analyzer in this run that
//     reported nothing on its lines (code fixed, analyzer renamed).
//
// Staleness is only judged for analyzer names in this run's set: a
// directive for an unselected analyzer is skipped, not declared stale.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
			}
			pass.report = func(d Diagnostic) { raw = append(raw, d) }
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}

		dirs := collectDirectives(pkg)
		type cover struct {
			file string
			line int
		}
		covering := map[cover][]*directive{}
		for _, dir := range dirs {
			if dir.bare {
				continue
			}
			// The directive covers its own line and the next one, so it
			// works both inline and as a standalone line above.
			covering[cover{dir.file, dir.line}] = append(covering[cover{dir.file, dir.line}], dir)
			covering[cover{dir.file, dir.line + 1}] = append(covering[cover{dir.file, dir.line + 1}], dir)
		}
		for i := range raw {
			d := &raw[i]
			for _, dir := range covering[cover{d.Position.Filename, d.Position.Line}] {
				for _, name := range dir.names {
					if name == d.Analyzer {
						d.Suppressed = true
						d.Justification = dir.justification
						dir.matched[name] = true
					}
				}
			}
		}
		out = append(out, raw...)

		for _, dir := range dirs {
			if dir.bare {
				out = append(out, Diagnostic{
					Analyzer: StaleIgnoreName,
					Position: dir.pos,
					Message: fmt.Sprintf(
						"//lint:ignore %s has no justification, so it suppresses nothing: add the reason after the analyzer name, or delete the comment",
						strings.Join(dir.names, ",")),
				})
				continue
			}
			for _, name := range dir.names {
				if known[name] && !dir.matched[name] {
					out = append(out, Diagnostic{
						Analyzer: StaleIgnoreName,
						Position: dir.pos,
						Message: fmt.Sprintf(
							"stale //lint:ignore %s: no %s diagnostic is reported here anymore (code fixed or analyzer renamed); delete the directive",
							name, name),
					})
				}
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// sortDiagnostics orders findings by file, line, column, then analyzer.
func sortDiagnostics(out []Diagnostic) {
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// directive is one parsed suppression comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// The justification is mandatory: an ignore without one does not suppress
// anything (bare is set instead), so every suppression in the tree
// documents why the finding is acceptable.
type directive struct {
	file          string
	line          int // the comment's own line; it also covers line+1
	pos           token.Position
	names         []string
	justification string
	bare          bool            // no justification: suppresses nothing
	matched       map[string]bool // analyzer names that actually suppressed a finding
}

// collectDirectives parses every //lint:ignore comment in the package.
func collectDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore "))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				dir := &directive{
					file:    pos.Filename,
					line:    pos.Line,
					pos:     pos,
					names:   strings.Split(fields[0], ","),
					matched: map[string]bool{},
				}
				if len(fields) < 2 {
					dir.bare = true
				} else {
					dir.justification = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
				}
				out = append(out, dir)
			}
		}
	}
	return out
}
