package analysis

import (
	"sort"
	"strings"
)

// Run executes every analyzer over every package and returns the combined
// findings sorted by file position, with //lint:ignore suppressions already
// applied.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			out = append(out, Suppress(pkg, diags)...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Suppress drops diagnostics covered by a suppression comment of the form
//
//	//lint:ignore <analyzer> <justification>
//
// placed either on the same line as the finding or on the line directly
// above it. <analyzer> may be a comma-separated list. The justification is
// mandatory: an ignore comment without one does not suppress anything, so
// every suppression in the tree documents why the finding is acceptable.
func Suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignores maps file -> line -> analyzer names suppressed at that line.
	ignores := map[string]map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
				if len(fields) < 2 {
					continue // no justification: not a valid suppression
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignores[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					ignores[pos.Filename] = m
				}
				// The comment covers its own line and the next one, so it
				// works both inline and as a standalone line above.
				names := strings.Split(fields[0], ",")
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, name := range ignores[d.Position.Filename][d.Position.Line] {
			if name == d.Analyzer {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
