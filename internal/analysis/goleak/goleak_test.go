package goleak_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goleak.Analyzer, "goleak")
}
