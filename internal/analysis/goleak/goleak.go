// Package goleak flags goroutines spawned from methods of long-lived types
// (Coordinator, Worker, Server, ...) that loop forever with no reachable
// stop path. A fabric component that launches `go s.loop()` and offers its
// goroutine no way to observe shutdown keeps running after Close/Stop/Drain
// returns: it pins memory, keeps timers firing, and — the chaos harness's
// favourite — keeps touching state the test has already torn down. The
// -race detector only sees the leak when the zombie happens to collide with
// something; this analyzer requires the stop path to exist structurally.
//
// A goroutine is a leak candidate when its body (or, for `go x.method()`,
// the method's body, transitively through same-package calls) contains an
// unbounded loop: `for { ... }` with no condition, or `for range ch` over a
// channel. Bounded loops terminate on their own and are never flagged.
//
// A candidate is cleared by any of the recognised stop paths:
//
//   - context: the goroutine calls ctx.Done() or ctx.Err() on a
//     context.Context (typically in a select or loop condition);
//   - done channel: the goroutine receives from a channel object that some
//     function in the package closes (close(s.tickStop) in Drain clears
//     `case <-s.tickStop:` in the ticker goroutine);
//   - WaitGroup join: the goroutine calls Done() on a sync.WaitGroup that
//     some function in the package joins with Wait() — the goroutine's
//     exit is then someone's shutdown barrier, and the loop's own exit
//     condition (a closed queue, a drained channel) is trusted.
//
// Stop paths are searched transitively through same-package calls using
// the interproc graph, so `go s.localWorker(i)` is cleared by the
// `defer s.wg.Done()` inside localWorker plus the s.wg.Wait() in Drain.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dve/internal/analysis"
	"dve/internal/analysis/interproc"
)

// Analyzer reports stop-path-less goroutines in long-lived types.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "a goroutine spawned from a method that loops forever needs a reachable " +
		"stop path (context.Context, a closed done channel, or a WaitGroup some " +
		"shutdown path joins); otherwise it outlives Close/Stop/Drain",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := interproc.Build(pass)
	infos := make([]*interproc.FuncInfo, 0, len(g.Funcs))
	for _, info := range g.Funcs {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Decl.Pos() < infos[j].Decl.Pos() })
	for _, info := range infos {
		if info.Decl.Recv == nil {
			continue // only methods of (long-lived) types are in scope
		}
		for _, sp := range info.Spawns {
			checkSpawn(pass, g, info, sp)
		}
	}
	return nil
}

func checkSpawn(pass *analysis.Pass, g *interproc.Graph, owner *interproc.FuncInfo, sp interproc.Spawn) {
	c := &checker{pass: pass, g: g, seen: map[*types.Func]bool{}}
	var body *ast.BlockStmt
	what := "goroutine"
	switch {
	case sp.Body != nil:
		body = sp.Body
	case sp.Callee != nil:
		info := g.Funcs[sp.Callee]
		if info == nil {
			return
		}
		body = info.Decl.Body
		what = sp.Callee.Name() + " goroutine"
		c.seen[sp.Callee] = true
	default:
		return // spawned callee outside the package: out of scope
	}
	c.walk(body)
	if !c.unbounded || c.stopped {
		return
	}
	recv := receiverTypeName(pass, owner.Decl)
	pass.Reportf(sp.Stmt.Pos(),
		"%s spawned in (%s).%s loops forever with no reachable stop path: give it a context, a done channel closed on shutdown, or join it with a WaitGroup that Close/Stop/Drain waits on",
		what, recv, owner.Decl.Name.Name)
}

// checker accumulates the two verdicts over a goroutine body and the
// same-package functions it calls.
type checker struct {
	pass *analysis.Pass
	g    *interproc.Graph
	seen map[*types.Func]bool

	unbounded bool // contains `for {}` or range-over-channel
	stopped   bool // observes a recognised stop signal
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if c.stopped {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false // a nested spawn is its own goroutine, checked at its own site
		case *ast.ForStmt:
			if x.Cond == nil {
				c.unbounded = true
			} else {
				c.checkExprStop(x.Cond)
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.unbounded = true
					// Ranging a closed channel terminates: that is itself
					// the done-channel stop path.
					if obj := interproc.RootObj(c.pass.TypesInfo, x.X); obj != nil && c.g.ClosedChans[obj] {
						c.stopped = true
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if obj := interproc.RootObj(c.pass.TypesInfo, x.X); obj != nil && c.g.ClosedChans[obj] {
					c.stopped = true
				}
			}
		case *ast.CallExpr:
			c.checkCallStop(x)
			if fn := calledFunc(c.pass.TypesInfo, x); fn != nil && fn.Pkg() == c.pass.Pkg && !c.seen[fn] {
				c.seen[fn] = true
				if info := c.g.Funcs[fn]; info != nil {
					c.walk(info.Decl.Body)
				}
			}
		}
		return !c.stopped
	})
}

// checkExprStop scans a loop condition for stop signals (ctx.Err() == nil).
func (c *checker) checkExprStop(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkCallStop(call)
		}
		return !c.stopped
	})
}

// checkCallStop marks the checker stopped on ctx.Done()/ctx.Err() and on
// Done() of a package-joined WaitGroup.
func (c *checker) checkCallStop(call *ast.CallExpr) {
	fn := calledFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	switch fn.Name() {
	case "Done", "Err":
		if recvNamed(sig.Recv().Type(), "context", "Context") {
			c.stopped = true
			return
		}
	}
	if fn.Name() == "Done" && recvNamed(sig.Recv().Type(), "sync", "WaitGroup") {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := interproc.RootObj(c.pass.TypesInfo, sel.X); obj != nil && c.g.WaitedGroups[obj] {
				c.stopped = true
			}
		}
	}
}

// receiverTypeName returns the method's receiver type name for diagnostics.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return types.ExprString(t)
}

// calledFunc resolves the called function or method, or nil.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// recvNamed reports whether t (or its pointee) is the named type pkg.name.
func recvNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
