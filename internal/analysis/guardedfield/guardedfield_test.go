package guardedfield_test

import (
	"testing"

	"dve/internal/analysis/analysistest"
	"dve/internal/analysis/guardedfield"
)

func TestGuardedField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), guardedfield.Analyzer, "guardedfield")
}
