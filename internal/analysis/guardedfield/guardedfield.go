// Package guardedfield checks lock discipline declared in struct field
// comments. A field annotated
//
//	faults []tracked // guarded by mu
//
// may only be accessed in functions that (a) lock that mutex on the same
// receiver before the access — s.mu.Lock() or s.mu.RLock() — or (b) are
// documented as caller-locked ("caller-locked" or "mu must be held" in the
// function's doc comment). fault.Set pioneered the annotation: its fault
// list is mutated concurrently by the RAS injector goroutine-free event
// path and read on the simulator's hot path, and an unguarded access is a
// data race the -race detector only catches if a test happens to hit the
// interleaving. The check is intentionally flow-insensitive (a Lock
// anywhere earlier in the function counts), trading soundness for zero
// false positives on idiomatic lock-then-defer-unlock code.
package guardedfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"dve/internal/analysis"
)

// Analyzer enforces "// guarded by <mu>" field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "guardedfield",
	Doc: "fields annotated '// guarded by <mu>' must be accessed with the mutex " +
		"held in the same function, or from a function documented as caller-locked",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, guarded, fd)
		}
	}
	return nil
}

// collectGuarded maps field objects to the name of their guarding mutex.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	pass.Inspect(func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			mu := guardAnnotation(field)
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					guarded[obj] = mu
				}
			}
		}
		return true
	})
	return guarded
}

// guardAnnotation extracts the mutex name from the field's doc or line
// comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFunc reports unguarded accesses within one function declaration
// (closures included: a closure is checked against locks taken anywhere
// earlier in the declaration, since it usually runs on the locked path
// that created it).
func checkFunc(pass *analysis.Pass, guarded map[types.Object]string, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if callerLocked(fd, mu) {
			return true
		}
		if locksBefore(fd, base, mu, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but accessed without it: lock %s.%s first, or document the function as caller-locked (%q in its doc comment)",
			base, selection.Obj().Name(), mu, base, mu, mu+" must be held")
		return true
	})
}

// callerLocked reports whether the function's doc comment declares the
// locking contract as the caller's responsibility. Matching is
// case-insensitive and ignores line wrapping.
func callerLocked(fd *ast.FuncDecl, mu string) bool {
	if fd.Doc == nil {
		return false
	}
	doc := strings.ToLower(strings.Join(strings.Fields(fd.Doc.Text()), " "))
	mu = strings.ToLower(mu)
	return strings.Contains(doc, "caller-locked") ||
		strings.Contains(doc, mu+" must be held") ||
		strings.Contains(doc, mu+" held")
}

// locksBefore reports whether <base>.<mu>.Lock() or .RLock() is called
// before pos inside the function.
func locksBefore(fd *ast.FuncDecl, base, mu string, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || found {
			return !found
		}
		lock, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (lock.Sel.Name != "Lock" && lock.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := lock.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mu {
			return true
		}
		if types.ExprString(muSel.X) == base {
			found = true
		}
		return !found
	})
	return found
}
