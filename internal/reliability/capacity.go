package reliability

// Scheme identifies a DRAM RAS design point for the Fig 1 comparison.
type Scheme struct {
	Name string
	// EffectiveCapacity is usable data capacity as a fraction of raw
	// provisioned capacity.
	EffectiveCapacity float64
	// PerfDelta is the paper's cited performance effect versus non-ECC DRAM
	// (negative = slowdown; Dvé's positive range comes from our Fig 6 runs).
	PerfDelta string
	// DUE/SDC from the analytical model (uniform FIT).
	Rates Rates
}

// DesignPoints returns the Fig 1 comparison: SEC-DED, Chipkill, and Dvé
// (with TSD), with effective capacities and the model's DUE/SDC rates.
//
// Capacity accounting (per the paper's Fig 1): SEC-DED and Chipkill DIMMs
// devote 8 of 9 chips to data, and Chipkill additionally reserves ~4% of the
// address space for metadata/firmware regions, giving the paper's 85%
// figure. Dvé halves capacity by replication on top of the detection-code
// overhead: 0.875 / 2 = 43.75%.
func DesignPoints(m Model) []Scheme {
	secDUE := m.Chipkill() // same pairwise failure structure at chip level
	return []Scheme{
		{
			Name:              "SEC-DED",
			EffectiveCapacity: 64.0 / 72.0, // 88.9%
			PerfDelta:         "~0% (correction off critical path, weak coverage)",
			// SEC-DED cannot correct a chip failure at all: every chip
			// failure is a DUE (or worse); approximate with the single-chip
			// failure rate.
			Rates: Rates{
				DUE: float64(m.ChipsPerDIMM) * m.FIT * float64(m.DIMMs),
				SDC: secDUE.DUE, // multi-bit aliasing beyond DED
			},
		},
		{
			Name:              "Chipkill",
			EffectiveCapacity: 0.85,
			PerfDelta:         "-2..-3% (manufacturer-cited ECC overhead)",
			Rates:             m.Chipkill(),
		},
		{
			Name:              "Dvé+TSD",
			EffectiveCapacity: 0.4375,
			PerfDelta:         "+5..+117% on-demand (this repo, Fig 6 runs)",
			Rates:             m.DveTSD(),
		},
	}
}
