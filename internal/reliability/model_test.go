package reliability

import (
	"math"
	"testing"
)

// within checks x is within rel of want (relative tolerance).
func within(t *testing.T, name string, got, want, rel float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > rel {
		t.Errorf("%s = %.3g, want %.3g (±%.0f%%)", name, got, want, rel*100)
	}
}

// Table I, row by row. The paper's printed values are 2-significant-figure
// roundings of the same closed forms.
func TestTableIChipkill(t *testing.T) {
	m := Default()
	r := m.Chipkill()
	within(t, "Chipkill DUE", r.DUE, 1.0e-2, 0.02)
	within(t, "Chipkill SDC", r.SDC, 3.1e-10, 0.05)
}

func TestTableIDveDSD(t *testing.T) {
	m := Default()
	r := m.DveDSD()
	within(t, "Dve+DSD DUE", r.DUE, 2.5e-3, 0.02)
	within(t, "Dve+DSD SDC", r.SDC, 6.3e-10, 0.05)
	// Improvement: 4x lower DUE than Chipkill (exactly (n-1)/2 = 4).
	within(t, "DUE improvement", m.Chipkill().DUE/r.DUE, 4.0, 0.01)
	// SDC is worse by 2x (0.49x "improvement" in the paper).
	within(t, "SDC ratio", m.Chipkill().SDC/r.SDC, 0.5, 0.01)
}

func TestTableIDveTSD(t *testing.T) {
	m := Default()
	r := m.DveTSD()
	within(t, "Dve+TSD DUE", r.DUE, 2.5e-3, 0.02)
	within(t, "Dve+TSD SDC", r.SDC, 2.5e-16, 0.05)
	// ~10^6 x better SDC than Chipkill.
	impr := m.Chipkill().SDC / r.SDC
	if impr < 1e5 || impr > 1e7 {
		t.Errorf("TSD SDC improvement = %.3g, want ~1e6", impr)
	}
}

func TestTableIRAIM(t *testing.T) {
	m := Default()
	r := m.RAIM(5, 8)
	within(t, "RAIM DUE", r.DUE, 1.5e-14, 0.1)
	within(t, "RAIM SDC", r.SDC, 4.0e-10, 0.05)
}

func TestTableIDveChipkill(t *testing.T) {
	m := Default()
	r := m.DveChipkill()
	within(t, "Dve+Chipkill DUE", r.DUE, 8.7e-17, 0.05)
	within(t, "Dve+Chipkill SDC", r.SDC, 6.3e-10, 0.05)
	// 172x (two orders of magnitude) lower DUE than RAIM.
	within(t, "vs RAIM", m.RAIM(5, 8).DUE/r.DUE, 172, 0.15)
}

func TestTableIThermal(t *testing.T) {
	m := Default()
	fits := ThermalFITs(66.1, 8.2, 9)
	if fits[0] != 66.1 || math.Abs(fits[8]-131.7) > 1e-9 {
		t.Fatalf("thermal FITs = %v", fits)
	}

	ck := m.ChipkillThermal(fits)
	within(t, "Chipkill† DUE", ck.DUE, 2.2e-2, 0.05)
	within(t, "Chipkill† SDC", ck.SDC, 1.0e-9, 0.10)

	intel := m.MirrorThermal(fits, false)
	within(t, "Intel+TSD† DUE", intel.DUE, 5.9e-3, 0.02)

	dve := m.MirrorThermal(fits, true)
	within(t, "Dvé+TSD† DUE", dve.DUE, 5.3e-3, 0.02)

	// Dvé's risk-inverse mapping lowers DUE over Intel mirroring: the paper
	// quotes 11% from the rounded 5.9/5.3 values; the exact closed form
	// gives 9.6%.
	if intel.DUE/dve.DUE < 1.09 {
		t.Errorf("risk-inverse improvement = %.3f, want >= 1.09", intel.DUE/dve.DUE)
	}
	within(t, "Chipkill†/Dvé†", ck.DUE/dve.DUE, 4.15, 0.05)
	// SDC ~1.1e-15 for both mirrored schemes.
	within(t, "Dvé+TSD† SDC", dve.SDC, 1.1e-15, 0.25)
	within(t, "Intel+TSD† SDC", intel.SDC, 1.1e-15, 0.25)
}

// The DUE advantage of replication is independent of the detection code and
// equals (chips-1)/replicas for any chip count — the paper notes "this
// number is irrespective of the detection code".
func TestDUEImprovementIndependentOfCode(t *testing.T) {
	for _, chips := range []int{9, 18, 36} {
		m := Default()
		m.ChipsPerDIMM = chips
		want := float64(chips-1) / 2
		within(t, "improvement", m.Chipkill().DUE/m.DveDSD().DUE, want, 1e-9)
	}
}

// Risk-inverse pairing is optimal among the two pairings for any monotone
// FIT gradient (rearrangement inequality): pairing hot with cool minimizes
// the sum of products.
func TestRiskInverseAlwaysAtLeastAsGood(t *testing.T) {
	m := Default()
	for _, step := range []float64{0, 1, 8.2, 30} {
		fits := ThermalFITs(66.1, step, 9)
		inv := m.MirrorThermal(fits, true).DUE
		same := m.MirrorThermal(fits, false).DUE
		if inv > same+1e-12 {
			t.Errorf("step %v: risk-inverse DUE %g > same-position %g", step, inv, same)
		}
		if step == 0 && math.Abs(inv-same) > 1e-12 {
			t.Errorf("uniform FITs should make pairings equal")
		}
	}
}

func TestArrhenius(t *testing.T) {
	// Higher temperature must raise the FIT; equal temperature is identity.
	if Arrhenius(66.1, 55, 55, 0.5) != 66.1 {
		t.Fatal("Arrhenius identity broken")
	}
	hot := Arrhenius(66.1, 55, 65, 0.5)
	if hot <= 66.1 {
		t.Fatalf("Arrhenius(65C) = %v, want > 66.1", hot)
	}
	cold := Arrhenius(66.1, 55, 45, 0.5)
	if cold >= 66.1 {
		t.Fatalf("Arrhenius(45C) = %v, want < 66.1", cold)
	}
}

func TestDesignPoints(t *testing.T) {
	pts := DesignPoints(Default())
	if len(pts) != 3 {
		t.Fatalf("%d design points, want 3", len(pts))
	}
	byName := map[string]Scheme{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	// Fig 1 capacity ordering: SEC-DED > Chipkill > Dvé, with the paper's
	// values.
	if byName["Dvé+TSD"].EffectiveCapacity != 0.4375 {
		t.Errorf("Dvé capacity = %v, want 0.4375", byName["Dvé+TSD"].EffectiveCapacity)
	}
	if byName["Chipkill"].EffectiveCapacity != 0.85 {
		t.Errorf("Chipkill capacity = %v, want 0.85", byName["Chipkill"].EffectiveCapacity)
	}
	if !(byName["SEC-DED"].EffectiveCapacity > 0.85) {
		t.Error("SEC-DED capacity should exceed Chipkill")
	}
	// Reliability ordering: Dvé DUE < Chipkill DUE < SEC-DED DUE.
	if !(byName["Dvé+TSD"].Rates.DUE < byName["Chipkill"].Rates.DUE &&
		byName["Chipkill"].Rates.DUE < byName["SEC-DED"].Rates.DUE) {
		t.Error("Fig 1 reliability ordering violated")
	}
}
