package reliability

import "math/rand"

// Monte-Carlo lifetime simulation: an independent, sampling-based
// cross-check of the Section IV closed forms. We simulate a fleet of
// systems over many scrub intervals; chip failures arrive per-interval with
// probability FIT-rate x interval, and each scheme's correction rule
// decides whether a interval's failure pattern is corrected, a DUE, or a
// potential SDC. Because real rates are ~1e-2 per billion hours, the
// simulation accelerates the FIT rate and the analytical model is evaluated
// at the same accelerated rate — the comparison is rate-to-rate at equal
// parameters, which validates the combinatorial structure of the formulas
// (the part that is easy to get wrong) rather than the absolute magnitudes.

// MCConfig parameterises a lifetime simulation.
type MCConfig struct {
	// PFail is the per-chip failure probability per scrub interval
	// (accelerated; the analytical equivalent is FIT*Window with
	// FIT = PFail / Window).
	PFail float64
	// ChipsPerDIMM and DIMMs mirror the analytical model.
	ChipsPerDIMM int
	DIMMs        int
	// Intervals is the number of scrub intervals simulated.
	Intervals int
	Seed      int64
}

// MCOutcome counts per-interval outcomes across the fleet.
type MCOutcome struct {
	Intervals  int
	DUE        int // intervals with an uncorrectable pattern
	SDCTrials  int // intervals whose pattern is beyond detection guarantees
	Correction int // intervals with correctable failures
}

// DUERate returns the per-interval DUE probability.
func (o MCOutcome) DUERate() float64 {
	if o.Intervals == 0 {
		return 0
	}
	return float64(o.DUE) / float64(o.Intervals)
}

// Scheme correction rules, expressed over the multiset of failed chips in
// one scrub interval.

// SimulateChipkill runs the baseline: one failed chip per DIMM corrects;
// two or more in the same DIMM is a DUE; three or more additionally risks
// an SDC (subject to the detection-miss probability the analytical model
// multiplies in).
func SimulateChipkill(c MCConfig) MCOutcome {
	r := rand.New(rand.NewSource(c.Seed))
	var out MCOutcome
	out.Intervals = c.Intervals
	for it := 0; it < c.Intervals; it++ {
		worstFails := 0
		any := false
		for d := 0; d < c.DIMMs; d++ {
			fails := sampleFails(r, c.ChipsPerDIMM, c.PFail)
			if fails > worstFails {
				worstFails = fails
			}
			if fails > 0 {
				any = true
			}
		}
		switch {
		case worstFails >= 3:
			out.DUE++
			out.SDCTrials++
		case worstFails == 2:
			out.DUE++
		case any:
			out.Correction++
		}
	}
	return out
}

// SimulateDve runs the replicated organisation: each DIMM is paired with a
// replica DIMM on the other socket. Data is lost only if a chip and its
// same-position partner fail in one interval. detectChips is the per-DIMM
// failure count beyond which detection may miss (3 for DSD, 4 for TSD).
func SimulateDve(c MCConfig, detectChips int) MCOutcome {
	r := rand.New(rand.NewSource(c.Seed))
	var out MCOutcome
	out.Intervals = c.Intervals
	primary := make([]bool, c.ChipsPerDIMM)
	replica := make([]bool, c.ChipsPerDIMM)
	for it := 0; it < c.Intervals; it++ {
		due := false
		sdc := false
		corrected := false
		for d := 0; d < c.DIMMs; d++ {
			pf, rf := 0, 0
			pair := false
			for ch := 0; ch < c.ChipsPerDIMM; ch++ {
				primary[ch] = r.Float64() < c.PFail
				replica[ch] = r.Float64() < c.PFail
				if primary[ch] {
					pf++
				}
				if replica[ch] {
					rf++
				}
				if primary[ch] && replica[ch] {
					pair = true
				}
			}
			if pair {
				due = true
			}
			if pf >= detectChips || rf >= detectChips {
				sdc = true
			}
			if pf+rf > 0 && !pair {
				corrected = true
			}
		}
		if due {
			out.DUE++
		}
		if sdc {
			out.SDCTrials++
		}
		if corrected && !due {
			out.Correction++
		}
	}
	return out
}

// AnalyticalDUEPerInterval evaluates the closed-form per-interval DUE
// probability at the Monte-Carlo parameters: for Chipkill, any ordered pair
// within a DIMM; for Dvé, a same-position pair across replicas.
func AnalyticalDUEPerInterval(c MCConfig, dve bool) float64 {
	n := float64(c.ChipsPerDIMM)
	p := c.PFail
	if dve {
		// P(some same-position pair in some DIMM) ~ DIMMs * n * p^2.
		return float64(c.DIMMs) * n * p * p
	}
	// P(>=2 of n chips in some DIMM) ~ DIMMs * C(n,2) * p^2.
	return float64(c.DIMMs) * n * (n - 1) / 2 * p * p
}

func sampleFails(r *rand.Rand, chips int, p float64) int {
	k := 0
	for i := 0; i < chips; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}
