package reliability

import (
	"math"
	"testing"
)

func mcConfig() MCConfig {
	return MCConfig{
		PFail:        2e-3, // accelerated per-interval chip failure probability
		ChipsPerDIMM: 9,
		DIMMs:        32,
		Intervals:    400_000,
		Seed:         7,
	}
}

// The Monte-Carlo DUE rates must agree with the closed forms evaluated at
// the same accelerated parameters — this validates the combinatorics of the
// Section IV model independently of the formulas themselves.
func TestMonteCarloMatchesAnalyticalChipkill(t *testing.T) {
	c := mcConfig()
	mc := SimulateChipkill(c)
	ana := AnalyticalDUEPerInterval(c, false)
	got := mc.DUERate()
	if math.Abs(got-ana)/ana > 0.10 {
		t.Fatalf("Chipkill MC DUE %.3e vs analytical %.3e (>10%% apart)", got, ana)
	}
}

func TestMonteCarloMatchesAnalyticalDve(t *testing.T) {
	c := mcConfig()
	mc := SimulateDve(c, 3)
	ana := AnalyticalDUEPerInterval(c, true)
	got := mc.DUERate()
	if math.Abs(got-ana)/ana > 0.12 {
		t.Fatalf("Dvé MC DUE %.3e vs analytical %.3e (>12%% apart)", got, ana)
	}
}

// The headline Table I structure: Dvé's DUE rate is (n-1)/2 lower than
// Chipkill's at identical failure rates — 4x for 9-chip DIMMs. (The
// analytical model counts ordered pairs, a factor-2 convention; the ratio
// is convention-free, which is what the Monte Carlo checks.)
func TestMonteCarloDUEImprovement(t *testing.T) {
	c := mcConfig()
	ck := SimulateChipkill(c).DUERate()
	dv := SimulateDve(c, 3).DUERate()
	impr := ck / dv
	if impr < 3.4 || impr > 4.6 {
		t.Fatalf("MC DUE improvement = %.2f, want ~4 (Table I)", impr)
	}
}

// TSD pushes the SDC-risk pattern from 3 failed chips to 4: the number of
// risky intervals must drop by orders of magnitude.
func TestMonteCarloTSDBeatsDSDOnSDC(t *testing.T) {
	c := mcConfig()
	c.PFail = 2e-2 // higher acceleration so 3-chip patterns appear
	c.Intervals = 300_000
	dsd := SimulateDve(c, 3).SDCTrials
	tsd := SimulateDve(c, 4).SDCTrials
	if dsd == 0 {
		t.Fatal("acceleration too low: no 3-chip patterns sampled")
	}
	if tsd >= dsd/5 {
		t.Fatalf("TSD risky intervals %d not well below DSD's %d", tsd, dsd)
	}
}

// With no failures there are no outcomes; with certain failure everything
// is a DUE.
func TestMonteCarloBoundaries(t *testing.T) {
	c := mcConfig()
	c.PFail = 0
	c.Intervals = 1000
	if out := SimulateChipkill(c); out.DUE != 0 || out.Correction != 0 {
		t.Fatal("outcomes without failures")
	}
	c.PFail = 1
	if out := SimulateDve(c, 3); out.DUE != c.Intervals {
		t.Fatalf("certain failure gave %d/%d DUEs", out.DUE, c.Intervals)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	c := mcConfig()
	c.Intervals = 50_000
	a := SimulateChipkill(c)
	b := SimulateChipkill(c)
	if a != b {
		t.Fatal("Monte Carlo not deterministic for a fixed seed")
	}
}

func TestDUERateEmpty(t *testing.T) {
	if (MCOutcome{}).DUERate() != 0 {
		t.Fatal("empty outcome rate not zero")
	}
}
