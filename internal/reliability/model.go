// Package reliability implements the paper's Section IV analytical DUE/SDC
// model. Rates are expressed per billion hours of operation, using a uniform
// DRAM device FIT rate (66.1, from Sridharan & Liberty's field study) and a
// scrub-interval window factor for coincident failures. The model reproduces
// every row of Table I, including the Arrhenius-scaled thermal variants and
// the risk-inverse mapping comparison against Intel-style mirroring.
package reliability

import "math"

// Rates are failure rates per billion hours of operation.
type Rates struct {
	DUE float64 // detected but uncorrectable errors
	SDC float64 // silent data corruptions
}

// Model holds the system parameters shared by all schemes.
type Model struct {
	// FIT is the per-device (DRAM chip) failure rate per billion hours.
	FIT float64
	// ChipsPerDIMM is 9 for a single-rank ECC DIMM (8 data + 1 check chip).
	ChipsPerDIMM int
	// DIMMs is the number of DIMMs in the (non-replicated) system.
	DIMMs int
	// Window is the probability scale factor for an additional failure
	// landing inside the same scrub interval (the paper's 10^-9 factor).
	Window float64
	// DetectMiss is the probability that the detection code misses an error
	// pattern one symbol beyond its guarantee (6.9% for the DSD code on
	// three-chip failures, from Yeleswarapu & Somani; applied analogously to
	// TSD on four-chip failures).
	DetectMiss float64
}

// Default returns the Table I configuration: 32 single-rank ECC DIMMs of 9
// chips, FIT 66.1, scrub window 1e-9, DSD 3-chip miss probability 6.9%.
func Default() Model {
	return Model{
		FIT:          66.1,
		ChipsPerDIMM: 9,
		DIMMs:        32,
		Window:       1e-9,
		DetectMiss:   0.069,
	}
}

// Chipkill returns the baseline SSC-DSD Chipkill rates. A DUE needs two
// chips of the same rank failing in one scrub interval; an SDC needs three
// (beyond the detection guarantee) plus a detection miss.
func (m Model) Chipkill() Rates {
	n := float64(m.ChipsPerDIMM)
	f := m.FIT
	due := (n * f) * ((n - 1) * f * m.Window) * float64(m.DIMMs)
	triple := (n * f) * ((n - 1) * f * m.Window) * ((n - 2) * f * m.Window)
	return Rates{
		DUE: due,
		SDC: triple * float64(m.DIMMs) * m.DetectMiss,
	}
}

// DveDSD returns Dvé equipped with a detection code of the same strength as
// the baseline (double-symbol detect). The DUE requires the *same-position*
// chip on both replicas failing together — one partner instead of eight —
// and the replica pair doubles the DIMM population; the SDC doubles the
// Chipkill SDC because a silent corruption can strike either replica.
func (m Model) DveDSD() Rates {
	n := float64(m.ChipsPerDIMM)
	f := m.FIT
	due := (n * f) * (1 * f * m.Window) * float64(m.DIMMs) * 2
	return Rates{
		DUE: due,
		SDC: 2 * m.Chipkill().SDC,
	}
}

// DveTSD returns Dvé with the stronger triple-symbol-detect code bought with
// the capacity freed by dropping correction: the DUE is unchanged (it
// depends only on the replica count, as the paper notes), while an SDC now
// needs four chips of one DIMM failing together plus a detection miss.
func (m Model) DveTSD() Rates {
	n := float64(m.ChipsPerDIMM)
	f := m.FIT
	quad := (n * f) * ((n - 1) * f * m.Window) * ((n - 2) * f * m.Window) *
		((n - 3) * f * m.Window)
	return Rates{
		DUE: m.DveDSD().DUE,
		SDC: quad * float64(m.DIMMs) * 2 * m.DetectMiss,
	}
}

// RAIM returns the IBM RAIM reference point: 5 channels of Chipkill DIMMs in
// RAID-3; it fails to correct when two corresponding Chipkill DIMMs on two
// of the five channels fail together (the second within the scrub window).
func (m Model) RAIM(channels, dimmsPerChannel int) Rates {
	n := float64(m.ChipsPerDIMM)
	f := m.FIT
	chipkillDIMM := (n * f) * ((n - 1) * f * m.Window) // per-DIMM Chipkill DUE
	due := (chipkillDIMM * float64(dimmsPerChannel)) *
		float64(channels-1) *
		(chipkillDIMM * 1) * m.Window *
		float64(channels)
	// SDC is bounded by the Chipkill detection miss across all DIMMs.
	triple := (n * f) * ((n - 1) * f * m.Window) * ((n - 2) * f * m.Window)
	return Rates{
		DUE: due,
		SDC: triple * float64(channels*dimmsPerChannel) * m.DetectMiss,
	}
}

// DveChipkill returns Dvé layered over Chipkill ECC DIMMs: each replica
// corrects one chip locally, so losing data needs two chips in one DIMM
// *and* the corresponding pair on the replica DIMM inside the window.
func (m Model) DveChipkill() Rates {
	n := float64(m.ChipsPerDIMM)
	f := m.FIT
	due := (n * f) * ((n - 1) * f * m.Window) *
		(1 * f * m.Window) * (1 * f * m.Window) *
		float64(m.DIMMs) * 2
	return Rates{
		DUE: due,
		SDC: 2 * m.Chipkill().SDC,
	}
}

// ThermalFITs returns per-chip FIT rates under the paper's 10°C intra-DIMM
// gradient: [66.1, 74.3, ..., 131.7] for the default model.
func ThermalFITs(base, step float64, chips int) []float64 {
	out := make([]float64, chips)
	for i := range out {
		out[i] = base + float64(i)*step
	}
	return out
}

// Arrhenius scales a FIT rate from a reference temperature to an operating
// temperature using the Arrhenius acceleration model with activation energy
// ea (eV). Temperatures are in °C.
func Arrhenius(fit, refC, tempC, ea float64) float64 {
	const kB = 8.617e-5 // eV/K
	tr := refC + 273.15
	to := tempC + 273.15
	return fit * math.Exp(ea/kB*(1/tr-1/to))
}

// ChipkillThermal evaluates the baseline under non-uniform per-chip FITs:
// any ordered pair of distinct chips failing in a window is a DUE, any
// ordered triple (with a detection miss) an SDC.
func (m Model) ChipkillThermal(fits []float64) Rates {
	var due, sdc float64
	for i, fi := range fits {
		for j, fj := range fits {
			if j == i {
				continue
			}
			due += fi * fj * m.Window
			for k, fk := range fits {
				if k == i || k == j {
					continue
				}
				sdc += fi * fj * fk * m.Window * m.Window
			}
		}
	}
	return Rates{
		DUE: due * float64(m.DIMMs),
		SDC: sdc * float64(m.DIMMs) * m.DetectMiss,
	}
}

// MirrorThermal evaluates a replicated scheme (with TSD detection) under
// non-uniform per-chip FITs. A DUE needs a chip and its *paired* replica
// chip failing together. riskInverse selects Dvé's thermal-risk-aware
// mapping (hot chips paired with cool replica chips); false models
// Intel-style mirroring where both copies share the same thermal position.
func (m Model) MirrorThermal(fits []float64, riskInverse bool) Rates {
	n := len(fits)
	var due float64
	for i, fi := range fits {
		partner := fits[i]
		if riskInverse {
			partner = fits[n-1-i]
		}
		due += fi * partner * m.Window
	}
	// SDC: four chips of one DIMM beyond the TSD guarantee, either replica.
	var quad float64
	for i, fi := range fits {
		for j, fj := range fits {
			if j == i {
				continue
			}
			for k, fk := range fits {
				if k == i || k == j {
					continue
				}
				for l, fl := range fits {
					if l == i || l == j || l == k {
						continue
					}
					quad += fi * fj * fk * fl * m.Window * m.Window * m.Window
				}
			}
		}
	}
	return Rates{
		DUE: due * float64(m.DIMMs) * 2,
		SDC: quad * float64(m.DIMMs) * 2 * m.DetectMiss,
	}
}
