// Package trace defines a compact binary trace format for multi-threaded
// memory-access traces — the role Prism/SynchroTrace files play in the
// paper's methodology. Traces capture per-thread streams of reads, writes,
// compute gaps, and barrier synchronization, and can be produced from the
// synthetic generators (for archiving an exact experiment input) or from
// any external tool, then replayed through the simulator.
//
// Format (little-endian):
//
//	header:  magic "DVET" | u16 version | u16 threads | u64 ops
//	record:  u8 kind | u8 tid | u16 compute | u64 addr
//
// The header's op count is written as 0 (unknown) when the stream starts;
// Close seeks back and fixes it up when the destination is an
// io.WriteSeeker (a pipe keeps 0). Thread ids are a single byte, so a trace
// holds at most 255 threads — NewWriter rejects larger machines instead of
// silently truncating tids. Barrier records have kind 2 and no meaningful
// addr/compute. Records are interleaved in global issue order; replay
// preserves per-thread order.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dve/internal/topology"
	"dve/internal/workload"
)

const (
	magic   = "DVET"
	version = 1
)

// Record is one trace event.
type Record struct {
	Kind    workload.OpKind
	Tid     uint8
	Compute uint16
	Addr    topology.Addr
}

// MaxThreads is the largest thread count the record format can address
// (tids are a single byte).
const MaxThreads = 255

// opsOffset is the byte offset of the header's u64 op count.
const opsOffset = 8 // magic(4) + version(2) + threads(2)

// Writer streams records to an underlying writer.
type Writer struct {
	w       *bufio.Writer
	dst     io.Writer // unbuffered destination, for the Close fixup
	threads int
	ops     uint64
	started bool
}

// NewWriter creates a trace writer for the given thread count; counts
// outside [1, MaxThreads] are rejected because a record's tid is one byte
// and silent truncation would merge distinct threads' streams. The header
// is written lazily on the first record with an op count of 0 (unknown);
// Close fixes the count up when w is an io.WriteSeeker.
func NewWriter(w io.Writer, threads int) (*Writer, error) {
	if threads < 1 || threads > MaxThreads {
		return nil, fmt.Errorf("trace: thread count %d outside [1, %d]", threads, MaxThreads)
	}
	return &Writer{w: bufio.NewWriter(w), dst: w, threads: threads}, nil
}

func (tw *Writer) writeHeader(ops uint64) error {
	if _, err := tw.w.WriteString(magic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(tw.threads))
	binary.LittleEndian.PutUint64(hdr[4:], ops)
	_, err := tw.w.Write(hdr[:])
	return err
}

// Write appends one record. The record's Tid must be within the writer's
// declared thread count.
func (tw *Writer) Write(r Record) error {
	if int(r.Tid) >= tw.threads {
		return fmt.Errorf("trace: record tid %d out of range for %d threads", r.Tid, tw.threads)
	}
	if !tw.started {
		tw.started = true
		if err := tw.writeHeader(0); err != nil {
			return err
		}
	}
	var buf [12]byte
	buf[0] = byte(r.Kind)
	buf[1] = r.Tid
	binary.LittleEndian.PutUint16(buf[2:], r.Compute)
	binary.LittleEndian.PutUint64(buf[4:], uint64(r.Addr))
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.ops++
	return nil
}

// Flush completes the stream.
func (tw *Writer) Flush() error {
	if !tw.started {
		tw.started = true
		if err := tw.writeHeader(0); err != nil {
			return err
		}
	}
	return tw.w.Flush()
}

// Close flushes the stream and, when the destination supports seeking,
// rewrites the header's op count with the number of records written (the
// fixup the header format promises). Streams to pipes keep the 0 = unknown
// marker. The writer must not be used after Close.
func (tw *Writer) Close() error {
	if err := tw.Flush(); err != nil {
		return err
	}
	ws, ok := tw.dst.(io.WriteSeeker)
	if !ok {
		return nil
	}
	if _, err := ws.Seek(opsOffset, io.SeekStart); err != nil {
		return fmt.Errorf("trace: header fixup: %w", err)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], tw.ops)
	if _, err := ws.Write(b[:]); err != nil {
		return fmt.Errorf("trace: header fixup: %w", err)
	}
	if _, err := ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("trace: header fixup: %w", err)
	}
	return nil
}

// Ops returns the number of records written.
func (tw *Writer) Ops() uint64 { return tw.ops }

// Reader decodes a trace stream.
type Reader struct {
	r       *bufio.Reader
	Threads int
	// Ops is the header's record count: 0 means unknown (the producer could
	// not seek back to fix up the header).
	Ops uint64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+12)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	threads := int(binary.LittleEndian.Uint16(head[6:]))
	if threads == 0 {
		return nil, fmt.Errorf("trace: zero threads")
	}
	if threads > MaxThreads {
		return nil, fmt.Errorf("trace: thread count %d exceeds format limit %d", threads, MaxThreads)
	}
	return &Reader{r: br, Threads: threads, Ops: binary.LittleEndian.Uint64(head[8:])}, nil
}

// Next returns the next record; io.EOF ends the stream.
func (tr *Reader) Next() (Record, error) {
	var buf [12]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	k := workload.OpKind(buf[0])
	if k > workload.Barrier {
		return Record{}, fmt.Errorf("trace: invalid record kind %d", buf[0])
	}
	return Record{
		Kind:    k,
		Tid:     buf[1],
		Compute: binary.LittleEndian.Uint16(buf[2:]),
		Addr:    topology.Addr(binary.LittleEndian.Uint64(buf[4:])),
	}, nil
}

// CaptureStats reports what a Capture wrote and how faithfully.
type CaptureStats struct {
	// Ops is the number of records written.
	Ops uint64
	// ClampedCompute counts records whose compute gap exceeded the format's
	// u16 field and was saturated to 0xFFFF. A nonzero count means a replay
	// runs hotter (less compute between accesses) than the generator; tools
	// surface it so the loss is never silent.
	ClampedCompute uint64
}

// Capture materialises ops operations of a synthetic workload into a trace,
// issuing threads round-robin (the global order replay will preserve). It
// requires ops >= spec.Threads: fewer would leave some thread with no
// records, producing a trace Load rejects.
func Capture(w io.Writer, spec workload.Spec, ops uint64) (CaptureStats, error) {
	var st CaptureStats
	if ops < uint64(spec.Threads) {
		return st, fmt.Errorf("trace: %d ops cover only %d of %d threads; capture at least one op per thread (ops >= threads)",
			ops, ops, spec.Threads)
	}
	gen, err := workload.NewGenerator(spec)
	if err != nil {
		return st, err
	}
	tw, err := NewWriter(w, spec.Threads)
	if err != nil {
		return st, err
	}
	tid := 0
	for i := uint64(0); i < ops; i++ {
		op := gen.Next(tid)
		comp := op.Compute
		if comp > 0xFFFF {
			comp = 0xFFFF
			st.ClampedCompute++
		}
		if err := tw.Write(Record{
			Kind:    op.Kind,
			Tid:     uint8(tid),
			Compute: uint16(comp),
			Addr:    op.Addr,
		}); err != nil {
			return st, err
		}
		tid = (tid + 1) % spec.Threads
	}
	st.Ops = tw.Ops()
	// Close fixes up the header's op count when w can seek (files), so
	// tools can size replays without scanning the whole trace.
	return st, tw.Close()
}

// Source adapts a fully loaded trace into per-thread streams for the
// simulator's runner: Next(tid) returns that thread's next operation,
// cycling when the trace is exhausted (so a short trace can drive a long
// run, like the paper's ROI looping).
type Source struct {
	perThread [][]workload.Op
	pos       []int
}

// Load reads an entire trace into a replayable Source.
func Load(r io.Reader) (*Source, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	s := &Source{
		perThread: make([][]workload.Op, tr.Threads),
		pos:       make([]int, tr.Threads),
	}
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if int(rec.Tid) >= tr.Threads {
			return nil, fmt.Errorf("trace: record tid %d out of range", rec.Tid)
		}
		s.perThread[rec.Tid] = append(s.perThread[rec.Tid], workload.Op{
			Kind:    rec.Kind,
			Addr:    rec.Addr,
			Compute: int(rec.Compute),
		})
	}
	for t, ops := range s.perThread {
		if len(ops) == 0 {
			return nil, fmt.Errorf("trace: thread %d has no operations (re-capture with ops >= threads so every thread gets at least one record)", t)
		}
	}
	return s, nil
}

// Threads returns the trace's thread count.
func (s *Source) Threads() int { return len(s.perThread) }

// Next returns thread tid's next operation, wrapping at the end.
func (s *Source) Next(tid int) workload.Op {
	ops := s.perThread[tid]
	op := ops[s.pos[tid]]
	s.pos[tid] = (s.pos[tid] + 1) % len(ops)
	return op
}

// Len returns the number of operations recorded for a thread.
func (s *Source) Len(tid int) int { return len(s.perThread[tid]) }
