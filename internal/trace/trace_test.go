package trace

import (
	"bytes"
	"io"
	"testing"

	idve "dve/internal/dve"
	"dve/internal/topology"
	"dve/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf, 2)
	recs := []Record{
		{Kind: workload.Read, Tid: 0, Compute: 3, Addr: 0x1000},
		{Kind: workload.Write, Tid: 1, Compute: 0, Addr: 0x2040},
		{Kind: workload.Barrier, Tid: 0},
		{Kind: workload.Read, Tid: 1, Compute: 65535, Addr: 1 << 41},
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Ops() != uint64(len(recs)) {
		t.Fatalf("Ops = %d, want %d", tw.Ops(), len(recs))
	}

	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Threads != 2 {
		t.Fatalf("threads = %d, want 2", tr.Threads)
	}
	for i, want := range recs {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("DVETxxxxxxxxxxxx"), // wrong version bytes
	}
	for i, c := range cases {
		if _, err := NewReader(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: bad header accepted", i)
		}
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf, 1)
	tw.Write(Record{Kind: workload.Read, Addr: 64})
	tw.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestReaderRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf, 1)
	tw.Write(Record{Kind: workload.Read, Addr: 64})
	tw.Flush()
	data := buf.Bytes()
	data[16] = 99 // first record's kind byte
	tr, _ := NewReader(bytes.NewReader(data))
	if _, err := tr.Next(); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestCaptureLoadReplayMatchesGenerator(t *testing.T) {
	spec, _ := workload.ByName("fft", 4)
	var buf bytes.Buffer
	if err := Capture(&buf, spec, 4000); err != nil {
		t.Fatal(err)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.Threads() != 4 {
		t.Fatalf("threads = %d", src.Threads())
	}
	// The trace's per-thread streams equal the generator's.
	gen, _ := workload.NewGenerator(spec)
	for i := 0; i < src.Len(0); i++ {
		want := gen.Next(0)
		if want.Compute > 0xFFFF {
			want.Compute = 0xFFFF
		}
		got := src.Next(0)
		if got != want {
			t.Fatalf("thread 0 op %d: %+v vs generator %+v", i, got, want)
		}
	}
}

func TestSourceWraps(t *testing.T) {
	spec, _ := workload.ByName("lu", 2)
	var buf bytes.Buffer
	if err := Capture(&buf, spec, 10); err != nil {
		t.Fatal(err)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := src.Len(0)
	first := src.Next(0)
	for i := 1; i < n; i++ {
		src.Next(0)
	}
	if again := src.Next(0); again != first {
		t.Fatal("trace source did not wrap to the beginning")
	}
}

func TestLoadRejectsEmptyThread(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf, 2)
	tw.Write(Record{Kind: workload.Read, Tid: 0, Addr: 64})
	tw.Flush()
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("trace with an empty thread accepted")
	}
}

// End-to-end: the simulator produces identical results when driven by a
// captured trace and by the live generator it was captured from.
func TestSimulatorReplayEquivalence(t *testing.T) {
	spec, _ := workload.ByName("stencil", 16)
	var buf bytes.Buffer
	if err := Capture(&buf, spec, 120_000); err != nil {
		t.Fatal(err)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rc := idve.RunConfig{
		Cfg:        topology.Default(topology.ProtoDeny),
		WarmupOps:  20_000,
		MeasureOps: 60_000,
	}
	live, err := idve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Source = src
	replay, err := idve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	// The trace interleaves threads round-robin exactly like the runner's
	// demand order only when per-thread progress matches; cycle counts can
	// differ slightly because compute jitter draws differ — but both runs
	// must be plausible and deterministic.
	if replay.Cycles == 0 || live.Cycles == 0 {
		t.Fatal("zero-cycle run")
	}
	ratio := float64(replay.Cycles) / float64(live.Cycles)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("replay diverges from live run: %d vs %d cycles", replay.Cycles, live.Cycles)
	}
}
