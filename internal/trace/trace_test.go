package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	idve "dve/internal/dve"
	"dve/internal/topology"
	"dve/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: workload.Read, Tid: 0, Compute: 3, Addr: 0x1000},
		{Kind: workload.Write, Tid: 1, Compute: 0, Addr: 0x2040},
		{Kind: workload.Barrier, Tid: 0},
		{Kind: workload.Read, Tid: 1, Compute: 65535, Addr: 1 << 41},
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Ops() != uint64(len(recs)) {
		t.Fatalf("Ops = %d, want %d", tw.Ops(), len(recs))
	}

	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Threads != 2 {
		t.Fatalf("threads = %d, want 2", tr.Threads)
	}
	if tr.Ops != 0 {
		t.Fatalf("header ops = %d, want 0 (buffers cannot seek back)", tr.Ops)
	}
	for i, want := range recs {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("DVETxxxxxxxxxxxx"), // wrong version bytes
	}
	for i, c := range cases {
		if _, err := NewReader(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: bad header accepted", i)
		}
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, 1)
	tw.Write(Record{Kind: workload.Read, Addr: 64})
	tw.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	tr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestReaderRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, 1)
	tw.Write(Record{Kind: workload.Read, Addr: 64})
	tw.Flush()
	data := buf.Bytes()
	data[16] = 99 // first record's kind byte
	tr, _ := NewReader(bytes.NewReader(data))
	if _, err := tr.Next(); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestCaptureLoadReplayMatchesGenerator(t *testing.T) {
	spec, _ := workload.ByName("fft", 4)
	var buf bytes.Buffer
	if _, err := Capture(&buf, spec, 4000); err != nil {
		t.Fatal(err)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.Threads() != 4 {
		t.Fatalf("threads = %d", src.Threads())
	}
	// The trace's per-thread streams equal the generator's.
	gen, _ := workload.NewGenerator(spec)
	for i := 0; i < src.Len(0); i++ {
		want := gen.Next(0)
		if want.Compute > 0xFFFF {
			want.Compute = 0xFFFF
		}
		got := src.Next(0)
		if got != want {
			t.Fatalf("thread 0 op %d: %+v vs generator %+v", i, got, want)
		}
	}
}

func TestSourceWraps(t *testing.T) {
	spec, _ := workload.ByName("lu", 2)
	var buf bytes.Buffer
	if _, err := Capture(&buf, spec, 10); err != nil {
		t.Fatal(err)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := src.Len(0)
	first := src.Next(0)
	for i := 1; i < n; i++ {
		src.Next(0)
	}
	if again := src.Next(0); again != first {
		t.Fatal("trace source did not wrap to the beginning")
	}
}

func TestLoadRejectsEmptyThread(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf, 2)
	tw.Write(Record{Kind: workload.Read, Tid: 0, Addr: 64})
	tw.Flush()
	_, err := Load(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("trace with an empty thread accepted")
	}
	if !strings.Contains(err.Error(), "re-capture") {
		t.Fatalf("error %q does not name the remedy", err)
	}
}

// Capture must refuse up front to write a trace that Load would reject:
// fewer ops than threads leaves at least one thread with no records.
func TestCaptureRejectsFewerOpsThanThreads(t *testing.T) {
	spec, _ := workload.ByName("fft", 4)
	var buf bytes.Buffer
	_, err := Capture(&buf, spec, 3)
	if err == nil {
		t.Fatal("under-length capture accepted")
	}
	if !strings.Contains(err.Error(), "ops >= threads") {
		t.Fatalf("error %q does not name the remedy", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes written before the rejection", buf.Len())
	}
}

// A spec whose compute gaps exceed the format's u16 field must report the
// clamps instead of silently flattening the trace's compute density.
func TestCaptureReportsClampedCompute(t *testing.T) {
	spec := workload.Spec{
		Name: "hot", Threads: 2, FootprintMB: 16,
		PrivFrac: 0.5, SharedROFrac: 0.4, Locality: 0.5,
		ComputePerOp: 60_000, // draws up to 120_000 > 0xFFFF
		Seed:         7,
	}
	var buf bytes.Buffer
	st, err := Capture(&buf, spec, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 2000 {
		t.Fatalf("Ops = %d, want 2000", st.Ops)
	}
	if st.ClampedCompute == 0 {
		t.Fatal("no clamps reported for a spec with >u16 compute gaps")
	}
	// Every clamped record reads back at exactly the ceiling.
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ceil := 0
	for tid := 0; tid < 2; tid++ {
		for i := 0; i < src.Len(tid); i++ {
			if op := src.Next(tid); op.Compute == 0xFFFF {
				ceil++
			}
		}
	}
	if uint64(ceil) < st.ClampedCompute {
		t.Fatalf("%d records at the ceiling, but %d clamps reported", ceil, st.ClampedCompute)
	}
	// A clamp-free spec reports zero.
	clean, _ := workload.ByName("fft", 2)
	var buf2 bytes.Buffer
	st2, err := Capture(&buf2, clean, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ClampedCompute != 0 {
		t.Fatalf("clamp-free capture reported %d clamps", st2.ClampedCompute)
	}
}

// Regression for the silent-clamp bug: a clamp-free capture replayed through
// the simulator must reproduce the live generator run's protocol counters
// exactly. Both runs are pinned to the legacy engine (an external Source
// forces it anyway; pinning the live side keeps the two in one statistics
// universe).
func TestReplayCountersMatchLive(t *testing.T) {
	spec, _ := workload.ByName("stencil", 16)
	var buf bytes.Buffer
	st, err := Capture(&buf, spec, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ClampedCompute != 0 {
		t.Fatalf("capture clamped %d compute gaps; pick a cooler workload", st.ClampedCompute)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rc := idve.RunConfig{
		Cfg:        topology.Default(topology.ProtoDeny),
		WarmupOps:  20_000,
		MeasureOps: 60_000,
		Engine:     idve.EngineLegacy,
	}
	live, err := idve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Source = src
	replay, err := idve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if live.Cycles != replay.Cycles {
		t.Fatalf("cycles diverge: live %d, replay %d", live.Cycles, replay.Cycles)
	}
	if !reflect.DeepEqual(live.Counters, replay.Counters) {
		t.Fatalf("protocol counters diverge between live and replay runs:\nlive:   %+v\nreplay: %+v",
			live.Counters, replay.Counters)
	}
}

// End-to-end: the simulator produces identical results when driven by a
// captured trace and by the live generator it was captured from.
func TestSimulatorReplayEquivalence(t *testing.T) {
	spec, _ := workload.ByName("stencil", 16)
	var buf bytes.Buffer
	if _, err := Capture(&buf, spec, 120_000); err != nil {
		t.Fatal(err)
	}
	src, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rc := idve.RunConfig{
		Cfg:        topology.Default(topology.ProtoDeny),
		WarmupOps:  20_000,
		MeasureOps: 60_000,
	}
	live, err := idve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Source = src
	replay, err := idve.Run(spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	// The trace interleaves threads round-robin exactly like the runner's
	// demand order only when per-thread progress matches; cycle counts can
	// differ slightly because compute jitter draws differ — but both runs
	// must be plausible and deterministic.
	if replay.Cycles == 0 || live.Cycles == 0 {
		t.Fatal("zero-cycle run")
	}
	ratio := float64(replay.Cycles) / float64(live.Cycles)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("replay diverges from live run: %d vs %d cycles", replay.Cycles, live.Cycles)
	}
}

func TestNewWriterRejectsBadThreadCounts(t *testing.T) {
	var buf bytes.Buffer
	for _, n := range []int{0, -1, 256, 10_000} {
		if _, err := NewWriter(&buf, n); err == nil {
			t.Errorf("thread count %d accepted; tids are one byte", n)
		}
	}
	if _, err := NewWriter(&buf, 255); err != nil {
		t.Fatalf("thread count 255 rejected: %v", err)
	}
}

func TestWriteRejectsOutOfRangeTid(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Record{Kind: workload.Read, Tid: 2, Addr: 64}); err == nil {
		t.Fatal("tid beyond the declared thread count accepted")
	}
	if tw.Ops() != 0 {
		t.Fatal("rejected record counted")
	}
}

// Close must seek back and fix up the header's op count when the
// destination is a file — the behaviour the header format promises.
func TestCloseFixesUpHeaderOpsOnFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fixup.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewWriter(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 0; i < n; i++ {
		if err := tw.Write(Record{Kind: workload.Read, Tid: uint8(i % 3), Addr: topology.Addr(i * 64)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tr, err := NewReader(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops != n {
		t.Fatalf("header ops = %d after Close, want %d", tr.Ops, n)
	}
	// The records themselves are untouched by the fixup.
	for i := 0; i < n; i++ {
		rec, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Addr != topology.Addr(i*64) {
			t.Fatalf("record %d addr = %#x", i, rec.Addr)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("want EOF after %d records, got %v", n, err)
	}
}

// Close on a non-seekable destination keeps the 0 = unknown marker and
// still flushes everything.
func TestCloseOnBufferKeepsUnknownOps(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Record{Kind: workload.Read, Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops != 0 {
		t.Fatalf("header ops = %d, want 0 for a pipe-style stream", tr.Ops)
	}
}

// Capture to a file produces a trace whose header already knows its length.
func TestCaptureFixesUpHeader(t *testing.T) {
	spec, _ := workload.ByName("fft", 4)
	path := filepath.Join(t.TempDir(), "fft.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	st, err := Capture(f, spec, n)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != n {
		t.Fatalf("CaptureStats.Ops = %d, want %d", st.Ops, n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tr, err := NewReader(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops != n {
		t.Fatalf("captured header ops = %d, want %d", tr.Ops, n)
	}
}
