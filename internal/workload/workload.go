// Package workload provides synthetic, seeded multi-threaded memory-access
// generators standing in for the paper's Prism/Valgrind traces of the 20
// Table III benchmarks. Each benchmark is parameterised by the properties
// the coherence protocols actually react to: footprint, the sharing mix
// (private / shared-read-only / shared-read-write), write fractions, spatial
// locality, and compute density. The knobs are set from the paper's own
// characterisation (Fig 7) so that the sharing-class distribution — and
// hence which protocol wins — matches the published shape.
package workload

import (
	"fmt"
	"math/rand"

	"dve/internal/topology"
)

// OpKind distinguishes generated operations.
type OpKind uint8

const (
	Read OpKind = iota
	Write
	Barrier // synchronization point across all threads
)

// Op is one trace operation: a memory access preceded by Compute cycles of
// work, or a barrier.
type Op struct {
	Kind    OpKind
	Addr    topology.Addr
	Compute int
}

// Spec parameterises one benchmark's generator.
type Spec struct {
	Name    string
	Threads int

	FootprintMB int // total data footprint across regions

	// Access mix: probabilities of touching each region class. The
	// remainder (1 - Priv - SharedRO) hits the shared read-write region.
	PrivFrac     float64
	SharedROFrac float64

	// Write probabilities within the private and shared-RW regions.
	PrivWriteFrac float64
	RWWriteFrac   float64

	// Locality is the probability of a sequential (next-word) access within
	// the region; otherwise the access jumps to a random word.
	Locality float64

	// Reuse is the probability of re-touching a recently accessed location
	// (temporal locality): the access is drawn from a per-thread window of
	// recent addresses instead of generating a fresh one.
	Reuse float64

	// ZipfFrac is the fraction of shared-read-only picks drawn from a
	// Zipf-distributed hot set instead of the sequential/random cursor.
	// Real irregular workloads (graph traversals, table lookups) have a
	// power-law re-reference tail.
	ZipfFrac float64

	// StrideFrac is the fraction of shared-read-only picks that follow a
	// large power-of-two stride (FFT butterflies, matrix column walks,
	// stencil planes). Power-of-two strides concentrate on few cache sets
	// and produce conflict misses with short re-reference distances — the
	// access structure that gives the replica directory a non-zero hit rate
	// and makes its capacity matter (Fig 9).
	StrideFrac float64

	// ComputePerOp is the mean compute cycles between memory operations.
	ComputePerOp int

	// BarrierEvery inserts a global barrier every N memory ops per thread
	// (0 = none).
	BarrierEvery int

	Seed int64
}

// Validate checks the spec's probability knobs.
func (s *Spec) Validate() error {
	if s.Threads <= 0 {
		return fmt.Errorf("workload %s: threads must be positive", s.Name)
	}
	if s.PrivFrac < 0 || s.SharedROFrac < 0 || s.PrivFrac+s.SharedROFrac > 1 {
		return fmt.Errorf("workload %s: invalid region fractions", s.Name)
	}
	for _, p := range []float64{s.PrivWriteFrac, s.RWWriteFrac, s.Locality, s.Reuse, s.ZipfFrac, s.StrideFrac} {
		if p < 0 || p > 1 {
			return fmt.Errorf("workload %s: probability out of range", s.Name)
		}
	}
	if s.FootprintMB <= 0 {
		return fmt.Errorf("workload %s: footprint must be positive", s.Name)
	}
	return nil
}

// Region bases are spread far apart in the sparse simulated physical address
// space; page interleaving distributes every region across both sockets.
//
// The shared area starts at 0 and interleaves its two classes at line
// granularity: within every page, line slots congruent to 0 mod 8 belong to
// the shared read-write class and the other seven slots to the read-only
// class. Mixing the classes within pages is deliberate: coarse-grain
// (region) replica-directory grants then cover lines that later turn
// writable, which is what makes region tracking hurt some workloads in the
// paper's Fig 9.
const (
	sharedBase = 0
	privBase   = 2 << 40
	privStep   = 1 << 38 // per-thread private region spacing

	rwSlotStride = 8 // every 8th line of a shared page is read-write
)

const (
	lineBytes = 64
	wordBytes = 8 // accesses are word-granular; sequential streams hit lines
	// reuseWindow is the per-thread recency window for temporal locality.
	reuseWindow = 1024

	// strideWords is the power-of-two stride of the strided tier (64 KiB),
	// and strideSpan the number of stride steps before the walk restarts
	// one element over.
	strideWords = 8192
	strideSpan  = 2048
)

// recent is one entry of the temporal-reuse window.
type recent struct {
	addr  topology.Addr
	class uint8 // 0 private, 1 shared-RO, 2 shared-RW
}

// Generator produces the per-thread operation streams for a Spec.
type Generator struct {
	spec Spec

	roWords   uint64
	rwWords   uint64
	privWords uint64
	rwSlots   uint64 // available RW line slots across the shared area

	rngs    []*rand.Rand
	zipfs   []*rand.Zipf
	cursors [][3]uint64 // per-thread sequential cursor per region class
	sBase   []uint64    // per-thread strided-walk base
	sStep   []uint64    // per-thread strided-walk step counter
	windows [][]recent  // per-thread temporal-reuse ring
	wpos    []int
	opCount []int
}

// NewGenerator builds a generator; the spec must be valid.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fp := uint64(spec.FootprintMB) << 20
	g := &Generator{
		spec: spec,
		// Footprint split: 45% shared-RO, 5% shared-RW, 50% private.
		roWords:   fp * 45 / 100 / wordBytes,
		rwWords:   fp * 5 / 100 / wordBytes,
		privWords: fp * 50 / 100 / uint64(spec.Threads) / wordBytes,
	}
	if g.roWords == 0 || g.rwWords == 0 || g.privWords == 0 {
		return nil, fmt.Errorf("workload %s: footprint too small", spec.Name)
	}
	// One RW line slot per 7 RO lines (shared-layout striping).
	roLines := g.roWords / (lineBytes / wordBytes)
	g.rwSlots = roLines/(rwSlotStride-1) + 1
	rwLines := g.rwWords / (lineBytes / wordBytes)
	if rwLines > g.rwSlots {
		g.rwWords = g.rwSlots * (lineBytes / wordBytes)
	}
	for t := 0; t < spec.Threads; t++ {
		rng := rand.New(rand.NewSource(spec.Seed + int64(t)*7919))
		g.rngs = append(g.rngs, rng)
		g.zipfs = append(g.zipfs, rand.NewZipf(rng, 1.07, 1, g.roWords-1))
		g.cursors = append(g.cursors, [3]uint64{})
		g.sBase = append(g.sBase, uint64(t)*131)
		g.sStep = append(g.sStep, 0)
		g.windows = append(g.windows, make([]recent, 0, reuseWindow))
		g.wpos = append(g.wpos, 0)
		g.opCount = append(g.opCount, 0)
	}
	return g, nil
}

// roAddr maps a read-only word index to its physical address, skipping the
// RW line slots (lines congruent to 0 mod rwSlotStride).
func roAddr(w uint64) topology.Addr {
	const wpl = lineBytes / wordBytes
	k := w / wpl // RO line index
	line := k + k/(rwSlotStride-1) + 1
	return topology.Addr(sharedBase + line*lineBytes + (w%wpl)*wordBytes)
}

// rwAddr maps a shared read-write word index to its physical address: RW
// lines occupy the 0-mod-8 slots, spread evenly across the shared area.
func (g *Generator) rwAddr(w uint64) topology.Addr {
	const wpl = lineBytes / wordBytes
	j := w / wpl // RW line index
	rwLines := g.rwWords / wpl
	slot := j * g.rwSlots / rwLines
	return topology.Addr(sharedBase + slot*rwSlotStride*lineBytes + (w%wpl)*wordBytes)
}

// ClassOf reports the sharing class of an address: 0 private, 1 shared
// read-only, 2 shared read-write.
func ClassOf(a topology.Addr) uint8 {
	if uint64(a) >= privBase {
		return 0
	}
	if (uint64(a)/lineBytes)%rwSlotStride == 0 {
		return 2
	}
	return 1
}

// scramble spreads Zipf ranks over the word space so the hot set is not one
// contiguous run of lines (Fibonacci hashing).
func scramble(rank, n uint64) uint64 {
	return (rank * 0x9E3779B97F4A7C15) % n
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// Next produces thread tid's next operation. The stream is deterministic
// per (Seed, tid).
func (g *Generator) Next(tid int) Op {
	s := &g.spec
	if s.BarrierEvery > 0 {
		// The barrier follows BarrierEvery memory ops (it does not replace
		// the Nth op): N memory ops, then a barrier, then the next interval.
		if g.opCount[tid] == s.BarrierEvery {
			g.opCount[tid] = 0
			return Op{Kind: Barrier}
		}
		g.opCount[tid]++
	}
	r := g.rngs[tid]

	// Temporal reuse: revisit a recent location.
	if win := g.windows[tid]; len(win) > 0 && r.Float64() < s.Reuse {
		e := win[r.Intn(len(win))]
		return g.finish(r, e.addr, e.class)
	}

	x := r.Float64()
	var (
		region uint8
		nWords uint64
	)
	switch {
	case x < s.PrivFrac:
		region = 0
		nWords = g.privWords
	case x < s.PrivFrac+s.SharedROFrac:
		region = 1
		nWords = g.roWords
	default:
		region = 2
		nWords = g.rwWords
	}

	var addr topology.Addr
	if y := r.Float64(); region == 1 && y < s.ZipfFrac {
		// Power-law hot-set access into the shared read-only data.
		w := scramble(g.zipfs[tid].Uint64(), g.roWords)
		addr = roAddr(w)
	} else if region == 1 && y < s.ZipfFrac+s.StrideFrac {
		// Large power-of-two strided walk (column/butterfly access).
		w := (g.sBase[tid] + g.sStep[tid]*strideWords) % g.roWords
		g.sStep[tid]++
		if g.sStep[tid] == strideSpan {
			g.sStep[tid] = 0
			g.sBase[tid]++
		}
		addr = roAddr(w)
	} else {
		cur := &g.cursors[tid][region]
		if r.Float64() < s.Locality {
			*cur = (*cur + 1) % nWords
		} else {
			*cur = uint64(r.Int63n(int64(nWords)))
		}
		switch region {
		case 0:
			addr = topology.Addr(privBase + uint64(tid)*privStep + *cur*wordBytes)
		case 1:
			addr = roAddr(*cur)
		default:
			addr = g.rwAddr(*cur)
		}
	}
	g.remember(tid, addr, region)
	return g.finish(r, addr, region)
}

// finish decides the access kind for a class and attaches compute cycles.
func (g *Generator) finish(r *rand.Rand, addr topology.Addr, class uint8) Op {
	s := &g.spec
	write := false
	switch class {
	case 0:
		write = r.Float64() < s.PrivWriteFrac
	case 2:
		write = r.Float64() < s.RWWriteFrac
	}
	kind := Read
	if write {
		kind = Write
	}
	comp := s.ComputePerOp
	if comp > 0 {
		comp = r.Intn(2*comp + 1) // mean ComputePerOp
	}
	return Op{Kind: kind, Addr: addr, Compute: comp}
}

// remember records an address in the thread's temporal-reuse window.
func (g *Generator) remember(tid int, addr topology.Addr, class uint8) {
	win := g.windows[tid]
	if len(win) < reuseWindow {
		g.windows[tid] = append(win, recent{addr, class})
		return
	}
	win[g.wpos[tid]] = recent{addr, class}
	g.wpos[tid] = (g.wpos[tid] + 1) % reuseWindow
}
