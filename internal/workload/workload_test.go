package workload

import (
	"testing"

	"dve/internal/topology"
)

func TestSuiteHas20Benchmarks(t *testing.T) {
	suite := Suite(16)
	if len(suite) != 20 {
		t.Fatalf("suite has %d benchmarks, want 20 (Table III)", len(suite))
	}
	names := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate benchmark %s", s.Name)
		}
		names[s.Name] = true
	}
	// Every Table III benchmark present.
	for _, want := range []string{
		"comd", "xsbench", "graph500", "rsbench",
		"canneal", "freqmine", "streamcluster",
		"barnes", "fft", "ocean_cp",
		"backprop", "bfs", "nw",
		"mg", "bt", "sp", "lu",
		"stencil", "histo", "lbm",
	} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestDenyWinnersMatchPaper(t *testing.T) {
	if len(DenyWinners) != 10 {
		t.Fatalf("%d deny winners, want 10", len(DenyWinners))
	}
	// The ten the paper lists in Section VII.
	for _, n := range []string{"backprop", "graph500", "fft", "stencil",
		"xsbench", "ocean_cp", "nw", "rsbench", "bfs", "streamcluster"} {
		if !DenyWinners[n] {
			t.Errorf("%s should be a deny winner", n)
		}
	}
	// Deny winners are the read-mostly specs: private fraction below the
	// paper's 46% private-read/write threshold.
	for _, s := range Suite(16) {
		if DenyWinners[s.Name] && s.PrivFrac > 0.46 {
			t.Errorf("%s: deny winner with PrivFrac %.2f > 0.46", s.Name, s.PrivFrac)
		}
		if !DenyWinners[s.Name] && s.PrivFrac < 0.46 {
			t.Errorf("%s: allow winner with PrivFrac %.2f < 0.46", s.Name, s.PrivFrac)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, ok := ByName("fft", 4)
	if !ok {
		t.Fatal("fft not found")
	}
	g1, _ := NewGenerator(spec)
	g2, _ := NewGenerator(spec)
	for i := 0; i < 1000; i++ {
		for tid := 0; tid < 4; tid++ {
			a, b := g1.Next(tid), g2.Next(tid)
			if a != b {
				t.Fatalf("streams diverge at op %d thread %d: %+v vs %+v", i, tid, a, b)
			}
		}
	}
}

func TestGeneratorThreadsIndependent(t *testing.T) {
	spec, _ := ByName("barnes", 4)
	g, _ := NewGenerator(spec)
	// Thread 0's stream must not depend on whether thread 1 is consumed.
	var solo []Op
	for i := 0; i < 100; i++ {
		solo = append(solo, g.Next(0))
	}
	g2, _ := NewGenerator(spec)
	for i := 0; i < 100; i++ {
		g2.Next(1) // interleave another thread
		if op := g2.Next(0); op != solo[i] {
			t.Fatalf("thread 0 stream depends on thread 1 at op %d", i)
		}
	}
}

func TestGeneratorMixMatchesSpec(t *testing.T) {
	spec := Spec{
		Name: "synthetic", Threads: 2, FootprintMB: 64,
		PrivFrac: 0.5, SharedROFrac: 0.4,
		PrivWriteFrac: 0.6, RWWriteFrac: 0.3,
		Locality: 0.5, Seed: 42,
	}
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	var priv, ro, rw, writes int
	for i := 0; i < n; i++ {
		op := g.Next(0)
		if op.Kind == Write {
			writes++
		}
		switch ClassOf(op.Addr) {
		case 0:
			priv++
		case 2:
			rw++
		default:
			ro++
		}
	}
	within := func(got int, want, tol float64) bool {
		f := float64(got) / n
		return f > want-tol && f < want+tol
	}
	if !within(priv, 0.5, 0.02) || !within(ro, 0.4, 0.02) || !within(rw, 0.1, 0.02) {
		t.Fatalf("region mix priv=%d ro=%d rw=%d for n=%d", priv, ro, rw, n)
	}
	// Writes = 0.5*0.6 + 0.1*0.3 = 0.33.
	if !within(writes, 0.33, 0.02) {
		t.Fatalf("write fraction %f, want ~0.33", float64(writes)/n)
	}
}

func TestROIsNeverWritten(t *testing.T) {
	spec, _ := ByName("xsbench", 2)
	g, _ := NewGenerator(spec)
	for i := 0; i < 50_000; i++ {
		op := g.Next(0)
		if op.Kind == Write && ClassOf(op.Addr) == 1 {
			t.Fatalf("write to shared read-only region at %#x", op.Addr)
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	spec, _ := ByName("lbm", 8)
	g, _ := NewGenerator(spec)
	seen := map[topology.Addr]int{}
	for tid := 0; tid < 8; tid++ {
		for i := 0; i < 10_000; i++ {
			op := g.Next(tid)
			if ClassOf(op.Addr) != 0 {
				continue
			}
			if prev, ok := seen[op.Addr]; ok && prev != tid {
				t.Fatalf("private address %#x touched by threads %d and %d", op.Addr, prev, tid)
			}
			seen[op.Addr] = tid
		}
	}
}

func TestBarrierCadence(t *testing.T) {
	// With BarrierEvery = N, the barrier follows N memory ops: each interval
	// is N memory ops plus one barrier, so every window of N+1 Next calls
	// holds exactly N memory ops.
	spec, _ := ByName("fft", 2)
	spec.BarrierEvery = 100
	g, _ := NewGenerator(spec)
	memSinceBarrier := 0
	barriers := 0
	for i := 0; i < 1010; i++ {
		if g.Next(0).Kind == Barrier {
			if memSinceBarrier != 100 {
				t.Fatalf("barrier %d after %d memory ops, want 100", barriers, memSinceBarrier)
			}
			barriers++
			memSinceBarrier = 0
		} else {
			memSinceBarrier++
		}
	}
	// 1010 calls = 10 full intervals of 101 calls each.
	if barriers != 10 {
		t.Fatalf("%d barriers in 1010 calls, want 10", barriers)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "t", Threads: 0, FootprintMB: 10},
		{Name: "t", Threads: 2, FootprintMB: 0},
		{Name: "t", Threads: 2, FootprintMB: 10, PrivFrac: 0.8, SharedROFrac: 0.5},
		{Name: "t", Threads: 2, FootprintMB: 10, PrivWriteFrac: 1.5},
		{Name: "t", Threads: 2, FootprintMB: 10, Locality: -0.1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad spec validated", i)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nosuch", 16); ok {
		t.Fatal("found nonexistent benchmark")
	}
	s, ok := ByName("lbm", 16)
	if !ok || s.Name != "lbm" || s.Threads != 16 {
		t.Fatalf("ByName(lbm) = %+v, %v", s, ok)
	}
}

func TestHashSeedStable(t *testing.T) {
	if hashSeed("fft") != hashSeed("fft") {
		t.Fatal("hashSeed not deterministic")
	}
	if hashSeed("fft") == hashSeed("lbm") {
		t.Fatal("hashSeed collides on suite names")
	}
}
